(** One-call drivers for whole protocol runs: build a world (pattern,
    detector, schedule), run a protocol to completion or horizon, and
    return the measurements the experiments aggregate. *)

open Kernel
open Agreement

type measurements = {
  verdict : Sa_spec.verdict;
  last_decision_time : int;  (** time of the latest decision, 0 if none *)
  first_decision_time : int;  (** 0 if none *)
  total_steps : int;
  rounds : int;  (** highest protocol round entered *)
  outcome : Scheduler.outcome;
  query_violations : int;
      (** run-condition (2) breaches found on the trace (always 0 for a
          sound simulator — checked on every harness run) *)
}

val ok : measurements -> bool
(** Spec verdict all green and no query violations. *)

type world = {
  pattern : Failure_pattern.t;
  policy : Policy.t;
  world_rng : Rng.t;  (** generator to derive detector randomness from *)
}

val random_world :
  seed:int -> n_plus_1:int -> max_faulty:int -> ?latest:int -> unit -> world
(** A random failure pattern with at most [max_faulty] crashes and a
    seeded random scheduler, both derived deterministically from
    [seed]. *)

val run_fig1 :
  ?horizon:int ->
  ?stab_time:int ->
  ?escapes:Upsilon_sa.escapes ->
  world ->
  measurements
(** Fig 1 with a fresh Υ history over the world's pattern; inputs are
    distinct per process. *)

val run_fig2 :
  ?horizon:int ->
  ?stab_time:int ->
  ?snapshot_impl:Memory.Snap.impl ->
  f:int ->
  world ->
  measurements

val run_omega_k_baseline :
  ?horizon:int -> ?stab_time:int -> k:int -> world -> measurements
(** The Ωₖ-based baseline under the same conventions. *)

val run_async_attempt :
  ?horizon:int -> ?lockstep:bool -> world -> measurements
(** The detector-free skeleton; [lockstep] (default true) replaces the
    world's policy with round-robin, the adversarial schedule. *)

(** {1 Model checking}

    The {!Check} layer driven end to end: DPOR exploration of a
    {!Check.Scenario} over a sweep of failure patterns, with any found
    counterexample ddmin-shrunk and confirmed by {!Kernel.Policy.script}
    replay. *)

type check_violation = {
  cex_pattern : Failure_pattern.t;  (** minimized failure pattern *)
  cex_prefix : Pid.t list;
      (** minimized schedule prefix — replaying it under
          [Policy.script] with [cex_pattern] reproduces [cex_report] *)
  cex_report : string;
  shrunk : bool;
      (** [false] when the script replay failed to reproduce the raw
          counterexample (the fields then hold the unshrunk original) *)
}

type check_outcome = {
  check_obj : Check.Scenario.obj;
  check_procs : int;
  check_depth : int;
  check_horizon : int;
  check_mutant : Check.Mutant.t option;
  patterns_swept : int;
      (** failure patterns explored before stopping (all of them, or up
          to and including the first with a violation) *)
  executions : int;  (** total DPOR executions across the sweep *)
  sleep_blocked : int;
  deduped : int;  (** trace-equivalent prefixes skipped without running *)
  races : int;
  backtrack_points : int;
  naive_bound : int;
      (** [procs^depth], what unreduced enumeration of one pattern could
          cost ({!Check.Explore.count_schedules}, saturating) *)
  violation : check_violation option;
}

val check_exhaustive :
  ?jobs:int ->
  ?procs:int ->
  ?depth:int ->
  ?horizon:int ->
  ?patterns:Failure_pattern.t list ->
  ?should_stop:(unit -> bool) ->
  ?spans:Obs.Span.scope ->
  ?mutant:Check.Mutant.t ->
  Check.Scenario.obj ->
  check_outcome
(** Explore the scenario under each pattern (default:
    {!Check.Scenario.patterns}) until a violation is found or the sweep
    is exhausted; [procs] is clamped up to the scenario's
    {!Check.Scenario.min_procs}, defaults are [procs >= 2], [depth = 6],
    [horizon = 400]. [mutant] injects the named bug for the whole run —
    exploration {e and} shrink replays. Updates [harness.check.*] and
    [check.dpor.*] metrics.

    The sweep is sharded into one work unit per (pattern, DPOR root
    branch) and run on an {!Exec.Pool} with [jobs] workers (default 1).
    The unit list, the merge (keyed by unit index), and the
    first-violation cut are identical at every [jobs], so the outcome —
    including [patterns_swept] and the aggregated stats — is
    deterministic across [-j] values.

    [should_stop] (default never) is polled before each DPOR execution
    of every unit ({!Check.Dpor.explore}'s cooperative-cancellation
    hook): once it returns [true] the sweep winds down without a
    counterexample, reporting only the work already done. The service
    layer wires per-request deadlines into it; with [jobs > 1] the
    callback is invoked from pool worker domains and must be
    domain-safe (e.g. read a wall-clock deadline or an [Atomic.t]). A
    cancelled outcome is {e not} a verification and is timing-dependent
    — callers must not feed it into determinism-sensitive output.

    [spans] (default {!Obs.Span.null}) records the sweep's profile:
    a [check.probe] span around the serial root-branch probes, one
    [dpor.p<pattern>] / [dpor.p<pattern>.b<branch>] span per work unit
    with [dpor.executions] and [dpor.race_analysis] phase children
    (via {!Check.Dpor}'s [on_phase] hook), and [check.shrink] around
    counterexample minimization. Worker domains only return timings as
    data; the coordinator emits every span in unit order, so span
    structure is byte-identical across [-j] values. Phase children are
    laid out back-to-back from the unit start (durations are real,
    positions synthesized). *)

val check_outcome_json : check_outcome -> Obs.Json.t
(** Stable machine-readable rendering (the [wfde check --json]
    payload). *)

val run_extraction_of :
  ?horizon:int ->
  ?tail:int ->
  f:int ->
  source:
    [ `Omega
    | `Omega_k of int
    | `Ev_perfect
    | `Perfect
    | `Upsilon_f
    | `Vitality of Pid.t
    | `Omega_batched of int
    | `Hb_ev_perfect of Link.config ]
  ->
  world ->
  (unit, string) result * int
(** Run the Fig-3 extraction from the given stable source; returns the
    Υᶠ-spec verdict on the extracted variable and the time of the last
    extracted-output change among correct processes (stabilization
    time). [`Hb_ev_perfect net] feeds the extraction an {e implemented}
    ◇P: heartbeat monitors ({!Detectors.Hb_ev_perfect}) run alongside
    the extraction fibers over a partially synchronous link, and the
    world's policy turns fair at the link's GST
    ({!Kernel.Policy.fair_after}). *)

(** {1 Implemented (heartbeat) detectors} *)

val run_hb_detector :
  ?horizon:int ->
  ?params:Detectors.Heartbeat.params ->
  mode:[ `Ev_perfect | `Ev_strong ] ->
  net:Link.config ->
  world ->
  (unit, string) result * int
(** Run only the heartbeat monitors of the given mode over a fresh
    partially synchronous link in the given world (policy fair from the
    link's GST), then check the link's partial-synchrony contract,
    crash isolation, and the mode's detector spec ({!Detectors.
    Hb_ev_perfect.check} / {!Detectors.Hb_ev_strong.check}) on the
    reconstructed history. Returns the verdict and the empirical
    stabilization time. *)

val run_msg_consensus :
  ?horizon:int ->
  ?omega_impl:Link.config ->
  world ->
  measurements * (unit, string) result
(** E11's message-passing consensus (Ω + commit–adopt over ABD) as a
    one-call driver; the second component is the linearizability
    verdict on the emulated memory. With [omega_impl] the protocol's Ω
    is not an oracle but the live min-unsuspected leader of a heartbeat
    ◇P over the given link; recorded leader queries are then replayed
    against {!Reduction.Pairwise.omega_of_ev_perfect} of the
    reconstructed history, so [query_violations] certifies the live
    view agreed with the reconstruction. *)
