(** Descriptive statistics for experiment aggregation.

    Every function is total on the empty list: an experiment family can
    end up with zero qualifying runs (e.g. after filtering on an
    outcome), and aggregation must not crash mid-report. *)

type summary = {
  count : int;
  mean : float;
  median : float;
  p95 : float;
  min : int;
  max : int;
}

val summarize : int list -> summary option
(** [None] on the empty list. *)

val mean : float list -> float
(** 0 on the empty list. *)

val mean_int : int list -> float

val percentile : float -> int list -> float option
(** [percentile q xs] with q in [0,1], nearest-rank with linear
    interpolation; [None] on the empty list. Raises only on q outside
    [0,1] (a programming error, not a data condition). *)

val percentile_or : default:float -> float -> int list -> float
(** {!percentile} with an explicit fallback for the empty list. *)

val pp : Format.formatter -> summary -> unit
