(** Plain-text tables for experiment output: what the bench harness and
    the CLI print, and what EXPERIMENTS.md quotes. *)

type table = {
  title : string;
  headers : string list;
  rows : string list list;
}

val render : Format.formatter -> table -> unit
(** Aligned, boxed-with-dashes rendering. *)

val to_string : table -> string

val of_metrics : ?title:string -> Obs.Metrics.snapshot -> table
(** The metrics registry snapshot as a [name / type / value] table —
    what [wfde_cli stats] prints. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
val cell_pct : float -> string
(** Render a ratio in [0, 1] as a percentage. *)
