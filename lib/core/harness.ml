open Kernel
open Detectors
open Agreement
open Reduction

type measurements = {
  verdict : Sa_spec.verdict;
  last_decision_time : int;
  first_decision_time : int;
  total_steps : int;
  rounds : int;
  outcome : Scheduler.outcome;
  query_violations : int;
      (* run-condition (2) breaches: recorded query values that disagree
         with the detector history; always 0 for a sound simulator *)
}

let ok m = Sa_spec.all_ok m.verdict && m.query_violations = 0

type world = {
  pattern : Failure_pattern.t;
  policy : Policy.t;
  world_rng : Rng.t;
}

let random_world ~seed ~n_plus_1 ~max_faulty ?(latest = 300) () =
  let rng = Rng.create seed in
  let pattern = Failure_pattern.random rng ~n_plus_1 ~max_faulty ~latest in
  { pattern; policy = Policy.random (Rng.split rng); world_rng = rng }

let decision_time_bounds trace =
  match Oracle.decision_times trace with
  | [] -> (0, 0)
  | times ->
      let ts = List.map snd times in
      (List.fold_left min max_int ts, List.fold_left max 0 ts)

let m_runs = Obs.Metrics.counter "harness.runs"
let m_verdict_ok = Obs.Metrics.counter "harness.verdict.ok"
let m_verdict_fail = Obs.Metrics.counter "harness.verdict.fail"
let m_horizon = Obs.Metrics.counter "harness.outcome.horizon_exhausted"
let m_quiescent = Obs.Metrics.counter "harness.outcome.quiescent"
let m_policy_stop = Obs.Metrics.counter "harness.outcome.policy_stop"
let m_query_violations = Obs.Metrics.counter "harness.query_violations"

let m_decision_time =
  Obs.Metrics.histogram
    ~buckets:[| 50.; 100.; 250.; 500.; 1000.; 2500.; 5000.; 25000.; 100000. |]
    "harness.last_decision_time"

let count_run ~proto m =
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr
    (Obs.Metrics.counter (Printf.sprintf "harness.runs{proto=%s}" proto));
  Obs.Metrics.incr (if ok m then m_verdict_ok else m_verdict_fail);
  Obs.Metrics.incr
    (match m.outcome with
    | Scheduler.Horizon -> m_horizon
    | Scheduler.Quiescent -> m_quiescent
    | Scheduler.Policy_stop -> m_policy_stop);
  if m.query_violations > 0 then
    Obs.Metrics.incr ~by:m.query_violations m_query_violations;
  if m.last_decision_time > 0 then
    Obs.Metrics.observe_int m_decision_time m.last_decision_time;
  m

let measure ?source ~k ~pattern ~proposals ~decisions ~rounds
    (result : Run.result) =
  let first, last = decision_time_bounds result.trace in
  let query_violations =
    match source with
    | Some src -> List.length (Oracle.check_query_values src result.trace)
    | None -> 0
  in
  {
    verdict = Sa_spec.check ~k ~pattern ~proposals ~decisions ();
    last_decision_time = last;
    first_decision_time = first;
    total_steps = result.steps;
    rounds;
    outcome = result.outcome;
    query_violations;
  }

let default_horizon = 2_000_000

let run_fig1 ?(horizon = default_horizon) ?stab_time ?escapes world =
  let n_plus_1 = Failure_pattern.n_plus_1 world.pattern in
  let upsilon =
    Upsilon.make ~rng:world.world_rng ~pattern:world.pattern ?stab_time ()
  in
  let source = Detector.source upsilon in
  let proto = Upsilon_sa.create ?escapes ~name:"sa" ~n_plus_1 ~upsilon:source () in
  let result =
    Run.exec ~pattern:world.pattern ~policy:world.policy ~horizon
      ~procs:(fun pid -> [ Upsilon_sa.proposer proto ~me:pid ~input:(100 + pid) ])
      ()
  in
  let proposals = List.map (fun p -> (p, 100 + p)) (Pid.all ~n_plus_1) in
  count_run ~proto:"fig1"
    (measure ~source ~k:(n_plus_1 - 1) ~pattern:world.pattern ~proposals
       ~decisions:(Upsilon_sa.decisions proto)
       ~rounds:(Upsilon_sa.rounds_entered proto)
       result)

let run_fig2 ?(horizon = default_horizon) ?stab_time ?snapshot_impl ~f world =
  let n_plus_1 = Failure_pattern.n_plus_1 world.pattern in
  let upsilon_f =
    Upsilon_f.make ~rng:world.world_rng ~pattern:world.pattern ~f ?stab_time ()
  in
  let source = Detector.source upsilon_f in
  let proto =
    Upsilon_f_sa.create ?snapshot_impl ~name:"fsa" ~n_plus_1 ~f
      ~upsilon_f:source ()
  in
  let result =
    Run.exec ~pattern:world.pattern ~policy:world.policy ~horizon
      ~procs:(fun pid ->
        [ Upsilon_f_sa.proposer proto ~me:pid ~input:(200 + pid) ])
      ()
  in
  let proposals = List.map (fun p -> (p, 200 + p)) (Pid.all ~n_plus_1) in
  count_run ~proto:"fig2"
    (measure ~source ~k:f ~pattern:world.pattern ~proposals
       ~decisions:(Upsilon_f_sa.decisions proto)
       ~rounds:(Upsilon_f_sa.rounds_entered proto)
       result)

let run_omega_k_baseline ?(horizon = default_horizon) ?stab_time ~k world =
  let n_plus_1 = Failure_pattern.n_plus_1 world.pattern in
  let omega_k =
    Omega_k.make ~rng:world.world_rng ~pattern:world.pattern ~k ?stab_time ()
  in
  let source = Detector.source omega_k in
  let proto = Omega_k_sa.create ~name:"oksa" ~n_plus_1 ~k ~omega_k:source in
  let result =
    Run.exec ~pattern:world.pattern ~policy:world.policy ~horizon
      ~procs:(fun pid -> [ Omega_k_sa.proposer proto ~me:pid ~input:(300 + pid) ])
      ()
  in
  let proposals = List.map (fun p -> (p, 300 + p)) (Pid.all ~n_plus_1) in
  count_run ~proto:"omega_k"
    (measure ~source ~k ~pattern:world.pattern ~proposals
       ~decisions:(Omega_k_sa.decisions proto)
       ~rounds:(Omega_k_sa.rounds_entered proto)
       result)

let run_async_attempt ?(horizon = 200_000) ?(lockstep = true) world =
  let n_plus_1 = Failure_pattern.n_plus_1 world.pattern in
  let proto = Async_attempt.create ~name:"async" ~n_plus_1 in
  let policy = if lockstep then Policy.round_robin () else world.policy in
  let result =
    Run.exec ~pattern:world.pattern ~policy ~horizon
      ~procs:(fun pid ->
        [ Async_attempt.proposer proto ~me:pid ~input:(500 + pid) ])
      ()
  in
  let proposals = List.map (fun p -> (p, 500 + p)) (Pid.all ~n_plus_1) in
  count_run ~proto:"async"
    (measure ~k:(n_plus_1 - 1) ~pattern:world.pattern ~proposals
       ~decisions:(Async_attempt.decisions proto)
       ~rounds:(Async_attempt.rounds_entered proto)
       result)

(* ------------------------------------------------- model checking *)

type check_violation = {
  cex_pattern : Failure_pattern.t;
  cex_prefix : Pid.t list;
  cex_report : string;
  shrunk : bool;
}

type check_outcome = {
  check_obj : Check.Scenario.obj;
  check_procs : int;
  check_depth : int;
  check_horizon : int;
  check_mutant : Check.Mutant.t option;
  patterns_swept : int;
  executions : int;
  sleep_blocked : int;
  deduped : int;
  races : int;
  backtrack_points : int;
  naive_bound : int;
  violation : check_violation option;
}

let m_check_runs = Obs.Metrics.counter "harness.check.runs"
let m_check_violations = Obs.Metrics.counter "harness.check.violations"

let check_exhaustive ?(jobs = 1) ?procs ?(depth = 6) ?(horizon = 400) ?patterns
    ?(should_stop = fun () -> false) ?(spans = Obs.Span.null) ?mutant obj =
  let procs =
    let floor = Check.Scenario.min_procs obj in
    match procs with Some p -> max p floor | None -> max 2 floor
  in
  let patterns =
    match patterns with
    | Some ps -> ps
    | None -> Check.Scenario.patterns obj ~procs
  in
  let make = Check.Scenario.make obj ~procs in
  let pool = Exec.Pool.create ~jobs () in
  (* The mutant flags are plain global refs: set them once around the
     whole sweep (probes, pool units, shrink replays) rather than per
     unit, so worker domains only ever read them — per-unit set/restore
     from concurrent workers could flip an implementation back to
     healthy mid-run. The spawn fence publishes the writes. *)
  Check.Mutant.with_ mutant (fun () ->
      let replay ~pattern ~prefix =
        let fibers, check = make () in
        let policy = Policy.script prefix ~then_:(Policy.round_robin ()) in
        let result = Run.exec ~pattern ~policy ~horizon ~procs:fibers () in
        match check result.Run.trace with
        | Ok () -> None
        | Error report -> Some report
      in
      (* Work units: one DPOR root branch per pattern per initially
         enabled process (probed serially here), falling back to one
         whole-tree unit when there is nothing to shard — same unit
         list at every [jobs], which is what makes -j N byte-identical
         to -j 1. *)
      let probe = Obs.Span.start spans "check.probe" in
      let units =
        patterns
        |> List.mapi (fun pi pattern ->
               let branches =
                 if depth = 0 then []
                 else Check.Dpor.root_branches ~pattern ~make ()
               in
               match branches with
               | [] -> [ (pi, pattern, None) ]
               | bs -> List.mapi (fun bi _ -> (pi, pattern, Some (bs, bi))) bs)
        |> List.concat |> Array.of_list
      in
      Obs.Span.finish spans probe;
      Obs.Metrics.incr m_check_runs;
      (* Units measure their own wall window and phase aggregates (as
         plain data — a scope is single-writer, so worker domains never
         touch it) and the coordinator converts them to spans after the
         merge, in unit order: the exported structure is identical at
         every [jobs]. *)
      let traced = Obs.Span.enabled spans in
      let results =
        Exec.Pool.map_until pool
          ~stop:(fun (_, _, o, _) -> o.Check.Dpor.counterexample <> None)
          ~f:(fun i ->
            let pi, pattern, branch = units.(i) in
            let phases = ref [] in
            let on_phase =
              if traced then
                Some (fun name us -> phases := (name, us) :: !phases)
              else None
            in
            let t0 = if traced then Obs.Span.now_us () else 0 in
            let o =
              match branch with
              | None ->
                  Check.Dpor.explore ~pattern ~depth ~horizon ~should_stop
                    ?on_phase ~make ()
              | Some (branches, index) ->
                  Check.Dpor.explore_branch ~pattern ~depth ~horizon
                    ~should_stop ?on_phase ~branches ~index ~make ()
            in
            let t1 = if traced then Obs.Span.now_us () else 0 in
            (pi, pattern, o, (t0, t1, List.rev !phases)))
          (Array.length units)
      in
      if traced then
        List.iteri
          (fun i (_, _, _, (t0, t1, phases)) ->
            let pi, _, branch = units.(i) in
            let name =
              match branch with
              | None -> Printf.sprintf "dpor.p%d" pi
              | Some (_, bi) -> Printf.sprintf "dpor.p%d.b%d" pi bi
            in
            let uid = Obs.Span.emit spans ~name ~start_us:t0 ~stop_us:t1 () in
            (* phase spans carry durations, not positions: lay them out
               back-to-back from the unit start so the tree still reads
               as a flame graph *)
            let cursor = ref t0 in
            List.iter
              (fun (pname, us) ->
                ignore
                  (Obs.Span.emit spans ~parent:uid ~name:pname ~start_us:!cursor
                     ~stop_us:(!cursor + us) ());
                cursor := !cursor + us)
              phases)
          results;
      let zero =
        {
          Check.Dpor.executions = 0;
          sleep_blocked = 0;
          deduped = 0;
          races = 0;
          backtrack_points = 0;
        }
      in
      let stats =
        List.fold_left
          (fun acc (_, _, o, _) -> Check.Dpor.merge_stats acc o.Check.Dpor.stats)
          zero results
      in
      let swept =
        match List.rev results with [] -> 0 | (pi, _, _, _) :: _ -> pi + 1
      in
      let violation =
        match List.rev results with
        | ( _,
            pattern,
            { Check.Dpor.counterexample = Some (prefix, report); _ },
            _ )
          :: _ ->
            Obs.Metrics.incr m_check_violations;
            Some
              (Obs.Span.with_ spans "check.shrink" (fun () ->
                   match Check.Shrink.minimize ~replay ~pattern ~prefix with
                   | Some (cex_pattern, cex_prefix, cex_report) ->
                       { cex_pattern; cex_prefix; cex_report; shrunk = true }
                   | None ->
                       (* replay did not reproduce — report the raw
                          counterexample and flag the failed shrink *)
                       {
                         cex_pattern = pattern;
                         cex_prefix = prefix;
                         cex_report = report;
                         shrunk = false;
                       }))
        | _ -> None
      in
      {
        check_obj = obj;
        check_procs = procs;
        check_depth = depth;
        check_horizon = horizon;
        check_mutant = mutant;
        patterns_swept = swept;
        executions = stats.Check.Dpor.executions;
        sleep_blocked = stats.Check.Dpor.sleep_blocked;
        deduped = stats.Check.Dpor.deduped;
        races = stats.Check.Dpor.races;
        backtrack_points = stats.Check.Dpor.backtrack_points;
        naive_bound = Check.Explore.count_schedules ~n_plus_1:procs ~depth;
        violation;
      })

let check_outcome_json t =
  let module J = Obs.Json in
  let crashes p =
    J.List
      (Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 p)
      |> List.filter_map (fun pid ->
             let time = Failure_pattern.crash_time p pid in
             if time = Failure_pattern.never then None
             else
               Some
                 (J.Obj
                    [ ("pid", J.Int (Pid.to_int pid)); ("time", J.Int time) ])))
  in
  J.Obj
    [
      ("object", J.String (Check.Scenario.to_string t.check_obj));
      ("procs", J.Int t.check_procs);
      ("depth", J.Int t.check_depth);
      ("horizon", J.Int t.check_horizon);
      ( "mutant",
        match t.check_mutant with
        | None -> J.Null
        | Some m -> J.String (Check.Mutant.to_string m) );
      ("patterns_swept", J.Int t.patterns_swept);
      ("executions", J.Int t.executions);
      ("sleep_blocked", J.Int t.sleep_blocked);
      ("deduped", J.Int t.deduped);
      ("races", J.Int t.races);
      ("backtrack_points", J.Int t.backtrack_points);
      ("naive_bound", J.Int t.naive_bound);
      ( "violation",
        match t.violation with
        | None -> J.Null
        | Some v ->
            J.Obj
              [
                ("shrunk", J.Bool v.shrunk);
                ("crashes", crashes v.cex_pattern);
                ( "prefix",
                  J.List
                    (List.map (fun p -> J.Int (Pid.to_int p)) v.cex_prefix) );
                ("report", J.String v.cex_report);
              ] );
    ]

let run_extraction_of ?(horizon = 150_000) ?(tail = 25_000) ~f ~source world =
  let n_plus_1 = Failure_pattern.n_plus_1 world.pattern in
  let rng = world.world_rng in
  let pattern = world.pattern in
  let stab_time = 120 in
  (* Existentially package the detector with its phi map and equality.
     [run_src] is the general form: a live source plus any companion
     fibers it needs (the heartbeat monitors, for implemented
     detectors) and the policy to run under. *)
  let run_src (type v) ~policy ~extra (detector : v Sim.source)
      (equal : v -> v -> bool) (phi : v Phi.map) =
    let ex =
      Extract_upsilon.create ~name:"ex" ~n_plus_1 ~f ~detector ~equal ~phi
    in
    let result =
      Run.exec ~pattern ~policy ~horizon
        ~procs:(fun pid -> extra pid @ Extract_upsilon.fibers ex ~me:pid)
        ()
    in
    let last_time = Trace.last_time result.trace in
    let correct = Failure_pattern.correct pattern in
    let stabilized_at =
      List.fold_left
        (fun acc (pid, time, _) ->
          if Pid.Set.mem pid correct then max acc time else acc)
        0
        (Extract_upsilon.change_log ex)
    in
    let verdict = Extract_upsilon.check ex ~pattern ~last_time ~tail in
    Obs.Metrics.incr m_runs;
    Obs.Metrics.incr (Obs.Metrics.counter "harness.runs{proto=extraction}");
    Obs.Metrics.incr
      (match verdict with Ok () -> m_verdict_ok | Error _ -> m_verdict_fail);
    (verdict, stabilized_at)
  in
  let run (type v) (detector : v Detector.t) (equal : v -> v -> bool)
      (phi : v Phi.map) =
    run_src ~policy:world.policy
      ~extra:(fun _ -> [])
      (Detector.source detector) equal phi
  in
  match source with
  | `Omega ->
      run (Omega.make ~rng ~pattern ~stab_time ()) Pid.equal
        (Phi.omega ~n_plus_1 ~f)
  | `Omega_k k ->
      run (Omega_k.make ~rng ~pattern ~k ~stab_time ()) Pid.Set.equal
        (Phi.omega_k ~n_plus_1 ~f ~k)
  | `Ev_perfect ->
      run (Ev_perfect.make ~rng ~pattern ~stab_time ()) Pid.Set.equal
        (Phi.suspicion ~n_plus_1 ~f)
  | `Perfect ->
      run (Perfect.make ~pattern) Pid.Set.equal (Phi.suspicion ~n_plus_1 ~f)
  | `Upsilon_f ->
      run (Upsilon_f.make ~rng ~pattern ~f ~stab_time ()) Pid.Set.equal
        (Phi.upsilon_f ~n_plus_1 ~f)
  | `Vitality watched ->
      run (Vitality.make ~rng ~pattern ~watched ~stab_time ()) Bool.equal
        (Phi.vitality ~n_plus_1 ~f ~watched)
  | `Omega_batched w ->
      run (Omega.make ~rng ~pattern ~stab_time ()) Pid.equal
        (Phi.with_batches w (Phi.omega ~n_plus_1 ~f))
  | `Hb_ev_perfect net ->
      (* An *implemented* ◇P as the stable source: the extraction
         queries the live heartbeat state while the monitors run
         alongside it, and the policy turns fair at GST (bounded
         process speeds are the other half of partial synchrony). *)
      let eng = Hb_ev_perfect.make ~n_plus_1 ~net () in
      run_src
        ~policy:(Policy.fair_after ~gst:net.Link.gst world.policy)
        ~extra:(fun pid -> [ Heartbeat.fiber eng ~me:pid ])
        (Heartbeat.source eng) Pid.Set.equal
        (Phi.suspicion ~n_plus_1 ~f)

(* --------------------------------------------- implemented detectors *)

(* Heartbeat detector alone under a partially synchronous world: run the
   monitors, then check the mode's spec on the reconstructed history
   together with the link-layer contract. Returns the verdict and the
   empirical stabilization time (last suspicion change at any correct
   process). *)
let run_hb_detector ?(horizon = 6_000) ?params ~mode ~net world =
  let n_plus_1 = Failure_pattern.n_plus_1 world.pattern in
  let pattern = world.pattern in
  let eng =
    match mode with
    | `Ev_perfect -> Hb_ev_perfect.make ?params ~n_plus_1 ~net ()
    | `Ev_strong -> Hb_ev_strong.make ?params ~n_plus_1 ~net ()
  in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.fair_after ~gst:net.Link.gst world.policy)
      ~horizon
      ~procs:(fun pid -> [ Heartbeat.fiber eng ~me:pid ])
      ()
  in
  let last = Trace.last_time result.trace in
  let link = Heartbeat.link eng in
  let verdict =
    match Link.check_partial_synchrony link with
    | Error _ as e -> e
    | Ok () -> (
        match Link.check_crash_isolation link ~pattern with
        | Error _ as e -> e
        | Ok () -> (
            match mode with
            | `Ev_perfect -> Hb_ev_perfect.check eng ~pattern ~horizon:last
            | `Ev_strong -> Hb_ev_strong.check eng ~pattern ~horizon:last))
  in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr (Obs.Metrics.counter "harness.runs{proto=hb}");
  Obs.Metrics.incr
    (match verdict with Ok () -> m_verdict_ok | Error _ -> m_verdict_fail);
  (verdict, Heartbeat.stabilized_at eng ~only:(Failure_pattern.is_correct pattern))

let run_msg_consensus ?(horizon = 3_000_000) ?omega_impl world =
  let n_plus_1 = Failure_pattern.n_plus_1 world.pattern in
  let pattern = world.pattern in
  let proposals = List.map (fun p -> (p, 800 + p)) (Pid.all ~n_plus_1) in
  let finish source proto result =
    let rounds =
      List.fold_left
        (fun acc (_, r) -> max acc r)
        0
        (Msg_consensus.decision_rounds proto)
    in
    let m =
      count_run ~proto:"msg_consensus"
        (measure ~source ~k:1 ~pattern ~proposals
           ~decisions:(Msg_consensus.decisions proto)
           ~rounds result)
    in
    (m, Msg_consensus.check_memory proto)
  in
  match omega_impl with
  | None ->
      let omega = Omega.make ~rng:world.world_rng ~pattern () in
      let proto =
        Msg_consensus.create ~name:"mc" ~n_plus_1
          ~omega:(Detector.source omega)
      in
      let result =
        Run.exec ~pattern ~policy:world.policy ~horizon
          ~procs:(fun pid ->
            Msg_consensus.fibers proto ~me:pid ~input:(800 + pid))
          ()
      in
      finish (Detector.source omega) proto result
  | Some net ->
      (* Ω implemented from heartbeats: the protocol queries the live
         min-unsuspected leader; query replay validates those samples
         against the post-run reconstructed ◇P history lowered through
         the same extraction. *)
      let eng = Hb_ev_perfect.make ~n_plus_1 ~net () in
      let proto =
        Msg_consensus.create ~name:"mc" ~n_plus_1
          ~omega:(Heartbeat.leader_source eng)
      in
      (* wind the monitors down once every correct process has decided,
         so the run quiesces instead of heartbeating to the horizon *)
      let correct = Pid.Set.elements (Failure_pattern.correct pattern) in
      let done_ () =
        let decided = Msg_consensus.decisions proto in
        List.for_all (fun p -> List.mem_assoc p decided) correct
      in
      let result =
        Run.exec ~pattern
          ~policy:(Policy.fair_after ~gst:net.Link.gst world.policy)
          ~horizon
          ~procs:(fun pid ->
            Heartbeat.fiber ~until:done_ eng ~me:pid
            :: Msg_consensus.fibers proto ~me:pid ~input:(800 + pid))
          ()
      in
      let replay =
        Pairwise.omega_of_ev_perfect ~n_plus_1 (Heartbeat.to_detector eng)
      in
      finish (Detector.source replay) proto result
