open Kernel
open Memory
open Reduction

type outcome = {
  id : string;
  claim : string;
  table : Report.table;
  ok : bool;
}

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let mean_int l = mean (List.map float_of_int l)

(* Run one experiment's independent units on a worker pool. Results come
   back in input order whatever [jobs] is, so the table folds out
   identically at -j 1 and -j N; unit bodies must be self-contained
   (build their own world, mutate no enclosing refs — fold verdicts over
   the returned list instead). *)
let pmap ~jobs xs f = Exec.Pool.map_list (Exec.Pool.create ~jobs ()) ~f xs
let pseeds ~jobs seeds f = pmap ~jobs (List.init seeds Fun.id) f

(* ------------------------------------------------------------------ E1 *)

let e1_fig1_set_agreement ?(jobs = 1) ?(seeds = 25) ?(sizes = [ 2; 3; 4; 5; 6 ])
    () =
  let all_ok = ref true in
  let rows =
    List.map
      (fun n_plus_1 ->
        let runs =
          pseeds ~jobs seeds (fun i ->
              let world =
                Harness.random_world ~seed:((n_plus_1 * 1000) + i) ~n_plus_1
                  ~max_faulty:(n_plus_1 - 1) ()
              in
              Harness.run_fig1 world)
        in
        List.iter (fun m -> if not (Harness.ok m) then all_ok := false) runs;
        [
          Report.cell_int n_plus_1;
          Report.cell_int (n_plus_1 - 1);
          Report.cell_int seeds;
          Report.cell_pct
            (mean (List.map (fun m -> if Harness.ok m then 1.0 else 0.0) runs));
          Report.cell_float
            (mean_int (List.map (fun m -> m.Harness.last_decision_time) runs));
          Report.cell_float
            (Stats.percentile_or ~default:0.0 0.95
               (List.map (fun m -> m.Harness.last_decision_time) runs));
          Report.cell_float (mean_int (List.map (fun m -> m.Harness.rounds) runs));
          Report.cell_int
            (List.fold_left
               (fun acc m ->
                 max acc m.Harness.verdict.Agreement.Sa_spec.distinct_decided)
               0 runs);
        ])
      sizes
  in
  {
    id = "e1";
    claim =
      "Fig 1 / Theorem 2: Upsilon + registers solve n-set-agreement among \
       n+1 processes, tolerating n crashes (termination, <= n values, \
       validity on every run)";
    table =
      {
        Report.title = "E1: Fig-1 Upsilon-based n-set-agreement";
        headers =
          [ "n+1"; "k=n"; "runs"; "spec-ok"; "mean t(decide)"; "p95 t(decide)"; "mean rounds"; "max distinct" ];
        rows;
      };
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ E2 *)

let e2_fig2_f_resilient ?(jobs = 1) ?(seeds = 15) ?(sizes = [ 3; 4; 5; 6 ]) () =
  let all_ok = ref true in
  let rows =
    List.concat_map
      (fun n_plus_1 ->
        List.init (n_plus_1 - 1) (fun fm1 ->
            let f = fm1 + 1 in
            let runs =
              pseeds ~jobs seeds (fun i ->
                  let world =
                    Harness.random_world
                      ~seed:((n_plus_1 * 7919) + (f * 131) + i)
                      ~n_plus_1 ~max_faulty:f ()
                  in
                  Harness.run_fig2 ~f world)
            in
            List.iter (fun m -> if not (Harness.ok m) then all_ok := false) runs;
            [
              Report.cell_int n_plus_1;
              Report.cell_int f;
              Report.cell_int seeds;
              Report.cell_pct
                (mean
                   (List.map (fun m -> if Harness.ok m then 1.0 else 0.0) runs));
              Report.cell_float
                (mean_int (List.map (fun m -> m.Harness.last_decision_time) runs));
              Report.cell_int
                (List.fold_left
                   (fun acc m ->
                     max acc m.Harness.verdict.Agreement.Sa_spec.distinct_decided)
                   0 runs);
            ]))
      sizes
  in
  {
    id = "e2";
    claim =
      "Fig 2 / Theorem 6: Upsilon^f + registers solve f-resilient \
       f-set-agreement for every 1 <= f <= n";
    table =
      {
        Report.title = "E2: Fig-2 Upsilon^f-based f-set-agreement";
        headers = [ "n+1"; "f"; "runs"; "spec-ok"; "mean t(last decide)"; "max distinct" ];
        rows;
      };
    ok = !all_ok;
  }

(* ------------------------------------------------------------- E3 / E4 *)

let adversary_table ~jobs ~id ~claim ~title ~n_plus_1 ~f ~max_phases =
  (* both verdict shapes are defeats, so the claim holds whenever every
     run produces a verdict — which the type guarantees *)
  let rows =
    pmap ~jobs Adversary.Candidates.all
      (fun cand ->
        let defeat, detail =
          match
            Adversary.run cand ~n_plus_1 ~f ~max_phases ~phase_budget:8_000
          with
          | Adversary.Never_stabilizes { flips; _ } ->
              ("never stabilizes", Printf.sprintf "%d flips forced" flips)
          | Adversary.Stuck { on; phase; _ } ->
              ( "stuck",
                Format.asprintf "on %a at phase %d (all-crash extension kills it)"
                  Pid.Set.pp on phase )
        in
        [ cand.Adversary.cand_name; defeat; detail ])
  in
  {
    id;
    claim;
    table =
      {
        Report.title =
          Printf.sprintf "%s (n+1=%d, f=%d, %d phases max)" title n_plus_1 f
            max_phases;
        headers = [ "candidate extractor"; "defeat mode"; "detail" ];
        rows;
      };
    ok = true;
  }

let e3_theorem1_adversary ?(jobs = 1) ?(max_phases = 25) () =
  adversary_table ~jobs ~id:"e3"
    ~claim:
      "Theorem 1: Upsilon is strictly weaker than Omega_n (n >= 2) - the \
       solo-schedule adversary defeats every candidate extractor"
    ~title:"E3: Theorem-1 adversary vs Upsilon->Omega_n candidates" ~n_plus_1:3
    ~f:2 ~max_phases

let e4_theorem5_adversary ?(jobs = 1) ?(max_phases = 25) () =
  adversary_table ~jobs ~id:"e4"
    ~claim:
      "Theorem 5: Upsilon^f is strictly weaker than Omega^f (2 <= f <= n) - \
       same adversary in the f-resilient setting"
    ~title:"E4: Theorem-5 adversary vs Upsilon^f->Omega^f candidates"
    ~n_plus_1:5 ~f:3 ~max_phases

(* ------------------------------------------------------------------ E5 *)

let e5_fig3_extraction ?(jobs = 1) ?(seeds = 8) ?impl () =
  let n_plus_1 = 4 in
  let f = 2 in
  let sources =
    [
      ("Omega", `Omega);
      ("Omega_k (k=2)", `Omega_k 2);
      ("eventually-perfect", `Ev_perfect);
      ("perfect", `Perfect);
      ("Upsilon^f itself", `Upsilon_f);
      ("vitality(p1)", `Vitality 0);
      ("Omega, w(sigma)=3", `Omega_batched 3);
    ]
    @
    (* Gated: the implemented (heartbeat) ◇P as one more stable source —
       the only row whose detector is computed inside the run. *)
    match impl with
    | None -> []
    | Some net -> [ ("hb ev-perfect (implemented)", `Hb_ev_perfect net) ]
  in
  let all_ok = ref true in
  let rows =
    List.map
      (fun (label, source) ->
        let results =
          pseeds ~jobs seeds (fun i ->
              let world =
                Harness.random_world
                  ~seed:((Hashtbl.hash label * 31) + i)
                  ~n_plus_1 ~max_faulty:f ~latest:150 ()
              in
              Harness.run_extraction_of ~f ~source world)
        in
        let oks =
          List.map (fun (v, _) -> match v with Ok () -> 1.0 | Error _ -> 0.0) results
        in
        List.iter
          (fun (v, _) -> match v with Ok () -> () | Error _ -> all_ok := false)
          results;
        [
          label;
          Report.cell_int seeds;
          Report.cell_pct (mean oks);
          Report.cell_float (mean_int (List.map snd results));
        ])
      sources
  in
  {
    id = "e5";
    claim =
      "Fig 3 / Theorem 10: every stable f-non-trivial detector can be \
       transformed into Upsilon^f (extracted output eventually stable, \
       common, of size >= n+1-f, and never the correct set)";
    table =
      {
        Report.title =
          Printf.sprintf "E5: Fig-3 extraction of Upsilon^f (n+1=%d, f=%d)"
            n_plus_1 f;
        headers = [ "source detector"; "runs"; "spec-ok"; "mean t(stabilize)" ];
        rows;
      };
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ E6 *)

let e6_pairwise_reductions ?(jobs = 1) ?(seeds = 20) () =
  let open Detectors in
  let all_ok = ref true in
  let pct_ok results =
    List.iter (fun r -> if not r then all_ok := false) results;
    Report.cell_pct (mean (List.map (fun r -> if r then 1.0 else 0.0) results))
  in
  let omega_to_upsilon =
    pseeds ~jobs seeds (fun i ->
        let rng = Rng.create (i + 1) in
        let n_plus_1 = 3 + (i mod 3) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
            ~latest:50
        in
        let d = Omega.make ~rng ~pattern ~stab_time:60 () in
        Pairwise.upsilon_of_omega ~n_plus_1 d |> fun u ->
        Upsilon.check u ~pattern ~stab_by:60 ~horizon:160 = Ok ())
  in
  let omega_n_to_upsilon =
    pseeds ~jobs seeds (fun i ->
        let rng = Rng.create (i + 100) in
        let n_plus_1 = 3 + (i mod 3) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
            ~latest:50
        in
        let d = Omega_k.make ~rng ~pattern ~k:(n_plus_1 - 1) ~stab_time:60 () in
        Pairwise.upsilon_of_omega_k ~n_plus_1 d |> fun u ->
        Upsilon.check u ~pattern ~stab_by:60 ~horizon:160 = Ok ())
  in
  let omega_f_to_upsilon_f =
    pseeds ~jobs seeds (fun i ->
        let rng = Rng.create (i + 200) in
        let n_plus_1 = 4 in
        let f = 1 + (i mod 3) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:50
        in
        let d = Omega_k.make ~rng ~pattern ~k:f ~stab_time:60 () in
        Pairwise.upsilon_of_omega_k ~n_plus_1 d |> fun u ->
        Upsilon_f.check u ~pattern ~f ~stab_by:60 ~horizon:160 = Ok ())
  in
  let two_proc_equivalence =
    pseeds ~jobs seeds (fun i ->
        let rng = Rng.create (i + 300) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1:2 ~max_faulty:1 ~latest:40
        in
        let omega = Omega.make ~rng ~pattern ~stab_time:50 () in
        let upsilon = Upsilon.make ~rng ~pattern ~stab_time:50 () in
        Upsilon.check
          (Pairwise.upsilon_of_omega ~n_plus_1:2 omega)
          ~pattern ~stab_by:50 ~horizon:150
        = Ok ()
        && Omega.check
             (Pairwise.omega_of_upsilon_2proc upsilon)
             ~pattern ~stab_by:50 ~horizon:150
           = Ok ())
  in
  let omega_to_anti =
    pseeds ~jobs seeds (fun i ->
        let rng = Rng.create (i + 400) in
        let n_plus_1 = 3 + (i mod 3) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
            ~latest:40
        in
        let omega = Omega.make ~rng ~pattern ~stab_time:50 () in
        Anti_omega.check
          (Pairwise.anti_omega_of_omega ~n_plus_1 omega)
          ~pattern ~stab_by:50 ~horizon:250
        = Ok ())
  in
  let ev_perfect_to_omega =
    pseeds ~jobs seeds (fun i ->
        let rng = Rng.create (i + 600) in
        let n_plus_1 = 3 + (i mod 3) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
            ~latest:40
        in
        let dp = Ev_perfect.make ~rng ~pattern ~stab_time:50 () in
        let stable_from = Ev_perfect.stable_from ~pattern ~stab_time:50 in
        Omega.check
          (Pairwise.omega_of_ev_perfect ~n_plus_1 dp)
          ~pattern ~stab_by:stable_from ~horizon:(stable_from + 100)
        = Ok ())
  in
  let ev_perfect_chain_to_upsilon =
    pseeds ~jobs seeds (fun i ->
        let rng = Rng.create (i + 700) in
        let n_plus_1 = 3 + (i mod 3) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
            ~latest:40
        in
        let dp = Ev_perfect.make ~rng ~pattern ~stab_time:50 () in
        let stable_from = Ev_perfect.stable_from ~pattern ~stab_time:50 in
        let chained =
          Pairwise.upsilon_of_omega ~n_plus_1
            (Pairwise.omega_of_ev_perfect ~n_plus_1 dp)
        in
        Upsilon.check chained ~pattern ~stab_by:stable_from
          ~horizon:(stable_from + 100)
        = Ok ())
  in
  let upsilon1_to_omega =
    pseeds ~jobs seeds (fun i ->
        let rng = Rng.create (i + 500) in
        let n_plus_1 = 3 in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:1 ~latest:60
        in
        let d = Upsilon_f.make ~rng ~pattern ~f:1 ~stab_time:40 () in
        let red =
          Pairwise.Omega_from_upsilon1.create ~name:"o1" ~n_plus_1
            ~upsilon1:(Detector.source d)
        in
        let result =
          Run.exec ~pattern
            ~policy:(Policy.random (Rng.split rng))
            ~horizon:60_000
            ~procs:(fun pid -> Pairwise.Omega_from_upsilon1.fibers red ~me:pid)
            ()
        in
        Pairwise.Omega_from_upsilon1.check red ~pattern
          ~last_time:(Trace.last_time result.trace)
          ~tail:10_000
        = Ok ())
  in
  let rows =
    [
      [ "Omega -> Upsilon (complement)"; Report.cell_int seeds; pct_ok omega_to_upsilon ];
      [ "Omega_n -> Upsilon (complement)"; Report.cell_int seeds; pct_ok omega_n_to_upsilon ];
      [ "Omega^f -> Upsilon^f (complement)"; Report.cell_int seeds; pct_ok omega_f_to_upsilon_f ];
      [ "Omega <-> Upsilon at n=1"; Report.cell_int seeds; pct_ok two_proc_equivalence ];
      [ "Omega -> anti-Omega (cycling)"; Report.cell_int seeds; pct_ok omega_to_anti ];
      [ "<>P -> Omega (min unsuspected)"; Report.cell_int seeds; pct_ok ev_perfect_to_omega ];
      [ "<>P -> Omega -> Upsilon (chain)"; Report.cell_int seeds; pct_ok ev_perfect_chain_to_upsilon ];
      [ "Upsilon^1 -> Omega (timestamps)"; Report.cell_int seeds; pct_ok upsilon1_to_omega ];
    ]
  in
  {
    id = "e6";
    claim =
      "Section 4 / 5.3: the pairwise reductions between Omega-family \
       detectors and Upsilon-family detectors all preserve the target specs";
    table =
      {
        Report.title = "E6: pairwise detector reductions";
        headers = [ "reduction"; "runs"; "spec-ok" ];
        rows;
      };
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ E7 *)

let e7_upsilon_vs_omega_n ?(jobs = 1) ?(seeds = 15)
    ?(stab_times = [ 0; 200; 800; 3200 ]) () =
  let n_plus_1 = 4 in
  let all_ok = ref true in
  (* The lock-step round-robin schedule with distinct inputs is the one
     where the oracle truly gates progress (no converge instance ever
     commits by lucky asymmetry), so t(decide) tracks the detector's
     stabilization time; random schedules give the average case. *)
  let lockstep_world () =
    {
      Harness.pattern = Failure_pattern.no_failures ~n_plus_1;
      policy = Policy.round_robin ();
      world_rng = Rng.create 424242;
    }
  in
  let rows =
    List.concat_map
      (fun stab_time ->
        let gated alg =
          match alg with
          | `Upsilon -> Harness.run_fig1 ~stab_time (lockstep_world ())
          | `Omega_n ->
              Harness.run_omega_k_baseline ~stab_time ~k:(n_plus_1 - 1)
                (lockstep_world ())
        in
        let random_runs alg =
          pseeds ~jobs seeds (fun i ->
              let world =
                Harness.random_world
                  ~seed:((stab_time * 17) + i)
                  ~n_plus_1 ~max_faulty:(n_plus_1 - 1) ()
              in
              match alg with
              | `Upsilon -> Harness.run_fig1 ~stab_time world
              | `Omega_n ->
                  Harness.run_omega_k_baseline ~stab_time ~k:(n_plus_1 - 1)
                    world)
        in
        let row label alg =
          let locked = gated alg in
          let randoms = random_runs alg in
          List.iter
            (fun m -> if not (Harness.ok m) then all_ok := false)
            (locked :: randoms);
          [
            Report.cell_int stab_time;
            label;
            Report.cell_pct
              (mean
                 (List.map
                    (fun m -> if Harness.ok m then 1.0 else 0.0)
                    (locked :: randoms)));
            Report.cell_int locked.Harness.last_decision_time;
            Report.cell_float
              (mean_int
                 (List.map (fun m -> m.Harness.last_decision_time) randoms));
          ]
        in
        [ row "Upsilon (Fig 1)" `Upsilon; row "Omega_n [18]" `Omega_n ])
      stab_times
  in
  {
    id = "e7";
    claim =
      "Corollaries 3-4 context: the strictly weaker Upsilon still solves \
       n-set-agreement; both Upsilon-based and Omega_n-based algorithms \
       terminate, with cost driven by the detector's stabilization time";
    table =
      {
        Report.title =
          Printf.sprintf "E7: Upsilon vs Omega_n set agreement (n+1=%d)"
            n_plus_1;
        headers =
          [ "stab time"; "algorithm"; "spec-ok"; "t(decide) lockstep"; "mean t(decide) random" ];
        rows;
      };
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ E8 *)

let e8_impossibility ?(jobs = 1) ?(horizons = [ 20_000; 80_000; 320_000 ]) () =
  let n_plus_1 = 3 in
  let results =
    pmap ~jobs horizons (fun horizon ->
        let world =
          {
            Harness.pattern = Failure_pattern.no_failures ~n_plus_1;
            policy = Policy.round_robin ();
            world_rng = Rng.create 1;
          }
        in
        let async = Harness.run_async_attempt ~horizon ~lockstep:true world in
        let deciders =
          n_plus_1
          - Pid.Set.cardinal async.Harness.verdict.Agreement.Sa_spec.undecided_correct
        in
        let world_u =
          {
            Harness.pattern = Failure_pattern.no_failures ~n_plus_1;
            policy = Policy.round_robin ();
            world_rng = Rng.create 1;
          }
        in
        let with_upsilon = Harness.run_fig1 ~horizon ~stab_time:0 world_u in
        (horizon, async, deciders, with_upsilon))
  in
  let ok = ref true in
  let rows =
    List.concat_map
      (fun (horizon, async, deciders, with_upsilon) ->
        if deciders <> 0 then ok := false;
        if not (Harness.ok with_upsilon) then ok := false;
        [
          [
            Report.cell_int horizon;
            "no detector (lockstep)";
            Report.cell_int deciders;
            Report.cell_int async.Harness.rounds;
            "starves";
          ];
          [
            Report.cell_int horizon;
            "Upsilon (same schedule)";
            Report.cell_int
              (n_plus_1
              - Pid.Set.cardinal
                  with_upsilon.Harness.verdict.Agreement.Sa_spec.undecided_correct);
            Report.cell_int with_upsilon.Harness.rounds;
            Printf.sprintf "decides by t=%d" with_upsilon.Harness.last_decision_time;
          ];
        ])
      results
  in
  {
    id = "e8";
    claim =
      "Impossibility backdrop [2,14,20]: without failure information the \
       Fig-1 skeleton admits a non-terminating schedule at every horizon, \
       while the same schedule with Upsilon decides - the impossibility the \
       paper circumvents";
    table =
      {
        Report.title =
          Printf.sprintf "E8: wait-free impossibility vs Upsilon (n+1=%d)"
            n_plus_1;
        headers = [ "horizon"; "configuration"; "deciders"; "rounds burned"; "behaviour" ];
        rows;
      };
    ok = !ok;
  }

(* ------------------------------------------------------------------ A1 *)

let a1_snapshot_ablation ?(jobs = 1) ?(sizes = [ 2; 4; 8 ]) () =
  let steps_for ~impl ~n_plus_1 =
    let ops_per_proc = 10 in
    let pattern = Failure_pattern.no_failures ~n_plus_1 in
    match impl with
    | `Registers ->
        let snap =
          Snapshot.create ~name:"ab" ~size:n_plus_1 ~init:(fun _ -> 0)
        in
        let body pid () =
          for i = 1 to ops_per_proc do
            Snapshot.update snap ~me:pid i;
            ignore (Snapshot.scan snap)
          done
        in
        let result =
          Run.exec ~pattern
            ~policy:(Policy.random (Rng.create 5))
            ~horizon:5_000_000
            ~procs:(fun pid -> [ body pid ])
            ()
        in
        result.steps
    | `Native ->
        let snap =
          Native_snapshot.create ~name:"ab" ~size:n_plus_1 ~init:(fun _ -> 0)
        in
        let body pid () =
          for i = 1 to ops_per_proc do
            Native_snapshot.update snap ~me:pid i;
            ignore (Native_snapshot.scan snap)
          done
        in
        let result =
          Run.exec ~pattern
            ~policy:(Policy.random (Rng.create 5))
            ~horizon:5_000_000
            ~procs:(fun pid -> [ body pid ])
            ()
        in
        result.steps
  in
  let rows =
    pmap ~jobs sizes (fun n_plus_1 ->
        (n_plus_1, steps_for ~impl:`Registers ~n_plus_1,
         steps_for ~impl:`Native ~n_plus_1))
    |> List.concat_map (fun (n_plus_1, reg, nat) ->
        let per_op total = float_of_int total /. float_of_int (n_plus_1 * 20) in
        [
          [
            Report.cell_int n_plus_1;
            "Afek et al. (registers)";
            Report.cell_int reg;
            Report.cell_float (per_op reg);
          ];
          [
            Report.cell_int n_plus_1;
            "native (one step/op)";
            Report.cell_int nat;
            Report.cell_float (per_op nat);
          ];
        ])
  in
  {
    id = "a1";
    claim =
      "Ablation: the register-built atomic snapshot [1] the paper's model \
       requires costs O(n) steps per operation vs 1 for a native object - \
       the protocols pay this faithfully";
    table =
      {
        Report.title = "A1: snapshot implementation ablation (10 update+scan pairs per process)";
        headers = [ "n+1"; "implementation"; "total steps"; "steps/op" ];
        rows;
      };
    ok = true;
  }

(* ------------------------------------------------------------------ A2 *)

let a2_escape_ablation ?(jobs = 1) ?(seeds = 12) () =
  let open Agreement in
  let n_plus_1 = 3 in
  let configs =
    [
      ("all escapes on", Upsilon_sa.all_escapes, true);
      ( "no Stable[r] watch",
        { Upsilon_sa.all_escapes with watch_stable = false },
        true );
      ( "no D[r] adoption",
        { Upsilon_sa.all_escapes with watch_round_d = false },
        true );
      ("no D watch", { Upsilon_sa.all_escapes with watch_final = false }, true);
      ( "no D[r] and no D",
        {
          Upsilon_sa.all_escapes with
          watch_round_d = false;
          watch_final = false;
        },
        false );
    ]
  in
  let ok = ref true in
  let rows =
    List.map
      (fun (label, escapes, expect_termination) ->
        (* The adversarial setup where the escapes matter: failure-free,
           Upsilon pinned on a strict subset, lockstep scheduling. *)
        let terminated =
          pseeds ~jobs seeds (fun i ->
              let pattern = Failure_pattern.no_failures ~n_plus_1 in
              let world =
                {
                  Harness.pattern;
                  policy =
                    (if i mod 2 = 0 then Policy.round_robin ()
                     else Policy.random (Rng.create (900 + i)));
                  world_rng = Rng.create (800 + i);
                }
              in
              let m = Harness.run_fig1 ~horizon:400_000 ~stab_time:0 ~escapes world in
              m.Harness.verdict.Sa_spec.termination)
        in
        let rate = mean (List.map (fun b -> if b then 1.0 else 0.0) terminated) in
        let as_expected =
          if expect_termination then rate = 1.0 else rate < 1.0
        in
        if not as_expected then ok := false;
        [
          label;
          Report.cell_int seeds;
          Report.cell_pct rate;
          (if expect_termination then "terminates" else "starves (expected)");
        ])
      configs
  in
  {
    id = "a2";
    claim =
      "Ablation: Fig 1's D[r]/D escape reads are jointly load-bearing for \
       Termination (removing both lets gladiators starve); individually \
       they are redundant escape paths";
    table =
      {
        Report.title =
          Printf.sprintf "A2: Fig-1 escape-condition ablation (n+1=%d)"
            n_plus_1;
        headers = [ "configuration"; "runs"; "termination"; "verdict" ];
        rows;
      };
    ok = !ok;
  }

(* ------------------------------------------------------------------ E9 *)

let e9_booster_consensus ?(jobs = 1) ?(seeds = 20) ?(sizes = [ 2; 3; 4; 5 ]) () =
  let open Agreement in
  let open Detectors in
  let all_ok = ref true in
  let rows =
    List.map
      (fun n_plus_1 ->
        let runs =
          pseeds ~jobs seeds (fun i ->
              let rng = Rng.create ((n_plus_1 * 613) + i) in
              let pattern =
                Failure_pattern.random rng ~n_plus_1
                  ~max_faulty:(n_plus_1 - 1) ~latest:300
              in
              let omega_n =
                Omega_k.make ~rng ~pattern ~k:(n_plus_1 - 1) ()
              in
              let proto =
                Booster_consensus.create ~name:"boost" ~n_plus_1
                  ~omega_n:(Detector.source omega_n)
              in
              let result =
                Run.exec ~pattern ~policy:(Policy.random rng)
                  ~horizon:2_000_000
                  ~procs:(fun pid ->
                    [
                      Booster_consensus.proposer proto ~me:pid
                        ~input:(700 + pid);
                    ])
                  ()
              in
              let proposals =
                List.map (fun p -> (p, 700 + p)) (Pid.all ~n_plus_1)
              in
              let verdict =
                Sa_spec.check ~k:1 ~pattern ~proposals
                  ~decisions:(Booster_consensus.decisions proto)
                  ()
              in
              let last_decide =
                List.fold_left
                  (fun acc (_, time) -> max acc time)
                  0
                  (Oracle.decision_times result.trace)
              in
              ( Sa_spec.all_ok verdict,
                Booster_consensus.max_ports_used proto,
                Booster_consensus.objects_allocated proto,
                last_decide ))
        in
        let oks = List.map (fun (o, _, _, _) -> o) runs in
        let port_ok =
          List.for_all (fun (_, ports, _, _) -> ports <= n_plus_1 - 1) runs
        in
        if not (List.for_all Fun.id oks && port_ok) then all_ok := false;
        [
          Report.cell_int n_plus_1;
          Report.cell_int seeds;
          Report.cell_pct
            (mean (List.map (fun o -> if o then 1.0 else 0.0) oks));
          Report.cell_int
            (List.fold_left (fun acc (_, p, _, _) -> max acc p) 0 runs);
          Report.cell_float
            (mean_int (List.map (fun (_, _, objs, _) -> objs) runs));
          Report.cell_float
            (mean_int (List.map (fun (_, _, _, t) -> t) runs));
        ])
      sizes
  in
  {
    id = "e9";
    claim =
      "Corollary 4 context [13,21]: Omega_n boosts n-process consensus \
       objects to n+1-process consensus (while Theorem 1 / E3 shows the \
       strictly weaker Upsilon cannot); committee-indexed objects never \
       exceed their n ports";
    table =
      {
        Report.title = "E9: Omega_n-boosted consensus from n-consensus objects";
        headers =
          [ "n+1"; "runs"; "spec-ok"; "max ports used"; "mean objects"; "mean t(decide)" ];
        rows;
      };
    ok = !all_ok;
  }

(* ----------------------------------------------------------------- E10 *)

let e10_abd_emulation ?(jobs = 1) ?(seeds = 10) ?(sizes = [ 3; 5; 7 ]) () =
  let all_ok = ref true in
  let rows =
    List.map
      (fun n_plus_1 ->
        let minority = (n_plus_1 - 1) / 2 in
        let per_client = 2 in
        let results =
          pseeds ~jobs seeds (fun i ->
              let rng = Rng.create ((n_plus_1 * 811) + i) in
              let pattern =
                Failure_pattern.random rng ~n_plus_1 ~max_faulty:minority
                  ~latest:400
              in
              let abd =
                Memory.Abd.create ~name:"e10" ~n_plus_1 ~init:0
              in
              let body me () =
                for j = 1 to per_client do
                  Memory.Abd.write abd ~me ~key:"r" ((100 * (me + 1)) + j);
                  ignore (Memory.Abd.read abd ~me ~key:"r")
                done
              in
              let result =
                Run.exec ~pattern ~policy:(Policy.random rng)
                  ~horizon:800_000
                  ~procs:(fun pid ->
                    [ Memory.Abd.server abd ~me:pid; body pid ])
                  ()
              in
              let completed = List.length (Memory.Abd.oplog abd) in
              let correct_done =
                Pid.Set.for_all
                  (fun p ->
                    List.length
                      (List.filter
                         (fun o -> Pid.equal o.Memory.Abd.pid p)
                         (Memory.Abd.oplog abd))
                    = 2 * per_client)
                  (Failure_pattern.correct pattern)
              in
              let atomic = Memory.Abd.check_atomicity abd = Ok () in
              ignore result;
              let latency =
                List.map
                  (fun o -> o.Memory.Abd.responded - o.Memory.Abd.invoked)
                  (Memory.Abd.oplog abd)
              in
              (atomic, correct_done, completed, latency))
        in
        List.iter
          (fun (atomic, correct_done, _, _) ->
            if not (atomic && correct_done) then all_ok := false)
          results;
        let latencies =
          List.concat_map (fun (_, _, _, l) -> l) results
        in
        [
          Report.cell_int n_plus_1;
          Report.cell_int minority;
          Report.cell_int seeds;
          Report.cell_pct
            (mean
               (List.map (fun (a, _, _, _) -> if a then 1.0 else 0.0) results));
          Report.cell_pct
            (mean
               (List.map (fun (_, d, _, _) -> if d then 1.0 else 0.0) results));
          Report.cell_float (mean_int latencies);
        ])
      sizes
  in
  {
    id = "e10";
    claim =
      "Substrate bridge (Attiya-Bar-Noy-Dolev): the atomic registers the \
       paper assumes are emulable over asynchronous messages with a \
       correct majority - every op log linearizes, correct clients always \
       terminate";
    table =
      {
        Report.title =
          "E10: ABD register emulation over message passing (2 write+read \
           pairs per client)";
        headers =
          [ "n+1"; "max crashes"; "runs"; "atomic"; "live"; "mean op latency" ];
        rows;
      };
    ok = !all_ok;
  }

(* ----------------------------------------------------------------- E11 *)

let e11_msg_consensus ?(jobs = 1) ?(seeds = 6) ?(sizes = [ 3; 5 ]) ?impl () =
  let open Agreement in
  let open Detectors in
  let all_ok = ref true in
  (* Gated: rerun each size with Omega implemented as the live
     min-unsuspected leader of a heartbeat ◇P instead of the oracle. *)
  let impl_rows =
    match impl with
    | None -> []
    | Some net ->
        List.map
          (fun n_plus_1 ->
            let minority = (n_plus_1 - 1) / 2 in
            let runs =
              pseeds ~jobs seeds (fun i ->
                  let world =
                    Harness.random_world
                      ~seed:((n_plus_1 * 907) + i)
                      ~n_plus_1 ~max_faulty:minority ~latest:300 ()
                  in
                  (* tight horizon: the heartbeat fiber keeps the run
                     alive to the bitter end, and decisions land within
                     a few thousand steps *)
                  let m, memory =
                    Harness.run_msg_consensus ~horizon:120_000 ~omega_impl:net
                      world
                  in
                  ( Harness.ok m,
                    memory = Ok (),
                    m.Harness.last_decision_time ))
            in
            List.iter
              (fun (o, a, _) -> if not (o && a) then all_ok := false)
              runs;
            [
              Printf.sprintf "%d (hb Omega)" n_plus_1;
              Report.cell_int minority;
              Report.cell_int seeds;
              Report.cell_pct
                (mean (List.map (fun (o, _, _) -> if o then 1.0 else 0.0) runs));
              Report.cell_pct
                (mean (List.map (fun (_, a, _) -> if a then 1.0 else 0.0) runs));
              Report.cell_float (mean_int (List.map (fun (_, _, t) -> t) runs));
            ])
          sizes
  in
  let rows =
    List.map
      (fun n_plus_1 ->
        let minority = (n_plus_1 - 1) / 2 in
        let runs =
          pseeds ~jobs seeds (fun i ->
              let rng = Rng.create ((n_plus_1 * 907) + i) in
              let pattern =
                Failure_pattern.random rng ~n_plus_1 ~max_faulty:minority
                  ~latest:300
              in
              let omega = Omega.make ~rng ~pattern () in
              let proto =
                Msg_consensus.create ~name:"mc" ~n_plus_1
                  ~omega:(Detector.source omega)
              in
              let result =
                Run.exec ~pattern ~policy:(Policy.random rng)
                  ~horizon:3_000_000
                  ~procs:(fun pid ->
                    Msg_consensus.fibers proto ~me:pid ~input:(800 + pid))
                  ()
              in
              let verdict =
                Sa_spec.check ~k:1 ~pattern
                  ~proposals:
                    (List.map (fun p -> (p, 800 + p)) (Pid.all ~n_plus_1))
                  ~decisions:(Msg_consensus.decisions proto)
                  ()
              in
              let atomic = Msg_consensus.check_memory proto = Ok () in
              let last_decide =
                List.fold_left
                  (fun acc (_, time) -> max acc time)
                  0
                  (Oracle.decision_times result.trace)
              in
              (Sa_spec.all_ok verdict, atomic, last_decide))
        in
        List.iter
          (fun (o, a, _) -> if not (o && a) then all_ok := false)
          runs;
        [
          Report.cell_int n_plus_1;
          Report.cell_int minority;
          Report.cell_int seeds;
          Report.cell_pct
            (mean (List.map (fun (o, _, _) -> if o then 1.0 else 0.0) runs));
          Report.cell_pct
            (mean (List.map (fun (_, a, _) -> if a then 1.0 else 0.0) runs));
          Report.cell_float
            (mean_int (List.map (fun (_, _, t) -> t) runs));
        ])
      sizes
  in
  {
    id = "e11";
    claim =
      "End-to-end lowering: Omega-based consensus runs unchanged over \
       ABD-emulated registers in a message-passing system with minority \
       crashes - agreement/validity/termination hold and the emulated \
       memory linearizes in every run";
    table =
      {
        Report.title = "E11: message-passing consensus (Omega + commit-adopt over ABD)";
        headers = [ "n+1"; "max crashes"; "runs"; "spec-ok"; "memory atomic"; "mean t(decide)" ];
        rows = rows @ impl_rows;
      };
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ A3 *)

let a3_fig2_snapshot_cost ?(jobs = 1) ?(seeds = 12) () =
  let open Agreement in
  let open Detectors in
  let n_plus_1 = 4 in
  let f = 2 in
  let all_ok = ref true in
  (* The snapshot path of Fig 2 (lines 15-30) only runs when every
     correct process is a gladiator: pin Υᶠ to Π over a pattern with one
     crash, under lock-step scheduling, so A[r][k] is on the critical
     path. The "random" scenario is the average case, where round-1
     converge usually decides first. *)
  let gated_run impl seed =
    let pattern = Failure_pattern.make ~n_plus_1 ~crashes:[ (3, 60 + seed) ] in
    let rng = Rng.create (4100 + seed) in
    let upsilon_f =
      Upsilon_f.make ~rng ~pattern ~f ~stable_set:(Pid.Set.full ~n_plus_1)
        ~stab_time:0 ()
    in
    let proto =
      Upsilon_f_sa.create ~snapshot_impl:impl ~name:"a3" ~n_plus_1 ~f
        ~upsilon_f:(Detector.source upsilon_f) ()
    in
    let result =
      Run.exec ~pattern
        ~policy:(Policy.round_robin ())
        ~horizon:2_000_000
        ~procs:(fun pid ->
          [ Upsilon_f_sa.proposer proto ~me:pid ~input:(200 + pid) ])
        ()
    in
    let proposals = List.map (fun p -> (p, 200 + p)) (Pid.all ~n_plus_1) in
    let verdict =
      Sa_spec.check ~k:f ~pattern ~proposals
        ~decisions:(Upsilon_f_sa.decisions proto)
        ()
    in
    (result.steps, Sa_spec.all_ok verdict)
  in
  let rows =
    List.concat_map
      (fun impl ->
        let random_runs =
          pseeds ~jobs seeds (fun i ->
              let world =
                Harness.random_world ~seed:(4000 + i) ~n_plus_1 ~max_faulty:f ()
              in
              Harness.run_fig2 ~snapshot_impl:impl ~f world)
        in
        List.iter
          (fun m -> if not (Harness.ok m) then all_ok := false)
          random_runs;
        let gated = pseeds ~jobs seeds (gated_run impl) in
        List.iter (fun (_, o) -> if not o then all_ok := false) gated;
        let gated_steps = List.map fst gated in
        [
          [
            Memory.Snap.impl_name impl;
            "gladiator-gated (lockstep)";
            Report.cell_int seeds;
            Report.cell_pct (if !all_ok then 1.0 else 0.0);
            Report.cell_float (mean_int gated_steps);
          ];
          [
            Memory.Snap.impl_name impl;
            "random worlds";
            Report.cell_int seeds;
            Report.cell_pct
              (mean
                 (List.map
                    (fun m -> if Harness.ok m then 1.0 else 0.0)
                    random_runs));
            Report.cell_float
              (mean_int
                 (List.map (fun m -> m.Harness.total_steps) random_runs));
          ];
        ])
      [ Memory.Snap.Registers; Memory.Snap.Native ]
  in
  {
    id = "a3";
    claim =
      "Ablation: Fig 2 run on the paper-faithful register-built snapshots \
       vs native snapshot objects - correctness is identical, the faithful \
       construction pays the Theta(n) per-operation step cost inside the \
       protocol";
    table =
      {
        Report.title =
          Printf.sprintf "A3: Fig-2 snapshot-substrate ablation (n+1=%d, f=%d)"
            n_plus_1 f;
        headers = [ "snapshot impl"; "scenario"; "runs"; "spec-ok"; "mean steps" ];
        rows;
      };
    ok = !all_ok;
  }

(* ------------------------------------------------- c1: model checking *)

let c1_model_checking ?(jobs = 1) ?(depth = 6) ?(mutant_depth = 12) () =
  let all_ok = ref true in
  let row ?mutant ?depth:d ?procs obj ~expect_violation =
    let depth = Option.value d ~default:depth in
    let o = Harness.check_exhaustive ~jobs ?procs ?mutant ~depth obj in
    let found = o.Harness.violation <> None in
    if found <> expect_violation then all_ok := false;
    (match o.Harness.violation with
    | Some v when not v.Harness.shrunk -> all_ok := false
    | _ -> ());
    [
      Check.Scenario.to_string obj;
      (match mutant with None -> "-" | Some m -> Check.Mutant.to_string m);
      Report.cell_int o.Harness.check_procs;
      Report.cell_int o.Harness.check_depth;
      Report.cell_int o.Harness.patterns_swept;
      Report.cell_int o.Harness.executions;
      Report.cell_int o.Harness.naive_bound;
      (match o.Harness.violation with
      | None -> "none"
      | Some v ->
          Printf.sprintf "caught (prefix %d, crashes %d)"
            (List.length v.Harness.cex_prefix)
            (List.length
               (List.filter
                  (fun p ->
                    Kernel.Failure_pattern.crash_time v.Harness.cex_pattern p
                    <> Kernel.Failure_pattern.never)
                  (Pid.all
                     ~n_plus_1:
                       (Kernel.Failure_pattern.n_plus_1 v.Harness.cex_pattern)))));
    ]
  in
  let rows =
    [
      row Check.Scenario.Register ~expect_violation:false;
      row Check.Scenario.Snapshot ~expect_violation:false;
      row Check.Scenario.Abd ~procs:3 ~expect_violation:false;
      row Check.Scenario.Commit_adopt ~expect_violation:false;
      row Check.Scenario.Abd ~procs:3 ~mutant:Check.Mutant.Abd_skip_write_back
        ~expect_violation:true;
      row Check.Scenario.Snapshot ~procs:3 ~depth:mutant_depth
        ~mutant:Check.Mutant.Snapshot_single_collect ~expect_violation:true;
      row Check.Scenario.Commit_adopt ~mutant:Check.Mutant.Converge_drop_phase2
        ~expect_violation:true;
    ]
  in
  {
    id = "c1";
    claim =
      "Model checking: DPOR exploration with linearizability/agreement \
       checking passes every clean scenario and catches all three planted \
       mutants with a shrunk, replayable counterexample";
    table =
      {
        Report.title = "C1: DPOR model checking - clean objects vs mutants";
        headers =
          [
            "object";
            "mutant";
            "procs";
            "depth";
            "patterns";
            "execs";
            "naive bound";
            "violation";
          ];
        rows;
      };
    ok = !all_ok;
  }

(* ------------------------------------- d1: implemented-detector grid *)

(* The link families the heartbeat detectors are validated against.
   Seeds differ per family so no two share message fates. *)
let hb_config_grid =
  [
    ("reliable", { Link.gst = 0; delta = 1; pre_delay = 0; loss_pct = 0; link_seed = 1 });
    ("lossy", { Link.gst = 40; delta = 2; pre_delay = 0; loss_pct = 60; link_seed = 2 });
    ("delayed", { Link.gst = 40; delta = 3; pre_delay = 12; loss_pct = 0; link_seed = 3 });
    ("adversarial", { Link.gst = 80; delta = 4; pre_delay = 10; loss_pct = 80; link_seed = 4 });
  ]

let d1_hb_conformance ?(jobs = 1) ?(seeds = 5) ?(spans = Obs.Span.null) () =
  let all_ok = ref true in
  let rows =
    List.concat_map
      (fun (label, net) ->
        Obs.Span.with_ spans ("net.hb." ^ label) (fun () ->
            List.map
              (fun (mode_label, mode) ->
                let runs =
                  pseeds ~jobs seeds (fun i ->
                      let world =
                        Harness.random_world
                          ~seed:((Hashtbl.hash label * 53) + (31 * i))
                          ~n_plus_1:3 ~max_faulty:1 ~latest:60 ()
                      in
                      Harness.run_hb_detector ~mode ~net world)
                in
                List.iter
                  (fun (v, _) -> if Result.is_error v then all_ok := false)
                  runs;
                [
                  label;
                  mode_label;
                  Report.cell_int net.Link.gst;
                  Report.cell_int net.Link.loss_pct;
                  Report.cell_int seeds;
                  Report.cell_pct
                    (mean
                       (List.map
                          (fun (v, _) -> if Result.is_ok v then 1.0 else 0.0)
                          runs));
                  Report.cell_float (mean_int (List.map snd runs));
                ])
              [ ("evP", `Ev_perfect); ("evS", `Ev_strong) ]))
      hb_config_grid
  in
  {
    id = "d1";
    claim =
      "Implemented detectors: increasing-timeout heartbeats over partially \
       synchronous links satisfy the \xE2\x97\x87P / \xE2\x97\x87S specs (validated on the \
       reconstructed history, plus link contract and crash isolation) on \
       every sampled GST/delay/loss family";
    table =
      {
        Report.title =
          "D1: heartbeat \xE2\x97\x87P/\xE2\x97\x87S conformance across link families (n+1=3)";
        headers =
          [ "links"; "mode"; "gst"; "loss%"; "runs"; "spec-ok"; "mean t(stabilize)" ];
        rows;
      };
    ok = !all_ok;
  }

(* ------------------------------- d2: oracle vs implemented detectors *)

let d2_hb_vs_oracle ?(jobs = 1) ?(seeds = 3) ?(spans = Obs.Span.null) () =
  let net = { Link.gst = 60; delta = 2; pre_delay = 8; loss_pct = 40; link_seed = 6 } in
  let all_ok = ref true in
  let agreement_row title runs =
    (* each run is (oracle_ok, implemented_ok, implemented_stab) *)
    List.iter
      (fun (o, i, _) -> if not (o && i && o = i) then all_ok := false)
      runs;
    [
      title;
      Report.cell_int seeds;
      Report.cell_pct
        (mean (List.map (fun (o, _, _) -> if o then 1.0 else 0.0) runs));
      Report.cell_pct
        (mean (List.map (fun (_, i, _) -> if i then 1.0 else 0.0) runs));
      Report.cell_pct
        (mean (List.map (fun (o, i, _) -> if o = i then 1.0 else 0.0) runs));
      Report.cell_float (mean_int (List.map (fun (_, _, s) -> s) runs));
    ]
  in
  let extraction =
    Obs.Span.with_ spans "net.d2.extraction" (fun () ->
        pseeds ~jobs seeds (fun i ->
            let world () =
              Harness.random_world ~seed:(4000 + (17 * i)) ~n_plus_1:4
                ~max_faulty:2 ~latest:150 ()
            in
            let oracle, _ =
              Harness.run_extraction_of ~f:2 ~source:`Ev_perfect (world ())
            in
            let implemented, stab =
              Harness.run_extraction_of ~f:2 ~source:(`Hb_ev_perfect net)
                (world ())
            in
            (Result.is_ok oracle, Result.is_ok implemented, stab)))
  in
  let consensus =
    Obs.Span.with_ spans "net.d2.consensus" (fun () ->
        pseeds ~jobs seeds (fun i ->
            let world () =
              Harness.random_world ~seed:(6000 + (23 * i)) ~n_plus_1:3
                ~max_faulty:1 ~latest:100 ()
            in
            (* the heartbeat fiber never terminates, so the implemented
               run always spends the whole horizon: keep it tight
               (decisions land within ~5k steps, GST is 60) *)
            let oracle, mem_o =
              Harness.run_msg_consensus ~horizon:60_000 (world ())
            in
            let impl, mem_i =
              Harness.run_msg_consensus ~horizon:60_000 ~omega_impl:net
                (world ())
            in
            ( Harness.ok oracle && mem_o = Ok (),
              Harness.ok impl && mem_i = Ok (),
              impl.Harness.last_decision_time )))
  in
  {
    id = "d2";
    claim =
      "Substitutability: the paper experiments reach the same verdicts \
       when the oracle detector is replaced by its heartbeat \
       implementation - Fig-3 extraction from implemented \xE2\x97\x87P, and \
       message-passing consensus from implemented \xCE\xA9 (min unsuspected of \
       \xE2\x97\x87P), with recorded queries replaying exactly against the \
       reconstructed history";
    table =
      {
        Report.title =
          Printf.sprintf "D2: oracle vs implemented detectors (links %s)"
            (Link.config_to_string net);
        headers =
          [
            "experiment";
            "runs";
            "oracle ok";
            "implemented ok";
            "verdicts agree";
            "mean t (impl)";
          ];
        rows =
          [
            agreement_row "Fig-3 extraction (\xE2\x97\x87P source)" extraction;
            agreement_row "msg consensus (\xCE\xA9 source)" consensus;
          ];
      };
    ok = !all_ok;
  }

(* ------------------------- d3: partial-synchrony model checking rows *)

let d3_hb_model_checking ?(jobs = 1) ?(depth = 5) ?(spans = Obs.Span.null) () =
  let all_ok = ref true in
  let row ?mutant obj ~expect_violation =
    let o =
      Obs.Span.with_ spans
        (Printf.sprintf "net.d3.%s"
           (match mutant with
           | None -> "clean"
           | Some m -> Check.Mutant.to_string m))
        (fun () ->
          Harness.check_exhaustive ~jobs ~procs:2 ~depth ~horizon:500 ?mutant
            obj)
    in
    let found = o.Harness.violation <> None in
    if found <> expect_violation then all_ok := false;
    (match o.Harness.violation with
    | Some v when not v.Harness.shrunk -> all_ok := false
    | _ -> ());
    [
      Check.Scenario.to_string obj;
      (match mutant with None -> "-" | Some m -> Check.Mutant.to_string m);
      Report.cell_int o.Harness.check_depth;
      Report.cell_int o.Harness.patterns_swept;
      Report.cell_int o.Harness.executions;
      (match o.Harness.violation with
      | None -> "none"
      | Some v ->
          Printf.sprintf "caught (prefix %d)" (List.length v.Harness.cex_prefix));
    ]
  in
  let hb = Check.Scenario.Hb_detector Check.Scenario.default_chaos in
  let chaos = Check.Scenario.Link_chaos Check.Scenario.default_chaos in
  let rows =
    [
      row hb ~expect_violation:false;
      row chaos ~expect_violation:false;
      row hb ~mutant:Check.Mutant.Hb_timeout_never_increased
        ~expect_violation:true;
      row hb ~mutant:Check.Mutant.Hb_suspected_not_restored
        ~expect_violation:true;
    ]
  in
  {
    id = "d3";
    claim =
      "Partial synchrony under exploration: no pre-GST delay/loss/ordering \
       within the DPOR window can break the link contract, crash isolation, \
       or the implemented detectors' specs - while both planted heartbeat \
       mutants are caught with a shrunk, replayable counterexample";
    table =
      {
        Report.title =
          "D3: DPOR over partially synchronous links - clean vs heartbeat mutants";
        headers =
          [ "object"; "mutant"; "depth"; "patterns"; "execs"; "violation" ];
        rows;
      };
    ok = !all_ok;
  }

(* --------------------------------------------------------------- index *)

let all ?(jobs = 1) () =
  [
    e1_fig1_set_agreement ~jobs ();
    e2_fig2_f_resilient ~jobs ();
    e3_theorem1_adversary ~jobs ();
    e4_theorem5_adversary ~jobs ();
    e5_fig3_extraction ~jobs ();
    e6_pairwise_reductions ~jobs ();
    e7_upsilon_vs_omega_n ~jobs ();
    e8_impossibility ~jobs ();
    e9_booster_consensus ~jobs ();
    e10_abd_emulation ~jobs ();
    e11_msg_consensus ~jobs ();
    a1_snapshot_ablation ~jobs ();
    a2_escape_ablation ~jobs ();
    a3_fig2_snapshot_cost ~jobs ();
    c1_model_checking ~jobs ();
    d1_hb_conformance ~jobs ();
    d2_hb_vs_oracle ~jobs ();
    d3_hb_model_checking ~jobs ();
  ]

let catalog =
  [
    ("e1", "Fig 1 / Theorem 2: Upsilon-based n-set-agreement");
    ("e2", "Fig 2 / Theorem 6: Upsilon^f-based f-resilient f-set-agreement");
    ("e3", "Theorem 1 adversary: Upsilon cannot be turned into Omega_n");
    ("e4", "Theorem 5 adversary: Upsilon^f cannot be turned into Omega^f");
    ("e5", "Fig 3 / Theorem 10: extracting Upsilon^f from stable detectors");
    ("e6", "Section 4 / 5.3 pairwise detector reductions");
    ("e7", "Corollaries 3-4: Upsilon vs Omega_n set agreement cost");
    ("e8", "Impossibility backdrop: detector-free starvation schedule");
    ("e9", "Corollary 4: Omega_n-boosted consensus from n-consensus objects");
    ("e10", "ABD: atomic registers over message passing (substrate bridge)");
    ("e11", "Message-passing consensus: Omega + commit-adopt over ABD");
    ("a1", "Ablation: register-built vs native snapshot cost");
    ("a2", "Ablation: Fig 1 escape conditions");
    ("a3", "Ablation: Fig 2 on register-built vs native snapshots");
    ("c1", "Model checking: DPOR + linearizability on clean and mutated objects");
    ("d1", "Implemented detectors: heartbeat EvP/EvS conformance across link families");
    ("d2", "Substitutability: oracle vs implemented detectors on paper experiments");
    ("d3", "Model checking partial synchrony: clean links and heartbeat mutants");
  ]

let by_id id =
  let scaled default scale = match scale with None -> default | Some s -> default * s in
  let ign scale spans impl = ignore scale; ignore spans; ignore impl in
  match String.lowercase_ascii id with
  | "e1" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; e1_fig1_set_agreement ?jobs ~seeds:(scaled 25 scale) ())
  | "e2" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; e2_fig2_f_resilient ?jobs ~seeds:(scaled 15 scale) ())
  | "e3" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; e3_theorem1_adversary ?jobs ~max_phases:(scaled 25 scale) ())
  | "e4" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; e4_theorem5_adversary ?jobs ~max_phases:(scaled 25 scale) ())
  | "e5" -> Some (fun ?scale ?jobs ?spans ?impl () -> ignore spans; e5_fig3_extraction ?jobs ~seeds:(scaled 8 scale) ?impl ())
  | "e6" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; e6_pairwise_reductions ?jobs ~seeds:(scaled 20 scale) ())
  | "e7" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; e7_upsilon_vs_omega_n ?jobs ~seeds:(scaled 15 scale) ())
  | "e8" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign scale spans impl; e8_impossibility ?jobs ())
  | "e9" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; e9_booster_consensus ?jobs ~seeds:(scaled 20 scale) ())
  | "e10" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; e10_abd_emulation ?jobs ~seeds:(scaled 10 scale) ())
  | "e11" -> Some (fun ?scale ?jobs ?spans ?impl () -> ignore spans; e11_msg_consensus ?jobs ~seeds:(scaled 6 scale) ?impl ())
  | "a1" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign scale spans impl; a1_snapshot_ablation ?jobs ())
  | "a2" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; a2_escape_ablation ?jobs ~seeds:(scaled 12 scale) ())
  | "a3" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign None spans impl; a3_fig2_snapshot_cost ?jobs ~seeds:(scaled 12 scale) ())
  | "c1" -> Some (fun ?scale ?jobs ?spans ?impl () -> ign scale spans impl; c1_model_checking ?jobs ())
  | "d1" -> Some (fun ?scale ?jobs ?spans ?impl () -> ignore impl; d1_hb_conformance ?jobs ~seeds:(scaled 5 scale) ?spans ())
  | "d2" -> Some (fun ?scale ?jobs ?spans ?impl () -> ignore impl; d2_hb_vs_oracle ?jobs ~seeds:(scaled 3 scale) ?spans ())
  | "d3" -> Some (fun ?scale ?jobs ?spans ?impl () -> ignore scale; ignore impl; d3_hb_model_checking ?jobs ?spans ())
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "[%s] %s@.claim: %s@.@.%a@." t.id
    (if t.ok then "CLAIM HOLDS" else "CLAIM FAILED")
    t.claim Report.render t.table
