(** The experiment drivers: one per claim of the paper (see DESIGN.md's
    experiment index). Each returns a rendered table plus an [ok] flag
    meaning "the paper's claim held on every run we made". Defaults are
    sized to finish in seconds; the CLI and benches can scale them up. *)

type outcome = {
  id : string;
  claim : string;  (** the paper artifact and what must hold *)
  table : Report.table;
  ok : bool;
}

val e1_fig1_set_agreement : ?seeds:int -> ?sizes:int list -> unit -> outcome
(** Fig 1 / Theorem 2: Υ + registers solve n-set-agreement wait-free. *)

val e2_fig2_f_resilient : ?seeds:int -> ?sizes:int list -> unit -> outcome
(** Fig 2 / Theorem 6: Υᶠ + registers solve f-resilient f-set-agreement,
    swept over every f for each system size. *)

val e3_theorem1_adversary : ?max_phases:int -> unit -> outcome
(** Theorem 1: the adversary defeats every candidate Υ → Ωₙ extractor. *)

val e4_theorem5_adversary : ?max_phases:int -> unit -> outcome
(** Theorem 5: same at 2 ≤ f < n against Ωᶠ. *)

val e5_fig3_extraction : ?seeds:int -> unit -> outcome
(** Fig 3 / Theorem 10: Υᶠ is extracted from every stable source. *)

val e6_pairwise_reductions : ?seeds:int -> unit -> outcome
(** §4 / §5.3: the direct reductions between detectors. *)

val e7_upsilon_vs_omega_n : ?seeds:int -> ?stab_times:int list -> unit -> outcome
(** Corollaries 3–4 context: Υ-based vs Ωₙ-based set agreement, cost as a
    function of the detector's stabilization time. *)

val e8_impossibility : ?horizons:int list -> unit -> outcome
(** The impossibility backdrop: the detector-free skeleton starves under
    lock-step forever; the same schedule with Υ decides. *)

val e9_booster_consensus : ?seeds:int -> ?sizes:int list -> unit -> outcome
(** Corollary 4 context: Ωₙ boosts n-process consensus objects to
    n+1-process consensus; port discipline of the committee-indexed
    objects is verified. *)

val e10_abd_emulation : ?seeds:int -> ?sizes:int list -> unit -> outcome
(** Substrate bridge: ABD emulation of atomic registers over
    asynchronous messages; linearizability and liveness with a correct
    majority. *)

val e11_msg_consensus : ?seeds:int -> ?sizes:int list -> unit -> outcome
(** End-to-end lowering: Ω-based consensus over ABD registers in message
    passing, memory linearizability checked per run. *)

val a1_snapshot_ablation : ?sizes:int list -> unit -> outcome
(** Register-built Afek snapshot vs native snapshot: steps per
    operation. *)

val a2_escape_ablation : ?seeds:int -> unit -> outcome
(** Fig 1's escape conditions: which are load-bearing for Termination. *)

val a3_fig2_snapshot_cost : ?seeds:int -> unit -> outcome
(** Fig 2 on register-built vs native snapshots: same correctness, the
    faithful construction's Θ(n) step cost shows inside the protocol. *)

val c1_model_checking : ?depth:int -> ?mutant_depth:int -> unit -> outcome
(** The {!Check} layer end to end: every clean scenario passes DPOR
    exploration, every planted mutant is caught with a shrunk,
    replayable counterexample. [mutant_depth] sizes the deeper window
    the snapshot single-collect mutant needs (3 processes, ≥ 10). *)

val all : unit -> outcome list
(** Every experiment with default parameters, in order. *)

val catalog : (string * string) list
(** [(id, one-line description)] for every experiment, without running
    anything. *)

val by_id : string -> (?scale:int -> unit -> outcome) option
(** Look up an experiment by id ("e1" … "e11", "a1" … "a3", "c1");
    [scale] multiplies the default seed counts. *)

val pp : Format.formatter -> outcome -> unit
