(** The experiment drivers: one per claim of the paper (see DESIGN.md's
    experiment index). Each returns a rendered table plus an [ok] flag
    meaning "the paper's claim held on every run we made". Defaults are
    sized to finish in seconds; the CLI and benches can scale them up.

    Every driver takes [?jobs] (default 1): its independent work units
    (seeds, sizes, adversary candidates, DPOR branches) are sharded over
    an {!Exec.Pool} of that many domains and merged deterministically,
    so tables and [ok] flags are byte-identical at every [jobs]. *)

type outcome = {
  id : string;
  claim : string;  (** the paper artifact and what must hold *)
  table : Report.table;
  ok : bool;
}

val e1_fig1_set_agreement :
  ?jobs:int -> ?seeds:int -> ?sizes:int list -> unit -> outcome
(** Fig 1 / Theorem 2: Υ + registers solve n-set-agreement wait-free. *)

val e2_fig2_f_resilient :
  ?jobs:int -> ?seeds:int -> ?sizes:int list -> unit -> outcome
(** Fig 2 / Theorem 6: Υᶠ + registers solve f-resilient f-set-agreement,
    swept over every f for each system size. *)

val e3_theorem1_adversary : ?jobs:int -> ?max_phases:int -> unit -> outcome
(** Theorem 1: the adversary defeats every candidate Υ → Ωₙ extractor. *)

val e4_theorem5_adversary : ?jobs:int -> ?max_phases:int -> unit -> outcome
(** Theorem 5: same at 2 ≤ f < n against Ωᶠ. *)

val e5_fig3_extraction :
  ?jobs:int -> ?seeds:int -> ?impl:Kernel.Link.config -> unit -> outcome
(** Fig 3 / Theorem 10: Υᶠ is extracted from every stable source. With
    [impl] an extra gated row extracts from the {e implemented}
    (heartbeat) ◇P running over a partially synchronous link with that
    config; without it the table is byte-identical to before. *)

val e6_pairwise_reductions : ?jobs:int -> ?seeds:int -> unit -> outcome
(** §4 / §5.3: the direct reductions between detectors. *)

val e7_upsilon_vs_omega_n :
  ?jobs:int -> ?seeds:int -> ?stab_times:int list -> unit -> outcome
(** Corollaries 3–4 context: Υ-based vs Ωₙ-based set agreement, cost as a
    function of the detector's stabilization time. *)

val e8_impossibility : ?jobs:int -> ?horizons:int list -> unit -> outcome
(** The impossibility backdrop: the detector-free skeleton starves under
    lock-step forever; the same schedule with Υ decides. *)

val e9_booster_consensus :
  ?jobs:int -> ?seeds:int -> ?sizes:int list -> unit -> outcome
(** Corollary 4 context: Ωₙ boosts n-process consensus objects to
    n+1-process consensus; port discipline of the committee-indexed
    objects is verified. *)

val e10_abd_emulation :
  ?jobs:int -> ?seeds:int -> ?sizes:int list -> unit -> outcome
(** Substrate bridge: ABD emulation of atomic registers over
    asynchronous messages; linearizability and liveness with a correct
    majority. *)

val e11_msg_consensus :
  ?jobs:int ->
  ?seeds:int ->
  ?sizes:int list ->
  ?impl:Kernel.Link.config ->
  unit ->
  outcome
(** End-to-end lowering: Ω-based consensus over ABD registers in message
    passing, memory linearizability checked per run. With [impl] each
    size gains a gated row where Ω is the live min-unsuspected leader of
    a heartbeat ◇P over the given link (recorded queries replayed
    against the reconstructed history); without it the table is
    byte-identical to before. *)

val a1_snapshot_ablation : ?jobs:int -> ?sizes:int list -> unit -> outcome
(** Register-built Afek snapshot vs native snapshot: steps per
    operation. *)

val a2_escape_ablation : ?jobs:int -> ?seeds:int -> unit -> outcome
(** Fig 1's escape conditions: which are load-bearing for Termination. *)

val a3_fig2_snapshot_cost : ?jobs:int -> ?seeds:int -> unit -> outcome
(** Fig 2 on register-built vs native snapshots: same correctness, the
    faithful construction's Θ(n) step cost shows inside the protocol. *)

val c1_model_checking :
  ?jobs:int -> ?depth:int -> ?mutant_depth:int -> unit -> outcome
(** The {!Check} layer end to end: every clean scenario passes DPOR
    exploration, every planted mutant is caught with a shrunk,
    replayable counterexample. [mutant_depth] sizes the deeper window
    the snapshot single-collect mutant needs (3 processes, ≥ 10). *)

val d1_hb_conformance :
  ?jobs:int -> ?seeds:int -> ?spans:Obs.Span.scope -> unit -> outcome
(** Implemented detectors: the increasing-timeout heartbeat ◇P and ◇S
    satisfy their specs (plus the link contract and crash isolation) on
    every sampled GST/delay/loss family; mean stabilization time per
    family. Rows are profiled under [net.hb.<family>] spans. *)

val d2_hb_vs_oracle :
  ?jobs:int -> ?seeds:int -> ?spans:Obs.Span.scope -> unit -> outcome
(** Substitutability: the Fig-3 extraction and message-passing consensus
    reach the same verdicts with the oracle detector replaced by its
    heartbeat implementation ({!Harness.run_extraction_of} with
    [`Hb_ev_perfect], {!Harness.run_msg_consensus} with [omega_impl]). *)

val d3_hb_model_checking :
  ?jobs:int -> ?depth:int -> ?spans:Obs.Span.scope -> unit -> outcome
(** DPOR over partially synchronous links: the clean heartbeat-detector
    and link-chaos scenarios survive exhaustive pre-GST
    delay/loss/ordering exploration, and both planted heartbeat mutants
    ({!Check.Mutant.Hb_timeout_never_increased},
    {!Check.Mutant.Hb_suspected_not_restored}) are caught with shrunk,
    replayable counterexamples. *)

val all : ?jobs:int -> unit -> outcome list
(** Every experiment with default parameters, in order; [jobs] sets the
    worker count of the {!Exec.Pool} each driver shards its independent
    runs onto (default 1 = serial; the output is identical at any
    [jobs]). *)

val catalog : (string * string) list
(** [(id, one-line description)] for every experiment, without running
    anything. *)

val by_id :
  string ->
  (?scale:int ->
  ?jobs:int ->
  ?spans:Obs.Span.scope ->
  ?impl:Kernel.Link.config ->
  unit ->
  outcome)
  option
(** Look up an experiment by id ("e1" … "e11", "a1" … "a3", "c1",
    "d1" … "d3"); [scale] multiplies the default seed counts, [jobs] is
    the pool width as in {!all}. [spans] profiles the drivers that
    support it (d1–d3); [impl] switches on the gated
    implemented-detector rows of e5/e11. Both are ignored by the other
    experiments. *)

val pp : Format.formatter -> outcome -> unit
