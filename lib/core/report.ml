type table = { title : string; headers : string list; rows : string list list }

let render ppf t =
  let all_rows = t.headers :: t.rows in
  let columns = List.length t.headers in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all_rows
  in
  let widths = List.init columns width in
  let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
  let render_row row =
    List.mapi
      (fun c cell -> pad cell (List.nth widths c))
      row
    |> String.concat "  "
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  Format.fprintf ppf "%s@." t.title;
  Format.fprintf ppf "%s@." (render_row t.headers);
  Format.fprintf ppf "%s@." rule;
  List.iter (fun row -> Format.fprintf ppf "%s@." (render_row row)) t.rows

let to_string t = Format.asprintf "%a" render t

let of_metrics ?(title = "metrics snapshot") snap =
  {
    title;
    headers = [ "metric"; "type"; "value" ];
    rows = Obs.Metrics.rows snap;
  }
let cell_int = string_of_int
let cell_float ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v
let cell_bool b = if b then "yes" else "no"
let cell_pct r = Printf.sprintf "%.0f%%" (100.0 *. r)
