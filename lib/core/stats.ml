type summary = {
  count : int;
  mean : float;
  median : float;
  p95 : float;
  min : int;
  max : int;
}

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let mean_int l = mean (List.map float_of_int l)

let percentile q xs =
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  match xs with
  | [] -> None
  | xs ->
      let sorted = Array.of_list (List.sort Int.compare xs) in
      let n = Array.length sorted in
      let rank = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      Some
        (if lo = hi then float_of_int sorted.(lo)
         else
           let w = rank -. float_of_int lo in
           ((1.0 -. w) *. float_of_int sorted.(lo))
           +. (w *. float_of_int sorted.(hi)))

let percentile_or ~default q xs =
  match percentile q xs with Some v -> v | None -> default

let summarize = function
  | [] -> None
  | xs ->
      Some
        {
          count = List.length xs;
          mean = mean_int xs;
          median = percentile_or ~default:0.0 0.5 xs;
          p95 = percentile_or ~default:0.0 0.95 xs;
          min = List.fold_left min max_int xs;
          max = List.fold_left max min_int xs;
        }

let pp ppf s =
  Format.fprintf ppf "n=%d mean=%.1f median=%.1f p95=%.1f min=%d max=%d"
    s.count s.mean s.median s.p95 s.min s.max
