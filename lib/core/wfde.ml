(** The public face of the library: everything the paper builds, one
    import away.

    {1 Layers}

    - {!Kernel}: the asynchronous shared-memory simulator (processes,
      crash failures, schedules, traces) — paper §3.
    - {!Memory}: registers, the Afek-et-al. atomic snapshot, consensus
      objects.
    - {!Detectors}: Υ, Υᶠ, Ω, Ωₖ, anti-Ω, P, ◇P, and friends as history
      generators with spec validators — §3.2, §4.
    - {!Converge}: the k-converge routine of [21] — §5.1.
    - {!Agreement}: the set-agreement protocols of Figs 1–2 and the
      baselines — §5.
    - {!Reduction}: the Fig-3 extraction, the pairwise reductions, and
      the Theorem-1/5 adversary — §4, §6.
    - {!Check}: the model checker — optimal DPOR schedule exploration
      (source sets + wakeup trees), a Wing–Gong linearizability
      checker, planted mutants, and ddmin counterexample shrinking.
    - {!Harness} / {!Experiments} / {!Report}: run whole worlds and
      regenerate every claim's table (E1–E8, A1–A2 in DESIGN.md).
    - {!Obs} / {!Trace_export}: the telemetry layer — domain-local
      metrics registries and JSONL trace export/replay.
    - {!Exec}: the domain-parallel sweep runner — a fixed worker pool
      with deterministic, unit-index-keyed merging, so [-j 1] and
      [-j N] produce byte-identical results. *)

module Kernel = Kernel
module Exec = Exec
module Check = Check
module Obs = Obs
module Trace_export = Trace_export
module Memory = Memory
module Detectors = Detectors
module Converge = Converge
module Agreement = Agreement
module Reduction = Reduction
module Harness = Harness
module Experiments = Experiments
module Report = Report
module Stats = Stats

(* Frequently used names, re-exported flat. *)
module Pool = Exec.Pool
module Metrics = Obs.Metrics
module Json = Obs.Json
module Pid = Kernel.Pid
module Rng = Kernel.Rng
module Failure_pattern = Kernel.Failure_pattern
module Policy = Kernel.Policy
module Run = Kernel.Run
module Sim = Kernel.Sim
module Link = Kernel.Link
module Timer = Kernel.Timer
module Trace = Kernel.Trace
module Oracle = Kernel.Oracle
module Detector = Detectors.Detector
module Upsilon = Detectors.Upsilon
module Upsilon_f = Detectors.Upsilon_f
module Omega = Detectors.Omega
module Omega_k = Detectors.Omega_k
module Register = Memory.Register
module Snapshot = Memory.Snapshot
module Dpor = Check.Dpor
module Lin = Check.Lin
module Scenario = Check.Scenario
module Shrink = Check.Shrink
module Mutant = Check.Mutant
module Upsilon_sa = Agreement.Upsilon_sa
module Upsilon_f_sa = Agreement.Upsilon_f_sa
module Sa_spec = Agreement.Sa_spec
module Extract_upsilon = Reduction.Extract_upsilon
module Phi = Reduction.Phi
module Adversary = Reduction.Adversary
module Pairwise = Reduction.Pairwise
