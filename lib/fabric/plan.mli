(** Sharding a sweep or exhaustive check into fabric work units.

    A plan is the coordinator's static view of one request: the unit
    list (each unit one [exp] or [check_unit] RPC), the request's
    content key (the same {!Serve.Cache.key} digest the daemon cache
    uses, so a checkpoint journal is bound to exactly one request), and
    — for checks — the per-unit (pattern, root branch) coordinates the
    merge needs.

    The unit decomposition for checks replicates
    {!Wfde.Harness.check_exhaustive} exactly: one unit per (pattern,
    DPOR root branch), probed serially under the plan's mutant, with a
    single whole-tree unit as the fallback when a pattern has no
    branches. Identical decomposition is what makes the fabric's merged
    outcome byte-identical to the serial CLI's. *)

type sweep = { ids : string list; scale : int; jobs : int }
(** [jobs] is the per-worker intra-unit parallelism forwarded to the
    daemon, not the fabric's own concurrency. *)

type check = {
  obj : Wfde.Scenario.obj;
  procs : int;  (** already clamped to the scenario's [min_procs] *)
  depth : int;
  horizon : int;
  mutant : Wfde.Mutant.t option;
}

type spec = Sweep of sweep | Check of check

type unit_spec = {
  meth : string;  (** ["exp"] or ["check_unit"] *)
  params : (string * Obs.Json.t) list;
}

type check_unit = {
  cu_pattern_index : int;
  cu_pattern : Wfde.Failure_pattern.t;
  cu_branch : int option;
}

type t = {
  spec : spec;
  key : string;  (** content key naming the checkpoint journal *)
  units : unit_spec array;
  check_units : check_unit array;  (** parallel to [units]; [||] for sweeps *)
}

val sweep : ?scale:int -> ?jobs:int -> string list -> (t, string) result
(** One [exp] unit per experiment id, in id order ([[]] = the full
    catalog). [Error] names unknown ids. *)

val check :
  ?procs:int ->
  ?depth:int ->
  ?horizon:int ->
  ?mutant:Wfde.Mutant.t ->
  Wfde.Scenario.obj ->
  t
(** One [check_unit] per (pattern, root branch), same defaults and
    procs clamp as {!Wfde.Harness.check_exhaustive} ([depth = 6],
    [horizon = 400], [procs >= max 2 min_procs]). Raises
    [Invalid_argument] when [depth < 1] (the RPC unit language has no
    depth-0 form; the serial CLI enforces the same floor). *)
