(** The fabric coordinator: dispatch a {!Plan.t} over a set of
    [wfde serve] workers, survive worker loss and its own death, and
    merge the unit payloads into output byte-identical to the serial
    CLI command.

    Dispatch is [window] lanes per worker, each lane claiming the
    lowest pending unit index (within the first-violation cut for
    checks). Failure handling per lane:

    - transport loss (connect refused, connection died mid-call) after
      the lane's retry budget: the worker is marked dead, its in-flight
      unit is requeued and counted [units_lost_to_crash]; when the unit
      later completes elsewhere it counts [units_recomputed] — a
      successful run always ends with the two equal;
    - [shutting_down] (worker draining): unit requeued, worker marked
      dead — a drain completes its in-flight work, so nothing is lost;
    - [queue_full]: unit requeued, lane backs off and lives on;
    - any other structured error is fatal (the request itself is bad —
      retrying elsewhere cannot help).

    With a checkpoint directory, every completed unit payload (and
    every paused [check_unit] frontier) is journaled through
    {!Journal} before it is acknowledged, so a coordinator killed at
    any instant resumes from its journal recomputing only
    unacknowledged units; [resume = true] loads the journal when its
    meta matches the plan's content key. Unit payloads are
    deterministic, so re-running a journaled unit is merely wasted
    work, never a conflict — a duplicate completion with different
    bytes would mean a non-deterministic worker and is counted in
    [payload_mismatches].

    Observability: [fabric.*] metrics (units, retries, dead workers,
    frontier slices — exported by the daemon as [wfde_fabric_*]), and
    when [spans] is enabled a [fabric.dispatch] span with one
    [fabric.u<i>] child per unit computed this run (emitted in unit
    order after the join; lane threads only record timestamps) plus
    [fabric.merge] / [fabric.shrink] around the merge. *)

type config = {
  workers : string list;  (** daemon socket paths *)
  window : int;  (** in-flight requests per worker *)
  checkpoint : string option;  (** journal directory *)
  resume : bool;  (** load a matching journal instead of truncating *)
  unit_budget : int option;
      (** DPOR executions per [check_unit] slice; truncated slices
          checkpoint a frontier and requeue ({!Wfde.Dpor.resume} on the
          worker makes slicing exact) *)
  retries : int;  (** per-call reconnect attempts (see {!Worker.call}) *)
  backoff_ms : float;
  spans : Obs.Span.scope;
  crash_after : int option;
      (** chaos hook: raise {!Crashed} once this many units completed
          this run — after journaling them, simulating a coordinator
          killed mid-sweep *)
  on_unit_done : (int -> unit) option;
      (** chaos hook: called with the completed-this-run count after
          each unit (outside the state lock) — tests use it to kill or
          drain workers at a deterministic point *)
}

val default : workers:string list -> config
(** [window = 2], no checkpoint, no resume, no budget, [retries = 3],
    [backoff_ms = 50.], null spans, no chaos hooks. *)

type progress = {
  units_total : int;
  units_from_journal : int;  (** satisfied by the loaded journal *)
  units_completed : int;  (** computed this run (includes recomputed) *)
  units_lost_to_crash : int;
  units_recomputed : int;
  units_requeued : int;  (** drain/queue-full requeues (not losses) *)
  frontier_slices : int;  (** budget/deadline-truncated check_unit slices *)
  rpc_retries : int;
  workers_dead : int;
  payload_mismatches : int;
  journal_dropped : int;  (** damaged trailing journal lines discarded *)
}

type outcome = {
  text : string;
      (** byte-identical to the serial [wfde sweep] / [wfde check]
          stdout *)
  json : Obs.Json.t;
      (** byte-identical to the serial [--json] document modulo
          [*wall_seconds] fields (sweeps; check documents are fully
          identical) *)
  ok : bool;  (** sweep: no failed claims; check: no violation found *)
  progress : progress;
}

exception Crashed of int
(** Raised by {!run} when [crash_after] fired; the journal holds
    everything completed so far. The payload is the completed count. *)

val run : config -> Plan.t -> (outcome, string) result
(** Execute the plan. [Error] on no workers, a fatal structured error,
    or when every worker died with units still pending — in the last
    case the journal (if any) holds all completed units, so rerunning
    with [resume] continues rather than restarts. *)
