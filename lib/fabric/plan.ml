module J = Obs.Json

type sweep = { ids : string list; scale : int; jobs : int }

type check = {
  obj : Wfde.Scenario.obj;
  procs : int;
  depth : int;
  horizon : int;
  mutant : Wfde.Mutant.t option;
}

type spec = Sweep of sweep | Check of check
type unit_spec = { meth : string; params : (string * J.t) list }

type check_unit = {
  cu_pattern_index : int;
  cu_pattern : Wfde.Failure_pattern.t;
  cu_branch : int option;
}

type t = {
  spec : spec;
  key : string;
  units : unit_spec array;
  check_units : check_unit array;
}

let sweep ?(scale = 1) ?(jobs = 1) ids =
  let ids =
    match ids with
    | [] -> List.map fst Wfde.Experiments.catalog
    | ids -> ids
  in
  match Serve.Service.unknown_ids ids with
  | _ :: _ as unknown ->
      Error
        (Printf.sprintf "unknown experiment id(s): %s"
           (String.concat ", " unknown))
  | [] ->
      (* the key is the daemon cache's key for the equivalent [sweep]
         request, so a journal written for this plan can never be
         replayed against a different id list, scale, or jobs *)
      let key =
        Serve.Cache.key ~meth:"sweep"
          ~params:
            [
              ("experiments", J.List (List.map (fun id -> J.String id) ids));
              ("scale", J.Int scale);
              ("jobs", J.Int jobs);
            ]
      in
      let units =
        ids
        |> List.map (fun id ->
               {
                 meth = "exp";
                 params =
                   [
                     ("experiment", J.String id);
                     ("scale", J.Int scale);
                     ("jobs", J.Int jobs);
                   ];
               })
        |> Array.of_list
      in
      Ok { spec = Sweep { ids; scale; jobs }; key; units; check_units = [||] }

let check ?procs ?(depth = 6) ?(horizon = 400) ?mutant obj =
  if depth < 1 then invalid_arg "Plan.check: depth must be >= 1";
  let procs =
    let floor = Wfde.Scenario.min_procs obj in
    match procs with Some p -> max p floor | None -> max 2 floor
  in
  let make = Wfde.Scenario.make obj ~procs in
  let base =
    [
      ("object", J.String (Wfde.Scenario.to_string obj));
      ("procs", J.Int procs);
      ("depth", J.Int depth);
      ("horizon", J.Int horizon);
    ]
    @
    match mutant with
    | None -> []
    | Some m -> [ ("mutant", J.String (Wfde.Mutant.to_string m)) ]
  in
  let key = Serve.Cache.key ~meth:"check" ~params:base in
  (* probe under the mutant: root branches of a mutated world can
     differ from the healthy one's, and the decomposition must match
     what each check_unit RPC will see *)
  let cunits =
    Wfde.Mutant.with_ mutant (fun () ->
        Wfde.Scenario.patterns obj ~procs
        |> List.mapi (fun pi pattern ->
               match Wfde.Dpor.root_branches ~pattern ~make () with
               | [] ->
                   [
                     {
                       cu_pattern_index = pi;
                       cu_pattern = pattern;
                       cu_branch = None;
                     };
                   ]
               | bs ->
                   List.mapi
                     (fun bi _ ->
                       {
                         cu_pattern_index = pi;
                         cu_pattern = pattern;
                         cu_branch = Some bi;
                       })
                     bs)
        |> List.concat)
  in
  let check_units = Array.of_list cunits in
  let units =
    Array.map
      (fun cu ->
        {
          meth = "check_unit";
          params =
            (base @ [ ("pattern", J.Int cu.cu_pattern_index) ])
            @
            (match cu.cu_branch with
            | None -> []
            | Some bi -> [ ("branch", J.Int bi) ]);
        })
      check_units
  in
  { spec = Check { obj; procs; depth; horizon; mutant }; key; units; check_units }
