module J = Obs.Json

type config = {
  workers : string list;
  window : int;
  checkpoint : string option;
  resume : bool;
  unit_budget : int option;
  retries : int;
  backoff_ms : float;
  spans : Obs.Span.scope;
  crash_after : int option;
  on_unit_done : (int -> unit) option;
}

let default ~workers =
  {
    workers;
    window = 2;
    checkpoint = None;
    resume = false;
    unit_budget = None;
    retries = 3;
    backoff_ms = 50.;
    spans = Obs.Span.null;
    crash_after = None;
    on_unit_done = None;
  }

type progress = {
  units_total : int;
  units_from_journal : int;
  units_completed : int;
  units_lost_to_crash : int;
  units_recomputed : int;
  units_requeued : int;
  frontier_slices : int;
  rpc_retries : int;
  workers_dead : int;
  payload_mismatches : int;
  journal_dropped : int;
}

type outcome = {
  text : string;
  json : J.t;
  ok : bool;
  progress : progress;
}

exception Crashed of int

let m_units_total = Obs.Metrics.counter "fabric.units.total"
let m_units_completed = Obs.Metrics.counter "fabric.units.completed"
let m_units_from_journal = Obs.Metrics.counter "fabric.units.from_journal"
let m_units_lost = Obs.Metrics.counter "fabric.units.lost_to_crash"
let m_units_recomputed = Obs.Metrics.counter "fabric.units.recomputed"
let m_units_requeued = Obs.Metrics.counter "fabric.units.requeued"
let m_frontier_slices = Obs.Metrics.counter "fabric.frontier.slices"
let m_rpc_retries = Obs.Metrics.counter "fabric.rpc.retries"
let m_workers_dead = Obs.Metrics.counter "fabric.workers.dead"
let m_payload_mismatches = Obs.Metrics.counter "fabric.payload.mismatches"
let g_workers_alive = Obs.Metrics.gauge "fabric.workers.alive"

type ustate = Pending | Inflight | Done of J.t

(* All mutable dispatch state lives behind one mutex; lane threads
   broadcast [cv] after every state change so waiting lanes re-examine
   the queue. Obs.Metrics is not thread-safe, so metric updates happen
   under the same lock. *)
type state = {
  mu : Mutex.t;
  cv : Condition.t;
  st : ustate array;
  lost : bool array;
  frontiers : J.t option array;
  times : (int * int) array;
  mutable cut : int;
  mutable fatal : string option;
  mutable crashed : bool;
  mutable completed : int;
  mutable from_journal : int;
  mutable lost_n : int;
  mutable recomputed : int;
  mutable requeued : int;
  mutable slices : int;
  mutable retries_n : int;
  mutable dead_n : int;
  mutable mismatches : int;
  mutable alive : int;
  mutable journal_dropped : int;
}

let has_cex payload =
  match J.member "counterexample" payload with
  | None | Some J.Null -> false
  | Some _ -> true

let zero_stats =
  {
    Wfde.Dpor.executions = 0;
    sleep_blocked = 0;
    deduped = 0;
    races = 0;
    backtrack_points = 0;
  }

let stats_of_payload p =
  match J.member "stats" p with
  | Some so ->
      let g f = match J.member f so with Some (J.Int v) -> v | _ -> 0 in
      {
        Wfde.Dpor.executions = g "executions";
        sleep_blocked = g "sleep_blocked";
        deduped = g "deduped";
        races = g "races";
        backtrack_points = g "backtrack_points";
      }
  | None -> zero_stats

let progress_of s n =
  {
    units_total = n;
    units_from_journal = s.from_journal;
    units_completed = s.completed;
    units_lost_to_crash = s.lost_n;
    units_recomputed = s.recomputed;
    units_requeued = s.requeued;
    frontier_slices = s.slices;
    rpc_retries = s.retries_n;
    workers_dead = s.dead_n;
    payload_mismatches = s.mismatches;
    journal_dropped = s.journal_dropped;
  }

let merge cfg (plan : Plan.t) s payload =
  match plan.Plan.spec with
  | Plan.Sweep { ids; scale; jobs } ->
      let rows =
        List.mapi
          (fun i id ->
            let p = payload i in
            let ok =
              match J.member "ok" p with Some (J.Bool b) -> b | _ -> false
            in
            let wall =
              match J.member "wall_seconds" p with
              | Some v -> Option.value (J.to_float v) ~default:0.
              | None -> 0.
            in
            let table =
              match J.member "table" p with Some (J.String t) -> t | _ -> ""
            in
            (id, ok, wall, table))
          ids
      in
      let failed =
        List.filter_map (fun (id, ok, _, _) -> if ok then None else Some id) rows
      in
      let text =
        String.concat "" (List.map (fun (_, _, _, t) -> t) rows)
        ^ Serve.Service.failed_claims_line failed
      in
      let json =
        Serve.Service.sweep_json_rows ~jobs ~scale
          (List.map (fun (id, ok, w, _) -> (id, ok, w)) rows)
      in
      (text, json, failed = [])
  | Plan.Check { obj; procs; depth; horizon; mutant } ->
      let n = Array.length plan.Plan.units in
      let limit = if s.cut = max_int then n - 1 else s.cut in
      let stats = ref zero_stats in
      for i = 0 to limit do
        stats := Wfde.Dpor.merge_stats !stats (stats_of_payload (payload i))
      done;
      let cu = plan.Plan.check_units.(limit) in
      let swept = cu.Plan.cu_pattern_index + 1 in
      let violation =
        match J.member "counterexample" (payload limit) with
        | None | Some J.Null -> None
        | Some c ->
            let prefix =
              match J.member "prefix" c with
              | Some (J.List l) ->
                  List.filter_map
                    (function
                      | J.Int v -> Some (Wfde.Pid.of_index v) | _ -> None)
                    l
              | _ -> []
            in
            let report =
              match J.member "report" c with
              | Some (J.String r) -> r
              | _ -> ""
            in
            let pattern = cu.Plan.cu_pattern in
            (* shrink locally, under the plan's mutant, with exactly the
               replay check_exhaustive uses — so the minimized violation
               matches the serial CLI's byte for byte *)
            Some
              (Wfde.Mutant.with_ mutant (fun () ->
                   let make = Wfde.Scenario.make obj ~procs in
                   let replay ~pattern ~prefix =
                     let fibers, check = make () in
                     let policy =
                       Wfde.Policy.script prefix
                         ~then_:(Wfde.Policy.round_robin ())
                     in
                     let result =
                       Wfde.Run.exec ~pattern ~policy ~horizon ~procs:fibers ()
                     in
                     match check result.Wfde.Run.trace with
                     | Ok () -> None
                     | Error r -> Some r
                   in
                   Obs.Span.with_ cfg.spans "fabric.shrink" (fun () ->
                       match Wfde.Shrink.minimize ~replay ~pattern ~prefix with
                       | Some (cex_pattern, cex_prefix, cex_report) ->
                           {
                             Wfde.Harness.cex_pattern;
                             cex_prefix;
                             cex_report;
                             shrunk = true;
                           }
                       | None ->
                           {
                             Wfde.Harness.cex_pattern = pattern;
                             cex_prefix = prefix;
                             cex_report = report;
                             shrunk = false;
                           })))
      in
      let outcome =
        {
          Wfde.Harness.check_obj = obj;
          check_procs = procs;
          check_depth = depth;
          check_horizon = horizon;
          check_mutant = mutant;
          patterns_swept = swept;
          executions = !stats.Wfde.Dpor.executions;
          sleep_blocked = !stats.Wfde.Dpor.sleep_blocked;
          deduped = !stats.Wfde.Dpor.deduped;
          races = !stats.Wfde.Dpor.races;
          backtrack_points = !stats.Wfde.Dpor.backtrack_points;
          naive_bound = Wfde.Check.Explore.count_schedules ~n_plus_1:procs ~depth;
          violation;
        }
      in
      ( Serve.Service.check_text outcome,
        Wfde.Harness.check_outcome_json outcome,
        violation = None )

let run cfg (plan : Plan.t) =
  let n = Array.length plan.Plan.units in
  if cfg.workers = [] then Error "no workers given"
  else begin
    (* a worker SIGKILLed mid-call turns our next write into EPIPE; the
       default disposition would kill the whole coordinator process
       instead of letting {!Worker.call} requeue the unit *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let traced = Obs.Span.enabled cfg.spans in
    let s =
      {
        mu = Mutex.create ();
        cv = Condition.create ();
        st = Array.make (max n 1) Pending;
        lost = Array.make (max n 1) false;
        frontiers = Array.make (max n 1) None;
        times = Array.make (max n 1) (0, 0);
        cut = max_int;
        fatal = None;
        crashed = false;
        completed = 0;
        from_journal = 0;
        lost_n = 0;
        recomputed = 0;
        requeued = 0;
        slices = 0;
        retries_n = 0;
        dead_n = 0;
        mismatches = 0;
        alive = List.length cfg.workers;
        journal_dropped = 0;
      }
    in
    Obs.Metrics.incr ~by:n m_units_total;
    Obs.Metrics.set g_workers_alive (float_of_int s.alive);
    let journal =
      match cfg.checkpoint with
      | None -> None
      | Some dir ->
          let fresh () = Journal.create ~dir ~key:plan.Plan.key ~units:n in
          if not cfg.resume then Some (fresh ())
          else begin
            match Journal.load ~dir ~key:plan.Plan.key ~units:n with
            | None -> Some (fresh ())
            | Some (j, loaded) ->
                s.journal_dropped <- loaded.Journal.dropped;
                List.iter
                  (fun (i, p) ->
                    if s.st.(i) = Pending then begin
                      s.st.(i) <- Done p;
                      s.from_journal <- s.from_journal + 1;
                      Obs.Metrics.incr m_units_from_journal;
                      if has_cex p then s.cut <- min s.cut i
                    end)
                  loaded.Journal.results;
                List.iter
                  (fun (i, f) -> s.frontiers.(i) <- Some f)
                  loaded.Journal.frontiers;
                Some j
          end
    in
    let is_check =
      match plan.Plan.spec with Plan.Check _ -> true | Plan.Sweep _ -> false
    in
    let request_for i =
      let u = plan.Plan.units.(i) in
      let params = u.Plan.params in
      let params =
        match cfg.unit_budget with
        | Some b when u.Plan.meth = "check_unit" ->
            params @ [ ("budget", J.Int b) ]
        | _ -> params
      in
      let params =
        match s.frontiers.(i) with
        | Some f when u.Plan.meth = "check_unit" ->
            params @ [ ("frontier", f) ]
        | _ -> params
      in
      {
        Serve.Proto.id = J.String (Printf.sprintf "u%d" i);
        meth = u.Plan.meth;
        params;
        deadline_ms = None;
        trace = None;
      }
    in
    let hi () = min s.cut (n - 1) in
    let mark_dead (ep : Worker.endpoint) =
      if not (Atomic.get ep.Worker.dead) then begin
        Atomic.set ep.Worker.dead true;
        s.dead_n <- s.dead_n + 1;
        s.alive <- s.alive - 1;
        Obs.Metrics.incr m_workers_dead;
        Obs.Metrics.set g_workers_alive (float_of_int s.alive)
      end
    in
    let lane_loop (ep : Worker.endpoint) =
      let lane = Worker.lane ep in
      let on_retry () =
        Mutex.lock s.mu;
        s.retries_n <- s.retries_n + 1;
        Obs.Metrics.incr m_rpc_retries;
        Mutex.unlock s.mu
      in
      let rec next () =
        Mutex.lock s.mu;
        if s.fatal <> None || s.crashed || Atomic.get ep.Worker.dead then
          Mutex.unlock s.mu
        else begin
          let rec find i =
            if i > hi () then None
            else match s.st.(i) with Pending -> Some i | _ -> find (i + 1)
          in
          match find 0 with
          | Some i ->
              s.st.(i) <- Inflight;
              if traced && fst s.times.(i) = 0 then
                s.times.(i) <- (Obs.Span.now_us (), 0);
              let req = request_for i in
              Mutex.unlock s.mu;
              process i req
          | None ->
              let rec inflight i =
                i <= hi ()
                && (s.st.(i) = Inflight || inflight (i + 1))
              in
              if inflight 0 then begin
                (* an in-flight unit may yet be requeued (worker loss,
                   drain, frontier slice) — wait for a state change *)
                Condition.wait s.cv s.mu;
                Mutex.unlock s.mu;
                next ()
              end
              else Mutex.unlock s.mu
        end
      and process i req =
        match Worker.call ~on_retry lane req with
        | Ok { Serve.Proto.result = Ok payload; _ } -> handle_ok i payload
        | Ok { Serve.Proto.result = Error e; _ } -> handle_err i e
        | Error msg -> handle_transport i msg
      and handle_ok i payload =
        let u = plan.Plan.units.(i) in
        let truncated, frontier =
          if u.Plan.meth <> "check_unit" then (false, None)
          else
            match J.member "done" payload with
            | Some (J.Bool false) -> (true, J.member "frontier" payload)
            | _ -> (false, None)
        in
        Mutex.lock s.mu;
        if truncated then begin
          (match frontier with
          | Some (J.Obj _ as f) ->
              s.frontiers.(i) <- Some f;
              s.slices <- s.slices + 1;
              Obs.Metrics.incr m_frontier_slices;
              (match journal with
              | Some j -> Journal.record_frontier j ~index:i f
              | None -> ());
              if s.st.(i) = Inflight then s.st.(i) <- Pending
          | _ ->
              s.fatal <-
                Some (Printf.sprintf "unit %d: truncated without frontier" i));
          Condition.broadcast s.cv;
          Mutex.unlock s.mu;
          next ()
        end
        else begin
          let crash = ref false in
          let completed_now = ref 0 in
          (match s.st.(i) with
          | Done prev ->
              (* a unit computed twice must answer identical bytes:
                 anything else is a non-deterministic worker *)
              if J.to_string prev <> J.to_string payload then begin
                s.mismatches <- s.mismatches + 1;
                Obs.Metrics.incr m_payload_mismatches
              end
          | _ ->
              s.st.(i) <- Done payload;
              if traced then s.times.(i) <- (fst s.times.(i), Obs.Span.now_us ());
              s.completed <- s.completed + 1;
              Obs.Metrics.incr m_units_completed;
              if s.lost.(i) then begin
                s.recomputed <- s.recomputed + 1;
                Obs.Metrics.incr m_units_recomputed
              end;
              (match journal with
              | Some j -> Journal.record_result j ~index:i payload
              | None -> ());
              if is_check && has_cex payload then s.cut <- min s.cut i;
              completed_now := s.completed;
              (match cfg.crash_after with
              | Some k when s.completed >= k && not s.crashed ->
                  s.crashed <- true;
                  crash := true
              | _ -> ()));
          Condition.broadcast s.cv;
          Mutex.unlock s.mu;
          if !completed_now > 0 then
            (match cfg.on_unit_done with
            | Some f -> f !completed_now
            | None -> ());
          if !crash then () else next ()
        end
      and handle_err i (e : Serve.Proto.error) =
        Mutex.lock s.mu;
        (match e.Serve.Proto.code with
        | Serve.Proto.Shutting_down ->
            if s.st.(i) = Inflight then s.st.(i) <- Pending;
            s.requeued <- s.requeued + 1;
            Obs.Metrics.incr m_units_requeued;
            mark_dead ep
        | Serve.Proto.Queue_full ->
            if s.st.(i) = Inflight then s.st.(i) <- Pending;
            s.requeued <- s.requeued + 1;
            Obs.Metrics.incr m_units_requeued
        | code ->
            s.fatal <-
              Some
                (Printf.sprintf "unit %d: %s: %s" i
                   (Serve.Proto.code_to_string code)
                   e.Serve.Proto.message));
        Condition.broadcast s.cv;
        Mutex.unlock s.mu;
        (match e.Serve.Proto.code with
        | Serve.Proto.Queue_full -> Unix.sleepf (cfg.backoff_ms /. 1000.)
        | _ -> ());
        next ()
      and handle_transport i _msg =
        Mutex.lock s.mu;
        if s.st.(i) = Inflight then s.st.(i) <- Pending;
        if not s.lost.(i) then begin
          s.lost.(i) <- true;
          s.lost_n <- s.lost_n + 1;
          Obs.Metrics.incr m_units_lost
        end;
        mark_dead ep;
        Condition.broadcast s.cv;
        Mutex.unlock s.mu;
        next ()
      in
      (try next ()
       with exn ->
         Mutex.lock s.mu;
         if s.fatal = None then s.fatal <- Some (Printexc.to_string exn);
         Condition.broadcast s.cv;
         Mutex.unlock s.mu);
      Worker.close lane
    in
    let endpoints =
      List.mapi
        (fun wi sock ->
          Worker.endpoint ~retries:cfg.retries ~backoff_ms:cfg.backoff_ms
            ~index:wi sock)
        cfg.workers
    in
    let t0 = if traced then Obs.Span.now_us () else 0 in
    let threads =
      List.concat_map
        (fun ep ->
          List.init (max cfg.window 1) (fun _ ->
              Thread.create lane_loop ep))
        endpoints
    in
    List.iter Thread.join threads;
    let t1 = if traced then Obs.Span.now_us () else 0 in
    if traced then begin
      let did =
        Obs.Span.emit cfg.spans ~name:"fabric.dispatch" ~start_us:t0
          ~stop_us:t1 ()
      in
      Array.iteri
        (fun i (u0, u1) ->
          if u1 > 0 then
            ignore
              (Obs.Span.emit cfg.spans ~parent:did
                 ~name:(Printf.sprintf "fabric.u%d" i)
                 ~start_us:u0 ~stop_us:u1 ()))
        s.times
    end;
    if s.crashed then raise (Crashed s.completed);
    match s.fatal with
    | Some msg -> Error msg
    | None ->
        let limit = hi () in
        let missing = ref 0 in
        for i = 0 to limit do
          match s.st.(i) with Done _ -> () | _ -> incr missing
        done;
        if !missing > 0 then
          Error
            (Printf.sprintf
               "%d unit(s) unfinished: all workers lost; rerun with --resume"
               !missing)
        else begin
          let payload i =
            match s.st.(i) with Done p -> p | _ -> assert false
          in
          let text, json, ok =
            Obs.Span.with_ cfg.spans "fabric.merge" (fun () ->
                merge cfg plan s payload)
          in
          Ok { text; json; ok; progress = progress_of s n }
        end
  end
