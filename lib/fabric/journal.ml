module J = Obs.Json

let schema = "wfde-fabric-journal/1"

type t = {
  path : string;
  mutable lines : string list;  (** newest first; last element = meta *)
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let file ~dir ~key = Filename.concat dir (key ^ ".jsonl")

(* whole-file tmp+rename: the journal is small (one line per unit plus
   frontier slices) and an atomic replace beats append-and-pray — a
   reader never sees a half-written line from this process *)
let flush t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        (List.rev t.lines));
  Sys.rename tmp t.path

let meta_line ~key ~units =
  J.to_string
    (J.Obj
       [
         ("schema", J.String schema);
         ("key", J.String key);
         ("units", J.Int units);
       ])

let create ~dir ~key ~units =
  mkdir_p dir;
  let t = { path = file ~dir ~key; lines = [ meta_line ~key ~units ] } in
  flush t;
  t

let record_result t ~index payload =
  t.lines <-
    J.to_string (J.Obj [ ("unit", J.Int index); ("payload", payload) ])
    :: t.lines;
  flush t

let record_frontier t ~index doc =
  t.lines <-
    J.to_string (J.Obj [ ("unit", J.Int index); ("frontier", doc) ])
    :: t.lines;
  flush t

type loaded = {
  results : (int * J.t) list;
  frontiers : (int * J.t) list;
  dropped : int;
}

let parse_record ~units line =
  match J.of_string line with
  | Error _ -> None
  | Ok o -> (
      match J.member "unit" o with
      | Some (J.Int i) when i >= 0 && i < units -> (
          match (J.member "payload" o, J.member "frontier" o) with
          | Some p, None -> Some (`Result (i, p))
          | None, Some (J.Obj _ as f) -> Some (`Frontier (i, f))
          | _ -> None)
      | _ -> None)

let load ~dir ~key ~units =
  let path = file ~dir ~key in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let lines =
        String.split_on_char '\n' contents
        |> List.filter (fun l -> l <> "")
      in
      (match lines with
      | [] -> None
      | meta :: rest ->
          let meta_ok =
            match J.of_string meta with
            | Error _ -> false
            | Ok m ->
                J.member "schema" m = Some (J.String schema)
                && J.member "key" m = Some (J.String key)
                && J.member "units" m = Some (J.Int units)
          in
          if not meta_ok then None
          else begin
            (* validate in order, stop at the first bad line: only the
               tail of a journal can be damaged by a truncated write,
               so everything before it is trustworthy *)
            let rec go acc = function
              | [] -> (List.rev acc, 0)
              | line :: tl -> (
                  match parse_record ~units line with
                  | Some r -> go ((line, r) :: acc) tl
                  | None -> (List.rev acc, 1 + List.length tl))
            in
            let recs, dropped = go [] rest in
            let results =
              List.fold_left
                (fun acc (_, r) ->
                  match r with
                  | `Result (i, p) when not (List.mem_assoc i acc) ->
                      (i, p) :: acc
                  | _ -> acc)
                [] recs
              |> List.rev
            in
            let frontiers =
              List.fold_left
                (fun acc (_, r) ->
                  match r with
                  | `Frontier (i, f) -> (i, f) :: List.remove_assoc i acc
                  | _ -> acc)
                [] recs
            in
            let frontiers =
              List.filter (fun (i, _) -> not (List.mem_assoc i results)) frontiers
            in
            let t =
              { path; lines = List.rev (meta :: List.map fst recs) }
            in
            (* rewrite immediately so a damaged tail is physically gone
               before any new record lands after it *)
            if dropped > 0 then flush t;
            Some (t, { results; frontiers; dropped })
          end)
