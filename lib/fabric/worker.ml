type endpoint = {
  socket : string;
  windex : int;
  dead : bool Atomic.t;
  retries : int;
  backoff_ms : float;
}

let endpoint ?(retries = 3) ?(backoff_ms = 50.) ~index socket =
  { socket; windex = index; dead = Atomic.make false; retries; backoff_ms }

type lane = { ep : endpoint; mutable conn : Serve.Client.t option }

let lane ep = { ep; conn = None }

let close lane =
  (match lane.conn with
  | Some c -> ( try Serve.Client.close c with _ -> ())
  | None -> ());
  lane.conn <- None

let call ?(on_retry = fun () -> ()) lane req =
  let rec attempt k =
    let conn_r =
      match lane.conn with
      | Some c -> Ok c
      | None -> (
          match Serve.Client.connect ~socket:lane.ep.socket with
          | Ok c ->
              lane.conn <- Some c;
              Ok c
          | Error e -> Error e)
    in
    match conn_r with
    | Error e -> retry k e
    | Ok conn -> (
        match Serve.Client.call conn req with
        | Ok resp -> Ok resp
        | Error e ->
            close lane;
            retry k e)
  and retry k e =
    if k >= lane.ep.retries then Error e
    else begin
      on_retry ();
      Unix.sleepf (lane.ep.backoff_ms *. (2. ** float_of_int k) /. 1000.);
      attempt (k + 1)
    end
  in
  attempt 0
