(** One coordinator-side lane to one [wfde serve] worker.

    A lane owns at most one connection and runs one request at a time
    (the wire protocol is lock-step per connection); the coordinator
    opens [window] lanes per worker for pipelining. Lanes of the same
    worker share its {!endpoint}, whose [dead] flag is the one-way
    switch the coordinator flips when the worker is lost (connection
    refused, reset, or drained) — every lane of a dead worker winds
    down at its next claim. *)

type endpoint = {
  socket : string;
  windex : int;  (** worker index, for reporting *)
  dead : bool Atomic.t;
  retries : int;  (** reconnect attempts per call before giving up *)
  backoff_ms : float;  (** base backoff, doubled per attempt *)
}

val endpoint :
  ?retries:int -> ?backoff_ms:float -> index:int -> string -> endpoint
(** Defaults: [retries = 3], [backoff_ms = 50.]. *)

type lane

val lane : endpoint -> lane
(** A fresh lane; the connection is opened lazily on first {!call}. *)

val close : lane -> unit

val call :
  ?on_retry:(unit -> unit) ->
  lane ->
  Serve.Proto.request ->
  (Serve.Proto.response, string) result
(** One round trip with reconnect-and-retry: a transport failure
    (connect or mid-call) drops the connection, backs off
    [backoff_ms * 2^k], reconnects, and resends — the unit methods are
    idempotent, so a resend is safe. [on_retry] fires before each
    retry sleep (the coordinator counts these). [Error] after the
    retry budget is the worker-is-gone signal; a structured server
    error is an [Ok] response with [result = Error _], never retried
    here. *)
