(** The coordinator's crash-safe checkpoint: a JSONL journal of
    completed unit payloads and paused unit frontiers, one file per
    (checkpoint dir, plan content key).

    Format ([<dir>/<key>.jsonl]):

    {v
    {"schema":"wfde-fabric-journal/1","key":"<key>","units":N}
    {"unit":3,"payload":{...}}          // unit 3 finished
    {"unit":7,"frontier":{...}}         // unit 7 paused (latest wins)
    v}

    Every append rewrites the whole file to [<path>.tmp] and renames it
    over the journal — an atomic replace, so a reader never observes a
    torn file produced by {e this} process. What the format defends
    against is the journal being cut short by the environment (crash
    before rename landed, copied mid-write): {!load} validates records
    in order and stops at the first malformed line, dropping it and
    everything after — a truncated tail costs recomputing the units it
    covered, never a wrong resume and never a fatal error.

    A meta line that does not match the expected key and unit count
    means the journal belongs to a {e different} request; {!load}
    returns [None] and the caller starts fresh. *)

type t

val file : dir:string -> key:string -> string
(** The journal path for a plan key (no filesystem access). *)

val create : dir:string -> key:string -> units:int -> t
(** Start a fresh journal (creating [dir] as needed), truncating any
    previous journal for the same key. *)

val record_result : t -> index:int -> Obs.Json.t -> unit
(** Append a completed unit's payload and flush atomically. *)

val record_frontier : t -> index:int -> Obs.Json.t -> unit
(** Append a paused unit's [wfde-frontier/1] document. A later record
    for the same unit (another frontier, or the final payload)
    supersedes it. *)

type loaded = {
  results : (int * Obs.Json.t) list;
      (** completed units in journal order, first record per index wins *)
  frontiers : (int * Obs.Json.t) list;
      (** latest frontier per index, for units with no result *)
  dropped : int;  (** trailing lines discarded as malformed/truncated *)
}

val load : dir:string -> key:string -> units:int -> (t * loaded) option
(** Reopen an existing journal for resuming. [None] when there is no
    journal for the key or its meta line does not match — the caller
    should {!create} instead. The returned [t] retains every valid
    line, so subsequent appends preserve the loaded history. *)
