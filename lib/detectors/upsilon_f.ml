open Kernel

let min_size ~n_plus_1 ~f = n_plus_1 - f

let legal_stable_sets ~pattern ~f =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let correct = Failure_pattern.correct pattern in
  Pid.Set.subsets ~n_plus_1
  |> List.filter (fun u ->
         Pid.Set.cardinal u >= min_size ~n_plus_1 ~f
         && not (Pid.Set.equal u correct))

(* Stash construction metadata for harness code, keyed by name. Default
   names are deterministic functions of the parameters so that identical
   worlds produce byte-identical traces (replay tooling depends on it).
   Shared across domains when a sweep runs under Exec.Pool, hence the
   mutex; replace is idempotent for a given name, so cross-domain
   interleavings cannot change what stab_time_of observes. *)
let stab_times : (string, int) Hashtbl.t = Hashtbl.create 17
let stab_times_mu = Mutex.create ()

let with_stab_times f =
  Mutex.lock stab_times_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock stab_times_mu) f

let make ?name ~rng ~pattern ~f ?stable_set ?stab_time () =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  if f < 1 || f > n_plus_1 - 1 then invalid_arg "Upsilon_f.make: bad f";
  if not (Failure_pattern.env_ok ~f pattern) then
    invalid_arg "Upsilon_f.make: pattern outside E_f";
  let correct = Failure_pattern.correct pattern in
  let stable_set =
    match stable_set with
    | Some u ->
        if Pid.Set.cardinal u < min_size ~n_plus_1 ~f then
          invalid_arg "Upsilon_f.make: stable set below range size";
        if Pid.Set.equal u correct then
          invalid_arg "Upsilon_f.make: stable set equals correct set";
        u
    | None -> Rng.pick rng (legal_stable_sets ~pattern ~f)
  in
  let stab_time =
    match stab_time with Some t -> t | None -> Rng.int_in rng 0 150
  in
  let seed = Rng.int rng max_int in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "upsilon_f(f=%d,t*=%d)" f stab_time
  in
  with_stab_times (fun () -> Hashtbl.replace stab_times name stab_time);
  Detector.record_make ~family:"upsilon_f" ~stab_time;
  let history pid time =
    if time >= stab_time then stable_set
    else
      Detector.Chaos.subset_at_least ~seed ~n_plus_1
        ~min_size:(min_size ~n_plus_1 ~f) pid time
  in
  { Detector.name; history; pp = Pid.Set.pp; equal = Pid.Set.equal }

let stab_time_of (d : Pid.Set.t Detector.t) =
  match with_stab_times (fun () -> Hashtbl.find_opt stab_times d.Detector.name) with
  | Some t -> t
  | None -> invalid_arg "Upsilon_f.stab_time_of: not built by make"

let check (d : Pid.Set.t Detector.t) ~pattern ~f ~stab_by ~horizon =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let correct = Failure_pattern.correct pattern in
  let all = Pid.all ~n_plus_1 in
  let range_violation = ref None in
  for time = 0 to horizon do
    List.iter
      (fun p ->
        let u = Detector.sample d p time in
        if
          Pid.Set.cardinal u < min_size ~n_plus_1 ~f
          && !range_violation = None
        then
          range_violation :=
            Some
              (Format.asprintf "range violated at (%a, %d): %a" Pid.pp p time
                 Pid.Set.pp u))
      all
  done;
  match !range_violation with
  | Some msg -> Error msg
  | None -> (
      match Detector.stable_value d pattern ~from:stab_by ~until:horizon with
      | None ->
          Error
            (Printf.sprintf "no common stable value on [%d, %d]" stab_by
               horizon)
      | Some u ->
          if Pid.Set.equal u correct then
            Error
              (Format.asprintf "stable value %a equals the correct set"
                 Pid.Set.pp u)
          else Ok ())
