open Kernel

type t = Heartbeat.t

let make ?(name = "hb_ev_perfect") ?params ~n_plus_1 ~net () =
  Heartbeat.create ~name ~n_plus_1 ~mode:Heartbeat.Common_timeout ?params ~net
    ()

let check ?(min_tail = 20) t ~pattern ~horizon =
  let only = Failure_pattern.is_correct pattern in
  let stab_by =
    max
      (Heartbeat.stabilized_at t ~only + 1)
      (Failure_pattern.max_crash_time pattern + 1)
  in
  if stab_by > horizon - min_tail then
    Error
      (Printf.sprintf
         "no stabilization window: last suspicion change at %d, horizon %d \
          leaves a tail of %d < %d"
         (stab_by - 1) horizon
         (max 0 (horizon - stab_by + 1))
         min_tail)
  else
    Ev_perfect.check ~only (Heartbeat.to_detector t) ~pattern ~stab_by ~horizon
