(** The eventually perfect failure detector ◇P: arbitrary suspicions for
    a finite prefix, then exactly the crashed-so-far set. Once all faulty
    processes have crashed its output is the constant [faulty(F)], so ◇P
    is a {e stable} detector in the paper's §6.2 sense — a natural
    "realistic" input to the Fig-3 extraction (E5). *)

open Kernel

val make :
  ?name:string ->
  rng:Rng.t ->
  pattern:Failure_pattern.t ->
  ?stab_time:int ->
  unit ->
  Pid.Set.t Detector.t

val stable_from : pattern:Failure_pattern.t -> stab_time:int -> int
(** First time the output is guaranteed constant: after both the chaos
    window and the last crash. *)

val check :
  ?only:(Pid.t -> bool) ->
  Pid.Set.t Detector.t ->
  pattern:Failure_pattern.t ->
  stab_by:int ->
  horizon:int ->
  (unit, string) result
(** From [stab_by] on, the output must equal the crashed-so-far set at
    every process passing [only] (default all). The filter exists for
    implemented detectors ({!Hb_ev_perfect}): the model only constrains
    what {e correct} processes observe — a crashed heartbeat monitor's
    history freezes at its crash. *)
