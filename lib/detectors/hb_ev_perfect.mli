(** Implemented ◇P: the {!Heartbeat} engine in [Common_timeout] mode.

    Unlike {!Ev_perfect.make}, which conjures the history from the
    failure pattern, this detector is computed {e inside} the run by
    processes exchanging heartbeats over a partially synchronous
    {!Kernel.Link} — it never sees the pattern. Drive each process's
    {!Heartbeat.fiber} alongside the protocol and query the live
    {!Heartbeat.source}; the same {!Detectors.Detector.t} surface as the
    oracle comes out of {!Heartbeat.to_detector} after the run. *)

open Kernel

type t = Heartbeat.t

val make :
  ?name:string ->
  ?params:Heartbeat.params ->
  n_plus_1:int ->
  net:Link.config ->
  unit ->
  t

val check :
  ?min_tail:int ->
  t ->
  pattern:Failure_pattern.t ->
  horizon:int ->
  (unit, string) result
(** The run satisfied the ◇P spec: from the empirical stabilization time
    (last suspicion change at any correct process, and past the last
    crash) to [horizon], every correct process's suspect set equals the
    crashed set — checked with {!Ev_perfect.check} over the
    reconstructed history. Fails loudly if fewer than [min_tail]
    (default 20) post-stabilization steps remain: a run too short to
    witness stabilization proves nothing. *)
