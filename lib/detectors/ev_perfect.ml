open Kernel

let make ?name ~rng ~pattern ?stab_time () =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let stab_time =
    match stab_time with Some t -> t | None -> Rng.int_in rng 0 150
  in
  let seed = Rng.int rng max_int in
  let name = match name with Some n -> n | None -> "ev_perfect" in
  Detector.record_make ~family:"ev_perfect" ~stab_time;
  let history pid time =
    if time >= stab_time then
      Pid.all ~n_plus_1
      |> List.filter (fun p -> Failure_pattern.crashed_at pattern p time)
      |> Pid.Set.of_list
    else if Rng.bool (Detector.Chaos.rng ~seed pid (time + 7919)) then
      (* Chaotic suspicions may be any subset, including the empty one. *)
      Detector.Chaos.subset_at_least ~seed ~n_plus_1 ~min_size:1 pid time
    else Pid.Set.empty
  in
  { Detector.name; history; pp = Pid.Set.pp; equal = Pid.Set.equal }

let stable_from ~pattern ~stab_time =
  max stab_time (Failure_pattern.max_crash_time pattern + 1)

let check ?(only = fun _ -> true) (d : Pid.Set.t Detector.t) ~pattern ~stab_by
    ~horizon =
  let all = Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 pattern) in
  let observers = List.filter only all in
  let bad = ref None in
  for time = stab_by to horizon do
    let want =
      List.filter (fun p -> Failure_pattern.crashed_at pattern p time) all
      |> Pid.Set.of_list
    in
    List.iter
      (fun p ->
        let got = Detector.sample d p time in
        if (not (Pid.Set.equal got want)) && !bad = None then
          bad :=
            Some
              (Format.asprintf "at (%a, %d): got %a, want %a" Pid.pp p time
                 Pid.Set.pp got Pid.Set.pp want))
      observers
  done;
  match !bad with Some msg -> Error msg | None -> Ok ()
