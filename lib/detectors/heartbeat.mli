(** The shared heartbeat engine behind the {e implemented} detectors
    ◇P ({!Hb_ev_perfect}) and ◇S ({!Hb_ev_strong}).

    Every other detector in this library is an oracle: its history
    [H(p,t)] is a pure function conjured from the failure pattern. This
    module instead {e computes} a detector inside the run, with no
    access to the pattern, using the classic increasing-timeout
    algorithm over a partially synchronous {!Kernel.Link}:

    - every process broadcasts a heartbeat every [period] steps;
    - [me] suspects [q] once [now - last_seen(q) > timeout(q)];
    - a heartbeat from a suspected process proves the suspicion false:
      [q] is restored and the timeout is increased by [timeout_inc].

    After GST, heartbeats arrive within [delta] of each send, so
    timeouts stop being exceeded once they out-grow the real bound:
    eventually no correct process is falsely suspected (accuracy), while
    crashed processes stop sending and stay suspected forever
    (completeness). The [mode] selects which accuracy the instance aims
    for — and thus how timeouts adapt:

    - [Common_timeout]: one adaptive timeout per observer, raised for
      {e all} targets on any false suspicion — the ◇P construction;
    - [Per_target]: timeouts adapt per (observer, target) link — the
      cheaper ◇S-style construction (here over reliable-after-GST links
      it also converges to ◇P-strength output; the wrappers still
      validate it only against the ◇S spec it promises).

    Determinism: state changes only inside the owner's [Send]/[Recv]/
    poll steps, timer math is step-count arithmetic, and message fates
    are pure draws — same config and schedule replay byte-identically.

    Validation: protocols query the {e live} {!source}; every suspicion
    change is logged with its time, and {!to_detector} rebuilds the full
    history [H(p,t)] from the logs after the run (exact, because at most
    one step happens per time unit). The rebuilt detector shares the
    live source's name, so {!Core.Oracle}-style query replay and the
    {!Ev_perfect.check} / {!Hb_ev_strong.check} spec validators all run
    against what the protocol actually saw. *)

open Kernel

(** {1 Planted mutants}

    Flipped by {!Check.Mutant} ([Hb_timeout_never_increased],
    [Hb_suspected_not_restored]); each disables one load-bearing
    mechanism and must be caught by the spec validators. *)

val chaos_timeout_never_increased : bool ref
(** False suspicions no longer raise timeouts: premature timeouts recur
    forever, so eventual accuracy fails on slow-enough links. *)

val chaos_suspected_not_restored : bool ref
(** A heartbeat from a suspected process no longer restores it: any
    single pre-GST false suspicion becomes permanent. *)

(** {1 Engine} *)

type mode = Common_timeout | Per_target

type params = {
  period : int;  (** heartbeat broadcast cadence, in steps *)
  timeout0 : int;  (** initial suspicion timeout *)
  timeout_inc : int;  (** raise per false suspicion *)
}

val default_params : params
(** [period=6, timeout0=4, timeout_inc=8]. *)

val check_params : params -> unit
(** Raises [Invalid_argument] unless all fields are positive. *)

type t

val create :
  name:string ->
  n_plus_1:int ->
  mode:mode ->
  ?params:params ->
  net:Link.config ->
  unit ->
  t
(** A fresh engine over a fresh link named [name]. *)

val name : t -> string
val link : t -> unit Link.t
val net_config : t -> Link.config

val fiber : ?until:(unit -> bool) -> t -> me:Pid.t -> unit -> unit
(** The monitor loop for one process: poll, process heartbeats, beat if
    due, scan timeouts; repeat. Run it alongside the protocol's fibers.
    By default it never returns, so runs are horizon-bounded; [until]
    (polled once per iteration, outside any scheduler step) makes the
    loop exit once it returns [true], letting the run quiesce when the
    protocol the detector serves is done. *)

(** {1 Query surface} *)

val source : t -> Pid.Set.t Sim.source
(** Live queries: [sample p _] is [p]'s {e current} suspect set. Use
    with {!Sim.query} from the protocol, exactly like an oracle
    detector's source. *)

val leader_source : t -> Pid.t Sim.source
(** Live Ω view: the smallest currently-unsuspected pid (self if all
    suspected) — the same extraction as {!Reduction.Pairwise.
    omega_of_ev_perfect}, sharing its [name ^ ">omega"] naming so query
    replay matches the post-run [omega_of_ev_perfect (to_detector t)]. *)

(** {1 Post-run oracles} *)

val to_detector : t -> Pid.Set.t Detector.t
(** The full history reconstructed from the change logs; agrees with
    every value the live {!source} returned during the run. *)

val last_change : t -> Pid.t -> int
(** Time of [p]'s last suspicion-set change (0 if none). *)

val stabilized_at : t -> only:(Pid.t -> bool) -> int
(** Latest {!last_change} over the selected observers — the empirical
    stabilization time a validator should check from. *)

val changes : t -> Pid.t -> (int * Pid.Set.t) list
(** [p]'s full change log, oldest first, starting with [(0, ∅)]. *)
