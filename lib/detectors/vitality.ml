open Kernel

let make ?name ~rng ~pattern ~watched ?stab_time () =
  let stab_time =
    match stab_time with Some t -> t | None -> Rng.int_in rng 0 150
  in
  let seed = Rng.int rng max_int in
  let name =
    match name with
    | Some n -> n
    | None -> Format.asprintf "vitality(%a)" Pid.pp watched
  in
  Detector.record_make ~family:"vitality" ~stab_time;
  let verdict = Failure_pattern.is_correct pattern watched in
  let history pid time =
    if time >= stab_time then verdict
    else Rng.bool (Detector.Chaos.rng ~seed pid time)
  in
  { Detector.name; history; pp = Format.pp_print_bool; equal = Bool.equal }

let check (d : bool Detector.t) ~pattern ~watched ~stab_by ~horizon =
  match Detector.stable_value d pattern ~from:stab_by ~until:horizon with
  | None ->
      Error
        (Printf.sprintf "no common stable verdict on [%d, %d]" stab_by horizon)
  | Some verdict ->
      if Bool.equal verdict (Failure_pattern.is_correct pattern watched) then
        Ok ()
      else
        Error
          (Format.asprintf "stable verdict %b disagrees with pattern %a"
             verdict Failure_pattern.pp pattern)
