open Kernel

(* Planted mutants (Check.Mutant flips these around explorations): each
   disables one load-bearing mechanism of Algorithm 2.7. *)
let chaos_timeout_never_increased = ref false
let chaos_suspected_not_restored = ref false

type mode = Common_timeout | Per_target

type params = { period : int; timeout0 : int; timeout_inc : int }

let default_params = { period = 6; timeout0 = 4; timeout_inc = 8 }

let check_params p =
  if p.period <= 0 then invalid_arg "Heartbeat: period must be > 0";
  if p.timeout0 <= 0 then invalid_arg "Heartbeat: timeout0 must be > 0";
  if p.timeout_inc <= 0 then invalid_arg "Heartbeat: timeout_inc must be > 0"

type t = {
  hb_name : string;
  n : int;
  mode : mode;
  params : params;
  link : unit Link.t;
  (* Per-observer local state, indexed [me][target]. Only [me]'s steps
     ever touch row [me], so rows are process-local despite living in
     one structure. *)
  last_seen : int array array;
  timeout : int array array;
  suspected : bool array array;
  tick : Timer.Periodic.t array;
  mutable logs : (int * Pid.Set.t) list array; (* newest first, per observer *)
  m_suspicions : Obs.Metrics.counter;
  m_restores : Obs.Metrics.counter;
  m_raises : Obs.Metrics.counter;
  m_beats : Obs.Metrics.counter;
}

let family = function
  | Common_timeout -> "hb_ev_perfect"
  | Per_target -> "hb_ev_strong"

let create ~name ~n_plus_1 ~mode ?(params = default_params) ~net () =
  check_params params;
  let fam = family mode in
  Detector.record_make ~family:fam ~stab_time:net.Link.gst;
  let label what = Printf.sprintf "hb.%s{family=%s}" what fam in
  {
    hb_name = name;
    n = n_plus_1;
    mode;
    params;
    link = Link.create ~name ~n_plus_1 ~config:net ();
    last_seen = Array.make_matrix n_plus_1 n_plus_1 0;
    timeout = Array.make_matrix n_plus_1 n_plus_1 params.timeout0;
    suspected = Array.make_matrix n_plus_1 n_plus_1 false;
    tick = Array.init n_plus_1 (fun _ -> Timer.Periodic.create ~period:params.period);
    logs = Array.make n_plus_1 [ (0, Pid.Set.empty) ];
    m_suspicions = Obs.Metrics.counter (label "suspicions");
    m_restores = Obs.Metrics.counter (label "restores");
    m_raises = Obs.Metrics.counter (label "timeout_raises");
    m_beats = Obs.Metrics.counter (label "heartbeats");
  }

let name t = t.hb_name
let link t = t.link
let net_config t = Link.config t.link

let suspected_set t me =
  let s = ref Pid.Set.empty in
  for q = 0 to t.n - 1 do
    if t.suspected.(me).(q) then s := Pid.Set.add q !s
  done;
  !s

let log_change t me now =
  t.logs.(me) <- (now, suspected_set t me) :: t.logs.(me)

let raise_timeout t me q =
  if not !chaos_timeout_never_increased then begin
    Obs.Metrics.incr t.m_raises;
    match t.mode with
    | Per_target -> t.timeout.(me).(q) <- t.timeout.(me).(q) + t.params.timeout_inc
    | Common_timeout ->
        (* one adaptive timeout per observer: a false suspicion of any
           target raises the timeout for all of them *)
        for p = 0 to t.n - 1 do
          t.timeout.(me).(p) <- t.timeout.(me).(p) + t.params.timeout_inc
        done
  end

let on_heartbeat t ~me ~from ~now =
  t.last_seen.(me).(from) <- now;
  if t.suspected.(me).(from) then begin
    (* the suspicion was false: learn from the mistake (Algorithm 2.7's
       delay += Delta) and restore the process *)
    raise_timeout t me from;
    if not !chaos_suspected_not_restored then begin
      Obs.Metrics.incr t.m_restores;
      t.suspected.(me).(from) <- false;
      log_change t me now
    end
  end

let scan_timeouts t ~me ~now =
  for q = 0 to t.n - 1 do
    if
      q <> me
      && (not t.suspected.(me).(q))
      && now - t.last_seen.(me).(q) > t.timeout.(me).(q)
    then begin
      Obs.Metrics.incr t.m_suspicions;
      t.suspected.(me).(q) <- true;
      log_change t me now
    end
  done

(* The monitor fiber: one poll step per iteration (which also yields the
   time), plus [n+1] send steps whenever the heartbeat period is due.
   Without [until] it runs forever — worlds containing it never quiesce,
   so runs are horizon-bounded like the server-fiber scenarios. [until]
   (polled once per iteration, between scheduler steps) lets a driver
   wind the monitor down once the protocol it serves has finished, so
   the run can quiesce instead of spending the whole horizon. *)
let fiber ?(until = fun () -> false) t ~me () =
  let rec loop () =
    let now, msgs = Link.poll_now t.link ~me in
    List.iter (fun (from, ()) -> on_heartbeat t ~me ~from ~now) msgs;
    if Timer.Periodic.due t.tick.(me) ~now then begin
      Obs.Metrics.incr t.m_beats;
      Link.broadcast t.link ()
    end;
    scan_timeouts t ~me ~now;
    if not (until ()) then loop ()
  in
  loop ()

(* Live query surface: H(p, t) for the *current* t only. Protocol runs
   query through this; validation replays recorded query values against
   {!to_detector}, whose history reconstructs exactly what the live
   source showed at every step (state changes are logged with their
   times, and at most one step happens per time). *)
let source t =
  {
    Sim.name = t.hb_name;
    sample = (fun p _time -> suspected_set t p);
    render = (fun v -> Format.asprintf "%a" Pid.Set.pp v);
  }

let leader_of_set ~n_plus_1 me suspected =
  let rec first q =
    if q >= n_plus_1 then me
    else if not (Pid.Set.mem q suspected) then q
    else first (q + 1)
  in
  first 0

(* Min-unsuspected leader, matching [Pairwise.omega_of_ev_perfect] (same
   ">omega" name, same fallback), so live queries replay against the
   post-run [omega_of_ev_perfect (to_detector t)] history. *)
let leader_source t =
  {
    Sim.name = t.hb_name ^ ">omega";
    sample = (fun p _time -> leader_of_set ~n_plus_1:t.n p (suspected_set t p));
    render = (fun v -> Format.asprintf "%a" Pid.pp v);
  }

let history_at log time =
  let rec find = function
    | [] -> Pid.Set.empty
    | (at, set) :: older -> if at <= time then set else find older
  in
  find log

let to_detector t =
  let logs = Array.copy t.logs in
  {
    Detector.name = t.hb_name;
    history = (fun p time -> history_at logs.(p) time);
    pp = Pid.Set.pp;
    equal = Pid.Set.equal;
  }

let last_change t p = match t.logs.(p) with [] -> 0 | (at, _) :: _ -> at

let stabilized_at t ~only =
  let worst = ref 0 in
  for p = 0 to t.n - 1 do
    if only p then worst := max !worst (last_change t p)
  done;
  !worst

let changes t p = List.rev t.logs.(p)
