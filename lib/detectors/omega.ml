open Kernel

let make ?name ~rng ~pattern ?leader ?stab_time () =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let correct = Failure_pattern.correct pattern in
  let leader =
    match leader with
    | Some p ->
        if not (Failure_pattern.is_correct pattern p) then
          invalid_arg "Omega.make: leader must be correct";
        p
    | None -> Rng.pick rng (Pid.Set.elements correct)
  in
  let stab_time =
    match stab_time with Some t -> t | None -> Rng.int_in rng 0 150
  in
  let seed = Rng.int rng max_int in
  let name = match name with Some n -> n | None -> "omega" in
  Detector.record_make ~family:"omega" ~stab_time;
  let history pid time =
    if time >= stab_time then leader
    else Detector.Chaos.pid ~seed ~n_plus_1 pid time
  in
  { Detector.name; history; pp = Pid.pp; equal = Pid.equal }

let check (d : Pid.t Detector.t) ~pattern ~stab_by ~horizon =
  match Detector.stable_value d pattern ~from:stab_by ~until:horizon with
  | None ->
      Error
        (Printf.sprintf "no common stable leader on [%d, %d]" stab_by horizon)
  | Some leader ->
      if Failure_pattern.is_correct pattern leader then Ok ()
      else
        Error
          (Format.asprintf "stable leader %a is faulty" Pid.pp leader)
