(** Failure detectors as history generators (paper §3.2).

    A failure detector [D] maps each failure pattern [F] to a set of
    admissible histories [H : Π × T → range]. A value of type ['v t] is
    one concrete history drawn from [D(F)]: constructing it fixes the
    failure pattern, the stabilization behaviour, and the seeded
    pre-stabilization chaos, so that [history p t] is a pure function —
    querying twice at the same (p, t) gives the same value, as the model
    requires. *)

open Kernel

type 'v t = {
  name : string;
  history : Pid.t -> int -> 'v;  (** H(p, t) *)
  pp : Format.formatter -> 'v -> unit;
  equal : 'v -> 'v -> bool;
}

val record_make : family:string -> stab_time:int -> unit
(** Telemetry hook for detector constructors: bumps the per-family
    creation counter and records the drawn stabilization time as a
    gauge (last instance) and a distribution histogram. [family] must
    come from a bounded set — use the module name, not the instance
    name. *)

val source : 'v t -> 'v Sim.source
(** The queryable module handed to protocol fibers; each query is one
    step and reads [history p now]. *)

val sample : 'v t -> Pid.t -> int -> 'v
(** Direct history access for oracles (no step). *)

val stable_value :
  'v t -> Failure_pattern.t -> from:int -> until:int -> 'v option
(** [Some v] iff every correct process sees exactly [v] at every time in
    [\[from, until\]] — the bounded-run rendering of "eventually
    permanently output at all correct processes". *)

val map : name:string -> ('v -> 'w) ->
  pp:(Format.formatter -> 'w -> unit) -> equal:('w -> 'w -> bool) ->
  'v t -> 'w t
(** Pointwise post-composition — the zero-step transformations used by
    the complement reductions of §4. *)

val mapi : name:string -> (Pid.t -> int -> 'v -> 'w) ->
  pp:(Format.formatter -> 'w -> unit) -> equal:('w -> 'w -> bool) ->
  'v t -> 'w t
(** Like {!map} but the transformation may also use the querying process
    and the query time (e.g. "output own id unless the complement is a
    singleton", or cycling over a set). *)

module Chaos : sig
  (** Deterministic per-(pid, time) randomness for the pre-stabilization
      window, so histories stay pure functions of their seed. *)

  val rng : seed:int -> Pid.t -> int -> Rng.t

  val subset_at_least :
    seed:int -> n_plus_1:int -> min_size:int -> Pid.t -> int -> Pid.Set.t
  (** A pseudo-random subset of Π of size ≥ [min_size]. *)

  val pid : seed:int -> n_plus_1:int -> Pid.t -> int -> Pid.t
  (** A pseudo-random process id. *)
end

val pp_pid_set : Format.formatter -> Pid.Set.t -> unit
val pp_pid : Format.formatter -> Pid.t -> unit
