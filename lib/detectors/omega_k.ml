open Kernel

let random_stable_set rng pattern k =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let correct = Pid.Set.elements (Failure_pattern.correct pattern) in
  let anchor = Rng.pick rng correct in
  let others = List.filter (fun p -> not (Pid.equal p anchor)) (Pid.all ~n_plus_1) in
  let arr = Array.of_list others in
  Rng.shuffle rng arr;
  Pid.Set.of_list (anchor :: Array.to_list (Array.sub arr 0 (k - 1)))

let chaos_set ~seed ~n_plus_1 ~k pid time =
  let r = Detector.Chaos.rng ~seed pid time in
  let pids = Array.of_list (Pid.all ~n_plus_1) in
  Rng.shuffle r pids;
  Pid.Set.of_list (Array.to_list (Array.sub pids 0 k))

let make ?name ~rng ~pattern ~k ?stable_set ?stab_time () =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  if k < 1 || k > n_plus_1 then invalid_arg "Omega_k.make: bad k";
  let correct = Failure_pattern.correct pattern in
  let stable_set =
    match stable_set with
    | Some s ->
        if Pid.Set.cardinal s <> k then
          invalid_arg "Omega_k.make: stable set must have k members";
        if Pid.Set.is_empty (Pid.Set.inter s correct) then
          invalid_arg "Omega_k.make: stable set needs a correct member";
        s
    | None -> random_stable_set rng pattern k
  in
  let stab_time =
    match stab_time with Some t -> t | None -> Rng.int_in rng 0 150
  in
  let seed = Rng.int rng max_int in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "omega_%d" k
  in
  Detector.record_make ~family:"omega_k" ~stab_time;
  let history pid time =
    if time >= stab_time then stable_set
    else chaos_set ~seed ~n_plus_1 ~k pid time
  in
  { Detector.name; history; pp = Pid.Set.pp; equal = Pid.Set.equal }

let check (d : Pid.Set.t Detector.t) ~pattern ~k ~stab_by ~horizon =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let all = Pid.all ~n_plus_1 in
  let bad_size = ref None in
  for time = 0 to horizon do
    List.iter
      (fun p ->
        let s = Detector.sample d p time in
        if Pid.Set.cardinal s <> k && !bad_size = None then
          bad_size :=
            Some
              (Format.asprintf "output %a at (%a, %d) has size %d, want %d"
                 Pid.Set.pp s Pid.pp p time (Pid.Set.cardinal s) k))
      all
  done;
  match !bad_size with
  | Some msg -> Error msg
  | None -> (
      match Detector.stable_value d pattern ~from:stab_by ~until:horizon with
      | None ->
          Error
            (Printf.sprintf "no common stable set on [%d, %d]" stab_by horizon)
      | Some s ->
          if
            Pid.Set.is_empty (Pid.Set.inter s (Failure_pattern.correct pattern))
          then
            Error
              (Format.asprintf "stable set %a contains no correct process"
                 Pid.Set.pp s)
          else Ok ())
