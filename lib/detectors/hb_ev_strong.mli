(** Implemented ◇S: the {!Heartbeat} engine in [Per_target] mode.

    ◇S weakens ◇P's accuracy: it requires strong completeness (crashed
    processes are eventually suspected by every correct process) but
    only {e eventual weak accuracy} — {e some} correct process is
    eventually never suspected by any correct process. That is exactly
    what consensus needs (◇S ≅ Ω in the weakest-failure-detector
    hierarchy this repo studies), and {!check} validates precisely that
    spec, even though over reliable-after-GST links the per-target
    construction usually converges to ◇P-strength output anyway. *)

open Kernel

type t = Heartbeat.t

val make :
  ?name:string ->
  ?params:Heartbeat.params ->
  n_plus_1:int ->
  net:Link.config ->
  unit ->
  t

val check :
  ?min_tail:int ->
  t ->
  pattern:Failure_pattern.t ->
  horizon:int ->
  (unit, string) result
(** The run satisfied the ◇S spec from the empirical stabilization time
    to [horizon]: strong completeness plus eventual weak accuracy over
    the reconstructed history. Fails loudly if fewer than [min_tail]
    (default 20) post-stabilization steps remain. *)
