open Kernel

type t = Heartbeat.t

let make ?(name = "hb_ev_strong") ?params ~n_plus_1 ~net () =
  Heartbeat.create ~name ~n_plus_1 ~mode:Heartbeat.Per_target ?params ~net ()

let check ?(min_tail = 20) t ~pattern ~horizon =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let correct =
    List.filter (Failure_pattern.is_correct pattern) (Pid.all ~n_plus_1)
  in
  let only = Failure_pattern.is_correct pattern in
  let stab_by =
    max
      (Heartbeat.stabilized_at t ~only + 1)
      (Failure_pattern.max_crash_time pattern + 1)
  in
  if stab_by > horizon - min_tail then
    Error
      (Printf.sprintf
         "no stabilization window: last suspicion change at %d, horizon %d \
          leaves a tail of %d < %d"
         (stab_by - 1) horizon
         (max 0 (horizon - stab_by + 1))
         min_tail)
  else begin
    let d = Heartbeat.to_detector t in
    (* Strong completeness: from stab_by on, every crashed process is
       suspected by every correct one. *)
    let completeness = ref (Ok ()) in
    let faulty = Pid.Set.elements (Failure_pattern.faulty pattern) in
    for time = stab_by to horizon do
      List.iter
        (fun p ->
          let got = Detector.sample d p time in
          List.iter
            (fun q ->
              if (not (Pid.Set.mem q got)) && Result.is_ok !completeness then
                completeness :=
                  Error
                    (Format.asprintf
                       "completeness: at (%a, %d) crashed %a is unsuspected"
                       Pid.pp p time Pid.pp q))
            faulty)
        correct
    done;
    match !completeness with
    | Error _ as e -> e
    | Ok () ->
        (* Eventual weak accuracy: some correct process is never
           suspected by any correct process from stab_by on. *)
        let trusted q =
          List.for_all
            (fun p ->
              let rec clean time =
                time > horizon
                || ((not (Pid.Set.mem q (Detector.sample d p time)))
                   && clean (time + 1))
              in
              clean stab_by)
            correct
        in
        if List.exists trusted correct then Ok ()
        else
          Error
            (Printf.sprintf
               "weak accuracy: every correct process is suspected by some \
                correct process in [%d, %d]"
               stab_by horizon)
  end
