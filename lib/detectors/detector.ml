open Kernel

type 'v t = {
  name : string;
  history : Pid.t -> int -> 'v;
  pp : Format.formatter -> 'v -> unit;
  equal : 'v -> 'v -> bool;
}

let record_make ~family ~stab_time =
  Obs.Metrics.incr
    (Obs.Metrics.counter (Printf.sprintf "detectors.created{family=%s}" family));
  Obs.Metrics.set
    (Obs.Metrics.gauge (Printf.sprintf "detectors.stab_time{family=%s}" family))
    (float_of_int stab_time);
  Obs.Metrics.observe_int
    (Obs.Metrics.histogram
       ~buckets:[| 10.; 25.; 50.; 75.; 100.; 150.; 300.; 1000. |]
       (Printf.sprintf "detectors.stab_time_dist{family=%s}" family))
    stab_time

let source t =
  {
    Sim.name = t.name;
    sample = t.history;
    render = (fun v -> Format.asprintf "%a" t.pp v);
  }
let sample t pid time = t.history pid time

let stable_value t pattern ~from ~until =
  let correct = Pid.Set.elements (Failure_pattern.correct pattern) in
  match correct with
  | [] -> None
  | first :: _ ->
      let v = t.history first from in
      let ok =
        List.for_all
          (fun p ->
            let rec check time =
              time > until
              || (t.equal (t.history p time) v && check (time + 1))
            in
            check from)
          correct
      in
      if ok then Some v else None

let map ~name f ~pp ~equal t =
  { name; history = (fun p time -> f (t.history p time)); pp; equal }

let mapi ~name f ~pp ~equal t =
  { name; history = (fun p time -> f p time (t.history p time)); pp; equal }

module Chaos = struct
  (* Key the stream on (seed, pid, t) so the history is a pure function.
     The multipliers are odd 64-bit constants; any good mix works. *)
  let rng ~seed pid time =
    Rng.create ((seed * 0x2545F491) lxor ((pid + 1) * 0x9E3779B9) lxor ((time + 1) * 0x85EBCA6B))

  let subset_at_least ~seed ~n_plus_1 ~min_size pid time =
    if min_size > n_plus_1 then invalid_arg "Chaos.subset_at_least";
    let r = rng ~seed pid time in
    let size = Rng.int_in r (max 1 min_size) n_plus_1 in
    let pids = Array.of_list (Pid.all ~n_plus_1) in
    Rng.shuffle r pids;
    Pid.Set.of_list (Array.to_list (Array.sub pids 0 size))

  let pid ~seed ~n_plus_1 p time =
    let r = rng ~seed p time in
    Rng.int r n_plus_1
end

let pp_pid_set = Pid.Set.pp
let pp_pid = Pid.pp
