open Memory

type 'a proposal = Unwritten | Small of 'a list | Large

type 'a instance = {
  k : int;
  compare : 'a -> 'a -> int;
  phase1 : 'a option Snapshot.t;
  phase2 : 'a proposal Snapshot.t;
}

let create ~name ~k ~size ~compare =
  if k < 0 then invalid_arg "Converge.create: negative k";
  if size <= 0 then invalid_arg "Converge.create: non-positive size";
  {
    k;
    compare;
    phase1 = Snapshot.create ~name:(name ^ ".a1") ~size ~init:(fun _ -> None);
    phase2 =
      Snapshot.create ~name:(name ^ ".a2") ~size ~init:(fun _ -> Unwritten);
  }

let k_of t = t.k

(* Test-only planted mutant (Check.Mutant): when set, [run] stops after
   phase 1 — committing whenever its own V₁ is small, without checking
   phase-2 visibility. C-Agreement breaks: a committer no longer forces
   others onto small proposals. Checker regression tests only. *)
let chaos_drop_phase2 = ref false

let distinct_sorted compare values =
  List.sort_uniq compare values

let min_of_sorted = function
  | [] -> assert false (* small proposals are never empty: V₁ ∋ own v *)
  | first :: _ -> first (* lists are sorted ascending *)

let run t ~me v =
  if t.k = 0 then (v, false)
  else if !chaos_drop_phase2 then begin
    Snapshot.update t.phase1 ~me (Some v);
    let seen1 = Snapshot.scan t.phase1 in
    let v1 =
      Array.to_list seen1 |> List.filter_map Fun.id
      |> distinct_sorted t.compare
    in
    if List.length v1 <= t.k then (min_of_sorted v1, true) else (v, false)
  end
  else begin
    Snapshot.update t.phase1 ~me (Some v);
    let seen1 = Snapshot.scan t.phase1 in
    let v1 =
      Array.to_list seen1 |> List.filter_map Fun.id
      |> distinct_sorted t.compare
    in
    let small = List.length v1 <= t.k in
    let proposal = if small then Small v1 else Large in
    Snapshot.update t.phase2 ~me proposal;
    let seen2 = Snapshot.scan t.phase2 in
    let smalls, saw_large =
      Array.fold_left
        (fun (smalls, large) -> function
          | Unwritten -> (smalls, large)
          | Small vals -> (vals :: smalls, large)
          | Large -> (smalls, true))
        ([], false) seen2
    in
    let min_of = function
      | [] -> assert false (* small proposals are never empty: V₁ ∋ own v *)
      | first :: _ -> first (* lists are sorted ascending *)
    in
    if small && not saw_large then (min_of v1, true)
    else
      (* Adopt the most informed (largest) visible small proposal; they
         form a containment chain, so "largest" is well defined. *)
      match
        List.fold_left
          (fun best vals ->
            match best with
            | None -> Some vals
            | Some b -> if List.length vals > List.length b then Some vals else best)
          None smalls
      with
      | Some vals -> (min_of vals, false)
      | None -> (v, false)
  end

let make_instance = create

module Arena = struct
  type 'a t = {
    arena_name : string;
    size : int;
    arena_compare : 'a -> 'a -> int;
    table : (string, 'a instance) Hashtbl.t;
  }

  let create ~name ~size ~compare =
    { arena_name = name; size; arena_compare = compare; table = Hashtbl.create 64 }

  let instance t ~k ~tag =
    let key = Printf.sprintf "k%d/%s" k tag in
    match Hashtbl.find_opt t.table key with
    | Some inst ->
        if inst.k <> k then invalid_arg "Converge.Arena.instance: k mismatch";
        inst
    | None ->
        let inst =
          make_instance
            ~name:(Printf.sprintf "%s.%s" t.arena_name key)
            ~k ~size:t.size ~compare:t.arena_compare
        in
        Hashtbl.add t.table key inst;
        inst
end

module Commit_adopt = struct
  type 'a t = 'a instance

  let create ~name ~size ~compare = make_instance ~name ~k:1 ~size ~compare
  let run t ~me v = run t ~me v
end
