(** The k-converge routine (paper §5.1, after Yang–Neiger–Gafni [21]).

    A process calls k-converge with an input value and gets back a value
    and a boolean ("commits" when true). The contract, quoted from the
    paper:

    - {b C-Termination}: every correct process picks some value;
    - {b C-Validity}: if a process picks [v] then some process invoked
      k-converge with [v];
    - {b C-Agreement}: if some process commits, then at most [k] values
      are picked;
    - {b Convergence}: if there are at most [k] different input values,
      then every process that picks a value commits.

    [0]-converge[(v)] returns [(v, false)] by definition, taking no steps.

    The implementation is register-only (two phases of
    update-then-scan on {!Memory.Snapshot} objects), wait-free for any
    number of failures:

    + Phase 1: write the input, scan; let [V₁] be the set of values seen.
      Scans are related by containment, so the distinct [V₁] sets across
      processes form a chain; at most [k] distinct sets of size ≤ [k] fit
      on a chain, so "min of a small [V₁]" ranges over at most [k] values.
    + Phase 2: publish either the small [V₁] (a {e proposal}) or ⊥, then
      scan. Commit on [min V₁] iff the own proposal is small and no
      ⊥-proposal is visible; otherwise adopt the min of the largest
      visible small proposal, falling back to the input.

    If some process commits, linearizability of the phase-2 snapshot
    forces every other process to see a small proposal, so every pick is
    the min of a small [V₁] — at most [k] values (C-Agreement). If inputs
    already number ≤ [k], nobody publishes ⊥ and everybody commits
    (Convergence). *)

type 'a instance

val create :
  name:string -> k:int -> size:int -> compare:('a -> 'a -> int) -> 'a instance
(** A fresh shared instance with [size] single-writer positions.
    [compare] orders values (used for the deterministic min). *)

val k_of : 'a instance -> int

val run : 'a instance -> me:int -> 'a -> 'a * bool
(** Invoke the instance. [me] is the caller's position; each position may
    be used at most once. Returns [(picked, committed)]. *)

val chaos_drop_phase2 : bool ref
(** Test-only planted mutant: when set, {!run} commits straight after
    phase 1 whenever its own [V₁] is small, skipping the phase-2
    visibility check that C-Agreement rests on. For checker regression
    tests only. *)

(** A lazily-allocated family of shared instances, keyed by (k, tag) —
    the protocols of Figs 1–2 address instances as
    [(|U|−1)-converge\[r\]\[k\]], where the parameter is part of the
    instance's identity and different processes must reach the same
    object. Allocation is harness-level (free of steps). *)
module Arena : sig
  type 'a t

  val create :
    name:string -> size:int -> compare:('a -> 'a -> int) -> 'a t

  val instance : 'a t -> k:int -> tag:string -> 'a instance
  (** The shared instance for [(k, tag)], allocated on first use. *)
end

(** Commit–adopt: the [k = 1] instance under its usual name. If all
    inputs are equal everyone commits; if anyone commits [v], everyone
    picks [v]. The Ω-based consensus baseline builds on it. *)
module Commit_adopt : sig
  type 'a t

  val create :
    name:string -> size:int -> compare:('a -> 'a -> int) -> 'a t

  val run : 'a t -> me:int -> 'a -> 'a * bool
  (** [(picked, committed)]; each position used at most once. *)
end
