open Kernel

type 'a replay = pattern:Failure_pattern.t -> prefix:Pid.t list -> 'a option

let m_replays = Obs.Metrics.counter "check.shrink.replays"

(* Split [xs] into [n] contiguous chunks, the first ones one element
   longer when the length does not divide evenly. *)
let split_chunks xs n =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec go xs i =
    if i >= n then []
    else begin
      let size = base + if i < extra then 1 else 0 in
      let rec take k = function
        | tl when k = 0 -> ([], tl)
        | [] -> ([], [])
        | x :: tl ->
            let chunk, rest = take (k - 1) tl in
            (x :: chunk, rest)
      in
      let chunk, rest = take size xs in
      chunk :: go rest (i + 1)
    end
  in
  go xs 0

let complement_of chunks i =
  List.concat (List.filteri (fun j _ -> j <> i) chunks)

let ddmin ~test xs =
  if test [] then []
  else
    let rec go xs n =
      let len = List.length xs in
      if len <= 1 then xs
      else begin
        let n = min n len in
        let chunks = split_chunks xs n in
        match List.find_opt test chunks with
        | Some chunk -> go chunk 2
        | None -> (
            let complements = List.mapi (fun i _ -> complement_of chunks i) chunks in
            match List.find_opt test complements with
            | Some c -> go c (max (n - 1) 2)
            | None -> if n < len then go xs (min len (2 * n)) else xs)
      end
    in
    go xs 2

let crashes_of pattern =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  Pid.all ~n_plus_1
  |> List.filter_map (fun p ->
         let t = Failure_pattern.crash_time pattern p in
         if t = Failure_pattern.never then None else Some (p, t))

let pattern_of ~n_plus_1 crashes = Failure_pattern.make ~n_plus_1 ~crashes

(* Greedily drop crashes that are not needed for the failure, to a
   fixpoint (1-minimal w.r.t. crash removal). *)
let shrink_pattern ~still_fails pattern =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let rec pass crashes =
    let try_without i =
      let candidate = pattern_of ~n_plus_1 (List.filteri (fun j _ -> j <> i) crashes) in
      if still_fails candidate then Some candidate else None
    in
    let rec first i =
      if i >= List.length crashes then None
      else match try_without i with Some p -> Some p | None -> first (i + 1)
    in
    match first 0 with
    | Some reduced -> pass (crashes_of reduced)
    | None -> pattern_of ~n_plus_1 crashes
  in
  pass (crashes_of pattern)

let minimize ~replay ~pattern ~prefix =
  let run ~pattern ~prefix =
    Obs.Metrics.incr m_replays;
    replay ~pattern ~prefix
  in
  match run ~pattern ~prefix with
  | None -> None
  | Some _ ->
      (* Alternate the two shrinkers to a joint fixpoint: shrinking the
         prefix can make a crash removable (and vice versa), so one
         pass of each is 1-minimal only against the other's pre-shrink
         input. At the fixpoint, removing any single crash or any
         single schedule entry no longer reproduces the failure. *)
      let rec fix pattern prefix =
        let pattern' =
          shrink_pattern pattern ~still_fails:(fun candidate ->
              run ~pattern:candidate ~prefix <> None)
        in
        let prefix' =
          ddmin prefix ~test:(fun candidate ->
              run ~pattern:pattern' ~prefix:candidate <> None)
        in
        if crashes_of pattern' = crashes_of pattern && prefix' = prefix then
          (pattern', prefix')
        else fix pattern' prefix'
      in
      let pattern, prefix = fix pattern prefix in
      (* confirm and return the report of the shrunk counterexample *)
      (match run ~pattern ~prefix with
      | Some report -> Some (pattern, prefix, report)
      | None -> None)
