open Kernel

type 'a replay = pattern:Failure_pattern.t -> prefix:Pid.t list -> 'a option

let m_replays = Obs.Metrics.counter "check.shrink.replays"

(* The candidate sequence lives in an array; chunks are (start, size)
   windows over it — n contiguous chunks, the first ones one element
   longer when the length does not divide evenly — and candidate lists
   are built per test call only, in the exact order the classic
   list-of-chunks formulation would test them (the replay counter is
   part of the golden outputs). *)
let chunk_bounds len n =
  let base = len / n and extra = len mod n in
  Array.init n (fun i ->
      let start = (i * base) + min i extra in
      let size = base + if i < extra then 1 else 0 in
      (start, size))

let ddmin ~test xs =
  if test [] then []
  else
    let chunk_list a (start, size) = List.init size (fun k -> a.(start + k)) in
    let complement_list a (start, size) =
      List.init
        (Array.length a - size)
        (fun k -> if k < start then a.(k) else a.(k + size))
    in
    let rec go a n =
      let len = Array.length a in
      if len <= 1 then Array.to_list a
      else begin
        let n = min n len in
        let bounds = chunk_bounds len n in
        let rec first_chunk i =
          if i >= n then None
          else if test (chunk_list a bounds.(i)) then Some bounds.(i)
          else first_chunk (i + 1)
        in
        match first_chunk 0 with
        | Some (start, size) -> go (Array.sub a start size) 2
        | None -> (
            let rec first_complement i =
              if i >= n then None
              else if test (complement_list a bounds.(i)) then Some bounds.(i)
              else first_complement (i + 1)
            in
            match first_complement 0 with
            | Some (start, size) ->
                let rest = Array.make (len - size) a.(0) in
                Array.blit a 0 rest 0 start;
                Array.blit a (start + size) rest start (len - start - size);
                go rest (max (n - 1) 2)
            | None -> if n < len then go a (min len (2 * n)) else Array.to_list a)
      end
    in
    go (Array.of_list xs) 2

let crashes_of pattern =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  Pid.all ~n_plus_1
  |> List.filter_map (fun p ->
         let t = Failure_pattern.crash_time pattern p in
         if t = Failure_pattern.never then None else Some (p, t))

let pattern_of ~n_plus_1 crashes = Failure_pattern.make ~n_plus_1 ~crashes

(* Greedily drop crashes that are not needed for the failure, to a
   fixpoint (1-minimal w.r.t. crash removal). *)
let shrink_pattern ~still_fails pattern =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let rec pass crashes =
    let try_without i =
      let candidate = pattern_of ~n_plus_1 (List.filteri (fun j _ -> j <> i) crashes) in
      if still_fails candidate then Some candidate else None
    in
    let rec first i =
      if i >= List.length crashes then None
      else match try_without i with Some p -> Some p | None -> first (i + 1)
    in
    match first 0 with
    | Some reduced -> pass (crashes_of reduced)
    | None -> pattern_of ~n_plus_1 crashes
  in
  pass (crashes_of pattern)

let minimize ~replay ~pattern ~prefix =
  let run ~pattern ~prefix =
    Obs.Metrics.incr m_replays;
    replay ~pattern ~prefix
  in
  match run ~pattern ~prefix with
  | None -> None
  | Some _ ->
      (* Alternate the two shrinkers to a joint fixpoint: shrinking the
         prefix can make a crash removable (and vice versa), so one
         pass of each is 1-minimal only against the other's pre-shrink
         input. At the fixpoint, removing any single crash or any
         single schedule entry no longer reproduces the failure. *)
      let rec fix pattern prefix =
        let pattern' =
          shrink_pattern pattern ~still_fails:(fun candidate ->
              run ~pattern:candidate ~prefix <> None)
        in
        let prefix' =
          ddmin prefix ~test:(fun candidate ->
              run ~pattern:pattern' ~prefix:candidate <> None)
        in
        if crashes_of pattern' = crashes_of pattern && prefix' = prefix then
          (pattern', prefix')
        else fix pattern' prefix'
      in
      let pattern, prefix = fix pattern prefix in
      (* confirm and return the report of the shrunk counterexample *)
      (match run ~pattern ~prefix with
      | Some report -> Some (pattern, prefix, report)
      | None -> None)
