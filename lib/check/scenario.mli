(** Canonical worlds for the [wfde check] command and the harness.

    Each scenario builds a small, deterministic multi-process world
    around one shared-object implementation together with the property
    to verify on every explored execution. The [make] thunk matches
    {!Dpor.explore}'s [make] argument.

    - [Register]: every process writes and reads one shared atomic
      register, history checked with Wing–Gong against the sequential
      register spec;
    - [Snapshot]: [procs - 1] single-slot updaters plus one scanner
      over an Afek-et-al. snapshot, checked against the sequential
      snapshot spec. (The {!Mutant.Snapshot_single_collect} violation
      needs [procs >= 3]: with two processes every inconsistent view is
      still linearizable.)
    - [Abd]: an ABD emulated register with a write stranded mid-update
      before the run begins (its value reached only p2's replica; p2's
      fate is left to the failure pattern) and p1 reading twice;
      atomicity is checked with Wing–Gong, the half-applied write
      entering the history as a pending operation;
    - [Commit_adopt]: every process runs commit–adopt on a distinct
      input; the trace-independent result table is checked for
      C-Validity and the commit–adopt agreement property.
    - [Hb_detector cfg]: every process runs a heartbeat ◇P monitor
      ({!Detectors.Hb_ev_perfect}) over a partially synchronous
      {!Kernel.Link} with config [cfg]; checked are the link's
      partial-synchrony contract, crash isolation, and ◇P conformance
      of the reconstructed history — so exploration proves pre-GST
      delay and loss cannot break the detector's spec, and catches the
      planted heartbeat mutants ({!Mutant.Hb_timeout_never_increased},
      {!Mutant.Hb_suspected_not_restored}).
    - [Link_chaos cfg]: periodic broadcasters over the same link;
      checked are the link contract, crash isolation, and bounded
      delivery liveness to correct processes.

    Worlds with forever-running server fibers never quiesce; explore
    them with a horizon a few times the depth. For the parameterized
    scenarios keep [depth <= cfg.gst] so the explored perturbations are
    pre-GST (the tail completion is round-robin, which post-GST is
    exactly the fair scheduling partial synchrony promises). *)

open Kernel

type obj =
  | Register
  | Snapshot
  | Abd
  | Commit_adopt
  | Hb_detector of Link.config
  | Link_chaos of Link.config

val default_chaos : Link.config
(** [gst=12, delta=2, pre_delay=6, loss=50, seed=3] — the canonical
    adversarial link: a DPOR window of depth <= 12 is entirely pre-GST,
    with heavy loss and delay before it. *)

val all : obj list
(** The four shared-object scenarios plus [Hb_detector default_chaos]
    and [Link_chaos default_chaos]. *)

val to_string : obj -> string
(** Stable CLI names: [register], [snapshot], [abd], [commit-adopt],
    [hb-detector(gst=..,delta=..,pre_delay=..,loss=..,seed=..)],
    [link-chaos(...)]. *)

val of_string : string -> (obj, string) result
(** Inverse of {!to_string}; bare [hb-detector] / [link-chaos] select
    {!default_chaos}. *)

val min_procs : obj -> int

val make :
  obj ->
  procs:int ->
  unit ->
  (Pid.t -> (unit -> unit) list) * (Trace.t -> (unit, string) result)
(** A fresh world builder; deterministic, as {!Dpor.explore} requires.
    [procs] is the process count n+1. Raises [Invalid_argument] below
    {!min_procs}. *)

val patterns : obj -> procs:int -> Failure_pattern.t list
(** The failure patterns worth sweeping for this scenario: always
    failure-free first, plus crash patterns that matter (for [Abd]: the
    replica-seeding process crashing at a range of times, which is what
    can strand the seeded write's value). Exploration sweeps these in
    order. *)
