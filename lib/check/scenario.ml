open Kernel

type obj =
  | Register
  | Snapshot
  | Abd
  | Commit_adopt
  | Hb_detector of Link.config
  | Link_chaos of Link.config

(* The canonical adversarial link for the parameterized scenarios: GST
   late enough that a DPOR window of depth <= 12 is entirely pre-GST,
   with heavy loss and delay before it. *)
let default_chaos =
  { Link.gst = 12; delta = 2; pre_delay = 6; loss_pct = 50; link_seed = 3 }

let all =
  [
    Register;
    Snapshot;
    Abd;
    Commit_adopt;
    Hb_detector default_chaos;
    Link_chaos default_chaos;
  ]

let to_string = function
  | Register -> "register"
  | Snapshot -> "snapshot"
  | Abd -> "abd"
  | Commit_adopt -> "commit-adopt"
  | Hb_detector cfg -> Printf.sprintf "hb-detector(%s)" (Link.config_to_string cfg)
  | Link_chaos cfg -> Printf.sprintf "link-chaos(%s)" (Link.config_to_string cfg)

let parse_configured s ~prefix ~of_cfg =
  let plen = String.length prefix in
  if
    String.length s > plen + 2
    && String.starts_with ~prefix:(prefix ^ "(") s
    && s.[String.length s - 1] = ')'
  then
    let body = String.sub s (plen + 1) (String.length s - plen - 2) in
    Some (Result.map of_cfg (Link.config_of_string body))
  else if String.equal s prefix then Some (Ok (of_cfg default_chaos))
  else None

let of_string s =
  match List.find_opt (fun o -> String.equal (to_string o) s) all with
  | Some o -> Ok o
  | None -> (
      match
        ( parse_configured s ~prefix:"hb-detector" ~of_cfg:(fun c -> Hb_detector c),
          parse_configured s ~prefix:"link-chaos" ~of_cfg:(fun c -> Link_chaos c) )
      with
      | Some r, _ | _, Some r -> r
      | None, None ->
          Error
            (Printf.sprintf
               "unknown object %S (expected one of: register, snapshot, abd, \
                commit-adopt, hb-detector[(gst=..,delta=..,pre_delay=..,\
                loss=..,seed=..)], link-chaos[(...)])"
               s))

let min_procs = function
  | Register -> 1
  | Snapshot | Abd | Commit_adopt | Hb_detector _ | Link_chaos _ -> 2

let require obj procs =
  if procs < min_procs obj then
    invalid_arg
      (Printf.sprintf "Scenario.make %s: needs at least %d processes"
         (to_string obj) (min_procs obj))

(* Every process increments through one shared register: two writes and
   two reads each, all single-step and recorded with their step time. *)
let register ~procs () =
  let reg = Memory.Register.create ~name:"r" 0 in
  let l = Histories.log () in
  let body pid () =
    let base = 10 * (Pid.to_int pid + 1) in
    Histories.logged_write l reg ~me:pid (base + 1);
    ignore (Histories.logged_read l reg ~me:pid);
    Histories.logged_write l reg ~me:pid (base + 2);
    ignore (Histories.logged_read l reg ~me:pid)
  in
  ignore procs;
  let check (_ : Trace.t) =
    Lin.check (Histories.register_spec ~init:0) (Histories.events l)
  in
  ((fun pid -> [ body pid ]), check)

(* procs-1 updaters (each writing its own slot once) and one scanner
   scanning twice. *)
let snapshot ~procs () =
  let snap = Memory.Snapshot.create ~name:"s" ~size:procs ~init:(fun _ -> 0) in
  let l = Histories.log () in
  let scanner = procs - 1 in
  let body pid () =
    if Pid.to_int pid = scanner then begin
      ignore (Histories.logged_scan l snap ~me:pid);
      ignore (Histories.logged_scan l snap ~me:pid)
    end
    else Histories.logged_update l snap ~me:pid (10 * (Pid.to_int pid + 1))
  in
  let check (_ : Trace.t) =
    Lin.check
      (Histories.snapshot_spec ~size:procs ~init:(fun _ -> 0))
      (Histories.events l)
  in
  ((fun pid -> [ body pid ]), check)

(* An ABD register with a write stranded mid-update-phase before the run
   begins: tag (1, p2) with value 1 reached only p2's replica, and the
   corresponding attempt is on record. p1 reads twice; every process
   runs a server. Whether the stranded value stays reachable is up to
   the failure pattern (crashing p2 silences the only fresh replica). *)
let abd ~procs () =
  let t = Memory.Abd.create ~name:"abd" ~n_plus_1:procs ~init:0 in
  let holder = 1 in
  let tag = { Memory.Abd.seq = 1; writer = holder } in
  Memory.Abd.unsafe_seed_replica t ~owner:holder ~key:"x" ~tag 1;
  Memory.Abd.unsafe_attempt t ~key:"x" ~tag 1 ~invoked:0;
  let reader () =
    ignore (Memory.Abd.read t ~me:0 ~key:"x");
    ignore (Memory.Abd.read t ~me:0 ~key:"x")
  in
  let procs_fn pid =
    let server = Memory.Abd.server t ~me:pid in
    if Pid.to_int pid = 0 then [ reader; server ] else [ server ]
  in
  let check (_ : Trace.t) =
    Lin.check (Histories.abd_spec ~init:0) (Histories.abd_history t)
  in
  (procs_fn, check)

(* Distinct inputs through one commit–adopt instance; results collected
   harness-side (order-insensitive, as the reduction requires). *)
let commit_adopt ~procs () =
  let inst =
    Converge.Commit_adopt.create ~name:"ca" ~size:procs ~compare:Int.compare
  in
  let picks = Array.make procs None in
  let input p = 100 + p in
  let body pid () =
    let p = Pid.to_int pid in
    picks.(p) <- Some (Converge.Commit_adopt.run inst ~me:p (input p))
  in
  let check (_ : Trace.t) =
    let finished =
      Array.to_list picks |> List.filter_map Fun.id
    in
    let inputs = List.init procs input in
    match
      List.find_opt (fun (v, _) -> not (List.mem v inputs)) finished
    with
    | Some (v, _) ->
        Error (Printf.sprintf "C-Validity: %d was picked but never proposed" v)
    | None -> (
        match List.find_opt (fun (_, committed) -> committed) finished with
        | None -> Ok ()
        | Some (v, _) ->
            if List.for_all (fun (v', _) -> v' = v) finished then Ok ()
            else
              Error
                (Printf.sprintf
                   "commit-adopt agreement: %d committed but picks were %s" v
                   (String.concat ","
                      (List.map (fun (v', _) -> string_of_int v') finished))))
  in
  ((fun pid -> [ body pid ]), check)

let pattern_of_trace ~procs trace =
  let crashes =
    List.filter_map
      (function
        | Trace.Crash { pid; time } -> Some (pid, time) | Trace.Step _ -> None)
      trace
  in
  Failure_pattern.make ~n_plus_1:procs ~crashes

(* Every process runs one heartbeat monitor (implemented ◇P) over an
   adversarial link; the property is the full subsystem contract — link
   partial synchrony, crash isolation, and ◇P conformance over the
   reconstructed history. The failure pattern is recovered from the
   trace's crash events, so the check closure fits [Dpor.explore]'s
   trace-only signature. Timeout starts below the heartbeat spacing on
   purpose: every schedule exercises false suspicion, restore, and
   timeout growth — exactly the mechanisms the planted heartbeat
   mutants disable. *)
let hb_detector cfg ~procs () =
  let eng =
    Detectors.Hb_ev_perfect.make
      ~params:{ Detectors.Heartbeat.period = 4; timeout0 = 2; timeout_inc = 6 }
      ~n_plus_1:procs ~net:cfg ()
  in
  let fibers pid = [ Detectors.Heartbeat.fiber eng ~me:pid ] in
  let check trace =
    let pattern = pattern_of_trace ~procs trace in
    let link = Detectors.Heartbeat.link eng in
    match Link.check_partial_synchrony link with
    | Error _ as e -> e
    | Ok () -> (
        match Link.check_crash_isolation link ~pattern with
        | Error _ as e -> e
        | Ok () ->
            Detectors.Hb_ev_perfect.check eng ~pattern
              ~horizon:(Trace.last_time trace))
  in
  (fibers, check)

(* The link layer alone under chaos: every process periodically
   broadcasts and polls forever. Checked: the link honoured its
   partial-synchrony contract on every message, no crashed process
   observed one, and — bounded liveness made safety-checkable — every
   message ready well before the end and addressed to a correct process
   was delivered. *)
let link_chaos cfg ~procs () =
  let link = Link.create ~name:"chaos" ~n_plus_1:procs ~config:cfg () in
  let tick = Array.init procs (fun _ -> Timer.Periodic.create ~period:3) in
  let body pid () =
    let rec loop () =
      let now, _msgs = Link.poll_now link ~me:pid in
      if Timer.Periodic.due tick.(Pid.to_int pid) ~now then
        Link.broadcast link now;
      loop ()
    in
    loop ()
  in
  let check trace =
    let pattern = pattern_of_trace ~procs trace in
    let horizon = Trace.last_time trace in
    match Link.check_partial_synchrony link with
    | Error _ as e -> e
    | Ok () -> (
        match Link.check_crash_isolation link ~pattern with
        | Error _ as e -> e
        | Ok () -> (
            (* a correct process polls at least once per round-robin
               rotation of the tail; this slack covers many rotations *)
            let slack = 6 * procs * (procs + 1) in
            let stale =
              Link.undelivered_ready link ~by:(horizon - slack)
              |> List.filter (fun r ->
                     Failure_pattern.is_correct pattern r.Link.sr_to)
            in
            match stale with
            | [] -> Ok ()
            | r :: _ ->
                Error
                  (Printf.sprintf
                     "liveness: %s->%s sent@%d ready@%d still undelivered at %d"
                     (Pid.to_string r.Link.sr_from)
                     (Pid.to_string r.Link.sr_to)
                     r.Link.sr_sent_at r.Link.sr_ready_at horizon)))
  in
  ((fun pid -> [ body pid ]), check)

let make obj ~procs =
  require obj procs;
  match obj with
  | Register -> register ~procs
  | Snapshot -> snapshot ~procs
  | Abd -> abd ~procs
  | Commit_adopt -> commit_adopt ~procs
  | Hb_detector cfg -> hb_detector cfg ~procs
  | Link_chaos cfg -> link_chaos cfg ~procs

let patterns obj ~procs =
  let none = Failure_pattern.no_failures ~n_plus_1:procs in
  match obj with
  | Abd when procs >= 3 ->
      (* crash the replica-seeding process at a sweep of times: early
         crashes silence the stranded value before anyone reads it, late
         crashes let exactly one read see it *)
      none
      :: List.map
           (fun t -> Failure_pattern.make ~n_plus_1:procs ~crashes:[ (1, t) ])
           (List.init 24 (fun i -> i + 1))
  | Hb_detector cfg | Link_chaos cfg ->
      (* one pre-GST crash and one post-GST crash: the first exercises
         loss/delay interacting with a silent process, the second makes
         the detector re-stabilize after GST *)
      [
        none;
        Failure_pattern.make ~n_plus_1:procs ~crashes:[ (1, 3) ];
        Failure_pattern.make ~n_plus_1:procs ~crashes:[ (1, cfg.Link.gst + 5) ];
      ]
  | Register | Snapshot | Abd | Commit_adopt -> [ none ]
