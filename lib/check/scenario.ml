open Kernel

type obj = Register | Snapshot | Abd | Commit_adopt

let all = [ Register; Snapshot; Abd; Commit_adopt ]

let to_string = function
  | Register -> "register"
  | Snapshot -> "snapshot"
  | Abd -> "abd"
  | Commit_adopt -> "commit-adopt"

let of_string s =
  match List.find_opt (fun o -> String.equal (to_string o) s) all with
  | Some o -> Ok o
  | None ->
      Error
        (Printf.sprintf "unknown object %S (expected one of: %s)" s
           (String.concat ", " (List.map to_string all)))

let min_procs = function Register -> 1 | Snapshot -> 2 | Abd -> 2 | Commit_adopt -> 2

let require obj procs =
  if procs < min_procs obj then
    invalid_arg
      (Printf.sprintf "Scenario.make %s: needs at least %d processes"
         (to_string obj) (min_procs obj))

(* Every process increments through one shared register: two writes and
   two reads each, all single-step and recorded with their step time. *)
let register ~procs () =
  let reg = Memory.Register.create ~name:"r" 0 in
  let l = Histories.log () in
  let body pid () =
    let base = 10 * (Pid.to_int pid + 1) in
    Histories.logged_write l reg ~me:pid (base + 1);
    ignore (Histories.logged_read l reg ~me:pid);
    Histories.logged_write l reg ~me:pid (base + 2);
    ignore (Histories.logged_read l reg ~me:pid)
  in
  ignore procs;
  let check (_ : Trace.t) =
    Lin.check (Histories.register_spec ~init:0) (Histories.events l)
  in
  ((fun pid -> [ body pid ]), check)

(* procs-1 updaters (each writing its own slot once) and one scanner
   scanning twice. *)
let snapshot ~procs () =
  let snap = Memory.Snapshot.create ~name:"s" ~size:procs ~init:(fun _ -> 0) in
  let l = Histories.log () in
  let scanner = procs - 1 in
  let body pid () =
    if Pid.to_int pid = scanner then begin
      ignore (Histories.logged_scan l snap ~me:pid);
      ignore (Histories.logged_scan l snap ~me:pid)
    end
    else Histories.logged_update l snap ~me:pid (10 * (Pid.to_int pid + 1))
  in
  let check (_ : Trace.t) =
    Lin.check
      (Histories.snapshot_spec ~size:procs ~init:(fun _ -> 0))
      (Histories.events l)
  in
  ((fun pid -> [ body pid ]), check)

(* An ABD register with a write stranded mid-update-phase before the run
   begins: tag (1, p2) with value 1 reached only p2's replica, and the
   corresponding attempt is on record. p1 reads twice; every process
   runs a server. Whether the stranded value stays reachable is up to
   the failure pattern (crashing p2 silences the only fresh replica). *)
let abd ~procs () =
  let t = Memory.Abd.create ~name:"abd" ~n_plus_1:procs ~init:0 in
  let holder = 1 in
  let tag = { Memory.Abd.seq = 1; writer = holder } in
  Memory.Abd.unsafe_seed_replica t ~owner:holder ~key:"x" ~tag 1;
  Memory.Abd.unsafe_attempt t ~key:"x" ~tag 1 ~invoked:0;
  let reader () =
    ignore (Memory.Abd.read t ~me:0 ~key:"x");
    ignore (Memory.Abd.read t ~me:0 ~key:"x")
  in
  let procs_fn pid =
    let server = Memory.Abd.server t ~me:pid in
    if Pid.to_int pid = 0 then [ reader; server ] else [ server ]
  in
  let check (_ : Trace.t) =
    Lin.check (Histories.abd_spec ~init:0) (Histories.abd_history t)
  in
  (procs_fn, check)

(* Distinct inputs through one commit–adopt instance; results collected
   harness-side (order-insensitive, as the reduction requires). *)
let commit_adopt ~procs () =
  let inst =
    Converge.Commit_adopt.create ~name:"ca" ~size:procs ~compare:Int.compare
  in
  let picks = Array.make procs None in
  let input p = 100 + p in
  let body pid () =
    let p = Pid.to_int pid in
    picks.(p) <- Some (Converge.Commit_adopt.run inst ~me:p (input p))
  in
  let check (_ : Trace.t) =
    let finished =
      Array.to_list picks |> List.filter_map Fun.id
    in
    let inputs = List.init procs input in
    match
      List.find_opt (fun (v, _) -> not (List.mem v inputs)) finished
    with
    | Some (v, _) ->
        Error (Printf.sprintf "C-Validity: %d was picked but never proposed" v)
    | None -> (
        match List.find_opt (fun (_, committed) -> committed) finished with
        | None -> Ok ()
        | Some (v, _) ->
            if List.for_all (fun (v', _) -> v' = v) finished then Ok ()
            else
              Error
                (Printf.sprintf
                   "commit-adopt agreement: %d committed but picks were %s" v
                   (String.concat ","
                      (List.map (fun (v', _) -> string_of_int v') finished))))
  in
  ((fun pid -> [ body pid ]), check)

let make obj ~procs =
  require obj procs;
  match obj with
  | Register -> register ~procs
  | Snapshot -> snapshot ~procs
  | Abd -> abd ~procs
  | Commit_adopt -> commit_adopt ~procs

let patterns obj ~procs =
  let none = Failure_pattern.no_failures ~n_plus_1:procs in
  match obj with
  | Abd when procs >= 3 ->
      (* crash the replica-seeding process at a sweep of times: early
         crashes silence the stranded value before anyone reads it, late
         crashes let exactly one read see it *)
      none
      :: List.map
           (fun t -> Failure_pattern.make ~n_plus_1:procs ~crashes:[ (1, t) ])
           (List.init 24 (fun i -> i + 1))
  | Register | Snapshot | Abd | Commit_adopt -> [ none ]
