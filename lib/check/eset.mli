(** Enabled sets as sorted (pid, kind) arrays.

    The DPOR stack stores, per node, the set of processes enabled before
    the node's step together with each one's pending step label. The
    association-list representation allocated a cons and a tuple per
    entry per refresh and paid [List.assoc_opt] walks on the hot path;
    this module stores the same mapping as a pair of parallel arrays in
    pid order with indexed access. Lookup semantics are exactly those of
    the association list built by {!to_list}: [find t p =
    List.assoc_opt p (to_list t)] and [mem t p = List.mem_assoc p
    (to_list t)] (the QCheck equivalence test in [test_dpor_golden]
    exercises this). *)

open Kernel

type t

val create : ?capacity:int -> unit -> t
val size : t -> int

val clear : t -> unit
(** Empty the set, retaining storage (per-step refresh reuse). *)

val push : t -> Pid.t -> Sim.kind -> unit
(** Append an entry; pids must arrive in strictly increasing order (the
    order {!Kernel.Scheduler.iter_pending} produces). Raises
    [Invalid_argument] otherwise. *)

val pid_at : t -> int -> Pid.t
val kind_at : t -> int -> Sim.kind

val find : t -> Pid.t -> Sim.kind option
(** [List.assoc_opt] over the entries. *)

val mem : t -> Pid.t -> bool
(** [List.mem_assoc] over the entries. *)

val iter : t -> (Pid.t -> Sim.kind -> unit) -> unit
(** In pid order. *)

val copy : t -> t
(** Size-fitted private copy (stack nodes own their enabled set). *)

val of_list : (Pid.t * Sim.kind) list -> t
(** From entries in strictly increasing pid order. *)

val to_list : t -> (Pid.t * Sim.kind) list
