open Kernel

(* The pre-source-set explorer: persistent-set backtracking (whole
   E-sets inserted per race) plus sleep sets, exactly as [Dpor] worked
   before the optimal-DPOR rewrite. Kept as the reference oracle for
   the differential battery in test_dpor_quickcheck.ml and for the
   bench part-3 sleep-vs-optimal comparison legs; it reports its own
   outcome record and touches no metrics, so running it never perturbs
   the gated [check.dpor.*] counters. Frontier capture/resume was not
   carried over — slicing belongs to the production explorer. *)

type stats = {
  executions : int;
  sleep_blocked : int;
  races : int;
  backtrack_points : int;
}

type 'a outcome = {
  stats : stats;
  counterexample : (Pid.t list * 'a) option;
}

let unbounded = max_int

(* Label-based independence of two prospective steps; must stay in
   lockstep with [Dpor.independent] or the differential battery loses
   its meaning. *)
let independent p1 k1 p2 k2 =
  (not (Pid.equal p1 p2))
  &&
  match (k1, k2) with
  | Sim.Query _, _ | _, Sim.Query _ -> false
  | Sim.Read _, Sim.Read _ -> true
  | ( (Sim.Read { obj = a } | Sim.Write { obj = a } | Sim.Send { obj = a }
      | Sim.Recv { obj = a } ),
      ( Sim.Read { obj = b } | Sim.Write { obj = b } | Sim.Send { obj = b }
      | Sim.Recv { obj = b } ) ) ->
      not (String.equal a b)
  | (Sim.Output _ | Sim.Input _ | Sim.Nop), _
  | _, (Sim.Output _ | Sim.Input _ | Sim.Nop) ->
      true

type node = {
  mutable chosen : Pid.t;
  mutable kind : Sim.kind;
  enabled : Eset.t;
  mutable backtrack : Pid.Set.t;
  mutable explored : Pid.Set.t;
  sleep : Pid.Set.t;
}

let fiber_names_key : (int, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let fiber_name pid j =
  let names = Domain.DLS.get fiber_names_key in
  let key = (Pid.to_int pid lsl 16) lor j in
  match Hashtbl.find_opt names key with
  | Some s -> s
  | None ->
      let s = Format.asprintf "%a/t%d" Pid.pp pid j in
      Hashtbl.replace names key s;
      s

let spawn_fibers ~pattern ~procs =
  Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 pattern)
  |> List.concat_map (fun pid ->
         List.mapi
           (fun j body -> Fiber.create ~pid ~name:(fiber_name pid j) body)
           (procs pid))

let refresh_enabled es sched =
  Eset.clear es;
  Scheduler.iter_pending sched (fun p k -> Eset.push es p k)

let run_once ~pattern ~horizon ~depth ~stack ~len ~make ~pend =
  let procs, checkf = make () in
  let sched_ref = ref None in
  let pos = ref 0 in
  let grown = ref len in
  let blocked = ref false in
  let rr = Policy.round_robin () in
  let policy ~now ~enabled =
    let i = !pos in
    incr pos;
    if i >= depth || !blocked then rr ~now ~enabled
    else
      let sched =
        match !sched_ref with Some s -> s | None -> assert false
      in
      if i < len then begin
        let nd = match stack.(i) with Some nd -> nd | None -> assert false in
        refresh_enabled nd.enabled sched;
        (match Eset.find nd.enabled nd.chosen with
        | Some k -> nd.kind <- k
        | None ->
            invalid_arg
              "Dpor_sleep.explore: prescribed process not enabled on replay \
               — make () built a non-deterministic world");
        Some nd.chosen
      end
      else begin
        refresh_enabled pend sched;
        let sleep =
          if i = 0 then Pid.Set.empty
          else
            let parent =
              match stack.(i - 1) with Some nd -> nd | None -> assert false
            in
            let pp = parent.chosen and pk = parent.kind in
            Pid.Set.filter
              (fun q ->
                match Eset.find pend q with
                | Some kq -> independent q kq pp pk
                | None -> false)
              (Pid.Set.union parent.sleep parent.explored)
        in
        let rec first_awake idx =
          if idx >= Eset.size pend then None
          else
            let q = Eset.pid_at pend idx in
            if Pid.Set.mem q sleep then first_awake (idx + 1)
            else Some (q, Eset.kind_at pend idx)
        in
        match first_awake 0 with
        | None ->
            blocked := true;
            rr ~now ~enabled
        | Some (q, kq) ->
            stack.(i) <-
              Some
                {
                  chosen = q;
                  kind = kq;
                  enabled = Eset.copy pend;
                  backtrack = Pid.Set.empty;
                  explored = Pid.Set.empty;
                  sleep;
                };
            grown := i + 1;
            Some q
      end
  in
  let fibers = spawn_fibers ~pattern ~procs in
  let sched = Scheduler.create ~pattern ~policy ~fibers in
  sched_ref := Some sched;
  let (_ : Scheduler.outcome) = Scheduler.run sched ~max_steps:horizon in
  let trace = Scheduler.trace sched in
  (checkf trace, trace, Scheduler.trace_builder sched, !grown, !blocked)

(* ------------------------------------------------------ race analysis --- *)

type obj_state = {
  mutable lw_vc : int array;
  mutable lw_pos : int;
  mutable r_vc : int array;
  r_pos : int array;
}

type scratch = {
  n : int;
  mutable s_pids : int array;
  mutable s_kinds : Sim.kind array;
  mutable vc : int array array;
  mutable own : int array;
  proc_clock : int array array;
  positions : Exec.Dynarray.t array;
  objs : (string, obj_state) Hashtbl.t;
  mutable pool : int array list;
  cand : Exec.Dynarray.t;
}

let make_scratch ~n =
  {
    n;
    s_pids = Array.make 256 0;
    s_kinds = Array.make 256 Sim.Nop;
    vc = [||];
    own = [||];
    proc_clock = Array.init n (fun _ -> Array.make n 0);
    positions = Array.init n (fun _ -> Exec.Dynarray.create ~capacity:64 ());
    objs = Hashtbl.create 16;
    pool = [];
    cand = Exec.Dynarray.create ~capacity:16 ();
  }

let take_buf s =
  match s.pool with
  | b :: rest ->
      s.pool <- rest;
      b
  | [] -> Array.make s.n 0

let release_buf s b = if Array.length b > 0 then s.pool <- b :: s.pool

let obj_state s o =
  match Hashtbl.find_opt s.objs o with
  | Some st -> st
  | None ->
      let st =
        { lw_vc = [||]; lw_pos = -1; r_vc = [||]; r_pos = Array.make s.n (-1) }
      in
      Hashtbl.replace s.objs o st;
      st

let q_obj = "\x00query"

(* Flanagan–Godefroid persistent-set insertion: for each immediate race
   (i, j) add the whole E-set at node i (everyone enabled there with a
   step in (i, j) happening-before j, or pid_j itself), falling back to
   every enabled process when E is empty. This is the insertion rule
   the source-set rewrite in [Dpor] replaced. *)
let analyze ~scratch:s ~stack ~grown ~builder =
  let n = s.n in
  let total = Trace.builder_length builder in
  if Array.length s.s_pids < total then begin
    let cap = max total (2 * Array.length s.s_pids) in
    s.s_pids <- Array.make cap 0;
    s.s_kinds <- Array.make cap Sim.Nop
  end;
  let m = ref 0 in
  Trace.iter_builder builder (function
    | Trace.Step { pid; kind; _ } ->
        s.s_pids.(!m) <- Pid.to_int pid;
        s.s_kinds.(!m) <- kind;
        incr m
    | Trace.Crash _ -> ());
  let m = !m in
  if m = 0 then (0, 0)
  else begin
    (if Array.length s.vc < m then begin
       let old = Array.length s.vc in
       let cap = max m (2 * old) in
       let vc = Array.make cap [||] in
       Array.blit s.vc 0 vc 0 old;
       for j = old to cap - 1 do
         vc.(j) <- Array.make n 0
       done;
       s.vc <- vc;
       s.own <- Array.make cap 0
     end);
    for j = 0 to m - 1 do
      Array.fill s.vc.(j) 0 n 0
    done;
    for q = 0 to n - 1 do
      Array.fill s.proc_clock.(q) 0 n 0;
      Exec.Dynarray.clear s.positions.(q)
    done;
    Hashtbl.iter
      (fun _ st ->
        release_buf s st.lw_vc;
        st.lw_vc <- [||];
        st.lw_pos <- -1;
        release_buf s st.r_vc;
        st.r_vc <- [||];
        Array.fill st.r_pos 0 n (-1))
      s.objs;
    let q_st = obj_state s q_obj in
    let join dst src =
      Array.iteri (fun q v -> if v > dst.(q) then dst.(q) <- v) src
    in
    let hb i j = s.vc.(j).(s.s_pids.(i)) >= s.own.(i) in
    let races = ref 0 and added = ref 0 in
    for j = 0 to m - 1 do
      let p = s.s_pids.(j) in
      let kj = s.s_kinds.(j) in
      let pj : Pid.t = p in
      let real_st, real_w =
        match kj with
        | Sim.Read { obj } -> (Some (obj_state s obj), false)
        | Sim.Write { obj } | Sim.Send { obj } | Sim.Recv { obj } ->
            (Some (obj_state s obj), true)
        | Sim.Query _ | Sim.Output _ | Sim.Input _ | Sim.Nop -> (None, false)
      in
      let q_w = match kj with Sim.Query _ -> true | _ -> false in
      Exec.Dynarray.clear s.cand;
      let push_cand i = if s.s_pids.(i) <> p then Exec.Dynarray.push s.cand i in
      let candidates_of st w =
        if st.lw_pos >= 0 then push_cand st.lw_pos;
        if w then
          for q = 0 to n - 1 do
            if q <> p && st.r_pos.(q) >= 0 then push_cand st.r_pos.(q)
          done
      in
      (match real_st with Some st -> candidates_of st real_w | None -> ());
      candidates_of q_st q_w;
      Exec.Dynarray.sort_uniq s.cand;
      let clock = s.vc.(j) in
      join clock s.proc_clock.(p);
      s.own.(j) <- clock.(p) + 1;
      clock.(p) <- s.own.(j);
      let join_tables st w =
        if Array.length st.lw_vc > 0 then join clock st.lw_vc;
        if w && Array.length st.r_vc > 0 then join clock st.r_vc
      in
      (match real_st with Some st -> join_tables st real_w | None -> ());
      join_tables q_st q_w;
      for ci = 0 to Exec.Dynarray.length s.cand - 1 do
        let i = Exec.Dynarray.get s.cand ci in
        let rec mediated k = k < j && ((hb i k && hb k j) || mediated (k + 1)) in
        if not (mediated (i + 1)) then begin
          incr races;
          if i >= grown then begin
            if grown > 0 then begin
              let nd =
                match stack.(grown - 1) with
                | Some nd -> nd
                | None -> assert false
              in
              if
                Eset.mem nd.enabled pj && not (Pid.Set.mem pj nd.backtrack)
              then begin
                nd.backtrack <- Pid.Set.add pj nd.backtrack;
                incr added
              end
            end
          end
          else begin
            let nd =
              match stack.(i) with Some nd -> nd | None -> assert false
            in
            let in_e q =
              Pid.equal q pj
              ||
              let qi = Pid.to_int q in
              clock.(qi) >= 1
              &&
              let c = clock.(qi) - 1 in
              c < Exec.Dynarray.length s.positions.(qi)
              &&
              let pos = Exec.Dynarray.get s.positions.(qi) c in
              pos > i && pos < j
            in
            let e_nonempty = ref false in
            Eset.iter nd.enabled (fun q _ ->
                if (not !e_nonempty) && in_e q then e_nonempty := true);
            let e_nonempty = !e_nonempty in
            Eset.iter nd.enabled (fun q _ ->
                if
                  ((not e_nonempty) || in_e q)
                  && not (Pid.Set.mem q nd.backtrack)
                then begin
                  nd.backtrack <- Pid.Set.add q nd.backtrack;
                  incr added
                end)
          end
        end
      done;
      let update st w =
        if w then begin
          (if Array.length st.lw_vc > 0 then Array.blit clock 0 st.lw_vc 0 n
           else begin
             let b = take_buf s in
             Array.blit clock 0 b 0 n;
             st.lw_vc <- b
           end);
          st.lw_pos <- j;
          release_buf s st.r_vc;
          st.r_vc <- [||];
          Array.fill st.r_pos 0 n (-1)
        end
        else begin
          (if Array.length st.r_vc > 0 then join st.r_vc clock
           else begin
             let b = take_buf s in
             Array.blit clock 0 b 0 n;
             st.r_vc <- b
           end);
          st.r_pos.(p) <- j
        end
      in
      (match real_st with Some st -> update st real_w | None -> ());
      update q_st q_w;
      join s.proc_clock.(p) clock;
      Exec.Dynarray.push s.positions.(p) j
    done;
    (!races, !added)
  end

let rec next_candidate ~stack ~len ~floor =
  if !len <= floor then false
  else begin
    let nd = match stack.(!len - 1) with Some nd -> nd | None -> assert false in
    nd.explored <- Pid.Set.add nd.chosen nd.explored;
    let cands =
      Pid.Set.diff nd.backtrack (Pid.Set.union nd.explored nd.sleep)
    in
    match Pid.Set.min_elt_opt cands with
    | Some q ->
        nd.chosen <- q;
        (match Eset.find nd.enabled q with
        | Some k -> nd.kind <- k
        | None -> assert false);
        true
    | None ->
        len := !len - 1;
        stack.(!len) <- None;
        next_candidate ~stack ~len ~floor
  end

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let explore_loop ~pattern ~depth ~horizon ~make ~budget ~should_stop ~stack
    ~len ~floor =
  let executions = ref 0 and blocked_runs = ref 0 in
  let races_total = ref 0 and added_total = ref 0 in
  let scratch = make_scratch ~n:(Failure_pattern.n_plus_1 pattern) in
  let pend = Eset.create () in
  let rec loop () =
    if !executions >= budget || should_stop () then None
    else begin
      let verdict, trace, builder, grown, blocked =
        run_once ~pattern ~horizon ~depth ~stack ~len:!len ~make ~pend
      in
      incr executions;
      if blocked then incr blocked_runs;
      match verdict with
      | Error report -> Some (take depth (Trace.schedule trace), report)
      | Ok () ->
          if not blocked then begin
            let races, added = analyze ~scratch ~stack ~grown ~builder in
            races_total := !races_total + races;
            added_total := !added_total + added
          end;
          len := grown;
          if next_candidate ~stack ~len ~floor then loop () else None
    end
  in
  let counterexample = loop () in
  {
    stats =
      {
        executions = !executions;
        sleep_blocked = !blocked_runs;
        races = !races_total;
        backtrack_points = !added_total;
      };
    counterexample;
  }

let explore ~pattern ~depth ~horizon ?(budget = unbounded)
    ?(should_stop = fun () -> false) ~make () =
  if depth < 0 then invalid_arg "Dpor_sleep.explore: negative depth";
  if budget < 0 then invalid_arg "Dpor_sleep.explore: negative budget";
  let stack = Array.make (max depth 1) None in
  let len = ref 0 in
  explore_loop ~pattern ~depth ~horizon ~make ~budget ~should_stop ~stack ~len
    ~floor:0
