open Kernel

type ('op, 'res) log = { mutable entries : ('op, 'res) Lin.event list }

let log () = { entries = [] }
let record l e = l.entries <- e :: l.entries
let events l = List.rev l.entries

(* Registers *)

type reg_op = Reg_write of int | Reg_read
type reg_res = Reg_unit | Reg_val of int

let register_spec ~init =
  {
    Lin.init;
    apply =
      (fun state -> function
        | Reg_write v -> (v, Reg_unit)
        | Reg_read -> (state, Reg_val state));
    equal_res = ( = );
    show_op =
      (function
      | Reg_write v -> Printf.sprintf "write(%d)" v
      | Reg_read -> "read()");
    show_res =
      (function Reg_unit -> "()" | Reg_val v -> string_of_int v);
    show_state = string_of_int;
  }

let logged_read l reg ~me =
  let time, v = Memory.Register.read_timed reg in
  record l
    (Lin.completed ~op:Reg_read ~result:(Reg_val v) ~invoked:time
       ~responded:time ~pid:(Pid.to_int me));
  v

let logged_write l reg ~me v =
  let time = Memory.Register.write_timed reg v in
  record l
    (Lin.completed ~op:(Reg_write v) ~result:Reg_unit ~invoked:time
       ~responded:time ~pid:(Pid.to_int me))

(* Snapshots *)

type snap_op = Snap_update of { pos : int; value : int } | Snap_scan
type snap_res = Snap_unit | Snap_view of int list

let rec list_set xs pos v =
  match xs with
  | [] -> invalid_arg "Histories.snapshot_spec: position out of range"
  | x :: tl -> if pos = 0 then v :: tl else x :: list_set tl (pos - 1) v

let snapshot_spec ~size ~init =
  {
    Lin.init = List.init size init;
    apply =
      (fun state -> function
        | Snap_update { pos; value } -> (list_set state pos value, Snap_unit)
        | Snap_scan -> (state, Snap_view state));
    equal_res = ( = );
    show_op =
      (function
      | Snap_update { pos; value } -> Printf.sprintf "update(%d, %d)" pos value
      | Snap_scan -> "scan()");
    show_res =
      (function
      | Snap_unit -> "()"
      | Snap_view vs ->
          "[" ^ String.concat ";" (List.map string_of_int vs) ^ "]");
    show_state =
      (fun vs -> String.concat ";" (List.map string_of_int vs));
  }

let logged_scan l snap ~me =
  let view, first, last = Memory.Snapshot.scan_timed snap in
  record l
    (Lin.completed ~op:Snap_scan
       ~result:(Snap_view (Array.to_list view))
       ~invoked:first ~responded:last ~pid:(Pid.to_int me));
  view

let logged_update l snap ~me v =
  let first, last = Memory.Snapshot.update_timed snap ~me:(Pid.to_int me) v in
  record l
    (Lin.completed
       ~op:(Snap_update { pos = Pid.to_int me; value = v })
       ~result:Snap_unit ~invoked:first ~responded:last ~pid:(Pid.to_int me))

(* ABD *)

type abd_op =
  | Abd_write of { key : string; value : int }
  | Abd_read of { key : string }

type abd_res = Abd_unit | Abd_val of int

let abd_spec ~init =
  {
    Lin.init = [];
    apply =
      (fun state -> function
        | Abd_write { key; value } ->
            ((key, value) :: List.remove_assoc key state, Abd_unit)
        | Abd_read { key } ->
            ( state,
              Abd_val
                (match List.assoc_opt key state with
                | Some v -> v
                | None -> init) ));
    equal_res = ( = );
    show_op =
      (function
      | Abd_write { key; value } -> Printf.sprintf "write(%s, %d)" key value
      | Abd_read { key } -> Printf.sprintf "read(%s)" key);
    show_res =
      (function Abd_unit -> "()" | Abd_val v -> string_of_int v);
    show_state =
      (fun state ->
        List.sort compare state
        |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
        |> String.concat ",");
  }

let abd_history t =
  let ops = Memory.Abd.oplog t in
  let completed =
    List.map
      (fun (o : int Memory.Abd.op) ->
        match o.kind with
        | `Read ->
            Lin.completed
              ~op:(Abd_read { key = o.key })
              ~result:(Abd_val o.value) ~invoked:o.invoked
              ~responded:o.responded ~pid:(Pid.to_int o.pid)
        | `Write ->
            Lin.completed
              ~op:(Abd_write { key = o.key; value = o.value })
              ~result:Abd_unit ~invoked:o.invoked ~responded:o.responded
              ~pid:(Pid.to_int o.pid))
      ops
  in
  let completed_write_tags =
    List.filter_map
      (fun (o : int Memory.Abd.op) ->
        if o.kind = `Write then Some (o.key, o.tag) else None)
      ops
  in
  let pendings =
    Memory.Abd.attempts t
    |> List.filter_map (fun (key, (tag : Memory.Abd.tag), value, invoked) ->
           if List.mem (key, tag) completed_write_tags then None
           else
             Some
               (Lin.pending
                  ~op:(Abd_write { key; value })
                  ~invoked
                  ~pid:(Pid.to_int tag.writer)))
  in
  completed @ pendings
