(** Wing–Gong linearizability checking of concurrent histories.

    A history is a set of operations with real-time intervals; it is
    linearizable w.r.t. a sequential specification when the completed
    operations can be totally ordered such that (1) the order extends
    real-time precedence ([a] before [b] whenever [a.responded <
    b.invoked]) and (2) replaying the order through the spec from its
    initial state reproduces every operation's result.

    Pending operations — invoked but never completed, typically because
    the caller crashed mid-operation — may either take effect at any
    point after their invocation (with an unconstrained result) or never
    take effect at all; the checker tries both.

    The algorithm is the Wing–Gong recursive search (minimal-operation
    enumeration) with the Wing–Gong/Lowe memoization on (remaining
    operation set, state) pairs. Worst-case exponential, fine for the
    model-checking scales used here (≲ 20 operations per history). *)

type ('op, 'res, 'state) spec = {
  init : 'state;
  apply : 'state -> 'op -> 'state * 'res;
      (** Sequential semantics: next state and the result the operation
          returns when applied at that point. *)
  equal_res : 'res -> 'res -> bool;
  show_op : 'op -> string;
  show_res : 'res -> string;
  show_state : 'state -> string;
      (** Must injectively render the state — used as the memo key. *)
}

type ('op, 'res) event = {
  op : 'op;
  result : 'res option;  (** [None] = pending (crashed mid-operation) *)
  invoked : int;
  responded : int;
      (** Ignored for pending events (treat as infinity). *)
  pid : int;  (** For reporting only. *)
}

val completed : op:'op -> result:'res -> invoked:int -> responded:int -> pid:int -> ('op, 'res) event
val pending : op:'op -> invoked:int -> pid:int -> ('op, 'res) event

val check :
  ('op, 'res, 'state) spec -> ('op, 'res) event list -> (unit, string) result
(** [Ok ()] iff the history is linearizable. The error string renders
    the full history plus the first stuck point found, for human
    consumption in counterexample reports. Histories with more than 62
    events are rejected ([Invalid_argument]) — the search uses a
    bitmask. *)
