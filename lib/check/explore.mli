(** Bounded exhaustive schedule exploration.

    Historical entry point, kept as a thin wrapper now that the real
    work lives in {!Dpor}: {!exhaustive_prefix} explores every schedule
    class of the first [depth] steps with partial-order reduction,
    {!naive_prefix} is the original unreduced enumerator — retained as
    the reference oracle the DPOR equivalence tests compare against,
    and as the honest baseline for "how many executions did reduction
    save" measurements. Both check the property against every explored
    execution and stop at the first counterexample. *)

open Kernel

type 'a outcome = {
  executions : int;  (** how many schedules were explored *)
  counterexample : (Pid.t list * 'a) option;
      (** the prefix schedule and the check's report for the first
          violating execution, if any *)
}

val unbounded : int
(** [max_int], the [?budget] value meaning "no execution limit" —
    identical to {!Dpor.unbounded}, and identical to what
    {!count_schedules} saturates to. The two agree by construction:
    feeding a saturated schedule count back in as a budget imposes no
    bound, exactly as an un-representable true count should. *)

val sat_add : int -> int -> int
(** {!Dpor.sat_add}: non-negative addition saturating at
    {!unbounded}. *)

val exhaustive_prefix :
  pattern:Failure_pattern.t ->
  depth:int ->
  horizon:int ->
  ?budget:int ->
  ?should_stop:(unit -> bool) ->
  make:
    (unit ->
    (Pid.t -> (unit -> unit) list) * (Trace.t -> (unit, 'a) result)) ->
  unit ->
  'a outcome
(** DPOR-backed ({!Dpor.explore}): explores one representative per
    Mazurkiewicz class of depth-bounded prefixes instead of every
    prefix. [make ()] must build a {e fresh}, deterministic world: the
    fiber factory plus a checker run on the completed trace ([Ok] =
    property held, [Error] = violation report). [budget] (default
    {!unbounded}) caps the number of executions; a truncated run
    reports [executions = budget] and no counterexample. [should_stop]
    (default never) is the cooperative-cancellation probe of
    {!Dpor.explore}, polled at the budget check before each
    execution. *)

val naive_prefix :
  pattern:Failure_pattern.t ->
  depth:int ->
  horizon:int ->
  make:
    (unit ->
    (Pid.t -> (unit -> unit) list) * (Trace.t -> (unit, 'a) result)) ->
  unit ->
  'a outcome
(** The pre-reduction enumerator: every choice of "who steps next" for
    the first [depth] steps, ~[n_plus_1^depth] re-executions. Reference
    oracle only — use {!exhaustive_prefix}. *)

val count_schedules : n_plus_1:int -> depth:int -> int
(** [n_plus_1 ^ depth], the upper bound on executions {!naive_prefix}
    may perform (before quiescence pruning), saturating at [max_int]
    instead of overflowing. *)
