type ('op, 'res, 'state) spec = {
  init : 'state;
  apply : 'state -> 'op -> 'state * 'res;
  equal_res : 'res -> 'res -> bool;
  show_op : 'op -> string;
  show_res : 'res -> string;
  show_state : 'state -> string;
}

type ('op, 'res) event = {
  op : 'op;
  result : 'res option;
  invoked : int;
  responded : int;
  pid : int;
}

let completed ~op ~result ~invoked ~responded ~pid =
  { op; result = Some result; invoked; responded; pid }

let pending ~op ~invoked ~pid =
  { op; result = None; invoked; responded = max_int; pid }

let render_event spec e =
  let res =
    match e.result with
    | Some r -> spec.show_res r
    | None -> "? (pending)"
  in
  let responded =
    match e.result with
    | Some _ -> string_of_int e.responded
    | None -> "inf"
  in
  Printf.sprintf "  p%d %s -> %s [%d,%s]" (e.pid + 1) (spec.show_op e.op) res
    e.invoked responded

let check spec events =
  let evs = Array.of_list events in
  let n = Array.length evs in
  if n > 62 then invalid_arg "Lin.check: more than 62 events";
  let full = (1 lsl n) - 1 in
  let completed_mask = ref 0 in
  Array.iteri
    (fun i e -> if e.result <> None then completed_mask := !completed_mask lor (1 lsl i))
    evs;
  let completed_mask = !completed_mask in
  (* pred_mask.(i): completed events that real-time-precede event i.
     Precomputed once so the minimality test inside the search is a
     single mask intersection instead of an O(n) scan per candidate. *)
  let pred_mask = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    let inv = evs.(i).invoked in
    let m = ref 0 in
    for j = 0 to n - 1 do
      if j <> i then
        match evs.(j).result with
        | Some _ when evs.(j).responded < inv -> m := !m lor (1 lsl j)
        | Some _ | None -> ()
    done;
    pred_mask.(i) <- !m
  done;
  (* Memoizes failed (remaining set, state) pairs — success exits
     immediately, so only dead ends are stored. *)
  let memo = Hashtbl.create 256 in
  let rec search mask state =
    (* pending events may simply never take effect, so the search is
       done once every completed event is linearized *)
    if mask land completed_mask = 0 then true
    else
      let key = (mask, spec.show_state state) in
      if Hashtbl.mem memo key then false
      else begin
        let ok = candidates mask state in
        if not ok then Hashtbl.add memo key ();
        ok
      end
  and candidates mask state =
    (* a remaining event is minimal when no remaining completed event
       real-time-precedes it; only minimal events may linearize next *)
    let minimal i = mask land pred_mask.(i) = 0 in
    let rec try_from i =
      if i >= n then false
      else if (mask lsr i) land 1 = 1 && minimal i then begin
        let e = evs.(i) in
        let mask' = mask land lnot (1 lsl i) in
        let state', res = spec.apply state e.op in
        let this =
          match e.result with
          | Some r -> spec.equal_res res r && search mask' state'
          | None ->
              (* pending: never took effect, or took effect here with an
                 unconstrained result *)
              search mask' state || search mask' state'
        in
        this || try_from (i + 1)
      end
      else try_from (i + 1)
    in
    try_from 0
  in
  if search full spec.init then Ok ()
  else
    let sorted =
      List.sort (fun a b -> Int.compare a.invoked b.invoked) events
    in
    Error
      (String.concat "\n"
         ("history not linearizable:"
         :: List.map (render_event spec) sorted))
