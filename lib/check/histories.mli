(** Operation-level histories of the memory objects, for {!Lin}.

    Two recording styles:

    - {e inline recorders} for registers and snapshots: protocol code
      calls the [logged_*] wrappers, which perform the normal operation
      (via the [*_timed] primitives, so intervals come from the
      operation's actual shared-memory accesses) and append a
      {!Lin.event} {e after} the effect step returns. A fiber is only
      killed while suspended between steps, so an operation is logged
      iff its effect step executed — crashed-mid-operation register and
      snapshot ops vanish from the history exactly when they had no
      effect, and no pending-event guesswork is needed;
    - {e post-hoc extraction} for ABD ({!abd_history}): completed
      operations come from {!Memory.Abd.oplog}; write attempts whose
      tag was broadcast but whose client never completed become
      {!Lin.pending} events, since their effect may or may not have
      reached a majority. *)

open Kernel

(** {1 Event logs} *)

type ('op, 'res) log

val log : unit -> ('op, 'res) log
val events : ('op, 'res) log -> ('op, 'res) Lin.event list
(** In recording order. *)

(** {1 Atomic registers (int-valued)} *)

type reg_op = Reg_write of int | Reg_read
type reg_res = Reg_unit | Reg_val of int

val register_spec : init:int -> (reg_op, reg_res, int) Lin.spec

val logged_read : (reg_op, reg_res) log -> int Memory.Register.t -> me:Pid.t -> int
(** One step, like {!Memory.Register.read}, recording the event. *)

val logged_write :
  (reg_op, reg_res) log -> int Memory.Register.t -> me:Pid.t -> int -> unit

(** {1 Snapshot objects (int-valued)} *)

type snap_op = Snap_update of { pos : int; value : int } | Snap_scan
type snap_res = Snap_unit | Snap_view of int list

val snapshot_spec :
  size:int -> init:(int -> int) -> (snap_op, snap_res, int list) Lin.spec

val logged_scan : (snap_op, snap_res) log -> int Memory.Snapshot.t -> me:Pid.t -> int array

val logged_update :
  (snap_op, snap_res) log -> int Memory.Snapshot.t -> me:Pid.t -> int -> unit

(** {1 ABD emulated registers (int-valued)} *)

type abd_op = Abd_write of { key : string; value : int } | Abd_read of { key : string }
type abd_res = Abd_unit | Abd_val of int

val abd_spec : init:int -> (abd_op, abd_res, (string * int) list) Lin.spec
(** State: key → value association, absent keys reading as [init]. *)

val abd_history : int Memory.Abd.t -> (abd_op, abd_res) Lin.event list
(** Completed client operations plus one pending write per broadcast
    attempt that never completed. *)
