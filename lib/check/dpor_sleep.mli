(** The pre-source-set DPOR explorer, kept verbatim as a reference
    oracle: Flanagan–Godefroid persistent-set backtracking (whole
    E-sets inserted per race) with sleep sets, exactly the search
    [Dpor] performed before the optimal-DPOR rewrite.

    It exists for two consumers only:

    - the QCheck differential battery, which asserts the optimized
      explorer finds the same violations with
      [executions_opt <= executions_sleep];
    - the bench part-3 comparison legs recording sleep-set vs optimal
      execution counts per config.

    It updates no metrics and has no frontier/slicing support; use
    [Dpor] for everything else. *)

open Kernel

type stats = {
  executions : int;  (** complete runs performed *)
  sleep_blocked : int;  (** runs abandoned with every enabled pid asleep *)
  races : int;  (** immediate races observed across runs *)
  backtrack_points : int;  (** alternatives inserted by race analysis *)
}

type 'a outcome = {
  stats : stats;
  counterexample : (Pid.t list * 'a) option;
      (** window schedule + checker report of the first violation *)
}

val unbounded : int

val independent : Pid.t -> Sim.kind -> Pid.t -> Sim.kind -> bool
(** Same label-based independence relation as [Dpor.independent]; the
    differential battery is only meaningful while the two agree. *)

val explore :
  pattern:Failure_pattern.t ->
  depth:int ->
  horizon:int ->
  ?budget:int ->
  ?should_stop:(unit -> bool) ->
  make:(unit -> (Pid.t -> (unit -> unit) list) * (Trace.t -> (unit, 'a) result)) ->
  unit ->
  'a outcome
(** Exhaustive sleep-set exploration of one world, semantics identical
    to the pre-rewrite [Dpor.explore] (same budget/should_stop
    truncation, same first-violation short-circuit). *)
