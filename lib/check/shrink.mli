(** Counterexample minimization by delta debugging.

    A counterexample from {!Dpor.explore} is a (failure pattern,
    schedule prefix) pair. [minimize] alternates between dropping
    crashes that are not needed for the failure and ddmin-shrinking the
    schedule prefix (Zeller–Hildebrandt) until neither changes —
    shrinking one side can unlock the other — replaying each candidate
    through the caller's [replay] to confirm it still fails. Because replays re-execute a
    fresh deterministic world under {!Kernel.Policy.script}, the result
    is a confirmed, directly replayable minimal counterexample — the
    final report returned comes from re-running the shrunk pair, not
    from the original.

    Prefix shrinking means {e deleting} schedule entries: the remaining
    choices are applied in order and the run is completed round-robin,
    so a shrunk prefix is also a valid script. 1-minimality holds with
    respect to deletion: removing any single remaining entry (or any
    single remaining crash) makes the failure vanish. *)

open Kernel

type 'a replay = pattern:Failure_pattern.t -> prefix:Pid.t list -> 'a option
(** [Some report] when the run still violates the property. Must be
    deterministic. *)

val ddmin : test:(Pid.t list -> bool) -> Pid.t list -> Pid.t list
(** Classic ddmin on schedule entries; assumes [test input = true].
    Exposed for tests. *)

val minimize :
  replay:'a replay ->
  pattern:Failure_pattern.t ->
  prefix:Pid.t list ->
  (Failure_pattern.t * Pid.t list * 'a) option
(** [None] when [replay] does not reproduce the failure on the
    un-shrunk input (a non-deterministic world — a bug worth surfacing
    rather than masking). Updates the [check.shrink.replays] counter. *)
