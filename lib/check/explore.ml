open Kernel

type 'a outcome = {
  executions : int;
  counterexample : (Pid.t list * 'a) option;
}

let unbounded = Dpor.unbounded
let sat_add = Dpor.sat_add

let exhaustive_prefix ~pattern ~depth ~horizon ?(budget = unbounded)
    ?(should_stop = fun () -> false) ~make () =
  let result =
    Dpor.explore ~pattern ~depth ~horizon ~budget ~should_stop ~make ()
  in
  {
    executions = result.Dpor.stats.Dpor.executions;
    counterexample = result.Dpor.counterexample;
  }

(* The original unreduced enumerator, verbatim. Execute one fresh world
   under [prefix ++ round-robin], returning the checker's result and
   the enabled set seen at each prefix position (to drive enumeration
   of the next sibling schedules). *)
let run_one ~pattern ~prefix ~depth ~horizon ~make =
  let procs, check = make () in
  let enabled_at = Array.make depth [] in
  let position = ref 0 in
  let rr = Policy.round_robin () in
  let remaining = ref prefix in
  let policy ~now ~enabled =
    let i = !position in
    if i < depth then begin
      enabled_at.(i) <- enabled;
      incr position;
      match !remaining with
      | choice :: rest ->
          remaining := rest;
          if List.mem choice enabled then Some choice
          else
            (* the prescribed process quiesced: fall back in-order *)
            rr ~now ~enabled
      | [] -> rr ~now ~enabled
    end
    else rr ~now ~enabled
  in
  let result = Run.exec ~pattern ~policy ~horizon ~procs () in
  (check result.trace, Array.to_list enabled_at, result)

let naive_prefix ~pattern ~depth ~horizon ~make () =
  let executions = ref 0 in
  (* Depth-first over prefix schedules. [prefix] is the fixed choice list
     so far (grown left to right); enumeration at position i uses the
     enabled sets observed when running the current prefix. *)
  let rec explore prefix =
    incr executions;
    let verdict, enabled_trace, run_result =
      run_one ~pattern ~prefix ~depth ~horizon ~make
    in
    ignore run_result;
    match verdict with
    | Error report -> Some (prefix, report)
    | Ok _ ->
        (* extend: enumerate alternatives at the first position beyond the
           current prefix *)
        let i = List.length prefix in
        if i >= depth then None
        else
          let enabled =
            match List.nth_opt enabled_trace i with
            | Some e -> e
            | None -> []
          in
          (* run with the current prefix used round-robin's choice at
             position i; recursing on every enabled choice covers it *)
          List.fold_left
            (fun acc choice ->
              match acc with
              | Some _ -> acc
              | None -> explore (prefix @ [ choice ]))
            None enabled
  in
  (* The root call explores the empty prefix; children enumerate position
     0 choices, grandchildren position 1, etc. Note each [explore] run
     re-executes the whole world, so the total executions are bounded by
     the number of prefix nodes, ~ n^depth. *)
  let counterexample = explore [] in
  { executions = !executions; counterexample }

let count_schedules ~n_plus_1 ~depth =
  if n_plus_1 < 0 || depth < 0 then
    invalid_arg "Explore.count_schedules: negative argument";
  if n_plus_1 = 0 then if depth = 0 then 1 else 0
  else
    let rec power acc k =
      if k = 0 then acc
      else if acc > max_int / n_plus_1 then max_int
      else power (acc * n_plus_1) (k - 1)
    in
    power 1 depth
