(** Dynamic partial-order reduction over schedule prefixes.

    Like {!Explore.naive_prefix} this enumerates the choices of "who
    steps next" for the first [depth] steps of a run, completing every
    prefix deterministically with round-robin up to a horizon and
    checking the property on each completed execution. Unlike the naive
    enumerator it prunes: two prefixes that differ only in the order of
    {e independent} steps lead to equivalent executions (same
    Mazurkiewicz trace), so only one representative per equivalence
    class needs to run. The algorithm is stateless DPOR in the
    source-set style (Abdulla–Aronis–Jonsson–Sagonas, POPL 2014), with
    three reduction mechanisms layered on the Flanagan–Godefroid
    vector-clock race analysis:

    - {b source sets}: for each racing pair the analysis computes the
      reversing sequence [v = notdep(i) . j]; when a weak initial of
      [v] is already scheduled at the race's node (backtrack, explored,
      or sleep) nothing is inserted, otherwise exactly one process —
      the head of [v] — is, instead of the whole E-set the
      persistent-set rule would add;
    - {b wakeup sequences}: the inserted process carries [v] as a
      prescription; when it is later picked, the next run schedules
      [v]'s steps verbatim with sleep sets bypassed, so the reversal
      replays its recorded witness instead of rediscovering it (the
      single-branch form of the wakeup trees of optimal DPOR);
    - {b schedule fingerprinting}: every executed window prefix is
      keyed up to Mazurkiewicz equivalence (Foata levels + step codes,
      combined commutatively into an interned hash); a retargeted
      candidate prefix whose key was already executed is skipped
      outright and counted in [stats.deduped]. Only prescription-free
      candidates are eligible, and only {e executed} prefixes enter the
      table, so every skip points at work actually performed.

    Sleep sets are retained as the redundancy filter: a process
    sleeping at a node is never picked there, and a free extension
    whose enabled set is all-sleeping marks the run [sleep_blocked]. A
    race confined entirely to the round-robin tail cannot be reversed
    directly; following bounded partial-order reduction
    (Coons–Musuvathi–McKinley), the later process is conservatively
    offered at the deepest window node, which lets subsequent analyses
    pull the race into the window step by step. The offer is bounded:
    only tail races whose earlier step falls within one scheduler
    rotation of the window boundary trigger it — deeper races are
    reached incrementally as accepted offers rotate the tail. The
    bound, like the offer itself, is a heuristic of the bounded-window
    regime, not a completeness theorem: a violation reachable only by
    reordering steps deep in the deterministic tail can escape both
    this explorer and the retired persistent-set one (the differential
    battery in [test_dpor_diff] carries a generated witness of that
    shared blind spot, and pins the regimes where completeness {e is}
    a theorem — full-window, crash-free exploration — to exact
    three-way verdict agreement with the naive enumerator).

    Independence is computed from step labels ({!Kernel.Sim.kind}):

    - steps of the same process never commute (program order);
    - reads commute with reads; a read and a write, or two writes,
      commute iff they name different objects;
    - [Nop]/[Output]/[Input] steps touch no shared object and commute
      with everything cross-process;
    - [Query] steps commute with nothing: a detector sample is a
      function of the global time, so reordering {e any} pair of steps
      across a query can change the sampled value.

    Soundness caveats, both deliberate conservatisms of the label-based
    relation: (1) an atomic closure can read the global clock
    ([ctx.now]), and swapping two independent steps shifts both their
    times by one — properties sensitive to the exact {e times} of
    independent steps (rather than to the order of conflicting
    accesses) are outside the reduction's guarantee. The memory-layer
    history recorders timestamp operations by their shared-object
    access steps precisely so that derived precedence is stable under
    such swaps; ABD op boundaries (client-local marker and probe steps)
    retain a residual sensitivity, which is why every executed run —
    including sleep-set-blocked ones — is still checked against the
    property as a safety net. (2) cross-process [Output] ordering is
    considered irrelevant, so checked properties must not depend on the
    relative trace order of outputs by different processes (values and
    per-process order are fine). *)

open Kernel

type stats = {
  executions : int;  (** completed runs, including sleep-blocked ones *)
  sleep_blocked : int;
      (** runs whose prefix extension hit an all-sleeping enabled set:
          provably redundant, still executed to completion (and
          checked) but not race-analyzed *)
  deduped : int;
      (** candidate prefixes skipped without running because an
          executed prefix with the same Mazurkiewicz-trace fingerprint
          already covers their class *)
  races : int;  (** racing step pairs found across all prefixes *)
  backtrack_points : int;  (** alternatives inserted by race analysis *)
}

type 'a outcome = {
  stats : stats;
  counterexample : (Pid.t list * 'a) option;
      (** the first [depth] scheduled pids of the first violating
          execution, and the checker's report. Replaying the prefix via
          {!Policy.script} (falling back to round-robin) over a fresh
          identical world reproduces the violation. *)
}

val unbounded : int
(** [max_int] — the [?budget] value meaning "no execution limit". This
    is also what {!Explore.count_schedules} saturates to, so a
    saturated schedule count used as a budget is, correctly, no bound
    at all. *)

val sat_add : int -> int -> int
(** Addition saturating at {!unbounded}, for folding per-branch
    {!stats} without wrapping past [max_int]. Arguments must be
    non-negative. *)

val independent : Pid.t -> Sim.kind -> Pid.t -> Sim.kind -> bool
(** The label-based independence relation the race analysis and the
    fingerprints are both built on: same-process steps and
    detector queries commute with nothing, reads commute with reads,
    and every shared-object conflict is keyed by object name. Exposed
    so the differential battery can assert it stays in lockstep with
    {!Dpor_sleep.independent}. *)

val merge_stats : stats -> stats -> stats
(** Field-wise saturating sum, for aggregating sharded branch
    explorations into one report. *)

(** {1 Frontiers: pause and resume}

    A {!frontier} is the serialized search state of a truncated
    exploration: the prescribed prefix the next execution would have
    run (per node: chosen pid, backtrack, explored, and sleep sets,
    plus the recorded wakeup sequences of its pending backtrack pids),
    the pending run's wakeup prescription, the fingerprint keys of
    every window prefix executed so far, and the cumulative {!stats}
    of every execution performed so far. Node [enabled] sets and
    pending-step labels are deliberately {e not} serialized — they are
    a function of the deterministic world and are refreshed in place
    by the prescribed replay of the next run — so a frontier is
    stable JSON that can cross process boundaries (the fabric
    checkpoints it between budget slices).

    The invariant the golden tests pin down: for any exploration
    truncated at any prefix, {!resume} on its frontier continues the
    search {e exactly} — the final outcome (cumulative stats and
    verdict) is identical to the uninterrupted run's. *)

type frontier

val frontier_stats : frontier -> stats
(** Cumulative stats at the capture point (all slices so far). *)

val frontier_depth : frontier -> int
(** The [depth] of the paused exploration ({!resume} reuses it). *)

val frontier_to_json : frontier -> Obs.Json.t
(** The [wfde-frontier/2] document; [frontier_of_json] inverts it. *)

val frontier_of_json : Obs.Json.t -> (frontier, string) result
(** Parse and validate a [wfde-frontier/2] document ([wfde-frontier/1]
    documents, which predate wakeup sequences and fingerprints, are
    rejected — a pre-rewrite search cannot be continued exactly).
    [Error] on schema mismatch, missing fields, or out-of-range
    values; a frontier whose pids do not match the world it is resumed
    against fails later, at replay, with [Invalid_argument]. *)

val explore :
  pattern:Failure_pattern.t ->
  depth:int ->
  horizon:int ->
  ?budget:int ->
  ?should_stop:(unit -> bool) ->
  ?on_phase:(string -> int -> unit) ->
  ?frontier_out:frontier option ref ->
  make:
    (unit ->
    (Pid.t -> (unit -> unit) list) * (Trace.t -> (unit, 'a) result)) ->
  unit ->
  'a outcome
(** [make ()] must build a fresh, deterministic world: a fiber factory
    plus a checker run on the completed trace ([Ok] = property held).
    It is called once per explored schedule; two calls must yield
    behaviourally identical worlds (this is what makes replay and
    backtracking meaningful). Exploration stops at the first
    counterexample, or after [budget] executions (default
    {!unbounded}): a truncated exploration reports
    [stats.executions = budget] and no counterexample — it is {e not} a
    verification of the remaining schedules.

    [should_stop] (default [fun () -> false]) is polled at the same
    point as the budget, i.e. once before each execution: returning
    [true] truncates the exploration exactly as an exhausted budget
    would (no counterexample, stats reflect the work done). This is the
    cooperative-cancellation hook request deadlines are wired into; the
    callback must be cheap and, when the caller shards branches over
    {!Exec.Pool} domains, safe to call from any worker domain.

    [on_phase] (default absent) is the span-profiling hook, wired the
    same way as [should_stop]: when present, the exploration measures
    wall time spent in its two phases and calls
    [on_phase "dpor.executions" us] then
    [on_phase "dpor.race_analysis" us] exactly once each, just before
    returning — aggregated microseconds, not per-execution events, so
    the reported span {e structure} does not depend on how many
    schedules the search visited. No clock is read when the hook is
    absent. The callback runs on whichever domain runs the exploration.

    [frontier_out] (default absent) receives the paused search state:
    when the exploration is truncated by [budget] or [should_stop] with
    work remaining, the ref is set to [Some f]; when it runs to
    exhaustion or a counterexample, it is reset to [None]. Feed [f] to
    {!resume} to continue exactly where the truncation happened.

    Also updates the [check.dpor.*] metrics: [executions],
    [sleep_blocked], [deduped], [races], [backtrack_points] counters
    and the [check.dpor.execution_steps] histogram, cumulative across
    calls (use {!Obs.Metrics.reset} between measurements). *)

(** {1 Branch sharding}

    The first scheduling position splits the exploration tree into one
    independent subtree per initially-enabled process. Each subtree can
    be explored by {!explore_branch} in isolation — on another domain,
    with its own sleep sets — and the per-branch {!stats} folded with
    {!merge_stats}. Branch [i] is explored with branches [0 .. i-1]
    preset as explored at the root, giving it the same sleep sets a
    serial left-to-right pass would, so the union over all branches
    covers every Mazurkiewicz class at least once without the branches
    coordinating. *)

val root_branches :
  pattern:Failure_pattern.t ->
  make:
    (unit ->
    (Pid.t -> (unit -> unit) list) * (Trace.t -> (unit, 'a) result)) ->
  unit ->
  (Pid.t * Sim.kind) list
(** The enabled processes (with their pending step labels) at the first
    scheduling position of a fresh world, in pid order — the shardable
    root branches. Empty when the world has no step to take (e.g. every
    process crashes at time 0); callers should then fall back to a
    single {!explore} unit so the lone execution is still checked. *)

val explore_branch :
  pattern:Failure_pattern.t ->
  depth:int ->
  horizon:int ->
  ?budget:int ->
  ?should_stop:(unit -> bool) ->
  ?on_phase:(string -> int -> unit) ->
  ?frontier_out:frontier option ref ->
  branches:(Pid.t * Sim.kind) list ->
  index:int ->
  make:
    (unit ->
    (Pid.t -> (unit -> unit) list) * (Trace.t -> (unit, 'a) result)) ->
  unit ->
  'a outcome
(** Explore only the subtree whose first step is [List.nth branches
    index]. [branches] must be the {!root_branches} of the same world;
    [depth] must be >= 1. Same metrics, budget, [should_stop],
    [on_phase], [frontier_out], and counterexample semantics as
    {!explore}. *)

val resume :
  pattern:Failure_pattern.t ->
  horizon:int ->
  ?budget:int ->
  ?should_stop:(unit -> bool) ->
  ?on_phase:(string -> int -> unit) ->
  ?frontier_out:frontier option ref ->
  frontier:frontier ->
  make:
    (unit ->
    (Pid.t -> (unit -> unit) list) * (Trace.t -> (unit, 'a) result)) ->
  unit ->
  'a outcome
(** Continue a truncated {!explore} or {!explore_branch} from its
    captured frontier. [pattern], [horizon], and [make] must describe
    the same world the frontier was captured from (the depth travels
    inside the frontier); resuming against a different world fails at
    replay with [Invalid_argument], exactly like a non-deterministic
    [make].

    The returned stats are {e cumulative}: the frontier's stored stats
    plus the work done by this call, so a chain of budget slices ending
    in completion reports the same outcome as one uninterrupted call —
    executions are never recounted and never dropped. [budget] bounds
    only the executions of {e this} slice. A resume truncated again
    (budget or [should_stop]) fills [frontier_out] with the next
    frontier, so slicing composes. *)
