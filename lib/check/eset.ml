open Kernel

type t = {
  mutable pids : int array; (* strictly increasing over the live prefix *)
  mutable kinds : Sim.kind array;
  mutable size : int;
}

let create ?(capacity = 8) () =
  let capacity = max capacity 1 in
  {
    pids = Array.make capacity 0;
    kinds = Array.make capacity Sim.Nop;
    size = 0;
  }

let size t = t.size
let clear t = t.size <- 0

let push t pid kind =
  if t.size > 0 && Pid.to_int pid <= t.pids.(t.size - 1) then
    invalid_arg "Eset.push: pids must be pushed in increasing order";
  (if t.size = Array.length t.pids then begin
     let cap = 2 * t.size in
     let pids = Array.make cap 0 and kinds = Array.make cap Sim.Nop in
     Array.blit t.pids 0 pids 0 t.size;
     Array.blit t.kinds 0 kinds 0 t.size;
     t.pids <- pids;
     t.kinds <- kinds
   end);
  t.pids.(t.size) <- Pid.to_int pid;
  t.kinds.(t.size) <- kind;
  t.size <- t.size + 1

let pid_at t i =
  if i < 0 || i >= t.size then invalid_arg "Eset.pid_at: index out of bounds";
  t.pids.(i)

let kind_at t i =
  if i < 0 || i >= t.size then invalid_arg "Eset.kind_at: index out of bounds";
  t.kinds.(i)

(* The pid array is sorted, so scan with early exit; enabled sets are a
   handful of entries wide, making this the indexed equivalent of
   [List.assoc_opt] over the association-list representation. *)
let index t pid =
  let p = Pid.to_int pid in
  let rec go i =
    if i >= t.size || t.pids.(i) > p then -1
    else if t.pids.(i) = p then i
    else go (i + 1)
  in
  go 0

let find t pid =
  let i = index t pid in
  if i < 0 then None else Some t.kinds.(i)

let mem t pid = index t pid >= 0

let iter t f =
  for i = 0 to t.size - 1 do
    f t.pids.(i) t.kinds.(i)
  done

let copy t =
  {
    pids = Array.sub t.pids 0 (max t.size 1);
    kinds = Array.sub t.kinds 0 (max t.size 1);
    size = t.size;
  }

let of_list l =
  let t = create ~capacity:(max (List.length l) 1) () in
  List.iter (fun (p, k) -> push t p k) l;
  t

let to_list t = List.init t.size (fun i -> (t.pids.(i), t.kinds.(i)))
