(** Planted bugs the model checker must be able to find.

    Each mutant is a test-only flag inside a memory/agreement module
    that disables one load-bearing mechanism of its algorithm — the
    kind of subtle omission schedule exploration exists to catch.
    Regression tests assert that {!Dpor} + {!Lin} finds a
    counterexample for every mutant within a bounded budget (and none
    without). *)

type t =
  | Abd_skip_write_back
      (** {!Memory.Abd.read} skips the read write-back phase: reads
          become regular, enabling new/old read inversions. *)
  | Snapshot_single_collect
      (** {!Memory.Snapshot} scans return their first collect without
          double-collect validation: views can be atomically
          inconsistent. *)
  | Converge_drop_phase2
      (** {!Converge.run} commits after phase 1 without the phase-2
          visibility check: C-Agreement breaks. *)
  | Hb_timeout_never_increased
      (** {!Detectors.Heartbeat} stops raising timeouts on false
          suspicions: premature timeouts recur forever and eventual
          accuracy fails. *)
  | Hb_suspected_not_restored
      (** {!Detectors.Heartbeat} never un-suspects a process whose
          heartbeat arrives: one pre-GST false suspicion becomes
          permanent. *)

val all : t list

val to_string : t -> string
(** Stable CLI names: [abd-skip-write-back],
    [snapshot-single-collect], [converge-drop-phase2],
    [hb-timeout-never-increased], [hb-suspected-not-restored]. *)

val of_string : string -> (t, string) result

val with_ : t option -> (unit -> 'a) -> 'a
(** [with_ m f] runs [f] with the mutant's flag set (none for [None]),
    restoring all flags afterwards even on exceptions. Use around every
    exploration {e and} every shrink replay, so counterexamples stay
    reproducible. *)
