open Kernel

type stats = {
  executions : int;
  sleep_blocked : int;
  races : int;
  backtrack_points : int;
}

type 'a outcome = {
  stats : stats;
  counterexample : (Pid.t list * 'a) option;
}

let unbounded = max_int
let sat_add a b = if a > unbounded - b then unbounded else a + b

let merge_stats a b =
  {
    executions = sat_add a.executions b.executions;
    sleep_blocked = sat_add a.sleep_blocked b.sleep_blocked;
    races = sat_add a.races b.races;
    backtrack_points = sat_add a.backtrack_points b.backtrack_points;
  }

let m_executions = Obs.Metrics.counter "check.dpor.executions"
let m_sleep_blocked = Obs.Metrics.counter "check.dpor.sleep_blocked"
let m_races = Obs.Metrics.counter "check.dpor.races"
let m_backtrack_points = Obs.Metrics.counter "check.dpor.backtrack_points"
let m_exec_steps = Obs.Metrics.histogram "check.dpor.execution_steps"

(* Label-based independence of two prospective steps: see the .mli for
   the rationale, including why queries commute with nothing. *)
let independent (p1, k1) (p2, k2) =
  (not (Pid.equal p1 p2))
  &&
  match (k1, k2) with
  | Sim.Query _, _ | _, Sim.Query _ -> false
  | Sim.Read _, Sim.Read _ -> true
  | ( (Sim.Read { obj = a } | Sim.Write { obj = a }),
      (Sim.Read { obj = b } | Sim.Write { obj = b }) ) ->
      not (String.equal a b)
  | (Sim.Output _ | Sim.Input _ | Sim.Nop), _
  | _, (Sim.Output _ | Sim.Input _ | Sim.Nop) ->
      true


(* One position of the exploration stack. [sleep] is fixed at creation
   (it depends only on the path above, which is stable while the node
   is on the stack); [backtrack]/[explored] grow across executions. *)
type node = {
  mutable chosen : Pid.t;
  mutable kind : Sim.kind; (* pending kind of [chosen] at this position *)
  mutable enabled : (Pid.t * Sim.kind) list; (* before the step, pid order *)
  mutable backtrack : Pid.Set.t;
  mutable explored : Pid.Set.t;
  sleep : Pid.Set.t;
}

let node_step nd = (nd.chosen, nd.kind)

(* Execute one run: follow the prescribed choices in [stack.(0..len-1)],
   extend with the first non-sleeping enabled process up to [depth]
   (pushing new nodes), then complete with round-robin. Returns the
   checker's verdict, the trace, the stack length after extension, and
   whether extension hit an all-sleeping enabled set (a provably
   redundant run). *)
let spawn_fibers ~pattern ~procs =
  Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 pattern)
  |> List.concat_map (fun pid ->
         List.mapi
           (fun j body ->
             Fiber.create ~pid
               ~name:(Format.asprintf "%a/t%d" Pid.pp pid j)
               body)
           (procs pid))

let run_once ~pattern ~horizon ~depth ~stack ~len ~make =
  let procs, checkf = make () in
  let sched_ref = ref None in
  let pos = ref 0 in
  let grown = ref len in
  let blocked = ref false in
  let rr = Policy.round_robin () in
  let policy ~now ~enabled =
    let i = !pos in
    incr pos;
    if i >= depth || !blocked then rr ~now ~enabled
    else
      let sched =
        match !sched_ref with Some s -> s | None -> assert false
      in
      let pend = Scheduler.pending sched in
      if i < len then begin
        let nd = match stack.(i) with Some nd -> nd | None -> assert false in
        (* deterministic worlds make this refresh a no-op; it keeps the
           recorded data in sync with the run actually performed *)
        nd.enabled <- pend;
        (match List.assoc_opt nd.chosen pend with
        | Some k -> nd.kind <- k
        | None ->
            invalid_arg
              "Dpor.explore: prescribed process not enabled on replay — \
               make () built a non-deterministic world");
        Some nd.chosen
      end
      else begin
        let sleep =
          if i = 0 then Pid.Set.empty
          else
            let parent =
              match stack.(i - 1) with Some nd -> nd | None -> assert false
            in
            let parent_step = node_step parent in
            (* a sleeping process keeps sleeping while its pending step
               commutes with the executed one; explored siblings enter
               the child's sleep set the same way *)
            Pid.Set.filter
              (fun q ->
                match List.assoc_opt q pend with
                | Some kq -> independent (q, kq) parent_step
                | None -> false)
              (Pid.Set.union parent.sleep parent.explored)
        in
        match List.find_opt (fun (q, _) -> not (Pid.Set.mem q sleep)) pend with
        | None ->
            blocked := true;
            rr ~now ~enabled
        | Some (q, kq) ->
            stack.(i) <-
              Some
                {
                  chosen = q;
                  kind = kq;
                  enabled = pend;
                  backtrack = Pid.Set.empty;
                  explored = Pid.Set.empty;
                  sleep;
                };
            grown := i + 1;
            Some q
      end
  in
  let fibers = spawn_fibers ~pattern ~procs in
  let sched = Scheduler.create ~pattern ~policy ~fibers in
  sched_ref := Some sched;
  let (_ : Scheduler.outcome) = Scheduler.run sched ~max_steps:horizon in
  Obs.Metrics.observe_int m_exec_steps (Scheduler.now sched);
  let trace = Scheduler.trace sched in
  (checkf trace, trace, !grown, !blocked)

(* Race analysis (Flanagan–Godefroid) over the WHOLE executed run, not
   just the choice window: a race whose later step sits in the
   deterministic round-robin tail still needs a backtracking point at
   its (controllable) earlier step, otherwise a process with a long
   program can monopolize the window and hide every race from the
   analysis. Backtracking alternatives can only be inserted at window
   positions [0 .. grown-1].

   Happens-before is tracked with vector clocks over an access model
   derived from step labels: a [Read]/[Write] accesses its named
   object; [Query] writes a pseudo-object that every step reads (so a
   query conflicts with everything, and two queries conflict);
   [Nop]/[Output]/[Input] only read the pseudo-object. For each step j
   the race candidates are the per-object last conflicting accesses;
   (i, j) is an immediate race when no intermediate k has
   hb(i,k) && hb(k,j). Returns (races, alternatives inserted). *)
let analyze ~stack ~grown ~trace =
  let steps =
    trace
    |> List.filter_map (function
         | Trace.Step { pid; kind; _ } -> Some (pid, kind)
         | Trace.Crash _ -> None)
    |> Array.of_list
  in
  let m = Array.length steps in
  if m = 0 then (0, 0)
  else begin
    let n =
      1 + Array.fold_left (fun acc (p, _) -> max acc (Pid.to_int p)) 0 steps
    in
    (* per-step: vector clock (vc.(j).(q) = how many of q's steps
       happen-before step j, inclusive of j itself for q = pid_j) and
       the step's own per-process index (1-based) *)
    let vc = Array.make_matrix m n 0 in
    let own = Array.make m 0 in
    (* positions.(q) = global positions of q's steps, in order *)
    let positions = Array.make n [] in
    let proc_clock = Array.init n (fun _ -> Array.make n 0) in
    let last_write_vc : (string, int array) Hashtbl.t = Hashtbl.create 16 in
    let last_write_pos : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let reads_vc : (string, int array) Hashtbl.t = Hashtbl.create 16 in
    let last_read_pos : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
    let join dst src = Array.iteri (fun q v -> if v > dst.(q) then dst.(q) <- v) src in
    (* pseudo-object giving queries their conflict-with-everything
       semantics; real object names never collide with it *)
    let q_obj = "\x00query" in
    let accesses kind =
      match kind with
      | Sim.Read { obj } -> [ (obj, `R); (q_obj, `R) ]
      | Sim.Write { obj } -> [ (obj, `W); (q_obj, `R) ]
      | Sim.Query _ -> [ (q_obj, `W) ]
      | Sim.Output _ | Sim.Input _ | Sim.Nop -> [ (q_obj, `R) ]
    in
    let hb i j =
      (* step i happens-before step j (i < j) *)
      vc.(j).(Pid.to_int (fst steps.(i))) >= own.(i)
    in
    let races = ref 0 and added = ref 0 in
    for j = 0 to m - 1 do
      let pj, kj = steps.(j) in
      let p = Pid.to_int pj in
      let accs = accesses kj in
      (* candidates: last conflicting access per object, before joining
         this step's clock (so they reflect strictly earlier steps) *)
      let candidates =
        List.concat_map
          (fun (o, a) ->
            let w =
              match Hashtbl.find_opt last_write_pos o with
              | Some i -> [ i ]
              | None -> []
            in
            match a with
            | `R -> w
            | `W ->
                w
                @ List.concat
                    (List.init n (fun q ->
                         if q = p then []
                         else
                           match Hashtbl.find_opt last_read_pos (o, q) with
                           | Some i -> [ i ]
                           | None -> [])))
          accs
        |> List.filter (fun i -> not (Pid.equal (fst steps.(i)) pj))
        |> List.sort_uniq Int.compare
      in
      (* compute this step's clock *)
      let clock = vc.(j) in
      join clock proc_clock.(p);
      own.(j) <- clock.(p) + 1;
      clock.(p) <- own.(j);
      List.iter
        (fun (o, a) ->
          (match Hashtbl.find_opt last_write_vc o with
          | Some w -> join clock w
          | None -> ());
          match a with
          | `R -> ()
          | `W -> (
              match Hashtbl.find_opt reads_vc o with
              | Some r -> join clock r
              | None -> ()))
        accs;
      (* immediate races among the candidates *)
      List.iter
        (fun i ->
          let mediated = ref false in
          for k = i + 1 to j - 1 do
            if (not !mediated) && hb i k && hb k j then mediated := true
          done;
          if not !mediated then begin
            incr races;
            if i >= grown then begin
              (* both race steps sit in the uncontrollable round-robin
                 tail: reversal needs pid_j inside the window first.
                 Conservatively offer it at the deepest window node
                 (bounded-search backtracking, cf. Coons et al.); once
                 it runs there, normal race reversal pulls it further
                 forward on subsequent analyses. *)
              if grown > 0 then begin
                let nd =
                  match stack.(grown - 1) with
                  | Some nd -> nd
                  | None -> assert false
                in
                if
                  List.mem_assoc pj nd.enabled
                  && not (Pid.Set.mem pj nd.backtrack)
                then begin
                  nd.backtrack <- Pid.Set.add pj nd.backtrack;
                  incr added
                end
              end
            end
            else begin
              let nd =
                match stack.(i) with Some nd -> nd | None -> assert false
              in
              let enabled_i = List.map fst nd.enabled in
              (* E-set: processes enabled at i whose scheduling there
                 could reverse the race — pid_j itself, or anyone with a
                 step in (i, j) happening-before j *)
              let e =
                List.filter
                  (fun q ->
                    Pid.equal q pj
                    ||
                    let qi = Pid.to_int q in
                    clock.(qi) >= 1
                    &&
                    match List.nth_opt positions.(qi) (clock.(qi) - 1) with
                    | Some pos -> pos > i && pos < j
                    | None -> false)
                  enabled_i
              in
              let to_add = if e = [] then enabled_i else e in
              List.iter
                (fun q ->
                  if not (Pid.Set.mem q nd.backtrack) then begin
                    nd.backtrack <- Pid.Set.add q nd.backtrack;
                    incr added
                  end)
                to_add
            end
          end)
        candidates;
      (* update the access tables with this step *)
      List.iter
        (fun (o, a) ->
          match a with
          | `R ->
              (match Hashtbl.find_opt reads_vc o with
              | Some r -> join r clock
              | None -> Hashtbl.replace reads_vc o (Array.copy clock));
              Hashtbl.replace last_read_pos (o, p) j
          | `W ->
              Hashtbl.replace last_write_vc o (Array.copy clock);
              Hashtbl.replace last_write_pos o j;
              (* a write orders all prior reads before it; clear them so
                 later writes race with the write, not stale reads *)
              Hashtbl.remove reads_vc o;
              for q = 0 to n - 1 do
                Hashtbl.remove last_read_pos (o, q)
              done)
        accs;
      join proc_clock.(p) clock;
      positions.(p) <- positions.(p) @ [ j ]
    done;
    (!races, !added)
  end

(* Pop to the deepest node with an unexplored, non-sleeping backtrack
   alternative; retarget it and truncate the stack there. False when the
   whole (sub)tree is exhausted. Nodes below [floor] are frozen: branch
   units pass [floor = 1] so their preset root is never retargeted —
   race analysis may offer later root siblings, but each sibling is
   covered by its own unit. *)
let rec next_candidate ~stack ~len ~floor =
  if !len <= floor then false
  else begin
    let nd = match stack.(!len - 1) with Some nd -> nd | None -> assert false in
    nd.explored <- Pid.Set.add nd.chosen nd.explored;
    let cands =
      Pid.Set.diff nd.backtrack (Pid.Set.union nd.explored nd.sleep)
    in
    match Pid.Set.min_elt_opt cands with
    | Some q ->
        nd.chosen <- q;
        (match List.assoc_opt q nd.enabled with
        | Some k -> nd.kind <- k
        | None -> assert false);
        true
    | None ->
        len := !len - 1;
        stack.(!len) <- None;
        next_candidate ~stack ~len ~floor
  end

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let explore_loop ~pattern ~depth ~horizon ~make ~budget ~stack ~len ~floor =
  let executions = ref 0 and blocked_runs = ref 0 in
  let races_total = ref 0 and added_total = ref 0 in
  let rec loop () =
    if !executions >= budget then None
    else begin
      let verdict, trace, grown, blocked =
        run_once ~pattern ~horizon ~depth ~stack ~len:!len ~make
      in
      incr executions;
      Obs.Metrics.incr m_executions;
      if blocked then begin
        incr blocked_runs;
        Obs.Metrics.incr m_sleep_blocked
      end;
      match verdict with
      | Error report -> Some (take depth (Trace.schedule trace), report)
      | Ok () ->
          if not blocked then begin
            let races, added = analyze ~stack ~grown ~trace in
            races_total := !races_total + races;
            added_total := !added_total + added;
            Obs.Metrics.incr ~by:races m_races;
            Obs.Metrics.incr ~by:added m_backtrack_points
          end;
          len := grown;
          if next_candidate ~stack ~len ~floor then loop () else None
    end
  in
  let counterexample = loop () in
  {
    stats =
      {
        executions = !executions;
        sleep_blocked = !blocked_runs;
        races = !races_total;
        backtrack_points = !added_total;
      };
    counterexample;
  }

let check_budget ~who budget =
  if budget < 0 then invalid_arg (who ^ ": negative budget")

let explore ~pattern ~depth ~horizon ?(budget = unbounded) ~make () =
  if depth < 0 then invalid_arg "Dpor.explore: negative depth";
  check_budget ~who:"Dpor.explore" budget;
  let stack = Array.make (max depth 1) None in
  let len = ref 0 in
  explore_loop ~pattern ~depth ~horizon ~make ~budget ~stack ~len ~floor:0

let root_branches ~pattern ~make () =
  let procs, _checkf = make () in
  let sched_ref = ref None in
  let seen = ref None in
  let policy ~now:_ ~enabled:_ =
    (match (!seen, !sched_ref) with
    | None, Some sched -> seen := Some (Scheduler.pending sched)
    | _ -> ());
    None
  in
  let fibers = spawn_fibers ~pattern ~procs in
  let sched = Scheduler.create ~pattern ~policy ~fibers in
  sched_ref := Some sched;
  let (_ : Scheduler.outcome) = Scheduler.run sched ~max_steps:1 in
  match !seen with None -> [] | Some pend -> pend

let explore_branch ~pattern ~depth ~horizon ?(budget = unbounded) ~branches
    ~index ~make () =
  if depth < 1 then invalid_arg "Dpor.explore_branch: depth must be >= 1";
  check_budget ~who:"Dpor.explore_branch" budget;
  if index < 0 || index >= List.length branches then
    invalid_arg "Dpor.explore_branch: branch index out of range";
  let chosen, kind = List.nth branches index in
  (* Earlier siblings preset as explored: the subtree runs with exactly
     the sleep sets a serial pass visiting branches left-to-right would
     give it, so equivalence classes already covered by an earlier
     branch's unit are not re-run here. *)
  let explored =
    List.filteri (fun i _ -> i < index) branches
    |> List.map fst |> Pid.Set.of_list
  in
  let stack = Array.make (max depth 1) None in
  stack.(0) <-
    Some
      {
        chosen;
        kind;
        enabled = branches;
        backtrack = Pid.Set.empty;
        explored;
        sleep = Pid.Set.empty;
      };
  let len = ref 1 in
  explore_loop ~pattern ~depth ~horizon ~make ~budget ~stack ~len ~floor:1
