open Kernel

type stats = {
  executions : int;
  sleep_blocked : int;
  deduped : int;
  races : int;
  backtrack_points : int;
}

type 'a outcome = {
  stats : stats;
  counterexample : (Pid.t list * 'a) option;
}

let unbounded = max_int
let sat_add a b = if a > unbounded - b then unbounded else a + b

let merge_stats a b =
  {
    executions = sat_add a.executions b.executions;
    sleep_blocked = sat_add a.sleep_blocked b.sleep_blocked;
    deduped = sat_add a.deduped b.deduped;
    races = sat_add a.races b.races;
    backtrack_points = sat_add a.backtrack_points b.backtrack_points;
  }

let zero_stats =
  {
    executions = 0;
    sleep_blocked = 0;
    deduped = 0;
    races = 0;
    backtrack_points = 0;
  }

(* A wakeup sequence: the (pid, pending-step label) steps of one
   reversed race, scheduled verbatim — sleep sets bypassed — when its
   head pid is picked from a backtrack set. Slot 0 is the head's own
   step at the insertion node; the tail becomes the next run's
   prescription. *)
type wstep = { w_pid : Pid.t; w_kind : Sim.kind }

(* ---------------------------------------------------- frontiers ------- *)

(* A serialized stack node. Only the search state is kept: [enabled] and
   [kind] are recomputed by the prescribed replay of the next execution
   (deterministic worlds make that refresh authoritative), so they never
   need to cross a process boundary. Wakeup sequences, the pending
   prescription, and the fingerprint table DO cross: they are search
   state a resume cannot reconstruct. *)
type fnode = {
  fn_chosen : int;
  fn_backtrack : int list;
  fn_explored : int list;
  fn_sleep : int list;
  fn_wakeups : (int * wstep array) list;
}

type frontier = {
  f_depth : int;
  f_floor : int;
  f_stats : stats; (* cumulative over every slice up to the capture *)
  f_nodes : fnode list;
  f_presc : wstep array; (* prescription of the pending run *)
  f_seen : int list; (* fingerprint keys of every executed window prefix *)
}

let frontier_stats f = f.f_stats
let frontier_depth f = f.f_depth

let set_to_ints s = Pid.Set.elements s |> List.map Pid.to_int

module J = Obs.Json

let frontier_schema = "wfde-frontier/2"

let kind_to_json = function
  | Sim.Read { obj } -> J.Obj [ ("op", J.String "read"); ("obj", J.String obj) ]
  | Sim.Write { obj } ->
      J.Obj [ ("op", J.String "write"); ("obj", J.String obj) ]
  | Sim.Send { obj } -> J.Obj [ ("op", J.String "send"); ("obj", J.String obj) ]
  | Sim.Recv { obj } -> J.Obj [ ("op", J.String "recv"); ("obj", J.String obj) ]
  | Sim.Query { detector } ->
      J.Obj [ ("op", J.String "query"); ("detector", J.String detector) ]
  | Sim.Output { label; value } ->
      J.Obj
        [
          ("op", J.String "output");
          ("label", J.String label);
          ("value", J.String value);
        ]
  | Sim.Input { label; value } ->
      J.Obj
        [
          ("op", J.String "input");
          ("label", J.String label);
          ("value", J.String value);
        ]
  | Sim.Nop -> J.Obj [ ("op", J.String "nop") ]

let wstep_to_json w =
  match kind_to_json w.w_kind with
  | J.Obj fields -> J.Obj (("pid", J.Int (Pid.to_int w.w_pid)) :: fields)
  | _ -> assert false

let wseq_to_json ws = J.List (Array.to_list ws |> List.map wstep_to_json)

let frontier_to_json f =
  let ints xs = J.List (List.map (fun i -> J.Int i) xs) in
  J.Obj
    [
      ("schema", J.String frontier_schema);
      ("depth", J.Int f.f_depth);
      ("floor", J.Int f.f_floor);
      ( "stats",
        J.Obj
          [
            ("executions", J.Int f.f_stats.executions);
            ("sleep_blocked", J.Int f.f_stats.sleep_blocked);
            ("deduped", J.Int f.f_stats.deduped);
            ("races", J.Int f.f_stats.races);
            ("backtrack_points", J.Int f.f_stats.backtrack_points);
          ] );
      ( "nodes",
        J.List
          (List.map
             (fun fn ->
               J.Obj
                 [
                   ("chosen", J.Int fn.fn_chosen);
                   ("backtrack", ints fn.fn_backtrack);
                   ("explored", ints fn.fn_explored);
                   ("sleep", ints fn.fn_sleep);
                   ( "wakeups",
                     J.List
                       (List.map
                          (fun (p, ws) ->
                            J.Obj
                              [
                                ("pid", J.Int p); ("seq", wseq_to_json ws);
                              ])
                          fn.fn_wakeups) );
                 ])
             f.f_nodes) );
      ("presc", wseq_to_json f.f_presc);
      ("seen", ints f.f_seen);
    ]

exception Bad_frontier of string

let frontier_of_json j =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad_frontier m)) fmt in
  let int key o =
    match J.member key o with
    | Some (J.Int v) when v >= 0 -> v
    | _ -> fail "frontier: %S must be a non-negative integer" key
  in
  let str key o =
    match J.member key o with
    | Some (J.String s) -> s
    | _ -> fail "frontier: %S must be a string" key
  in
  let ints key o =
    match J.member key o with
    | Some (J.List xs) ->
        List.map
          (function
            | J.Int v when v >= 0 -> v
            | _ -> fail "frontier: %S must list non-negative integers" key)
          xs
    | _ -> fail "frontier: missing list %S" key
  in
  let kind_of o =
    match str "op" o with
    | "read" -> Sim.Read { obj = str "obj" o }
    | "write" -> Sim.Write { obj = str "obj" o }
    | "send" -> Sim.Send { obj = str "obj" o }
    | "recv" -> Sim.Recv { obj = str "obj" o }
    | "query" -> Sim.Query { detector = str "detector" o }
    | "output" -> Sim.Output { label = str "label" o; value = str "value" o }
    | "input" -> Sim.Input { label = str "label" o; value = str "value" o }
    | "nop" -> Sim.Nop
    | op -> fail "frontier: unknown step op %S" op
  in
  let wstep_of o = { w_pid = Pid.of_index (int "pid" o); w_kind = kind_of o } in
  let wseq key o =
    match J.member key o with
    | Some (J.List xs) -> Array.of_list (List.map wstep_of xs)
    | _ -> fail "frontier: missing list %S" key
  in
  try
    (match J.member "schema" j with
    | Some (J.String s) when String.equal s frontier_schema -> ()
    | _ -> fail "frontier: expected schema %S" frontier_schema);
    let depth = int "depth" j in
    let floor = int "floor" j in
    let stats_j =
      match J.member "stats" j with
      | Some o -> o
      | None -> fail "frontier: missing \"stats\""
    in
    let f_stats =
      {
        executions = int "executions" stats_j;
        sleep_blocked = int "sleep_blocked" stats_j;
        deduped = int "deduped" stats_j;
        races = int "races" stats_j;
        backtrack_points = int "backtrack_points" stats_j;
      }
    in
    let nodes =
      match J.member "nodes" j with
      | Some (J.List xs) ->
          List.map
            (fun o ->
              let wakeups =
                match J.member "wakeups" o with
                | Some (J.List ws) ->
                    List.map
                      (fun w -> (int "pid" w, wseq "seq" w))
                      ws
                | _ -> fail "frontier: missing list \"wakeups\""
              in
              {
                fn_chosen = int "chosen" o;
                fn_backtrack = ints "backtrack" o;
                fn_explored = ints "explored" o;
                fn_sleep = ints "sleep" o;
                fn_wakeups = wakeups;
              })
            xs
      | _ -> fail "frontier: missing \"nodes\""
    in
    let len = List.length nodes in
    if len > max depth 1 then fail "frontier: %d nodes exceed depth %d" len depth;
    if floor > len then fail "frontier: floor %d exceeds %d nodes" floor len;
    let f_presc = wseq "presc" j in
    let f_seen = ints "seen" j in
    Ok { f_depth = depth; f_floor = floor; f_stats; f_nodes = nodes; f_presc; f_seen }
  with Bad_frontier m -> Error m

let m_executions = Obs.Metrics.counter "check.dpor.executions"
let m_sleep_blocked = Obs.Metrics.counter "check.dpor.sleep_blocked"
let m_deduped = Obs.Metrics.counter "check.dpor.deduped"
let m_races = Obs.Metrics.counter "check.dpor.races"
let m_backtrack_points = Obs.Metrics.counter "check.dpor.backtrack_points"
let m_exec_steps = Obs.Metrics.histogram "check.dpor.execution_steps"

(* Label-based independence of two prospective steps: see the .mli for
   the rationale, including why queries commute with nothing. *)
let independent p1 k1 p2 k2 =
  (not (Pid.equal p1 p2))
  &&
  match (k1, k2) with
  | Sim.Query _, _ | _, Sim.Query _ -> false
  | Sim.Read _, Sim.Read _ -> true
  | ( (Sim.Read { obj = a } | Sim.Write { obj = a } | Sim.Send { obj = a }
      | Sim.Recv { obj = a } ),
      ( Sim.Read { obj = b } | Sim.Write { obj = b } | Sim.Send { obj = b }
      | Sim.Recv { obj = b } ) ) ->
      not (String.equal a b)
  | (Sim.Output _ | Sim.Input _ | Sim.Nop), _
  | _, (Sim.Output _ | Sim.Input _ | Sim.Nop) ->
      true

(* One position of the exploration stack. [sleep] is fixed at creation
   (it depends only on the path above, which is stable while the node
   is on the stack); [backtrack]/[explored]/[wakeups] grow across
   executions. [wakeups] maps a backtrack pid to the recorded wakeup
   sequence of the race that inserted it; pids inserted without a
   sequence (tail races, fallback insertions) just run free. *)
type node = {
  mutable chosen : Pid.t;
  mutable kind : Sim.kind; (* pending kind of [chosen] at this position *)
  enabled : Eset.t; (* before the step, pid order; refreshed in place *)
  mutable backtrack : Pid.Set.t;
  mutable explored : Pid.Set.t;
  mutable wakeups : (Pid.t * wstep array) list;
  sleep : Pid.Set.t;
}

let capture_frontier ~depth ~floor ~stack ~len ~stats ~presc ~seen =
  let nodes =
    List.init len (fun i ->
        match stack.(i) with
        | None -> assert false
        | Some nd ->
            {
              fn_chosen = Pid.to_int nd.chosen;
              fn_backtrack = set_to_ints nd.backtrack;
              fn_explored = set_to_ints nd.explored;
              fn_sleep = set_to_ints nd.sleep;
              fn_wakeups =
                List.map
                  (fun (p, ws) -> (Pid.to_int p, ws))
                  nd.wakeups;
            })
  in
  let f_seen = Hashtbl.fold (fun k () acc -> k :: acc) seen [] in
  {
    f_depth = depth;
    f_floor = floor;
    f_stats = stats;
    f_nodes = nodes;
    f_presc = presc;
    f_seen = List.sort compare f_seen;
  }

(* Fiber names are a pure function of (pid, thread index); intern them
   so re-spawning the world for every execution stops formatting. The
   table is domain-local because explore runs concurrently in Exec.Pool
   worker domains and stdlib Hashtbl is not domain-safe; each domain
   interning its own copy still amortizes. *)
let fiber_names_key : (int, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let fiber_name pid j =
  let names = Domain.DLS.get fiber_names_key in
  let key = (Pid.to_int pid lsl 16) lor j in
  match Hashtbl.find_opt names key with
  | Some s -> s
  | None ->
      let s = Format.asprintf "%a/t%d" Pid.pp pid j in
      Hashtbl.replace names key s;
      s

let spawn_fibers ~pattern ~procs =
  Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 pattern)
  |> List.concat_map (fun pid ->
         List.mapi
           (fun j body -> Fiber.create ~pid ~name:(fiber_name pid j) body)
           (procs pid))

(* Fill an enabled-set buffer from the scheduler's pending view. *)
let refresh_enabled es sched =
  Eset.clear es;
  Scheduler.iter_pending sched (fun p k -> Eset.push es p k)

(* Execute one run: follow the prescribed choices in [stack.(0..len-1)],
   extend by consuming the wakeup prescription [presc] (sleep sets
   bypassed — a wakeup sequence exists precisely because the sleep set
   would otherwise suppress a class the reversal must visit), then with
   the first non-sleeping enabled process up to [depth] (pushing new
   nodes), then complete with round-robin. A prescription step whose pid
   is no longer enabled abandons the rest of the prescription and falls
   back to the free extension. Returns the checker's verdict, the trace,
   the live trace buffer (for the race analysis), the stack length after
   extension, and whether the free extension hit an all-sleeping enabled
   set (a provably redundant run). *)
let run_once ~pattern ~horizon ~depth ~stack ~len ~presc ~make ~pend =
  let procs, checkf = make () in
  let sched_ref = ref None in
  let pos = ref 0 in
  let grown = ref len in
  let blocked = ref false in
  let presc_dead = ref false in
  let rr = Policy.round_robin () in
  let policy ~now ~enabled =
    let i = !pos in
    incr pos;
    if i >= depth || !blocked then rr ~now ~enabled
    else
      let sched =
        match !sched_ref with Some s -> s | None -> assert false
      in
      if i < len then begin
        let nd = match stack.(i) with Some nd -> nd | None -> assert false in
        (* deterministic worlds make this refresh a no-op; it keeps the
           recorded data in sync with the run actually performed *)
        refresh_enabled nd.enabled sched;
        (match Eset.find nd.enabled nd.chosen with
        | Some k -> nd.kind <- k
        | None ->
            invalid_arg
              "Dpor.explore: prescribed process not enabled on replay — \
               make () built a non-deterministic world");
        Some nd.chosen
      end
      else begin
        refresh_enabled pend sched;
        let sleep =
          if i = 0 then Pid.Set.empty
          else
            let parent =
              match stack.(i - 1) with Some nd -> nd | None -> assert false
            in
            let pp = parent.chosen and pk = parent.kind in
            (* a sleeping process keeps sleeping while its pending step
               commutes with the executed one; explored siblings enter
               the child's sleep set the same way *)
            Pid.Set.filter
              (fun q ->
                match Eset.find pend q with
                | Some kq -> independent q kq pp pk
                | None -> false)
              (Pid.Set.union parent.sleep parent.explored)
        in
        let push q kq =
          stack.(i) <-
            Some
              {
                chosen = q;
                kind = kq;
                enabled = Eset.copy pend;
                backtrack = Pid.Set.empty;
                explored = Pid.Set.empty;
                wakeups = [];
                sleep;
              };
          grown := i + 1;
          Some q
        in
        let prescribed =
          let pi = i - len in
          if !presc_dead || pi >= Array.length presc then None
          else
            let q = presc.(pi).w_pid in
            match Eset.find pend q with
            | Some kq -> Some (q, kq)
            | None ->
                (* the reversed world diverged from the recording; run
                   the rest of the extension free *)
                presc_dead := true;
                None
        in
        match prescribed with
        | Some (q, kq) -> push q kq
        | None -> (
            let rec first_awake idx =
              if idx >= Eset.size pend then None
              else
                let q = Eset.pid_at pend idx in
                if Pid.Set.mem q sleep then first_awake (idx + 1)
                else Some (q, Eset.kind_at pend idx)
            in
            match first_awake 0 with
            | None ->
                blocked := true;
                rr ~now ~enabled
            | Some (q, kq) -> push q kq)
      end
  in
  let fibers = spawn_fibers ~pattern ~procs in
  let sched = Scheduler.create ~pattern ~policy ~fibers in
  sched_ref := Some sched;
  let (_ : Scheduler.outcome) = Scheduler.run sched ~max_steps:horizon in
  Obs.Metrics.observe_int m_exec_steps (Scheduler.now sched);
  let trace = Scheduler.trace sched in
  (checkf trace, trace, Scheduler.trace_builder sched, !grown, !blocked)

(* ------------------------------------------- schedule fingerprints ----- *)

(* Canonical keys for window prefixes up to Mazurkiewicz equivalence:
   two prefixes that differ only in the order of independent steps get
   the same key. Per step the key material is (Foata level, step code):
   the Foata level is 1 + the max level of any earlier dependent step
   (a pure function of the trace class), the step code hashes the
   (pid, label) pair. Items are combined commutatively (sum of mixed
   items), so no sorting is needed and every prefix length of a window
   is keyed in one O(len^2) pass. Equivalent prefixes collide by
   construction; unequal prefixes collide with ~2^-62 probability,
   which the differential battery cross-checks empirically. *)

let fp_mix x =
  let x = x lxor (x lsr 29) in
  let x = x * 0x35CD5A21 in
  let x = x lxor (x lsr 31) in
  let x = x * 0x4F6CDD1D in
  x lxor (x lsr 28)

let fp_item ~level ~code = fp_mix (code + (level * 0x9E3779B9))
let fp_key ~len ~hash = fp_mix (hash lxor (len * 0x2545F491)) land max_int

(* Per-call fingerprint scratch: levels/items/prefix-hashes of the last
   executed window, reused to key the next candidate prefix in O(len)
   (its strict prefix is shared with the last run), plus the
   access-category tables of the O(steps) full-run pass. *)
type fp_state = {
  mutable fp_level : int array; (* per window position: Foata level *)
  mutable fp_hash : int array; (* fp_hash.(l) keys the l-step prefix *)
  fr_pid_level : int array; (* per process: level of its last step *)
  fr_objs : (string, int * int) Hashtbl.t;
      (* per object: (last-write level, max read level) *)
  seen : (int, unit) Hashtbl.t;
}

let make_fp_state ~n ~depth ~seen_keys =
  let cap = max depth 1 in
  let seen = Hashtbl.create 1024 in
  List.iter (fun k -> Hashtbl.replace seen k ()) seen_keys;
  {
    fp_level = Array.make cap 0;
    fp_hash = Array.make (cap + 1) 0;
    fr_pid_level = Array.make n 0;
    fr_objs = Hashtbl.create 16;
    seen;
  }

let step_code pid kind = Hashtbl.hash (Pid.to_int pid, kind) land max_int

(* Recompute level/item/hash for window position [t] given positions
   [0..t-1] are current. *)
let fp_set fp ~stack t =
  let nd = match stack.(t) with Some nd -> nd | None -> assert false in
  let level = ref 1 in
  for u = 0 to t - 1 do
    let nu = match stack.(u) with Some nd -> nd | None -> assert false in
    if
      (not (independent nu.chosen nu.kind nd.chosen nd.kind))
      && fp.fp_level.(u) >= !level
    then level := fp.fp_level.(u) + 1
  done;
  fp.fp_level.(t) <- !level;
  fp.fp_hash.(t + 1) <-
    fp.fp_hash.(t) + fp_item ~level:!level ~code:(step_code nd.chosen nd.kind)

(* Key every prefix of the executed window and record it as seen. *)
let fp_record fp ~stack ~grown =
  for t = 0 to grown - 1 do
    fp_set fp ~stack t;
    Hashtbl.replace fp.seen (fp_key ~len:(t + 1) ~hash:fp.fp_hash.(t + 1)) ()
  done

(* Key the WHOLE executed run — window and round-robin tail — and
   record it as seen. Returns whether the key was already present:
   this run is then a duplicate of an executed one up to trace
   equivalence. Two inequivalent windows can still complete into the
   same run class (the tail reorders the leftover independent steps),
   which path-local sleep sets cannot see; the caller suppresses the
   duplicate's race analysis, since every race it contains is
   equivalent to one in the original run, whose analysis already
   inserted the reversals.

   Levels come from an O(steps) incremental pass over the label-based
   dependence relation: a step depends on its process's previous step
   and the last query (queries conflict with everything, so a query
   itself tops every level so far); a read also on the last write to
   its object; a write also on that object's reads. *)
let fp_full_run fp ~s_pids ~s_kinds ~m =
  Array.fill fp.fr_pid_level 0 (Array.length fp.fr_pid_level) 0;
  Hashtbl.reset fp.fr_objs;
  let last_query = ref 0 and global_max = ref 0 in
  let hash = ref 0 in
  for t = 0 to m - 1 do
    let p = s_pids.(t) and k = s_kinds.(t) in
    let base = max fp.fr_pid_level.(p) !last_query in
    let level =
      1
      +
      match k with
      | Sim.Query _ -> !global_max
      | Sim.Read { obj } -> (
          match Hashtbl.find_opt fp.fr_objs obj with
          | Some (w, _) -> max base w
          | None -> base)
      | Sim.Write { obj } | Sim.Send { obj } | Sim.Recv { obj } -> (
          match Hashtbl.find_opt fp.fr_objs obj with
          | Some (w, r) -> max base (max w r)
          | None -> base)
      | Sim.Output _ | Sim.Input _ | Sim.Nop -> base
    in
    (match k with
    | Sim.Query _ -> last_query := level
    | Sim.Read { obj } ->
        let w, r =
          match Hashtbl.find_opt fp.fr_objs obj with
          | Some wr -> wr
          | None -> (0, 0)
        in
        Hashtbl.replace fp.fr_objs obj (w, max r level)
    | Sim.Write { obj } | Sim.Send { obj } | Sim.Recv { obj } ->
        Hashtbl.replace fp.fr_objs obj (level, 0)
    | Sim.Output _ | Sim.Input _ | Sim.Nop -> ());
    fp.fr_pid_level.(p) <- level;
    if level > !global_max then global_max := level;
    hash := !hash + fp_item ~level ~code:(Hashtbl.hash (p, k) land max_int)
  done;
  let key = fp_key ~len:m ~hash:!hash in
  let dup = Hashtbl.mem fp.seen key in
  Hashtbl.replace fp.seen key ();
  dup

(* Has the candidate prefix [stack.(0..len-1)] — the last run's prefix
   with a retargeted final step — already been executed up to trace
   equivalence? Only the final position changed, so one fp_set call
   refreshes the key. *)
let fp_seen_candidate fp ~stack ~len =
  fp_set fp ~stack (len - 1);
  Hashtbl.mem fp.seen (fp_key ~len ~hash:fp.fp_hash.(len))

(* ------------------------------------------------------ race analysis --- *)

(* Per-object access state for the happens-before scan. A cleared
   vector-clock slot is the shared empty array (physically [||], length
   0 = absent); live clock buffers come from the scratch pool so one
   allocation serves many executions. *)
type obj_state = {
  mutable lw_vc : int array; (* clock of the last write; [||] = none *)
  mutable lw_pos : int; (* position of the last write; -1 = none *)
  mutable r_vc : int array; (* join of reads since that write; [||] = none *)
  r_pos : int array; (* per-process last-read position; -1 = none *)
}

(* Reusable buffers for [analyze]: one scratch serves every execution of
   an [explore] call, so the per-run cost is zeroing, not allocating.
   [n] is the process count of the world (>= the largest pid + 1 seen in
   any trace), fixed by the failure pattern. *)
type scratch = {
  n : int;
  mutable s_pids : int array; (* per step: acting pid *)
  mutable s_kinds : Sim.kind array; (* per step: label *)
  mutable vc : int array array; (* per step: vector clock, rows reused *)
  mutable own : int array; (* per step: 1-based own-process index *)
  proc_clock : int array array; (* per process: clock after its last step *)
  positions : Exec.Dynarray.t array; (* per process: its steps' positions *)
  objs : (string, obj_state) Hashtbl.t;
  mutable pool : int array list; (* free clock buffers, length n *)
  cand : Exec.Dynarray.t; (* race candidate positions for one step *)
  vseq : Exec.Dynarray.t; (* positions of one race's wakeup sequence *)
}

let make_scratch ~n =
  {
    n;
    s_pids = Array.make 256 0;
    s_kinds = Array.make 256 Sim.Nop;
    vc = [||];
    own = [||];
    proc_clock = Array.init n (fun _ -> Array.make n 0);
    positions = Array.init n (fun _ -> Exec.Dynarray.create ~capacity:64 ());
    objs = Hashtbl.create 16;
    pool = [];
    cand = Exec.Dynarray.create ~capacity:16 ();
    vseq = Exec.Dynarray.create ~capacity:16 ();
  }

let take_buf s =
  match s.pool with
  | b :: rest ->
      s.pool <- rest;
      b
  | [] -> Array.make s.n 0

let release_buf s b = if Array.length b > 0 then s.pool <- b :: s.pool

let obj_state s o =
  match Hashtbl.find_opt s.objs o with
  | Some st -> st
  | None ->
      let st =
        { lw_vc = [||]; lw_pos = -1; r_vc = [||]; r_pos = Array.make s.n (-1) }
      in
      Hashtbl.replace s.objs o st;
      st

(* pseudo-object giving queries their conflict-with-everything
   semantics; real object names never collide with it *)
let q_obj = "\x00query"

(* Race analysis over the WHOLE executed run, not just the choice
   window: a race whose later step sits in the deterministic round-robin
   tail still needs a backtracking point at its (controllable) earlier
   step, otherwise a process with a long program can monopolize the
   window and hide every race from the analysis. Backtracking
   alternatives can only be inserted at window positions [0..grown-1].

   Happens-before is tracked with vector clocks over an access model
   derived from step labels: a [Read]/[Write] accesses its named
   object; [Query] writes a pseudo-object that every step reads (so a
   query conflicts with everything, and two queries conflict);
   [Nop]/[Output]/[Input] only read the pseudo-object. For each step j
   the race candidates are the per-object last conflicting accesses;
   (i, j) is an immediate race when no intermediate k has
   hb(i,k) && hb(k,j).

   Insertion follows source-set DPOR (Abdulla–Aronis–Jonsson–Sagonas):
   for a window race (i, j), the reversing sequence is
   v = notdep(i) . j — the steps of (i, j) not happens-after i, then j
   itself. If any weak initial of v is already scheduled at node i
   (in backtrack, explored, or sleep), the reversal's class is covered
   and NOTHING is inserted — this is where the persistent-set
   explorer's whole-E insertions went. Otherwise v's first step's pid
   (an initial of v by construction) is inserted together with v as
   its wakeup sequence, so the reversal replays the exact witness
   instead of rediscovering it against the sleep set. Tail races
   (i >= grown) keep the conservative bounded-window offer of pid_j at
   the deepest node (Coons–Musuvathi–McKinley). Returns
   (races, alternatives inserted). *)
(* Load (pid, kind) per step from the trace buffer into the scratch
   arrays; returns the step count. Shared by the full-run fingerprint
   and the race analysis. *)
let load_steps ~scratch:s ~builder =
  let total = Trace.builder_length builder in
  if Array.length s.s_pids < total then begin
    let cap = max total (2 * Array.length s.s_pids) in
    s.s_pids <- Array.make cap 0;
    s.s_kinds <- Array.make cap Sim.Nop
  end;
  let m = ref 0 in
  Trace.iter_builder builder (function
    | Trace.Step { pid; kind; _ } ->
        s.s_pids.(!m) <- Pid.to_int pid;
        s.s_kinds.(!m) <- kind;
        incr m
    | Trace.Crash _ -> ());
  !m


let analyze ~scratch:s ~stack ~depth ~grown ~m =
  let n = s.n in
  if m = 0 then (0, 0)
  else begin
    (* reset the reusable buffers for this run *)
    (if Array.length s.vc < m then begin
       let old = Array.length s.vc in
       let cap = max m (2 * old) in
       let vc = Array.make cap [||] in
       Array.blit s.vc 0 vc 0 old;
       for j = old to cap - 1 do
         vc.(j) <- Array.make n 0
       done;
       s.vc <- vc;
       s.own <- Array.make cap 0
     end);
    for j = 0 to m - 1 do
      Array.fill s.vc.(j) 0 n 0
    done;
    for q = 0 to n - 1 do
      Array.fill s.proc_clock.(q) 0 n 0;
      Exec.Dynarray.clear s.positions.(q)
    done;
    Hashtbl.iter
      (fun _ st ->
        release_buf s st.lw_vc;
        st.lw_vc <- [||];
        st.lw_pos <- -1;
        release_buf s st.r_vc;
        st.r_vc <- [||];
        Array.fill st.r_pos 0 n (-1))
      s.objs;
    let q_st = obj_state s q_obj in
    let join dst src =
      Array.iteri (fun q v -> if v > dst.(q) then dst.(q) <- v) src
    in
    let hb i j =
      (* step i happens-before step j (i < j) *)
      s.vc.(j).(s.s_pids.(i)) >= s.own.(i)
    in
    let races = ref 0 and added = ref 0 in
    for j = 0 to m - 1 do
      let p = s.s_pids.(j) in
      let kj = s.s_kinds.(j) in
      let pj : Pid.t = p in
      (* the step's accesses: its named object (if any) read or written,
         plus the query pseudo-object (written by queries, read by all) *)
      let real_st, real_w =
        match kj with
        | Sim.Read { obj } -> (Some (obj_state s obj), false)
        | Sim.Write { obj } | Sim.Send { obj } | Sim.Recv { obj } ->
            (Some (obj_state s obj), true)
        | Sim.Query _ | Sim.Output _ | Sim.Input _ | Sim.Nop -> (None, false)
      in
      let q_w = match kj with Sim.Query _ -> true | _ -> false in
      (* candidates: last conflicting access per object, before joining
         this step's clock (so they reflect strictly earlier steps) *)
      Exec.Dynarray.clear s.cand;
      let push_cand i = if s.s_pids.(i) <> p then Exec.Dynarray.push s.cand i in
      let candidates_of st w =
        if st.lw_pos >= 0 then push_cand st.lw_pos;
        if w then
          for q = 0 to n - 1 do
            if q <> p && st.r_pos.(q) >= 0 then push_cand st.r_pos.(q)
          done
      in
      (match real_st with Some st -> candidates_of st real_w | None -> ());
      candidates_of q_st q_w;
      Exec.Dynarray.sort_uniq s.cand;
      (* compute this step's clock *)
      let clock = s.vc.(j) in
      join clock s.proc_clock.(p);
      s.own.(j) <- clock.(p) + 1;
      clock.(p) <- s.own.(j);
      let join_tables st w =
        if Array.length st.lw_vc > 0 then join clock st.lw_vc;
        if w && Array.length st.r_vc > 0 then join clock st.r_vc
      in
      (match real_st with Some st -> join_tables st real_w | None -> ());
      join_tables q_st q_w;
      (* immediate races among the candidates *)
      for ci = 0 to Exec.Dynarray.length s.cand - 1 do
        let i = Exec.Dynarray.get s.cand ci in
        let rec mediated k = k < j && ((hb i k && hb k j) || mediated (k + 1)) in
        if not (mediated (i + 1)) then begin
          incr races;
          if i >= grown then begin
            (* Both race steps sit in the deterministic round-robin
               tail. The tail of a run is a function of the window
               class representative — specifically of its rotation
               point — so reversing a tail race means finding a window
               class whose representative rotates the tail
               differently. Following bounded-search backtracking
               (Coons–Musuvathi–McKinley) the persistent-set explorer
               offered pid_j at the deepest window node for {e every}
               such race; each offer is a full re-execution, and on
               long tails those rotations dominate the search (they
               are most of the abd configs' executions). The offer is
               kept but bounded: only races whose earlier step falls
               within [tail_reach] scheduler rotations of the window
               boundary trigger it. A deeper race is reached
               step-by-step — each accepted offer rotates the tail,
               moving the race closer to the boundary in the branch
               that re-runs — so the bound trades eager rotation
               enumeration for the incremental pull, not for silence.
               The bound is a heuristic, not a theorem: the
               differential battery (test_dpor_diff) is the evidence
               it preserves verdicts, exactly as it is for the
               persistent-set rule itself. The race is still
               counted. *)
            let tail_reach = n in
            if i < grown + tail_reach && grown > 0 then begin
              let nd =
                match stack.(grown - 1) with
                | Some nd -> nd
                | None -> assert false
              in
              if Eset.mem nd.enabled pj && not (Pid.Set.mem pj nd.backtrack)
              then begin
                nd.backtrack <- Pid.Set.add pj nd.backtrack;
                incr added
              end
            end
          end
          else begin
            let nd =
              match stack.(i) with Some nd -> nd | None -> assert false
            in
            (* v: the reversing witness — j's happens-before ancestors
               among the steps after i (none of which happen-after i,
               or the race would be mediated), then j itself. Steps
               independent of j are deliberately left out: the reversal
               class only needs j's causal prefix moved before i, and a
               bystander-first v would hand the source-set insertion a
               pid that merely permutes independent steps. *)
            Exec.Dynarray.clear s.vseq;
            for k = i + 1 to j - 1 do
              if (not (hb i k)) && hb k j then Exec.Dynarray.push s.vseq k
            done;
            Exec.Dynarray.push s.vseq j;
            let vlen = Exec.Dynarray.length s.vseq in
            (* weak initial of v: a pid whose first v-step no earlier
               v-step happens-before *)
            let wi_mem q =
              let qi = Pid.to_int q in
              let rec first t =
                if t >= vlen then -1
                else
                  let pos = Exec.Dynarray.get s.vseq t in
                  if s.s_pids.(pos) = qi then t else first (t + 1)
              in
              match first 0 with
              | -1 -> false
              | t ->
                  let pos_q = Exec.Dynarray.get s.vseq t in
                  let rec clear u =
                    u >= t
                    ||
                    let pos_u = Exec.Dynarray.get s.vseq u in
                    (not (hb pos_u pos_q)) && clear (u + 1)
                  in
                  clear 0
            in
            let covered =
              Pid.Set.exists wi_mem nd.backtrack
              || Pid.Set.exists wi_mem nd.explored
              || Pid.Set.exists wi_mem nd.sleep
            in
            if not covered then begin
              let q0 : Pid.t = s.s_pids.(Exec.Dynarray.get s.vseq 0) in
              if Eset.mem nd.enabled q0 then begin
                (* q0 is a weak initial of v by construction, so the
                   single source-set insertion covers the reversal —
                   where the persistent-set explorer scheduled every
                   member of E. *)
                if not (Pid.Set.mem q0 nd.backtrack) then begin
                  nd.backtrack <- Pid.Set.add q0 nd.backtrack;
                  incr added
                end;
                (* record v as q0's wakeup sequence, window-truncated —
                   but only for pure-window races: a crossing race's v
                   prescribes tail steps, and pinning those realizes
                   boundary alignments as distinct window classes. A
                   length-1 sequence prescribes nothing beyond the
                   retargeted node itself, so it is not stored. *)
                let wlen = min vlen (depth - i) in
                if j < grown && wlen > 1 then begin
                  let ws =
                    Array.init wlen (fun t ->
                        let pos = Exec.Dynarray.get s.vseq t in
                        {
                          w_pid = s.s_pids.(pos);
                          w_kind = s.s_kinds.(pos);
                        })
                  in
                  nd.wakeups <- (q0, ws) :: List.remove_assoc q0 nd.wakeups
                end
              end
              else begin
                (* races whose q0 is not enabled at the insertion node
                   keep the lazy persistent-set rule: offering a member
                   of E lets the racing step creep into the window over
                   subsequent analyses *)
                let in_e q =
                  Pid.equal q pj
                  ||
                  let qi = Pid.to_int q in
                  clock.(qi) >= 1
                  &&
                  let c = clock.(qi) - 1 in
                  c < Exec.Dynarray.length s.positions.(qi)
                  &&
                  let pos = Exec.Dynarray.get s.positions.(qi) c in
                  pos > i && pos < j
                in
                let e_nonempty = ref false in
                Eset.iter nd.enabled (fun q _ ->
                    if (not !e_nonempty) && in_e q then e_nonempty := true);
                let e_nonempty = !e_nonempty in
                Eset.iter nd.enabled (fun q _ ->
                    if
                      ((not e_nonempty) || in_e q)
                      && not (Pid.Set.mem q nd.backtrack)
                    then begin
                      nd.backtrack <- Pid.Set.add q nd.backtrack;
                      incr added
                    end)
              end
            end
          end
        end
      done;
      (* update the access tables with this step *)
      let update st w =
        if w then begin
          (if Array.length st.lw_vc > 0 then Array.blit clock 0 st.lw_vc 0 n
           else begin
             let b = take_buf s in
             Array.blit clock 0 b 0 n;
             st.lw_vc <- b
           end);
          st.lw_pos <- j;
          (* a write orders all prior reads before it; clear them so
             later writes race with the write, not stale reads *)
          release_buf s st.r_vc;
          st.r_vc <- [||];
          Array.fill st.r_pos 0 n (-1)
        end
        else begin
          (if Array.length st.r_vc > 0 then join st.r_vc clock
           else begin
             let b = take_buf s in
             Array.blit clock 0 b 0 n;
             st.r_vc <- b
           end);
          st.r_pos.(p) <- j
        end
      in
      (match real_st with Some st -> update st real_w | None -> ());
      update q_st q_w;
      join s.proc_clock.(p) clock;
      Exec.Dynarray.push s.positions.(p) j
    done;
    (!races, !added)
  end

(* Pop to the deepest node with an unexplored, non-sleeping backtrack
   alternative; retarget it and truncate the stack there. False when the
   whole (sub)tree is exhausted. Nodes below [floor] are frozen: branch
   units pass [floor = 1] so their preset root is never retargeted —
   race analysis may offer later root siblings, but each sibling is
   covered by its own unit. *)
let rec next_candidate ~stack ~len ~floor =
  if !len <= floor then false
  else begin
    let nd = match stack.(!len - 1) with Some nd -> nd | None -> assert false in
    nd.explored <- Pid.Set.add nd.chosen nd.explored;
    let cands =
      Pid.Set.diff nd.backtrack (Pid.Set.union nd.explored nd.sleep)
    in
    match Pid.Set.min_elt_opt cands with
    | Some q ->
        nd.chosen <- q;
        (match Eset.find nd.enabled q with
        | Some k -> nd.kind <- k
        | None -> assert false);
        true
    | None ->
        len := !len - 1;
        stack.(!len) <- None;
        next_candidate ~stack ~len ~floor
  end

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let explore_loop ~pattern ~depth ~horizon ~make ~budget ~should_stop ~on_phase
    ~base ~frontier_out ~stack ~len ~floor ~presc0 ~seen_keys =
  let executions = ref 0 and blocked_runs = ref 0 in
  let deduped_runs = ref 0 in
  let races_total = ref 0 and added_total = ref 0 in
  let n = Failure_pattern.n_plus_1 pattern in
  let scratch = make_scratch ~n in
  let fp = make_fp_state ~n ~depth ~seen_keys in
  let pend = Eset.create () in
  let presc = ref presc0 in
  (match frontier_out with Some r -> r := None | None -> ());
  let snap () =
    {
      executions = !executions;
      sleep_blocked = !blocked_runs;
      deduped = !deduped_runs;
      races = !races_total;
      backtrack_points = !added_total;
    }
  in
  (* Retarget to the next runnable candidate. A candidate without a
     wakeup prescription whose retargeted prefix is trace-equivalent to
     an already-executed one is skipped outright (counted as deduped):
     the equivalent prefix reaches the same state, and the node that
     executed it covers every continuation class over its own lifetime.
     Prescribed candidates are never skipped — their prefix
     deliberately extends beyond the retargeted node. *)
  let rec advance () =
    if next_candidate ~stack ~len ~floor then begin
      let nd =
        match stack.(!len - 1) with Some nd -> nd | None -> assert false
      in
      (match List.assoc_opt nd.chosen nd.wakeups with
      | Some ws ->
          nd.wakeups <- List.remove_assoc nd.chosen nd.wakeups;
          presc := Array.sub ws 1 (Array.length ws - 1)
      | None -> presc := [||]);
      if Array.length !presc = 0 && fp_seen_candidate fp ~stack ~len:!len
      then begin
        incr deduped_runs;
        Obs.Metrics.incr m_deduped;
        advance ()
      end
      else true
    end
    else false
  in
  (* Phase profiling is aggregated per call and reported once at the
     end — the span structure (two phases, always both) is independent
     of how many executions the search needed, which keeps the exported
     span tree byte-identical across -j1/-jN unit orders. *)
  let timed = on_phase <> None in
  let exec_us = ref 0 and analyze_us = ref 0 in
  let clock () = if timed then Obs.Span.now_us () else 0 in
  let rec loop () =
    if !executions >= budget || should_stop () then begin
      (* Truncated with work remaining: the stack holds the next
         prescribed run (retargeted by [advance], or the initial
         prefix), which is exactly the state a resume must restart
         from. Exhaustion and counterexamples exit elsewhere, so a
         capture here never misrepresents a finished search. *)
      (match frontier_out with
      | Some r ->
          r :=
            Some
              (capture_frontier ~depth ~floor ~stack ~len:!len
                 ~stats:(merge_stats base (snap ()))
                 ~presc:!presc ~seen:fp.seen)
      | None -> ());
      None
    end
    else begin
      let t0 = clock () in
      let verdict, trace, builder, grown, blocked =
        run_once ~pattern ~horizon ~depth ~stack ~len:!len ~presc:!presc
          ~make ~pend
      in
      if timed then exec_us := !exec_us + (clock () - t0);
      incr executions;
      Obs.Metrics.incr m_executions;
      if blocked then begin
        incr blocked_runs;
        Obs.Metrics.incr m_sleep_blocked
      end;
      match verdict with
      | Error report -> Some (take depth (Trace.schedule trace), report)
      | Ok () ->
          let t1 = clock () in
          (* Full-run key first: when the program quiesces inside the
             window (m = grown) the run's own window key is the same
             key, and recording it first would flag the run as its own
             duplicate. *)
          let m = load_steps ~scratch ~builder in
          let dup =
            fp_full_run fp ~s_pids:scratch.s_pids ~s_kinds:scratch.s_kinds ~m
          in
          fp_record fp ~stack ~grown;
          if dup then begin
            incr deduped_runs;
            Obs.Metrics.incr m_deduped
          end;
          if (not blocked) && not dup then begin
            let races, added =
              analyze ~scratch ~stack ~depth ~grown ~m
            in
            races_total := !races_total + races;
            added_total := !added_total + added;
            Obs.Metrics.incr ~by:races m_races;
            Obs.Metrics.incr ~by:added m_backtrack_points
          end;
          if timed then analyze_us := !analyze_us + (clock () - t1);
          len := grown;
          if advance () then loop () else None
    end
  in
  let counterexample = loop () in
  (match on_phase with
  | Some f ->
      f "dpor.executions" !exec_us;
      f "dpor.race_analysis" !analyze_us
  | None -> ());
  { stats = merge_stats base (snap ()); counterexample }

let check_budget ~who budget =
  if budget < 0 then invalid_arg (who ^ ": negative budget")

let explore ~pattern ~depth ~horizon ?(budget = unbounded)
    ?(should_stop = fun () -> false) ?on_phase ?frontier_out ~make () =
  if depth < 0 then invalid_arg "Dpor.explore: negative depth";
  check_budget ~who:"Dpor.explore" budget;
  let stack = Array.make (max depth 1) None in
  let len = ref 0 in
  explore_loop ~pattern ~depth ~horizon ~make ~budget ~should_stop ~on_phase
    ~base:zero_stats ~frontier_out ~stack ~len ~floor:0 ~presc0:[||]
    ~seen_keys:[]

let root_branches ~pattern ~make () =
  let procs, _checkf = make () in
  let sched_ref = ref None in
  let seen = ref None in
  let policy ~now:_ ~enabled:_ =
    (match (!seen, !sched_ref) with
    | None, Some sched -> seen := Some (Scheduler.pending sched)
    | _ -> ());
    None
  in
  let fibers = spawn_fibers ~pattern ~procs in
  let sched = Scheduler.create ~pattern ~policy ~fibers in
  sched_ref := Some sched;
  let (_ : Scheduler.outcome) = Scheduler.run sched ~max_steps:1 in
  match !seen with None -> [] | Some pend -> pend

let explore_branch ~pattern ~depth ~horizon ?(budget = unbounded)
    ?(should_stop = fun () -> false) ?on_phase ?frontier_out ~branches ~index
    ~make () =
  if depth < 1 then invalid_arg "Dpor.explore_branch: depth must be >= 1";
  check_budget ~who:"Dpor.explore_branch" budget;
  if index < 0 || index >= List.length branches then
    invalid_arg "Dpor.explore_branch: branch index out of range";
  let chosen, kind = List.nth branches index in
  (* Earlier siblings preset as explored: the subtree runs with exactly
     the sleep sets a serial pass visiting branches left-to-right would
     give it, so equivalence classes already covered by an earlier
     branch's unit are not re-run here. *)
  let explored =
    List.filteri (fun i _ -> i < index) branches
    |> List.map fst |> Pid.Set.of_list
  in
  let stack = Array.make (max depth 1) None in
  stack.(0) <-
    Some
      {
        chosen;
        kind;
        enabled = Eset.of_list branches;
        backtrack = Pid.Set.empty;
        explored;
        wakeups = [];
        sleep = Pid.Set.empty;
      };
  let len = ref 1 in
  explore_loop ~pattern ~depth ~horizon ~make ~budget ~should_stop ~on_phase
    ~base:zero_stats ~frontier_out ~stack ~len ~floor:1 ~presc0:[||]
    ~seen_keys:[]

let resume ~pattern ~horizon ?(budget = unbounded)
    ?(should_stop = fun () -> false) ?on_phase ?frontier_out ~frontier ~make ()
    =
  check_budget ~who:"Dpor.resume" budget;
  let depth = frontier.f_depth in
  let stack = Array.make (max depth 1) None in
  List.iteri
    (fun i fn ->
      stack.(i) <-
        Some
          {
            chosen = Pid.of_index fn.fn_chosen;
            (* placeholders: the prescribed replay of the next execution
               refreshes [kind]/[enabled] in place before either is read *)
            kind = Sim.Nop;
            enabled = Eset.create ();
            backtrack = Pid.Set.of_indices fn.fn_backtrack;
            explored = Pid.Set.of_indices fn.fn_explored;
            wakeups =
              List.map
                (fun (p, ws) -> (Pid.of_index p, ws))
                fn.fn_wakeups;
            sleep = Pid.Set.of_indices fn.fn_sleep;
          })
    frontier.f_nodes;
  let len = ref (List.length frontier.f_nodes) in
  explore_loop ~pattern ~depth ~horizon ~make ~budget ~should_stop ~on_phase
    ~base:frontier.f_stats ~frontier_out ~stack ~len ~floor:frontier.f_floor
    ~presc0:frontier.f_presc ~seen_keys:frontier.f_seen
