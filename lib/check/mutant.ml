type t =
  | Abd_skip_write_back
  | Snapshot_single_collect
  | Converge_drop_phase2

let all = [ Abd_skip_write_back; Snapshot_single_collect; Converge_drop_phase2 ]

let to_string = function
  | Abd_skip_write_back -> "abd-skip-write-back"
  | Snapshot_single_collect -> "snapshot-single-collect"
  | Converge_drop_phase2 -> "converge-drop-phase2"

let of_string s =
  match List.find_opt (fun m -> String.equal (to_string m) s) all with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown mutant %S (expected one of: %s)" s
           (String.concat ", " (List.map to_string all)))

let flag = function
  | Abd_skip_write_back -> Memory.Abd.chaos_skip_write_back
  | Snapshot_single_collect -> Memory.Snapshot.chaos_single_collect
  | Converge_drop_phase2 -> Converge.chaos_drop_phase2

let with_ mutant f =
  let saved = List.map (fun m -> (m, !(flag m))) all in
  let restore () = List.iter (fun (m, v) -> flag m := v) saved in
  List.iter (fun m -> flag m := false) all;
  (match mutant with Some m -> flag m := true | None -> ());
  Fun.protect ~finally:restore f
