type t =
  | Abd_skip_write_back
  | Snapshot_single_collect
  | Converge_drop_phase2
  | Hb_timeout_never_increased
  | Hb_suspected_not_restored

let all =
  [
    Abd_skip_write_back;
    Snapshot_single_collect;
    Converge_drop_phase2;
    Hb_timeout_never_increased;
    Hb_suspected_not_restored;
  ]

let to_string = function
  | Abd_skip_write_back -> "abd-skip-write-back"
  | Snapshot_single_collect -> "snapshot-single-collect"
  | Converge_drop_phase2 -> "converge-drop-phase2"
  | Hb_timeout_never_increased -> "hb-timeout-never-increased"
  | Hb_suspected_not_restored -> "hb-suspected-not-restored"

let of_string s =
  match List.find_opt (fun m -> String.equal (to_string m) s) all with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown mutant %S (expected one of: %s)" s
           (String.concat ", " (List.map to_string all)))

let flag = function
  | Abd_skip_write_back -> Memory.Abd.chaos_skip_write_back
  | Snapshot_single_collect -> Memory.Snapshot.chaos_single_collect
  | Converge_drop_phase2 -> Converge.chaos_drop_phase2
  | Hb_timeout_never_increased -> Detectors.Heartbeat.chaos_timeout_never_increased
  | Hb_suspected_not_restored -> Detectors.Heartbeat.chaos_suspected_not_restored

(* The flags are process-global, but scopes overlap: the serve daemon
   runs concurrent [check_unit] requests that each wrap their
   exploration in [with_]. A plain save/restore would let the first
   scope to finish switch the flags off under a scope still running
   (the fabric's differential chaos test caught exactly that as a race
   statistic drifting on the violating pattern). Instead, scopes with
   the {e same} configuration share one activation via a refcount, and
   a scope with a different configuration waits its turn. *)
let mu = Mutex.create ()
let cv = Condition.create ()
let holders = ref 0
let active : t option ref = ref None

let with_ mutant f =
  Mutex.lock mu;
  while !holders > 0 && !active <> mutant do
    Condition.wait cv mu
  done;
  if !holders = 0 then begin
    List.iter (fun m -> flag m := false) all;
    (match mutant with Some m -> flag m := true | None -> ());
    active := mutant
  end;
  incr holders;
  Mutex.unlock mu;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock mu;
      decr holders;
      if !holders = 0 then begin
        List.iter (fun m -> flag m := false) all;
        active := None
      end;
      Condition.broadcast cv;
      Mutex.unlock mu)
