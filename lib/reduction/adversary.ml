open Kernel
open Memory

type instance = {
  fibers : Pid.t -> (unit -> unit) list;
  read_output : Pid.t -> Pid.Set.t option;
}

type candidate = {
  cand_name : string;
  make : n_plus_1:int -> f:int -> upsilon:Pid.Set.t Sim.source -> instance;
}

type phase = { index : int; output : Pid.Set.t; at_time : int }

type verdict =
  | Never_stabilizes of { flips : int; history : phase list }
  | Stuck of { on : Pid.Set.t; phase : int; history : phase list }

let pinned_upsilon ~n_plus_1 =
  let u = Pid.Set.of_list (List.filteri (fun i _ -> i < n_plus_1 - 1) (Pid.all ~n_plus_1)) in
  {
    Sim.name = "pinned-upsilon";
    sample = (fun _ _ -> u);
    render = Pid.Set.to_string;
  }

(* One scheduling mode per stage of a phase. *)
type mode =
  | Warmup (* round-robin over everyone *)
  | One_step_each of Pid.t list (* the proof's "every process takes one step" *)
  | Restricted of Pid.Set.t (* only Π − L runs *)

let run candidate ~n_plus_1 ~f ~max_phases ~phase_budget =
  if f < 2 || f > n_plus_1 - 1 then
    invalid_arg "Adversary.run: theorem needs 2 <= f <= n";
  let upsilon = pinned_upsilon ~n_plus_1 in
  let inst = candidate.make ~n_plus_1 ~f ~upsilon in
  let pattern = Failure_pattern.no_failures ~n_plus_1 in
  let mode = ref Warmup in
  let rr = Policy.round_robin () in
  let policy ~now ~enabled =
    match !mode with
    | Warmup -> rr ~now ~enabled
    | One_step_each pending -> (
        match List.filter (fun p -> List.mem p enabled) pending with
        | [] -> None (* handled by the driver *)
        | p :: _ -> Some p)
    | Restricted allowed -> (
        let eligible = List.filter (fun p -> Pid.Set.mem p allowed) enabled in
        match eligible with
        | [] -> None
        | l ->
            (* round-robin within the allowed set *)
            rr ~now ~enabled:l)
  in
  let fibers =
    Pid.all ~n_plus_1
    |> List.concat_map (fun pid ->
           List.mapi
             (fun j body ->
               Fiber.create ~pid ~name:(Printf.sprintf "cand-p%d-t%d" pid j) body)
             (inst.fibers pid))
  in
  let sched = Scheduler.create ~pattern ~policy ~fibers in
  (* Step the scheduler while tracking One_step_each progress. *)
  let step_once () =
    match Scheduler.step sched with
    | `Stepped pid ->
        (match !mode with
        | One_step_each pending ->
            mode := One_step_each (List.filter (fun p -> not (Pid.equal p pid)) pending)
        | Warmup | Restricted _ -> ());
        true
    | `Stopped _ -> false
  in
  let output_among among =
    Pid.Set.elements among
    |> List.fold_left
         (fun acc pid ->
           match acc with
           | Some _ -> acc
           | None -> inst.read_output pid)
         None
  in
  let full = Pid.Set.full ~n_plus_1 in
  (* Phase 0: run everyone until some output exists. *)
  let rec warmup budget =
    if budget = 0 then None
    else
      match output_among full with
      | Some l -> Some l
      | None -> if step_once () then warmup (budget - 1) else None
  in
  let history = ref [] in
  let record index output =
    history := { index; output; at_time = Scheduler.now sched } :: !history
  in
  let verdict =
    match warmup phase_budget with
    | None ->
        (* The candidate never produced an output at all: treat as stuck on
           the empty set (it certainly does not implement Ωᶠ). *)
        Stuck { on = Pid.Set.empty; phase = 0; history = [] }
    | Some l0 ->
      record 0 l0;
      let rec phases index l =
        if index >= max_phases then
          Never_stabilizes { flips = index; history = List.rev !history }
        else begin
          (* every process takes exactly one step *)
          mode := One_step_each (Pid.all ~n_plus_1);
          let rec drain guard =
            match !mode with
            | One_step_each [] -> ()
            | One_step_each _ when guard > 0 ->
                ignore (step_once ());
                drain (guard - 1)
            | One_step_each _ | Warmup | Restricted _ -> ()
          in
          drain (4 * n_plus_1);
          (* then only Π − L runs until some *running* process shows an
             output ≠ L (the proof's L_{i+1} is the output of a process
             taking steps after R_i — an already-differing output counts) *)
          let allowed = Pid.Set.diff full l in
          mode := Restricted allowed;
          let differing () =
            Pid.Set.elements allowed
            |> List.fold_left
                 (fun acc p ->
                   match acc with
                   | Some _ -> acc
                   | None -> (
                       match inst.read_output p with
                       | Some now when not (Pid.Set.equal now l) -> Some now
                       | Some _ | None -> None))
                 None
          in
          let rec wait budget =
            match differing () with
            | Some l' -> `Flip l'
            | None ->
                if budget = 0 then `Stuck
                else if step_once () then wait (budget - 1)
                else `Stuck
          in
          match wait phase_budget with
          | `Flip l' ->
              record (index + 1) l';
              phases (index + 1) l'
          | `Stuck -> Stuck { on = l; phase = index; history = List.rev !history }
        end
      in
      phases 0 l0
  in
  (* the adversary steps the scheduler manually, so the buffered step
     counters are folded in here rather than at a [run] exit *)
  Scheduler.flush_metrics sched;
  verdict

let flips = function
  | Never_stabilizes { flips; _ } -> flips
  | Stuck { phase; _ } -> phase

let pp_verdict ppf = function
  | Never_stabilizes { flips; _ } ->
      Format.fprintf ppf "never stabilizes (%d flips forced)" flips
  | Stuck { on; phase; _ } ->
      Format.fprintf ppf
        "stuck on %a at phase %d: crashing that set yields a run where the \
         stable output contains no correct process"
        Pid.Set.pp on phase

module Candidates = struct
  (* Pad a set to exactly [f] members with the smallest ids not in it. *)
  let pad_to ~n_plus_1 ~f s =
    let rec add s = function
      | [] -> s
      | p :: rest ->
          if Pid.Set.cardinal s >= f then s
          else if Pid.Set.mem p s then add s rest
          else add (Pid.Set.add p s) rest
    in
    let trimmed =
      (* keep the f smallest if oversize *)
      Pid.Set.elements s |> List.filteri (fun i _ -> i < f) |> Pid.Set.of_list
    in
    add trimmed (Pid.all ~n_plus_1)

  let make_simple name body_of =
    {
      cand_name = name;
      make =
        (fun ~n_plus_1 ~f ~upsilon ->
          let outputs = Array.make n_plus_1 None in
          let set_output me s =
            Sim.atomic
              (Sim.Output { label = "omega_f-out"; value = Pid.Set.to_string s })
              (fun _ -> outputs.(me) <- Some s)
          in
          {
            fibers = (fun pid -> [ body_of ~n_plus_1 ~f ~upsilon ~set_output ~me:pid ]);
            read_output = (fun pid -> outputs.(pid));
          });
    }

  let complement_pad =
    make_simple "complement-pad" (fun ~n_plus_1 ~f ~upsilon ~set_output ~me () ->
        while true do
          let u = Sim.query upsilon in
          let c = Pid.Set.complement ~n_plus_1 u in
          set_output me (pad_to ~n_plus_1 ~f c)
        done)

  let static =
    make_simple "static" (fun ~n_plus_1 ~f ~upsilon:_ ~set_output ~me () ->
        let l = pad_to ~n_plus_1 ~f Pid.Set.empty in
        set_output me l;
        while true do
          Sim.yield ()
        done)

  let top_movers =
    {
      cand_name = "top-movers";
      make =
        (fun ~n_plus_1 ~f ~upsilon ->
          let outputs = Array.make n_plus_1 None in
          let stamps =
            Register.array ~name:"cand.ts" ~size:n_plus_1 ~init:(fun _ -> 0)
          in
          let body me () =
            while true do
              Sim.atomic
                (Sim.Write { obj = Register.name stamps.(me) })
                (fun _ ->
                  Register.poke stamps.(me) (Register.peek stamps.(me) + 1));
              let view = Register.collect stamps in
              let _ = Sim.query upsilon in
              let ranked =
                List.sort
                  (fun (p1, s1) (p2, s2) ->
                    if s1 <> s2 then Int.compare s2 s1 else Pid.compare p1 p2)
                  (List.mapi (fun p s -> (p, s)) (Array.to_list view))
              in
              let l =
                ranked
                |> List.filteri (fun i _ -> i < f)
                |> List.map fst |> Pid.Set.of_list
              in
              Sim.atomic
                (Sim.Output
                   { label = "omega_f-out"; value = Pid.Set.to_string l })
                (fun _ -> outputs.(me) <- Some l)
            done
          in
          {
            fibers = (fun pid -> [ body pid ]);
            read_output = (fun pid -> outputs.(pid));
          });
    }

  let rotation =
    make_simple "rotation" (fun ~n_plus_1 ~f ~upsilon:_ ~set_output ~me () ->
        let counter = ref 0 in
        while true do
          let start = !counter mod n_plus_1 in
          let l =
            List.init f (fun i -> (start + i) mod n_plus_1) |> Pid.Set.of_list
          in
          set_output me l;
          incr counter;
          Sim.yield ()
        done)

  (* Complement padded with a filler that rotates with the process's own
     step count — "hedge by cycling the padding". *)
  let complement_rotate =
    make_simple "complement-rotate"
      (fun ~n_plus_1 ~f ~upsilon ~set_output ~me () ->
        let counter = ref 0 in
        while true do
          incr counter;
          let u = Sim.query upsilon in
          let c = Pid.Set.complement ~n_plus_1 u in
          let rec fill s offset =
            if Pid.Set.cardinal s >= f then s
            else
              let cand = (!counter + offset) mod n_plus_1 in
              fill (Pid.Set.add cand s) (offset + 1)
          in
          set_output me (fill c 0)
        done)

  (* Complement-pad that refreshes its output only every [period] of its
     own steps — a slow reactor. *)
  let slow_complement =
    make_simple "slow-complement"
      (fun ~n_plus_1 ~f ~upsilon ~set_output ~me () ->
        let period = 50 in
        let counter = ref 0 in
        while true do
          incr counter;
          let u = Sim.query upsilon in
          if !counter mod period = 1 then
            set_output me (pad_to ~n_plus_1 ~f (Pid.Set.complement ~n_plus_1 u))
        done)

  let all =
    [
      complement_pad;
      static;
      top_movers;
      rotation;
      complement_rotate;
      slow_complement;
    ]
end
