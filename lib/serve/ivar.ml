type 'a t = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable cell : 'a option;
}

let create () = { mu = Mutex.create (); cv = Condition.create (); cell = None }

let fill t v =
  Mutex.lock t.mu;
  match t.cell with
  | Some _ ->
      Mutex.unlock t.mu;
      invalid_arg "Ivar.fill: already filled"
  | None ->
      t.cell <- Some v;
      Condition.broadcast t.cv;
      Mutex.unlock t.mu

let read t =
  Mutex.lock t.mu;
  let rec wait () =
    match t.cell with
    | Some v ->
        Mutex.unlock t.mu;
        v
    | None ->
        Condition.wait t.cv t.mu;
        wait ()
  in
  wait ()

let peek t =
  Mutex.lock t.mu;
  let v = t.cell in
  Mutex.unlock t.mu;
  v
