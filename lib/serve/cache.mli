(** A content-addressed cache of rendered response payloads.

    Every [run] / [check] / [sweep] the daemon serves is a pure
    function of its canonical request, so the rendered payload can be
    stored once and replayed byte-for-byte. The cache key is the MD5
    digest of a {e canonical request text} — method name plus the
    params object with keys recursively sorted, duplicate keys reduced
    to their first binding (the one {!Obs.Json.member} reads), and
    params that provably cannot change the payload dropped ([jobs] for
    [run] and [check], whose payloads are [-j1]/[-jN] byte-identical by
    the determinism contract; [sweep] keeps [jobs] because the
    [wfde-sweep/1] document embeds it) — prefixed by a build/schema
    {!fingerprint} so a new wire schema, payload schema, or cache
    format invalidates every old entry automatically.

    Storage is an in-memory LRU of rendered payload {e strings} (never
    re-rendered JSON — bytes in are bytes out), optionally backed by an
    on-disk content-addressed store: one file per key under [dir],
    written atomically (temp file + [rename]) as a header line plus the
    raw payload bytes. A corrupt, truncated, or wrong-key file is
    treated as a miss and unlinked; a disk hit is promoted into the
    LRU. Entries evicted from memory stay on disk.

    Lookups are {e single-flight}: the first thread to miss on a key
    gets a {!ticket} obliging it to compute and {!resolve}; concurrent
    lookups for the same key get the leader's {!Ivar} and block for the
    same bytes instead of recomputing. Errors are never cached — a
    failed ticket just wakes the waiters with the error and clears the
    slot.

    All operations are thread-safe. *)

type t

type config = {
  capacity : int;
      (** max in-memory entries; [0] disables the cache entirely *)
  dir : string option;  (** on-disk store root; [None] = memory only *)
}

val default_config : config
(** 256 in-memory entries, no disk store. *)

val disabled : config
(** [{ capacity = 0; dir = None }] — every lookup is a non-coalescing
    miss and {!resolve} stores nothing. *)

val create : ?config:config -> unit -> t
(** [dir], when given, is created (with parents) if missing. *)

val enabled : t -> bool
val config : t -> config

(** {1 Keys} *)

val fingerprint : string
(** The build/schema fingerprint folded into every key: cache format
    version, wire and payload schema ids, and the compiler version.
    Bump {e cache_generation} in the implementation whenever a payload
    renderer changes bytes without a schema bump. *)

val cacheable : string -> bool
(** Methods whose payloads are pure functions of the canonical request:
    [run], [check], [sweep]. *)

val canonical : meth:string -> params:(string * Obs.Json.t) list -> string
(** The canonical request text hashed into the key (exposed for
    tests). *)

val key : meth:string -> params:(string * Obs.Json.t) list -> string
(** 32 lowercase hex characters:
    [md5 (fingerprint ^ "\n" ^ canonical)]. *)

(** {1 Single-flight lookup} *)

type ticket
(** The obligation to compute a missed key and {!resolve} it exactly
    once — every exit path of the leader must resolve, or coalesced
    waiters block forever. *)

type outcome =
  | Hit of string  (** rendered payload, from memory *)
  | Disk_hit of string  (** rendered payload, loaded and promoted *)
  | Wait of (string, Proto.error) result Ivar.t
      (** another thread is computing this key; read the ivar *)
  | Compute of ticket  (** a miss this caller must compute *)

val lookup : t -> key:string -> outcome
(** On a disabled cache every lookup returns [Compute] (no coalescing,
    nothing stored) so callers need no special case. *)

val resolve : t -> ticket -> (string, Proto.error) result -> unit
(** Publish the leader's result: [Ok payload] is stored (memory, and
    disk when configured) and all waiters wake with it; [Error] wakes
    the waiters and clears the in-flight slot without caching. A ticket
    orphaned by {!clear} still wakes its waiters. *)

(** {1 Introspection and control} *)

type stats = {
  entries : int;  (** in-memory entries *)
  bytes : int;  (** summed payload bytes in memory *)
  capacity : int;
  hits : int;
  misses : int;
  coalesced : int;  (** lookups that joined an in-flight compute *)
  evictions : int;  (** LRU evictions (not clears) *)
  disk_hits : int;
  disk_errors : int;  (** corrupt/truncated/unwritable disk entries *)
  stores : int;  (** successful resolves with [Ok] *)
  clears : int;
}

val stats : t -> stats
val stats_json : t -> Obs.Json.t
(** The [cache] RPC payload: stats plus [enabled] and [dir]. *)

val clear : t -> unit
(** Drop every in-memory entry and delete every entry file (and stray
    temp file) under [dir]. In-flight computes are left to resolve;
    their results are stored as fresh entries. *)
