(** Request execution: the mapping from a parsed {!Proto.request} to a
    deterministic JSON payload, shared between the daemon's worker
    fleet and (for the rendering helpers) the one-shot CLI.

    Payload contracts — the reason the daemon and the CLI can be
    diffed byte-for-byte:

    - [run]: [{"schema":"wfde-run/1","ok":...,"experiments":[...],
      "output":"..."}] where [output] is {e exactly} the stdout of
      [wfde run <ids> --scale K] (both sides print via {!run_text});
    - [check]: exactly the document [wfde check --json] writes
      ({!Wfde.Harness.check_outcome_json});
    - [sweep]: exactly the [wfde-sweep/1] document [wfde sweep --json]
      writes (both sides build it via {!sweep_json}; its
      [*wall_seconds] fields are timing and excluded from determinism
      comparisons);
    - [stats]: exactly the metrics document [wfde stats --json] writes
      (registry reset, experiments run, snapshot rendered);
    - [sleep]: [{"slept_ms":N}] — a diagnostic method for exercising
      queueing, deadlines, and drain without burning CPU;
    - [exp]: one sweep work unit — a single experiment driver —
      answering [{"schema":"wfde-exp/1","id":...,"ok":...,
      "table":...,"wall_seconds":...}] where [table] is exactly the
      outcome's segment of [wfde sweep] stdout ({!exp_text});
    - [check_unit]: one exhaustive-check work unit — a single
      (pattern index, optional root-branch index) DPOR exploration,
      optionally budget-sliced — answering
      [{"schema":"wfde-unit/1","done":...,"stats":{...},
      "counterexample":...,"frontier":...}]. A slice truncated by its
      [budget] (or the request deadline) answers [done = false] with a
      [wfde-frontier/1] document; posting that document back in the
      [frontier] parameter resumes the search exactly
      ({!Wfde.Dpor.resume}), with cumulative stats. These two unit
      methods are the fabric coordinator's work language
      ([lib/fabric]); they are deliberately not cacheable.

    [health], [metrics], and [cache] are answered by the daemon
    front-end (they read live daemon state) and are rejected here with
    [unknown_method].

    Deadlines are cooperative: the probe is polled between experiments
    for [run]/[sweep]/[stats], before each DPOR execution for [check]
    (via {!Wfde.Harness.check_exhaustive}'s [should_stop]), and every
    tick for [sleep]. An expired probe yields a structured
    [deadline_exceeded] error and the worker slot is immediately
    reusable — cancellation never kills a domain. *)

val handle :
  ?deadline:(unit -> bool) ->
  ?spans:Obs.Span.scope ->
  Proto.request ->
  (Obs.Json.t, Proto.error) result
(** Execute one request. [deadline] returns [true] once the request's
    deadline has expired (default: never). Must be cheap and
    domain-safe (it is polled from {!Exec.Pool} workers when the
    request asks for [jobs > 1]). Never raises: internal exceptions
    come back as [{code = Internal; _}].

    [spans] (default {!Obs.Span.null}) records method-specific child
    spans under the caller's current parent: one [exp.<id>] per
    experiment driver for [run]/[sweep]/[stats], the
    {!Wfde.Harness.check_exhaustive} span tree for [check]
    ([check.probe], per-unit [dpor.*] spans with phase children), and
    [sleep.wait] for [sleep] (truncated when the deadline cancels the
    sleep). Span structure depends only on the request, never on
    timing — the payload bytes are unchanged whether or not a scope is
    supplied. *)

(** {1 Shared renderers}

    Used by both the service handlers and [bin/wfde_cli.ml], so the
    daemon's payloads match the CLI byte-for-byte by construction. *)

val run_text : Wfde.Experiments.outcome list -> string
(** The stdout of [wfde run]: each outcome's table, then the
    ["all N experiment claims hold"] or ["FAILED claims: ..."] line. *)

val sweep_text : Wfde.Experiments.outcome list -> string
(** The stdout of [wfde sweep]: the tables, then the failed-claims
    line only when something failed. Identically
    [String.concat "" (List.map exp_text outcomes) ^ failed_claims_line
    failed_ids] — the identity the fabric's sharded merge relies on. *)

val exp_text : Wfde.Experiments.outcome -> string
(** One outcome's table segment (its slice of {!sweep_text}). *)

val failed_claims_line : string list -> string
(** The trailing ["FAILED claims: ..."] line for the given failed ids;
    [""] when none failed. *)

val sweep_json :
  jobs:int ->
  scale:int ->
  (string * Wfde.Experiments.outcome * float) list ->
  Obs.Json.t
(** The [wfde-sweep/1] document for [(id, outcome, wall_seconds)]
    rows. *)

val sweep_json_rows :
  jobs:int -> scale:int -> (string * bool * float) list -> Obs.Json.t
(** {!sweep_json} from already-flattened [(id, ok, wall_seconds)] rows
    (what the fabric coordinator holds after merging [exp] units). *)

val check_text : Wfde.Harness.check_outcome -> string
(** The stdout of [wfde check]: the summary line, then the violation
    block or ["no violation found"]. Shared by the CLI and the fabric
    coordinator so [wfde fabric check] output is byte-identical to the
    serial command. *)

val unknown_ids : string list -> string list
(** The subset of ids {!Wfde.Experiments.by_id} does not know. *)
