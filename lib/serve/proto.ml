module J = Obs.Json

let schema = "wfde-rpc/1"

type error_code =
  | Bad_request
  | Unknown_method
  | Oversized
  | Queue_full
  | Deadline_exceeded
  | Shutting_down
  | Internal

let code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_method -> "unknown_method"
  | Oversized -> "oversized"
  | Queue_full -> "queue_full"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let all_codes =
  [
    Bad_request;
    Unknown_method;
    Oversized;
    Queue_full;
    Deadline_exceeded;
    Shutting_down;
    Internal;
  ]

let code_of_string s =
  List.find_opt (fun c -> code_to_string c = s) all_codes

(* CLI exit codes, sysexits-flavored: 124 matches timeout(1)'s
   convention for deadline kills, 75 is EX_TEMPFAIL (retry later). *)
let exit_code = function
  | Deadline_exceeded -> 124
  | Queue_full -> 75
  | Bad_request | Unknown_method | Oversized | Shutting_down | Internal -> 1

type error = { code : error_code; message : string }

let err code fmt = Printf.ksprintf (fun message -> { code; message }) fmt

type request = {
  id : J.t;
  meth : string;
  params : (string * J.t) list;
  deadline_ms : int option;
  trace : string option;
}

let known_request_fields = [ "id"; "method"; "params"; "deadline_ms"; "trace" ]

let parse_request ~max_bytes line =
  let fail ?(id = J.Null) e = Error (e, id) in
  if String.length line > max_bytes then
    fail
      (err Oversized "request line is %d bytes; the limit is %d"
         (String.length line) max_bytes)
  else
    match J.of_string line with
    | Error e -> fail (err Bad_request "request is not valid JSON: %s" e)
    | Ok (J.Obj fields) -> (
        (* salvage the id first so every later error can echo it *)
        let id =
          match List.assoc_opt "id" fields with
          | Some (J.String _ as v) | Some (J.Int _ as v) -> v
          | _ -> J.Null
        in
        let fail e = fail ~id e in
        match
          List.find_opt
            (fun (k, _) -> not (List.mem k known_request_fields))
            fields
        with
        | Some (k, _) -> fail (err Bad_request "unknown request field %S" k)
        | None -> (
            match List.assoc_opt "id" fields with
            | Some (J.String _) | Some (J.Int _) | None -> (
                match List.assoc_opt "method" fields with
                | None -> fail (err Bad_request "missing \"method\" field")
                | Some (J.String meth) -> (
                    let params_r =
                      match List.assoc_opt "params" fields with
                      | None -> Ok []
                      | Some (J.Obj kvs) -> Ok kvs
                      | Some _ ->
                          Error
                            (err Bad_request "\"params\" must be an object")
                    in
                    let trace_r =
                      match List.assoc_opt "trace" fields with
                      | None -> Ok None
                      | Some (J.String s) when s <> "" -> Ok (Some s)
                      | Some _ ->
                          Error
                            (err Bad_request
                               "\"trace\" must be a non-empty string")
                    in
                    match (params_r, trace_r) with
                    | Error e, _ | _, Error e -> fail e
                    | Ok params, Ok trace -> (
                        match List.assoc_opt "deadline_ms" fields with
                        | None ->
                            Ok { id; meth; params; deadline_ms = None; trace }
                        | Some (J.Int ms) when ms > 0 ->
                            Ok { id; meth; params; deadline_ms = Some ms; trace }
                        | Some _ ->
                            fail
                              (err Bad_request
                                 "\"deadline_ms\" must be a positive integer")))
                | Some _ ->
                    fail (err Bad_request "\"method\" must be a string"))
            | Some _ ->
                fail (err Bad_request "\"id\" must be a string or an integer")))
    | Ok _ -> fail (err Bad_request "request must be a JSON object")

let request_to_json r =
  List.concat
    [
      (match r.id with J.Null -> [] | id -> [ ("id", id) ]);
      [ ("method", J.String r.meth) ];
      (match r.params with [] -> [] | ps -> [ ("params", J.Obj ps) ]);
      (match r.deadline_ms with
      | None -> []
      | Some ms -> [ ("deadline_ms", J.Int ms) ]);
      (match r.trace with
      | None -> []
      | Some tr -> [ ("trace", J.String tr) ]);
    ]
  |> fun fields -> J.Obj fields

let envelope ~id ~wall_ms ~ok rest =
  J.Obj
    (("schema", J.String schema)
     :: ("id", id)
     :: ("ok", J.Bool ok)
     :: rest
    @ [ ("wall_ms", J.Float wall_ms) ])

let ok_response ~id ~wall_ms payload =
  envelope ~id ~wall_ms ~ok:true [ ("payload", payload) ]

(* Splices already-rendered payload bytes into the envelope, producing
   exactly the bytes of [J.to_string (ok_response ...)] — the cache
   stores rendered payload strings, and this keeps a replayed hit
   byte-identical to the miss that populated it without re-parsing. *)
let ok_response_rendered ~id ~wall_ms payload =
  Printf.sprintf {|{"schema":%s,"id":%s,"ok":true,"payload":%s,"wall_ms":%s}|}
    (J.to_string (J.String schema))
    (J.to_string id) payload
    (J.to_string (J.Float wall_ms))

let error_response ~id ~wall_ms e =
  envelope ~id ~wall_ms ~ok:false
    [
      ( "error",
        J.Obj
          [
            ("code", J.String (code_to_string e.code));
            ("message", J.String e.message);
          ] );
    ]

type response = {
  resp_id : J.t;
  wall_ms : float;
  result : (J.t, error) result;
}

let parse_response line =
  match J.of_string line with
  | Error e -> Error (Printf.sprintf "response is not valid JSON: %s" e)
  | Ok doc -> (
      match J.member "schema" doc with
      | Some (J.String s) when s = schema -> (
          let resp_id = Option.value ~default:J.Null (J.member "id" doc) in
          let wall_ms =
            match Option.bind (J.member "wall_ms" doc) J.to_float with
            | Some w -> w
            | None -> 0.0
          in
          match J.member "ok" doc with
          | Some (J.Bool true) -> (
              match J.member "payload" doc with
              | Some payload -> Ok { resp_id; wall_ms; result = Ok payload }
              | None -> Error "ok response without \"payload\"")
          | Some (J.Bool false) -> (
              match J.member "error" doc with
              | Some e -> (
                  let code =
                    Option.bind
                      (Option.bind (J.member "code" e) J.to_str)
                      code_of_string
                  in
                  let message =
                    Option.value ~default:""
                      (Option.bind (J.member "message" e) J.to_str)
                  in
                  match code with
                  | Some code ->
                      Ok { resp_id; wall_ms; result = Error { code; message } }
                  | None -> Error "error response without a known \"code\"")
              | None -> Error "error response without \"error\"")
          | _ -> Error "response without a boolean \"ok\"")
      | _ -> Error "response is not a wfde-rpc/1 envelope")
