(** The wfde service daemon: a Unix-domain-socket front-end around
    {!Engine} + {!Service}.

    One accept-loop thread hands each connection to its own thread; a
    connection carries newline-delimited {!Proto} requests, answered in
    order (pipelined lines queue behind each other — concurrency comes
    from concurrent {e connections}). Work methods are submitted to the
    bounded engine queue and rejected immediately with [queue_full]
    when it is at capacity; [health], [metrics], and [cache] are
    answered inline by the connection thread so they keep working while
    the fleet is busy or draining.

    [run], [check], and [sweep] are dispatched through a
    content-addressed result {!Cache} {e before} the engine queue:
    a hit replays the stored rendered bytes from the connection thread
    — byte-identical to the response that populated it, served even
    when the fleet is saturated or draining — and concurrent identical
    misses are coalesced into one compute (single-flight). A miss
    arriving after drain began still gets [shutting_down].

    Shutdown ({!stop}, or SIGTERM/SIGINT under {!run_forever}) is a
    graceful drain: the listening socket closes first (new connections
    refused), connection threads finish the request they are on —
    including requests already accepted into the queue — then close,
    and finally the worker fleet is joined. Requests {e arriving} after
    the drain began get a structured [shutting_down] error.

    Request accounting lands in the calling process's {!Obs.Metrics}
    registry (the daemon serializes its own access — connection threads
    share one registry):
    - [serve.requests{method=M}] / [serve.responses{code=C}] counters,
    - [serve.latency_ms{method=M}] histograms,
    - [serve.queue.depth], [serve.in_flight], [serve.connections]
      gauges. *)

type t

val start :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache:Cache.config ->
  ?max_request_bytes:int ->
  ?trace:Obs.Span.sink ->
  ?slow_ms:float ->
  ?slow_out:out_channel ->
  socket:string ->
  unit ->
  t
(** Bind [socket] (an existing socket file is replaced), spawn the
    worker fleet and the accept thread, and return. [max_request_bytes]
    (default 1 MiB) bounds one request line; longer lines get an
    [oversized] error and the connection is closed. Raises
    [Unix.Unix_error] when the socket cannot be bound.

    [cache] (default {!Cache.default_config}: 256 in-memory entries,
    no disk store) configures the result cache; {!Cache.disabled}
    turns it off entirely. With a [dir], entries survive daemon
    restarts. Cache traffic surfaces as [serve.cache.*] counters
    ([hits] / [misses] / [coalesced] / [disk_hits] / [evictions]) and
    gauges ([entries] / [bytes]) in the daemon registry, as
    [cache.hit] / [cache.miss] / [cache.disk_hit] / [cache.coalesced]
    spans in traced requests, and through the [cache] RPC
    ([{"method":"cache","params":{"op":"stats"|"clear"}}]).

    [trace] (default absent: tracing off) is where request span scopes
    are absorbed. A request is traced only when the sink is present
    {e and} the request carries a [trace] id; each traced request
    exports a [request] root with [parse] / [queue_wait] / [dispatch] /
    [execute] / [render] children plus {!Service.handle}'s
    method-specific subtree, and any span still open when the request
    errors or is cancelled is flushed with [truncated = true]. Response
    payload bytes are identical with tracing on or off.

    Tracing changes one drain-ordering detail: a {e deadline-bearing}
    request that is already executing when {!stop} begins is cancelled
    at its next deadline poll (structured [deadline_exceeded], spans
    truncated) — a draining daemon cannot honor latency promises.
    Requests without a deadline still run to completion, as before.

    [slow_ms] (default absent: disabled) logs one structured JSON line
    — [{"event":"slow_request","method":...,"trace":...,"wall_ms":...,
    "queue_depth":...,"in_flight":...}] — to [slow_out] (default
    [stderr]) for every request at least that slow. *)

val socket_path : t -> string

val stop : t -> unit
(** Graceful drain, as described above. Blocks until every connection
    thread and worker domain has exited; idempotent. *)

val run_forever : t -> unit
(** Park the calling thread until SIGTERM or SIGINT arrives, then
    {!stop}. Installs handlers for both signals (and ignores SIGPIPE,
    which {!start} already did). *)

(** {1 Introspection} (what [health] reports; handy in tests) *)

val queue_depth : t -> int
val in_flight : t -> int
val connections : t -> int
val draining : t -> bool

val dispatched : t -> int
(** Jobs accepted into the engine queue since start — cache hits never
    increment it, which is what the coalescing tests assert. *)

val cache_stats : t -> Cache.stats
(** Live result-cache counters (all zero when the cache is disabled). *)
