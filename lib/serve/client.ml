type t = { fd : Unix.file_descr; mutable pending : string }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; pending = "" }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let read_line t =
  let chunk = Bytes.create 8192 in
  let rec go () =
    match String.index_opt t.pending '\n' with
    | Some i ->
        let line = String.sub t.pending 0 i in
        t.pending <-
          String.sub t.pending (i + 1) (String.length t.pending - i - 1);
        Ok line
    | None -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "connection closed before a full response line arrived"
        | n ->
            t.pending <- t.pending ^ Bytes.sub_string chunk 0 n;
            go ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "read failed: %s" (Unix.error_message e)))
  in
  go ()

let call t req =
  match
    write_all t.fd (Obs.Json.to_string (Proto.request_to_json req) ^ "\n")
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "write failed: %s" (Unix.error_message e))
  | () -> (
      match read_line t with
      | Error _ as e -> e
      | Ok line -> Proto.parse_response line)

let rpc ~socket req =
  match connect ~socket with
  | Error _ as e -> e
  | Ok t ->
      Fun.protect ~finally:(fun () -> close t) (fun () -> call t req)
