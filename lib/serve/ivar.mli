(** A write-once synchronization cell.

    The connection thread that accepted a request parks on {!read}
    while a worker domain computes the response and calls {!fill}.
    Works across domains and threads (mutex + condition variable). *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Raises [Invalid_argument] on a second fill — a filled cell is a
    completed request; two completions is a bug in the engine. *)

val read : 'a t -> 'a
(** Block until filled; returns immediately on an already-filled
    cell. *)

val peek : 'a t -> 'a option
(** Non-blocking: [None] while unfilled. *)
