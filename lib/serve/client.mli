(** A blocking client for one daemon connection.

    Requests on one connection are answered strictly in order, so the
    client is a simple lock-step pair: write one request line, read one
    response line. For concurrency, open more connections. *)

type t

val connect : socket:string -> (t, string) result
(** Connect to the daemon's Unix socket. [Error] is a human-readable
    reason (daemon down, bad path). *)

val close : t -> unit

val call : t -> Proto.request -> (Proto.response, string) result
(** One round trip. [Error] is a transport-level failure (connection
    closed mid-response, malformed envelope); a server-side rejection
    is an [Ok] response carrying [result = Error _]. *)

val rpc : socket:string -> Proto.request -> (Proto.response, string) result
(** One-shot convenience: connect, {!call}, close. *)
