type t = {
  q : (unit -> unit) Jobq.t;
  fleet : unit Domain.t array;
  inflight : int Atomic.t;
  dispatched : int Atomic.t;
  draining : bool Atomic.t;
  drain_mu : Mutex.t;
  mutable drained : bool;
}

let worker_loop q inflight dispatched =
  let rec go () =
    match Jobq.pop q with
    | None -> ()
    | Some job ->
        Atomic.incr dispatched;
        Atomic.incr inflight;
        (try job () with _ -> ());
        Atomic.decr inflight;
        go ()
  in
  go ()

let start ?(workers = 2) ?(queue_capacity = 64) () =
  let workers = max 1 (min 64 workers) in
  let q = Jobq.create ~capacity:queue_capacity in
  let inflight = Atomic.make 0 in
  let dispatched = Atomic.make 0 in
  {
    q;
    fleet =
      Array.init workers (fun _ ->
          Domain.spawn (fun () -> worker_loop q inflight dispatched));
    inflight;
    dispatched;
    draining = Atomic.make false;
    drain_mu = Mutex.create ();
    drained = false;
  }

let workers t = Array.length t.fleet
let queue_capacity t = Jobq.capacity t.q
let queue_depth t = Jobq.length t.q
let in_flight t = Atomic.get t.inflight
let dispatched t = Atomic.get t.dispatched

let submit t job =
  if Atomic.get t.draining then `Draining
  else
    match Jobq.try_push t.q job with
    | `Ok -> `Ok
    | `Full -> `Queue_full
    | `Closed -> `Draining

let drain t =
  Atomic.set t.draining true;
  Jobq.close t.q;
  (* Joining under the mutex makes concurrent drains all block until
     the fleet is actually gone, and a second drain a no-op. *)
  Mutex.lock t.drain_mu;
  if not t.drained then begin
    Array.iter Domain.join t.fleet;
    t.drained <- true
  end;
  Mutex.unlock t.drain_mu
