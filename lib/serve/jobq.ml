type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  cap : int;
  mutable closed : bool;
}

let create ~capacity =
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    cap = max 1 capacity;
    closed = false;
  }

let capacity t = t.cap

let length t =
  Mutex.lock t.mu;
  let n = Queue.length t.items in
  Mutex.unlock t.mu;
  n

let try_push t x =
  Mutex.lock t.mu;
  let r =
    if t.closed then `Closed
    else if Queue.length t.items >= t.cap then `Full
    else begin
      Queue.add x t.items;
      Condition.signal t.nonempty;
      `Ok
    end
  in
  Mutex.unlock t.mu;
  r

let pop t =
  Mutex.lock t.mu;
  let rec wait () =
    match Queue.take_opt t.items with
    | Some x ->
        Mutex.unlock t.mu;
        Some x
    | None ->
        if t.closed then begin
          Mutex.unlock t.mu;
          None
        end
        else begin
          Condition.wait t.nonempty t.mu;
          wait ()
        end
  in
  wait ()

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu
