module J = Obs.Json

let never () = false

(* ------------------------------------------------ shared renderers --- *)

let with_buffer_formatter f =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents b

let failed_of outcomes =
  List.filter (fun o -> not o.Wfde.Experiments.ok) outcomes

let run_text outcomes =
  with_buffer_formatter (fun ppf ->
      List.iter
        (fun o -> Format.fprintf ppf "%a@." Wfde.Experiments.pp o)
        outcomes;
      match failed_of outcomes with
      | [] ->
          Format.fprintf ppf "all %d experiment claims hold@."
            (List.length outcomes)
      | failed ->
          Format.fprintf ppf "FAILED claims: %s@."
            (String.concat ", "
               (List.map (fun o -> o.Wfde.Experiments.id) failed)))

let exp_text o =
  with_buffer_formatter (fun ppf ->
      Format.fprintf ppf "%a@." Wfde.Experiments.pp o)

let failed_claims_line = function
  | [] -> ""
  | failed ->
      with_buffer_formatter (fun ppf ->
          Format.fprintf ppf "FAILED claims: %s@." (String.concat ", " failed))

let sweep_text outcomes =
  String.concat "" (List.map exp_text outcomes)
  ^ failed_claims_line
      (List.map
         (fun o -> o.Wfde.Experiments.id)
         (failed_of outcomes))

let sweep_json_rows ~jobs ~scale rows =
  let total = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 rows in
  J.Obj
    [
      ("schema", J.String "wfde-sweep/1");
      ("jobs", J.Int jobs);
      ("scale", J.Int scale);
      ("total_wall_seconds", J.Float total);
      ( "experiments",
        J.List
          (List.map
             (fun (id, ok, w) ->
               J.Obj
                 [
                   ("id", J.String id);
                   ("ok", J.Bool ok);
                   ("wall_seconds", J.Float w);
                 ])
             rows) );
    ]

let sweep_json ~jobs ~scale timed =
  sweep_json_rows ~jobs ~scale
    (List.map (fun (id, o, w) -> (id, o.Wfde.Experiments.ok, w)) timed)

let check_text (o : Wfde.Harness.check_outcome) =
  with_buffer_formatter (fun ppf ->
      Format.fprintf ppf
        "%s: procs=%d depth=%d patterns=%d executions=%d (naive bound %d) \
         sleep-blocked=%d deduped=%d races=%d@."
        (Wfde.Scenario.to_string o.Wfde.Harness.check_obj)
        o.Wfde.Harness.check_procs o.Wfde.Harness.check_depth
        o.Wfde.Harness.patterns_swept o.Wfde.Harness.executions
        o.Wfde.Harness.naive_bound o.Wfde.Harness.sleep_blocked
        o.Wfde.Harness.deduped o.Wfde.Harness.races;
      match o.Wfde.Harness.violation with
      | None -> Format.fprintf ppf "no violation found@."
      | Some v ->
          Format.fprintf ppf "VIOLATION%s@.  crashes: %a@.  schedule: %s@.  %s@."
            (if v.Wfde.Harness.shrunk then " (shrunk, replayable)"
             else " (shrink failed to reproduce - raw counterexample)")
            Wfde.Failure_pattern.pp v.Wfde.Harness.cex_pattern
            (String.concat ","
               (List.map
                  (fun p -> string_of_int (Wfde.Pid.to_int p))
                  v.Wfde.Harness.cex_prefix))
            (String.concat "\n  "
               (String.split_on_char '\n' v.Wfde.Harness.cex_report)))

let unknown_ids ids =
  List.filter (fun id -> Wfde.Experiments.by_id id = None) ids

(* ------------------------------------------------ param validation --- *)

let bad fmt = Printf.ksprintf (fun m -> Error (Proto.err Bad_request "%s" m)) fmt

let ( let* ) = Result.bind

let check_allowed ~meth ~allowed params =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) params with
  | Some (k, _) -> bad "unknown %S parameter %S" meth k
  | None -> Ok ()

let get_int ~key ~default ~min ~max params =
  match List.assoc_opt key params with
  | None -> Ok default
  | Some (J.Int v) when v >= min && v <= max -> Ok v
  | Some _ -> bad "%S must be an integer in [%d, %d]" key min max

let get_string_opt ~key params =
  match List.assoc_opt key params with
  | None -> Ok None
  | Some (J.String s) -> Ok (Some s)
  | Some _ -> bad "%S must be a string" key

let get_ids params =
  match List.assoc_opt "experiments" params with
  | None -> Ok []
  | Some (J.List xs) -> (
      let rec strings acc = function
        | [] -> Ok (List.rev acc)
        | J.String s :: tl -> strings (s :: acc) tl
        | _ -> bad "\"experiments\" must be a list of id strings"
      in
      let* ids = strings [] xs in
      match unknown_ids ids with
      | [] -> Ok ids
      | unknown ->
          bad "unknown experiment id(s): %s (see 'wfde list')"
            (String.concat ", " unknown))
  | Some _ -> bad "\"experiments\" must be a list of id strings"

(* Service-side bounds are tighter than the CLI's: a request is a
   shared-daemon tenant, not the machine owner. *)
let max_scale = 1_000
let max_jobs = 16
let max_depth = 24
let max_horizon = 10_000_000
let max_procs = 8
let max_sleep_ms = 60_000

let exp_params ~meth params =
  let* () =
    check_allowed ~meth ~allowed:[ "experiments"; "scale"; "jobs" ] params
  in
  let* ids = get_ids params in
  let* scale = get_int ~key:"scale" ~default:1 ~min:1 ~max:max_scale params in
  let* jobs = get_int ~key:"jobs" ~default:1 ~min:1 ~max:max_jobs params in
  Ok (ids, scale, jobs)

(* Run experiments left to right, polling the deadline before each so a
   timed-out request stops between drivers (the per-driver work is the
   cancellation granularity here). Each driver gets an [exp.<id>] child
   span. *)
let run_experiments ~deadline ~spans ~ids ~scale ~jobs =
  let ids =
    match ids with
    | [] -> List.map fst Wfde.Experiments.catalog
    | ids -> ids
  in
  let total = List.length ids in
  let rec go acc done_ = function
    | [] -> Ok (List.rev acc)
    | id :: rest ->
        if deadline () then
          Error
            (Proto.err Deadline_exceeded
               "deadline expired after %d of %d experiment(s)" done_ total)
        else
          let f = Option.get (Wfde.Experiments.by_id id) in
          let t0 = Unix.gettimeofday () in
          let o =
            (* the driver's own profile (d1-d3's [net.*] rows) nests
               under its [exp.<id>] span *)
            Obs.Span.with_ spans ("exp." ^ id) (fun () ->
                f ~scale ~jobs ~spans ())
          in
          let wall = Unix.gettimeofday () -. t0 in
          go ((id, o, wall) :: acc) (done_ + 1) rest
  in
  go [] 0 ids

(* ------------------------------------------------------ handlers ----- *)

let handle_run ~deadline ~spans params =
  let* ids, scale, jobs = exp_params ~meth:"run" params in
  let* timed = run_experiments ~deadline ~spans ~ids ~scale ~jobs in
  let outcomes = List.map (fun (_, o, _) -> o) timed in
  Ok
    (J.Obj
       [
         ("schema", J.String "wfde-run/1");
         ("ok", J.Bool (failed_of outcomes = []));
         ( "experiments",
           J.List
             (List.map
                (fun o ->
                  J.Obj
                    [
                      ("id", J.String o.Wfde.Experiments.id);
                      ("ok", J.Bool o.Wfde.Experiments.ok);
                    ])
                outcomes) );
         ("output", J.String (run_text outcomes));
       ])

let handle_sweep ~deadline ~spans params =
  let* ids, scale, jobs = exp_params ~meth:"sweep" params in
  let* timed = run_experiments ~deadline ~spans ~ids ~scale ~jobs in
  Ok (sweep_json ~jobs ~scale timed)

let handle_stats ~deadline ~spans params =
  let* ids, scale, jobs = exp_params ~meth:"stats" params in
  Wfde.Metrics.reset ();
  let* _timed = run_experiments ~deadline ~spans ~ids ~scale ~jobs in
  Ok (Wfde.Metrics.to_json (Wfde.Metrics.snapshot ()))

let handle_check ~deadline ~spans params =
  let* () =
    check_allowed ~meth:"check"
      ~allowed:[ "object"; "procs"; "depth"; "horizon"; "jobs"; "mutant" ]
      params
  in
  let* obj_name = get_string_opt ~key:"object" params in
  let* obj =
    match Wfde.Scenario.of_string (Option.value ~default:"register" obj_name) with
    | Ok o -> Ok o
    | Error msg -> bad "%s" msg
  in
  let* procs =
    match List.assoc_opt "procs" params with
    | None -> Ok None
    | Some (J.Int p) when p >= 1 && p <= max_procs -> Ok (Some p)
    | Some _ -> bad "\"procs\" must be an integer in [1, %d]" max_procs
  in
  let* depth = get_int ~key:"depth" ~default:6 ~min:1 ~max:max_depth params in
  let* horizon =
    get_int ~key:"horizon" ~default:400 ~min:1 ~max:max_horizon params
  in
  let* jobs = get_int ~key:"jobs" ~default:1 ~min:1 ~max:max_jobs params in
  let* mutant =
    let* name = get_string_opt ~key:"mutant" params in
    match name with
    | None -> Ok None
    | Some m -> (
        match Wfde.Mutant.of_string m with
        | Ok m -> Ok (Some m)
        | Error msg -> bad "%s" msg)
  in
  (* The cancelled flag is an Atomic because with jobs > 1 the probe
     runs on pool worker domains. *)
  let cancelled = Atomic.make false in
  let should_stop () =
    if deadline () then begin
      Atomic.set cancelled true;
      true
    end
    else false
  in
  let outcome =
    Wfde.Harness.check_exhaustive ~jobs ?procs ~depth ~horizon ~should_stop
      ~spans ?mutant obj
  in
  if Atomic.get cancelled then
    Error
      (Proto.err Deadline_exceeded
         "deadline expired after %d DPOR execution(s) over %d pattern(s)"
         outcome.Wfde.Harness.executions outcome.Wfde.Harness.patterns_swept)
  else Ok (Wfde.Harness.check_outcome_json outcome)

(* One sweep work unit: a single experiment driver. The fabric
   coordinator merges the returned table segments in id order, so the
   concatenation is byte-identical to [sweep_text] over a serial run. *)
let handle_exp ~deadline ~spans params =
  let* () =
    check_allowed ~meth:"exp" ~allowed:[ "experiment"; "scale"; "jobs" ] params
  in
  let* id =
    let* id = get_string_opt ~key:"experiment" params in
    match id with
    | None -> bad "\"experiment\" is required"
    | Some id -> (
        match unknown_ids [ id ] with
        | [] -> Ok id
        | _ -> bad "unknown experiment id %S (see 'wfde list')" id)
  in
  let* scale = get_int ~key:"scale" ~default:1 ~min:1 ~max:max_scale params in
  let* jobs = get_int ~key:"jobs" ~default:1 ~min:1 ~max:max_jobs params in
  let* timed = run_experiments ~deadline ~spans ~ids:[ id ] ~scale ~jobs in
  match timed with
  | [ (id, o, wall) ] ->
      Ok
        (J.Obj
           [
             ("schema", J.String "wfde-exp/1");
             ("id", J.String id);
             ("ok", J.Bool o.Wfde.Experiments.ok);
             ("table", J.String (exp_text o));
             ("wall_seconds", J.Float wall);
           ])
  | _ -> Error (Proto.err Internal "exp: driver returned %d outcomes" (List.length timed))

(* One exhaustive-check work unit: a single (pattern, root branch) DPOR
   exploration, optionally budget-sliced. A truncated slice answers
   [done = false] with a wfde-frontier/1 document instead of an error,
   so the coordinator can journal the partial search and hand the unit
   to any worker for the next slice. *)
let handle_check_unit ~deadline ~spans params =
  let* () =
    check_allowed ~meth:"check_unit"
      ~allowed:
        [
          "object";
          "procs";
          "depth";
          "horizon";
          "mutant";
          "pattern";
          "branch";
          "budget";
          "frontier";
        ]
      params
  in
  let* obj_name = get_string_opt ~key:"object" params in
  let* obj =
    match Wfde.Scenario.of_string (Option.value ~default:"register" obj_name) with
    | Ok o -> Ok o
    | Error msg -> bad "%s" msg
  in
  let* procs =
    match List.assoc_opt "procs" params with
    | None -> Ok None
    | Some (J.Int p) when p >= 1 && p <= max_procs -> Ok (Some p)
    | Some _ -> bad "\"procs\" must be an integer in [1, %d]" max_procs
  in
  let* depth = get_int ~key:"depth" ~default:6 ~min:1 ~max:max_depth params in
  let* horizon =
    get_int ~key:"horizon" ~default:400 ~min:1 ~max:max_horizon params
  in
  let* mutant =
    let* name = get_string_opt ~key:"mutant" params in
    match name with
    | None -> Ok None
    | Some m -> (
        match Wfde.Mutant.of_string m with
        | Ok m -> Ok (Some m)
        | Error msg -> bad "%s" msg)
  in
  let* pattern_index =
    match List.assoc_opt "pattern" params with
    | Some (J.Int i) when i >= 0 -> Ok i
    | _ -> bad "\"pattern\" must be a non-negative unit index"
  in
  let* branch =
    match List.assoc_opt "branch" params with
    | None -> Ok None
    | Some (J.Int i) when i >= 0 -> Ok (Some i)
    | Some _ -> bad "\"branch\" must be a non-negative branch index"
  in
  let* budget =
    match List.assoc_opt "budget" params with
    | None -> Ok Wfde.Dpor.unbounded
    | Some (J.Int b) when b >= 1 -> Ok b
    | Some _ -> bad "\"budget\" must be a positive integer"
  in
  let* frontier =
    match List.assoc_opt "frontier" params with
    | None -> Ok None
    | Some doc -> (
        match Wfde.Dpor.frontier_of_json doc with
        | Ok f -> Ok (Some f)
        | Error msg -> bad "%s" msg)
  in
  let procs =
    let floor = Wfde.Scenario.min_procs obj in
    match procs with Some p -> max p floor | None -> max 2 floor
  in
  let patterns = Wfde.Scenario.patterns obj ~procs in
  let* pattern =
    match List.nth_opt patterns pattern_index with
    | Some p -> Ok p
    | None ->
        bad "\"pattern\" index %d out of range (%d patterns)" pattern_index
          (List.length patterns)
  in
  let make = Wfde.Scenario.make obj ~procs in
  let should_stop () = deadline () in
  let frontier_out = ref None in
  let* outcome =
    Wfde.Mutant.with_ mutant (fun () ->
        Obs.Span.with_ spans "unit.dpor" (fun () ->
            match frontier with
            | Some frontier ->
                Ok
                  (Wfde.Dpor.resume ~pattern ~horizon ~budget ~should_stop
                     ~frontier_out ~frontier ~make ())
            | None -> (
                match branch with
                | None ->
                    Ok
                      (Wfde.Dpor.explore ~pattern ~depth ~horizon ~budget
                         ~should_stop ~frontier_out ~make ())
                | Some index ->
                    let branches = Wfde.Dpor.root_branches ~pattern ~make () in
                    if index >= List.length branches then
                      bad "\"branch\" index %d out of range (%d branches)" index
                        (List.length branches)
                    else
                      Ok
                        (Wfde.Dpor.explore_branch ~pattern ~depth ~horizon
                           ~budget ~should_stop ~frontier_out ~branches ~index
                           ~make ()))))
  in
  let stats = outcome.Wfde.Dpor.stats in
  Ok
    (J.Obj
       [
         ("schema", J.String "wfde-unit/1");
         ("done", J.Bool (!frontier_out = None));
         ( "stats",
           J.Obj
             [
               ("executions", J.Int stats.Wfde.Dpor.executions);
               ("sleep_blocked", J.Int stats.Wfde.Dpor.sleep_blocked);
               ("deduped", J.Int stats.Wfde.Dpor.deduped);
               ("races", J.Int stats.Wfde.Dpor.races);
               ("backtrack_points", J.Int stats.Wfde.Dpor.backtrack_points);
             ] );
         ( "counterexample",
           match outcome.Wfde.Dpor.counterexample with
           | None -> J.Null
           | Some (prefix, report) ->
               J.Obj
                 [
                   ( "prefix",
                     J.List
                       (List.map
                          (fun p -> J.Int (Wfde.Pid.to_int p))
                          prefix) );
                   ("report", J.String report);
                 ] );
         ( "frontier",
           match !frontier_out with
           | None -> J.Null
           | Some f -> Wfde.Dpor.frontier_to_json f );
       ])

let handle_sleep ~deadline ~spans params =
  let* () = check_allowed ~meth:"sleep" ~allowed:[ "ms" ] params in
  let* ms = get_int ~key:"ms" ~default:0 ~min:0 ~max:max_sleep_ms params in
  let finish = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
  let sid = Obs.Span.start spans "sleep.wait" in
  let rec tick () =
    if deadline () then
      Error (Proto.err Deadline_exceeded "deadline expired while sleeping")
    else if Unix.gettimeofday () >= finish then Ok (J.Obj [ ("slept_ms", J.Int ms) ])
    else begin
      Unix.sleepf (min 0.01 (max 0. (finish -. Unix.gettimeofday ())));
      tick ()
    end
  in
  let r = tick () in
  Obs.Span.finish ~truncated:(Result.is_error r) spans sid;
  r

let handle ?(deadline = never) ?(spans = Obs.Span.null) (req : Proto.request) =
  let dispatch () =
    match req.meth with
    | "run" -> handle_run ~deadline ~spans req.params
    | "sweep" -> handle_sweep ~deadline ~spans req.params
    | "stats" -> handle_stats ~deadline ~spans req.params
    | "check" -> handle_check ~deadline ~spans req.params
    | "exp" -> handle_exp ~deadline ~spans req.params
    | "check_unit" -> handle_check_unit ~deadline ~spans req.params
    | "sleep" -> handle_sleep ~deadline ~spans req.params
    | "health" | "metrics" | "cache" ->
        Error
          (Proto.err Unknown_method
             "%S is answered by the daemon front-end, not the worker fleet"
             req.meth)
    | m -> Error (Proto.err Unknown_method "unknown method %S" m)
  in
  try dispatch ()
  with e ->
    Error (Proto.err Internal "uncaught exception: %s" (Printexc.to_string e))
