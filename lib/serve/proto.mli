(** The [wfde-rpc/1] wire protocol: newline-delimited JSON requests and
    responses.

    One request per line, one response line per request, over a stream
    socket. A request is a JSON object:

    {v
    {"method": "check",            // required: run | check | sweep |
                                   //   stats | sleep | health |
                                   //   metrics | cache
     "id": "r1",                   // optional string/int, echoed back
     "params": {"object": "abd"},  // optional object, method-specific
     "deadline_ms": 2000,          // optional per-request deadline
     "trace": "t42"}               // optional trace id — opts the
                                   //   request into span tracing
    v}

    and every response is an envelope around either a payload or a
    structured error:

    {v
    {"schema":"wfde-rpc/1","id":"r1","ok":true,
     "payload":{...},"wall_ms":12.3}
    {"schema":"wfde-rpc/1","id":"r1","ok":false,
     "error":{"code":"queue_full","message":"..."},"wall_ms":0.0}
    v}

    The [payload] is the deterministic part — byte-identical to the
    matching CLI output for the same request; [id] and [wall_ms] are
    the envelope fields comparisons strip. Unknown top-level request
    fields are rejected ([bad_request]) rather than ignored, so typos
    fail loudly. *)

type error_code =
  | Bad_request  (** malformed JSON, bad fields, bad params *)
  | Unknown_method
  | Oversized  (** request line longer than the daemon's limit *)
  | Queue_full  (** bounded job queue at capacity — retry later *)
  | Deadline_exceeded
  | Shutting_down  (** daemon is draining; no new work accepted *)
  | Internal

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

val exit_code : error_code -> int
(** The CLI exit status for a structured error: [Deadline_exceeded] is
    124 (as [timeout(1)] would report), [Queue_full] is 75
    (EX_TEMPFAIL — retry later), everything else is 1. Transport
    errors and usage errors are the caller's concern (the CLI uses 3
    and 2 respectively). *)

type error = { code : error_code; message : string }

val err : error_code -> ('a, unit, string, error) format4 -> 'a
(** [err code fmt ...] builds an {!error} printf-style. *)

type request = {
  id : Obs.Json.t;  (** [Null] when absent; echoed verbatim *)
  meth : string;
  params : (string * Obs.Json.t) list;  (** empty when absent *)
  deadline_ms : int option;
  trace : string option;
      (** non-empty trace id; a request carrying one is traced when the
          daemon has a span sink (absent = never traced) *)
}

val schema : string
(** ["wfde-rpc/1"] *)

val parse_request :
  max_bytes:int -> string -> (request, error * Obs.Json.t) result
(** Parse one request line. On error, the second component is the
    request id when one could still be salvaged from the malformed
    object ([Null] otherwise), so the error response can be
    correlated. *)

val request_to_json : request -> Obs.Json.t
(** The client-side rendering (one line via {!Obs.Json.to_string}). *)

val ok_response : id:Obs.Json.t -> wall_ms:float -> Obs.Json.t -> Obs.Json.t
val error_response : id:Obs.Json.t -> wall_ms:float -> error -> Obs.Json.t

val ok_response_rendered :
  id:Obs.Json.t -> wall_ms:float -> string -> string
(** [ok_response_rendered ~id ~wall_ms payload] splices
    already-rendered payload bytes into the envelope. For any [p],
    [ok_response_rendered ~id ~wall_ms (Obs.Json.to_string p)] is
    byte-identical to
    [Obs.Json.to_string (ok_response ~id ~wall_ms p)] — the cache
    replay path depends on this. *)

type response = {
  resp_id : Obs.Json.t;
  wall_ms : float;
  result : (Obs.Json.t, error) result;  (** payload or structured error *)
}

val parse_response : string -> (response, string) result
(** Client-side envelope parsing; [Error] describes a malformed or
    wrong-schema line (a transport-level failure, not a structured
    server error). *)
