module J = Obs.Json

type leg = {
  total : int;
  ok : int;
  errors : int;
  transport_errors : int;
  payload_bytes : int;
  wall_seconds : float;
  latencies_ms : float array;
  payloads : string array;
}

let request_for ?trace_prefix i =
  let id = J.String (Printf.sprintf "i%d" i) in
  let trace = Option.map (fun p -> Printf.sprintf "%s%d" p i) trace_prefix in
  match i mod 3 with
  | 0 ->
      {
        Proto.id;
        meth = "check";
        params =
          [
            ("object", J.String "register");
            ("depth", J.Int 3);
            ("horizon", J.Int 60);
          ];
        deadline_ms = None;
        trace;
      }
  | 1 ->
      {
        Proto.id;
        meth = "run";
        params = [ ("experiments", J.List [ J.String "e1" ]) ];
        deadline_ms = None;
        trace;
      }
  | _ ->
      {
        Proto.id;
        meth = "sleep";
        params = [ ("ms", J.Int 0) ];
        deadline_ms = None;
        trace;
      }

let run ?trace_prefix ~socket ~total ~clients () =
  let clients = max 1 (min clients (max 1 total)) in
  let latencies_ms = Array.make total 0. in
  let payloads = Array.make total "" in
  let ok = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let transport_errors = Atomic.make 0 in
  let client_loop c =
    match Client.connect ~socket with
    | Error _ ->
        (* count every request this client owned as failed *)
        let rec owned i n = if i >= total then n else owned (i + clients) (n + 1) in
        ignore (Atomic.fetch_and_add transport_errors (owned c 0))
    | Ok conn ->
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            let i = ref c in
            while !i < total do
              let t0 = Unix.gettimeofday () in
              (match Client.call conn (request_for ?trace_prefix !i) with
              | Ok { Proto.result = Ok payload; _ } ->
                  latencies_ms.(!i) <- (Unix.gettimeofday () -. t0) *. 1000.;
                  payloads.(!i) <- J.to_string payload;
                  Atomic.incr ok
              | Ok { Proto.result = Error _; _ } -> Atomic.incr errors
              | Error _ -> Atomic.incr transport_errors);
              i := !i + clients
            done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init clients (fun c -> Thread.create client_loop c) in
  Array.iter Thread.join threads;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  {
    total;
    ok = Atomic.get ok;
    errors = Atomic.get errors;
    transport_errors = Atomic.get transport_errors;
    payload_bytes =
      Array.fold_left (fun acc p -> acc + String.length p) 0 payloads;
    wall_seconds;
    latencies_ms;
    payloads;
  }

let mismatches ~reference leg =
  let n = min (Array.length reference.payloads) (Array.length leg.payloads) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if
      reference.payloads.(i) <> ""
      && leg.payloads.(i) <> ""
      && not (String.equal reference.payloads.(i) leg.payloads.(i))
    then incr count
  done;
  !count
