module J = Obs.Json

type leg = {
  total : int;
  ok : int;
  errors : int;
  transport_errors : int;
  payload_bytes : int;
  wall_seconds : float;
  latencies_ms : float array;
  payloads : string array;
}

let request_for ?trace_prefix i =
  let id = J.String (Printf.sprintf "i%d" i) in
  let trace = Option.map (fun p -> Printf.sprintf "%s%d" p i) trace_prefix in
  match i mod 3 with
  | 0 ->
      {
        Proto.id;
        meth = "check";
        params =
          [
            ("object", J.String "register");
            ("depth", J.Int 3);
            ("horizon", J.Int 60);
          ];
        deadline_ms = None;
        trace;
      }
  | 1 ->
      {
        Proto.id;
        meth = "run";
        params = [ ("experiments", J.List [ J.String "e1" ]) ];
        deadline_ms = None;
        trace;
      }
  | _ ->
      {
        Proto.id;
        meth = "sleep";
        params = [ ("ms", J.Int 0) ];
        deadline_ms = None;
        trace;
      }

(* ------------------------------------------------ Zipf scenario ------ *)

let default_skew = 1.2
let default_universe = 8

(* The sampled shape for global index [i]: a fresh splitmix64 stream
   per index (seeded from [seed] and [i]) drives one CDF walk over
   Zipf(rank^-skew) weights — a pure function of (seed, skew,
   universe, i), so every leg over the same parameters samples the
   same shape sequence. *)
let zipf_shape ~seed ~skew ~universe i =
  let universe = max 1 universe in
  let rng = Wfde.Rng.create ((seed * 0x9e3779b1) + i) in
  let w = Array.init universe (fun r -> 1.0 /. (float_of_int (r + 1) ** skew)) in
  let total_w = Array.fold_left ( +. ) 0. w in
  let x =
    float_of_int (Wfde.Rng.int rng 1_000_000) /. 1_000_000. *. total_w
  in
  let rec walk r acc =
    let acc = acc +. w.(r) in
    if x < acc || r = universe - 1 then r else walk (r + 1) acc
  in
  walk 0 0.

let zipf_class ~seed ~skew ~universe i = zipf_shape ~seed ~skew ~universe i / 2

let zipf_request ?trace_prefix ~seed ~skew ~universe i =
  let shape = zipf_shape ~seed ~skew ~universe i in
  let c = shape / 2 in
  {
    Proto.id = J.String (Printf.sprintf "z%d" i);
    meth = "check";
    params =
      [
        ("object", J.String "register");
        (* deep enough that a computed check costs a few ms — the
           cache's order-of-magnitude win must clear client overhead *)
        ("depth", J.Int (5 + (c mod 2)));
        ("horizon", J.Int (60 + (20 * (c / 2))));
        (* odd shapes are the -j2 twin of the even shape below them:
           same class, same payload bytes, same cache key *)
        ("jobs", J.Int (1 + (shape mod 2)));
      ];
    deadline_ms = None;
    trace = Option.map (fun p -> Printf.sprintf "%s%d" p i) trace_prefix;
  }

let zipf_distinct_classes ~seed ~skew ~universe ~total =
  let seen = Hashtbl.create 16 in
  for i = 0 to total - 1 do
    Hashtbl.replace seen (zipf_class ~seed ~skew ~universe i) ()
  done;
  Hashtbl.length seen

(* ------------------------------------------------------- driver ------ *)

let run_with ~request ~socket ~total ~clients () =
  let clients = max 1 (min clients (max 1 total)) in
  let latencies_ms = Array.make total 0. in
  let payloads = Array.make total "" in
  let ok = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let transport_errors = Atomic.make 0 in
  let client_loop c =
    match Client.connect ~socket with
    | Error _ ->
        (* count every request this client owned as failed *)
        let rec owned i n = if i >= total then n else owned (i + clients) (n + 1) in
        ignore (Atomic.fetch_and_add transport_errors (owned c 0))
    | Ok conn ->
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            let i = ref c in
            while !i < total do
              let t0 = Unix.gettimeofday () in
              (match Client.call conn (request !i) with
              | Ok { Proto.result = Ok payload; _ } ->
                  latencies_ms.(!i) <- (Unix.gettimeofday () -. t0) *. 1000.;
                  payloads.(!i) <- J.to_string payload;
                  Atomic.incr ok
              | Ok { Proto.result = Error _; _ } -> Atomic.incr errors
              | Error _ -> Atomic.incr transport_errors);
              i := !i + clients
            done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init clients (fun c -> Thread.create client_loop c) in
  Array.iter Thread.join threads;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  {
    total;
    ok = Atomic.get ok;
    errors = Atomic.get errors;
    transport_errors = Atomic.get transport_errors;
    payload_bytes =
      Array.fold_left (fun acc p -> acc + String.length p) 0 payloads;
    wall_seconds;
    latencies_ms;
    payloads;
  }

let run ?trace_prefix ~socket ~total ~clients () =
  run_with ~request:(request_for ?trace_prefix) ~socket ~total ~clients ()

let run_zipf ?trace_prefix ?(skew = default_skew) ?(universe = default_universe)
    ~seed ~socket ~total ~clients () =
  run_with
    ~request:(zipf_request ?trace_prefix ~seed ~skew ~universe)
    ~socket ~total ~clients ()

let mismatches ~reference leg =
  let n = min (Array.length reference.payloads) (Array.length leg.payloads) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if
      reference.payloads.(i) <> ""
      && leg.payloads.(i) <> ""
      && not (String.equal reference.payloads.(i) leg.payloads.(i))
    then incr count
  done;
  !count

let zipf_class_mismatches ?(skew = default_skew)
    ?(universe = default_universe) ~seed leg =
  let first = Hashtbl.create 16 in
  let count = ref 0 in
  Array.iteri
    (fun i p ->
      if p <> "" then
        let c = zipf_class ~seed ~skew ~universe i in
        match Hashtbl.find_opt first c with
        | None -> Hashtbl.add first c p
        | Some q -> if not (String.equal p q) then incr count)
    leg.payloads;
  !count

(* ------------------------------------------------------------------ *)
(* Chaos: external daemon processes and seeded fault schedules        *)

module Proc = struct
  type t = { pid : int; socket : string; log : string }

  let start ?(args = []) ~binary ~socket () =
    let log = socket ^ ".log" in
    let fd =
      Unix.openfile log [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644
    in
    let argv =
      Array.of_list (binary :: "serve" :: "--socket" :: socket :: args)
    in
    let pid =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> Unix.create_process binary argv Unix.stdin fd fd)
    in
    { pid; socket; log }

  let health t =
    match
      Client.rpc ~socket:t.socket
        {
          Proto.id = Obs.Json.Null;
          meth = "health";
          params = [];
          deadline_ms = None;
          trace = None;
        }
    with
    | Ok { Proto.result = Ok _; _ } -> true
    | _ -> false

  let wait_ready ?(timeout_s = 10.) t =
    let t0 = Unix.gettimeofday () in
    let rec poll () =
      if health t then true
      else if Unix.gettimeofday () -. t0 > timeout_s then false
      else begin
        Unix.sleepf 0.02;
        poll ()
      end
    in
    poll ()

  let signal t sg = try Unix.kill t.pid sg with Unix.Unix_error _ -> ()
  let sigkill t = signal t Sys.sigkill
  let sigterm t = signal t Sys.sigterm

  let wait t =
    match Unix.waitpid [] t.pid with
    | _, status -> Some status
    | exception Unix.Unix_error _ -> None

  let destroy t =
    sigkill t;
    ignore (wait t);
    (try Sys.remove t.socket with Sys_error _ -> ());
    try Sys.remove t.log with Sys_error _ -> ()
end

type fault =
  | Kill_worker of int * int
  | Drain_worker of int * int
  | Crash_coordinator of int

let chaos_schedule ~seed ~workers ~units =
  if workers < 1 || units < 1 then []
  else begin
    let rng = Wfde.Rng.create seed in
    let point lo hi =
      if hi <= lo then lo else lo + Wfde.Rng.int rng (hi - lo)
    in
    (* one worker dies early, another drains later; the coordinator
       crash point lands in between so a resume still has work left *)
    let victim = Wfde.Rng.int rng workers in
    let drained = (victim + 1 + Wfde.Rng.int rng (max 1 (workers - 1))) mod workers in
    let faults =
      [
        Kill_worker (victim, point 1 (max 2 (units / 3)));
        Drain_worker (drained, point (units / 3) (max 1 (2 * units / 3)));
      ]
    in
    if workers > 1 then faults @ [ Crash_coordinator (point 1 (max 2 (units - 1))) ]
    else faults
  end
