(** A bounded, closeable FIFO job queue — the backpressure point of the
    service spine.

    Producers (connection threads) use {!try_push}, which never blocks:
    a full queue is an immediate [`Full], which the daemon turns into a
    structured [queue_full] rejection instead of unbounded buffering.
    Consumers (worker domains) block in {!pop} until an item or the
    close arrives.

    {!close} starts the {e drain}: pushes are refused from that point,
    but items already queued are still handed out — {!pop} returns
    [None] only once the queue is both closed and empty, which is each
    worker's signal to exit. Safe across domains and threads. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current queue depth (racy by nature; exact at the instant the
    internal lock was held — good enough for gauges and rejections). *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]

val pop : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue is closed
    and drained ([None]). *)

val close : 'a t -> unit
(** Idempotent. Wakes every blocked {!pop}. *)
