(** A deterministic closed-loop load generator for the daemon — the
    engine behind [wfde bench] part 4 and the daemon smoke tests.

    The workload is a fixed function of the {e global request index}:
    request [i] is always {!request_for}[ i], whatever client sends it.
    A leg of [total] requests over [clients] connections partitions the
    indices round-robin (client [c] sends [c, c+clients, c+2*clients,
    ...]), each client lock-stepping over its own connection. Because
    the workload is index-determined, a serial leg and a concurrent leg
    over the same [total] must produce byte-identical payloads per
    index — {!mismatches} counts the indices where they differ, and a
    nonzero count is a determinism bug in the daemon. *)

type leg = {
  total : int;  (** requests attempted *)
  ok : int;  (** responses with [ok = true] *)
  errors : int;  (** structured server errors *)
  transport_errors : int;  (** connect/read/write failures *)
  payload_bytes : int;  (** summed rendered-payload sizes, ok responses *)
  wall_seconds : float;
  latencies_ms : float array;  (** per request, by global index; 0 on error *)
  payloads : string array;
      (** rendered payload per global index; [""] on any error *)
}

val request_for : ?trace_prefix:string -> int -> Proto.request
(** The deterministic request for global index [i]: a cycle of a small
    [check], a one-experiment [run], and a [sleep 0] (pure spine
    overhead). Ids are ["i<N>"] so responses correlate. With
    [trace_prefix], the request carries trace id ["<prefix><N>"] so a
    traced daemon exports one span tree per index — still a pure
    function of the index, so serial and concurrent legs export
    structurally identical spans. *)

val run :
  ?trace_prefix:string -> socket:string -> total:int -> clients:int -> unit ->
  leg
(** Execute one leg. [clients] is clamped to [1, total]. *)

val mismatches : reference:leg -> leg -> int
(** Indices whose payloads differ between two legs (only indices where
    both sides got an ok payload are compared — errors are already
    counted separately). *)
