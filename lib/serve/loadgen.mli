(** A deterministic closed-loop load generator for the daemon — the
    engine behind [wfde bench] part 4 and the daemon smoke tests.

    The workload is a fixed function of the {e global request index}:
    request [i] is always {!request_for}[ i], whatever client sends it.
    A leg of [total] requests over [clients] connections partitions the
    indices round-robin (client [c] sends [c, c+clients, c+2*clients,
    ...]), each client lock-stepping over its own connection. Because
    the workload is index-determined, a serial leg and a concurrent leg
    over the same [total] must produce byte-identical payloads per
    index — {!mismatches} counts the indices where they differ, and a
    nonzero count is a determinism bug in the daemon. *)

type leg = {
  total : int;  (** requests attempted *)
  ok : int;  (** responses with [ok = true] *)
  errors : int;  (** structured server errors *)
  transport_errors : int;  (** connect/read/write failures *)
  payload_bytes : int;  (** summed rendered-payload sizes, ok responses *)
  wall_seconds : float;
  latencies_ms : float array;  (** per request, by global index; 0 on error *)
  payloads : string array;
      (** rendered payload per global index; [""] on any error *)
}

val request_for : ?trace_prefix:string -> int -> Proto.request
(** The deterministic request for global index [i]: a cycle of a small
    [check], a one-experiment [run], and a [sleep 0] (pure spine
    overhead). Ids are ["i<N>"] so responses correlate. With
    [trace_prefix], the request carries trace id ["<prefix><N>"] so a
    traced daemon exports one span tree per index — still a pure
    function of the index, so serial and concurrent legs export
    structurally identical spans. *)

val run :
  ?trace_prefix:string -> socket:string -> total:int -> clients:int -> unit ->
  leg
(** Execute one leg. [clients] is clamped to [1, total]. *)

val mismatches : reference:leg -> leg -> int
(** Indices whose payloads differ between two legs (only indices where
    both sides got an ok payload are compared — errors are already
    counted separately). *)

(** {1 Zipf-skewed repeated-request scenario} (bench part 6)

    A hit-heavy workload for the result cache: request [i] is a
    [check] whose {e shape} is drawn from a Zipf([skew]) distribution
    over [universe] shapes, sampled by a splitmix64 stream seeded from
    [(seed, i)] — still a pure function of the global index, so legs
    over the same parameters are comparable index-by-index whatever
    the client count. Shapes pair up: shape [2k+1] is the [-j2] twin
    of shape [2k] (identical params except [jobs]), so each pair forms
    one {e class} that must produce one payload byte pattern — and, on
    a caching daemon, collapses onto one cache key. *)

val default_skew : float
(** 1.2 *)

val default_universe : int
(** 8 shapes = 4 classes. [universe] should stay even so every shape
    has its jobs twin. *)

val zipf_shape : seed:int -> skew:float -> universe:int -> int -> int
(** The sampled shape index in [\[0, universe)] for global index [i]. *)

val zipf_class : seed:int -> skew:float -> universe:int -> int -> int
(** [zipf_shape ... i / 2] — the jobs-normalized shape class. *)

val zipf_request :
  ?trace_prefix:string ->
  seed:int -> skew:float -> universe:int -> int -> Proto.request
(** The request for global index [i]; ids are ["z<N>"]. *)

val run_zipf :
  ?trace_prefix:string ->
  ?skew:float ->
  ?universe:int ->
  seed:int -> socket:string -> total:int -> clients:int -> unit -> leg
(** Execute one Zipf leg (same driver and clamping as {!run}). *)

val zipf_distinct_classes :
  seed:int -> skew:float -> universe:int -> total:int -> int
(** How many distinct classes a leg of [total] requests samples — on a
    cold caching daemon, exactly the expected serial-leg miss count. *)

val zipf_class_mismatches : ?skew:float -> ?universe:int -> seed:int -> leg -> int
(** Indices whose ok payload differs from the first ok payload of the
    same class within the leg. Any nonzero count is a determinism bug:
    it means [-j1]/[-j2] twins, or cached vs computed responses for
    one class, disagreed byte-for-byte. *)

(** {1 Chaos harness}

    Helpers the fabric chaos tests and bench part 7 share: spawning
    real [wfde serve] processes (so SIGKILL means a real worker crash,
    not a simulated one) and deriving seeded fault schedules. *)

module Proc : sig
  type t = { pid : int; socket : string; log : string }

  val start : ?args:string list -> binary:string -> socket:string -> unit -> t
  (** Spawn [binary serve --socket socket args] with stdout/stderr
      redirected to [socket ^ ".log"]. *)

  val health : t -> bool
  (** One [health] RPC round trip succeeded. *)

  val wait_ready : ?timeout_s:float -> t -> bool
  (** Poll {!health} until ready or [timeout_s] (default 10s). *)

  val sigkill : t -> unit
  (** A real crash: in-flight requests die with their connections. *)

  val sigterm : t -> unit
  (** Graceful drain: in-flight requests complete, new ones are
      refused with [shutting_down]. *)

  val wait : t -> Unix.process_status option
  val destroy : t -> unit
  (** Kill, reap, and remove the socket and log files. *)
end

type fault =
  | Kill_worker of int * int
      (** [(worker, after_units)] — SIGKILL the worker once this many
          units completed *)
  | Drain_worker of int * int  (** graceful SIGTERM at the same kind of point *)
  | Crash_coordinator of int
      (** kill the coordinator itself after this many completed units *)

val chaos_schedule : seed:int -> workers:int -> units:int -> fault list
(** A deterministic fault schedule for a run of [units] units over
    [workers] workers: one early worker kill, one later drain, and
    (when more than one worker exists) a coordinator crash point —
    derived from [seed] via {!Wfde.Rng} so every replay of a scenario
    injects faults at the same logical points. *)
