module J = Obs.Json

(* ---------------------------------------------------------- keys ----- *)

(* Bump when a payload renderer changes its bytes without a schema
   change — the fingerprint is folded into every key, so old entries
   (memory and disk) become unreachable instead of stale. *)
let cache_generation = 2 (* check payloads gained the "deduped" field *)
let disk_schema = "wfde-cache/1"

let fingerprint =
  String.concat "|"
    [
      disk_schema;
      string_of_int cache_generation;
      Proto.schema;
      "wfde-run/1";
      "wfde-sweep/1";
      Sys.ocaml_version;
    ]

let cacheable = function "run" | "check" | "sweep" -> true | _ -> false

(* Params that cannot change the payload, per method. [run] and
   [check] payloads are -j1/-jN byte-identical (the determinism
   contract the bench gates); [sweep] is NOT listed — wfde-sweep/1
   embeds a "jobs" field, so jobs variants are distinct content. *)
let volatile_params = function "run" | "check" -> [ "jobs" ] | _ -> []

let rec canonical_json = function
  | J.Obj kvs ->
      (* first binding wins, matching J.member's read side *)
      let dedup =
        List.fold_left
          (fun acc (k, v) ->
            if List.mem_assoc k acc then acc else (k, v) :: acc)
          [] kvs
      in
      J.Obj
        (List.sort
           (fun (a, _) (b, _) -> String.compare a b)
           (List.rev_map (fun (k, v) -> (k, canonical_json v)) dedup))
  | J.List xs -> J.List (List.map canonical_json xs)
  | v -> v

let canonical ~meth ~params =
  let keep =
    List.filter (fun (k, _) -> not (List.mem k (volatile_params meth))) params
  in
  meth ^ "?" ^ J.to_string (canonical_json (J.Obj keep))

let key ~meth ~params =
  Digest.to_hex (Digest.string (fingerprint ^ "\n" ^ canonical ~meth ~params))

let is_key_name s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

(* ------------------------------------------------------- storage ----- *)

type config = { capacity : int; dir : string option }

let default_config = { capacity = 256; dir = None }
let disabled = { capacity = 0; dir = None }

(* LRU list: [head] is most recent, [tail] next to evict. *)
type node = {
  nkey : string;
  payload : string;
  mutable prev : node option;  (** toward head *)
  mutable next : node option;  (** toward tail *)
}

type slot =
  | Ready of node
  | Computing of (string, Proto.error) result Ivar.t

type t = {
  cfg : config;
  mu : Mutex.t;
  table : (string, slot) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable entries : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable evictions : int;
  mutable disk_hits : int;
  mutable disk_errors : int;
  mutable stores : int;
  mutable clears : int;
}

type ticket = { tkey : string; tiv : (string, Proto.error) result Ivar.t }

type outcome =
  | Hit of string
  | Disk_hit of string
  | Wait of (string, Proto.error) result Ivar.t
  | Compute of ticket

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(config = default_config) () =
  let config = { config with capacity = max 0 config.capacity } in
  (match config.dir with
  | Some dir when config.capacity > 0 -> mkdir_p dir
  | _ -> ());
  {
    cfg = config;
    mu = Mutex.create ();
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    entries = 0;
    bytes = 0;
    hits = 0;
    misses = 0;
    coalesced = 0;
    evictions = 0;
    disk_hits = 0;
    disk_errors = 0;
    stores = 0;
    clears = 0;
  }

let enabled t = t.cfg.capacity > 0
let config t = t.cfg

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ----------------------------------------------- LRU list (under mu) -- *)

let unlink_node t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  if t.head != Some n then begin
    unlink_node t n;
    push_front t n
  end

let drop_entry t n =
  unlink_node t n;
  Hashtbl.remove t.table n.nkey;
  t.entries <- t.entries - 1;
  t.bytes <- t.bytes - String.length n.payload

let evict_over_capacity t =
  while t.entries > t.cfg.capacity do
    match t.tail with
    | Some n ->
        drop_entry t n;
        t.evictions <- t.evictions + 1
    | None -> t.entries <- t.cfg.capacity (* unreachable *)
  done

let insert_ready t ~key ~payload =
  (match Hashtbl.find_opt t.table key with
  | Some (Ready old) -> drop_entry t old
  | Some (Computing _) | None -> ());
  let n = { nkey = key; payload; prev = None; next = None } in
  Hashtbl.replace t.table key (Ready n);
  push_front t n;
  t.entries <- t.entries + 1;
  t.bytes <- t.bytes + String.length payload;
  evict_over_capacity t

(* --------------------------------------------- disk store (under mu) -- *)

let entry_path dir key = Filename.concat dir key

let disk_header ~key ~bytes =
  J.to_string
    (J.Obj
       [
         ("schema", J.String disk_schema);
         ("fingerprint", J.String (Digest.to_hex (Digest.string fingerprint)));
         ("key", J.String key);
         ("bytes", J.Int bytes);
       ])

(* [`Payload p] on a clean read; [`Corrupt] on any parse/length/field
   mismatch (caller unlinks); [`Absent] when there is no file. *)
let read_disk_file path ~key =
  if not (Sys.file_exists path) then `Absent
  else
    match open_in_bin path with
    | exception Sys_error _ -> `Corrupt
    | ic -> (
        let parse () =
          let header = input_line ic in
          match J.of_string header with
          | Error _ -> `Corrupt
          | Ok doc -> (
              let str k = Option.bind (J.member k doc) J.to_str in
              let bytes = Option.bind (J.member "bytes" doc) J.to_int in
              match (str "schema", str "fingerprint", str "key", bytes) with
              | Some s, Some fp, Some k, Some n
                when s = disk_schema
                     && fp = Digest.to_hex (Digest.string fingerprint)
                     && k = key && n >= 0 ->
                  let remaining = in_channel_length ic - pos_in ic in
                  if remaining <> n then `Corrupt
                  else `Payload (really_input_string ic n)
              | _ -> `Corrupt)
        in
        match
          Fun.protect ~finally:(fun () -> close_in_noerr ic) parse
        with
        | v -> v
        | exception (End_of_file | Sys_error _) -> `Corrupt)

let read_disk t key =
  match t.cfg.dir with
  | None -> `Absent
  | Some dir -> (
      let path = entry_path dir key in
      match read_disk_file path ~key with
      | `Payload _ as p -> p
      | `Absent -> `Absent
      | `Corrupt ->
          (try Sys.remove path with Sys_error _ -> ());
          `Corrupt)

let write_disk t ~key ~payload =
  match t.cfg.dir with
  | None -> ()
  | Some dir -> (
      let tmp =
        Filename.concat dir
          (Printf.sprintf ".tmp-%s-%d" key (Unix.getpid ()))
      in
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc
              (disk_header ~key ~bytes:(String.length payload));
            output_char oc '\n';
            output_string oc payload);
        Sys.rename tmp (entry_path dir key)
      with Sys_error _ | Unix.Unix_error _ ->
        t.disk_errors <- t.disk_errors + 1;
        (try Sys.remove tmp with Sys_error _ -> ()))

(* -------------------------------------------------- single-flight ----- *)

let lookup t ~key =
  if not (enabled t) then
    Compute { tkey = key; tiv = Ivar.create () }
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some (Ready n) ->
            touch t n;
            t.hits <- t.hits + 1;
            Hit n.payload
        | Some (Computing iv) ->
            t.coalesced <- t.coalesced + 1;
            Wait iv
        | None -> (
            match read_disk t key with
            | `Payload payload ->
                t.disk_hits <- t.disk_hits + 1;
                insert_ready t ~key ~payload;
                Disk_hit payload
            | (`Absent | `Corrupt) as r ->
                if r = `Corrupt then t.disk_errors <- t.disk_errors + 1;
                t.misses <- t.misses + 1;
                let tiv = Ivar.create () in
                Hashtbl.replace t.table key (Computing tiv);
                Compute { tkey = key; tiv }))

let resolve t ticket result =
  if enabled t then
    locked t (fun () ->
        match Hashtbl.find_opt t.table ticket.tkey with
        | Some (Computing iv) when iv == ticket.tiv -> (
            match result with
            | Ok payload ->
                insert_ready t ~key:ticket.tkey ~payload;
                t.stores <- t.stores + 1;
                write_disk t ~key:ticket.tkey ~payload
            | Error _ -> Hashtbl.remove t.table ticket.tkey)
        | _ -> () (* cleared (or superseded) while computing *));
  (* wake waiters last-and-always, even on a disabled cache *)
  Ivar.fill ticket.tiv result

(* ------------------------------------------------- stats / control ---- *)

type stats = {
  entries : int;
  bytes : int;
  capacity : int;
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  disk_hits : int;
  disk_errors : int;
  stores : int;
  clears : int;
}

let stats t =
  locked t (fun () ->
      {
        entries = t.entries;
        bytes = t.bytes;
        capacity = t.cfg.capacity;
        hits = t.hits;
        misses = t.misses;
        coalesced = t.coalesced;
        evictions = t.evictions;
        disk_hits = t.disk_hits;
        disk_errors = t.disk_errors;
        stores = t.stores;
        clears = t.clears;
      })

let stats_json t =
  let s = stats t in
  J.Obj
    [
      ("enabled", J.Bool (enabled t));
      ("capacity", J.Int s.capacity);
      ("entries", J.Int s.entries);
      ("bytes", J.Int s.bytes);
      ("hits", J.Int s.hits);
      ("misses", J.Int s.misses);
      ("coalesced", J.Int s.coalesced);
      ("evictions", J.Int s.evictions);
      ("disk_hits", J.Int s.disk_hits);
      ("disk_errors", J.Int s.disk_errors);
      ("stores", J.Int s.stores);
      ("clears", J.Int s.clears);
      ( "dir",
        match t.cfg.dir with Some d -> J.String d | None -> J.Null );
    ]

let clear t =
  locked t (fun () ->
      (* keep Computing slots: their leaders re-publish fresh results *)
      let ready =
        Hashtbl.fold
          (fun _ slot acc ->
            match slot with Ready n -> n :: acc | Computing _ -> acc)
          t.table []
      in
      List.iter (drop_entry t) ready;
      (match t.cfg.dir with
      | Some dir when Sys.file_exists dir ->
          Array.iter
            (fun name ->
              if
                is_key_name name
                || String.length name >= 5 && String.sub name 0 5 = ".tmp-"
              then
                try Sys.remove (Filename.concat dir name)
                with Sys_error _ -> ())
            (Sys.readdir dir)
      | _ -> ());
      t.clears <- t.clears + 1)
