(** The reusable worker fleet: a fixed set of domains consuming jobs
    from one bounded {!Jobq}.

    Unlike {!Exec.Pool} — which spawns domains per [map] call and owns
    the whole result merge — the engine is long-lived: domains are
    spawned once at {!start} and serve unrelated jobs until {!drain}.
    A job is an opaque [unit -> unit] thunk; completion signalling and
    result transport are the submitter's business (close over an
    {!Ivar}). Thunks run on a worker {e domain}, so they see that
    domain's metrics registry, and they must not raise — a raising
    thunk is swallowed (the worker survives; the submitter's ivar
    would stay empty), so wrap the body in your own [try]/[with].

    Rejections are immediate and never block the submitter:
    [`Queue_full] is the backpressure signal (bounded queue at
    capacity), [`Draining] means {!drain} has begun. *)

type t

val start : ?workers:int -> ?queue_capacity:int -> unit -> t
(** [workers] (default 2) is clamped to [1, 64]; [queue_capacity]
    (default 64) to at least 1. *)

val workers : t -> int
val queue_capacity : t -> int

val queue_depth : t -> int
(** Jobs accepted but not yet picked up by a worker. *)

val in_flight : t -> int
(** Jobs currently executing on a worker. *)

val dispatched : t -> int
(** Total jobs ever picked up by a worker (monotonic) — [queue_depth]'s
    cumulative counterpart, for utilization accounting. *)

val submit : t -> (unit -> unit) -> [ `Ok | `Queue_full | `Draining ]

val drain : t -> unit
(** Graceful shutdown: refuse new submissions, let queued and running
    jobs complete, then join every worker domain. Blocks until the
    fleet is gone; idempotent (concurrent callers all block until the
    first drain finishes). *)
