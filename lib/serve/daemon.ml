module J = Obs.Json
module M = Obs.Metrics

type t = {
  sock_path : string;
  listen_fd : Unix.file_descr;
  engine : Engine.t;
  cache : Cache.t;
  max_request_bytes : int;
  started_at : float;
  stopping : bool Atomic.t;
  conn_mu : Mutex.t;
  conn_cv : Condition.t;
  mutable conn_count : int;
  mutable accept_thread : Thread.t option;
  stop_mu : Mutex.t;
  mutable stopped : bool;
  (* The daemon-side registry is the main domain's, shared by every
     connection thread; Metrics is domain-local but not thread-safe, so
     all daemon-side metric traffic goes through this mutex. *)
  reg_mu : Mutex.t;
  (* Observability: spans flow into [trace_sink] (None = tracing off —
     the request path touches no clock or scope beyond one branch);
     requests slower than [slow_ms] log one structured JSON line to
     [slow_out] under [slow_mu]. *)
  trace_sink : Obs.Span.sink option;
  slow_ms : float option;
  slow_out : out_channel;
  slow_mu : Mutex.t;
}

(* ------------------------------------------------------- metrics ----- *)

let known_methods =
  [
    "run";
    "check";
    "sweep";
    "stats";
    "sleep";
    "exp";
    "check_unit";
    "health";
    "metrics";
    "cache";
  ]

let method_label m = if List.mem m known_methods then m else "other"

let with_registry t f =
  Mutex.lock t.reg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_mu) f

(* Log-spaced (HDR-style) bounds: 0.1ms .. 60s at 1-2-5 resolution, so
   one histogram keeps p50/p95/p99 readable for both a 200µs health
   check and a multi-second sweep. *)
let latency_buckets = M.log_buckets ~lo:0.1 ~hi:60_000. ()

let record_request t ~meth ~code ~wall_ms =
  with_registry t (fun () ->
      M.incr (M.counter (Printf.sprintf "serve.requests{method=%s}" (method_label meth)));
      M.incr (M.counter (Printf.sprintf "serve.responses{code=%s}" code));
      M.observe
        (M.histogram ~buckets:latency_buckets
           (Printf.sprintf "serve.latency_ms{method=%s}" (method_label meth)))
        wall_ms;
      M.set (M.gauge "serve.queue.depth") (float_of_int (Engine.queue_depth t.engine));
      M.set (M.gauge "serve.in_flight") (float_of_int (Engine.in_flight t.engine)))

(* Sampled when a job is accepted into the queue — every dispatch, from
   the conn thread (worker domains have their own DLS registry, so
   sampling there would be invisible to the daemon's snapshot). *)
let record_dispatch t =
  with_registry t (fun () ->
      let depth = Engine.queue_depth t.engine in
      let workers = Engine.workers t.engine in
      M.observe
        (M.histogram
           ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
           "serve.queue.depth_at_dispatch")
        (float_of_int depth);
      M.set (M.gauge "serve.dispatched")
        (float_of_int (Engine.dispatched t.engine));
      M.set
        (M.gauge "serve.worker.utilization")
        (float_of_int (Engine.in_flight t.engine) /. float_of_int workers))

(* Cache gauges (and the eviction counter, which the cache tracks
   internally) are synced from a stats snapshot; event counters are
   bumped one per lookup outcome. All under [reg_mu] like every other
   daemon-side metric. *)
let sync_cache_gauges_locked t =
  let s = Cache.stats t.cache in
  M.set (M.gauge "serve.cache.entries") (float_of_int s.Cache.entries);
  M.set (M.gauge "serve.cache.bytes") (float_of_int s.Cache.bytes);
  let ev = M.counter "serve.cache.evictions" in
  M.incr ~by:(max 0 (s.Cache.evictions - M.counter_value ev)) ev

let sync_cache_gauges t = with_registry t (fun () -> sync_cache_gauges_locked t)

let record_cache t ~event =
  with_registry t (fun () ->
      M.incr (M.counter (Printf.sprintf "serve.cache.%s" event));
      sync_cache_gauges_locked t)

let record_spans t ~exported ~dropped =
  if exported > 0 || dropped > 0 then
    with_registry t (fun () ->
        M.incr ~by:exported (M.counter "serve.spans.exported");
        if dropped > 0 then M.incr ~by:dropped (M.counter "serve.spans.dropped"))

let set_connections t n =
  with_registry t (fun () -> M.set (M.gauge "serve.connections") (float_of_int n))

(* ------------------------------------------------ inline handlers ---- *)

let health_json t =
  J.Obj
    [
      ("status", J.String (if Atomic.get t.stopping then "draining" else "ok"));
      ("workers", J.Int (Engine.workers t.engine));
      ("queue_depth", J.Int (Engine.queue_depth t.engine));
      ("queue_capacity", J.Int (Engine.queue_capacity t.engine));
      ("in_flight", J.Int (Engine.in_flight t.engine));
      ("dispatched", J.Int (Engine.dispatched t.engine));
      ("connections", J.Int t.conn_count);
      ("uptime_ms", J.Float ((Unix.gettimeofday () -. t.started_at) *. 1000.));
    ]

let metrics_json t = with_registry t (fun () -> M.to_json (M.snapshot ()))

(* [metrics] accepts an optional {"format": "json" | "prom"} param;
   prom wraps the exposition text so the envelope stays JSON. *)
let metrics_payload t params =
  match List.filter (fun (k, _) -> k <> "format") params with
  | (k, _) :: _ ->
      Error (Proto.err Bad_request "unknown \"metrics\" parameter %S" k)
  | [] -> (
      match List.assoc_opt "format" params with
      | None | Some (J.String "json") -> Ok (metrics_json t)
      | Some (J.String "prom") ->
          let text =
            with_registry t (fun () -> Obs.Prom.render (M.snapshot ()))
          in
          Ok
            (J.Obj
               [
                 ("content_type", J.String Obs.Prom.content_type);
                 ("body", J.String text);
               ])
      | Some _ ->
          Error
            (Proto.err Bad_request "\"format\" must be \"json\" or \"prom\""))

(* [cache] accepts an optional {"op": "stats" | "clear"} param and
   answers with the stats snapshot (post-clear when clearing). Answered
   inline by the connection thread, like [health] and [metrics], so it
   works while the fleet is busy or draining. *)
let cache_payload t params =
  match List.filter (fun (k, _) -> k <> "op") params with
  | (k, _) :: _ -> Error (Proto.err Bad_request "unknown \"cache\" parameter %S" k)
  | [] -> (
      match List.assoc_opt "op" params with
      | None | Some (J.String "stats") -> Ok (Cache.stats_json t.cache)
      | Some (J.String "clear") ->
          Cache.clear t.cache;
          sync_cache_gauges t;
          Ok (Cache.stats_json t.cache)
      | Some _ ->
          Error (Proto.err Bad_request "\"op\" must be \"stats\" or \"clear\""))

let slow_log t ~trace ~id ~meth ~code ~wall_ms =
  match t.slow_ms with
  | Some threshold when wall_ms >= threshold ->
      let line =
        J.to_string
          (J.Obj
             [
               ("event", J.String "slow_request");
               ("ts", J.Float (Unix.gettimeofday ()));
               ("method", J.String meth);
               ("id", id);
               ( "trace",
                 match trace with Some tr -> J.String tr | None -> J.Null );
               ("code", J.String code);
               ("wall_ms", J.Float wall_ms);
               ("queue_depth", J.Int (Engine.queue_depth t.engine));
               ("in_flight", J.Int (Engine.in_flight t.engine));
             ])
      in
      Mutex.lock t.slow_mu;
      output_string t.slow_out (line ^ "\n");
      (try flush t.slow_out with Sys_error _ -> ());
      Mutex.unlock t.slow_mu
  | _ -> ()

(* ---------------------------------------------------- connection ----- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

(* One request line -> one response line. Returns [false] when the
   peer is gone and the connection should close.

   Tracing: a request is traced when it carries a [trace] id AND the
   daemon has a sink — both off means the only cost is the [scope]
   branch below, and the response bytes are identical either way. The
   scope travels conn-thread -> worker -> conn-thread; the Ivar's
   mutex orders the handoffs, so it never has two concurrent writers. *)
(* The payload of a successful response: a cache hit (or the miss that
   populated it) carries already-rendered bytes; everything else is a
   JSON document rendered at response time. Splicing stored bytes via
   [Proto.ok_response_rendered] makes a replayed hit byte-identical to
   the response that populated it by construction. *)
type payload = Doc of J.t | Rendered of string

let deadline_of t ~t0 (req : Proto.request) =
  match req.deadline_ms with
  | None -> fun () -> false
  | Some ms ->
      (* a draining daemon cannot honor latency promises:
         deadline-bearing requests are cancelled at the next poll once
         drain begins, instead of holding the drain for work the
         client has budgeted *)
      let at = t0 +. (float_of_int ms /. 1000.) in
      fun () -> Unix.gettimeofday () > at || Atomic.get t.stopping

(* Submit one work request to the engine fleet and park on its Ivar. *)
let execute t ~(req : Proto.request) ~sc ~root ~t0 =
  let deadline = deadline_of t ~t0 req in
  let qid = Obs.Span.start ~parent:root sc "queue_wait" in
  let iv = Ivar.create () in
  let job () =
    Obs.Span.finish sc qid;
    let did = Obs.Span.start ~parent:root sc "dispatch" in
    let r =
      (* a request can spend its whole deadline queued *)
      if deadline () then begin
        Obs.Span.finish ~truncated:true sc did;
        Error (Proto.err Deadline_exceeded "deadline expired while queued")
      end
      else begin
        Obs.Span.finish sc did;
        let eid = Obs.Span.start ~parent:root sc "execute" in
        Obs.Span.set_parent sc eid;
        let r =
          try Service.handle ~deadline ~spans:sc req
          with e ->
            Error
              (Proto.err Internal "uncaught exception: %s"
                 (Printexc.to_string e))
        in
        let cut =
          match r with
          | Error { Proto.code = Proto.Deadline_exceeded; _ } -> true
          | _ -> false
        in
        Obs.Span.finish ~truncated:cut sc eid;
        Obs.Span.set_parent sc root;
        r
      end
    in
    Ivar.fill iv r
  in
  match Engine.submit t.engine job with
  | `Ok ->
      record_dispatch t;
      Ivar.read iv
  | `Queue_full ->
      Obs.Span.finish ~truncated:true sc qid;
      Error
        (Proto.err Queue_full "job queue is at capacity (%d); retry later"
           (Engine.queue_capacity t.engine))
  | `Draining ->
      Obs.Span.finish ~truncated:true sc qid;
      Error (Proto.err Shutting_down "daemon is draining")

(* Cache-first dispatch for run/check/sweep. The lookup happens before
   the [stopping] and queue checks, so hits are served from the
   connection thread even while the fleet is saturated or draining —
   only a miss pays the engine queue. Misses are single-flight: the
   leader computes via [execute], publishes the rendered bytes, and
   coalesced waiters reuse them verbatim. Errors are never cached. *)
let serve_cacheable t ~(req : Proto.request) ~sc ~root ~t0 =
  let lk0 = if Obs.Span.enabled sc then Obs.Span.now_us () else 0 in
  let cache_span name =
    if Obs.Span.enabled sc then
      ignore
        (Obs.Span.emit ~parent:root sc ~name ~start_us:lk0
           ~stop_us:(Obs.Span.now_us ()) ())
  in
  let key = Cache.key ~meth:req.meth ~params:req.params in
  match Cache.lookup t.cache ~key with
  | Cache.Hit payload ->
      cache_span "cache.hit";
      record_cache t ~event:"hits";
      Ok (Rendered payload)
  | Cache.Disk_hit payload ->
      cache_span "cache.disk_hit";
      record_cache t ~event:"disk_hits";
      Ok (Rendered payload)
  | Cache.Wait iv ->
      record_cache t ~event:"coalesced";
      let wid = Obs.Span.start ~parent:root sc "cache.coalesced" in
      let r = Ivar.read iv in
      Obs.Span.finish ~truncated:(Result.is_error r) sc wid;
      Result.map (fun p -> Rendered p) r
  | Cache.Compute ticket ->
      cache_span "cache.miss";
      record_cache t ~event:"misses";
      let computed =
        (* every exit path must resolve the ticket, or waiters hang *)
        if Atomic.get t.stopping then
          Error (Proto.err Shutting_down "daemon is draining; retry elsewhere")
        else
          match execute t ~req ~sc ~root ~t0 with
          | r -> Result.map J.to_string r
          | exception e ->
              Error
                (Proto.err Internal "uncaught exception: %s"
                   (Printexc.to_string e))
      in
      Cache.resolve t.cache ticket computed;
      sync_cache_gauges t;
      Result.map (fun p -> Rendered p) computed

let serve_line t fd line =
  let t0 = Unix.gettimeofday () in
  let t0_us = if t.trace_sink <> None then Obs.Span.now_us () else 0 in
  let wall_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
  let meth_of = function Ok (r : Proto.request) -> r.meth | Error _ -> "invalid" in
  let parsed = Proto.parse_request ~max_bytes:t.max_request_bytes line in
  let parse_us = if t.trace_sink <> None then Obs.Span.now_us () else 0 in
  let scope = ref Obs.Span.null in
  let open_trace (req : Proto.request) =
    (match (t.trace_sink, req.trace) with
    | Some _, Some trace -> scope := Obs.Span.make ~trace ()
    | _ -> ());
    let sc = !scope in
    let root = Obs.Span.start ~parent:0 ~at:t0_us sc "request" in
    ignore
      (Obs.Span.emit ~parent:root sc ~name:"parse" ~start_us:t0_us
         ~stop_us:parse_us ());
    (sc, root)
  in
  let id, result =
    match parsed with
    | Error (e, id) -> (id, Error e)
    | Ok req -> (
        ( req.id,
          match req.meth with
          | "health" -> Ok (Doc (health_json t))
          | "metrics" ->
              Result.map (fun p -> Doc p) (metrics_payload t req.params)
          | "cache" -> Result.map (fun p -> Doc p) (cache_payload t req.params)
          | m when Cache.enabled t.cache && Cache.cacheable m ->
              let sc, root = open_trace req in
              serve_cacheable t ~req ~sc ~root ~t0
          | _ when Atomic.get t.stopping ->
              Error (Proto.err Shutting_down "daemon is draining; retry elsewhere")
          | _ ->
              let sc, root = open_trace req in
              Result.map (fun p -> Doc p) (execute t ~req ~sc ~root ~t0) ))
  in
  let scope = !scope in
  (* span 1 is always the root "request" span of an enabled scope *)
  let rid = Obs.Span.start ~parent:1 scope "render" in
  let wall_ms = wall_ms () in
  let code =
    match result with Ok _ -> "ok" | Error e -> Proto.code_to_string e.Proto.code
  in
  record_request t ~meth:(meth_of parsed) ~code ~wall_ms;
  slow_log t
    ~trace:(match parsed with Ok r -> r.Proto.trace | Error _ -> None)
    ~id ~meth:(meth_of parsed) ~code ~wall_ms;
  let body =
    match result with
    | Ok (Doc payload) -> J.to_string (Proto.ok_response ~id ~wall_ms payload)
    | Ok (Rendered payload) -> Proto.ok_response_rendered ~id ~wall_ms payload
    | Error e -> J.to_string (Proto.error_response ~id ~wall_ms e)
  in
  (* Spans are absorbed into the sink BEFORE the response bytes go out:
     a client that has received its reply may rely on the trace being
     exported already (the CI smoke job and tests do exactly that). *)
  if Obs.Span.enabled scope then begin
    Obs.Span.finish scope rid;
    let cut =
      match result with
      | Error { Proto.code = Proto.Deadline_exceeded; _ } -> true
      | _ -> false
    in
    (* span 1 is the root "request" span; close stragglers truncated *)
    Obs.Span.finish ~truncated:cut scope 1;
    Obs.Span.finish_open scope;
    (match t.trace_sink with
    | Some sink -> Obs.Span.absorb sink scope
    | None -> ());
    record_spans t
      ~exported:(List.length (Obs.Span.spans scope))
      ~dropped:(Obs.Span.dropped scope)
  end;
  match write_all fd (body ^ "\n") with
  | () -> true
  | exception Unix.Unix_error _ -> false

let conn_loop t fd =
  let pending = ref "" in
  let chunk = Bytes.create 8192 in
  let running = ref true in
  let take_line () =
    match String.index_opt !pending '\n' with
    | None -> None
    | Some i ->
        let line = String.sub !pending 0 i in
        pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
        let line =
          if line <> "" && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        Some line
  in
  (try
     while !running do
       match take_line () with
       | Some "" -> () (* blank lines are keep-alives *)
       | Some line -> running := serve_line t fd line
       | None ->
           if Atomic.get t.stopping then running := false
           else if String.length !pending > t.max_request_bytes then begin
             (* refuse to buffer unboundedly while hunting a newline *)
             ignore
               (serve_line t fd
                  (String.sub !pending 0 (t.max_request_bytes + 1)));
             running := false
           end
           else begin
             match Unix.select [ fd ] [] [] 0.25 with
             | [], _, _ -> ()
             | _ ->
                 let n = Unix.read fd chunk 0 (Bytes.length chunk) in
                 if n = 0 then running := false
                 else pending := !pending ^ Bytes.sub_string chunk 0 n
           end
     done
   with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conn_mu;
  t.conn_count <- t.conn_count - 1;
  let n = t.conn_count in
  Condition.broadcast t.conn_cv;
  Mutex.unlock t.conn_mu;
  set_connections t n

(* -------------------------------------------------------- accept ----- *)

let accept_loop t =
  let rec go () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              if Atomic.get t.stopping then Unix.close fd
              else begin
                Mutex.lock t.conn_mu;
                t.conn_count <- t.conn_count + 1;
                let n = t.conn_count in
                Mutex.unlock t.conn_mu;
                set_connections t n;
                ignore (Thread.create (conn_loop t) fd)
              end
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      go ()
    end
  in
  go ()

(* ----------------------------------------------------- lifecycle ----- *)

let start ?workers ?queue_capacity ?(cache = Cache.default_config)
    ?(max_request_bytes = 1 lsl 20) ?trace ?slow_ms ?slow_out ~socket () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  let t =
    {
      sock_path = socket;
      listen_fd;
      engine = Engine.start ?workers ?queue_capacity ();
      cache = Cache.create ~config:cache ();
      max_request_bytes;
      started_at = Unix.gettimeofday ();
      stopping = Atomic.make false;
      conn_mu = Mutex.create ();
      conn_cv = Condition.create ();
      conn_count = 0;
      accept_thread = None;
      stop_mu = Mutex.create ();
      stopped = false;
      reg_mu = Mutex.create ();
      trace_sink = trace;
      slow_ms;
      slow_out = Option.value ~default:stderr slow_out;
      slow_mu = Mutex.create ();
    }
  in
  (* Pre-register the cache metric family so the exposition carries
     every series from the first scrape, zeros included — a dashboard
     should not need a cache hit to learn the counter's name. *)
  if Cache.enabled t.cache then
    with_registry t (fun () ->
        List.iter
          (fun event ->
            ignore (M.counter (Printf.sprintf "serve.cache.%s" event)))
          [ "hits"; "misses"; "disk_hits"; "coalesced" ];
        sync_cache_gauges_locked t);
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let socket_path t = t.sock_path
let queue_depth t = Engine.queue_depth t.engine
let in_flight t = Engine.in_flight t.engine
let dispatched t = Engine.dispatched t.engine
let draining t = Atomic.get t.stopping
let cache_stats t = Cache.stats t.cache

let connections t =
  Mutex.lock t.conn_mu;
  let n = t.conn_count in
  Mutex.unlock t.conn_mu;
  n

let stop t =
  Atomic.set t.stopping true;
  Mutex.lock t.stop_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.stop_mu)
    (fun () ->
      if not t.stopped then begin
        (match t.accept_thread with
        | Some th ->
            Thread.join th;
            t.accept_thread <- None
        | None -> ());
        (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
        (try Unix.unlink t.sock_path with Unix.Unix_error _ -> ());
        (* connection threads notice [stopping] within one select tick,
           finish the request they are blocked on (its job still runs —
           the engine drains only after they are gone), and exit *)
        Mutex.lock t.conn_mu;
        while t.conn_count > 0 do
          Condition.wait t.conn_cv t.conn_mu
        done;
        Mutex.unlock t.conn_mu;
        Engine.drain t.engine;
        (match t.trace_sink with
        | Some sink -> Obs.Span.flush sink
        | None -> ());
        t.stopped <- true
      end)

let run_forever t =
  let requested = Atomic.make false in
  let on_signal _ = Atomic.set requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  while not (Atomic.get requested) do
    Unix.sleepf 0.1
  done;
  stop t
