type t = {
  mu : Mutex.t;
  items : int array;  (** [items.(head .. tail-1)] queued, ascending *)
  mutable head : int;
  mutable tail : int;
}

let create ~capacity =
  {
    mu = Mutex.create ();
    items = Array.make (max 1 capacity) 0;
    head = 0;
    tail = 0;
  }

let locked d f =
  Mutex.lock d.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.mu) f

let seed d stripe =
  locked d (fun () ->
      Array.blit stripe 0 d.items 0 (Array.length stripe);
      d.head <- 0;
      d.tail <- Array.length stripe)

let size d = locked d (fun () -> d.tail - d.head)

let pop d =
  locked d (fun () ->
      if d.head >= d.tail then None
      else begin
        let i = d.items.(d.head) in
        d.head <- d.head + 1;
        Some i
      end)

let steal_half ~victim ~into =
  (* Two-phase: extract under the victim's lock, append under the
     thief's. The extracted units are invisible in between — owned by
     the thief, same as a popped unit being executed. *)
  let batch =
    locked victim (fun () ->
        let avail = victim.tail - victim.head in
        if avail <= 0 then [||]
        else begin
          let k = (avail + 1) / 2 in
          let b = Array.sub victim.items (victim.tail - k) k in
          victim.tail <- victim.tail - k;
          b
        end)
  in
  let k = Array.length batch in
  if k > 0 then
    locked into (fun () ->
        (* Compact first if the tail has no room: the live region can
           only have shrunk since seeding, so after sliding it to the
           front the append always fits (total queued <= capacity). *)
        if into.tail + k > Array.length into.items then begin
          let live = into.tail - into.head in
          Array.blit into.items into.head into.items 0 live;
          into.head <- 0;
          into.tail <- live
        end;
        Array.blit batch 0 into.items into.tail k;
        into.tail <- into.tail + k);
  k
