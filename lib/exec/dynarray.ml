type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max capacity 1) 0; len = 0 }
let length t = t.len
let clear t = t.len <- 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarray.get: index out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Dynarray.set: index out of bounds";
  t.data.(i) <- v

let ensure t cap =
  let n = Array.length t.data in
  if cap > n then begin
    let grown = Array.make (max cap (2 * n)) 0 in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end

let push t v =
  ensure t (t.len + 1);
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t = List.init t.len (fun i -> t.data.(i))

(* Insertion sort over the live prefix (typical inputs are a handful of
   elements), then in-place dedup: equivalent to [List.sort_uniq
   Int.compare] over the same multiset. *)
let sort_uniq t =
  let a = t.data in
  for i = 1 to t.len - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done;
  if t.len > 1 then begin
    let w = ref 1 in
    for r = 1 to t.len - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    t.len <- !w
  end
