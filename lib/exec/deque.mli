(** Per-worker work-stealing deques over unit indices.

    Each pool worker owns one deque, seeded with its static stripe of
    unit indices before the domains start. The owner drains its deque
    from the low-index end ([pop]); a worker that runs dry picks a
    victim and moves the {e high-index half} of the victim's remaining
    units into its own deque ([steal_half]) — the victim keeps the
    units it would reach soonest, the thief takes the tail the victim
    is furthest from.

    No unit is ever added after seeding, so the total work is fixed:
    when every deque is empty the sweep is over (in-flight units are
    owned by the worker executing them and never re-enter a deque).
    Every index is popped exactly once, by exactly one worker — the
    mutex per deque makes pop/steal mutually atomic.

    This is deliberately a lock-based deque, not a lock-free Chase-Lev:
    pool units are whole DPOR branch explorations or bench repetitions,
    coarse enough that one uncontended lock per unit is noise, and the
    steal-half transfer (bulk move under both locks) has no clean
    lock-free analogue. *)

type t

val create : capacity:int -> t
(** An empty deque able to hold up to [capacity] indices. Capacity is
    fixed: with steal-half over a fixed unit population a deque can
    never need more than the total unit count. *)

val seed : t -> int array -> unit
(** Load the initial stripe, in the order the owner should pop it
    (ascending unit index). Call before the worker domains start. *)

val size : t -> int
(** Units currently queued (racy snapshot — advisory, for victim
    selection). *)

val pop : t -> int option
(** Take the next unit from the owner's end (lowest queued index), or
    [None] if the deque is empty. *)

val steal_half : victim:t -> into:t -> int
(** Move the ceiling-half of [victim]'s queued units — the high-index
    end — into [into], preserving ascending order. Returns the number
    of units moved (0 if the victim was empty). Locks the victim to
    extract, then the destination to append — never both at once, so
    two thieves raiding each other cannot deadlock. *)
