(** A growable int buffer for checker hot paths.

    Preallocated backing storage with amortized O(1) {!push} and O(1)
    indexed access; {!clear} resets the length without releasing the
    storage, so one buffer can be reused across executions with no
    per-run allocation. Int-specialized to keep elements unboxed. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty buffer. [capacity] (default 8) preallocates storage. *)

val length : t -> int

val clear : t -> unit
(** Length back to 0; storage is retained. *)

val get : t -> int -> int
(** Raises [Invalid_argument] out of [0 .. length - 1]. *)

val set : t -> int -> int -> unit

val push : t -> int -> unit
(** Append, growing the backing array geometrically when full. *)

val iter : (int -> unit) -> t -> unit
val to_list : t -> int list

val sort_uniq : t -> unit
(** Sort the contents ascending and drop duplicates, in place —
    equivalent to [List.sort_uniq Int.compare] on {!to_list}. *)
