type t = { jobs : int }

let create ?(jobs = 1) () = { jobs = max 1 (min 64 jobs) }
let jobs t = t.jobs

(* Set in worker domains so nested pool calls degrade to inline serial
   execution instead of spawning domains or windowing metrics. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Registered lazily so purely serial processes never grow exec.* rows
   in their stats output. *)
let m_runs = lazy (Obs.Metrics.counter "exec.pool.runs")
let m_units = lazy (Obs.Metrics.counter "exec.pool.units")

type 'a slot =
  | Done of 'a * Obs.Metrics.snapshot
  | Failed of exn * Printexc.raw_backtrace * Obs.Metrics.snapshot

let rec atomic_min a i =
  let cur = Atomic.get a in
  if i < cur && not (Atomic.compare_and_set a cur i) then atomic_min a i

let serial_until ~stop ~f n =
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let v = f i in
      if stop v then List.rev (v :: acc) else go (i + 1) (v :: acc)
  in
  go 0 []

let map_until t ~stop ~f n =
  if n <= 0 then []
  else if t.jobs <= 1 || n = 1 || Domain.DLS.get in_worker then
    serial_until ~stop ~f n
  else begin
    let jobs = min t.jobs n in
    let slots = Array.make n None in
    (* Highest index the merge will keep: lowered to the first stopping
       (or raising) unit. Deque discipline hands each index to exactly
       one worker; [cut] only ever decreases and an index is executed
       iff it is <= cut at claim time, so every unit <= the final cut
       is guaranteed to have run (and skipped units are never merged). *)
    let cut = Atomic.make (n - 1) in
    (* One deque per worker, seeded with its [index mod jobs] stripe in
       ascending order. No unit is added after seeding, so the sweep is
       over exactly when every deque has drained. *)
    let deques = Array.init jobs (fun _ -> Deque.create ~capacity:n) in
    for wid = 0 to jobs - 1 do
      let len = (n - wid + jobs - 1) / jobs in
      Deque.seed deques.(wid) (Array.init len (fun k -> wid + (k * jobs)))
    done;
    let worker wid () =
      Domain.DLS.set in_worker true;
      let t0 = Unix.gettimeofday () in
      let claimed = ref 0 and steals = ref 0 and steal_batches = ref 0 in
      (* Own deque first; dry, raid the victims round-robin, moving
         half a victim's tail into our deque per raid. A full scan with
         every deque empty means only in-flight units remain — those
         are owned by their executors and never respawn, so exit. *)
      let rec obtain () =
        match Deque.pop deques.(wid) with
        | Some i -> Some i
        | None -> raid 1
      and raid off =
        if off >= jobs then None
        else begin
          let v = (wid + off) mod jobs in
          if
            Deque.size deques.(v) > 0
            && Deque.steal_half ~victim:deques.(v) ~into:deques.(wid) > 0
          then begin
            incr steal_batches;
            obtain ()
          end
          else raid (off + 1)
        end
      in
      let rec loop () =
        match obtain () with
        | None -> ()
        | Some i ->
            if i <= Atomic.get cut then begin
              incr claimed;
              if i mod jobs <> wid then incr steals;
              Obs.Metrics.reset ();
              (match f i with
              | v ->
                  let snap = Obs.Metrics.snapshot () in
                  slots.(i) <- Some (Done (v, snap));
                  if stop v then atomic_min cut i
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  let snap = Obs.Metrics.snapshot () in
                  slots.(i) <- Some (Failed (e, bt, snap));
                  atomic_min cut i)
            end;
            loop ()
      in
      loop ();
      (!claimed, !steals, !steal_batches,
       (Unix.gettimeofday () -. t0) *. 1000.)
    in
    let domains =
      Array.init jobs (fun wid -> Domain.spawn (fun () -> worker wid ()))
    in
    let wstats = Array.map Domain.join domains in
    let last = Atomic.get cut in
    let acc = ref [] and failed = ref None in
    for i = 0 to last do
      match slots.(i) with
      | Some (Done (v, snap)) ->
          Obs.Metrics.absorb snap;
          acc := v :: !acc
      | Some (Failed (e, bt, snap)) ->
          Obs.Metrics.absorb snap;
          failed := Some (e, bt)
      | None -> assert false
    done;
    Obs.Metrics.incr (Lazy.force m_runs);
    Obs.Metrics.incr ~by:(last + 1) (Lazy.force m_units);
    Array.iteri
      (fun wid (claimed, steals, steal_batches, wall_ms) ->
        let set name v =
          Obs.Metrics.set
            (Obs.Metrics.gauge
               (Printf.sprintf "exec.pool.worker.%s{worker=%d}" name wid))
            v
        in
        set "units" (float_of_int claimed);
        set "steals" (float_of_int steals);
        set "steal_batches" (float_of_int steal_batches);
        set "wall_ms" wall_ms)
      wstats;
    (match !failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    List.rev !acc
  end

let map t ~f n = map_until t ~stop:(fun _ -> false) ~f n

let map_list t ~f xs =
  let arr = Array.of_list xs in
  map t ~f:(fun i -> f arr.(i)) (Array.length arr)
