type t = { jobs : int }

let create ?(jobs = 1) () = { jobs = max 1 (min 64 jobs) }
let jobs t = t.jobs

(* Set in worker domains so nested pool calls degrade to inline serial
   execution instead of spawning domains or windowing metrics. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Registered lazily so purely serial processes never grow exec.* rows
   in their stats output. *)
let m_runs = lazy (Obs.Metrics.counter "exec.pool.runs")
let m_units = lazy (Obs.Metrics.counter "exec.pool.units")

type 'a slot =
  | Done of 'a * Obs.Metrics.snapshot
  | Failed of exn * Printexc.raw_backtrace * Obs.Metrics.snapshot

let rec atomic_min a i =
  let cur = Atomic.get a in
  if i < cur && not (Atomic.compare_and_set a cur i) then atomic_min a i

let serial_until ~stop ~f n =
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let v = f i in
      if stop v then List.rev (v :: acc) else go (i + 1) (v :: acc)
  in
  go 0 []

let map_until t ~stop ~f n =
  if n <= 0 then []
  else if t.jobs <= 1 || n = 1 || Domain.DLS.get in_worker then
    serial_until ~stop ~f n
  else begin
    let jobs = min t.jobs n in
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    (* Highest index the merge will keep: lowered to the first stopping
       (or raising) unit. Units are claimed in index order from [next],
       so every unit <= the final cut is guaranteed to have run. *)
    let cut = Atomic.make (n - 1) in
    let worker wid () =
      Domain.DLS.set in_worker true;
      let t0 = Unix.gettimeofday () in
      let claimed = ref 0 and steals = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          if i <= Atomic.get cut then begin
            incr claimed;
            if i mod jobs <> wid then incr steals;
            Obs.Metrics.reset ();
            (match f i with
            | v ->
                let snap = Obs.Metrics.snapshot () in
                slots.(i) <- Some (Done (v, snap));
                if stop v then atomic_min cut i
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                let snap = Obs.Metrics.snapshot () in
                slots.(i) <- Some (Failed (e, bt, snap));
                atomic_min cut i)
          end;
          loop ()
        end
      in
      loop ();
      (!claimed, !steals, (Unix.gettimeofday () -. t0) *. 1000.)
    in
    let domains =
      Array.init jobs (fun wid -> Domain.spawn (fun () -> worker wid ()))
    in
    let wstats = Array.map Domain.join domains in
    let last = Atomic.get cut in
    let acc = ref [] and failed = ref None in
    for i = 0 to last do
      match slots.(i) with
      | Some (Done (v, snap)) ->
          Obs.Metrics.absorb snap;
          acc := v :: !acc
      | Some (Failed (e, bt, snap)) ->
          Obs.Metrics.absorb snap;
          failed := Some (e, bt)
      | None -> assert false
    done;
    Obs.Metrics.incr (Lazy.force m_runs);
    Obs.Metrics.incr ~by:(last + 1) (Lazy.force m_units);
    Array.iteri
      (fun wid (claimed, steals, wall_ms) ->
        let set name v =
          Obs.Metrics.set
            (Obs.Metrics.gauge
               (Printf.sprintf "exec.pool.worker.%s{worker=%d}" name wid))
            v
        in
        set "units" (float_of_int claimed);
        set "steals" (float_of_int steals);
        set "wall_ms" wall_ms)
      wstats;
    (match !failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    List.rev !acc
  end

let map t ~f n = map_until t ~stop:(fun _ -> false) ~f n

let map_list t ~f xs =
  let arr = Array.of_list xs in
  map t ~f:(fun i -> f arr.(i)) (Array.length arr)
