(** Domain-based parallel sweep runner with a deterministic merge.

    A pool shards independent work units — experiment seeds, DPOR root
    branches, bench repetitions — across a fixed number of worker
    domains. Each worker owns a {!Deque} seeded with its
    [index mod jobs] stripe; a worker that drains its deque raids the
    other workers round-robin, moving half of a victim's remaining tail
    into its own deque per raid (see {!Deque.steal_half}). Scheduling
    is therefore dynamic — a worker stuck on one pathological unit
    loses the rest of its stripe to idle peers instead of serializing
    the sweep — but {e results are merged keyed by unit index, never by
    completion order}: [map] with [jobs = 1] and [jobs = N] return
    element-for-element identical lists, and the metrics absorbed into
    the caller's registry are identical too, so rendered tables, JSONL
    traces, and [wfde-bench/1] JSON come out byte-identical at any
    [-j].

    Per-worker isolation is total. Each unit runs with one fresh
    metrics registry window ({!Obs.Metrics.reset} before, snapshot
    after, in the worker's own domain-local registry); the per-unit
    snapshots are folded back into the caller's registry with
    {!Obs.Metrics.absorb} in unit order at the barrier. Unit functions
    must therefore be self-contained: build their own [Sim]/[Rng],
    touch no shared mutable state, and return a value. Read-only access
    to configuration set before the pool call (e.g. mutant chaos flags)
    is fine — the spawn fence publishes it.

    Exceptions follow the same prefix rule as {!map_until}: the unit
    with the lowest index that raised is re-raised in the caller (with
    its backtrace), after the metrics of all earlier units have been
    absorbed — exactly what a serial left-to-right run would do.

    Pool calls do not nest meaningfully: a [map] issued from inside a
    worker runs its units inline in that worker (no new domains, no
    per-unit metrics windows), so the enclosing unit still appears
    atomic to the outer pool. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to 1 (serial); values are clamped to [1, 64].
    Serial pools run units in the calling domain with no metrics
    windowing at all — [jobs = 1] is the reference semantics the
    parallel path must reproduce. *)

val jobs : t -> int

val map : t -> f:(int -> 'a) -> int -> 'a list
(** [map t ~f n] is [[f 0; f 1; ...; f (n-1)]], computed on the pool's
    workers. *)

val map_list : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [List.map f xs] on the pool's workers. *)

val map_until : t -> stop:('a -> bool) -> f:(int -> 'a) -> int -> 'a list
(** Early-exit sweep: returns [[f 0; ...; f k]] where [k] is the first
    index whose result satisfies [stop] (or [n - 1] if none does) — the
    exact prefix a serial run stopping at the first hit would produce.
    Workers past the cut may still compute units speculatively; their
    results and metrics are discarded. *)

(** {1 Pool telemetry}

    Parallel runs record per-worker gauges in the caller's registry
    after the barrier: [exec.pool.worker.units{worker=K}] (units
    executed), [exec.pool.worker.wall_ms{worker=K}],
    [exec.pool.worker.steals{worker=K}] (executed units that came from
    another worker's [index mod jobs] seed stripe), and
    [exec.pool.worker.steal_batches{worker=K}] (successful steal-half
    raids), plus the [exec.pool.runs] and [exec.pool.units] counters.
    These depend on scheduling and wall time — strip [exec.*] names
    before comparing snapshots across [-j] values. *)
