(** The discrete-event scheduler: serializes fibers into a run.

    One scheduled step = one atomic shared-object operation or detector
    query = one tick of global time, matching runs as defined in §3.3.
    Crashes come from the failure pattern: a process whose crash time is
    [t] takes no step at any time ≥ [t], and its fibers are killed when
    the clock first reaches [t]. *)

type t

type outcome =
  | Horizon      (** step budget exhausted *)
  | Quiescent    (** every fiber is done or killed *)
  | Policy_stop  (** the policy returned [None] *)

val create :
  pattern:Failure_pattern.t ->
  policy:Policy.t ->
  fibers:Fiber.t list ->
  t
(** Fibers must not be started yet; [create] starts them (cost-free local
    prefix). Fibers of processes crashed at time 0 are killed
    immediately. *)

val now : t -> int
val pattern : t -> Failure_pattern.t

val pending : t -> (Pid.t * Sim.kind) list
(** The currently enabled processes (alive, with a runnable fiber), each
    paired with the kind of the step it would take if scheduled next, in
    pid order. Does not advance the run or the per-process fiber
    rotation. Model checkers use this to compute the independence
    relation over the next transitions without committing to one.

    Note the enabled set the policy will actually see at the next
    {!step} may differ: crashes whose time is reached by that step are
    processed first. *)

val iter_pending : t -> (Pid.t -> Sim.kind -> unit) -> unit
(** [pending] without building the list: applies the function to each
    enabled (pid, next-step kind) in pid order (checker hot paths). *)

val step : t -> [ `Stepped of Pid.t | `Stopped of outcome ]
(** Advance the run by one step. *)

val run : t -> max_steps:int -> outcome
(** Step until an outcome is reached or [max_steps] steps execute. Can be
    called repeatedly to extend the run. *)

val trace : t -> Trace.t
(** Trace of everything executed so far. *)

val trace_builder : t -> Trace.builder
(** The live trace buffer, for iterating events without materializing
    the list ({!Trace.iter_builder}). *)

val flush_metrics : t -> unit
(** Fold the scheduler's buffered step counters into the calling
    domain's metrics registry. [run], [trace], and every [`Stopped]
    result flush automatically; call this before taking a
    {!Obs.Metrics.snapshot} if the scheduler was last advanced by manual
    {!step} calls. Idempotent: flushing twice adds nothing. *)
