type outcome = Horizon | Quiescent | Policy_stop

(* Telemetry: totals are module-level handles (Metrics registration is
   idempotent); per-pid counters are cached per scheduler so the hot
   loop never builds a name. *)
let m_steps = Obs.Metrics.counter "kernel.scheduler.steps"
let m_crashes = Obs.Metrics.counter "kernel.scheduler.crashes"
let m_policy_decisions = Obs.Metrics.counter "kernel.scheduler.policy_decisions"
let m_policy_stops = Obs.Metrics.counter "kernel.scheduler.policy_stops"
let m_quiescent = Obs.Metrics.counter "kernel.scheduler.quiescent_stops"
let m_queries = Obs.Metrics.counter "detectors.queries"

let m_kind_read = Obs.Metrics.counter "kernel.scheduler.steps{kind=read}"
let m_kind_write = Obs.Metrics.counter "kernel.scheduler.steps{kind=write}"
let m_kind_query = Obs.Metrics.counter "kernel.scheduler.steps{kind=query}"
let m_kind_output = Obs.Metrics.counter "kernel.scheduler.steps{kind=output}"
let m_kind_input = Obs.Metrics.counter "kernel.scheduler.steps{kind=input}"
let m_kind_nop = Obs.Metrics.counter "kernel.scheduler.steps{kind=nop}"

let kind_counter = function
  | Sim.Read _ -> m_kind_read
  | Sim.Write _ -> m_kind_write
  | Sim.Query _ -> m_kind_query
  | Sim.Output _ -> m_kind_output
  | Sim.Input _ -> m_kind_input
  | Sim.Nop -> m_kind_nop

(* Detector instance names embed run parameters ("upsilon_f(f=2,t*=37)");
   collapse to the family so the per-detector label set stays bounded. *)
let detector_family name =
  match String.index_opt name '(' with
  | Some i -> String.sub name 0 i
  | None -> name

let query_counter detector =
  Obs.Metrics.counter
    ("detectors.queries{detector=" ^ detector_family detector ^ "}")

type t = {
  sched_pattern : Failure_pattern.t;
  policy : Policy.t;
  by_pid : Fiber.t array array;
  cursor : int array; (* per-pid rotation among its fibers *)
  crash_recorded : bool array;
  mutable clock : int;
  events : Trace.builder;
  steps_by_pid : Obs.Metrics.counter array;
}

let create ~pattern ~policy ~fibers =
  let n = Failure_pattern.n_plus_1 pattern in
  List.iter
    (fun f ->
      if Fiber.pid f < 0 || Fiber.pid f >= n then
        invalid_arg "Scheduler.create: fiber pid out of range")
    fibers;
  let by_pid =
    Array.init n (fun p ->
        Array.of_list (List.filter (fun f -> Pid.to_int (Fiber.pid f) = p) fibers))
  in
  List.iter Fiber.start fibers;
  let t =
    {
      sched_pattern = pattern;
      policy;
      by_pid;
      cursor = Array.make n 0;
      crash_recorded = Array.make n false;
      clock = 0;
      events = Trace.builder ();
      steps_by_pid =
        Array.init n (fun p ->
            Obs.Metrics.counter
              (Printf.sprintf "kernel.scheduler.steps{pid=p%d}" (p + 1)));
    }
  in
  t

let now t = t.clock
let pattern t = t.sched_pattern

(* Record crash events and kill fibers for processes whose crash time has
   been reached by the prospective step time. *)
let process_crashes t step_time =
  Array.iteri
    (fun p recorded ->
      if not recorded then
        let c = Failure_pattern.crash_time t.sched_pattern p in
        if c <= step_time then begin
          t.crash_recorded.(p) <- true;
          Obs.Metrics.incr m_crashes;
          Trace.record t.events (Trace.Crash { pid = p; time = c });
          Array.iter Fiber.kill t.by_pid.(p)
        end)
    t.crash_recorded

let runnable_fibers t pid =
  Array.to_list t.by_pid.(pid)
  |> List.filter (fun f -> Fiber.status f = Fiber.Runnable)

let enabled_pids t =
  Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 t.sched_pattern)
  |> List.filter (fun p -> runnable_fibers t p <> [])

let next_fiber t pid =
  let fibers = t.by_pid.(pid) in
  let k = Array.length fibers in
  let rec search i tried =
    if tried >= k then invalid_arg "Scheduler.next_fiber: no runnable fiber"
    else
      let f = fibers.(i mod k) in
      if Fiber.status f = Fiber.Runnable then begin
        t.cursor.(pid) <- (i + 1) mod k;
        f
      end
      else search (i + 1) (tried + 1)
  in
  search t.cursor.(pid) 0

(* The fiber [next_fiber] would pick, without advancing the cursor. *)
let peek_fiber t pid =
  let fibers = t.by_pid.(pid) in
  let k = Array.length fibers in
  let rec search i tried =
    if tried >= k then None
    else
      let f = fibers.(i mod k) in
      if Fiber.status f = Fiber.Runnable then Some f
      else search (i + 1) (tried + 1)
  in
  search t.cursor.(pid) 0

let pending t =
  Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 t.sched_pattern)
  |> List.filter_map (fun p ->
         match peek_fiber t p with
         | Some f -> Some (p, Fiber.pending_kind f)
         | None -> None)

let step t =
  let step_time = t.clock + 1 in
  process_crashes t step_time;
  match enabled_pids t with
  | [] ->
      Obs.Metrics.incr m_quiescent;
      `Stopped Quiescent
  | enabled -> (
      Obs.Metrics.incr m_policy_decisions;
      match t.policy ~now:step_time ~enabled with
      | None ->
          Obs.Metrics.incr m_policy_stops;
          `Stopped Policy_stop
      | Some pid ->
          if not (List.mem pid enabled) then
            invalid_arg "Scheduler.step: policy chose a disabled process";
          t.clock <- step_time;
          let fiber = next_fiber t pid in
          let kind = Fiber.pending_kind fiber in
          Obs.Metrics.incr m_steps;
          Obs.Metrics.incr t.steps_by_pid.(pid);
          Obs.Metrics.incr (kind_counter kind);
          (match kind with
          | Sim.Query { detector } ->
              Obs.Metrics.incr m_queries;
              Obs.Metrics.incr (query_counter detector)
          | _ -> ());
          let ctx = { Sim.pid; now = step_time; note = None } in
          Fiber.step fiber ctx;
          Trace.record t.events
            (Trace.Step { pid; time = step_time; kind; note = ctx.Sim.note });
          `Stepped pid)

let run t ~max_steps =
  let rec loop remaining =
    if remaining = 0 then Horizon
    else
      match step t with
      | `Stepped _ -> loop (remaining - 1)
      | `Stopped outcome -> outcome
  in
  loop max_steps

let trace t = Trace.finish t.events
