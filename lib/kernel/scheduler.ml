type outcome = Horizon | Quiescent | Policy_stop

(* Telemetry: rare events (crashes, stop reasons) use module-level slow
   handles; everything on the per-step path uses Metrics.Fast cells
   owned by the scheduler and absorbed into the registry when the run
   stops (every [`Stopped] exit, [run] return and [trace] flush, and
   manual steppers call [flush_metrics] themselves). Absorption is
   idempotent, so the defensive multi-point flushing never
   double-counts. *)
let m_crashes = Obs.Metrics.counter "kernel.scheduler.crashes"
let m_policy_stops = Obs.Metrics.counter "kernel.scheduler.policy_stops"
let m_quiescent = Obs.Metrics.counter "kernel.scheduler.quiescent_stops"

let kind_tag = function
  | Sim.Read _ -> 0
  | Sim.Write _ -> 1
  | Sim.Query _ -> 2
  | Sim.Output _ -> 3
  | Sim.Input _ -> 4
  | Sim.Nop -> 5
  | Sim.Send _ -> 6
  | Sim.Recv _ -> 7

let kind_counter_names =
  [|
    "kernel.scheduler.steps{kind=read}";
    "kernel.scheduler.steps{kind=write}";
    "kernel.scheduler.steps{kind=query}";
    "kernel.scheduler.steps{kind=output}";
    "kernel.scheduler.steps{kind=input}";
    "kernel.scheduler.steps{kind=nop}";
    "kernel.scheduler.steps{kind=send}";
    "kernel.scheduler.steps{kind=recv}";
  |]

(* Per-pid counter names are only built when a domain's bundle grows to
   a new pid count (not per scheduler creation), so the Printf is off
   the hot path and needs no shared interning table — sharing one across
   pool worker domains would race. *)
let pid_counter_name p = Printf.sprintf "kernel.scheduler.steps{pid=p%d}" (p + 1)

(* Detector instance names embed run parameters ("upsilon_f(f=2,t*=37)");
   collapse to the family so the per-detector label set stays bounded. *)
let detector_family name =
  match String.index_opt name '(' with
  | Some i -> String.sub name 0 i
  | None -> name

(* The fast cells for the step path, shared by every scheduler of a
   domain (model checkers create a scheduler per execution; re-creating
   the cells each time would put a dozen registry lookups on that path).
   Sharing is sound because the buffered values are sums absorbed into
   the same registry cells, and every scheduler flushes at each stopped
   run, so the buffers are empty at unit boundaries. *)
type metric_bundle = {
  b_steps : Obs.Metrics.Fast.counter;
  b_policy_decisions : Obs.Metrics.Fast.counter;
  b_queries : Obs.Metrics.Fast.counter;
  mutable b_by_pid : Obs.Metrics.Fast.counter array; (* grown on demand *)
  b_by_kind : Obs.Metrics.Fast.counter array; (* indexed by kind_tag *)
  (* per-detector query counters, keyed by the raw instance name so the
     hot path never allocates the family substring *)
  b_detectors : (string, Obs.Metrics.Fast.counter) Hashtbl.t;
}

let bundle_key : metric_bundle Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        b_steps = Obs.Metrics.Fast.counter "kernel.scheduler.steps";
        b_policy_decisions =
          Obs.Metrics.Fast.counter "kernel.scheduler.policy_decisions";
        b_queries = Obs.Metrics.Fast.counter "detectors.queries";
        b_by_pid = [||];
        b_by_kind = Array.map Obs.Metrics.Fast.counter kind_counter_names;
        b_detectors = Hashtbl.create 4;
      })

let bundle ~n =
  let b = Domain.DLS.get bundle_key in
  let have = Array.length b.b_by_pid in
  if have < n then
    b.b_by_pid <-
      Array.init n (fun p ->
          if p < have then b.b_by_pid.(p)
          else Obs.Metrics.Fast.counter (pid_counter_name p));
  b

type t = {
  sched_pattern : Failure_pattern.t;
  policy : Policy.t;
  by_pid : Fiber.t array array;
  cursor : int array; (* per-pid rotation among its fibers *)
  crash_recorded : bool array;
  mutable next_crash : int; (* min crash time not yet recorded; max_int = none *)
  mutable clock : int;
  events : Trace.builder;
  ctx : Sim.ctx; (* reused across steps; fields rewritten each step *)
  metrics : metric_bundle;
}

let create ~pattern ~policy ~fibers =
  let n = Failure_pattern.n_plus_1 pattern in
  List.iter
    (fun f ->
      if Fiber.pid f < 0 || Fiber.pid f >= n then
        invalid_arg "Scheduler.create: fiber pid out of range")
    fibers;
  let by_pid =
    Array.init n (fun p ->
        Array.of_list (List.filter (fun f -> Pid.to_int (Fiber.pid f) = p) fibers))
  in
  List.iter Fiber.start fibers;
  {
    sched_pattern = pattern;
    policy;
    by_pid;
    cursor = Array.make n 0;
    crash_recorded = Array.make n false;
    next_crash =
      (let next = ref max_int in
       for p = 0 to n - 1 do
         let c = Failure_pattern.crash_time pattern p in
         if c < !next then next := c
       done;
       !next);
    clock = 0;
    events = Trace.builder ();
    ctx = { Sim.pid = 0; now = 0; note = None };
    metrics = bundle ~n;
  }

let flush_metrics t =
  let b = t.metrics in
  Obs.Metrics.Fast.absorb_counter b.b_steps;
  Obs.Metrics.Fast.absorb_counter b.b_policy_decisions;
  Obs.Metrics.Fast.absorb_counter b.b_queries;
  Array.iter Obs.Metrics.Fast.absorb_counter b.b_by_pid;
  Array.iter Obs.Metrics.Fast.absorb_counter b.b_by_kind;
  Hashtbl.iter (fun _ f -> Obs.Metrics.Fast.absorb_counter f) b.b_detectors

let detector_counter t detector =
  match Hashtbl.find_opt t.metrics.b_detectors detector with
  | Some f -> f
  | None ->
      let f =
        Obs.Metrics.Fast.counter
          ("detectors.queries{detector=" ^ detector_family detector ^ "}")
      in
      Hashtbl.replace t.metrics.b_detectors detector f;
      f

let now t = t.clock
let pattern t = t.sched_pattern

(* Record crash events and kill fibers for processes whose crash time has
   been reached by the prospective step time. The caller skips the scan
   entirely while [step_time < next_crash], so the per-step cost is one
   comparison on crash-free stretches. *)
let process_crashes t step_time =
  let next = ref max_int in
  Array.iteri
    (fun p recorded ->
      if not recorded then begin
        let c = Failure_pattern.crash_time t.sched_pattern p in
        if c <= step_time then begin
          t.crash_recorded.(p) <- true;
          Obs.Metrics.incr m_crashes;
          Trace.record t.events (Trace.Crash { pid = p; time = c });
          Array.iter Fiber.kill t.by_pid.(p)
        end
        else if c < !next then next := c
      end)
    t.crash_recorded;
  t.next_crash <- !next

let has_runnable t pid =
  let fibers = t.by_pid.(pid) in
  let k = Array.length fibers in
  let rec go i =
    i < k && (Fiber.status fibers.(i) = Fiber.Runnable || go (i + 1))
  in
  go 0

let enabled_pids t =
  let n = Failure_pattern.n_plus_1 t.sched_pattern in
  let rec build p =
    if p >= n then []
    else if has_runnable t p then p :: build (p + 1)
    else build (p + 1)
  in
  build 0

let next_fiber t pid =
  let fibers = t.by_pid.(pid) in
  let k = Array.length fibers in
  let rec search i tried =
    if tried >= k then invalid_arg "Scheduler.next_fiber: no runnable fiber"
    else
      let f = fibers.(i mod k) in
      if Fiber.status f = Fiber.Runnable then begin
        t.cursor.(pid) <- (i + 1) mod k;
        f
      end
      else search (i + 1) (tried + 1)
  in
  search t.cursor.(pid) 0

(* The fiber [next_fiber] would pick, without advancing the cursor. *)
let peek_fiber t pid =
  let fibers = t.by_pid.(pid) in
  let k = Array.length fibers in
  let rec search i tried =
    if tried >= k then None
    else
      let f = fibers.(i mod k) in
      if Fiber.status f = Fiber.Runnable then Some f
      else search (i + 1) (tried + 1)
  in
  search t.cursor.(pid) 0

let iter_pending t f =
  let n = Failure_pattern.n_plus_1 t.sched_pattern in
  for p = 0 to n - 1 do
    match peek_fiber t p with
    | Some fb -> f p (Fiber.pending_kind fb)
    | None -> ()
  done

let pending t =
  let acc = ref [] in
  iter_pending t (fun p k -> acc := (p, k) :: !acc);
  List.rev !acc

let step t =
  try
    let step_time = t.clock + 1 in
    if step_time >= t.next_crash then process_crashes t step_time;
    match enabled_pids t with
    | [] ->
        flush_metrics t;
        Obs.Metrics.incr m_quiescent;
        `Stopped Quiescent
    | enabled -> (
        Obs.Metrics.Fast.incr t.metrics.b_policy_decisions;
        match t.policy ~now:step_time ~enabled with
        | None ->
            flush_metrics t;
            Obs.Metrics.incr m_policy_stops;
            `Stopped Policy_stop
        | Some pid ->
            if not (List.mem pid enabled) then
              invalid_arg "Scheduler.step: policy chose a disabled process";
            t.clock <- step_time;
            let fiber = next_fiber t pid in
            let kind = Fiber.pending_kind fiber in
            let b = t.metrics in
            Obs.Metrics.Fast.incr b.b_steps;
            Obs.Metrics.Fast.incr b.b_by_pid.(pid);
            Obs.Metrics.Fast.incr b.b_by_kind.(kind_tag kind);
            (match kind with
            | Sim.Query { detector } ->
                Obs.Metrics.Fast.incr b.b_queries;
                Obs.Metrics.Fast.incr (detector_counter t detector)
            | _ -> ());
            let ctx = t.ctx in
            ctx.Sim.pid <- pid;
            ctx.Sim.now <- step_time;
            ctx.Sim.note <- None;
            Fiber.step fiber ctx;
            Trace.record t.events
              (Trace.Step { pid; time = step_time; kind; note = ctx.Sim.note });
            `Stepped pid)
  with e ->
    (* A raising fiber/policy must not strand this step's buffered Fast
       increments: the bundle is domain-shared and survives
       Obs.Metrics.reset, so unflushed counts would bleed into the next
       pool unit's snapshot. Flush before propagating. *)
    let bt = Printexc.get_raw_backtrace () in
    flush_metrics t;
    Printexc.raise_with_backtrace e bt

let run t ~max_steps =
  let rec loop remaining =
    if remaining = 0 then begin
      flush_metrics t;
      Horizon
    end
    else
      match step t with
      | `Stepped _ -> loop (remaining - 1)
      | `Stopped outcome -> outcome (* step already flushed *)
  in
  loop max_steps

let trace t =
  flush_metrics t;
  Trace.finish t.events

let trace_builder t = t.events
