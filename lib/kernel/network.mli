(** Reliable asynchronous point-to-point messaging.

    Not part of the paper's model (processes there share registers); this
    is the substrate for the ABD emulation showing that model is
    implementable over message passing (experiment E10). Channels are
    reliable and unordered-across-senders; asynchrony comes entirely from
    scheduling — a message becomes receivable the instant its send step
    executes, but the receiver learns of it only when it takes a poll
    step, which the scheduler may delay arbitrarily.

    Crashed receivers never observe anything: the scheduler kills a
    crashed process's fibers before granting any step at or after its
    crash time, so a crashed process takes no poll step from then on and
    a message sent at or after the crash can never be delivered to it.
    That guarantee is checkable, not just documented —
    {!check_crash_isolation} verifies it from the delivery log after any
    run, including DPOR-reordered ones.

    [send] and [poll] are each one atomic step, so the model's
    cost/interleaving accounting carries over unchanged. Sends and
    deliveries feed the [net.*] metrics ({!Obs.Metrics}); for lossy /
    delayed links with a GST see {!Link}. *)

type 'm t

val create : name:string -> n_plus_1:int -> 'm t

val send : 'm t -> to_:Pid.t -> 'm -> unit
(** One step: enqueue the message (tagged with the sender) at the
    destination mailbox. *)

val broadcast : 'm t -> 'm -> unit
(** [n_plus_1] send steps, destinations in pid order (includes self). *)

val poll : 'm t -> me:Pid.t -> (Pid.t * 'm) list
(** One step: drain the caller's mailbox, oldest first, with senders.
    [me] must be the calling process (checked at step time); it lets the
    step be labelled with the polled mailbox object, which schedule
    exploration needs to tell conflicting from commuting steps. *)

val pending : 'm t -> Pid.t -> int
(** Oracle access: queued messages at a mailbox, no step. *)

val check_crash_isolation : 'm t -> pattern:Failure_pattern.t -> (unit, string) result
(** No message was delivered to a process at or after its crash time —
    i.e. a crashed process never observed a send, post-crash or
    otherwise. Evidence comes from the instance's delivery log; oracle
    access, no step. *)
