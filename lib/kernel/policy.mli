(** Scheduling policies: who takes the next step.

    A policy is consulted once per step with the set of enabled processes
    (alive and having a runnable fiber) and the time the step would get.
    Returning [None] ends the run; returning a non-enabled pid is a
    programming error the scheduler rejects. Policies may be stateful
    closures — the Theorem 1/5 adversary builds its schedule on the fly
    by observing the run through shared references. *)

type t = now:int -> enabled:Pid.t list -> Pid.t option

val round_robin : unit -> t
(** Cycles over pids fairly, skipping disabled ones. *)

val random : Rng.t -> t
(** Uniform among enabled processes; fair with probability 1. *)

val weighted : Rng.t -> weights:(Pid.t * int) list -> t
(** Random, biased by positive integer weights (default weight 1).
    Models asymmetric process speeds while remaining fair. *)

val solo : Pid.t -> t
(** Only the given process runs (others starve — legal in the model as
    long as starved correct processes would run in the unbounded
    continuation; used for the adversary's partial-run constructions). *)

val script : Pid.t list -> then_:t -> t
(** Follow an explicit pid sequence (skipping entries that are not
    enabled), then fall back to [then_]. *)

val fair_after : gst:int -> t -> t
(** Partial synchrony for process speeds: the inner (typically chaotic)
    policy schedules steps taken before [gst]; from [gst] on, scheduling
    is round-robin, so relative process speeds are bounded — the
    scheduling half of the GST model that {!Link} provides for message
    delays. *)

val stop_after : int -> t -> t
(** Let the inner policy schedule only that many steps, then end the run. *)

val custom : (now:int -> enabled:Pid.t list -> Pid.t option) -> t
