(** Run traces (paper §3.4).

    A trace records every step with its time, plus crash events, so test
    oracles can check the run conditions of §3.3 and problem specs over
    the induced input/output trace. *)

type event =
  | Step of { pid : Pid.t; time : int; kind : Sim.kind; note : string option }
      (** [note] carries a rendered payload set by the atomic closure —
          notably the value a detector query returned. *)
  | Crash of { pid : Pid.t; time : int }

type t = event list
(** In time order. *)

type builder

val builder : unit -> builder
val record : builder -> event -> unit

val finish : builder -> t
(** The chronological list view of everything recorded so far.
    Non-destructive: recording may continue afterwards. *)

val iter_builder : builder -> (event -> unit) -> unit
(** Apply a function to every recorded event in chronological order
    without materializing the list (checker hot paths). *)

val builder_length : builder -> int
(** Number of events recorded so far. *)

val steps_of : t -> Pid.t -> int
(** Number of steps taken by a pid. *)

val events_of : t -> Pid.t -> event list

val outputs : ?label:string -> t -> (Pid.t * int * string * string) list
(** All [Output] steps as [(pid, time, label, value)], optionally filtered
    by label. *)

val inputs : ?label:string -> t -> (Pid.t * int * string * string) list

val last_time : t -> int

val schedule : t -> Pid.t list
(** The pid of every step, in order — replaying it through
    {!Policy.script} over a fresh identical world reproduces the run
    exactly (counterexample replay). *)

val queries : t -> detector:string -> (Pid.t * int) list
(** Times at which each process queried the named detector. *)

val query_values : t -> detector:string -> (Pid.t * int * string) list
(** [(pid, time, rendered value)] of each query of the named detector
    whose value was recorded. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
