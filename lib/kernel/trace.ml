type event =
  | Step of { pid : Pid.t; time : int; kind : Sim.kind; note : string option }
  | Crash of { pid : Pid.t; time : int }

type t = event list

(* Events accumulate into fixed-size chunks so recording a step is one
   array store (amortized) instead of a cons per event; [finish] builds
   the chronological list view on demand and leaves the builder intact,
   so a run can be extended after its trace was inspected. *)
type builder = {
  mutable full : event array array; (* completed chunks, oldest first *)
  mutable nfull : int;
  mutable chunk : event array; (* current chunk, filled up to [pos] *)
  mutable pos : int;
}

let chunk_capacity = 256

let builder () = { full = [||]; nfull = 0; chunk = [||]; pos = 0 }

let push_full b =
  (if b.nfull = Array.length b.full then begin
     let grown = Array.make (max 4 (2 * b.nfull)) [||] in
     Array.blit b.full 0 grown 0 b.nfull;
     b.full <- grown
   end);
  b.full.(b.nfull) <- b.chunk;
  b.nfull <- b.nfull + 1

let record b e =
  if b.pos = Array.length b.chunk then begin
    if b.pos > 0 then push_full b;
    (* seeding with [e] doubles as the fill value: no dummy event *)
    b.chunk <- Array.make chunk_capacity e;
    b.pos <- 1
  end
  else begin
    b.chunk.(b.pos) <- e;
    b.pos <- b.pos + 1
  end

let iter_builder b f =
  for c = 0 to b.nfull - 1 do
    Array.iter f b.full.(c)
  done;
  for i = 0 to b.pos - 1 do
    f b.chunk.(i)
  done

let builder_length b = (b.nfull * chunk_capacity) + b.pos

let finish b =
  let acc = ref [] in
  for i = b.pos - 1 downto 0 do
    acc := b.chunk.(i) :: !acc
  done;
  for c = b.nfull - 1 downto 0 do
    let chunk = b.full.(c) in
    for i = Array.length chunk - 1 downto 0 do
      acc := chunk.(i) :: !acc
    done
  done;
  !acc

let steps_of t pid =
  List.length
    (List.filter
       (function Step s -> Pid.equal s.pid pid | Crash _ -> false)
       t)

let events_of t pid =
  List.filter
    (function
      | Step s -> Pid.equal s.pid pid
      | Crash c -> Pid.equal c.pid pid)
    t

let outputs ?label t =
  List.filter_map
    (function
      | Step { pid; time; kind = Sim.Output { label = l; value }; _ } ->
          if match label with Some want -> String.equal want l | None -> true
          then Some (pid, time, l, value)
          else None
      | Step _ | Crash _ -> None)
    t

let inputs ?label t =
  List.filter_map
    (function
      | Step { pid; time; kind = Sim.Input { label = l; value }; _ } ->
          if match label with Some want -> String.equal want l | None -> true
          then Some (pid, time, l, value)
          else None
      | Step _ | Crash _ -> None)
    t

let schedule t =
  List.filter_map
    (function Step { pid; _ } -> Some pid | Crash _ -> None)
    t

let last_time t =
  List.fold_left
    (fun acc -> function Step { time; _ } | Crash { time; _ } -> max acc time)
    0 t

let queries t ~detector =
  List.filter_map
    (function
      | Step { pid; time; kind = Sim.Query { detector = d }; _ }
        when String.equal d detector ->
          Some (pid, time)
      | Step _ | Crash _ -> None)
    t

let query_values t ~detector =
  List.filter_map
    (function
      | Step { pid; time; kind = Sim.Query { detector = d }; note = Some v }
        when String.equal d detector ->
          Some (pid, time, v)
      | Step _ | Crash _ -> None)
    t

let pp_event ppf = function
  | Step { pid; time; kind; note } ->
      Format.fprintf ppf "%6d %a %a%s" time Pid.pp pid Sim.kind_pp kind
        (match note with Some n -> " = " ^ n | None -> "")
  | Crash { pid; time } ->
      Format.fprintf ppf "%6d %a CRASH" time Pid.pp pid

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    pp_event ppf t
