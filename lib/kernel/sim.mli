(** The process-facing simulation API.

    Protocol code runs inside a fiber and interacts with the world only
    through {!atomic}, which performs exactly one step of the model
    (paper §3.3): the supplied closure executes atomically at the instant
    the scheduler grants the step, and the fiber resumes with its result.
    Everything a protocol computes between two [atomic] calls is local
    computation, which the model does not charge for.

    The substrate libraries wrap [atomic] into typed operations:
    register read/write ({!Memory.Register}), detector queries ({!query}),
    and input/output events. *)

type ctx = {
  mutable pid : Pid.t;
  mutable now : int;
  mutable note : string option;
}
(** Identity of the stepping process and the global time of the step,
    available to the atomic closure. Setting [note] attaches a rendered
    payload to the step's trace event (queries record the value the
    oracle returned, so run-condition (2) is checkable from the
    trace). All fields are mutable so the scheduler can reuse one [ctx]
    record across steps; atomic closures must read the fields during the
    step and not retain the record. *)

(** How a step is labelled in the trace. [Send]/[Recv] are message-layer
    steps ({!Network}, {!Link}): both mutate the named mailbox object, so
    schedule exploration treats them exactly like a [Write] on [obj] for
    independence purposes — the separate constructors exist so traces,
    step counters and exported JSONL can tell messaging apart from shared
    memory. *)
type kind =
  | Read of { obj : string }
  | Write of { obj : string }
  | Send of { obj : string }
  | Recv of { obj : string }
  | Query of { detector : string }
  | Output of { label : string; value : string }
  | Input of { label : string; value : string }
  | Nop

type _ Effect.t +=
  | Atomic : kind * (ctx -> 'a) -> 'a Effect.t
        (** The single effect fibers perform; handled by the scheduler. *)

val atomic : kind -> (ctx -> 'a) -> 'a
(** Perform one atomic step. Only call from inside a fiber. *)

val yield : unit -> unit
(** Take a step that does nothing (schedules fairness without touching
    shared state). *)

val now : unit -> int
(** Current global time; consumes a step, as any observation must. *)

val output : label:string -> value:string -> unit
(** Record an application output in the trace (consumes a step). *)

val input : label:string -> value:string -> unit
(** Record an application input in the trace (consumes a step). *)

type 'v source = {
  name : string;
  sample : Pid.t -> int -> 'v;
  render : 'v -> string;
}
(** A failure-detector module: [sample p t] is H(p, t), the value the
    oracle shows process [p] at time [t] (paper §3.2); [render] is used
    to record queried values in the trace. *)

val query : 'v source -> 'v
(** Query the local failure-detector module; one step. *)

val kind_pp : Format.formatter -> kind -> unit
