open Effect.Deep

type status = Runnable | Done | Killed

type state =
  | Ready of (unit -> unit)
  | Pending : Sim.kind * (Sim.ctx -> 'a) * ('a, unit) continuation -> state
  | Finished
  | Dead

type t = { fiber_pid : Pid.t; fiber_name : string; mutable state : state }

let m_spawned = Obs.Metrics.counter "kernel.fiber.spawned"
let m_suspensions = Obs.Metrics.counter "kernel.fiber.suspensions"
let m_completed = Obs.Metrics.counter "kernel.fiber.completed"
let m_killed = Obs.Metrics.counter "kernel.fiber.killed"

let create ~pid ~name body =
  Obs.Metrics.incr m_spawned;
  { fiber_pid = pid; fiber_name = name; state = Ready body }
let pid t = t.fiber_pid
let name t = t.fiber_name

let status t =
  match t.state with
  | Ready _ -> invalid_arg "Fiber.status: fiber not started"
  | Pending _ -> Runnable
  | Finished -> Done
  | Dead -> Killed

(* The handler re-captures the fiber at every suspension point; [retc]
   fires when the body returns. Effects other than [Sim.Atomic] are left
   to outer handlers (there are none in practice, so they escape loudly). *)
let handler t =
  {
    retc =
      (fun () ->
        Obs.Metrics.incr m_completed;
        t.state <- Finished);
    exnc = (fun e -> t.state <- Finished; raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Sim.Atomic (kind, f) ->
            Some
              (fun (k : (a, unit) continuation) ->
                Obs.Metrics.incr m_suspensions;
                t.state <- Pending (kind, f, k))
        | _ -> None);
  }

let start t =
  match t.state with
  | Ready body -> match_with body () (handler t)
  | Pending _ | Finished | Dead -> invalid_arg "Fiber.start: already started"

let pending_kind t =
  match t.state with
  | Pending (kind, _, _) -> kind
  | Ready _ | Finished | Dead -> invalid_arg "Fiber.pending_kind: not runnable"

let step t ctx =
  match t.state with
  | Pending (_, f, k) -> (
      (* An exception from the atomic action belongs to the process, not
         the scheduler: deliver it at the suspension point so protocol
         code can catch it (e.g. Consensus_obj.Port_exhausted). *)
      match f ctx with
      | result -> continue k result
      | exception e -> discontinue k e)
  | Ready _ | Finished | Dead -> invalid_arg "Fiber.step: not runnable"

let kill t =
  match t.state with
  | Pending _ | Ready _ ->
      Obs.Metrics.incr m_killed;
      t.state <- Dead
  | Finished | Dead -> ()
