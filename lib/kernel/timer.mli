(** Deterministic per-process timers driven by scheduler steps.

    Simulated time is the global step count, so a timeout facility needs
    no wall clock: a timer stores a deadline and the owner compares it
    against the [now] of its latest step ({!Sim.now}, or the time
    returned by {!Link.poll_now}). Arming, cancelling and testing a
    timer are local computation — they consume no steps — which keeps
    timeout-based protocols fully deterministic and replayable under
    {!Check.Dpor} and [-jN] pools.

    Timers are owned by one process and are not shared state: two
    processes must never touch the same timer. *)

type t

val create : unit -> t
(** A fresh, unarmed timer. *)

val arm : t -> now:int -> delay:int -> unit
(** Set the deadline to [now + delay] (re-arming overwrites). Raises
    [Invalid_argument] on negative [delay]. *)

val cancel : t -> unit
val armed : t -> bool

val expired : t -> now:int -> bool
(** True iff armed and [now] has reached the deadline. An expired timer
    stays expired until re-armed or cancelled. *)

val deadline : t -> int option

(** Fixed-period tick source (heartbeat cadence). *)
module Periodic : sig
  type t

  val create : period:int -> t
  (** Due immediately, then every [period] time units. Raises
      [Invalid_argument] unless [period > 0]. *)

  val due : t -> now:int -> bool
  (** True at most once per deadline: firing re-anchors the next
      deadline to [now + period], so a starved process emits one tick on
      resume rather than a burst of missed ones. *)

  val peek : t -> now:int -> bool
  (** [due] without the side effect. *)
end
