(** Partially synchronous point-to-point links (the GST model).

    {!Network} is reliable: a message is receivable the instant its send
    step executes. This layer adds the classic partial-synchrony
    behaviours on top of the same one-step send / one-step poll
    discipline: before a configurable {e global stabilization time}
    every message may independently be {e lost} or {e delayed}; from GST
    on, every message is delivered within a known bound [delta].
    Heartbeat-implemented failure detectors ({!Detectors.Hb_ev_perfect},
    {!Detectors.Hb_ev_strong}) are built over these links.

    Determinism: a message's fate (drop, or a ready time) is decided at
    send time by a pure RNG keyed on (config seed, sender, destination,
    send time). Send times are globally unique — one step per time — so
    a run is a pure function of (config, schedule): the same seed and
    schedule replay byte-identically, which keeps {!Check.Dpor} and
    [-jN] pools exact. Simulated time is the global step count; no wall
    clock is involved.

    Steps are labelled [Send]/[Recv] on the destination-mailbox object
    ("name->pid"), which the exploration layers treat exactly like
    writes: sends to and polls of one mailbox conflict, operations on
    distinct mailboxes commute. *)

type config = {
  gst : int;  (** first time at which links are timely *)
  delta : int;
      (** post-GST delivery bound: a message sent at [t >= gst] has
          ready time in [\[t+1, t+delta\]]. Must be >= 1. *)
  pre_delay : int;
      (** maximum {e extra} delay before GST: ready times fall in
          [\[t+1, t+1+pre_delay\]] *)
  loss_pct : int;  (** pre-GST per-message loss probability, percent *)
  link_seed : int;  (** keys the per-message fate draws *)
}

val default_config : config
(** [gst=0, delta=1, pre_delay=0, loss_pct=0]: behaves exactly like a
    reliable timely network. *)

val check_config : config -> unit
(** Raises [Invalid_argument] on out-of-range fields. *)

val pp_config : Format.formatter -> config -> unit
(** ["gst=40,delta=4,pre_delay=8,loss=25,seed=7"] — stable, parseable
    (used in scenario names). *)

val config_to_string : config -> string

val config_of_string : string -> (config, string) result
(** Inverse of {!config_to_string}; validates with {!check_config}. *)

type 'm t

val create : name:string -> n_plus_1:int -> config:config -> unit -> 'm t

val name : 'm t -> string
val config : 'm t -> config

val send : 'm t -> to_:Pid.t -> 'm -> unit
(** One [Send] step: decide the message's fate and, unless dropped,
    enqueue it at the destination with its ready time. *)

val broadcast : 'm t -> 'm -> unit
(** [n_plus_1] send steps, destinations in pid order (includes self). *)

val poll_now : 'm t -> me:Pid.t -> int * (Pid.t * 'm) list
(** One [Recv] step: deliver every queued message whose ready time has
    arrived, oldest send first, with senders — plus the step's time, so
    timeout-driven protocols learn [now] without a second step.
    Messages not yet ready stay queued for a later poll. [me] must be
    the calling process (checked at step time). *)

val poll : 'm t -> me:Pid.t -> (Pid.t * 'm) list
(** [poll_now] without the time. *)

val in_flight : 'm t -> Pid.t -> int
(** Oracle access: undelivered (queued or stashed) messages addressed
    to a pid, no step. *)

(** {1 Post-run oracles}

    Every send is logged with its fate and delivery time; the log is the
    evidence for the subsystem's safety checks. Oracle access, no
    steps. *)

type send_record = {
  sr_from : Pid.t;
  sr_to : Pid.t;
  sr_sent_at : int;
  sr_ready_at : int;  (** [-1] = dropped *)
  mutable sr_delivered_at : int;  (** [-1] = still in flight *)
}

val sends : 'm t -> send_record list
(** Chronological send log. *)

val check_partial_synchrony : 'm t -> (unit, string) result
(** The link respected its contract on every message: nothing sent at
    or after GST was dropped or delivered later than [sent + delta]; no
    message was receivable in its own send step; nothing was delivered
    before its ready time or after being dropped. *)

val check_crash_isolation : 'm t -> pattern:Failure_pattern.t -> (unit, string) result
(** No message was delivered to a process at or after its crash time —
    a crashed process can never observe a message, whatever the
    schedule. *)

val undelivered_ready : 'm t -> by:int -> send_record list
(** Messages whose ready time had arrived by [by] but which were never
    polled — the liveness residue a fair schedule should drain. *)
