(* Deterministic timers driven by simulated time (the global step
   count). A timer is pure local bookkeeping: arming records a deadline,
   expiry is a comparison against a [now] the owner obtained from one of
   its own steps. No wall clock is involved anywhere, so runs stay a
   pure function of (seed, schedule) and DPOR replays are exact. *)

type t = { mutable deadline : int }

let unset = -1

let create () = { deadline = unset }

let arm t ~now ~delay =
  if delay < 0 then invalid_arg "Timer.arm: negative delay";
  t.deadline <- now + delay

let cancel t = t.deadline <- unset
let armed t = t.deadline <> unset
let expired t ~now = t.deadline <> unset && now >= t.deadline
let deadline t = if t.deadline = unset then None else Some t.deadline

module Periodic = struct
  type nonrec t = { period : int; mutable next : int }

  let create ~period =
    if period <= 0 then invalid_arg "Timer.Periodic.create: period must be > 0";
    { period; next = 0 }

  (* Due at most once per call; after firing the next deadline is
     anchored to [now] (not to the missed slot), so a process starved
     for many periods emits one event on resume, not a burst. *)
  let due t ~now =
    if now >= t.next then begin
      t.next <- now + t.period;
      true
    end
    else false

  let peek t ~now = now >= t.next
end
