(* Reliable async messaging. Steps keep their historical [Write] labels
   (not [Send]/[Recv]): the independence relation treats both the same,
   and keeping the labels preserves DPOR schedule fingerprints for every
   existing scenario golden and bench baseline. The delivery log is a
   flat int array (3 slots per delivered message, grown by doubling) so
   the hot path stays allocation-light for the ABD sweeps. *)

type 'm t = {
  net_name : string;
  mailboxes : (Pid.t * int * 'm) Queue.t array; (* sender, sent_at, payload *)
  mutable dlog : int array; (* to, sent_at, delivered_at triples *)
  mutable dlen : int; (* used slots in [dlog] *)
  m_sent : Obs.Metrics.counter;
  m_delivered : Obs.Metrics.counter;
  m_depth : Obs.Metrics.gauge array;
}

let create ~name ~n_plus_1 =
  {
    net_name = name;
    mailboxes = Array.init n_plus_1 (fun _ -> Queue.create ());
    dlog = [||];
    dlen = 0;
    m_sent = Obs.Metrics.counter (Printf.sprintf "net.sent{net=%s}" name);
    m_delivered =
      Obs.Metrics.counter (Printf.sprintf "net.delivered{net=%s}" name);
    m_depth =
      Array.init n_plus_1 (fun p ->
          Obs.Metrics.gauge
            (Printf.sprintf "net.mailbox_depth{net=%s,pid=p%d}" name (p + 1)));
  }

let log_delivery t ~to_ ~sent_at ~delivered_at =
  if t.dlen + 3 > Array.length t.dlog then begin
    let grown = Array.make (max 24 (2 * Array.length t.dlog)) 0 in
    Array.blit t.dlog 0 grown 0 t.dlen;
    t.dlog <- grown
  end;
  t.dlog.(t.dlen) <- to_;
  t.dlog.(t.dlen + 1) <- sent_at;
  t.dlog.(t.dlen + 2) <- delivered_at;
  t.dlen <- t.dlen + 3

let send t ~to_ m =
  Sim.atomic
    (Sim.Write { obj = Printf.sprintf "%s->%s" t.net_name (Pid.to_string to_) })
    (fun ctx ->
      Obs.Metrics.incr t.m_sent;
      Queue.push (ctx.Sim.pid, ctx.Sim.now, m) t.mailboxes.(to_))

let broadcast t m =
  Array.iteri (fun to_ _ -> send t ~to_ m) t.mailboxes

let poll t ~me =
  (* Labelled with the polled mailbox — the same object a send to [me]
     writes — so trace-level independence analysis (Check.Dpor) sees
     send/poll on one mailbox as conflicting and polls of distinct
     mailboxes as commuting. Draining mutates the queue, hence Write. *)
  Sim.atomic
    (Sim.Write { obj = Printf.sprintf "%s->%s" t.net_name (Pid.to_string me) })
    (fun ctx ->
      if not (Pid.equal ctx.Sim.pid me) then
        invalid_arg "Network.poll: polling another process's mailbox";
      let q = t.mailboxes.(ctx.Sim.pid) in
      Obs.Metrics.set t.m_depth.(me) (float_of_int (Queue.length q));
      let now = ctx.Sim.now in
      let rec drain acc count =
        match Queue.take_opt q with
        | Some (from, sent_at, m) ->
            log_delivery t ~to_:me ~sent_at ~delivered_at:now;
            drain ((from, m) :: acc) (count + 1)
        | None ->
            if count > 0 then Obs.Metrics.incr ~by:count t.m_delivered;
            List.rev acc
      in
      drain [] 0)

let pending t pid = Queue.length t.mailboxes.(pid)

let check_crash_isolation t ~pattern =
  let bad = ref None in
  let i = ref 0 in
  while !bad = None && !i < t.dlen do
    let to_ = t.dlog.(!i)
    and sent_at = t.dlog.(!i + 1)
    and delivered_at = t.dlog.(!i + 2) in
    let crash = Failure_pattern.crash_time pattern to_ in
    if delivered_at >= crash then
      bad :=
        Some
          (Printf.sprintf
             "crashed receiver observed a message: ->%s sent@%d delivered@%d \
              crash@%d"
             (Pid.to_string to_) sent_at delivered_at crash);
    i := !i + 3
  done;
  match !bad with Some msg -> Error msg | None -> Ok ()
