type 'm t = { net_name : string; mailboxes : (Pid.t * 'm) Queue.t array }

let create ~name ~n_plus_1 =
  { net_name = name; mailboxes = Array.init n_plus_1 (fun _ -> Queue.create ()) }

let send t ~to_ m =
  Sim.atomic
    (Sim.Write { obj = Printf.sprintf "%s->%s" t.net_name (Pid.to_string to_) })
    (fun ctx -> Queue.push (ctx.Sim.pid, m) t.mailboxes.(to_))

let broadcast t m =
  Array.iteri (fun to_ _ -> send t ~to_ m) t.mailboxes

let poll t ~me =
  (* Labelled with the polled mailbox — the same object a send to [me]
     writes — so trace-level independence analysis (Check.Dpor) sees
     send/poll on one mailbox as conflicting and polls of distinct
     mailboxes as commuting. Draining mutates the queue, hence Write. *)
  Sim.atomic
    (Sim.Write { obj = Printf.sprintf "%s->%s" t.net_name (Pid.to_string me) })
    (fun ctx ->
      if not (Pid.equal ctx.Sim.pid me) then
        invalid_arg "Network.poll: polling another process's mailbox";
      let q = t.mailboxes.(ctx.Sim.pid) in
      let rec drain acc =
        match Queue.take_opt q with
        | Some m -> drain (m :: acc)
        | None -> List.rev acc
      in
      drain [])

let pending t pid = Queue.length t.mailboxes.(pid)
