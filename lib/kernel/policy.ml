type t = now:int -> enabled:Pid.t list -> Pid.t option

let round_robin () =
  let cursor = ref 0 in
  fun ~now:_ ~enabled ->
    match enabled with
    | [] -> None
    | first :: _ ->
        (* Pick the first enabled pid at or after the cursor, wrapping
           to the first enabled pid when none is. *)
        let rec at_or_after = function
          | [] -> first
          | p :: rest -> if Pid.to_int p >= !cursor then p else at_or_after rest
        in
        let chosen = at_or_after enabled in
        cursor := Pid.to_int chosen + 1;
        Some chosen

let random rng =
 fun ~now:_ ~enabled ->
  match enabled with [] -> None | l -> Some (Rng.pick rng l)

let weighted rng ~weights =
  let weight p =
    match List.assoc_opt p weights with
    | Some w when w > 0 -> w
    | Some _ -> invalid_arg "Policy.weighted: non-positive weight"
    | None -> 1
  in
  fun ~now:_ ~enabled ->
    match enabled with
    | [] -> None
    | l ->
        let total = List.fold_left (fun acc p -> acc + weight p) 0 l in
        let roll = Rng.int rng total in
        let rec pick acc = function
          | [] -> assert false
          | p :: rest ->
              let acc = acc + weight p in
              if roll < acc then p else pick acc rest
        in
        Some (pick 0 l)

let solo pid =
 fun ~now:_ ~enabled -> if List.mem pid enabled then Some pid else None

let script pids ~then_ =
  let remaining = ref pids in
  fun ~now ~enabled ->
    let rec next () =
      match !remaining with
      | [] -> then_ ~now ~enabled
      | p :: rest ->
          remaining := rest;
          if List.mem p enabled then Some p else next ()
    in
    next ()

let fair_after ~gst inner =
  if gst < 0 then invalid_arg "Policy.fair_after: negative gst";
  let rr = round_robin () in
  fun ~now ~enabled ->
    if now >= gst then rr ~now ~enabled else inner ~now ~enabled

let stop_after limit inner =
  let taken = ref 0 in
  fun ~now ~enabled ->
    if !taken >= limit then None
    else (
      incr taken;
      inner ~now ~enabled)

let custom f = f
