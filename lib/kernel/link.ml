(* Partially synchronous links over the same step discipline as
   {!Network}: one [Sim.Send] step per send, one [Sim.Recv] step per
   poll, both labelled with the destination mailbox object so schedule
   exploration sees exactly the conflicts it would see for a reliable
   network. The partial synchrony lives entirely in per-message *fate*
   metadata (drop, or a ready time), decided at send time by a pure RNG
   keyed on (seed, sender, destination, send time) — send times are
   globally unique, so a run's fates are a pure function of (config,
   schedule) and DPOR replays are exact. *)

type config = {
  gst : int;
  delta : int;
  pre_delay : int;
  loss_pct : int;
  link_seed : int;
}

let default_config =
  { gst = 0; delta = 1; pre_delay = 0; loss_pct = 0; link_seed = 1 }

let check_config cfg =
  if cfg.gst < 0 then invalid_arg "Link: gst must be >= 0";
  if cfg.delta < 1 then invalid_arg "Link: delta must be >= 1";
  if cfg.pre_delay < 0 then invalid_arg "Link: pre_delay must be >= 0";
  if cfg.loss_pct < 0 || cfg.loss_pct > 100 then
    invalid_arg "Link: loss_pct must be in [0, 100]"

let pp_config ppf cfg =
  Format.fprintf ppf "gst=%d,delta=%d,pre_delay=%d,loss=%d,seed=%d" cfg.gst
    cfg.delta cfg.pre_delay cfg.loss_pct cfg.link_seed

let config_to_string cfg = Format.asprintf "%a" pp_config cfg

let config_of_string s =
  match
    Scanf.sscanf_opt s "gst=%d,delta=%d,pre_delay=%d,loss=%d,seed=%d%!"
      (fun gst delta pre_delay loss_pct link_seed ->
        { gst; delta; pre_delay; loss_pct; link_seed })
  with
  | Some cfg -> (
      match check_config cfg with
      | () -> Ok cfg
      | exception Invalid_argument msg -> Error msg)
  | None ->
      Error
        (Printf.sprintf
           "bad link config %S (expected gst=N,delta=N,pre_delay=N,loss=N,seed=N)"
           s)

type send_record = {
  sr_from : Pid.t;
  sr_to : Pid.t;
  sr_sent_at : int;
  sr_ready_at : int; (* -1 = dropped *)
  mutable sr_delivered_at : int; (* -1 = still in flight *)
}

type 'm envelope = { env_payload : 'm; env_rec : send_record }

type 'm t = {
  link_name : string;
  cfg : config;
  queues : 'm envelope Queue.t array; (* per-destination, send order *)
  stash : 'm envelope list array; (* per-receiver, drained but not ready *)
  mutable log : send_record list; (* newest first *)
  m_sent : Obs.Metrics.counter;
  m_delivered : Obs.Metrics.counter;
  m_dropped : Obs.Metrics.counter;
  m_delayed : Obs.Metrics.counter;
  m_depth : Obs.Metrics.gauge array; (* per-receiver mailbox depth *)
}

let create ~name ~n_plus_1 ~config () =
  check_config config;
  let label what =
    Printf.sprintf "net.link.%s{link=%s}" what name
  in
  {
    link_name = name;
    cfg = config;
    queues = Array.init n_plus_1 (fun _ -> Queue.create ());
    stash = Array.make n_plus_1 [];
    log = [];
    m_sent = Obs.Metrics.counter (label "sent");
    m_delivered = Obs.Metrics.counter (label "delivered");
    m_dropped = Obs.Metrics.counter (label "dropped");
    m_delayed = Obs.Metrics.counter (label "delayed");
    m_depth =
      Array.init n_plus_1 (fun p ->
          Obs.Metrics.gauge
            (Printf.sprintf "net.link.mailbox_depth{link=%s,pid=p%d}" name
               (p + 1)));
  }

let name t = t.link_name
let config t = t.cfg

(* Pure per-message randomness: the same odd-constant mixing as
   [Detectors.Detector.Chaos.rng], keyed so distinct (sender, dest,
   time) triples give independent streams. *)
let fate_rng cfg ~from ~to_ ~time =
  Rng.create
    ((cfg.link_seed * 0x2545F491)
    lxor ((from + 1) * 0x9E3779B9)
    lxor ((to_ + 1) * 0xC2B2AE35)
    lxor ((time + 1) * 0x85EBCA6B))

(* The message's fate, decided at send time [time]: after GST every
   message is delivered within [delta]; before GST it may be dropped
   (probability [loss_pct]%) or delayed by up to [pre_delay] extra
   steps. Ready times are always >= time + 1: a message is never
   receivable in the step that sent it. *)
let fate cfg ~from ~to_ ~time =
  if time >= cfg.gst then
    let r = fate_rng cfg ~from ~to_ ~time in
    `Ready (time + 1 + Rng.int r cfg.delta)
  else
    let r = fate_rng cfg ~from ~to_ ~time in
    if Rng.int r 100 < cfg.loss_pct then `Drop
    else `Ready (time + 1 + Rng.int r (cfg.pre_delay + 1))

let send t ~to_ m =
  Sim.atomic
    (Sim.Send { obj = Printf.sprintf "%s->%s" t.link_name (Pid.to_string to_) })
    (fun ctx ->
      let from = ctx.Sim.pid and time = ctx.Sim.now in
      Obs.Metrics.incr t.m_sent;
      match fate t.cfg ~from ~to_ ~time with
      | `Drop ->
          Obs.Metrics.incr t.m_dropped;
          t.log <-
            {
              sr_from = from;
              sr_to = to_;
              sr_sent_at = time;
              sr_ready_at = -1;
              sr_delivered_at = -1;
            }
            :: t.log
      | `Ready ready ->
          if ready > time + 1 then Obs.Metrics.incr t.m_delayed;
          let env_rec =
            {
              sr_from = from;
              sr_to = to_;
              sr_sent_at = time;
              sr_ready_at = ready;
              sr_delivered_at = -1;
            }
          in
          t.log <- env_rec :: t.log;
          Queue.push { env_payload = m; env_rec } t.queues.(to_))

let broadcast t m = Array.iteri (fun to_ _ -> send t ~to_ m) t.queues

let poll_now t ~me =
  (* Labelled with the polled mailbox — the object a send to [me]
     writes — so independence analysis sees send/poll conflicts exactly
     as for {!Network.poll}. Returns the step time too: timeout-driven
     protocols need [now] on every iteration, and charging a second
     step for it would double their step cost. *)
  Sim.atomic
    (Sim.Recv { obj = Printf.sprintf "%s->%s" t.link_name (Pid.to_string me) })
    (fun ctx ->
      if not (Pid.equal ctx.Sim.pid me) then
        invalid_arg "Link.poll: polling another process's mailbox";
      let now = ctx.Sim.now in
      let q = t.queues.(me) in
      let rec drain acc =
        match Queue.take_opt q with
        | Some env -> drain (env :: acc)
        | None -> List.rev acc
      in
      (* Arrival order is send order filtered by readiness: stable and
         deterministic given the schedule. *)
      let pending = t.stash.(me) @ drain [] in
      let ready, waiting =
        List.partition (fun env -> env.env_rec.sr_ready_at <= now) pending
      in
      t.stash.(me) <- waiting;
      Obs.Metrics.incr ~by:(List.length ready) t.m_delivered;
      Obs.Metrics.set t.m_depth.(me) (float_of_int (List.length waiting));
      let msgs =
        List.map
          (fun env ->
            env.env_rec.sr_delivered_at <- now;
            (env.env_rec.sr_from, env.env_payload))
          ready
      in
      (now, msgs))

let poll t ~me = snd (poll_now t ~me)

let in_flight t pid = Queue.length t.queues.(pid) + List.length t.stash.(pid)
let sends t = List.rev t.log

(* ----------------------------------------------------- post-run checks *)

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let record_err r what =
  fail "%s: %s->%s sent@%d ready@%d delivered@%d" what
    (Pid.to_string r.sr_from) (Pid.to_string r.sr_to) r.sr_sent_at r.sr_ready_at
    r.sr_delivered_at

let check_partial_synchrony t =
  let cfg = t.cfg in
  let rec go = function
    | [] -> Ok ()
    | r :: rest ->
        if r.sr_sent_at >= cfg.gst && r.sr_ready_at < 0 then
          record_err r "post-GST message dropped"
        else if r.sr_sent_at >= cfg.gst && r.sr_ready_at > r.sr_sent_at + cfg.delta
        then record_err r "post-GST delivery bound exceeded"
        else if r.sr_ready_at >= 0 && r.sr_ready_at <= r.sr_sent_at then
          record_err r "message receivable in its own send step"
        else if r.sr_delivered_at >= 0 && r.sr_ready_at < 0 then
          record_err r "dropped message delivered"
        else if r.sr_delivered_at >= 0 && r.sr_delivered_at < r.sr_ready_at then
          record_err r "delivered before ready"
        else go rest
  in
  go t.log

let check_crash_isolation t ~pattern =
  let rec go = function
    | [] -> Ok ()
    | r :: rest ->
        if
          r.sr_delivered_at >= 0
          && r.sr_delivered_at >= Failure_pattern.crash_time pattern r.sr_to
        then record_err r "crashed receiver observed a message"
        else go rest
  in
  go t.log

let undelivered_ready t ~by =
  List.filter
    (fun r -> r.sr_ready_at >= 0 && r.sr_ready_at <= by && r.sr_delivered_at < 0)
    (sends t)
