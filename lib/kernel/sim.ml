type ctx = {
  mutable pid : Pid.t;
  mutable now : int;
  mutable note : string option;
}

type kind =
  | Read of { obj : string }
  | Write of { obj : string }
  | Send of { obj : string }
  | Recv of { obj : string }
  | Query of { detector : string }
  | Output of { label : string; value : string }
  | Input of { label : string; value : string }
  | Nop

type _ Effect.t += Atomic : kind * (ctx -> 'a) -> 'a Effect.t

let atomic kind f = Effect.perform (Atomic (kind, f))
let yield () = atomic Nop (fun _ -> ())
let now () = atomic Nop (fun ctx -> ctx.now)
let output ~label ~value = atomic (Output { label; value }) (fun _ -> ())
let input ~label ~value = atomic (Input { label; value }) (fun _ -> ())

type 'v source = {
  name : string;
  sample : Pid.t -> int -> 'v;
  render : 'v -> string;
}

let query src =
  atomic
    (Query { detector = src.name })
    (fun ctx ->
      let v = src.sample ctx.pid ctx.now in
      ctx.note <- Some (src.render v);
      v)

let kind_pp ppf = function
  | Read { obj } -> Format.fprintf ppf "read(%s)" obj
  | Write { obj } -> Format.fprintf ppf "write(%s)" obj
  | Send { obj } -> Format.fprintf ppf "send(%s)" obj
  | Recv { obj } -> Format.fprintf ppf "recv(%s)" obj
  | Query { detector } -> Format.fprintf ppf "query(%s)" detector
  | Output { label; value } -> Format.fprintf ppf "output(%s=%s)" label value
  | Input { label; value } -> Format.fprintf ppf "input(%s=%s)" label value
  | Nop -> Format.fprintf ppf "nop"
