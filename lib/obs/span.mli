(** Request-scoped tracing spans, exported as [wfde-span/1] JSONL.

    A {!scope} records the spans of one trace (one daemon request, one
    harness invocation): a preallocated array of (name, parent, start,
    stop, truncated) slots written by index, so the hot path is two
    array stores and a [Unix.gettimeofday] — no per-span allocation.
    Span ids are 1-based creation order within the scope and double as
    parent references ([parent = 0] marks a root), which makes span
    {e structure} — names, ids, parents, truncation flags — a pure
    function of the code path taken: two runs of the same request
    produce byte-identical structure after timestamp normalization,
    whatever the interleaving.

    The {!null} scope is permanently disabled: every operation on it is
    a no-op returning id 0, so tracing-off code paths pay one branch.

    A scope is written from one thread at a time; the daemon hands it
    conn-thread → worker → conn-thread through an {!Ivar}, whose mutex
    provides the happens-before edge. Scopes are NOT safe for
    concurrent writers. The {!sink} that scopes are {!absorb}ed into is
    mutex-protected and safe to share across connection threads. *)

type t = {
  trace : string;  (** trace id, chosen by the client *)
  span_id : int;  (** 1-based creation order within the trace *)
  parent : int;  (** parent span id; 0 = root *)
  name : string;
  start_us : int;  (** microseconds since the Unix epoch *)
  stop_us : int;
  truncated : bool;
      (** the span was cut short (deadline, drain) or never finished *)
}

val schema : string
(** ["wfde-span/1"]. *)

val now_us : unit -> int
(** Wall clock in integer microseconds. *)

(** {1 Scopes} *)

type scope

val null : scope
(** The disabled scope: {!enabled} is false, every operation is a
    no-op, {!start} returns 0. *)

val make : ?capacity:int -> trace:string -> unit -> scope
(** A fresh enabled scope for [trace]. [capacity] (default 256) bounds
    the span count; further spans are dropped (and counted in
    {!dropped}) rather than grown — drop behaviour depends only on the
    span sequence, so it is as deterministic as the structure itself. *)

val enabled : scope -> bool
val trace_id : scope -> string

val start : ?parent:int -> ?at:int -> scope -> string -> int
(** Open a span and return its id (0 when disabled or dropped).
    [parent] defaults to the scope's current parent (see {!set_parent}
    / {!with_}); [at] defaults to {!now_us}. *)

val finish : ?truncated:bool -> ?at:int -> scope -> int -> unit
(** Close an open span. Closing id 0, an unknown id, or an
    already-closed span is a no-op. *)

val emit :
  ?parent:int -> scope -> name:string -> start_us:int -> stop_us:int ->
  unit -> int
(** Record an already-measured span (e.g. timings returned from a
    worker domain) in one call. *)

val set_parent : scope -> int -> unit
(** Set the default parent for subsequent {!start}/{!emit} calls. *)

val current_parent : scope -> int

val with_ : scope -> string -> (unit -> 'a) -> 'a
(** [with_ scope name f] runs [f] inside a span: the span becomes the
    current parent for the duration, and is finished (and the previous
    parent restored) when [f] returns or raises. On the {!null} scope
    this is exactly [f ()]. *)

val finish_open : scope -> unit
(** Close every still-open span with [truncated = true] at the current
    time — the drain/cancellation safety net: nothing is silently
    dropped. *)

val dropped : scope -> int
(** Spans rejected because the scope was at capacity. *)

val spans : scope -> t list
(** The recorded spans in id order. Still-open spans are reported with
    [stop_us = start_us] and [truncated = true]. *)

(** {1 Sinks} *)

type sink
(** Where finished scopes go: either an in-memory ring (newest
    [capacity] spans kept) or, when [out] is given, straight to a
    channel as JSONL — one {!t} per line. Mutex-protected; shared by
    all daemon connection threads. *)

val sink : ?capacity:int -> ?out:out_channel -> unit -> sink
(** [capacity] (default 65536) bounds the in-memory ring; ignored when
    [out] is given (spans are written through, not stored). *)

val absorb : sink -> scope -> unit
(** Append the scope's spans to the sink. The {!null} scope absorbs to
    nothing. *)

val absorbed : sink -> int
(** Total spans ever absorbed (monotonic, survives {!take}). *)

val take : sink -> t list
(** Drain and return the stored spans, oldest first. Always [[]] for a
    write-through sink. *)

val flush : sink -> unit
(** Flush the underlying channel, if any. *)

(** {1 wfde-span/1 JSONL} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val to_line : t -> string
(** One JSONL line {e without} the trailing newline. *)

val of_line : string -> (t, string) result
val load_file : string -> (t list, string) result
(** Parse a [wfde-span/1] JSONL file; blank lines are skipped and the
    first malformed line is an error. *)

(** {1 Rendering} *)

val render : ?normalize:bool -> t list -> string
(** A per-trace flame-style tree: traces sorted by id, spans nested by
    parent in span-id order, each line showing total and self time.
    With [normalize], timestamps are omitted entirely so two runs of
    the same request mix compare byte-for-byte. *)
