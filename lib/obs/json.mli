(** A minimal JSON tree, printer, and parser.

    The telemetry layer needs machine-readable output (metrics
    snapshots, JSONL trace export, bench documents) without adding a
    dependency, so this module implements just enough of RFC 8259:
    objects, arrays, strings with escapes (including [\uXXXX], encoded
    to UTF-8), integers, doubles, booleans, null.  [of_string (to_string
    t)] is the identity for every [t] whose floats are finite. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering — one call per JSONL line.
    Non-finite floats render as [null]. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse one complete JSON value; [Error] describes the first offending
    offset. Trailing non-whitespace input is an error. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key]; [None] on
    missing keys and non-objects. *)

val to_int : t -> int option
val to_str : t -> string option

val to_float : t -> float option
(** Accepts both [Float] and [Int]. *)
