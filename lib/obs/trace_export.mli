(** JSONL serialization of run traces.

    One event per line, flat schema ([time], [pid], [kind], plus the
    kind's payload and the optional [note]); [of_lines (to_lines t) =
    Ok t] for every trace, so an exported run can be reloaded and
    replayed exactly — {!Kernel.Trace.schedule} of the loaded trace
    driven through {!Kernel.Policy.script} over a fresh identical world
    reproduces the original decisions. *)

open Kernel

val json_of_event : Trace.event -> Obs.Json.t
val event_of_json : Obs.Json.t -> (Trace.event, string) result

val to_lines : Trace.t -> string list
(** One compact JSON document per event, in trace order. *)

val of_lines : string list -> (Trace.t, string) result
(** Inverse of {!to_lines}; blank lines are skipped, the first malformed
    line aborts with its line number. *)

val save_channel : out_channel -> Trace.t -> unit
val save_file : string -> Trace.t -> unit
val load_channel : in_channel -> (Trace.t, string) result
val load_file : string -> (Trace.t, string) result
