(** Prometheus text exposition (format version 0.0.4) for
    {!Metrics.snapshot}s.

    Metric names are mangled to the prometheus charset and prefixed
    with [wfde_]: [serve.latency_ms{method=run}] becomes
    [wfde_serve_latency_ms{method="run"}]. Histograms render as
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count], the
    standard prometheus histogram shape. *)

val content_type : string
(** ["text/plain; version=0.0.4"]. *)

val render : Metrics.snapshot -> string
(** The whole snapshot as an exposition document: one [# TYPE] line per
    metric family, samples sorted by name then label set. *)
