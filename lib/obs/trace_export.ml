open Kernel
open Obs

(* One event per JSONL line. The schema is flat so lines grep well:
     {"time":17,"pid":2,"kind":"query","detector":"upsilon_f(f=2,t*=40)","note":"{p1, p3}"}
     {"time":60,"pid":3,"kind":"crash"}
   [pid] is the 0-based index (Pid.of_index round-trips it). *)

let json_of_event event =
  let base pid time kind_fields =
    Json.Obj
      ((("time", Json.Int time) :: ("pid", Json.Int (Pid.to_int pid))
       :: kind_fields))
  in
  match event with
  | Trace.Crash { pid; time } -> base pid time [ ("kind", Json.String "crash") ]
  | Trace.Step { pid; time; kind; note } ->
      let kind_fields =
        match kind with
        | Sim.Read { obj } ->
            [ ("kind", Json.String "read"); ("obj", Json.String obj) ]
        | Sim.Write { obj } ->
            [ ("kind", Json.String "write"); ("obj", Json.String obj) ]
        | Sim.Send { obj } ->
            [ ("kind", Json.String "send"); ("obj", Json.String obj) ]
        | Sim.Recv { obj } ->
            [ ("kind", Json.String "recv"); ("obj", Json.String obj) ]
        | Sim.Query { detector } ->
            [ ("kind", Json.String "query"); ("detector", Json.String detector) ]
        | Sim.Output { label; value } ->
            [
              ("kind", Json.String "output");
              ("label", Json.String label);
              ("value", Json.String value);
            ]
        | Sim.Input { label; value } ->
            [
              ("kind", Json.String "input");
              ("label", Json.String label);
              ("value", Json.String value);
            ]
        | Sim.Nop -> [ ("kind", Json.String "nop") ]
      in
      let note_field =
        match note with Some n -> [ ("note", Json.String n) ] | None -> []
      in
      base pid time (kind_fields @ note_field)

let event_of_json json =
  let ( let* ) r f = Result.bind r f in
  let field key conv what =
    match Option.bind (Json.member key json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed %S (%s)" key what)
  in
  let str key = field key Json.to_str "string" in
  let* time = field "time" Json.to_int "int" in
  let* pid_index = field "pid" Json.to_int "int" in
  if pid_index < 0 then Error "negative pid"
  else
    let pid = Pid.of_index pid_index in
    let* kind_name = str "kind" in
    match kind_name with
    | "crash" -> Ok (Trace.Crash { pid; time })
    | _ ->
        let* kind =
          match kind_name with
          | "read" ->
              let* obj = str "obj" in
              Ok (Sim.Read { obj })
          | "write" ->
              let* obj = str "obj" in
              Ok (Sim.Write { obj })
          | "send" ->
              let* obj = str "obj" in
              Ok (Sim.Send { obj })
          | "recv" ->
              let* obj = str "obj" in
              Ok (Sim.Recv { obj })
          | "query" ->
              let* detector = str "detector" in
              Ok (Sim.Query { detector })
          | "output" ->
              let* label = str "label" in
              let* value = str "value" in
              Ok (Sim.Output { label; value })
          | "input" ->
              let* label = str "label" in
              let* value = str "value" in
              Ok (Sim.Input { label; value })
          | "nop" -> Ok Sim.Nop
          | other -> Error (Printf.sprintf "unknown event kind %S" other)
        in
        let note = Option.bind (Json.member "note" json) Json.to_str in
        Ok (Trace.Step { pid; time; kind; note })

let to_lines trace = List.map (fun e -> Json.to_string (json_of_event e)) trace

let of_lines lines =
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then loop (lineno + 1) acc rest
        else
          let parsed =
            match Json.of_string line with
            | Error msg -> Error msg
            | Ok json -> event_of_json json
          in
          (match parsed with
          | Ok event -> loop (lineno + 1) (event :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  loop 1 [] lines

let save_channel oc trace =
  List.iter
    (fun event ->
      output_string oc (Json.to_string (json_of_event event));
      output_char oc '\n')
    trace

let save_file path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> save_channel oc trace)

let load_channel ic =
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  of_lines (read [])

let load_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load_channel ic)
