(* Each domain owns a private registry (DLS-keyed); handles are names plus
   a cached (domain id, cell) pair. Domain ids are never reused, so a
   cached pair from another domain is detected and refreshed rather than
   misused; the cache field itself holds an immutable pair, which the
   OCaml memory model guarantees is read untorn. *)

type ccell = { mutable cv : int }
type gcell = { mutable gv : float; mutable gset : bool }

type hcell = {
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length = Array.length bounds + 1; last is overflow *)
  mutable hsum : float;
  mutable hevents : int;
}

type cell = Ccell of ccell | Gcell of gcell | Hcell of hcell

let registry_key : (string, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 97)

let registry () = Domain.DLS.get registry_key

type counter = { c_name : string; mutable c_cache : (int * ccell) option }
type gauge = { g_name : string; mutable g_cache : (int * gcell) option }

type histogram = {
  h_name : string;
  h_buckets : float array;
  mutable h_cache : (int * hcell) option;
}

let clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered with a different type" name)

let default_buckets =
  [| 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 5000. |]

(* HDR-style 1-2-5 bounds: every decade from the one containing [lo] up
   to [hi] contributes 1x, 2x, 5x, clipped to [lo, hi]. Constant
   relative resolution, so one histogram stays meaningful from
   microseconds to minutes. *)
let log_buckets ?(lo = 0.001) ?(hi = 60_000.) () =
  if not (lo > 0. && hi > lo) then
    invalid_arg "Metrics.log_buckets: need 0 < lo < hi";
  let decade = 10. ** Float.of_int (int_of_float (Float.floor (Float.log10 lo))) in
  let rec go acc d =
    if d > hi then List.rev acc
    else
      let acc =
        List.fold_left
          (fun acc m ->
            let bound = m *. d in
            if bound >= lo && bound <= hi then bound :: acc else acc)
          acc [ 1.; 2.; 5. ]
      in
      go acc (d *. 10.)
  in
  Array.of_list (go [] decade)

let self_id () = (Domain.self () :> int)

let ccell name =
  let r = registry () in
  match Hashtbl.find_opt r name with
  | Some (Ccell c) -> c
  | Some _ -> clash name
  | None ->
      let c = { cv = 0 } in
      Hashtbl.replace r name (Ccell c);
      c

let counter name =
  (* register eagerly so the creating domain's snapshot lists the
     counter even before its first increment *)
  { c_name = name; c_cache = Some (self_id (), ccell name) }

let counter_cell t =
  let self = self_id () in
  match t.c_cache with
  | Some (d, c) when d = self -> c
  | _ ->
      let c = ccell t.c_name in
      t.c_cache <- Some (self, c);
      c

let incr ?(by = 1) t =
  let c = counter_cell t in
  c.cv <- c.cv + by

let counter_value t = (counter_cell t).cv

let gcell name =
  let r = registry () in
  match Hashtbl.find_opt r name with
  | Some (Gcell g) -> g
  | Some _ -> clash name
  | None ->
      let g = { gv = 0.0; gset = false } in
      Hashtbl.replace r name (Gcell g);
      g

let gauge name = { g_name = name; g_cache = Some (self_id (), gcell name) }

let gauge_cell t =
  let self = self_id () in
  match t.g_cache with
  | Some (d, g) when d = self -> g
  | _ ->
      let g = gcell t.g_name in
      t.g_cache <- Some (self, g);
      g

let set t v =
  let g = gauge_cell t in
  g.gv <- v;
  g.gset <- true

let gauge_value t = (gauge_cell t).gv

let check_buckets buckets =
  let m = Array.length buckets in
  if m = 0 then invalid_arg "Metrics.histogram: no buckets";
  for i = 1 to m - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: bucket bounds must increase"
  done

let hcell ~buckets name =
  let r = registry () in
  match Hashtbl.find_opt r name with
  | Some (Hcell h) -> h
  | Some _ -> clash name
  | None ->
      let h =
        {
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          hsum = 0.0;
          hevents = 0;
        }
      in
      Hashtbl.replace r name (Hcell h);
      h

let histogram ?(buckets = default_buckets) name =
  check_buckets buckets;
  let buckets = Array.copy buckets in
  { h_name = name; h_buckets = buckets; h_cache = Some (self_id (), hcell ~buckets name) }

let hist_cell t =
  let self = self_id () in
  match t.h_cache with
  | Some (d, h) when d = self -> h
  | _ ->
      let h = hcell ~buckets:t.h_buckets t.h_name in
      t.h_cache <- Some (self, h);
      h

let observe_cell h v =
  let m = Array.length h.bounds in
  let rec slot i = if i >= m || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.hsum <- h.hsum +. v;
  h.hevents <- h.hevents + 1

let observe t v = observe_cell (hist_cell t) v
let observe_int t v = observe t (float_of_int v)

(* ---------------------------------------------------------- fast path --- *)

(* Raw cells for per-step instrumentation. A fast cell is bound to one
   registry cell at creation and buffers increments as a plain unboxed
   int, so the hot path pays one field write — no domain-id check, no
   hashtable, no float boxing. [absorb_*] folds the buffered value into
   the registry cell and zeroes the buffer, which makes absorption
   idempotent by construction: a second absorb adds zero (the
   double-absorb guard the Exec.Pool snapshot discipline relies on).
   The binding is to the creating domain's registry, so a fast cell
   must be created and used within one domain — which is how the
   kernel uses them: one set per scheduler, created where the run
   executes and absorbed when it stops. *)

module Fast = struct
  type counter = { fc_cell : ccell; mutable fc_pending : int }

  let counter name = { fc_cell = ccell name; fc_pending = 0 }
  let incr ?(by = 1) f = f.fc_pending <- f.fc_pending + by

  let absorb_counter f =
    f.fc_cell.cv <- f.fc_cell.cv + f.fc_pending;
    f.fc_pending <- 0

  type histogram = {
    fh_cell : hcell;
    fh_ibounds : int array; (* floor of each float bound: v <= b iff v <= floor b *)
    fh_icounts : int array; (* same layout as fh_cell.counts *)
    mutable fh_isum : int;
    mutable fh_ievents : int;
  }

  let histogram ?(buckets = default_buckets) name =
    check_buckets buckets;
    let h = hcell ~buckets:(Array.copy buckets) name in
    {
      fh_cell = h;
      fh_ibounds = Array.map (fun b -> int_of_float (Float.floor b)) h.bounds;
      fh_icounts = Array.make (Array.length h.counts) 0;
      fh_isum = 0;
      fh_ievents = 0;
    }

  let observe_int f v =
    let bounds = f.fh_ibounds in
    let m = Array.length bounds in
    let rec slot i = if i >= m || v <= bounds.(i) then i else slot (i + 1) in
    let i = slot 0 in
    f.fh_icounts.(i) <- f.fh_icounts.(i) + 1;
    f.fh_isum <- f.fh_isum + v;
    f.fh_ievents <- f.fh_ievents + 1

  let absorb_histogram f =
    let h = f.fh_cell in
    Array.iteri
      (fun i c ->
        if c <> 0 then begin
          h.counts.(i) <- h.counts.(i) + c;
          f.fh_icounts.(i) <- 0
        end)
      f.fh_icounts;
    h.hsum <- h.hsum +. float_of_int f.fh_isum;
    h.hevents <- h.hevents + f.fh_ievents;
    f.fh_isum <- 0;
    f.fh_ievents <- 0
end

(* ---------------------------------------------------------- snapshots --- *)

type hist_view = {
  buckets : (float * int) list; (* (upper bound, count in bucket) *)
  overflow : int;
  sum : float;
  events : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

let hist_view (h : hcell) =
  {
    buckets =
      List.init (Array.length h.bounds) (fun i -> (h.bounds.(i), h.counts.(i)));
    overflow = h.counts.(Array.length h.bounds);
    sum = h.hsum;
    events = h.hevents;
  }

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name -> function
      | Ccell c -> counters := (name, c.cv) :: !counters
      | Gcell g -> if g.gset then gauges := (name, g.gv) :: !gauges
      | Hcell h -> histograms := (name, hist_view h) :: !histograms)
    (registry ());
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let reset () =
  Hashtbl.iter
    (fun _ -> function
      | Ccell c -> c.cv <- 0
      | Gcell g ->
          g.gv <- 0.0;
          g.gset <- false
      | Hcell h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.hsum <- 0.0;
          h.hevents <- 0)
    (registry ())

let absorb (s : snapshot) =
  List.iter
    (fun (name, v) ->
      let c = ccell name in
      c.cv <- c.cv + v)
    s.counters;
  List.iter
    (fun (name, v) ->
      let g = gcell name in
      g.gv <- v;
      g.gset <- true)
    s.gauges;
  List.iter
    (fun (name, hv) ->
      let buckets = Array.of_list (List.map fst hv.buckets) in
      check_buckets buckets;
      let h = hcell ~buckets name in
      if Array.length h.bounds <> Array.length buckets then clash name;
      Array.iteri
        (fun i b -> if h.bounds.(i) <> b then clash name)
        buckets;
      List.iteri (fun i (_, c) -> h.counts.(i) <- h.counts.(i) + c) hv.buckets;
      let last = Array.length h.bounds in
      h.counts.(last) <- h.counts.(last) + hv.overflow;
      h.hsum <- h.hsum +. hv.sum;
      h.hevents <- h.hevents + hv.events)
    s.histograms

let find_counter snap name = List.assoc_opt name snap.counters
let find_gauge snap name = List.assoc_opt name snap.gauges
let find_histogram snap name = List.assoc_opt name snap.histograms

(* ---------------------------------------------------------- rendering --- *)

let hist_mean hv =
  if hv.events = 0 then 0.0 else hv.sum /. float_of_int hv.events

let hist_quantile hv q =
  if hv.events = 0 then None
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target =
      max 1
        (min hv.events (int_of_float (Float.ceil (q *. float_of_int hv.events))))
    in
    let rec go lower cum = function
      | [] ->
          (* target falls in the overflow bucket: the best bounded
             answer is the largest finite bound *)
          Some lower
      | (ub, c) :: rest ->
          if c > 0 && cum + c >= target then
            let frac = float_of_int (target - cum) /. float_of_int c in
            Some (lower +. ((ub -. lower) *. frac))
          else go ub (cum + c) rest
    in
    go 0. 0 hv.buckets
  end

let rows snap =
  List.concat
    [
      List.map
        (fun (name, v) -> [ name; "counter"; string_of_int v ])
        snap.counters;
      List.map
        (fun (name, v) -> [ name; "gauge"; Printf.sprintf "%g" v ])
        snap.gauges;
      List.map
        (fun (name, hv) ->
          [
            name;
            "histogram";
            Printf.sprintf "n=%d sum=%.0f mean=%.1f" hv.events hv.sum
              (hist_mean hv);
          ])
        snap.histograms;
    ]
  |> List.sort compare

let to_json snap =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snap.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, hv) ->
               ( k,
                 Json.Obj
                   [
                     ( "buckets",
                       Json.List
                         (List.map
                            (fun (ub, c) ->
                              Json.List [ Json.Float ub; Json.Int c ])
                            hv.buckets) );
                     ("overflow", Json.Int hv.overflow);
                     ("sum", Json.Float hv.sum);
                     ("count", Json.Int hv.events);
                   ] ))
             snap.histograms) );
    ]
