type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

type histogram = {
  h_name : string;
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length = Array.length bounds + 1; last is overflow *)
  mutable h_sum : float;
  mutable h_events : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 97

let clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered with a different type" name)

let default_buckets =
  [| 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 5000. |]

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> clash name
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace registry name (Counter c);
      c

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> clash name
  | None ->
      let g = { g_name = name; g_value = 0.0; g_set = false } in
      Hashtbl.replace registry name (Gauge g);
      g

let set g v =
  g.g_value <- v;
  g.g_set <- true

let gauge_value g = g.g_value

let histogram ?(buckets = default_buckets) name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> clash name
  | None ->
      let m = Array.length buckets in
      if m = 0 then invalid_arg "Metrics.histogram: no buckets";
      for i = 1 to m - 1 do
        if buckets.(i) <= buckets.(i - 1) then
          invalid_arg "Metrics.histogram: bucket bounds must increase"
      done;
      let h =
        {
          h_name = name;
          bounds = Array.copy buckets;
          counts = Array.make (m + 1) 0;
          h_sum = 0.0;
          h_events = 0;
        }
      in
      Hashtbl.replace registry name (Histogram h);
      h

let observe h v =
  let m = Array.length h.bounds in
  let rec slot i = if i >= m || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_events <- h.h_events + 1

let observe_int h v = observe h (float_of_int v)

(* ---------------------------------------------------------- snapshots --- *)

type hist_view = {
  buckets : (float * int) list; (* (upper bound, count in bucket) *)
  overflow : int;
  sum : float;
  events : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

let hist_view h =
  {
    buckets =
      List.init (Array.length h.bounds) (fun i -> (h.bounds.(i), h.counts.(i)));
    overflow = h.counts.(Array.length h.bounds);
    sum = h.h_sum;
    events = h.h_events;
  }

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name -> function
      | Counter c -> counters := (name, c.c_value) :: !counters
      | Gauge g -> if g.g_set then gauges := (name, g.g_value) :: !gauges
      | Histogram h -> histograms := (name, hist_view h) :: !histograms)
    registry;
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let reset () =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.c_value <- 0
      | Gauge g ->
          g.g_value <- 0.0;
          g.g_set <- false
      | Histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.h_sum <- 0.0;
          h.h_events <- 0)
    registry

let find_counter snap name = List.assoc_opt name snap.counters
let find_gauge snap name = List.assoc_opt name snap.gauges
let find_histogram snap name = List.assoc_opt name snap.histograms

(* ---------------------------------------------------------- rendering --- *)

let hist_mean hv =
  if hv.events = 0 then 0.0 else hv.sum /. float_of_int hv.events

let rows snap =
  List.concat
    [
      List.map
        (fun (name, v) -> [ name; "counter"; string_of_int v ])
        snap.counters;
      List.map
        (fun (name, v) -> [ name; "gauge"; Printf.sprintf "%g" v ])
        snap.gauges;
      List.map
        (fun (name, hv) ->
          [
            name;
            "histogram";
            Printf.sprintf "n=%d sum=%.0f mean=%.1f" hv.events hv.sum
              (hist_mean hv);
          ])
        snap.histograms;
    ]
  |> List.sort compare

let to_json snap =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snap.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, hv) ->
               ( k,
                 Json.Obj
                   [
                     ( "buckets",
                       Json.List
                         (List.map
                            (fun (ub, c) ->
                              Json.List [ Json.Float ub; Json.Int c ])
                            hv.buckets) );
                     ("overflow", Json.Int hv.overflow);
                     ("sum", Json.Float hv.sum);
                     ("count", Json.Int hv.events);
                   ] ))
             snap.histograms) );
    ]
