let content_type = "text/plain; version=0.0.4"

(* [serve.latency_ms{method=run}] -> base [wfde_serve_latency_ms],
   labels [("method", "run")]. Labels never nest and values never
   contain '}' or ',' under the Metrics naming convention, so a split
   scan is enough. *)
let split_name raw =
  let base, labels =
    match String.index_opt raw '{' with
    | Some i when String.length raw > 0 && raw.[String.length raw - 1] = '}' ->
        let inside = String.sub raw (i + 1) (String.length raw - i - 2) in
        let pairs =
          String.split_on_char ',' inside
          |> List.filter_map (fun kv ->
                 match String.index_opt kv '=' with
                 | Some j ->
                     Some
                       ( String.sub kv 0 j,
                         String.sub kv (j + 1) (String.length kv - j - 1) )
                 | None -> None)
        in
        (String.sub raw 0 i, pairs)
    | _ -> (raw, [])
  in
  let mangle s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      s
  in
  ("wfde_" ^ mangle base, List.map (fun (k, v) -> (mangle k, v)) labels)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_str labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* One sample family: every labeled variant of one base name, rendered
   under a single [# TYPE] header. *)
let families kind items render_one =
  List.map
    (fun (raw, v) ->
      let base, labels = split_name raw in
      (base, kind, (labels, fun b -> render_one b base labels v)))
    items

let render (snap : Metrics.snapshot) =
  let all =
    List.concat
      [
        families "counter" snap.Metrics.counters (fun b base labels v ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %d\n" base (label_str labels) v));
        families "gauge" snap.Metrics.gauges (fun b base labels v ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" base (label_str labels) (float_str v)));
        families "histogram" snap.Metrics.histograms (fun b base labels hv ->
            let cum = ref 0 in
            List.iter
              (fun (ub, c) ->
                cum := !cum + c;
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" base
                     (label_str (labels @ [ ("le", float_str ub) ]))
                     !cum))
              hv.Metrics.buckets;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" base
                 (label_str (labels @ [ ("le", "+Inf") ]))
                 (!cum + hv.Metrics.overflow));
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %s\n" base (label_str labels)
                 (float_str hv.Metrics.sum));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" base (label_str labels)
                 hv.Metrics.events));
      ]
  in
  (* group label variants under one TYPE header per (base, kind) *)
  let sorted =
    List.sort
      (fun (b1, k1, (l1, _)) (b2, k2, (l2, _)) ->
        match String.compare b1 b2 with
        | 0 -> ( match String.compare k1 k2 with 0 -> compare l1 l2 | c -> c)
        | c -> c)
      all
  in
  let b = Buffer.create 4096 in
  let last = ref "" in
  List.iter
    (fun (base, kind, (_, emit)) ->
      let header = base ^ "/" ^ kind in
      if !last <> header then begin
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" base kind);
        last := header
      end;
      emit b)
    sorted;
  Buffer.contents b
