module J = Json

type t = {
  trace : string;
  span_id : int;
  parent : int;
  name : string;
  start_us : int;
  stop_us : int;
  truncated : bool;
}

let schema = "wfde-span/1"
let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* --------------------------------------------------------------- scope --- *)

(* Parallel arrays written by index: opening a span is two stores and a
   clock read. [sc_stops.(i) < 0] marks an open span. *)
type scope = {
  sc_trace : string;
  sc_names : string array;
  sc_parents : int array;
  sc_starts : int array;
  sc_stops : int array;
  sc_trunc : bool array;
  mutable sc_len : int;
  mutable sc_cur : int;
  mutable sc_dropped : int;
  sc_on : bool;
}

let null =
  {
    sc_trace = "";
    sc_names = [||];
    sc_parents = [||];
    sc_starts = [||];
    sc_stops = [||];
    sc_trunc = [||];
    sc_len = 0;
    sc_cur = 0;
    sc_dropped = 0;
    sc_on = false;
  }

let make ?(capacity = 256) ~trace () =
  let capacity = max 1 capacity in
  {
    sc_trace = trace;
    sc_names = Array.make capacity "";
    sc_parents = Array.make capacity 0;
    sc_starts = Array.make capacity 0;
    sc_stops = Array.make capacity (-1);
    sc_trunc = Array.make capacity false;
    sc_len = 0;
    sc_cur = 0;
    sc_dropped = 0;
    sc_on = true;
  }

let enabled sc = sc.sc_on
let trace_id sc = sc.sc_trace
let dropped sc = sc.sc_dropped

let start ?parent ?at sc name =
  if not sc.sc_on then 0
  else if sc.sc_len >= Array.length sc.sc_names then begin
    sc.sc_dropped <- sc.sc_dropped + 1;
    0
  end
  else begin
    let i = sc.sc_len in
    sc.sc_names.(i) <- name;
    sc.sc_parents.(i) <- (match parent with Some p -> p | None -> sc.sc_cur);
    sc.sc_starts.(i) <- (match at with Some u -> u | None -> now_us ());
    sc.sc_stops.(i) <- -1;
    sc.sc_trunc.(i) <- false;
    sc.sc_len <- i + 1;
    i + 1
  end

let finish ?(truncated = false) ?at sc id =
  if sc.sc_on && id >= 1 && id <= sc.sc_len && sc.sc_stops.(id - 1) < 0 then begin
    sc.sc_stops.(id - 1) <- (match at with Some u -> u | None -> now_us ());
    if truncated then sc.sc_trunc.(id - 1) <- true
  end

let emit ?parent sc ~name ~start_us ~stop_us () =
  if not sc.sc_on then 0
  else begin
    let id = start ?parent ~at:start_us sc name in
    finish ~at:stop_us sc id;
    id
  end

let set_parent sc id = if sc.sc_on then sc.sc_cur <- id
let current_parent sc = sc.sc_cur

let with_ sc name f =
  if not sc.sc_on then f ()
  else begin
    let saved = sc.sc_cur in
    let id = start sc name in
    if id > 0 then sc.sc_cur <- id;
    Fun.protect
      ~finally:(fun () ->
        finish sc id;
        sc.sc_cur <- saved)
      f
  end

let finish_open sc =
  if sc.sc_on then begin
    let now = now_us () in
    for i = 0 to sc.sc_len - 1 do
      if sc.sc_stops.(i) < 0 then begin
        sc.sc_stops.(i) <- now;
        sc.sc_trunc.(i) <- true
      end
    done
  end

let spans sc =
  List.init sc.sc_len (fun i ->
      let open_ = sc.sc_stops.(i) < 0 in
      {
        trace = sc.sc_trace;
        span_id = i + 1;
        parent = sc.sc_parents.(i);
        name = sc.sc_names.(i);
        start_us = sc.sc_starts.(i);
        stop_us = (if open_ then sc.sc_starts.(i) else sc.sc_stops.(i));
        truncated = sc.sc_trunc.(i) || open_;
      })

(* ---------------------------------------------------------------- sink --- *)

type sink = {
  sk_mu : Mutex.t;
  sk_out : out_channel option;
  sk_cap : int;
  sk_buf : t Queue.t;
  mutable sk_absorbed : int;
}

let sink ?(capacity = 65536) ?out () =
  {
    sk_mu = Mutex.create ();
    sk_out = out;
    sk_cap = max 1 capacity;
    sk_buf = Queue.create ();
    sk_absorbed = 0;
  }

let with_sink sk f =
  Mutex.lock sk.sk_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock sk.sk_mu) f

let to_json s =
  J.Obj
    (List.concat
       [
         [
           ("schema", J.String schema);
           ("trace", J.String s.trace);
           ("span", J.Int s.span_id);
           ("parent", J.Int s.parent);
           ("name", J.String s.name);
           ("start_us", J.Int s.start_us);
           ("stop_us", J.Int s.stop_us);
         ];
         (if s.truncated then [ ("truncated", J.Bool true) ] else []);
       ])

let to_line s = J.to_string (to_json s)

let absorb sk sc =
  if sc.sc_on && sc.sc_len > 0 then begin
    let items = spans sc in
    with_sink sk (fun () ->
        sk.sk_absorbed <- sk.sk_absorbed + List.length items;
        match sk.sk_out with
        | Some ch ->
            List.iter
              (fun s ->
                output_string ch (to_line s);
                output_char ch '\n')
              items;
            flush ch
        | None ->
            List.iter
              (fun s ->
                Queue.push s sk.sk_buf;
                if Queue.length sk.sk_buf > sk.sk_cap then
                  ignore (Queue.pop sk.sk_buf))
              items)
  end

let absorbed sk = with_sink sk (fun () -> sk.sk_absorbed)

let take sk =
  with_sink sk (fun () ->
      let items = List.of_seq (Queue.to_seq sk.sk_buf) in
      Queue.clear sk.sk_buf;
      items)

let flush sk =
  with_sink sk (fun () -> match sk.sk_out with Some ch -> flush ch | None -> ())

(* --------------------------------------------------------------- codec --- *)

let of_json doc =
  let str key =
    match J.member key doc with
    | Some (J.String s) -> Ok s
    | _ -> Error (Printf.sprintf "span: missing or non-string %S" key)
  in
  let int key =
    match J.member key doc with
    | Some (J.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "span: missing or non-integer %S" key)
  in
  let ( let* ) = Result.bind in
  let* sch = str "schema" in
  if sch <> schema then Error (Printf.sprintf "span: schema %S is not %S" sch schema)
  else
    let* trace = str "trace" in
    let* span_id = int "span" in
    let* parent = int "parent" in
    let* name = str "name" in
    let* start_us = int "start_us" in
    let* stop_us = int "stop_us" in
    let* truncated =
      match J.member "truncated" doc with
      | None -> Ok false
      | Some (J.Bool b) -> Ok b
      | Some _ -> Error "span: \"truncated\" must be a boolean"
    in
    if span_id < 1 then Error "span: \"span\" must be >= 1"
    else if parent < 0 then Error "span: \"parent\" must be >= 0"
    else Ok { trace; span_id; parent; name; start_us; stop_us; truncated }

let of_line line =
  match J.of_string line with
  | Error e -> Error (Printf.sprintf "span: not valid JSON: %s" e)
  | Ok doc -> of_json doc

let load_file path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines ->
      let rec go acc lineno = function
        | [] -> Ok (List.rev acc)
        | "" :: rest -> go acc (lineno + 1) rest
        | line :: rest -> (
            match of_line line with
            | Ok s -> go (s :: acc) (lineno + 1) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
      in
      go [] 1 lines

(* -------------------------------------------------------------- render --- *)

let render ?(normalize = false) all =
  (* group by trace, keeping trace order stable by sorting on the id *)
  let traces = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      match Hashtbl.find_opt traces s.trace with
      | Some l -> l := s :: !l
      | None ->
          Hashtbl.replace traces s.trace (ref [ s ]);
          order := s.trace :: !order)
    all;
  let order = List.sort String.compare !order in
  let b = Buffer.create 1024 in
  List.iter
    (fun tr ->
      let spans =
        List.sort
          (fun a b -> compare a.span_id b.span_id)
          (List.rev !(Hashtbl.find traces tr))
      in
      let ids = Hashtbl.create 16 in
      List.iter (fun s -> Hashtbl.replace ids s.span_id s) spans;
      let children = Hashtbl.create 16 in
      List.iter
        (fun s ->
          if s.parent > 0 && Hashtbl.mem ids s.parent then
            Hashtbl.replace children s.parent
              (s :: (Option.value ~default:[] (Hashtbl.find_opt children s.parent))))
        spans;
      let kids id =
        List.sort
          (fun a b -> compare a.span_id b.span_id)
          (Option.value ~default:[] (Hashtbl.find_opt children id))
      in
      let roots =
        List.filter (fun s -> s.parent = 0 || not (Hashtbl.mem ids s.parent)) spans
      in
      let total s = float_of_int (max 0 (s.stop_us - s.start_us)) /. 1000. in
      let rec dfs depth s =
        let indent = String.make (2 * (depth + 1)) ' ' in
        let mark = if s.truncated then " [truncated]" else "" in
        if normalize then Buffer.add_string b (Printf.sprintf "%s%s%s\n" indent s.name mark)
        else begin
          let self =
            List.fold_left (fun acc c -> acc -. total c) (total s) (kids s.span_id)
          in
          Buffer.add_string b
            (Printf.sprintf "%s%-28s total %9.3fms  self %9.3fms%s\n" indent
               s.name (total s) (max 0. self) mark)
        end;
        List.iter (dfs (depth + 1)) (kids s.span_id)
      in
      Buffer.add_string b
        (Printf.sprintf "trace %s: %d span(s)\n" tr (List.length spans));
      List.iter (dfs 0) roots)
    order;
  Buffer.contents b
