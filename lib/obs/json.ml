type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------ render --- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_literal f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null" (* JSON has no non-finite literals *)
  | FP_zero | FP_subnormal | FP_normal ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_literal f)
  | String s -> escape_string b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b key;
          Buffer.add_char b ':';
          write b value)
        fields;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  write b t;
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------- parse --- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when Char.equal got c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %C, found %C" c got)
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* Encode a unicode code point as UTF-8 (enough for \uXXXX escapes). *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char b '/'; loop ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; loop ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; loop ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; loop ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; loop ()
          | Some 'u' ->
              advance ();
              add_utf8 b (parse_hex4 ());
              loop ()
          | Some c -> fail (Printf.sprintf "bad escape \\%c" c)
          | None -> fail "unterminated escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lexeme with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" lexeme))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> fail "expected ',' or '}' in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected ',' or ']' in array"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | value ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
      else Ok value
  | exception Parse_error msg -> Error msg

(* ----------------------------------------------------------- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
