(** A domain-local metrics registry for the simulator.

    Instrumentation sites register named counters, gauges, and
    fixed-bucket histograms; the harness, CLI, and bench read them back
    as a {!snapshot} and render it as a table or JSON.  Registration is
    idempotent — [counter name] returns the existing handle when [name]
    is already registered — so hot paths can cache handles at module
    initialization and {!reset} zeroes values in place without
    invalidating them.

    Each domain owns an independent registry: a handle created in one
    domain may be used from any other, where it transparently binds to
    (and if needed creates) that domain's cell of the same name. All
    value operations — {!incr}, {!set}, {!observe}, {!snapshot},
    {!reset}, {!absorb} — act on the {e calling} domain's registry only,
    so worker domains accumulate in isolation and the coordinator folds
    their per-unit snapshots back in with {!absorb}, in whatever order
    makes the aggregate deterministic.

    Naming convention: [layer.component.metric], with a
    [{label=value}] suffix for bounded label sets (e.g.
    [kernel.scheduler.steps{pid=p3}], [detectors.queries{detector=omega}]).
    Keep label sets small: every distinct name is a registry entry for
    the lifetime of the process. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) the named counter, initially 0. Raises
    [Invalid_argument] if the name is taken by another metric type. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
(** A gauge holds the last value {!set}; it is omitted from snapshots
    until first set. *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?buckets:float array -> string -> histogram
(** Register (or look up) the named histogram. [buckets] (default
    {!default_buckets}) are strictly increasing upper bounds; an extra
    overflow bucket catches larger observations. The bucket layout is
    fixed at first registration. *)

val observe : histogram -> float -> unit
(** Add one observation: counted in the first bucket whose upper bound
    is >= the value, or in the overflow bucket. *)

val observe_int : histogram -> int -> unit

val default_buckets : float array
(** [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000] — suits
    step/round/latency counts in simulator time units. *)

val log_buckets : ?lo:float -> ?hi:float -> unit -> float array
(** HDR-style log-spaced bounds: the 1-2-5 series of every decade from
    [lo] (default 0.001) through [hi] (default 60000), clipped to
    [lo, hi]. Constant relative resolution keeps p50/p95/p99 readable
    from microseconds to minutes in a single histogram. Raises
    [Invalid_argument] unless [0 < lo < hi]. *)

(** {1 Fast path}

    Raw cells for per-step hot loops (the scheduler, DPOR replay).  A
    fast cell buffers increments in a plain mutable int bound to one
    registry cell; the buffered value becomes visible to {!snapshot} /
    {!counter_value} only after the matching [absorb_*] call, which
    folds it into the registry and zeroes the buffer.  Absorption is
    therefore idempotent — absorbing twice adds zero — so callers may
    absorb defensively at every exit point.  A fast cell binds to the
    {e creating} domain's registry and must not be shared across
    domains; create it where the hot loop runs (e.g. per scheduler
    instance inside the pool worker) and absorb before the unit's
    snapshot is taken. *)

module Fast : sig
  type counter

  val counter : string -> counter
  (** Register (or look up) the named registry counter in the calling
      domain and bind a fresh zero buffer to it. *)

  val incr : ?by:int -> counter -> unit
  val absorb_counter : counter -> unit

  type histogram

  val histogram : ?buckets:float array -> string -> histogram
  (** Same layout rules as the slow-path {!histogram} registration;
      observation values are ints and the buffered sum is exact. *)

  val observe_int : histogram -> int -> unit
  val absorb_histogram : histogram -> unit
end

(** {1 Snapshots} *)

type hist_view = {
  buckets : (float * int) list;  (** (upper bound, count), in order *)
  overflow : int;
  sum : float;
  events : int;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every metric registered in the calling domain, in place.
    Handles held by instrumentation sites stay valid; gauges return to
    the unset state. *)

val absorb : snapshot -> unit
(** Merge a snapshot (typically taken in a worker domain) into the
    calling domain's registry: counters and histograms add, gauges take
    the snapshot's value (last absorb wins — absorb in unit order to
    keep aggregates deterministic). Histograms are created with the
    snapshot's bucket bounds when absent; raises [Invalid_argument] on a
    name registered with a different type or bucket layout. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> float option
val find_histogram : snapshot -> string -> hist_view option

val hist_mean : hist_view -> float
(** 0 when empty. *)

val hist_quantile : hist_view -> float -> float option
(** [hist_quantile hv q] estimates the [q]-quantile ([0 <= q <= 1],
    clamped) by linear interpolation within the bucket holding the
    target rank. [None] when empty; observations in the overflow bucket
    resolve to the largest finite bound (the histogram cannot say
    more). *)

val rows : snapshot -> string list list
(** [[name; type; value]] rows sorted by name, ready to embed in a
    report table. *)

val to_json : snapshot -> Json.t
