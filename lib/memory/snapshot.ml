type 'a entry = { data : 'a; version : int; view : ('a * int) array }

type 'a t = { cells : 'a entry Register.t array }

let m_scans = Obs.Metrics.counter "memory.snapshot.scans"
let m_updates = Obs.Metrics.counter "memory.snapshot.updates"
let m_borrowed = Obs.Metrics.counter "memory.snapshot.borrowed_views"

(* Double collects per scan: 1 = clean first try, more = interference. *)
let m_scan_rounds =
  Obs.Metrics.histogram
    ~buckets:[| 1.; 2.; 3.; 5.; 8.; 13.; 21. |]
    "memory.snapshot.scan_rounds"

let create ~name ~size ~init =
  let initial_view = Array.init size (fun j -> (init j, 0)) in
  let cells =
    Array.init size (fun i ->
        Register.create
          ~name:(Printf.sprintf "%s[%d]" name i)
          { data = init i; version = 0; view = initial_view })
  in
  { cells }

let size t = Array.length t.cells


(* Test-only planted mutant (Check.Mutant): when set, [scan] returns its
   first collect with no double-collect validation — the textbook broken
   snapshot whose views can be atomically inconsistent. Only checker
   regression tests may set this. *)
let chaos_single_collect = ref false

(* One collect per iteration; a position whose version changed between two
   successive collects "moved". A position seen moving twice performed a
   complete update inside our scan interval, so its embedded view is a
   valid snapshot of that interval (Afek et al., Lemma 4.2).

   Returns the view together with the times of the first and last
   register accesses, delimiting the scan's real-time interval for
   history recording. *)
let scan_entries_timed t =
  let n = size t in
  let moved = Array.make n 0 in
  let rounds = ref 1 in
  let finish result =
    Obs.Metrics.incr m_scans;
    Obs.Metrics.observe_int m_scan_rounds !rounds;
    result
  in
  let collect_timed () =
    let first = ref max_int and last = ref 0 in
    let entries =
      Array.map
        (fun cell ->
          let time, e = Register.read_timed cell in
          if time < !first then first := time;
          if time > !last then last := time;
          e)
        t.cells
    in
    (entries, !first, !last)
  in
  let c0, t_first, c0_last = collect_timed () in
  if !chaos_single_collect then
    (finish (Array.map (fun e -> (e.data, e.version)) c0), t_first, c0_last)
  else
    let rec attempt c1 =
      let c2, _, c2_last = collect_timed () in
      let any_change = ref false in
      let borrowed = ref None in
      for j = 0 to n - 1 do
        if c1.(j).version <> c2.(j).version then begin
          any_change := true;
          moved.(j) <- moved.(j) + 1;
          if moved.(j) >= 2 && !borrowed = None then borrowed := Some c2.(j)
        end
      done;
      if not !any_change then
        (finish (Array.map (fun e -> (e.data, e.version)) c2), t_first, c2_last)
      else
        match !borrowed with
        | Some e ->
            Obs.Metrics.incr m_borrowed;
            (finish (Array.copy e.view), t_first, c2_last)
        | None ->
            incr rounds;
            attempt c2
    in
    attempt c0

let scan_entries t =
  let view, _, _ = scan_entries_timed t in
  view

let scan_versioned t = scan_entries t
let scan t = Array.map fst (scan_entries t)

let scan_timed t =
  let view, first, last = scan_entries_timed t in
  (Array.map fst view, first, last)

let update_timed t ~me v =
  Obs.Metrics.incr m_updates;
  let view, first, _ = scan_entries_timed t in
  let old = Register.read t.cells.(me) in
  let written =
    Register.write_timed t.cells.(me)
      { data = v; version = old.version + 1; view }
  in
  (first, written)

let update t ~me v = ignore (update_timed t ~me v)

let peek t = Array.map (fun cell -> (Register.peek cell).data) t.cells
