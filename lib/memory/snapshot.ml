type 'a entry = { data : 'a; version : int; view : ('a * int) array }

type 'a t = { cells : 'a entry Register.t array }

let m_scans = Obs.Metrics.counter "memory.snapshot.scans"
let m_updates = Obs.Metrics.counter "memory.snapshot.updates"
let m_borrowed = Obs.Metrics.counter "memory.snapshot.borrowed_views"

(* Double collects per scan: 1 = clean first try, more = interference. *)
let m_scan_rounds =
  Obs.Metrics.histogram
    ~buckets:[| 1.; 2.; 3.; 5.; 8.; 13.; 21. |]
    "memory.snapshot.scan_rounds"

let create ~name ~size ~init =
  let initial_view = Array.init size (fun j -> (init j, 0)) in
  let cells =
    Array.init size (fun i ->
        Register.create
          ~name:(Printf.sprintf "%s[%d]" name i)
          { data = init i; version = 0; view = initial_view })
  in
  { cells }

let size t = Array.length t.cells

let collect t = Array.map Register.read t.cells

(* One collect per iteration; a position whose version changed between two
   successive collects "moved". A position seen moving twice performed a
   complete update inside our scan interval, so its embedded view is a
   valid snapshot of that interval (Afek et al., Lemma 4.2). *)
let scan_entries t =
  let n = size t in
  let moved = Array.make n 0 in
  let rounds = ref 1 in
  let finish result =
    Obs.Metrics.incr m_scans;
    Obs.Metrics.observe_int m_scan_rounds !rounds;
    result
  in
  let rec attempt c1 =
    let c2 = collect t in
    let any_change = ref false in
    let borrowed = ref None in
    for j = 0 to n - 1 do
      if c1.(j).version <> c2.(j).version then begin
        any_change := true;
        moved.(j) <- moved.(j) + 1;
        if moved.(j) >= 2 && !borrowed = None then borrowed := Some c2.(j)
      end
    done;
    if not !any_change then finish (Array.map (fun e -> (e.data, e.version)) c2)
    else
      match !borrowed with
      | Some e ->
          Obs.Metrics.incr m_borrowed;
          finish (Array.copy e.view)
      | None ->
          incr rounds;
          attempt c2
  in
  attempt (collect t)

let scan_versioned t = scan_entries t
let scan t = Array.map fst (scan_entries t)

let update t ~me v =
  Obs.Metrics.incr m_updates;
  let view = scan_entries t in
  let old = Register.read t.cells.(me) in
  Register.write t.cells.(me) { data = v; version = old.version + 1; view }

let peek t = Array.map (fun cell -> (Register.peek cell).data) t.cells
