(** Atomic multi-writer multi-reader read/write registers.

    The base object type of the paper's algorithms (§3.1): every shared
    word the protocols use is one of these, and every [read]/[write] is
    exactly one step of the model. Atomicity is by construction — the
    scheduler serializes atomic closures, so each operation takes effect
    at one indivisible instant. *)

type 'a t

val create : name:string -> 'a -> 'a t
(** A fresh register holding the given initial value. The name labels
    steps in the trace. *)

val name : 'a t -> string

val read : 'a t -> 'a
(** One step. Only call from inside a fiber. *)

val write : 'a t -> 'a -> unit
(** One step. Only call from inside a fiber. *)

val read_timed : 'a t -> int * 'a
(** Like {!read}, also returning the global time of the step itself —
    the operation's linearization point. History recorders (model
    checking) use this to timestamp operations by their effective access
    rather than by surrounding bookkeeping steps. *)

val write_timed : 'a t -> 'a -> int
(** Like {!write}, returning the time of the step. *)

val peek : 'a t -> 'a
(** Observe the current value without taking a step — for test oracles
    and harness code only, never for protocol code. *)

val poke : 'a t -> 'a -> unit
(** Set the value without taking a step — for harness initialization
    only. *)

val array : name:string -> size:int -> init:(int -> 'a) -> 'a t array
(** [array ~name ~size ~init] is [size] registers named ["name[i]"]. *)

val read_at : 'a t array -> int -> 'a
val write_at : 'a t array -> int -> 'a -> unit

val collect : 'a t array -> 'a array
(** Read every register in index order — [size] steps, {e not} atomic as
    a whole (that is the point: an atomic view requires the snapshot
    construction). *)

module Counter : sig
  (** A single-writer unbounded counter register, used for the
      ever-growing timestamps of §5.3 and Fig 3. *)

  type t

  val create : name:string -> t

  val incr : t -> unit
  (** One step. *)

  val get : t -> int
  (** One step. *)

  val peek : t -> int
  (** Oracle access, no step. *)
end
