open Kernel

type 'a t = { reg_name : string; mutable cell : 'a }

let m_reads = Obs.Metrics.counter "memory.register.reads"
let m_writes = Obs.Metrics.counter "memory.register.writes"

let create ~name init = { reg_name = name; cell = init }
let name t = t.reg_name

let read t =
  Obs.Metrics.incr m_reads;
  Sim.atomic (Sim.Read { obj = t.reg_name }) (fun _ -> t.cell)

let write t v =
  Obs.Metrics.incr m_writes;
  Sim.atomic (Sim.Write { obj = t.reg_name }) (fun _ -> t.cell <- v)

let read_timed t =
  Obs.Metrics.incr m_reads;
  Sim.atomic (Sim.Read { obj = t.reg_name }) (fun ctx -> (ctx.Sim.now, t.cell))

let write_timed t v =
  Obs.Metrics.incr m_writes;
  Sim.atomic
    (Sim.Write { obj = t.reg_name })
    (fun ctx ->
      t.cell <- v;
      ctx.Sim.now)

let peek t = t.cell
let poke t v = t.cell <- v

let array ~name ~size ~init =
  Array.init size (fun i ->
      create ~name:(Printf.sprintf "%s[%d]" name i) (init i))

let read_at arr i = read arr.(i)
let write_at arr i v = write arr.(i) v
let collect arr = Array.map read arr

module Counter = struct
  type nonrec t = int t

  let create ~name = create ~name 0

  let incr t =
    (* Single-writer: the read-modify-write is safe to fuse into one
       atomic step because only the owner ever writes. *)
    Obs.Metrics.incr m_writes;
    Sim.atomic (Sim.Write { obj = name t }) (fun _ -> t.cell <- t.cell + 1)

  let get t = read t
  let peek t = peek t
end
