open Kernel

type tag = { seq : int; writer : Pid.t }

let compare_tag a b =
  if a.seq <> b.seq then Int.compare a.seq b.seq
  else Pid.compare a.writer b.writer

type 'a message =
  | Query of { op : int; key : string }
  | Query_reply of { op : int; tag : tag; value : 'a }
  | Update of { op : int; key : string; tag : tag; value : 'a }
  | Update_ack of { op : int }

type 'a reply = Tagged of tag * 'a | Acked

(* Test-only planted mutant (Check.Mutant): when set, [read] skips the
   write-back phase, making reads merely regular — the classic new/old
   read inversion the model checker must be able to find. Never set this
   outside checker regression tests. *)
let chaos_skip_write_back = ref false

let m_reads = Obs.Metrics.counter "memory.abd.reads"
let m_writes = Obs.Metrics.counter "memory.abd.writes"
let m_query_phases = Obs.Metrics.counter "memory.abd.query_phases"
let m_update_phases = Obs.Metrics.counter "memory.abd.update_phases"

(* simulated time units between invocation and response of one client op *)
let m_latency = Obs.Metrics.histogram "memory.abd.op_latency"

type 'a op = {
  kind : [ `Read | `Write ];
  pid : Pid.t;
  key : string;
  tag : tag;
  value : 'a;
  invoked : int;
  responded : int;
}

type 'a t = {
  n_plus_1 : int;
  init : 'a;
  net : 'a message Network.t;
  replica : (string, tag * 'a) Hashtbl.t array; (* per-process replicas, by key *)
  counters : int array; (* per-process client op ids *)
  buffers : (int, 'a reply list ref) Hashtbl.t array; (* client reply buffers *)
  mutable log : 'a op list;
  mutable attempts : (string * tag * 'a * int) list;
      (* write tags broadcast, with keys, values and invoke times *)
}

let create ~name ~n_plus_1 ~init =
  {
    n_plus_1;
    init;
    net = Network.create ~name:(name ^ ".net") ~n_plus_1;
    replica = Array.init n_plus_1 (fun _ -> Hashtbl.create 16);
    counters = Array.make n_plus_1 0;
    buffers = Array.init n_plus_1 (fun _ -> Hashtbl.create 16);
    log = [];
    attempts = [];
  }

let replica_get t ~me ~key =
  match Hashtbl.find_opt t.replica.(me) key with
  | Some pair -> pair
  | None -> ({ seq = 0; writer = 0 }, t.init)

let quorum t = (t.n_plus_1 / 2) + 1

(* Route a reply into the local client's buffer for the matching op (the
   buffer is process-local state shared by the two fibers of one
   process, like Fig 3's two tasks). *)
let stash t ~me ~op reply =
  match Hashtbl.find_opt t.buffers.(me) op with
  | Some cell -> cell := reply :: !cell
  | None -> () (* reply to a finished operation: drop *)

(* The replica/responder fiber: answer requests from the local copy,
   adopt fresher (tag, value) pairs, forward replies to the client. *)
(* Replica step labels carry the owning process: replica.(me) is local
   state only [me]'s server ever touches, so labelling it per process
   lets schedule exploration commute replica steps of distinct
   processes. *)
let replica_obj ~me ~key =
  Printf.sprintf "abd.replica/%s/%s" (Pid.to_string me) key

let server t ~me () =
  while true do
    let messages = Network.poll t.net ~me in
    List.iter
      (fun (from, message) ->
        match message with
        | Query { op; key } ->
            let reply =
              Sim.atomic (Sim.Read { obj = replica_obj ~me ~key }) (fun _ ->
                  let tag, value = replica_get t ~me ~key in
                  Query_reply { op; tag; value })
            in
            Network.send t.net ~to_:from reply
        | Update { op; key; tag; value } ->
            Sim.atomic (Sim.Write { obj = replica_obj ~me ~key }) (fun _ ->
                let current_tag, _ = replica_get t ~me ~key in
                if compare_tag tag current_tag > 0 then
                  Hashtbl.replace t.replica.(me) key (tag, value));
            Network.send t.net ~to_:from (Update_ack { op })
        | Query_reply { op; tag; value } ->
            Sim.atomic Sim.Nop (fun _ -> stash t ~me ~op (Tagged (tag, value)))
        | Update_ack { op } -> Sim.atomic Sim.Nop (fun _ -> stash t ~me ~op Acked))
      messages
  done

let fresh_op t ~me =
  t.counters.(me) <- t.counters.(me) + 1;
  let op = t.counters.(me) in
  Hashtbl.replace t.buffers.(me) op (ref []);
  op

(* Spin (one step per probe) until [op] has collected [want] replies;
   returns them and the time of the completing probe. *)
let await t ~me ~op ~want =
  let rec probe () =
    let status =
      Sim.atomic Sim.Nop (fun ctx ->
          match Hashtbl.find_opt t.buffers.(me) op with
          | Some cell when List.length !cell >= want ->
              Hashtbl.remove t.buffers.(me) op;
              Some (!cell, ctx.Sim.now)
          | Some _ | None -> None)
    in
    match status with Some result -> result | None -> probe ()
  in
  probe ()

let max_tagged replies =
  List.fold_left
    (fun best reply ->
      match (reply, best) with
      | Tagged (tag, value), None -> Some (tag, value)
      | Tagged (tag, value), Some (best_tag, _) when compare_tag tag best_tag > 0
        ->
          Some (tag, value)
      | (Tagged _ | Acked), best -> best)
    None replies

(* Phase 1: collect a majority of (tag, value) pairs. Returns the pair
   with the highest tag, the invocation time (the marker step below) and
   the phase's completion time. *)
let query_phase t ~me ~key =
  Obs.Metrics.incr m_query_phases;
  let op = fresh_op t ~me in
  let invoked = ref 0 in
  Sim.atomic
    (Sim.Write { obj = "abd.query" })
    (fun ctx ->
      invoked := ctx.Sim.now;
      ());
  Network.broadcast t.net (Query { op; key });
  let replies, completed = await t ~me ~op ~want:(quorum t) in
  match max_tagged replies with
  | Some (tag, value) -> (tag, value, !invoked, completed)
  | None -> assert false (* quorum >= 1 Tagged replies *)

(* Phase 2: propagate (tag, value) to a majority. Returns the response
   time. *)
let update_phase t ~me ~key ~tag ~value =
  Obs.Metrics.incr m_update_phases;
  let op = fresh_op t ~me in
  Network.broadcast t.net (Update { op; key; tag; value });
  let _, responded = await t ~me ~op ~want:(quorum t) in
  responded

let log_op t entry = t.log <- entry :: t.log

let read t ~me ~key =
  let tag, value, invoked, query_done = query_phase t ~me ~key in
  (* write-back: a later read must not see an older value *)
  let responded =
    if !chaos_skip_write_back then query_done
    else update_phase t ~me ~key ~tag ~value
  in
  Obs.Metrics.incr m_reads;
  Obs.Metrics.observe_int m_latency (responded - invoked);
  log_op t { kind = `Read; pid = me; key; tag; value; invoked; responded };
  value

let write t ~me ~key value =
  let max_tag, _, invoked, _ = query_phase t ~me ~key in
  let tag = { seq = max_tag.seq + 1; writer = me } in
  (* the tag becomes visible from here on, even if this client crashes
     before completing: atomicity lets such a write linearize anywhere
     after its invocation *)
  t.attempts <- (key, tag, value, invoked) :: t.attempts;
  let responded = update_phase t ~me ~key ~tag ~value in
  Obs.Metrics.incr m_writes;
  Obs.Metrics.observe_int m_latency (responded - invoked);
  log_op t { kind = `Write; pid = me; key; tag; value; invoked; responded };
  ()

let oplog t = List.rev t.log
let attempts t = t.attempts

let unsafe_seed_replica t ~owner ~key ~tag value =
  Hashtbl.replace t.replica.(owner) key (tag, value)

let unsafe_attempt t ~key ~tag value ~invoked =
  t.attempts <- (key, tag, value, invoked) :: t.attempts
let unsafe_append t entry = t.log <- entry :: t.log

(* Atomicity is per register: check each key's sub-log independently. *)
let check_atomicity_key t the_key =
  let ops = List.filter (fun o -> String.equal o.key the_key) (oplog t) in
  let writes = List.filter (fun o -> o.kind = `Write) ops in
  let reads = List.filter (fun o -> o.kind = `Read) ops in
  let describe o =
    Format.asprintf "%s(%s) by %a tag=(%d,%a) [%d,%d]"
      (match o.kind with `Read -> "read" | `Write -> "write")
      o.key Pid.pp o.pid o.tag.seq Pid.pp o.tag.writer o.invoked o.responded
  in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* 1: write tags distinct and real-time consistent *)
  let rec pairs = function
    | [] -> Ok ()
    | w :: rest ->
        let bad =
          List.find_opt
            (fun w' ->
              compare_tag w.tag w'.tag = 0
              || (w.responded < w'.invoked && compare_tag w.tag w'.tag >= 0)
              || (w'.responded < w.invoked && compare_tag w'.tag w.tag >= 0))
            rest
        in
        (match bad with
        | Some w' -> err "write order violation: %s vs %s" (describe w) (describe w')
        | None -> pairs rest)
  in
  let check_reads_vs_writes () =
    List.fold_left
      (fun acc r ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            (* 2: no stale read: any write completed before the read
               began must not out-tag the read *)
            let stale =
              List.find_opt
                (fun w ->
                  w.responded < r.invoked && compare_tag w.tag r.tag > 0)
                writes
            in
            (match stale with
            | Some w -> err "stale read: %s missed %s" (describe r) (describe w)
            | None ->
                (* 4: the read's tag must come from a write invoked before
                   the read responded, or be the initial tag *)
                if r.tag.seq = 0 then Ok ()
                else if
                  (* completed writes and crashed-mid-flight attempts both
                     produce legitimately readable tags *)
                  List.exists
                    (fun (key, tag, _value, invoked) ->
                      String.equal key the_key
                      && compare_tag tag r.tag = 0
                      && invoked <= r.responded)
                    t.attempts
                then Ok ()
                else err "read from the future or unknown tag: %s" (describe r)))
      (Ok ()) reads
  in
  let check_read_read () =
    List.fold_left
      (fun acc r ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            (* 3: non-overlapping reads respect tag order *)
            match
              List.find_opt
                (fun r' ->
                  r.responded < r'.invoked && compare_tag r.tag r'.tag > 0)
                reads
            with
            | Some r' ->
                err "new-old read inversion: %s then %s" (describe r)
                  (describe r')
            | None -> Ok ()))
      (Ok ()) reads
  in
  match pairs writes with
  | Error _ as e -> e
  | Ok () -> (
      match check_reads_vs_writes () with
      | Error _ as e -> e
      | Ok () -> check_read_read ())

let keys t =
  List.sort_uniq String.compare (List.map (fun o -> o.key) (oplog t))

let check_atomicity t =
  List.fold_left
    (fun acc key ->
      match acc with Error _ -> acc | Ok () -> check_atomicity_key t key)
    (Ok ()) (keys t)
