open Kernel

type 'a t = { nat_name : string; arr : 'a array }

let m_scans = Obs.Metrics.counter "memory.native_snapshot.scans"
let m_updates = Obs.Metrics.counter "memory.native_snapshot.updates"

let create ~name ~size ~init = { nat_name = name; arr = Array.init size init }
let size t = Array.length t.arr

let update t ~me v =
  Obs.Metrics.incr m_updates;
  Sim.atomic (Sim.Write { obj = t.nat_name }) (fun _ -> t.arr.(me) <- v)

let scan t =
  Obs.Metrics.incr m_scans;
  Sim.atomic (Sim.Read { obj = t.nat_name }) (fun _ -> Array.copy t.arr)
let peek t = Array.copy t.arr
