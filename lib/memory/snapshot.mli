(** Wait-free atomic snapshot built from registers.

    Implements the single-writer atomic-snapshot object of Afek, Attiya,
    Dolev, Gafni, Merritt and Shavit (JACM 1993) — reference [1] of the
    paper, which Fig 2 relies on. The object has [size] positions;
    [update i v] writes position [i] (only process [i] may do so) and
    [scan] returns an atomic view of all positions. Both operations are
    built exclusively from register reads and writes, each a model step;
    [scan] costs a variable number of collects but is wait-free: after at
    most [2·size + 1] collects it either completes a successful double
    collect or borrows the embedded view of a process it saw move twice.

    The key property the paper's Theorem 6 proof uses: the results of any
    two scans are related by containment. Tests check this on version
    vectors via {!scan_versioned}. *)

type 'a t

val create : name:string -> size:int -> init:(int -> 'a) -> 'a t
(** Positions start at [init i] with version 0. *)

val size : 'a t -> int

val update : 'a t -> me:int -> 'a -> unit
(** Write position [me]. Single-writer: only one process may ever update
    a given position. Costs one scan plus two register operations. *)

val scan : 'a t -> 'a array
(** An atomic view of all positions. *)

val scan_versioned : 'a t -> ('a * int) array
(** Like {!scan} but pairing each value with its per-position version
    (update count); version vectors of concurrent scans are related by
    containment (pointwise [≤] one way or the other). *)

val scan_timed : 'a t -> 'a array * int * int
(** [scan_timed t] is [(view, first, last)] where [first]/[last] are the
    times of the scan's first and last register accesses — the real-time
    interval history recorders attribute to the operation. *)

val update_timed : 'a t -> me:int -> 'a -> int * int
(** Like {!update}, returning the times of the operation's first register
    access and of the final write (its linearization point). *)

val peek : 'a t -> 'a array
(** Current contents without taking steps — oracle use only. *)

val chaos_single_collect : bool ref
(** Test-only planted mutant: when set, [scan] returns its first collect
    without double-collect validation, so concurrent updates can yield
    atomically inconsistent views. For checker regression tests only. *)
