(** ABD: atomic register emulation over asynchronous messages
    (Attiya–Bar-Noy–Dolev, JACM 1995), multi-writer variant.

    The paper assumes shared registers; this module shows that substrate
    is realizable in a crash-prone message-passing system with a correct
    majority, so everything built above registers (k-converge, Figs 1–2)
    transfers to message passing. Experiment E10 exercises it.

    Each process runs a {e server} fiber (answering Query/Update requests
    from its local replica, forwarding replies to the local client) and
    performs client operations from its protocol fiber:

    - [write v]: query a majority for tags, pick a tag higher than all
      seen (tie-broken by writer id), then propagate [(tag, v)] to a
      majority;
    - [read]: query a majority, adopt the maximum-tag pair, {e write it
      back} to a majority (the famous read write-back that makes reads
      atomic rather than merely regular), return the value.

    Every message send and mailbox poll is one model step. Liveness needs
    a correct majority; safety holds under any number of crashes.

    Operations are logged with their ABD tags and invoke/response times;
    {!check_atomicity} verifies linearizability of the log — with tags a
    total order on writes is explicit, so atomicity reduces to four
    real-time/tag consistency conditions. *)

open Kernel

type 'a t

type tag = { seq : int; writer : Pid.t }

val compare_tag : tag -> tag -> int

val create : name:string -> n_plus_1:int -> init:'a -> 'a t
(** A keyed store of emulated registers sharing one network and one
    server fiber per process; every key behaves as an independent atomic
    register initialized to [init]. *)

val server : 'a t -> me:Pid.t -> unit -> unit
(** The replica/responder fiber body; run one per process, forever. *)

val read : 'a t -> me:Pid.t -> key:string -> 'a
(** Client read of the named register; blocks (taking steps) until
    majorities respond. A fresh key reads as the store's [init]. *)

val write : 'a t -> me:Pid.t -> key:string -> 'a -> unit

val quorum : 'a t -> int
(** ⌈(n+2)/2⌉, the majority size used by both phases. *)

(** One logged client operation. *)
type 'a op = {
  kind : [ `Read | `Write ];
  pid : Pid.t;
  key : string;
  tag : tag;
  value : 'a;
  invoked : int;
  responded : int;
}

val oplog : 'a t -> 'a op list
(** Completed operations in completion order. *)

val attempts : 'a t -> (string * tag * 'a * int) list
(** Every write attempt whose tag became visible (broadcast), as
    [(key, tag, value, invoke_time)], newest first — including writes
    whose client crashed mid-operation. Model checking uses these as the
    pending operations a linearization may still include. *)

val chaos_skip_write_back : bool ref
(** Test-only planted mutant: when set, {!read} skips the write-back
    phase, so reads are merely regular and non-overlapping reads can see
    new-then-old values. Exists solely so checker regression tests can
    assert the bug is found; never set it elsewhere. *)

val unsafe_append : 'a t -> 'a op -> unit
(** Append a hand-built entry to the op log — for testing the checker on
    forged histories only. *)

val unsafe_seed_replica :
  'a t -> owner:Pid.t -> key:string -> tag:tag -> 'a -> unit
(** Harness-only, no steps: install [(tag, value)] at [owner]'s replica,
    modelling a write that reached that replica before the run began
    (e.g. a client that crashed mid-update-phase). Pair with
    {!unsafe_attempt} so checkers know the tag is legitimate. *)

val unsafe_attempt : 'a t -> key:string -> tag:tag -> 'a -> invoked:int -> unit
(** Harness-only, no steps: record a broadcast write attempt. *)

val keys : 'a t -> string list
(** Every key appearing in the op log. *)

val check_atomicity : 'a t -> (unit, string) result
(** Linearizability of the op log, per key:
    + write tags are distinct and respect real-time order;
    + a read's tag is at least the tag of every write completed before
      the read was invoked;
    + reads that do not overlap respect each other's tags;
    + every read's tag was produced by a write invoked before the read
      responded (or is the initial tag). *)
