#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (version 0.0.4) document.

Usage:
    check_prom.py [FILE] [--require METRIC ...]

Reads FILE (or stdin when omitted or "-"). Two input shapes are
accepted:

  * raw exposition text, e.g. the output of `wfde stats --format prom`;
  * the daemon's JSON envelope `{"content_type": ..., "body": ...}`, as
    returned by `wfde client metrics --params '{"format":"prom"}'` —
    the body is unwrapped before validation.

Checks performed:

  * every sample line parses as `name[{labels}] value`;
  * every sample's base family has exactly one `# TYPE` line, which
    appears before its first sample;
  * TYPE kinds are counter/gauge/histogram; counter and histogram
    bucket/count samples are non-negative integers;
  * histogram `_bucket` series are cumulative (monotone in `le`,
    within one label set), end in `le="+Inf"`, and the +Inf bucket
    equals the matching `_count` sample;
  * every histogram has `_sum` and `_count`;
  * with --require, each named metric family must be present.

Exit status: 0 when valid, 1 with a diagnostic on the first failure.
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(msg):
    print(f"check_prom: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def read_input(path):
    if path in (None, "-"):
        text = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError as e:
            fail(f"input looks like JSON but does not parse: {e}")
        if not isinstance(doc, dict) or "body" not in doc:
            fail('JSON input has no "body" field to unwrap')
        body = doc["body"]
        if not isinstance(body, str):
            fail('"body" is not a string')
        return body
    return text


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(raw):
    if not raw:
        return ()
    out, pos = [], 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if not m:
            fail(f"malformed label pair at ...{raw[pos:pos+30]!r}")
        out.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                fail(f"expected ',' between labels in {raw!r}")
            pos += 1
    return tuple(out)


def main(argv):
    path, required = None, []
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--require":
            if not args:
                fail("--require needs a metric name")
            required.append(args.pop(0))
        elif a in ("-h", "--help"):
            print(__doc__)
            return 0
        elif path is None:
            path = a
        else:
            fail(f"unexpected argument {a!r}")

    text = read_input(path)
    types = {}          # family -> kind
    seen_samples = []   # (lineno, name, labels tuple, value string)
    families_seen = set()

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(f"line {lineno}: malformed TYPE line: {line!r}")
            _, _, fam, kind = parts
            if not NAME_RE.match(fam):
                fail(f"line {lineno}: bad family name {fam!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                fail(f"line {lineno}: unknown kind {kind!r}")
            if fam in types:
                fail(f"line {lineno}: duplicate TYPE for {fam}")
            types[fam] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: unparseable sample: {line!r}")
        name, labels, value = m.group("name"), m.group("labels"), m.group("value")
        fam = base_family(name)
        if fam not in types:
            fail(f"line {lineno}: sample {name} has no preceding TYPE for {fam}")
        families_seen.add(fam)
        try:
            float(value)
        except ValueError:
            if value not in ("+Inf", "-Inf", "NaN"):
                fail(f"line {lineno}: bad sample value {value!r}")
        seen_samples.append((lineno, name, parse_labels(labels or ""), value))

    # integer-valued families
    for lineno, name, _labels, value in seen_samples:
        fam = base_family(name)
        kind = types[fam]
        if kind == "counter" or (
            kind == "histogram" and (name.endswith("_bucket") or name.endswith("_count"))
        ):
            try:
                v = float(value)
            except ValueError:
                fail(f"line {lineno}: {name} value {value!r} is not numeric")
            if v < 0 or v != int(v):
                fail(f"line {lineno}: {name} must be a non-negative integer, got {value}")

    # histogram structure: bucket monotonicity, +Inf terminal, sum/count
    hist_fams = [f for f, k in types.items() if k == "histogram" and f in families_seen]
    for fam in hist_fams:
        # group bucket samples by their non-le label set
        buckets = {}
        sums, counts = {}, {}
        for _lineno, name, labels, value in seen_samples:
            if base_family(name) != fam:
                continue
            if name == fam + "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    fail(f"{fam}_bucket sample missing le label")
                rest = tuple(kv for kv in labels if kv[0] != "le")
                buckets.setdefault(rest, []).append((le, float(value)))
            elif name == fam + "_sum":
                sums[labels] = float(value)
            elif name == fam + "_count":
                counts[labels] = float(value)
        if not buckets:
            fail(f"histogram {fam} has no _bucket samples")
        for rest, series in buckets.items():
            if series[-1][0] != "+Inf":
                fail(f"histogram {fam}{dict(rest)} does not end at le=\"+Inf\"")
            prev_le, prev_c = None, -1.0
            for le, c in series:
                if c < prev_c:
                    fail(
                        f"histogram {fam}{dict(rest)} bucket counts not "
                        f"cumulative at le={le} ({c} < {prev_c})"
                    )
                if le != "+Inf":
                    f_le = float(le)
                    if prev_le is not None and f_le <= prev_le:
                        fail(f"histogram {fam}{dict(rest)} le bounds not increasing")
                    prev_le = f_le
                prev_c = c
            if rest not in counts:
                fail(f"histogram {fam}{dict(rest)} missing _count")
            if rest not in sums:
                fail(f"histogram {fam}{dict(rest)} missing _sum")
            if series[-1][1] != counts[rest]:
                fail(
                    f"histogram {fam}{dict(rest)}: +Inf bucket {series[-1][1]} "
                    f"!= _count {counts[rest]}"
                )

    for fam in required:
        if fam not in families_seen:
            fail(f"required metric family {fam!r} not present")

    n_hist = len(hist_fams)
    print(
        f"check_prom: OK: {len(seen_samples)} samples, "
        f"{len(families_seen)} families ({n_hist} histograms)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
