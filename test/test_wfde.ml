(* End-to-end tests: the experiment drivers (with small parameters), the
   harness, report rendering, and the booster-consensus extension. *)

open Kernel

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* -- report ------------------------------------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec probe i = i + nn <= nh && (String.sub haystack i nn = needle || probe (i + 1)) in
  nn = 0 || probe 0

let test_report_alignment () =
  let t =
    {
      Wfde.Report.title = "demo";
      headers = [ "a"; "long-header"; "c" ];
      rows = [ [ "xxxxx"; "1"; "2" ]; [ "y"; "22"; "333" ] ];
    }
  in
  let s = Wfde.Report.to_string t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | _title :: header :: rule :: _ ->
      checki "rule width matches header width" (String.length header)
        (String.length rule)
  | _ -> Alcotest.fail "too few lines");
  checkb "contains all cells" true
    (List.for_all (contains s) [ "xxxxx"; "long-header"; "333" ])

(* -- harness ------------------------------------------------------------- *)

let test_harness_world_determinism () =
  let w1 = Wfde.Harness.random_world ~seed:7 ~n_plus_1:4 ~max_faulty:2 () in
  let w2 = Wfde.Harness.random_world ~seed:7 ~n_plus_1:4 ~max_faulty:2 () in
  Alcotest.check Alcotest.string "same pattern"
    (Format.asprintf "%a" Failure_pattern.pp w1.Wfde.Harness.pattern)
    (Format.asprintf "%a" Failure_pattern.pp w2.Wfde.Harness.pattern)

let test_harness_fig1_measures () =
  let w = Wfde.Harness.random_world ~seed:3 ~n_plus_1:3 ~max_faulty:2 () in
  let m = Wfde.Harness.run_fig1 w in
  checkb "ok" true (Wfde.Harness.ok m);
  checkb "decision times ordered" true
    (m.Wfde.Harness.first_decision_time <= m.Wfde.Harness.last_decision_time);
  checkb "rounds positive" true (m.Wfde.Harness.rounds >= 1)

(* -- experiments (small parameters) ---------------------------------------- *)

let test_experiments_hold_small () =
  let outcomes =
    [
      Wfde.Experiments.e1_fig1_set_agreement ~seeds:4 ~sizes:[ 2; 3 ] ();
      Wfde.Experiments.e2_fig2_f_resilient ~seeds:3 ~sizes:[ 3; 4 ] ();
      Wfde.Experiments.e3_theorem1_adversary ~max_phases:6 ();
      Wfde.Experiments.e4_theorem5_adversary ~max_phases:6 ();
      Wfde.Experiments.e5_fig3_extraction ~seeds:2 ();
      Wfde.Experiments.e6_pairwise_reductions ~seeds:4 ();
      Wfde.Experiments.e7_upsilon_vs_omega_n ~seeds:3 ~stab_times:[ 0; 200 ] ();
      Wfde.Experiments.e8_impossibility ~horizons:[ 10_000 ] ();
      Wfde.Experiments.e9_booster_consensus ~seeds:4 ~sizes:[ 2; 3 ] ();
      Wfde.Experiments.a1_snapshot_ablation ~sizes:[ 2; 4 ] ();
      Wfde.Experiments.a2_escape_ablation ~seeds:4 ();
    ]
  in
  List.iter
    (fun o ->
      if not o.Wfde.Experiments.ok then
        Alcotest.failf "experiment %s failed:@.%s" o.Wfde.Experiments.id
          (Wfde.Report.to_string o.Wfde.Experiments.table))
    outcomes

let test_experiment_lookup () =
  List.iter
    (fun id ->
      match Wfde.Experiments.by_id id with
      | Some _ -> ()
      | None -> Alcotest.failf "experiment %s not registered" id)
    [
      "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11";
      "a1"; "a2"; "a3";
    ];
  checkb "unknown rejected" true (Wfde.Experiments.by_id "e99" = None)

(* -- stats ------------------------------------------------------------------ *)

let test_stats_percentiles () =
  let xs = [ 10; 20; 30; 40; 50 ] in
  let pct q = Wfde.Stats.percentile_or ~default:Float.nan q xs in
  Alcotest.check (Alcotest.float 0.001) "median" 30.0 (pct 0.5);
  Alcotest.check (Alcotest.float 0.001) "min" 10.0 (pct 0.0);
  Alcotest.check (Alcotest.float 0.001) "max" 50.0 (pct 1.0);
  Alcotest.check (Alcotest.float 0.001) "interpolated p25" 20.0 (pct 0.25);
  let s =
    match Wfde.Stats.summarize xs with
    | Some s -> s
    | None -> Alcotest.fail "summarize of non-empty list"
  in
  Alcotest.check (Alcotest.float 0.001) "mean" 30.0 s.Wfde.Stats.mean;
  checki "count" 5 s.Wfde.Stats.count;
  checki "min" 10 s.Wfde.Stats.min;
  checki "max" 50 s.Wfde.Stats.max;
  (* totality on the empty family: no exceptions, explicit absences *)
  checkb "empty summarize" true (Wfde.Stats.summarize [] = None);
  checkb "empty percentile" true (Wfde.Stats.percentile 0.95 [] = None);
  Alcotest.check (Alcotest.float 0.001) "empty percentile_or" 0.0
    (Wfde.Stats.percentile_or ~default:0.0 0.95 [])

(* -- booster consensus ------------------------------------------------------ *)

let run_booster ~seed ~n_plus_1 =
  let rng = Rng.create seed in
  let pattern =
    Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1) ~latest:200
  in
  let omega_n = Detectors.Omega_k.make ~rng ~pattern ~k:(n_plus_1 - 1) () in
  let proto =
    Agreement.Booster_consensus.create ~name:"boost" ~n_plus_1
      ~omega_n:(Detectors.Detector.source omega_n)
  in
  let _result =
    Run.exec ~pattern ~policy:(Policy.random rng) ~horizon:2_000_000
      ~procs:(fun pid ->
        [ Agreement.Booster_consensus.proposer proto ~me:pid ~input:(900 + pid) ])
      ()
  in
  let verdict =
    Agreement.Sa_spec.check ~k:1 ~pattern
      ~proposals:(List.map (fun p -> (p, 900 + p)) (Pid.all ~n_plus_1))
      ~decisions:(Agreement.Booster_consensus.decisions proto)
      ()
  in
  (verdict, proto, pattern)

let test_booster_solves_consensus () =
  for seed = 1 to 30 do
    let n_plus_1 = 2 + (seed mod 4) in
    let verdict, _, pattern = run_booster ~seed ~n_plus_1 in
    if not (Agreement.Sa_spec.all_ok verdict) then
      Alcotest.failf "seed %d (%a): %a" seed Failure_pattern.pp pattern
        Agreement.Sa_spec.pp verdict
  done

let test_booster_port_discipline () =
  (* No consensus object may ever see more than n distinct processes,
     even while Omega_n is still unstable. *)
  for seed = 1 to 30 do
    let n_plus_1 = 3 + (seed mod 3) in
    let _, proto, _ = run_booster ~seed:(seed + 500) ~n_plus_1 in
    checkb "ports within n" true
      (Agreement.Booster_consensus.max_ports_used proto <= n_plus_1 - 1)
  done

let test_booster_unique_decision () =
  for seed = 1 to 20 do
    let _, proto, _ = run_booster ~seed:(seed + 900) ~n_plus_1:4 in
    let decided =
      Agreement.Booster_consensus.decisions proto
      |> List.map snd |> List.sort_uniq Int.compare
    in
    checkb "exactly one value" true (List.length decided = 1)
  done

let suite =
  [
    Alcotest.test_case "report alignment" `Quick test_report_alignment;
    Alcotest.test_case "harness world determinism" `Quick
      test_harness_world_determinism;
    Alcotest.test_case "harness fig1 measures" `Quick test_harness_fig1_measures;
    Alcotest.test_case "all experiments hold (small)" `Slow
      test_experiments_hold_small;
    Alcotest.test_case "experiment lookup" `Quick test_experiment_lookup;
    Alcotest.test_case "stats percentiles" `Quick test_stats_percentiles;
    Alcotest.test_case "booster solves consensus" `Quick
      test_booster_solves_consensus;
    Alcotest.test_case "booster port discipline" `Quick
      test_booster_port_discipline;
    Alcotest.test_case "booster unique decision" `Quick
      test_booster_unique_decision;
  ]
