(* Tests for the scale-out fabric: the checkpoint journal (QCheck
   battery over arbitrary write interleavings and crash damage), the
   coordinator's differential contract (merged sweep/check output
   byte-identical to the serial path), and the chaos legs — SIGKILL a
   worker mid-run, drain another, kill and resume the coordinator —
   after which the merged bytes must STILL be identical and the
   deterministic invariants must hold: units_recomputed equals
   units_lost_to_crash and payload_mismatches is zero. Workers are real
   child processes of the built CLI, so a kill is a real crash. *)

module J = Obs.Json
module Proc = Serve.Loadgen.Proc

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------------------------------------------------------- journal --- *)

(* A journal history as data: results and frontiers in write order,
   then optional damage to the file's tail. *)
type jop = Result of int | Frontier of int

let payload_for op =
  match op with
  | Result i -> J.Obj [ ("unit", J.Int i); ("body", J.String (string_of_int i)) ]
  | Frontier i -> J.Obj [ ("slice", J.Int i) ]

(* what a correct load must reconstruct: first result per index wins;
   latest frontier per index, and only for units without a result *)
let expected_of ops =
  let results =
    List.fold_left
      (fun acc op ->
        match op with
        | Result i when not (List.mem_assoc i acc) ->
            (i, payload_for (Result i)) :: acc
        | _ -> acc)
      [] ops
    |> List.rev
  in
  let frontiers =
    List.fold_left
      (fun acc op ->
        match op with
        | Frontier i -> (i, payload_for (Frontier i)) :: List.remove_assoc i acc
        | _ -> acc)
      [] ops
    |> List.filter (fun (i, _) -> not (List.mem_assoc i results))
  in
  (results, frontiers)

let write_journal ~dir ~key ~units ops =
  let j = Fabric.Journal.create ~dir ~key ~units in
  List.iter
    (fun op ->
      match op with
      | Result i -> Fabric.Journal.record_result j ~index:i (payload_for op)
      | Frontier i -> Fabric.Journal.record_frontier j ~index:i (payload_for op))
    ops;
  Fabric.Journal.file ~dir ~key

type damage = Intact | Truncated | Garbage

let jops_gen =
  QCheck.Gen.(
    let* units = int_range 2 6 in
    let* ops =
      list_size (int_bound 12)
        (pair bool (int_bound (units - 1)) >|= fun (r, i) ->
         if r then Result i else Frontier i)
    in
    let* damage = oneofl [ Intact; Truncated; Garbage ] in
    return (units, ops, damage))

let qcheck_journal_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"journal: load inverts writes, damage costs only the tail"
    (QCheck.make jops_gen)
    (fun (units, ops, damage) ->
      let dir = Testutil.temp_dir ~prefix:"wfde_fabric_journal" () in
      Fun.protect
        ~finally:(fun () -> Testutil.rm_rf dir)
        (fun () ->
          let key = "k0123456789abcdef" in
          let path = write_journal ~dir ~key ~units ops in
          let damage = if ops = [] then Intact else damage in
          (match damage with
          | Intact -> ()
          | Truncated ->
              (* chop bytes out of the final line: a crash mid-write *)
              let ic = open_in_bin path in
              let len = in_channel_length ic in
              let all = really_input_string ic len in
              close_in ic;
              let cut = 1 + (String.length (J.to_string (payload_for (List.hd (List.rev ops)))) / 2) in
              let oc = open_out_bin path in
              output_string oc (String.sub all 0 (len - cut));
              close_out oc
          | Garbage ->
              let oc =
                open_out_gen [ Open_append; Open_binary ] 0o644 path
              in
              output_string oc "{\"unit\": not json\n";
              close_out oc);
          (* a mismatched key or unit count must refuse to resume *)
          assert (Fabric.Journal.load ~dir ~key:"other" ~units = None);
          assert (Fabric.Journal.load ~dir ~key ~units:(units + 1) = None);
          match Fabric.Journal.load ~dir ~key ~units with
          | None -> false
          | Some (j, loaded) ->
              let ops_kept =
                match damage with
                | Truncated -> List.rev (List.tl (List.rev ops))
                | Intact | Garbage -> ops
              in
              let want_results, want_frontiers = expected_of ops_kept in
              let eq_assoc a b =
                List.length a = List.length b
                && List.for_all2
                     (fun (i, p) (i', p') ->
                       i = i' && J.to_string p = J.to_string p')
                     a b
              in
              let sort l =
                List.sort (fun (a, _) (b, _) -> Int.compare a b) l
              in
              eq_assoc want_results loaded.Fabric.Journal.results
              && eq_assoc (sort want_frontiers)
                   (sort loaded.Fabric.Journal.frontiers)
              && loaded.Fabric.Journal.dropped
                 = (match damage with Intact -> 0 | _ -> 1)
              &&
              (* appending after a load preserves the loaded history *)
              let extra = units - 1 in
              Fabric.Journal.record_result j ~index:extra
                (payload_for (Result extra));
              (match Fabric.Journal.load ~dir ~key ~units with
              | None -> false
              | Some (_, re) ->
                  let want, _ =
                    expected_of (ops_kept @ [ Result extra ])
                  in
                  eq_assoc want re.Fabric.Journal.results
                  && re.Fabric.Journal.dropped = 0)))

(* ----------------------------------------------- workers and helpers --- *)

let with_workers n f =
  let binary = Testutil.wfde_binary () in
  let procs =
    List.init n (fun _ ->
        Proc.start ~binary ~socket:(Testutil.temp_socket ()) ())
  in
  Fun.protect
    ~finally:(fun () -> List.iter Proc.destroy procs)
    (fun () ->
      List.iter
        (fun p ->
          if not (Proc.wait_ready p) then
            Alcotest.failf "daemon on %s not ready" p.Proc.socket)
        procs;
      f (Array.of_list procs))

let cfg_of procs =
  {
    (Fabric.Coordinator.default
       ~workers:(Array.to_list (Array.map (fun p -> p.Proc.socket) procs)))
    with
    retries = 2;
    backoff_ms = 5.;
  }

(* timing fields are the one sanctioned difference between fabric and
   serial sweep JSON *)
let rec strip_walls = function
  | J.Obj kvs ->
      J.Obj
        (List.map
           (fun (k, v) ->
             if k = "wall_seconds" || k = "total_wall_seconds" then
               (k, J.Float 0.)
             else (k, strip_walls v))
           kvs)
  | J.List l -> J.List (List.map strip_walls l)
  | other -> other

let reference_sweep ids =
  let timed =
    List.map
      (fun id ->
        let f = Option.get (Wfde.Experiments.by_id id) in
        (id, f ~scale:1 ~jobs:1 (), 0.0))
      ids
  in
  let outcomes = List.map (fun (_, o, _) -> o) timed in
  ( Serve.Service.sweep_text outcomes,
    Serve.Service.sweep_json ~jobs:1 ~scale:1 timed )

let reference_check ?mutant ~procs ~depth obj =
  let o = Wfde.Harness.check_exhaustive ~jobs:1 ~procs ~depth ?mutant obj in
  (Serve.Service.check_text o, Wfde.Harness.check_outcome_json o)

let assert_invariants ?(cut = false) label (p : Fabric.Coordinator.progress) =
  (* [cut]: a violation run merges only up to the first violating unit,
     so a unit lost beyond the cut is rightly never recomputed *)
  if cut then
    checkb
      (label ^ ": recomputed <= lost")
      true
      (p.units_recomputed <= p.units_lost_to_crash)
  else
    checki (label ^ ": recomputed = lost") p.units_lost_to_crash
      p.units_recomputed;
  checki (label ^ ": no payload mismatches") 0 p.payload_mismatches

let run_ok label cfg plan =
  match Fabric.Coordinator.run cfg plan with
  | Ok r -> r
  | Error msg -> Alcotest.failf "%s: fabric failed: %s" label msg
  | exception Fabric.Coordinator.Crashed k ->
      Alcotest.failf "%s: unexpected Crashed %d" label k

(* ----------------------------------------------------- differential --- *)

let test_sweep_differential () =
  let ids = [ "e1"; "e2"; "e6" ] in
  let want_text, want_json = reference_sweep ids in
  with_workers 3 (fun procs ->
      let plan =
        match Fabric.Plan.sweep ids with Ok p -> p | Error m -> Alcotest.fail m
      in
      (* chaos: a worker dies for real once the first unit lands *)
      let killed = Atomic.make false in
      let cfg =
        {
          (cfg_of procs) with
          window = 1;
          on_unit_done =
            Some
              (fun k ->
                if k >= 1 && not (Atomic.exchange killed true) then
                  Proc.sigkill procs.(0));
        }
      in
      let r = run_ok "sweep" cfg plan in
      checks "sweep text identical under worker kill" want_text r.text;
      checks "sweep json identical modulo walls"
        (J.to_string (strip_walls want_json))
        (J.to_string (strip_walls r.json));
      checkb "sweep ok" true r.ok;
      assert_invariants "sweep" r.progress)

let test_check_differential_sliced () =
  let want_text, want_json =
    reference_check ~procs:3 ~depth:8 Wfde.Scenario.Abd
  in
  with_workers 2 (fun procs ->
      let plan = Fabric.Plan.check ~procs:3 ~depth:8 Wfde.Scenario.Abd in
      checkb "abd d8 shards into many units" true
        (Array.length plan.Fabric.Plan.units > 10);
      (* small unit budget: many slices cross worker boundaries through
         serialized frontiers, and the result must not care *)
      let cfg = { (cfg_of procs) with unit_budget = Some 5 } in
      let r = run_ok "check" cfg plan in
      checks "check text identical with budget slicing" want_text r.text;
      checks "check json byte-identical" (J.to_string want_json)
        (J.to_string r.json);
      checkb "slicing actually happened" true
        (r.progress.frontier_slices > 0);
      assert_invariants "check" r.progress)

(* ------------------------------------------------------------ chaos --- *)

let test_check_worker_kill_and_drain () =
  let want_text, want_json =
    reference_check ~procs:3 ~depth:8 Wfde.Scenario.Abd
  in
  with_workers 3 (fun procs ->
      let plan = Fabric.Plan.check ~procs:3 ~depth:8 Wfde.Scenario.Abd in
      let units = Array.length plan.Fabric.Plan.units in
      let killed = Atomic.make false and drained = Atomic.make false in
      let cfg =
        {
          (cfg_of procs) with
          unit_budget = Some 10;
          on_unit_done =
            Some
              (fun k ->
                if k >= 3 && not (Atomic.exchange killed true) then
                  Proc.sigkill procs.(1);
                if k >= units / 2 && not (Atomic.exchange drained true) then
                  Proc.sigterm procs.(2));
        }
      in
      let r = run_ok "chaos" cfg plan in
      checks "text identical after kill + drain" want_text r.text;
      checks "json identical after kill + drain" (J.to_string want_json)
        (J.to_string r.json);
      assert_invariants "chaos" r.progress;
      checkb "the kill was observed" true (r.progress.workers_dead >= 1))

let test_coordinator_crash_resume () =
  let want_text, want_json =
    reference_check ~procs:3 ~depth:8 Wfde.Scenario.Abd
  in
  let dir = Testutil.temp_dir ~prefix:"wfde_fabric_ckpt" () in
  Fun.protect
    ~finally:(fun () -> Testutil.rm_rf dir)
    (fun () ->
      with_workers 2 (fun procs ->
          let plan = Fabric.Plan.check ~procs:3 ~depth:8 Wfde.Scenario.Abd in
          let cfg =
            { (cfg_of procs) with checkpoint = Some dir; crash_after = Some 10 }
          in
          (match Fabric.Coordinator.run cfg plan with
          | exception Fabric.Coordinator.Crashed k ->
              checkb "crash point honored" true (k >= 10)
          | Ok _ -> Alcotest.fail "expected the coordinator to crash"
          | Error msg -> Alcotest.failf "fabric failed: %s" msg);
          let cfg =
            {
              (cfg_of procs) with
              checkpoint = Some dir;
              resume = true;
              crash_after = None;
            }
          in
          let r = run_ok "resume" cfg plan in
          checkb "resume skipped journaled units" true
            (r.progress.units_from_journal >= 10);
          checkb "resume recomputed only the rest" true
            (r.progress.units_completed
             = r.progress.units_total - r.progress.units_from_journal);
          checks "text identical after crash + resume" want_text r.text;
          checks "json identical after crash + resume" (J.to_string want_json)
            (J.to_string r.json);
          assert_invariants "resume" r.progress))

let test_mutants_identical_under_kill () =
  (* every planted bug must be caught through the fabric with the
     byte-identical violation report, a worker crash notwithstanding *)
  List.iter
    (fun (obj, procs, depth, mutant) ->
      let want_text, want_json =
        reference_check ~procs ~depth ~mutant obj
      in
      with_workers 2 (fun procs_arr ->
          let plan = Fabric.Plan.check ~procs ~depth ~mutant obj in
          let killed = Atomic.make false in
          let cfg =
            {
              (cfg_of procs_arr) with
              on_unit_done =
                Some
                  (fun k ->
                    if k >= 1 && not (Atomic.exchange killed true) then
                      Proc.sigkill procs_arr.(0));
            }
          in
          let label = Wfde.Mutant.to_string mutant in
          let r = run_ok label cfg plan in
          checks (label ^ ": violation text identical") want_text r.text;
          checks (label ^ ": violation json identical")
            (J.to_string want_json) (J.to_string r.json);
          checkb (label ^ ": violation found") false r.ok;
          assert_invariants ~cut:true label r.progress))
    [
      (Wfde.Scenario.Abd, 3, 10, Wfde.Mutant.Abd_skip_write_back);
      (Wfde.Scenario.Snapshot, 3, 12, Wfde.Mutant.Snapshot_single_collect);
      (Wfde.Scenario.Commit_adopt, 2, 6, Wfde.Mutant.Converge_drop_phase2);
    ]

let test_all_workers_dead_is_resumable () =
  let dir = Testutil.temp_dir ~prefix:"wfde_fabric_dead" () in
  Fun.protect
    ~finally:(fun () -> Testutil.rm_rf dir)
    (fun () ->
      with_workers 1 (fun procs ->
          let plan = Fabric.Plan.check ~procs:3 ~depth:8 Wfde.Scenario.Abd in
          let killed = Atomic.make false in
          let cfg =
            {
              (cfg_of procs) with
              checkpoint = Some dir;
              on_unit_done =
                Some
                  (fun k ->
                    if k >= 2 && not (Atomic.exchange killed true) then
                      Proc.sigkill procs.(0));
            }
          in
          (match Fabric.Coordinator.run cfg plan with
          | Error msg ->
              checkb "error names resume" true
                (Testutil.contains msg "--resume")
          | Ok _ -> Alcotest.fail "expected failure with every worker dead"
          | exception Fabric.Coordinator.Crashed k ->
              Alcotest.failf "unexpected Crashed %d" k);
          (* the journal survived: a fresh worker fleet picks it up *)
          with_workers 2 (fun procs2 ->
              let cfg =
                { (cfg_of procs2) with checkpoint = Some dir; resume = true }
              in
              let r = run_ok "afterlife" cfg plan in
              let want_text, _ =
                reference_check ~procs:3 ~depth:8 Wfde.Scenario.Abd
              in
              checkb "journal units were honored" true
                (r.progress.units_from_journal >= 2);
              checks "text identical after total worker loss" want_text
                r.text)))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_journal_roundtrip;
    Alcotest.test_case "sweep differential under worker kill" `Slow
      test_sweep_differential;
    Alcotest.test_case "check differential with budget slicing" `Slow
      test_check_differential_sliced;
    Alcotest.test_case "check survives kill + drain byte-identically" `Slow
      test_check_worker_kill_and_drain;
    Alcotest.test_case "coordinator crash + resume is exact" `Slow
      test_coordinator_crash_resume;
    Alcotest.test_case "planted mutants identical under worker kill" `Slow
      test_mutants_identical_under_kill;
    Alcotest.test_case "total worker loss leaves a resumable journal" `Slow
      test_all_workers_dead_is_resumable;
  ]
