(* Tests for the domain-parallel sweep runner: order/identity of the
   deterministic merge, map_until prefix semantics, exception
   propagation, metrics determinism across [jobs], and the -j1 vs -j4
   determinism regression over a real experiment and a real
   model-checking sweep. *)

module M = Obs.Metrics
module Pool = Exec.Pool

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let ilist = Alcotest.(list int)

(* -- merge identity ---------------------------------------------------- *)

let test_map_order () =
  let serial = Pool.map (Pool.create ()) ~f:(fun i -> i * i) 17 in
  checki "serial length" 17 (List.length serial);
  List.iter
    (fun jobs ->
      let par = Pool.map (Pool.create ~jobs ()) ~f:(fun i -> i * i) 17 in
      Alcotest.check ilist
        (Printf.sprintf "jobs=%d merges in unit order" jobs)
        serial par)
    [ 2; 3; 4; 8 ];
  Alcotest.check ilist "empty input" []
    (Pool.map (Pool.create ~jobs:4 ()) ~f:(fun i -> i) 0)

let test_map_list () =
  let xs = [ "a"; "bb"; "ccc"; "dddd"; "eeeee" ] in
  Alcotest.check ilist "map_list keeps element order"
    (List.map String.length xs)
    (Pool.map_list (Pool.create ~jobs:3 ()) ~f:String.length xs)

let test_jobs_clamped () =
  checki "0 clamps to 1" 1 (Pool.jobs (Pool.create ~jobs:0 ()));
  checki "negative clamps to 1" 1 (Pool.jobs (Pool.create ~jobs:(-7) ()));
  checki "huge clamps to 64" 64 (Pool.jobs (Pool.create ~jobs:1000 ()))

(* -- work-stealing deque ----------------------------------------------- *)

let deque_drain d =
  let rec go acc =
    match Exec.Deque.pop d with Some i -> go (i :: acc) | None -> List.rev acc
  in
  go []

let test_deque_pop_order () =
  let d = Exec.Deque.create ~capacity:8 in
  Exec.Deque.seed d [| 1; 4; 7; 10 |];
  checki "size after seed" 4 (Exec.Deque.size d);
  Alcotest.check ilist "pops in seeded (ascending) order" [ 1; 4; 7; 10 ]
    (deque_drain d);
  checkb "empty pops None" true (Exec.Deque.pop d = None);
  checki "empty size" 0 (Exec.Deque.size d)

let test_deque_steal_half () =
  let v = Exec.Deque.create ~capacity:8 and t = Exec.Deque.create ~capacity:8 in
  Exec.Deque.seed v [| 0; 2; 4; 6; 8 |];
  (* ceiling half of 5 = 3, taken from the high-index tail *)
  checki "moves ceil(5/2)=3" 3 (Exec.Deque.steal_half ~victim:v ~into:t);
  Alcotest.check ilist "victim keeps its low-index head" [ 0; 2 ]
    (deque_drain v);
  Alcotest.check ilist "thief got the tail, still ascending" [ 4; 6; 8 ]
    (deque_drain t);
  checki "stealing from empty moves nothing" 0
    (Exec.Deque.steal_half ~victim:v ~into:t)

let test_deque_steal_partition () =
  (* Repeated raids between two deques never duplicate or drop a unit,
     and the thief's append always fits (capacity = total population,
     exercised via the compaction path after interleaved pops). *)
  let v = Exec.Deque.create ~capacity:12 and t = Exec.Deque.create ~capacity:12 in
  Exec.Deque.seed v (Array.init 12 (fun i -> i));
  let got = ref [] in
  let take d = match Exec.Deque.pop d with
    | Some i -> got := i :: !got
    | None -> ()
  in
  take v;
  ignore (Exec.Deque.steal_half ~victim:v ~into:t);
  take t;
  take v;
  ignore (Exec.Deque.steal_half ~victim:t ~into:v);
  let rest = deque_drain v @ deque_drain t in
  let all = List.sort Int.compare (!got @ rest) in
  Alcotest.check ilist "raids partition the population exactly"
    (List.init 12 Fun.id) all

(* -- map_until prefix semantics ---------------------------------------- *)

let test_map_until_prefix () =
  (* The first stopping unit is index 5: every jobs must return exactly
     the serial prefix [0..5], whatever got computed speculatively. *)
  List.iter
    (fun jobs ->
      let got =
        Pool.map_until
          (Pool.create ~jobs ())
          ~stop:(fun r -> r >= 50)
          ~f:(fun i -> i * 10)
          20
      in
      Alcotest.check ilist
        (Printf.sprintf "jobs=%d stops at first hit" jobs)
        [ 0; 10; 20; 30; 40; 50 ]
        got)
    [ 1; 2; 4; 8 ];
  List.iter
    (fun jobs ->
      let got =
        Pool.map_until
          (Pool.create ~jobs ())
          ~stop:(fun _ -> false)
          ~f:(fun i -> i)
          7
      in
      Alcotest.check ilist
        (Printf.sprintf "jobs=%d no hit returns everything" jobs)
        [ 0; 1; 2; 3; 4; 5; 6 ] got)
    [ 1; 4 ]

exception Unit_failed of int

let test_exception_lowest_index () =
  (* Several units raise; the caller must see the lowest-index failure,
     as a serial left-to-right run would. *)
  List.iter
    (fun jobs ->
      let raised =
        try
          ignore
            (Pool.map
               (Pool.create ~jobs ())
               ~f:(fun i -> if i >= 3 then raise (Unit_failed i) else i)
               12);
          None
        with Unit_failed i -> Some i
      in
      checkb
        (Printf.sprintf "jobs=%d re-raises lowest failing unit" jobs)
        true
        (raised = Some 3))
    [ 1; 2; 4 ]

let test_starved_stripe_rescued () =
  (* Pathological distribution: every slow unit lands in worker 0's
     [i mod jobs] seed stripe. Without stealing the sweep serializes
     behind worker 0; with steal-half the idle workers drain its deque.
     Each unit records exactly one execution, results stay the serial
     merge, and at least one unit must have been executed off its home
     stripe. *)
  M.reset ();
  let n = 16 and jobs = 4 in
  let ran = Array.init n (fun _ -> Atomic.make 0) in
  let out =
    Pool.map
      (Pool.create ~jobs ())
      ~f:(fun i ->
        Atomic.incr ran.(i);
        if i mod jobs = 0 then Unix.sleepf 0.08;
        i * 3)
      n
  in
  Alcotest.check ilist "merge is the serial result"
    (List.init n (fun i -> i * 3))
    out;
  Array.iteri
    (fun i a ->
      checki (Printf.sprintf "unit %d executed exactly once" i) 1
        (Atomic.get a))
    ran;
  let s = M.snapshot () in
  let total name =
    List.fold_left
      (fun acc w ->
        acc
        +. Option.value ~default:0.0
             (M.find_gauge s
                (Printf.sprintf "exec.pool.worker.%s{worker=%d}" name w)))
      0.0
      (List.init jobs Fun.id)
  in
  checki "all units claimed" n (int_of_float (total "units"));
  checkb "starved stripe was stolen from" true (total "steals" >= 1.0);
  checkb "steal batches recorded" true (total "steal_batches" >= 1.0)

(* -- metrics determinism ----------------------------------------------- *)

let strip_exec (s : M.snapshot) =
  let keep (name, _) =
    not (String.length name >= 5 && String.sub name 0 5 = "exec.")
  in
  {
    M.counters = List.filter keep s.M.counters;
    gauges = List.filter keep s.M.gauges;
    histograms = List.filter keep s.M.histograms;
  }

let run_metric_units ~jobs =
  M.reset ();
  ignore
    (Pool.map
       (Pool.create ~jobs ())
       ~f:(fun i ->
         M.incr ~by:(i + 1) (M.counter "test.exec.work");
         M.observe_int (M.histogram "test.exec.latency") (1 + (i mod 7));
         M.set (M.gauge "test.exec.last_seed") (float_of_int i);
         i)
       16);
  strip_exec (M.snapshot ())

let test_metrics_deterministic () =
  let s1 = run_metric_units ~jobs:1 in
  List.iter
    (fun jobs ->
      let sn = run_metric_units ~jobs in
      checkb
        (Printf.sprintf "jobs=%d snapshot equals serial (exec.* stripped)"
           jobs)
        true (sn = s1))
    [ 2; 4 ];
  (* the absorbed totals are the serial totals *)
  checkb "counter total" true
    (M.find_counter s1 "test.exec.work" = Some (16 * 17 / 2));
  checkb "gauge is last unit's (unit order, not completion order)" true
    (M.find_gauge s1 "test.exec.last_seed" = Some 15.0);
  match M.find_histogram s1 "test.exec.latency" with
  | None -> Alcotest.fail "histogram missing"
  | Some v -> checki "all events absorbed" 16 v.M.events

let test_worker_telemetry () =
  M.reset ();
  ignore (Pool.map (Pool.create ~jobs:4 ()) ~f:(fun i -> i) 12);
  let s = M.snapshot () in
  checkb "pool run counted" true (M.find_counter s "exec.pool.runs" = Some 1);
  checkb "unit count recorded" true
    (M.find_counter s "exec.pool.units" = Some 12);
  let claimed =
    List.filter_map
      (fun w -> M.find_gauge s (Printf.sprintf "exec.pool.worker.units{worker=%d}" w))
      [ 0; 1; 2; 3 ]
  in
  checkb "per-worker claims sum to unit count" true
    (int_of_float (List.fold_left ( +. ) 0.0 claimed) = 12)

(* -- determinism regression: a real experiment ------------------------- *)

let render outcome = Format.asprintf "%a" Wfde.Experiments.pp outcome

let test_e1_table_identical () =
  M.reset ();
  let t1 = render (Wfde.Experiments.e1_fig1_set_agreement ~jobs:1 ~seeds:6 ~sizes:[ 2; 3 ] ()) in
  let s1 = strip_exec (M.snapshot ()) in
  M.reset ();
  let t4 = render (Wfde.Experiments.e1_fig1_set_agreement ~jobs:4 ~seeds:6 ~sizes:[ 2; 3 ] ()) in
  let s4 = strip_exec (M.snapshot ()) in
  checks "E1 table byte-identical at -j1 / -j4" t1 t4;
  checkb "E1 metrics snapshot identical (exec.* stripped)" true (s1 = s4)

(* -- determinism regression: a real model-checking sweep --------------- *)

let test_check_identical () =
  M.reset ();
  let c1 = Wfde.Harness.check_exhaustive ~jobs:1 ~procs:3 ~depth:8 Wfde.Scenario.Abd in
  let s1 = strip_exec (M.snapshot ()) in
  M.reset ();
  let c4 = Wfde.Harness.check_exhaustive ~jobs:4 ~procs:3 ~depth:8 Wfde.Scenario.Abd in
  let s4 = strip_exec (M.snapshot ()) in
  checkb "check outcome structurally identical" true (c1 = c4);
  checks "check --json payload byte-identical"
    (Obs.Json.to_string (Wfde.Harness.check_outcome_json c1))
    (Obs.Json.to_string (Wfde.Harness.check_outcome_json c4));
  checkb "check metrics snapshot identical (exec.* stripped)" true (s1 = s4);
  checkb "sweep actually explored" true (c1.Wfde.Harness.executions > 0)

let test_check_json_repeatable () =
  (* Two runs of the same configuration in the same process: the
     optimized checker's buffer reuse (Eset refresh, vector-clock pool,
     trace chunks, fast metric cells) must leave no state behind that
     could change the payload of a later run. *)
  let payload jobs =
    M.reset ();
    Obs.Json.to_string
      (Wfde.Harness.check_outcome_json
         (Wfde.Harness.check_exhaustive ~jobs ~procs:3 ~depth:8
            Wfde.Scenario.Abd))
  in
  checks "check --json identical across two same-config runs" (payload 1)
    (payload 1);
  checks "second run at -j4 still matches" (payload 1) (payload 4);
  (* 8 workers on this machine oversubscribes the cores, so the deques
     drain unevenly and steal-half fires constantly — the merge must
     still come out byte-identical. *)
  checks "oversubscribed -j8 still matches" (payload 1) (payload 8)

(* The deterministic part of the wfde sweep --json document: identical
   structure to the CLI payload with the wall-clock fields — the only
   sanctioned nondeterminism — normalized to zero. *)
let sweep_json_normalized ~jobs ids =
  let outcomes =
    List.map
      (fun id ->
        match Wfde.Experiments.by_id id with
        | None -> Alcotest.failf "unknown experiment %s" id
        | Some f -> (id, f ~jobs ()))
      ids
  in
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String "wfde-sweep/1");
         ("scale", Obs.Json.Int 1);
         ("total_wall_seconds", Obs.Json.Float 0.0);
         ( "experiments",
           Obs.Json.List
             (List.map
                (fun (id, o) ->
                  Obs.Json.Obj
                    [
                      ("id", Obs.Json.String id);
                      ("ok", Obs.Json.Bool o.Wfde.Experiments.ok);
                      ("wall_seconds", Obs.Json.Float 0.0);
                    ])
                outcomes) );
       ])

let test_sweep_json_identical () =
  let ids = [ "e1"; "e2"; "e6" ] in
  let j1 = sweep_json_normalized ~jobs:1 ids in
  let j1' = sweep_json_normalized ~jobs:1 ids in
  let j4 = sweep_json_normalized ~jobs:4 ids in
  checks "sweep JSON identical across two same-seed runs" j1 j1';
  checks "sweep JSON identical at -j1 / -j4" j1 j4

let test_mutant_caught_any_jobs () =
  (* A planted bug must be found — and shrink to the same replayable
     counterexample — whichever worker's unit hits it first. *)
  let outcome_of jobs =
    M.reset ();
    Wfde.Harness.check_exhaustive ~jobs ~procs:3 ~depth:10
      ~mutant:Wfde.Mutant.Abd_skip_write_back Wfde.Scenario.Abd
  in
  let c1 = outcome_of 1 in
  let c4 = outcome_of 4 in
  let c8 = outcome_of 8 in
  checkb "mutant caught at -j1" true (c1.Wfde.Harness.violation <> None);
  checkb "identical violation at -j4" true
    (c1.Wfde.Harness.violation = c4.Wfde.Harness.violation);
  checkb "identical violation at -j8" true
    (c1.Wfde.Harness.violation = c8.Wfde.Harness.violation)

(* -- exported JSONL determinism ---------------------------------------- *)

let test_trace_lines_identical () =
  (* Sharded seeds each build their own world; the traces they export
     must not depend on which domain ran them. *)
  let lines_of ~jobs =
    Pool.map_list
      (Pool.create ~jobs ())
      ~f:(fun seed ->
        let world =
          Wfde.Harness.random_world ~seed ~n_plus_1:3 ~max_faulty:1 ()
        in
        let rng = Kernel.Rng.create seed in
        let upsilon =
          Wfde.Upsilon.make ~rng ~pattern:world.Wfde.Harness.pattern ()
        in
        let proto =
          Wfde.Upsilon_sa.create ~name:"t" ~n_plus_1:3
            ~upsilon:(Wfde.Detector.source upsilon) ()
        in
        let run =
          Kernel.Run.exec ~pattern:world.Wfde.Harness.pattern
            ~policy:world.Wfde.Harness.policy ~horizon:200_000
            ~procs:(fun pid ->
              [ Wfde.Upsilon_sa.proposer proto ~me:pid ~input:(100 + pid) ])
            ()
        in
        String.concat "\n" (Trace_export.to_lines run.Kernel.Run.trace))
      [ 1; 2; 3; 4; 5; 6 ]
  in
  checkb "exported JSONL identical at -j1 / -j4" true
    (lines_of ~jobs:1 = lines_of ~jobs:4)

let suite =
  [
    Alcotest.test_case "map merges in unit order" `Quick test_map_order;
    Alcotest.test_case "map_list keeps order" `Quick test_map_list;
    Alcotest.test_case "jobs clamped to [1,64]" `Quick test_jobs_clamped;
    Alcotest.test_case "deque pops its seed in order" `Quick
      test_deque_pop_order;
    Alcotest.test_case "steal-half takes the high tail" `Quick
      test_deque_steal_half;
    Alcotest.test_case "raids partition, never duplicate" `Quick
      test_deque_steal_partition;
    Alcotest.test_case "starved stripe rescued by stealing" `Quick
      test_starved_stripe_rescued;
    Alcotest.test_case "map_until returns serial prefix" `Quick
      test_map_until_prefix;
    Alcotest.test_case "lowest-index exception wins" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "absorbed metrics deterministic" `Quick
      test_metrics_deterministic;
    Alcotest.test_case "worker telemetry recorded" `Quick
      test_worker_telemetry;
    Alcotest.test_case "E1 table identical at -j1/-j4" `Quick
      test_e1_table_identical;
    Alcotest.test_case "check sweep identical at -j1/-j4" `Slow
      test_check_identical;
    Alcotest.test_case "check --json repeatable in-process" `Slow
      test_check_json_repeatable;
    Alcotest.test_case "sweep JSON identical at -j1/-j4" `Slow
      test_sweep_json_identical;
    Alcotest.test_case "mutant violation identical at -j1/-j4" `Quick
      test_mutant_caught_any_jobs;
    Alcotest.test_case "exported JSONL identical at -j1/-j4" `Quick
      test_trace_lines_identical;
  ]
