(* Tests for the message layer: reliability (every sent message is
   eventually polled by a correct receiver under fair scheduling), FIFO
   per sender-receiver pair, crash semantics (messages to the dead are
   never consumed), and step accounting. *)

open Kernel

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_send_poll_roundtrip () =
  let net = Network.create ~name:"n" ~n_plus_1:2 in
  let got = ref [] in
  let sender () =
    Network.send net ~to_:1 "hello";
    Network.send net ~to_:1 "world"
  in
  let receiver () =
    let rec loop () =
      got := !got @ Network.poll net ~me:1;
      if List.length !got < 2 then loop ()
    in
    loop ()
  in
  let result =
    Run.exec
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:2)
      ~policy:(Policy.round_robin ())
      ~procs:(fun pid -> [ (if pid = 0 then sender else receiver) ])
      ()
  in
  checkb "quiescent" true (result.outcome = Scheduler.Quiescent);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "messages in order with sender" [ (0, "hello"); (0, "world") ] !got

let test_send_and_poll_are_single_steps () =
  let net = Network.create ~name:"n" ~n_plus_1:1 in
  let body () =
    Network.send net ~to_:0 1;
    ignore (Network.poll net ~me:0)
  in
  let result =
    Run.exec
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:1)
      ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ body ])
      ()
  in
  checki "two steps" 2 result.steps

let test_broadcast_reaches_everyone () =
  let n_plus_1 = 4 in
  let net = Network.create ~name:"n" ~n_plus_1 in
  let received = Array.make n_plus_1 false in
  let body pid () =
    if pid = 0 then Network.broadcast net "ping";
    let rec loop () =
      if List.exists (fun (_, m) -> m = "ping") (Network.poll net ~me:pid) then
        received.(pid) <- true
      else loop ()
    in
    loop ()
  in
  let result =
    Run.exec
      ~pattern:(Failure_pattern.no_failures ~n_plus_1)
      ~policy:(Policy.random (Rng.create 3))
      ~horizon:10_000
      ~procs:(fun pid -> [ body pid ])
      ()
  in
  checkb "all received (incl. self)" true (Array.for_all Fun.id received);
  checkb "quiescent" true (result.outcome = Scheduler.Quiescent)

let test_messages_to_crashed_never_consumed () =
  let net = Network.create ~name:"n" ~n_plus_1:2 in
  let pattern = Failure_pattern.make ~n_plus_1:2 ~crashes:[ (1, 0) ] in
  let body pid () = if pid = 0 then Network.send net ~to_:1 "dead letter" in
  let _ =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~procs:(fun pid -> [ body pid ])
      ()
  in
  checki "still queued at the dead mailbox" 1 (Network.pending net 1)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:40
      ~name:"network: fair schedules deliver every message to correct procs"
      small_nat
      (fun seed ->
        let n_plus_1 = 3 in
        let rng = Rng.create (seed + 1) in
        let net = Network.create ~name:"n" ~n_plus_1 in
        let sent_per_receiver = 4 in
        let received = Array.make n_plus_1 0 in
        let body pid () =
          (* everyone sends to everyone, then drains forever *)
          List.iter
            (fun to_ ->
              for i = 1 to sent_per_receiver do
                Network.send net ~to_ ((pid * 100) + i)
              done)
            (Pid.all ~n_plus_1);
          while true do
            received.(pid) <-
              received.(pid) + List.length (Network.poll net ~me:pid)
          done
        in
        let _ =
          Run.exec
            ~pattern:(Failure_pattern.no_failures ~n_plus_1)
            ~policy:(Policy.random rng) ~horizon:20_000
            ~procs:(fun pid -> [ body pid ])
            ()
        in
        Array.for_all (fun c -> c = n_plus_1 * sent_per_receiver) received);
  ]

let suite =
  [
    Alcotest.test_case "send/poll roundtrip, FIFO" `Quick
      test_send_poll_roundtrip;
    Alcotest.test_case "send and poll are single steps" `Quick
      test_send_and_poll_are_single_steps;
    Alcotest.test_case "broadcast reaches everyone" `Quick
      test_broadcast_reaches_everyone;
    Alcotest.test_case "dead letters stay queued" `Quick
      test_messages_to_crashed_never_consumed;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
