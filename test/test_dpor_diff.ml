(* QCheck differential battery over random small shared-memory
   programs: the source-set + wakeup explorer (Dpor), the retired
   sleep-set explorer kept as an oracle (Dpor_sleep), and the unreduced
   enumerator (Explore.naive_prefix). Unconditionally, neither reducer
   may flag a violation the exhaustive enumerator does not, and when
   both reducers find one their reports must match. When the window
   covers the whole program and no crash pattern is in play — the
   regime where reduction completeness is a theorem rather than the
   bounded-window heuristic — all three verdicts must be equal and the
   optimal explorer must never do more work than the sleep-set one. *)

open Kernel
open Check

let checkb = Alcotest.check Alcotest.bool

(* -- program generator ------------------------------------------------- *)

(* A program is per-process straight-line code over two shared
   registers: blind reads, blind writes of small constants, and the
   racy read-increment-write. The property is a forbidden final state
   (a, b) pair; whether it is reachable depends on the interleaving,
   which is exactly what the three explorers must agree on. *)
type op = Read of int | Write of int * int | Incr of int

type world = {
  procs : int;  (** 2 or 3 *)
  code : op list array;  (** per-pid straight-line program *)
  depth : int;  (** 2..6 *)
  crash : (int * int) option;  (** pid, global step time 1..4 *)
  forbidden : int * int;  (** final (a, b) that violates the property *)
}

let op_gen =
  QCheck.Gen.(
    int_bound 5 >>= fun c ->
    match c with
    | 0 | 1 -> int_bound 1 >|= fun o -> Incr o
    | 2 | 3 ->
        pair (int_bound 1) (int_range 1 3) >|= fun (o, v) -> Write (o, v)
    | _ -> int_bound 1 >|= fun o -> Read o)

(* Scheduler steps a program takes: an [Incr] is a read step plus a
   write step, everything else is one step. *)
let steps_of_op = function Incr _ -> 2 | Read _ | Write _ -> 1

let steps_of w =
  Array.fold_left
    (fun acc ops -> acc + List.fold_left (fun a o -> a + steps_of_op o) 0 ops)
    0 w.code

let world_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun procs ->
    array_size (return procs) (list_size (int_range 1 3) op_gen)
    >>= fun code ->
    (* Bias toward windows that cover the whole program: the
       executions_opt <= executions_sleep comparison is a theorem only
       for full-length exploration, so it needs full-window cases to
       bite on. *)
    (let total =
       Array.fold_left
         (fun acc ops ->
           acc + List.fold_left (fun a o -> a + steps_of_op o) 0 ops)
         0 code
     in
     if total <= 6 then oneof [ int_range 2 6; return total ]
     else int_range 2 6)
    >>= fun depth ->
    oneof
      [
        return None;
        (pair (int_bound (procs - 1)) (int_range 1 4) >|= fun c -> Some c);
      ]
    >>= fun crash ->
    pair (int_bound 3) (int_bound 3) >|= fun forbidden ->
    { procs; code; depth; crash; forbidden })

let pp_world w =
  let op = function
    | Read o -> Printf.sprintf "r%c" (Char.chr (Char.code 'a' + o))
    | Write (o, v) -> Printf.sprintf "w%c=%d" (Char.chr (Char.code 'a' + o)) v
    | Incr o -> Printf.sprintf "i%c" (Char.chr (Char.code 'a' + o))
  in
  Printf.sprintf "p%d d%d crash=%s forbid=(%d,%d) [%s]" w.procs w.depth
    (match w.crash with
    | Some (p, t) -> Printf.sprintf "%d@%d" p t
    | None -> "-")
    (fst w.forbidden) (snd w.forbidden)
    (String.concat " | "
       (Array.to_list (Array.map (fun c -> String.concat ";" (List.map op c)) w.code)))

let make_world w () =
  let open Memory in
  let regs = [| Register.create ~name:"a" 0; Register.create ~name:"b" 0 |] in
  let body pid () =
    List.iter
      (fun o ->
        match o with
        | Read o -> ignore (Register.read regs.(o))
        | Write (o, v) -> Register.write regs.(o) v
        | Incr o ->
            let v = Register.read regs.(o) in
            Register.write regs.(o) (v + 1))
      w.code.(pid)
  in
  let check _trace =
    if (Register.peek regs.(0), Register.peek regs.(1)) = w.forbidden then
      Error "forbidden final state"
    else Ok ()
  in
  ((fun pid -> [ body pid ]), check)

let pattern_of w =
  match w.crash with
  | None -> Failure_pattern.no_failures ~n_plus_1:w.procs
  | Some (pid, t) ->
      Failure_pattern.make ~n_plus_1:w.procs
        ~crashes:[ (Pid.of_index pid, t) ]

(* -- the battery ------------------------------------------------------- *)

let qcheck_three_explorers_agree =
  QCheck.Test.make ~count:120
    ~name:"optimal = sleep-set = naive on random small programs"
    (QCheck.make ~print:pp_world world_gen)
    (fun w ->
      let pattern = pattern_of w in
      let opt =
        Dpor.explore ~pattern ~depth:w.depth ~horizon:100
          ~make:(make_world w) ()
      in
      let sleep =
        Dpor_sleep.explore ~pattern ~depth:w.depth ~horizon:100
          ~make:(make_world w) ()
      in
      let naive =
        Explore.naive_prefix ~pattern ~depth:w.depth ~horizon:100
          ~make:(make_world w) ()
      in
      let verdict o = o <> None in
      let v_opt = verdict opt.Dpor.counterexample
      and v_sleep = verdict sleep.Dpor_sleep.counterexample
      and v_naive = verdict naive.Explore.counterexample in
      (* Direction that holds unconditionally: a reduced explorer only
         runs real schedules, so anything it flags the exhaustive
         enumerator must flag too. *)
      if v_opt && not v_naive then
        QCheck.Test.fail_reportf "optimal found a violation naive did not";
      if v_sleep && not v_naive then
        QCheck.Test.fail_reportf "sleep-set found a violation naive did not";
      (match (opt.Dpor.counterexample, sleep.Dpor_sleep.counterexample) with
      | Some (_, r1), Some (_, r2) when r1 <> r2 ->
          QCheck.Test.fail_reportf "violation reports differ: %s vs %s" r1 r2
      | _ -> ());
      (* The strong assertions hold when the window covers the whole
         program. Full-length exploration is theorem territory: every
         Mazurkiewicz class of maximal runs must be visited by both
         reducers (verdicts equal to naive's), and the optimal explorer
         pays at most the sleep-set explorer's bill — sleep-set
         exploration covers the same classes plus its sleep-blocked
         runs. A truncated window voids both: the round-robin tail is a
         function of the window class {e representative} (its rotation
         point), so both reducers fall back on the conservative
         tail-race offer, a heuristic that can miss tail-only
         reorderings — the retired explorer has missed them since its
         introduction — and each may certify a different sufficient
         subset of the reachable classes, so neither execution count
         bounds the other. Crash patterns void them too, window aside:
         a crash fires at a {e global} time, so swapping two
         label-independent steps changes which of a crashing process's
         steps exist at all — the time-sensitivity caveat documented in
         the interface, where both reducers only promise the
         no-false-positive direction. *)
      (if w.crash = None && w.depth >= steps_of w then begin
         if v_opt <> v_naive then
           QCheck.Test.fail_reportf
             "full-window optimal/naive verdicts differ: %b vs %b" v_opt
             v_naive;
         if v_sleep <> v_naive then
           QCheck.Test.fail_reportf
             "full-window sleep/naive verdicts differ: %b vs %b" v_sleep
             v_naive;
         if not v_opt then
           let eo = opt.Dpor.stats.Dpor.executions
           and es = sleep.Dpor_sleep.stats.Dpor_sleep.executions in
           if eo > es then
             QCheck.Test.fail_reportf
               "optimal explorer did more work: %d > %d sleep-set runs" eo es
       end);
      true)

let qcheck_independence_relations_agree =
  (* The battery compares trees, which is only meaningful while the two
     explorers score the same step pairs as racing. *)
  let kind_gen =
    QCheck.Gen.(
      int_bound 4 >|= function
      | 0 -> Sim.Read { obj = "a" }
      | 1 -> Sim.Write { obj = "a" }
      | 2 -> Sim.Read { obj = "b" }
      | 3 -> Sim.Query { detector = "u" }
      | _ -> Sim.Nop)
  in
  QCheck.Test.make ~count:300 ~name:"Dpor and Dpor_sleep independence agree"
    (QCheck.make
       QCheck.Gen.(
         quad (int_bound 3) kind_gen (int_bound 3) kind_gen))
    (fun (p, pk, q, qk) ->
      let p = Pid.of_index p and q = Pid.of_index q in
      Dpor.independent p pk q qk = Dpor_sleep.independent p pk q qk)

(* A battery-generated witness of the bounded-window blind spot, pinned
   so the boundary of the guarantee stays visible: the violating
   interleaving exists only as a reordering deep in the deterministic
   round-robin tail (window 3 of 8 steps), where the tail-race offer of
   BOTH reducers — the retired persistent-set explorer included, since
   its introduction — fails to reach. The naive enumerator finds it. If
   a future change makes the reducers catch this, the pin should move
   with it (and the interface's caveat should shrink). *)
let test_tail_blind_spot () =
  let w =
    {
      procs = 3;
      code = [| [ Incr 0 ]; [ Read 1; Write (1, 3); Write (0, 3) ];
                [ Write (0, 1); Write (1, 3); Read 1 ] |];
      depth = 3;
      crash = None;
      forbidden = (2, 3);
    }
  in
  let pattern = pattern_of w in
  let naive =
    Explore.naive_prefix ~pattern ~depth:w.depth ~horizon:100
      ~make:(make_world w) ()
  in
  checkb "naive finds the tail-only violation" true
    (naive.Explore.counterexample <> None);
  let opt =
    Dpor.explore ~pattern ~depth:w.depth ~horizon:100 ~make:(make_world w) ()
  in
  let sleep =
    Dpor_sleep.explore ~pattern ~depth:w.depth ~horizon:100
      ~make:(make_world w) ()
  in
  checkb "optimal explorer shares the documented blind spot" false
    (opt.Dpor.counterexample <> None);
  checkb "sleep-set explorer shares the documented blind spot" false
    (sleep.Dpor_sleep.counterexample <> None)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_three_explorers_agree;
    QCheck_alcotest.to_alcotest qcheck_independence_relations_agree;
    Alcotest.test_case "bounded-window tail blind spot is pinned" `Quick
      test_tail_blind_spot;
  ]
