(* Tests for the telemetry layer: metrics-registry semantics (counters,
   gauges, histograms, snapshot/reset), the hand-rolled JSON printer and
   parser, and the JSONL trace export — including the round-trip law
   [of_lines (to_lines t) = Ok t] and the replay guarantee that an
   exported schedule reproduces the original run. *)

open Kernel
module M = Obs.Metrics
module J = Obs.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* -- counters --------------------------------------------------------- *)

let test_counter () =
  M.reset ();
  let c = M.counter "test.obs.counter" in
  checki "initially zero" 0 (M.counter_value c);
  M.incr c;
  M.incr ~by:40 c;
  (* registration is idempotent: the same handle comes back *)
  M.incr (M.counter "test.obs.counter");
  checki "accumulated" 42 (M.counter_value c);
  checkb "snapshot sees it" true
    (M.find_counter (M.snapshot ()) "test.obs.counter" = Some 42)

let test_gauge_unset_until_set () =
  M.reset ();
  let g = M.gauge "test.obs.gauge" in
  checkb "unset gauge hidden from snapshot" true
    (M.find_gauge (M.snapshot ()) "test.obs.gauge" = None);
  M.set g 2.5;
  checkb "set gauge visible" true
    (M.find_gauge (M.snapshot ()) "test.obs.gauge" = Some 2.5);
  checkf "last write wins" 2.5 (M.gauge_value g)

let test_histogram_buckets () =
  M.reset ();
  let h = M.histogram ~buckets:[| 1.0; 10.0 |] "test.obs.hist" in
  M.observe h 0.5;
  (* on the bound counts in that bucket *)
  M.observe_int h 10;
  M.observe h 11.0;
  match M.find_histogram (M.snapshot ()) "test.obs.hist" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some v ->
      checkb "bucket counts" true (v.M.buckets = [ (1.0, 1); (10.0, 1) ]);
      checki "overflow" 1 v.M.overflow;
      checki "events" 3 v.M.events;
      checkf "sum" 21.5 v.M.sum;
      checkf "mean" (21.5 /. 3.0) (M.hist_mean v)

let test_reset_keeps_handles () =
  M.reset ();
  let c = M.counter "test.obs.reset" in
  let g = M.gauge "test.obs.reset_gauge" in
  let h = M.histogram "test.obs.reset_hist" in
  M.incr ~by:7 c;
  M.set g 1.0;
  M.observe h 3.0;
  M.reset ();
  checki "counter zeroed in place" 0 (M.counter_value c);
  checkb "gauge back to unset" true
    (M.find_gauge (M.snapshot ()) "test.obs.reset_gauge" = None);
  (match M.find_histogram (M.snapshot ()) "test.obs.reset_hist" with
  | Some v -> checki "histogram emptied" 0 v.M.events
  | None -> Alcotest.fail "histogram dropped by reset");
  (* the old handle still feeds the same registry entry *)
  M.incr c;
  checkb "post-reset increment lands" true
    (M.find_counter (M.snapshot ()) "test.obs.reset" = Some 1)

let test_type_clash_rejected () =
  M.reset ();
  ignore (M.counter "test.obs.clash");
  checkb "gauge on a counter name raises" true
    (try
       ignore (M.gauge "test.obs.clash");
       false
     with Invalid_argument _ -> true);
  checkb "histogram on a counter name raises" true
    (try
       ignore (M.histogram "test.obs.clash");
       false
     with Invalid_argument _ -> true)

(* -- json ------------------------------------------------------------- *)

let test_json_round_trip () =
  let doc =
    J.Obj
      [
        ("s", J.String "quote \" backslash \\ newline \n tab \t");
        ("i", J.Int (-42));
        ("f", J.Float 0.125);
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.String "{p1, p3}"; J.Obj [] ]);
      ]
  in
  checkb "print/parse round-trips" true (J.of_string (J.to_string doc) = Ok doc)

let test_json_parser () =
  (match J.of_string {|{"a": [1, 2.5, "A\n"], "b": {"c": null}}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
      checkb "int member" true
        (Option.bind (J.member "a" j) (fun l ->
             match l with J.List (x :: _) -> J.to_int x | _ -> None)
        = Some 1);
      checkb "unicode escape decoded" true
        (match J.member "a" j with
        | Some (J.List [ _; _; J.String s ]) -> s = "A\n"
        | _ -> false);
      checkb "nested null" true
        (Option.bind (J.member "b" j) (J.member "c") = Some J.Null));
  checkb "trailing garbage rejected" true
    (Result.is_error (J.of_string "{} extra"));
  checkb "unterminated string rejected" true
    (Result.is_error (J.of_string {|{"a": "oops}|}));
  checkb "non-finite floats print as null" true
    (J.to_string (J.Float Float.nan) = "null"
    && J.to_string (J.Float Float.infinity) = "null")

(* -- trace export ----------------------------------------------------- *)

let tricky_string =
  QCheck.Gen.(
    oneof
      [
        small_string ~gen:printable;
        oneofl
          [
            "";
            "a\"b";
            "back\\slash";
            "new\nline";
            "tab\there";
            "caf\xc3\xa9";
            "{p1, p3}";
            "t.cv.k2/main.r1.a1[0]";
          ];
      ])

let event_gen =
  QCheck.Gen.(
    let pid = map Pid.of_index (int_bound 7) in
    let time = int_bound 100_000 in
    let kind =
      oneof
        [
          map (fun obj -> Sim.Read { obj }) tricky_string;
          map (fun obj -> Sim.Write { obj }) tricky_string;
          map (fun detector -> Sim.Query { detector }) tricky_string;
          map2 (fun label value -> Sim.Output { label; value }) tricky_string
            tricky_string;
          map2 (fun label value -> Sim.Input { label; value }) tricky_string
            tricky_string;
          return Sim.Nop;
        ]
    in
    frequency
      [
        (1, map2 (fun pid time -> Trace.Crash { pid; time }) pid time);
        ( 6,
          pid >>= fun pid ->
          time >>= fun time ->
          kind >>= fun kind ->
          opt tricky_string >>= fun note ->
          return (Trace.Step { pid; time; kind; note }) );
      ])

let trace_arb =
  QCheck.make
    ~print:(fun t -> String.concat "\n" (Trace_export.to_lines t))
    QCheck.Gen.(list_size (int_bound 40) event_gen)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:200 ~name:"trace JSONL round-trips" trace_arb (fun t ->
        Trace_export.of_lines (Trace_export.to_lines t) = Ok t);
    Test.make ~count:200 ~name:"json string literals round-trip" string
      (fun s ->
        J.of_string (J.to_string (J.String s)) = Ok (J.String s));
  ]

let test_of_lines_reports_bad_line () =
  match Trace_export.of_lines [ {|{"time":1,"pid":0,"kind":"nop"}|}; "{oops" ]
  with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error msg ->
      checkb "error names the line" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")

let test_save_load_file () =
  let path = Filename.temp_file "wfde_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let trace =
        [
          Trace.Step
            {
              pid = Pid.of_index 0;
              time = 3;
              kind = Sim.Query { detector = "upsilon" };
              note = Some "{p1}";
            };
          Trace.Crash { pid = Pid.of_index 2; time = 9 };
        ]
      in
      Trace_export.save_file path trace;
      checkb "file round-trips" true (Trace_export.load_file path = Ok trace))

(* A full end-to-end replay: run Fig 1 under a random policy, export the
   trace, reload it, drive a fresh identical world with the loaded
   schedule — the replay must reproduce the trace (and so the
   decisions) exactly. *)

let fig1_run ~seed ~policy =
  let world = Wfde.Harness.random_world ~seed ~n_plus_1:3 ~max_faulty:2 () in
  let rng = Rng.create seed in
  let upsilon = Wfde.Upsilon.make ~rng ~pattern:world.Wfde.Harness.pattern () in
  let proto =
    Wfde.Upsilon_sa.create ~name:"t" ~n_plus_1:3
      ~upsilon:(Wfde.Detector.source upsilon) ()
  in
  Run.exec ~pattern:world.Wfde.Harness.pattern
    ~policy:(policy world)
    ~horizon:500_000
    ~procs:(fun pid ->
      [ Wfde.Upsilon_sa.proposer proto ~me:pid ~input:(100 + pid) ])
    ()

let test_exported_schedule_replays () =
  for seed = 1 to 5 do
    let original = fig1_run ~seed ~policy:(fun w -> w.Wfde.Harness.policy) in
    let loaded =
      match Trace_export.of_lines (Trace_export.to_lines original.Run.trace)
      with
      | Ok t -> t
      | Error e -> Alcotest.failf "seed %d: reload failed: %s" seed e
    in
    checkb "reload is exact" true (loaded = original.Run.trace);
    let replay =
      fig1_run ~seed ~policy:(fun _ ->
          Policy.script (Trace.schedule loaded)
            ~then_:(Policy.custom (fun ~now:_ ~enabled:_ -> None)))
    in
    checks
      (Printf.sprintf "seed %d replay reproduces the run" seed)
      (Format.asprintf "%a" Trace.pp original.Run.trace)
      (Format.asprintf "%a" Trace.pp replay.Run.trace);
    checkb "same decisions" true
      (Trace.outputs ~label:"decide" replay.Run.trace
      = Trace.outputs ~label:"decide" original.Run.trace)
  done

(* -- log buckets / quantiles ------------------------------------------ *)

let test_log_buckets () =
  checkb "1-2-5 series over the decades" true
    (M.log_buckets ~lo:1. ~hi:1000. ()
    = [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]);
  let default = M.log_buckets () in
  checkb "defaults span 1ms..60s style ranges" true
    (Array.length default > 10
    && default.(0) = 0.001
    && default.(Array.length default - 1) <= 60_000.);
  let clipped = M.log_buckets ~lo:3. ~hi:40. () in
  checkb "clipping keeps only in-range bounds" true
    (clipped = [| 5.; 10.; 20. |]);
  checkb "monotone" true
    (let ok = ref true in
     Array.iteri
       (fun i b -> if i > 0 then ok := !ok && b > default.(i - 1))
       default;
     !ok);
  checkb "bad range rejected" true
    (try
       ignore (M.log_buckets ~lo:5. ~hi:1. ());
       false
     with Invalid_argument _ -> true)

let test_hist_quantile () =
  let hv =
    { M.buckets = [ (1., 2); (10., 6); (100., 2) ]; overflow = 0; sum = 0.; events = 10 }
  in
  checkb "median interpolates inside its bucket" true
    (M.hist_quantile hv 0.5 = Some 5.5);
  checkb "q0 clamps to rank 1" true (M.hist_quantile hv 0. = Some 0.5);
  checkb "q1 is the top of the last bucket" true
    (M.hist_quantile hv 1. = Some 100.);
  checkb "out-of-range q clamps" true
    (M.hist_quantile hv 2. = M.hist_quantile hv 1.);
  let empty = { M.buckets = [ (1., 0) ]; overflow = 0; sum = 0.; events = 0 } in
  checkb "empty is None" true (M.hist_quantile empty 0.5 = None);
  let over = { M.buckets = [ (1., 1) ]; overflow = 3; sum = 0.; events = 4 } in
  checkb "overflow resolves to the largest finite bound" true
    (M.hist_quantile over 0.99 = Some 1.)

(* -- prometheus exposition --------------------------------------------- *)

let test_prom_render () =
  let snap =
    {
      M.counters =
        [
          ("serve.requests{method=run}", 3);
          ("serve.requests{method=sweep}", 1);
          ("simple.count", 2);
        ];
      gauges = [ ("serve.in_flight", 2.) ];
      histograms =
        [
          ( "serve.latency_ms{method=run}",
            { M.buckets = [ (1., 1); (5., 2) ]; overflow = 1; sum = 12.5; events = 4 }
          );
        ];
    }
  in
  checks "exposition text"
    ("# TYPE wfde_serve_in_flight gauge\n\
      wfde_serve_in_flight 2\n\
      # TYPE wfde_serve_latency_ms histogram\n\
      wfde_serve_latency_ms_bucket{method=\"run\",le=\"1\"} 1\n\
      wfde_serve_latency_ms_bucket{method=\"run\",le=\"5\"} 3\n\
      wfde_serve_latency_ms_bucket{method=\"run\",le=\"+Inf\"} 4\n\
      wfde_serve_latency_ms_sum{method=\"run\"} 12.5\n\
      wfde_serve_latency_ms_count{method=\"run\"} 4\n\
      # TYPE wfde_serve_requests counter\n\
      wfde_serve_requests{method=\"run\"} 3\n\
      wfde_serve_requests{method=\"sweep\"} 1\n\
      # TYPE wfde_simple_count counter\n\
      wfde_simple_count 2\n")
    (Obs.Prom.render snap);
  checks "content type" "text/plain; version=0.0.4" Obs.Prom.content_type

let test_prom_live_registry () =
  (* render a real snapshot: a histogram built on log buckets must come
     out with cumulative monotone bucket counts and +Inf = _count *)
  M.reset ();
  let h =
    M.histogram ~buckets:(M.log_buckets ~lo:1. ~hi:100. ()) "test.prom.lat"
  in
  List.iter (M.observe h) [ 0.5; 3.; 42.; 800. ];
  let text = Obs.Prom.render (M.snapshot ()) in
  let lines = String.split_on_char '\n' text in
  let bucket_counts =
    List.filter_map
      (fun l ->
        if String.length l > 24 && String.sub l 0 24 = "wfde_test_prom_lat_bucke" then
          String.rindex_opt l ' '
          |> Option.map (fun i ->
                 int_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      lines
  in
  checkb "has buckets" true (bucket_counts <> []);
  checkb "cumulative monotone" true
    (let ok = ref true and prev = ref 0 in
     List.iter
       (fun c ->
         if c < !prev then ok := false;
         prev := c)
       bucket_counts;
     !ok);
  checki "+Inf equals event count" 4
    (List.nth bucket_counts (List.length bucket_counts - 1))

(* -- fast-path cells --------------------------------------------------- *)

let test_fast_absorb_idempotent () =
  (* absorb moves the buffered amount into the registry and zeroes the
     buffer, so a second (or defensive extra) absorb adds nothing — the
     scheduler relies on this to flush at every stop point without
     double-counting. *)
  M.reset ();
  let f = M.Fast.counter "test.obs.fast" in
  M.Fast.incr f;
  M.Fast.incr ~by:9 f;
  M.Fast.absorb_counter f;
  M.Fast.absorb_counter f;
  checkb "double absorb adds nothing" true
    (M.find_counter (M.snapshot ()) "test.obs.fast" = Some 10);
  M.Fast.incr ~by:5 f;
  M.Fast.absorb_counter f;
  M.Fast.absorb_counter f;
  checkb "buffer usable after absorb" true
    (M.find_counter (M.snapshot ()) "test.obs.fast" = Some 15);
  let h = M.Fast.histogram ~buckets:[| 2.0; 8.0 |] "test.obs.fast_hist" in
  M.Fast.observe_int h 1;
  M.Fast.observe_int h 5;
  M.Fast.observe_int h 100;
  M.Fast.absorb_histogram h;
  M.Fast.absorb_histogram h;
  match M.find_histogram (M.snapshot ()) "test.obs.fast_hist" with
  | None -> Alcotest.fail "fast histogram missing"
  | Some v ->
      checki "events absorbed once" 3 v.M.events;
      checkb "buckets absorbed once" true (v.M.buckets = [ (2.0, 1); (8.0, 1) ]);
      checki "overflow absorbed once" 1 v.M.overflow;
      checkf "sum exact" 106.0 v.M.sum

let test_fast_matches_slow_under_pool () =
  (* Identical workload through the buffered fast path and the direct
     slow path, each sharded over Exec.Pool workers: absorbed totals
     must agree exactly, at every jobs. *)
  let units = 16 in
  let work incr observe u =
    for i = 1 to 5 do
      incr ((u * 5) + i);
      observe (1 + ((u + i) mod 7))
    done
  in
  let snapshot_of ~jobs ~fast =
    M.reset ();
    ignore
      (Exec.Pool.map
         (Exec.Pool.create ~jobs ())
         ~f:(fun u ->
           if fast then begin
             let c = M.Fast.counter "test.obs.path.work" in
             let h = M.Fast.histogram "test.obs.path.lat" in
             work
               (fun by -> M.Fast.incr ~by c)
               (M.Fast.observe_int h) u;
             M.Fast.absorb_counter c;
             M.Fast.absorb_histogram h
           end
           else begin
             let c = M.counter "test.obs.path.work" in
             let h = M.histogram "test.obs.path.lat" in
             work (fun by -> M.incr ~by c) (M.observe_int h) u
           end;
           u)
         units);
    let s = M.snapshot () in
    (M.find_counter s "test.obs.path.work",
     M.find_histogram s "test.obs.path.lat")
  in
  let reference = snapshot_of ~jobs:1 ~fast:false in
  List.iter
    (fun jobs ->
      checkb
        (Printf.sprintf "fast path total matches slow path at jobs=%d" jobs)
        true
        (snapshot_of ~jobs ~fast:true = reference))
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "gauge unset until set" `Quick test_gauge_unset_until_set;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
    Alcotest.test_case "type clash rejected" `Quick test_type_clash_rejected;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "of_lines error position" `Quick
      test_of_lines_reports_bad_line;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
    Alcotest.test_case "exported schedule replays" `Quick
      test_exported_schedule_replays;
    Alcotest.test_case "log buckets (1-2-5 series)" `Quick test_log_buckets;
    Alcotest.test_case "histogram quantiles" `Quick test_hist_quantile;
    Alcotest.test_case "prometheus exposition" `Quick test_prom_render;
    Alcotest.test_case "prometheus from a live registry" `Quick
      test_prom_live_registry;
    Alcotest.test_case "fast-path absorb idempotent" `Quick
      test_fast_absorb_idempotent;
    Alcotest.test_case "fast path matches slow path under pool" `Quick
      test_fast_matches_slow_under_pool;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
