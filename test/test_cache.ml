(* Tests for the content-addressed result cache: key canonicalization
   (QCheck battery — reorder invariance, jobs normalization, wire
   round-trip stability, distinct configs get distinct keys), LRU
   eviction order, single-flight coalescing, and the on-disk store
   (atomic write, restart hit, corrupt/truncated fallback, clear). *)

module J = Obs.Json
module C = Serve.Cache

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let eventually = Testutil.eventually
let temp_dir () = Testutil.temp_dir ~prefix:"wfde_cache_test" ()
let rm_rf = Testutil.rm_rf

(* Lead a key through the miss path and publish a payload for it. *)
let store t key payload =
  match C.lookup t ~key with
  | C.Compute ticket -> C.resolve t ticket (Ok payload)
  | _ -> Alcotest.failf "expected a computable miss for %s" key

let expect_hit t key expected =
  match C.lookup t ~key with
  | C.Hit p -> checks ("hit " ^ key) expected p
  | _ -> Alcotest.failf "expected a memory hit for %s" key

(* Assert a miss, then resolve the resulting ticket with an error so
   the in-flight slot is released without caching anything. *)
let expect_miss t key =
  match C.lookup t ~key with
  | C.Compute ticket ->
      C.resolve t ticket (Error (Serve.Proto.err Internal "test cleanup"))
  | _ -> Alcotest.failf "expected a miss for %s" key

(* -- keys -------------------------------------------------------------- *)

let test_key_shape () =
  let params = [ ("object", J.String "register"); ("depth", J.Int 3) ] in
  let k = C.key ~meth:"check" ~params in
  checki "32 chars" 32 (String.length k);
  checkb "lowercase hex" true
    (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) k);
  (* the documented construction, verbatim *)
  checks "md5 of fingerprint + canonical" k
    (Digest.to_hex
       (Digest.string (C.fingerprint ^ "\n" ^ C.canonical ~meth:"check" ~params)));
  (* the fingerprint pins the wire schema so a schema bump invalidates *)
  checkb "fingerprint names the wire schema" true
    (let fp = C.fingerprint and s = Serve.Proto.schema in
     let n = String.length s and h = String.length fp in
     let rec go i = i + n <= h && (String.sub fp i n = s || go (i + 1)) in
     go 0)

let test_cacheable () =
  List.iter
    (fun m -> checkb (m ^ " cacheable") true (C.cacheable m))
    [ "run"; "check"; "sweep" ];
  List.iter
    (fun m -> checkb (m ^ " not cacheable") false (C.cacheable m))
    [ "sleep"; "health"; "metrics"; "cache"; "frob"; "" ]

let test_canonical_examples () =
  checks "keys sorted"
    {|check?{"depth":3,"horizon":60}|}
    (C.canonical ~meth:"check"
       ~params:[ ("horizon", J.Int 60); ("depth", J.Int 3) ]);
  checks "jobs dropped for check"
    {|check?{"depth":3}|}
    (C.canonical ~meth:"check"
       ~params:[ ("jobs", J.Int 4); ("depth", J.Int 3) ]);
  checks "jobs dropped for run"
    {|run?{"scale":2}|}
    (C.canonical ~meth:"run"
       ~params:[ ("scale", J.Int 2); ("jobs", J.Int 8) ]);
  checks "sweep keeps jobs"
    {|sweep?{"jobs":2,"scale":1}|}
    (C.canonical ~meth:"sweep"
       ~params:[ ("scale", J.Int 1); ("jobs", J.Int 2) ]);
  checks "duplicate keys reduce to the first binding"
    {|run?{"scale":2}|}
    (C.canonical ~meth:"run"
       ~params:[ ("scale", J.Int 2); ("scale", J.Int 9) ]);
  checks "nested objects sorted too"
    {|run?{"a":{"b":2,"z":1}}|}
    (C.canonical ~meth:"run"
       ~params:[ ("a", J.Obj [ ("z", J.Int 1); ("b", J.Int 2) ]) ])

(* -- LRU --------------------------------------------------------------- *)

let test_lru_eviction_order () =
  let t = C.create ~config:{ C.capacity = 2; dir = None } () in
  store t "k1" "v1";
  store t "k2" "v2";
  store t "k3" "v3";
  (* capacity 2: the oldest entry fell off the tail *)
  expect_miss t "k1";
  expect_hit t "k2" "v2";
  expect_hit t "k3" "v3";
  let s = C.stats t in
  checki "one eviction" 1 s.C.evictions;
  checki "two entries" 2 s.C.entries;
  checki "bytes tracked" 4 s.C.bytes

let test_lru_touch_order () =
  let t = C.create ~config:{ C.capacity = 2; dir = None } () in
  store t "k1" "v1";
  store t "k2" "v2";
  (* touching k1 moves it to the front, so k2 is now next to evict *)
  expect_hit t "k1" "v1";
  store t "k3" "v3";
  expect_miss t "k2";
  expect_hit t "k1" "v1";
  expect_hit t "k3" "v3";
  checki "one eviction" 1 (C.stats t).C.evictions

(* -- single flight ----------------------------------------------------- *)

let test_single_flight () =
  let t = C.create () in
  let k = C.key ~meth:"check" ~params:[ ("depth", J.Int 3) ] in
  let ticket =
    match C.lookup t ~key:k with
    | C.Compute ticket -> ticket
    | _ -> Alcotest.fail "leader must miss"
  in
  let results = Array.make 3 "" in
  let threads =
    Array.init 3 (fun i ->
        Thread.create
          (fun i ->
            match C.lookup t ~key:k with
            | C.Wait iv -> (
                match Serve.Ivar.read iv with
                | Ok p -> results.(i) <- p
                | Error _ -> ())
            | _ -> ())
          i)
  in
  (* all three followers must be parked on the leader's ivar before the
     leader publishes — sequenced on the cache's own counter *)
  eventually "three coalesced waiters" (fun () -> (C.stats t).C.coalesced = 3);
  C.resolve t ticket (Ok "the-bytes");
  Array.iter Thread.join threads;
  Array.iteri
    (fun i p -> checks (Printf.sprintf "waiter %d 's bytes" i) "the-bytes" p)
    results;
  let s = C.stats t in
  checki "exactly one miss" 1 s.C.misses;
  checki "exactly one store" 1 s.C.stores;
  checki "three coalesced" 3 s.C.coalesced;
  expect_hit t k "the-bytes"

let test_error_resolve_not_cached () =
  let t = C.create () in
  let k = C.key ~meth:"run" ~params:[] in
  let ticket =
    match C.lookup t ~key:k with
    | C.Compute ticket -> ticket
    | _ -> Alcotest.fail "leader must miss"
  in
  let got = ref "" in
  let waiter =
    Thread.create
      (fun () ->
        match C.lookup t ~key:k with
        | C.Wait iv -> (
            match Serve.Ivar.read iv with
            | Error e -> got := Serve.Proto.code_to_string e.Serve.Proto.code
            | Ok _ -> got := "unexpected ok")
        | _ -> got := "no wait")
      ()
  in
  eventually "waiter coalesced" (fun () -> (C.stats t).C.coalesced = 1);
  C.resolve t ticket (Error (Serve.Proto.err Internal "boom"));
  Thread.join waiter;
  checks "waiter woke with the error" "internal" !got;
  checki "nothing stored" 0 (C.stats t).C.entries;
  (* the slot is clear: the next lookup is a fresh computable miss *)
  expect_miss t k

let test_disabled_cache () =
  let t = C.create ~config:C.disabled () in
  checkb "disabled" true (not (C.enabled t));
  let k = C.key ~meth:"check" ~params:[] in
  (* every lookup computes; concurrent identical misses do not coalesce *)
  let t1 =
    match C.lookup t ~key:k with
    | C.Compute ticket -> ticket
    | _ -> Alcotest.fail "disabled lookup must compute"
  in
  (match C.lookup t ~key:k with
  | C.Compute _ -> ()
  | _ -> Alcotest.fail "disabled lookups never coalesce");
  C.resolve t t1 (Ok "x");
  (match C.lookup t ~key:k with
  | C.Compute _ -> ()
  | _ -> Alcotest.fail "disabled resolve must store nothing");
  let s = C.stats t in
  checki "no entries" 0 s.C.entries;
  checki "no stores" 0 s.C.stores;
  checki "no counters" 0 (s.C.hits + s.C.misses + s.C.coalesced)

(* -- disk store -------------------------------------------------------- *)

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> not (Sys.is_directory (Filename.concat dir f)))

let test_disk_roundtrip_and_restart () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { C.capacity = 8; dir = Some dir } in
  let a = C.create ~config:cfg () in
  let k = C.key ~meth:"check" ~params:[ ("depth", J.Int 3) ] in
  store a k "payload-bytes";
  (* the write was atomic: one file, named by the key, no temp litter *)
  (match entry_files dir with
  | [ f ] -> checks "file named by key" k f
  | fs -> Alcotest.failf "expected one entry file, found %d" (List.length fs));
  (* a fresh cache over the same dir — "the daemon restarted" — serves
     the same bytes from disk and promotes them into memory *)
  let b = C.create ~config:cfg () in
  (match C.lookup b ~key:k with
  | C.Disk_hit p -> checks "disk payload" "payload-bytes" p
  | _ -> Alcotest.fail "expected a disk hit after restart");
  checki "disk hit counted" 1 (C.stats b).C.disk_hits;
  expect_hit b k "payload-bytes";
  checki "promoted entry" 1 (C.stats b).C.entries

let test_disk_corrupt_and_truncated () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { C.capacity = 8; dir = Some dir } in
  let k = C.key ~meth:"check" ~params:[ ("depth", J.Int 4) ] in
  let path = Filename.concat dir k in
  let corrupt_with bytes =
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc;
    (* a fresh cache must treat the damaged file as a miss, count the
       disk error, and unlink the file so it is not re-read *)
    let b = C.create ~config:cfg () in
    expect_miss b k;
    checki "disk error counted" 1 (C.stats b).C.disk_errors;
    checkb "damaged file unlinked" true (not (Sys.file_exists path))
  in
  (* truncated: valid header, payload cut short *)
  let whole =
    let a = C.create ~config:cfg () in
    store a k "payload-bytes";
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  corrupt_with (String.sub whole 0 (String.length whole - 4));
  (* garbage header *)
  corrupt_with "not json at all\nleftover";
  (* wrong key in an otherwise well-formed file: copy another entry *)
  let k2 = C.key ~meth:"check" ~params:[ ("depth", J.Int 5) ] in
  let a = C.create ~config:cfg () in
  store a k2 "other-bytes";
  let ic = open_in_bin (Filename.concat dir k2) in
  let other = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc other;
  close_out oc;
  let b = C.create ~config:cfg () in
  expect_miss b k;
  checkb "wrong-key file unlinked" true (not (Sys.file_exists path))

let test_disk_survives_eviction_and_clear () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { C.capacity = 1; dir = Some dir } in
  let t = C.create ~config:cfg () in
  let k1 = C.key ~meth:"check" ~params:[ ("depth", J.Int 3) ] in
  let k2 = C.key ~meth:"check" ~params:[ ("depth", J.Int 4) ] in
  store t k1 "v1";
  store t k2 "v2";
  (* k1 was evicted from memory but its file remains: a disk hit *)
  checki "evicted" 1 (C.stats t).C.evictions;
  (match C.lookup t ~key:k1 with
  | C.Disk_hit p -> checks "evicted entry re-read from disk" "v1" p
  | _ -> Alcotest.fail "expected disk hit for the evicted key");
  (* clear wipes memory, entry files, and stray temp files *)
  let stray = Filename.concat dir ".tmp-stray-999" in
  let oc = open_out stray in
  close_out oc;
  C.clear t;
  checki "memory cleared" 0 (C.stats t).C.entries;
  checki "clear counted" 1 (C.stats t).C.clears;
  checki "dir emptied" 0 (List.length (entry_files dir));
  checkb "stray temp removed" true (not (Sys.file_exists stray));
  expect_miss t k1;
  expect_miss t k2

let test_stats_json_shape () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = C.create ~config:{ C.capacity = 4; dir = Some dir } () in
  store t (C.key ~meth:"run" ~params:[]) "p";
  let doc = C.stats_json t in
  checkb "enabled" true (J.member "enabled" doc = Some (J.Bool true));
  checkb "capacity" true (J.member "capacity" doc = Some (J.Int 4));
  checkb "entries" true (J.member "entries" doc = Some (J.Int 1));
  checkb "dir" true (J.member "dir" doc = Some (J.String dir));
  List.iter
    (fun k -> checkb (k ^ " present") true (J.member k doc <> None))
    [
      "bytes"; "hits"; "misses"; "coalesced"; "evictions"; "disk_hits";
      "disk_errors"; "stores"; "clears";
    ]

(* -- QCheck canonicalization battery ----------------------------------- *)

let name_gen =
  QCheck.Gen.(
    oneof
      [
        oneofl
          [
            "object"; "depth"; "horizon"; "jobs"; "experiments"; "scale";
            "seed"; "k"; "a b"; "";
          ];
        small_string ~gen:printable;
      ])

let json_gen =
  QCheck.Gen.(
    sized_size (int_bound 2)
      (fix (fun self n ->
           let leaf =
             oneof
               [
                 map (fun i -> J.Int i) small_signed_int;
                 (* quarters are exactly representable, so their wire
                    rendering round-trips to the same double *)
                 map (fun i -> J.Float (float_of_int i /. 4.)) small_signed_int;
                 map (fun s -> J.String s) (small_string ~gen:printable);
                 map (fun b -> J.Bool b) bool;
                 return J.Null;
               ]
           in
           if n = 0 then leaf
           else
             oneof
               [
                 leaf;
                 map (fun xs -> J.List xs) (list_size (int_bound 3) (self (n - 1)));
                 map
                   (fun kvs -> J.Obj kvs)
                   (list_size (int_bound 3) (pair name_gen (self (n - 1))));
               ])))

let params_print ps = J.to_string (J.Obj ps)

let params_arb =
  QCheck.make ~print:params_print
    QCheck.Gen.(list_size (int_bound 5) (pair name_gen json_gen))

let meth_arb = QCheck.oneofl [ "run"; "check"; "sweep" ]

(* Reordering only commutes with first-binding dedup on duplicate-free
   param lists, so the reorder property dedups first. *)
let dedup_params ps =
  List.rev
    (List.fold_left
       (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
       [] ps)

(* A deterministic LCG shuffle: pure in (seed, list), no global RNG. *)
let shuffle seed xs =
  let a = Array.of_list xs in
  let st = ref ((seed * 2147001325) + 715136305) in
  let next m =
    st := ((!st * 2147001325) + 715136305) land max_int;
    !st mod m
  in
  for i = Array.length a - 1 downto 1 do
    let j = next (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:300 ~name:"key invariant under param reorder"
      (triple meth_arb params_arb small_nat)
      (fun (meth, params, seed) ->
        let params = dedup_params params in
        C.key ~meth ~params = C.key ~meth ~params:(shuffle seed params));
    Test.make ~count:300 ~name:"run/check keys ignore jobs"
      (quad (oneofl [ "run"; "check" ]) params_arb small_nat small_nat)
      (fun (meth, params, j1, j2) ->
        let k = C.key ~meth ~params in
        k = C.key ~meth ~params:(("jobs", J.Int j1) :: params)
        && k = C.key ~meth ~params:(params @ [ ("jobs", J.Int j2) ]));
    Test.make ~count:300 ~name:"sweep keys distinguish jobs"
      (triple params_arb small_nat small_nat)
      (fun (params, j1, j2) ->
        assume (j1 <> j2);
        C.key ~meth:"sweep" ~params:(("jobs", J.Int j1) :: params)
        <> C.key ~meth:"sweep" ~params:(("jobs", J.Int j2) :: params));
    Test.make ~count:300 ~name:"key stable across a wire round-trip"
      (pair meth_arb params_arb)
      (fun (meth, params) ->
        match J.of_string (J.to_string (J.Obj params)) with
        | Ok (J.Obj kvs) -> C.key ~meth ~params:kvs = C.key ~meth ~params
        | _ -> false);
    Test.make ~count:300 ~name:"distinct check configs get distinct keys"
      (pair (pair small_nat small_nat) (pair small_nat small_nat))
      (fun ((d1, h1), (d2, h2)) ->
        assume ((d1, h1) <> (d2, h2));
        let p d h =
          [
            ("object", J.String "register");
            ("depth", J.Int d);
            ("horizon", J.Int h);
          ]
        in
        C.key ~meth:"check" ~params:(p d1 h1)
        <> C.key ~meth:"check" ~params:(p d2 h2));
  ]

let suite =
  [
    Alcotest.test_case "key: shape and construction" `Quick test_key_shape;
    Alcotest.test_case "key: cacheable methods" `Quick test_cacheable;
    Alcotest.test_case "key: canonicalization examples" `Quick
      test_canonical_examples;
    Alcotest.test_case "lru: eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru: hits refresh recency" `Quick test_lru_touch_order;
    Alcotest.test_case "single-flight: followers coalesce onto the leader"
      `Quick test_single_flight;
    Alcotest.test_case "single-flight: errors wake waiters, cache nothing"
      `Quick test_error_resolve_not_cached;
    Alcotest.test_case "disabled: compute-only, no coalescing, no storage"
      `Quick test_disabled_cache;
    Alcotest.test_case "disk: atomic write, restart hit, promotion" `Quick
      test_disk_roundtrip_and_restart;
    Alcotest.test_case "disk: corrupt/truncated entries fall back" `Quick
      test_disk_corrupt_and_truncated;
    Alcotest.test_case "disk: eviction keeps files, clear removes them" `Quick
      test_disk_survives_eviction_and_clear;
    Alcotest.test_case "stats: cache RPC payload shape" `Quick
      test_stats_json_shape;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
