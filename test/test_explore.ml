(* Exhaustive-prefix exploration, now DPOR-backed: verify safety
   properties over ALL schedule classes of the critical early steps for
   small systems, demonstrate the explorer still finds a planted bug,
   and check the reduction against the naive enumerator — same verdict,
   strictly fewer executions. *)

open Kernel
open Check

let checkb = Alcotest.check Alcotest.bool

(* Build a fresh commit-adopt world with distinct inputs; the checker
   asserts the commit-adopt contract on the collected results. *)
let commit_adopt_world n () =
  let inst =
    Converge.Commit_adopt.create ~name:"x" ~size:n ~compare:Int.compare
  in
  let results = ref [] in
  let body pid () =
    let picked, committed = Converge.Commit_adopt.run inst ~me:pid (pid * 7) in
    results := (pid, picked, committed) :: !results
  in
  let procs pid = [ body pid ] in
  let check _trace =
    let picked =
      List.sort_uniq Int.compare (List.map (fun (_, v, _) -> v) !results)
    in
    let committed = List.exists (fun (_, _, c) -> c) !results in
    if List.length !results <> n then Error "not everyone finished"
    else if committed && List.length picked > 1 then
      Error
        (Printf.sprintf "commit with %d distinct picks" (List.length picked))
    else if
      not (List.for_all (fun v -> List.exists (fun p -> p * 7 = v) [ 0; 1; 2; 3 ]) picked)
    then Error "validity violated"
    else Ok ()
  in
  (procs, check)

(* The classic lost update: both processes read a register, then write
   their increment; some interleaving loses one of them. *)
let lost_update_world () =
  let open Memory in
  let reg = Register.create ~name:"c" 0 in
  let body _pid () =
    let v = Register.read reg in
    Register.write reg (v + 1)
  in
  let check _trace =
    if Register.peek reg = 2 then Ok () else Error "lost update"
  in
  ((fun pid -> [ body pid ]), check)

let test_commit_adopt_exhaustive_2proc () =
  let outcome =
    Explore.exhaustive_prefix
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:2)
      ~depth:11 ~horizon:10_000
      ~make:(commit_adopt_world 2)
      ()
  in
  checkb "explored more than one class" true (outcome.executions > 1);
  match outcome.counterexample with
  | None -> ()
  | Some (prefix, msg) ->
      Alcotest.failf "counterexample %s under schedule [%s]" msg
        (String.concat ";" (List.map Pid.to_string prefix))

let test_commit_adopt_exhaustive_3proc () =
  let outcome =
    Explore.exhaustive_prefix
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:3)
      ~depth:7 ~horizon:10_000
      ~make:(commit_adopt_world 3)
      ()
  in
  checkb "explored more than one class" true (outcome.executions > 1);
  checkb "no counterexample" true (outcome.counterexample = None)

let test_converge_exhaustive_c_agreement () =
  (* k = 1 converge with 3 distinct inputs: whenever anyone commits, all
     picks agree — over every class of the 3^6 early interleavings. *)
  let make () =
    let inst = Converge.create ~name:"x" ~k:1 ~size:3 ~compare:Int.compare in
    let results = ref [] in
    let body pid () =
      let picked, committed = Converge.run inst ~me:pid (100 + pid) in
      results := (picked, committed) :: !results
    in
    let check _trace =
      let committed = List.exists snd !results in
      let picked = List.sort_uniq Int.compare (List.map fst !results) in
      if committed && List.length picked > 1 then Error "c-agreement broken"
      else Ok ()
    in
    ((fun pid -> [ body pid ]), check)
  in
  let outcome =
    Explore.exhaustive_prefix
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:3)
      ~depth:6 ~horizon:10_000 ~make ()
  in
  checkb "no counterexample" true (outcome.counterexample = None)

let test_explorer_finds_planted_race () =
  let outcome =
    Explore.exhaustive_prefix
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:2)
      ~depth:4 ~horizon:100 ~make:lost_update_world ()
  in
  match outcome.counterexample with
  | Some (_, "lost update") -> ()
  | Some (_, other) -> Alcotest.failf "unexpected report %s" other
  | None -> Alcotest.fail "explorer missed the planted race"

(* DPOR vs the naive enumerator on 2-process depth-5 worlds: identical
   verdict; on violation-free worlds strictly fewer executions. *)
let equivalence_cases =
  [
    ("commit-adopt", commit_adopt_world 2, false);
    ("lost update", lost_update_world, true);
    ( "independent registers",
      (fun () ->
        let open Memory in
        let a = Register.create ~name:"a" 0 and b = Register.create ~name:"b" 0 in
        let body pid () =
          let reg = if pid = 0 then a else b in
          Register.write reg 1;
          ignore (Register.read reg);
          Register.write reg 2
        in
        let check _trace =
          if Register.peek a = 2 && Register.peek b = 2 then Ok ()
          else Error "final values wrong"
        in
        ((fun pid -> [ body pid ]), check)),
      false );
    ( "shared register",
      (fun () ->
        let open Memory in
        let r = Register.create ~name:"r" 0 in
        let body pid () =
          Register.write r (10 + pid);
          ignore (Register.read r)
        in
        let check _trace =
          let v = Register.peek r in
          if v = 10 || v = 11 then Ok () else Error "impossible final value"
        in
        ((fun pid -> [ body pid ]), check)),
      false );
  ]

let test_dpor_matches_naive () =
  List.iter
    (fun (name, make, violates) ->
      let pattern = Failure_pattern.no_failures ~n_plus_1:2 in
      let dpor =
        Explore.exhaustive_prefix ~pattern ~depth:5 ~horizon:200 ~make ()
      in
      let naive =
        Explore.naive_prefix ~pattern ~depth:5 ~horizon:200 ~make ()
      in
      checkb
        (Printf.sprintf "%s: same verdict" name)
        (naive.counterexample <> None)
        (dpor.counterexample <> None);
      checkb
        (Printf.sprintf "%s: expected verdict" name)
        violates
        (dpor.counterexample <> None);
      if not violates then
        checkb
          (Printf.sprintf "%s: dpor strictly fewer executions (%d < %d)" name
             dpor.executions naive.executions)
          true
          (dpor.executions < naive.executions))
    equivalence_cases

let test_schedule_count_bound () =
  let checki = Alcotest.check Alcotest.int in
  checki "3^4" 81 (Explore.count_schedules ~n_plus_1:3 ~depth:4);
  checki "k^0" 1 (Explore.count_schedules ~n_plus_1:7 ~depth:0);
  checki "1^k" 1 (Explore.count_schedules ~n_plus_1:1 ~depth:500);
  (* saturation instead of the old silent overflow *)
  checki "2^61 fits" (1 lsl 61) (Explore.count_schedules ~n_plus_1:2 ~depth:61);
  checki "2^62 saturates" max_int (Explore.count_schedules ~n_plus_1:2 ~depth:62);
  checki "2^200 saturates" max_int
    (Explore.count_schedules ~n_plus_1:2 ~depth:200);
  checki "10^100 saturates" max_int
    (Explore.count_schedules ~n_plus_1:10 ~depth:100);
  Alcotest.check_raises "negative depth rejected"
    (Invalid_argument "Explore.count_schedules: negative argument") (fun () ->
      ignore (Explore.count_schedules ~n_plus_1:2 ~depth:(-1)))

let suite =
  [
    Alcotest.test_case "commit-adopt exhaustive (2 procs, depth 11)" `Slow
      test_commit_adopt_exhaustive_2proc;
    Alcotest.test_case "commit-adopt exhaustive (3 procs, depth 7)" `Slow
      test_commit_adopt_exhaustive_3proc;
    Alcotest.test_case "1-converge exhaustive c-agreement" `Slow
      test_converge_exhaustive_c_agreement;
    Alcotest.test_case "explorer finds planted race" `Quick
      test_explorer_finds_planted_race;
    Alcotest.test_case "dpor matches naive enumeration" `Quick
      test_dpor_matches_naive;
    Alcotest.test_case "schedule count bound" `Quick test_schedule_count_bound;
  ]
