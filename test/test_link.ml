(* The partial-synchrony substrate: deterministic timers, lossy/delayed
   links before GST, reliable timely links after it, crash isolation
   (incl. under DPOR reordering), and byte-identical replay. *)

open Kernel

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------- timers *)

let test_timer_basics () =
  let t = Timer.create () in
  checkb "fresh unarmed" false (Timer.armed t);
  checkb "fresh not expired" false (Timer.expired t ~now:100);
  Timer.arm t ~now:10 ~delay:5;
  checkb "armed" true (Timer.armed t);
  Alcotest.check
    (Alcotest.option Alcotest.int)
    "deadline" (Some 15) (Timer.deadline t);
  checkb "before deadline" false (Timer.expired t ~now:14);
  checkb "at deadline" true (Timer.expired t ~now:15);
  checkb "stays expired" true (Timer.expired t ~now:40);
  Timer.arm t ~now:40 ~delay:1;
  checkb "re-armed resets" false (Timer.expired t ~now:40);
  Timer.cancel t;
  checkb "cancelled" false (Timer.armed t);
  Alcotest.check_raises "negative delay" (Invalid_argument "Timer.arm: negative delay")
    (fun () -> Timer.arm t ~now:0 ~delay:(-1))

let test_periodic_reanchors () =
  let p = Timer.Periodic.create ~period:5 in
  checkb "due immediately" true (Timer.Periodic.due p ~now:0);
  checkb "not due twice at one instant" false (Timer.Periodic.due p ~now:0);
  checkb "not due early" false (Timer.Periodic.due p ~now:4);
  checkb "due at period" true (Timer.Periodic.due p ~now:5);
  (* a starved owner gets one tick on resume, not a burst *)
  checkb "due after starvation" true (Timer.Periodic.due p ~now:42);
  checkb "re-anchored to resume time" false (Timer.Periodic.due p ~now:44);
  checkb "peek has no side effect" true
    (Timer.Periodic.peek p ~now:47 && Timer.Periodic.due p ~now:47)

(* ------------------------------------------------------------- links *)

(* Drive [rounds] full round-robin rotations of: everyone polls, pid 0
   broadcasts a numbered message each rotation. Returns the link. *)
let run_broadcasters ?(n_plus_1 = 3) ?(pattern_crashes = []) ?policy ~config
    ~horizon () =
  let link = Link.create ~name:"l" ~n_plus_1 ~config () in
  let tick = Array.init n_plus_1 (fun _ -> Timer.Periodic.create ~period:3) in
  let body pid () =
    let rec loop () =
      let now, _ = Link.poll_now link ~me:pid in
      if Timer.Periodic.due tick.(pid) ~now then Link.broadcast link now;
      loop ()
    in
    loop ()
  in
  let pattern =
    if pattern_crashes = [] then Failure_pattern.no_failures ~n_plus_1
    else Failure_pattern.make ~n_plus_1 ~crashes:pattern_crashes
  in
  let policy =
    match policy with Some p -> p | None -> Policy.round_robin ()
  in
  let result =
    Run.exec ~pattern ~policy ~horizon ~procs:(fun pid -> [ body pid ]) ()
  in
  (link, result)

let test_default_config_is_reliable () =
  let link, _ =
    run_broadcasters ~config:Link.default_config ~horizon:200 ()
  in
  checkb "contract" true (Link.check_partial_synchrony link = Ok ());
  List.iter
    (fun r ->
      checkb "nothing dropped" false (r.Link.sr_ready_at = -1);
      checkb "ready next step" true (r.Link.sr_ready_at = r.Link.sr_sent_at + 1))
    (Link.sends link)

let test_total_loss_before_gst () =
  let config =
    { Link.gst = 60; delta = 1; pre_delay = 0; loss_pct = 100; link_seed = 5 }
  in
  let link, _ = run_broadcasters ~config ~horizon:300 () in
  checkb "contract" true (Link.check_partial_synchrony link = Ok ());
  let pre, post =
    List.partition (fun r -> r.Link.sr_sent_at < 60) (Link.sends link)
  in
  checkb "has pre-GST sends" true (pre <> []);
  checkb "has post-GST sends" true (post <> []);
  List.iter
    (fun r -> checki "pre-GST all dropped" (-1) r.Link.sr_ready_at)
    pre;
  List.iter
    (fun r ->
      checkb "post-GST never dropped" true (r.Link.sr_ready_at <> -1);
      checkb "post-GST timely" true
        (r.Link.sr_ready_at <= r.Link.sr_sent_at + config.Link.delta))
    post

let test_pre_gst_delay_stashes () =
  let config =
    { Link.gst = 400; delta = 1; pre_delay = 40; loss_pct = 0; link_seed = 11 }
  in
  let link, _ = run_broadcasters ~config ~horizon:300 () in
  checkb "contract" true (Link.check_partial_synchrony link = Ok ());
  (* with max extra delay 40 some message must actually be delayed *)
  checkb "some message delayed" true
    (List.exists
       (fun r -> r.Link.sr_ready_at > r.Link.sr_sent_at + 1)
       (Link.sends link));
  (* and nothing was ever delivered before it was ready *)
  List.iter
    (fun r ->
      if r.Link.sr_delivered_at <> -1 then
        checkb "delivered >= ready" true
          (r.Link.sr_delivered_at >= r.Link.sr_ready_at))
    (Link.sends link)

let test_fair_delivery_after_gst () =
  let config =
    { Link.gst = 50; delta = 3; pre_delay = 10; loss_pct = 60; link_seed = 2 }
  in
  let link, result = run_broadcasters ~config ~horizon:600 () in
  checkb "contract" true (Link.check_partial_synchrony link = Ok ());
  (* everyone polls every rotation: anything ready well before the end
     must have been delivered *)
  let last = Trace.last_time result.trace in
  checki "no stale ready messages" 0
    (List.length (Link.undelivered_ready link ~by:(last - 30)))

let test_send_log_accounting () =
  let config =
    { Link.gst = 30; delta = 2; pre_delay = 6; loss_pct = 50; link_seed = 9 }
  in
  let link, _ = run_broadcasters ~n_plus_1:2 ~config ~horizon:200 () in
  let sends = Link.sends link in
  let dropped =
    List.length (List.filter (fun r -> r.Link.sr_ready_at = -1) sends)
  in
  let delivered =
    List.length (List.filter (fun r -> r.Link.sr_delivered_at <> -1) sends)
  in
  let in_flight = Link.in_flight link 0 + Link.in_flight link 1 in
  checki "sent = dropped + delivered + in flight" (List.length sends)
    (dropped + delivered + in_flight);
  checkb "chronological" true
    (let rec mono = function
       | a :: (b :: _ as rest) ->
           a.Link.sr_sent_at < b.Link.sr_sent_at && mono rest
       | _ -> true
     in
     mono sends)

let test_crashed_receiver_never_observes () =
  let config =
    { Link.gst = 0; delta = 1; pre_delay = 0; loss_pct = 0; link_seed = 1 }
  in
  let link, result =
    run_broadcasters ~pattern_crashes:[ (1, 5) ] ~config ~horizon:300 ()
  in
  let pattern =
    Failure_pattern.make ~n_plus_1:3 ~crashes:[ (1, 5) ]
  in
  checkb "crash isolation" true
    (Link.check_crash_isolation link ~pattern = Ok ());
  checkb "crash recorded in trace" true
    (List.exists
       (function Trace.Crash { pid = 1; _ } -> true | _ -> false)
       result.trace)

let test_config_string_round_trip () =
  let config =
    { Link.gst = 40; delta = 4; pre_delay = 8; loss_pct = 25; link_seed = 7 }
  in
  let s = Link.config_to_string config in
  Alcotest.check Alcotest.string "stable rendering"
    "gst=40,delta=4,pre_delay=8,loss=25,seed=7" s;
  (match Link.config_of_string s with
  | Ok c -> checkb "round trip" true (c = config)
  | Error e -> Alcotest.fail e);
  checkb "garbage rejected" true
    (Result.is_error (Link.config_of_string "gst=1,delta"));
  checkb "out of range rejected" true
    (Result.is_error
       (Link.config_of_string "gst=1,delta=0,pre_delay=0,loss=0,seed=1"))

(* --------------------------------------------- DPOR crash isolation *)

(* Under every DPOR-explored ordering: a receiver crashed at time 1 can
   never observe a send, on the reliable network and on a lossy link
   alike. *)
let test_dpor_crash_isolation () =
  let procs = 3 in
  let pattern = Failure_pattern.make ~n_plus_1:procs ~crashes:[ (2, 1) ] in
  let make () =
    let net = Network.create ~name:"n" ~n_plus_1:procs in
    let link =
      Link.create ~name:"l" ~n_plus_1:procs
        ~config:{ Link.gst = 8; delta = 1; pre_delay = 3; loss_pct = 40; link_seed = 4 }
        ()
    in
    let body pid () =
      Network.send net ~to_:2 pid;
      Link.send link ~to_:2 pid;
      ignore (Network.poll net ~me:pid);
      ignore (Link.poll link ~me:pid)
    in
    let check (_ : Trace.t) =
      match Network.check_crash_isolation net ~pattern with
      | Error _ as e -> e
      | Ok () -> Link.check_crash_isolation link ~pattern
    in
    ((fun pid -> [ body pid ]), check)
  in
  let outcome =
    Check.Dpor.explore ~pattern ~depth:6 ~horizon:60 ~make ()
  in
  checkb "no execution violates isolation" true (outcome.counterexample = None);
  checkb "explored more than one schedule" true (outcome.stats.executions > 1)

(* ----------------------------------------------------------- qcheck *)

let gen_config =
  QCheck.Gen.(
    int_bound 80 >>= fun gst ->
    int_range 1 5 >>= fun delta ->
    int_bound 20 >>= fun pre_delay ->
    int_bound 100 >>= fun loss_pct ->
    int_range 1 10_000 >|= fun link_seed ->
    { Link.gst; delta; pre_delay; loss_pct; link_seed })

let pp_cfg cfg = Link.config_to_string cfg

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:60 ~name:"link: same config and schedule replay identically"
      (make ~print:pp_cfg gen_config)
      (fun config ->
        let run () =
          let link, result = run_broadcasters ~config ~horizon:250 () in
          (Format.asprintf "%a" Trace.pp result.trace, Link.sends link)
        in
        let t1, s1 = run () and t2, s2 = run () in
        String.equal t1 t2
        && List.equal
             (fun a b ->
               a.Link.sr_from = b.Link.sr_from
               && a.Link.sr_to = b.Link.sr_to
               && a.Link.sr_sent_at = b.Link.sr_sent_at
               && a.Link.sr_ready_at = b.Link.sr_ready_at
               && a.Link.sr_delivered_at = b.Link.sr_delivered_at)
             s1 s2);
    Test.make ~count:60
      ~name:"link: GST monotonicity (post-GST sends timely, pre-GST bounded)"
      (make ~print:pp_cfg gen_config)
      (fun config ->
        let link, result = run_broadcasters ~config ~horizon:400 () in
        let last = Trace.last_time result.trace in
        Link.check_partial_synchrony link = Ok ()
        && List.for_all
             (fun r ->
               if r.Link.sr_sent_at >= config.Link.gst then
                 r.Link.sr_ready_at <> -1
                 && r.Link.sr_ready_at <= r.Link.sr_sent_at + config.Link.delta
               else
                 r.Link.sr_ready_at = -1
                 || r.Link.sr_ready_at
                    <= r.Link.sr_sent_at + 1 + config.Link.pre_delay)
             (Link.sends link)
        && Link.undelivered_ready link ~by:(last - 40) = []);
    Test.make ~count:40
      ~name:"link: crash isolation holds under random configs and crashes"
      (make
         ~print:(fun (c, t) -> Printf.sprintf "%s crash@%d" (pp_cfg c) t)
         QCheck.Gen.(pair gen_config (int_bound 60)))
      (fun (config, crash_at) ->
        let link, _ =
          run_broadcasters ~pattern_crashes:[ (1, crash_at) ] ~config
            ~horizon:300 ()
        in
        let pattern =
          Failure_pattern.make ~n_plus_1:3 ~crashes:[ (1, crash_at) ]
        in
        Link.check_crash_isolation link ~pattern = Ok ());
  ]

let suite =
  [
    Alcotest.test_case "timer basics" `Quick test_timer_basics;
    Alcotest.test_case "periodic re-anchors" `Quick test_periodic_reanchors;
    Alcotest.test_case "default config reliable" `Quick
      test_default_config_is_reliable;
    Alcotest.test_case "total loss before GST" `Quick test_total_loss_before_gst;
    Alcotest.test_case "pre-GST delay stashes" `Quick test_pre_gst_delay_stashes;
    Alcotest.test_case "fair delivery after GST" `Quick
      test_fair_delivery_after_gst;
    Alcotest.test_case "send-log accounting" `Quick test_send_log_accounting;
    Alcotest.test_case "crashed receiver never observes" `Quick
      test_crashed_receiver_never_observes;
    Alcotest.test_case "config string round-trip" `Quick
      test_config_string_round_trip;
    Alcotest.test_case "DPOR crash isolation" `Quick test_dpor_crash_isolation;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
