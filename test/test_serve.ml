(* Tests for the service subsystem: protocol encode/parse, the bounded
   job queue, engine backpressure and drain, service payload contracts
   (byte-identical to the CLI renderers), cooperative deadlines with
   slot reclaim, and the daemon end to end — including the determinism
   regression (same request serial, concurrent, and direct must yield
   byte-identical payloads), graceful drain, and the result cache
   (cold/warm/disk byte-identity, single-flight coalescing, hits under
   saturation and drain, the cache RPC, metrics, and spans). *)

module J = Obs.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains = Testutil.contains
let temp_socket = Testutil.temp_socket
let temp_dir () = Testutil.temp_dir ~prefix:"wfde-test-cache" ()
let rm_rf = Testutil.rm_rf
let eventually = Testutil.eventually

(* -- proto ------------------------------------------------------------- *)

let test_proto_roundtrip () =
  let req =
    {
      Serve.Proto.id = J.String "r1";
      meth = "check";
      params = [ ("object", J.String "abd"); ("depth", J.Int 4) ];
      deadline_ms = Some 250;
      trace = Some "trace-9";
    }
  in
  let line = J.to_string (Serve.Proto.request_to_json req) in
  match Serve.Proto.parse_request ~max_bytes:65536 line with
  | Error _ -> Alcotest.fail "roundtrip parse failed"
  | Ok r ->
      checks "method" "check" r.Serve.Proto.meth;
      checkb "id" true (r.Serve.Proto.id = J.String "r1");
      checkb "deadline" true (r.Serve.Proto.deadline_ms = Some 250);
      checkb "trace" true (r.Serve.Proto.trace = Some "trace-9");
      checki "params" 2 (List.length r.Serve.Proto.params);
      (* a trace-less request stays trace-less: the field is optional
         and absent from the wire when None *)
      let bare = { req with Serve.Proto.trace = None } in
      let line = J.to_string (Serve.Proto.request_to_json bare) in
      checkb "no trace key when None" true (not (contains line "trace"));
      match Serve.Proto.parse_request ~max_bytes:65536 line with
      | Ok r -> checkb "absent trace is None" true (r.Serve.Proto.trace = None)
      | Error _ -> Alcotest.fail "trace-less request must parse"

let test_proto_errors () =
  let parse = Serve.Proto.parse_request ~max_bytes:100 in
  let code_of = function
    | Error (e, _) -> Serve.Proto.code_to_string e.Serve.Proto.code
    | Ok _ -> "ok"
  in
  checks "oversized" "oversized" (code_of (parse (String.make 101 'x')));
  checks "bad json" "bad_request" (code_of (parse "{nope"));
  checks "non-object" "bad_request" (code_of (parse "[1,2]"));
  checks "unknown field" "bad_request"
    (code_of (parse {|{"method":"run","bogus":1}|}));
  checks "missing method" "bad_request" (code_of (parse {|{"id":"x"}|}));
  checks "bad deadline" "bad_request"
    (code_of (parse {|{"method":"run","deadline_ms":-5}|}));
  checks "empty trace" "bad_request"
    (code_of (parse {|{"method":"run","trace":""}|}));
  checks "non-string trace" "bad_request"
    (code_of (parse {|{"method":"run","trace":7}|}));
  (* the id survives into the error so the response can correlate *)
  (match parse {|{"id":"r9","method":"run","bogus":1}|} with
  | Error (_, id) -> checkb "salvaged id" true (id = J.String "r9")
  | Ok _ -> Alcotest.fail "expected error");
  match parse {|{"method":"run"}|} with
  | Ok r -> checkb "absent id is Null" true (r.Serve.Proto.id = J.Null)
  | Error _ -> Alcotest.fail "minimal request must parse"

let test_proto_response_roundtrip () =
  let ok_line =
    J.to_string
      (Serve.Proto.ok_response ~id:(J.Int 7) ~wall_ms:1.5
         (J.Obj [ ("x", J.Int 1) ]))
  in
  (match Serve.Proto.parse_response ok_line with
  | Ok { Serve.Proto.resp_id; result = Ok payload; _ } ->
      checkb "id" true (resp_id = J.Int 7);
      checkb "payload" true (payload = J.Obj [ ("x", J.Int 1) ])
  | _ -> Alcotest.fail "ok roundtrip failed");
  let err_line =
    J.to_string
      (Serve.Proto.error_response ~id:J.Null ~wall_ms:0.1
         (Serve.Proto.err Queue_full "full"))
  in
  (match Serve.Proto.parse_response err_line with
  | Ok { Serve.Proto.result = Error e; _ } ->
      checkb "code" true (e.Serve.Proto.code = Serve.Proto.Queue_full);
      checks "message" "full" e.Serve.Proto.message
  | _ -> Alcotest.fail "error roundtrip failed");
  checkb "garbage rejected" true
    (Result.is_error (Serve.Proto.parse_response "{}"))

(* Satellite: the cache serves pre-rendered payload strings, spliced
   into the envelope by [ok_response_rendered] — its bytes must equal
   rendering the equivalent document, or hits and misses would differ. *)
let test_proto_rendered_response () =
  List.iter
    (fun (id, wall_ms, payload) ->
      let expected =
        J.to_string (Serve.Proto.ok_response ~id ~wall_ms payload)
      in
      checks "rendered splice = document render" expected
        (Serve.Proto.ok_response_rendered ~id ~wall_ms (J.to_string payload)))
    [
      (J.Int 7, 1.5, J.Obj [ ("x", J.Int 1) ]);
      ( J.String "r1",
        0.0,
        J.Obj [ ("nested", J.Obj [ ("a", J.List [ J.Int 1; J.Null ]) ]) ] );
      (J.Null, 3.0, J.List []);
      (J.String "quoted \"id\"\n", 0.125, J.String "payload\twith\tescapes");
      (J.Int (-2), 0.0625, J.Bool false);
    ]

let test_proto_exit_codes () =
  let code = Serve.Proto.exit_code in
  checki "deadline_exceeded is timeout(1)" 124 (code Serve.Proto.Deadline_exceeded);
  checki "queue_full is EX_TEMPFAIL" 75 (code Serve.Proto.Queue_full);
  checki "bad_request" 1 (code Serve.Proto.Bad_request);
  checki "unknown_method" 1 (code Serve.Proto.Unknown_method);
  checki "oversized" 1 (code Serve.Proto.Oversized);
  checki "shutting_down" 1 (code Serve.Proto.Shutting_down);
  checki "internal" 1 (code Serve.Proto.Internal)

(* -- ivar / jobq ------------------------------------------------------- *)

let test_ivar () =
  let iv = Serve.Ivar.create () in
  checkb "unfilled peek" true (Serve.Ivar.peek iv = None);
  let reader = Thread.create (fun () -> Serve.Ivar.read iv) () in
  Serve.Ivar.fill iv 42;
  Thread.join reader;
  checki "read" 42 (Serve.Ivar.read iv);
  checkb "double fill raises" true
    (match Serve.Ivar.fill iv 43 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_jobq_order_and_bounds () =
  let q = Serve.Jobq.create ~capacity:2 in
  checki "capacity" 2 (Serve.Jobq.capacity q);
  checkb "push 1" true (Serve.Jobq.try_push q 1 = `Ok);
  checkb "push 2" true (Serve.Jobq.try_push q 2 = `Ok);
  checkb "push 3 full" true (Serve.Jobq.try_push q 3 = `Full);
  checki "depth" 2 (Serve.Jobq.length q);
  checkb "pop fifo" true (Serve.Jobq.pop q = Some 1);
  checkb "room again" true (Serve.Jobq.try_push q 4 = `Ok);
  Serve.Jobq.close q;
  Serve.Jobq.close q;
  checkb "push after close" true (Serve.Jobq.try_push q 5 = `Closed);
  (* close drains: queued items still come out, then None *)
  checkb "drain 2" true (Serve.Jobq.pop q = Some 2);
  checkb "drain 4" true (Serve.Jobq.pop q = Some 4);
  checkb "closed and empty" true (Serve.Jobq.pop q = None)

(* -- engine ------------------------------------------------------------ *)

let test_engine_runs_jobs () =
  let e = Serve.Engine.start ~workers:2 ~queue_capacity:8 () in
  let ivs = List.init 6 (fun _ -> Serve.Ivar.create ()) in
  List.iteri
    (fun i iv ->
      checkb "submitted" true
        (Serve.Engine.submit e (fun () -> Serve.Ivar.fill iv (i * i)) = `Ok))
    ivs;
  List.iteri (fun i iv -> checki "result" (i * i) (Serve.Ivar.read iv)) ivs;
  Serve.Engine.drain e

let test_engine_backpressure () =
  (* one worker held on a gate, capacity-1 queue: the third submit must
     be an immediate [`Queue_full], and releasing the gate lets the
     queued job complete *)
  let e = Serve.Engine.start ~workers:1 ~queue_capacity:1 () in
  let gate = Serve.Ivar.create () in
  let queued = Serve.Ivar.create () in
  checkb "blocker accepted" true
    (Serve.Engine.submit e (fun () -> Serve.Ivar.read gate) = `Ok);
  eventually "worker picked up the blocker" (fun () ->
      Serve.Engine.in_flight e = 1);
  checkb "queued accepted" true
    (Serve.Engine.submit e (fun () -> Serve.Ivar.fill queued true) = `Ok);
  checki "queue depth" 1 (Serve.Engine.queue_depth e);
  checkb "overflow rejected" true
    (Serve.Engine.submit e (fun () -> ()) = `Queue_full);
  Serve.Ivar.fill gate ();
  checkb "queued job ran after release" true (Serve.Ivar.read queued);
  Serve.Engine.drain e

let test_engine_drain_completes_queued () =
  let e = Serve.Engine.start ~workers:1 ~queue_capacity:4 () in
  let gate = Serve.Ivar.create () in
  let queued = Serve.Ivar.create () in
  ignore (Serve.Engine.submit e (fun () -> Serve.Ivar.read gate));
  eventually "worker busy" (fun () -> Serve.Engine.in_flight e = 1);
  checkb "second accepted" true
    (Serve.Engine.submit e (fun () -> Serve.Ivar.fill queued true) = `Ok);
  (* release the gate from a helper while drain blocks in this thread:
     drain must wait for the queued job, not discard it *)
  let releaser =
    Thread.create
      (fun () ->
        Unix.sleepf 0.05;
        Serve.Ivar.fill gate ())
      ()
  in
  Serve.Engine.drain e;
  Thread.join releaser;
  checkb "queued job completed during drain" true
    (Serve.Ivar.peek queued = Some true);
  checkb "submit after drain" true
    (Serve.Engine.submit e (fun () -> ()) = `Draining)

(* -- service ----------------------------------------------------------- *)

let req ?(id = J.Null) ?deadline_ms ?trace meth params =
  { Serve.Proto.id; meth; params; deadline_ms; trace }

let err_code = function
  | Error (e : Serve.Proto.error) -> Serve.Proto.code_to_string e.code
  | Ok _ -> "ok"

let test_service_validation () =
  let h = Serve.Service.handle in
  checks "unknown method" "unknown_method" (err_code (h (req "frob" [])));
  checks "health is daemon-level" "unknown_method"
    (err_code (h (req "health" [])));
  checks "unknown param" "bad_request"
    (err_code (h (req "run" [ ("scales", J.Int 2) ])));
  checks "bad scale" "bad_request"
    (err_code (h (req "run" [ ("scale", J.Int 0) ])));
  checks "unknown id" "bad_request"
    (err_code (h (req "run" [ ("experiments", J.List [ J.String "e99" ]) ])));
  checks "bad object" "bad_request"
    (err_code (h (req "check" [ ("object", J.String "teapot") ])));
  checks "bad mutant" "bad_request"
    (err_code (h (req "check" [ ("mutant", J.String "teapot") ])))

let test_service_payloads_match_direct () =
  (* run: payload embeds exactly the CLI stdout renderer *)
  let run_req = req "run" [ ("experiments", J.List [ J.String "e1" ]) ] in
  (match Serve.Service.handle run_req with
  | Error _ -> Alcotest.fail "run failed"
  | Ok payload ->
      let f = Option.get (Wfde.Experiments.by_id "e1") in
      let direct = Serve.Service.run_text [ f ~scale:1 ~jobs:1 () ] in
      (match J.member "output" payload with
      | Some (J.String s) -> checks "run output = CLI stdout" direct s
      | _ -> Alcotest.fail "run payload has no output");
      checkb "run ok flag" true (J.member "ok" payload = Some (J.Bool true)));
  (* check: payload is exactly the harness JSON document *)
  let check_req =
    req "check"
      [
        ("object", J.String "register");
        ("depth", J.Int 3);
        ("horizon", J.Int 60);
      ]
  in
  match Serve.Service.handle check_req with
  | Error _ -> Alcotest.fail "check failed"
  | Ok payload ->
      let direct =
        Wfde.Harness.check_outcome_json
          (Wfde.Harness.check_exhaustive ~depth:3 ~horizon:60
             Wfde.Scenario.Register)
      in
      checks "check payload = harness json" (J.to_string direct)
        (J.to_string payload)

let test_service_deadline () =
  let expired () = true in
  checks "run hits deadline" "deadline_exceeded"
    (err_code (Serve.Service.handle ~deadline:expired (req "run" [])));
  checks "sleep hits deadline" "deadline_exceeded"
    (err_code
       (Serve.Service.handle ~deadline:expired
          (req "sleep" [ ("ms", J.Int 50) ])));
  checks "check hits deadline" "deadline_exceeded"
    (err_code
       (Serve.Service.handle ~deadline:expired
          (req "check" [ ("depth", J.Int 3); ("horizon", J.Int 60) ])));
  (* an unexpired deadline is invisible *)
  checks "unexpired is fine" "ok"
    (err_code
       (Serve.Service.handle
          ~deadline:(fun () -> false)
          (req "sleep" [ ("ms", J.Int 0) ])))

(* -- daemon ------------------------------------------------------------ *)

let with_daemon ?(workers = 1) ?(queue_capacity = 4) ?cache ?trace ?slow_ms
    ?slow_out f =
  let socket = temp_socket () in
  let d =
    Serve.Daemon.start ?cache ?trace ?slow_ms ?slow_out ~workers
      ~queue_capacity ~socket ()
  in
  Fun.protect ~finally:(fun () -> Serve.Daemon.stop d) (fun () -> f d socket)

let rpc_ok socket r =
  match Serve.Client.rpc ~socket r with
  | Ok { Serve.Proto.result = Ok payload; _ } -> payload
  | Ok { Serve.Proto.result = Error e; _ } ->
      Alcotest.failf "server error: %s: %s"
        (Serve.Proto.code_to_string e.Serve.Proto.code)
        e.Serve.Proto.message
  | Error msg -> Alcotest.failf "transport error: %s" msg

let rpc_err socket r =
  match Serve.Client.rpc ~socket r with
  | Ok { Serve.Proto.result = Error e; _ } ->
      Serve.Proto.code_to_string e.Serve.Proto.code
  | Ok { Serve.Proto.result = Ok _; _ } -> "ok"
  | Error msg -> Alcotest.failf "transport error: %s" msg

let test_daemon_health_and_echo () =
  with_daemon (fun _ socket ->
      let payload = rpc_ok socket (req "health" []) in
      checkb "status ok" true
        (J.member "status" payload = Some (J.String "ok"));
      checkb "workers" true (J.member "workers" payload = Some (J.Int 1));
      (* ids echo through the envelope *)
      match Serve.Client.rpc ~socket (req ~id:(J.String "h7") "health" []) with
      | Ok resp -> checkb "id echoed" true (resp.Serve.Proto.resp_id = J.String "h7")
      | Error msg -> Alcotest.failf "transport error: %s" msg)

(* Satellite: the determinism regression. One check and one sweep
   request, asked (a) directly of the service, (b) through the daemon
   serially, (c) through the daemon from concurrent clients — after
   stripping the timing fields, every payload must be byte-identical. *)

let strip_timing =
  let rec go = function
    | J.Obj kvs ->
        J.Obj
          (List.map
             (fun (k, v) ->
               if k = "wall_seconds" || k = "total_wall_seconds" then (k, J.Null)
               else (k, go v))
             kvs)
    | J.List xs -> J.List (List.map go xs)
    | j -> j
  in
  go

let test_daemon_determinism () =
  let check_req =
    req "check"
      [
        ("object", J.String "register");
        ("depth", J.Int 3);
        ("horizon", J.Int 60);
      ]
  in
  let sweep_req = req "sweep" [ ("experiments", J.List [ J.String "e1" ]) ] in
  let norm p = J.to_string (strip_timing p) in
  with_daemon ~workers:2 (fun _ socket ->
      let direct r =
        match Serve.Service.handle r with
        | Ok p -> norm p
        | Error _ -> Alcotest.fail "direct handle failed"
      in
      let serial r = norm (rpc_ok socket r) in
      List.iter
        (fun (name, r) ->
          let reference = direct r in
          checks (name ^ " serial = direct") reference (serial r);
          checks (name ^ " serial repeat") reference (serial r);
          (* four concurrent clients, all sending the same request *)
          let results = Array.make 4 "" in
          let threads =
            Array.init 4 (fun i ->
                Thread.create
                  (fun i -> results.(i) <- norm (rpc_ok socket r))
                  i)
          in
          Array.iter Thread.join threads;
          Array.iteri
            (fun i got ->
              checks (Printf.sprintf "%s concurrent[%d] = direct" name i)
                reference got)
            results)
        [ ("check", check_req); ("sweep", sweep_req) ])

let test_daemon_queue_full () =
  with_daemon ~workers:1 ~queue_capacity:1 (fun d socket ->
      (* occupy the single worker, then the single queue slot, then
         observe the structured rejection — sequenced by polling the
         daemon's own gauges, not by sleeping *)
      let r1 = Thread.create (fun () -> rpc_ok socket (req "sleep" [ ("ms", J.Int 400) ])) () in
      eventually "worker busy" (fun () -> Serve.Daemon.in_flight d = 1);
      let r2 = Thread.create (fun () -> rpc_ok socket (req "sleep" [ ("ms", J.Int 0) ])) () in
      eventually "queue holds one" (fun () -> Serve.Daemon.queue_depth d = 1);
      checks "third request rejected" "queue_full"
        (rpc_err socket (req "sleep" [ ("ms", J.Int 0) ]));
      (* health still answers inline while the fleet is saturated *)
      checkb "health during saturation" true
        (J.member "status" (rpc_ok socket (req "health" []))
        = Some (J.String "ok"));
      Thread.join r1;
      Thread.join r2)

let test_daemon_deadline_reclaims_slot () =
  with_daemon ~workers:1 (fun _ socket ->
      let t0 = Unix.gettimeofday () in
      checks "expired mid-work" "deadline_exceeded"
        (rpc_err socket
           (req ~deadline_ms:50 "sleep" [ ("ms", J.Int 30_000) ]));
      checkb "cancelled long before the nominal sleep" true
        (Unix.gettimeofday () -. t0 < 5.);
      (* the worker slot is immediately reusable *)
      let p = rpc_ok socket (req "sleep" [ ("ms", J.Int 0) ]) in
      checkb "slot reclaimed" true (J.member "slept_ms" p = Some (J.Int 0)))

let test_daemon_queued_past_deadline () =
  with_daemon ~workers:1 (fun d socket ->
      let blocker =
        Thread.create
          (fun () -> rpc_ok socket (req "sleep" [ ("ms", J.Int 300) ]))
          ()
      in
      eventually "worker busy" (fun () -> Serve.Daemon.in_flight d = 1);
      (* 50ms deadline, stuck behind a 300ms job: expires in the queue *)
      checks "queued past deadline" "deadline_exceeded"
        (rpc_err socket (req ~deadline_ms:50 "sleep" [ ("ms", J.Int 0) ]));
      Thread.join blocker)

let read_response_line fd pending =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match String.index_opt !pending '\n' with
    | Some i ->
        let line = String.sub !pending 0 i in
        pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
        line
    | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Alcotest.fail "connection closed mid-response"
        | n ->
            pending := !pending ^ Bytes.sub_string chunk 0 n;
            go ())
  in
  go ()

let test_daemon_graceful_drain () =
  let socket = temp_socket () in
  let d = Serve.Daemon.start ~workers:1 ~queue_capacity:4 ~socket () in
  (* one in-flight and one pipelined request on the same connection,
     written together so both lines are buffered daemon-side before the
     drain begins *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let line r = J.to_string (Serve.Proto.request_to_json r) ^ "\n" in
  let both =
    line (req ~id:(J.String "a") "sleep" [ ("ms", J.Int 300) ])
    ^ line (req ~id:(J.String "b") "sleep" [ ("ms", J.Int 0) ])
  in
  let b = Bytes.of_string both in
  ignore (Unix.write fd b 0 (Bytes.length b));
  eventually "first request in flight" (fun () -> Serve.Daemon.in_flight d = 1);
  let stopper = Thread.create (fun () -> Serve.Daemon.stop d) () in
  eventually "drain began" (fun () -> Serve.Daemon.draining d);
  let pending = ref "" in
  (* request (a) was in flight when the drain began: it completes *)
  (match Serve.Proto.parse_response (read_response_line fd pending) with
  | Ok { Serve.Proto.resp_id; result = Ok _; _ } ->
      checkb "in-flight completed during drain" true (resp_id = J.String "a")
  | _ -> Alcotest.fail "first drain response malformed");
  (* request (b) was behind it: refused with a structured error *)
  (match Serve.Proto.parse_response (read_response_line fd pending) with
  | Ok { Serve.Proto.resp_id; result = Error e; _ } ->
      checkb "id b" true (resp_id = J.String "b");
      checkb "shutting_down" true
        (e.Serve.Proto.code = Serve.Proto.Shutting_down)
  | _ -> Alcotest.fail "second drain response malformed");
  Unix.close fd;
  Thread.join stopper;
  (* fully drained: socket is gone, new connections are refused *)
  checkb "socket unlinked" true (not (Sys.file_exists socket));
  checkb "connect refused after drain" true
    (Result.is_error (Serve.Client.connect ~socket));
  (* stop is idempotent *)
  Serve.Daemon.stop d

(* -- tracing ----------------------------------------------------------- *)

module Span = Obs.Span

(* Satellite: end-to-end span export. A request with a trace id against
   a daemon with a sink exports the full spine
   (request/parse/queue_wait/dispatch/execute/render) plus the
   method-specific children; a request without a trace id exports
   nothing; payload bytes are unchanged either way. *)

let test_daemon_traced_request () =
  let sink = Span.sink () in
  with_daemon ~trace:sink (fun _ socket ->
      let untraced = rpc_ok socket (req "sleep" [ ("ms", J.Int 0) ]) in
      checki "untraced request exports nothing" 0 (Span.absorbed sink);
      let traced = rpc_ok socket (req ~trace:"t1" "sleep" [ ("ms", J.Int 0) ]) in
      checks "tracing is invisible in the payload" (J.to_string untraced)
        (J.to_string traced);
      let spans = Span.take sink in
      checkb "spans exported" true (spans <> []);
      List.iter
        (fun s -> checks "trace id tags every span" "t1" s.Span.trace)
        spans;
      let names = List.map (fun s -> s.Span.name) spans in
      List.iter
        (fun n ->
          checkb (Printf.sprintf "span %s present" n) true (List.mem n names))
        [ "request"; "parse"; "queue_wait"; "dispatch"; "execute";
          "sleep.wait"; "render" ];
      checkb "nothing truncated on the happy path" true
        (List.for_all (fun s -> not s.Span.truncated) spans);
      (* structural sanity: exactly one root, parents precede children *)
      checki "one root" 1
        (List.length (List.filter (fun s -> s.Span.parent = 0) spans));
      List.iter
        (fun s -> checkb "parent precedes span" true (s.Span.parent < s.Span.span_id))
        spans;
      (* a check request carries the harness's subtree through the wire *)
      ignore
        (rpc_ok socket
           (req ~trace:"t2" "check"
              [
                ("object", J.String "register");
                ("depth", J.Int 3);
                ("horizon", J.Int 60);
              ]));
      let names2 = List.map (fun s -> s.Span.name) (Span.take sink) in
      checkb "check.probe exported" true (List.mem "check.probe" names2);
      checkb "per-unit dpor spans exported" true
        (List.exists
           (fun n -> String.length n > 6 && String.sub n 0 6 = "dpor.p")
           names2);
      checkb "dpor phase spans exported" true
        (List.mem "dpor.executions" names2 && List.mem "dpor.race_analysis" names2))

(* Satellite: a drain cancels a deadline-bearing in-flight request and
   the unfinished spans are flushed with truncated=true, not lost. *)

let test_daemon_drain_truncates_spans () =
  let sink = Span.sink () in
  let socket = temp_socket () in
  let d =
    Serve.Daemon.start ~workers:1 ~queue_capacity:4 ~trace:sink ~socket ()
  in
  let result = ref "" in
  let runner =
    Thread.create
      (fun () ->
        result :=
          rpc_err socket
            (req ~trace:"cut" ~deadline_ms:60_000 "sleep"
               [ ("ms", J.Int 30_000) ]))
      ()
  in
  eventually "sleep in flight" (fun () -> Serve.Daemon.in_flight d = 1);
  Serve.Daemon.stop d;
  Thread.join runner;
  checks "drain cancelled the deadline-bearing sleep" "deadline_exceeded"
    !result;
  let spans = Span.take sink in
  checkb "spans exported on the cancelled path" true (spans <> []);
  let find name = List.find_opt (fun s -> s.Span.name = name) spans in
  (match find "sleep.wait" with
  | Some s -> checkb "sleep.wait truncated" true s.Span.truncated
  | None -> Alcotest.fail "sleep.wait span missing");
  (match find "request" with
  | Some s -> checkb "root truncated" true s.Span.truncated
  | None -> Alcotest.fail "request span missing");
  (match find "render" with
  | Some s -> checkb "render itself completes" true (not s.Span.truncated)
  | None -> Alcotest.fail "render span missing");
  Serve.Daemon.stop d

(* Satellite: serial vs concurrent traced load is structurally
   identical — same span trees per trace id after timestamp
   normalization — and tracing never changes payload bytes. *)

let test_daemon_traced_loadgen_deterministic () =
  let sink = Span.sink ~capacity:100_000 () in
  with_daemon ~workers:2 ~queue_capacity:16 ~trace:sink (fun _ socket ->
      let untraced = Serve.Loadgen.run ~socket ~total:9 ~clients:1 () in
      checki "warm-up leg exports nothing" 0 (Span.absorbed sink);
      let serial =
        Serve.Loadgen.run ~trace_prefix:"t" ~socket ~total:9 ~clients:1 ()
      in
      let serial_spans = Span.take sink in
      let concurrent =
        Serve.Loadgen.run ~trace_prefix:"t" ~socket ~total:9 ~clients:3 ()
      in
      let concurrent_spans = Span.take sink in
      checki "all requests ok" 18 (serial.Serve.Loadgen.ok + concurrent.Serve.Loadgen.ok);
      checki "tracing does not change payloads" 0
        (Serve.Loadgen.mismatches ~reference:untraced serial);
      checki "serial vs concurrent payloads agree" 0
        (Serve.Loadgen.mismatches ~reference:serial concurrent);
      checki "span count is workload-determined"
        (List.length serial_spans) (List.length concurrent_spans);
      checks "span structure identical serial vs concurrent"
        (Span.render ~normalize:true serial_spans)
        (Span.render ~normalize:true concurrent_spans))

(* -- live metrics ------------------------------------------------------ *)

let test_daemon_metrics_formats () =
  with_daemon (fun _ socket ->
      ignore (rpc_ok socket (req "sleep" [ ("ms", J.Int 0) ]));
      let prom = rpc_ok socket (req "metrics" [ ("format", J.String "prom") ]) in
      (match J.member "content_type" prom with
      | Some (J.String ct) -> checks "content type" Obs.Prom.content_type ct
      | _ -> Alcotest.fail "prom payload has no content_type");
      (match J.member "body" prom with
      | Some (J.String body) ->
          checkb "exposition names the request counter" true
            (contains body "wfde_serve_requests{method=\"sleep\"}");
          checkb "latency histogram exported" true
            (contains body "wfde_serve_latency_ms_bucket");
          checkb "+Inf bucket present" true (contains body "le=\"+Inf\"");
          checkb "dispatch gauges exported" true
            (contains body "wfde_serve_worker_utilization")
      | _ -> Alcotest.fail "prom payload has no body");
      (* explicit and default json formats return the raw document *)
      let dflt = rpc_ok socket (req "metrics" []) in
      checkb "default json has counters" true (J.member "counters" dflt <> None);
      let explicit = rpc_ok socket (req "metrics" [ ("format", J.String "json") ]) in
      checkb "explicit json has counters" true
        (J.member "counters" explicit <> None);
      checks "unknown format rejected" "bad_request"
        (rpc_err socket (req "metrics" [ ("format", J.String "xml") ]));
      checks "unknown metrics param rejected" "bad_request"
        (rpc_err socket (req "metrics" [ ("fmt", J.String "prom") ])))

let test_daemon_slow_log () =
  let path = Filename.temp_file "wfde_slow" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      with_daemon ~slow_ms:0. ~slow_out:oc (fun _ socket ->
          ignore
            (rpc_ok socket (req ~id:(J.String "s1") "sleep" [ ("ms", J.Int 5) ])));
      close_out oc;
      let ic = open_in path in
      let line = input_line ic in
      let extra = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      checkb "exactly one slow line" true (extra = None);
      match J.of_string line with
      | Error e -> Alcotest.failf "slow log line is not JSON: %s" e
      | Ok doc ->
          checkb "event tag" true
            (J.member "event" doc = Some (J.String "slow_request"));
          checkb "method" true (J.member "method" doc = Some (J.String "sleep"));
          checkb "id" true (J.member "id" doc = Some (J.String "s1"));
          checkb "wall_ms present" true (J.member "wall_ms" doc <> None);
          checkb "queue depth present" true
            (J.member "queue_depth" doc <> None))

(* -- loadgen ----------------------------------------------------------- *)

let test_loadgen_deterministic () =
  with_daemon ~workers:2 ~queue_capacity:16 (fun _ socket ->
      let serial = Serve.Loadgen.run ~socket ~total:9 ~clients:1 () in
      let concurrent = Serve.Loadgen.run ~socket ~total:9 ~clients:3 () in
      checki "serial all ok" 9 serial.Serve.Loadgen.ok;
      checki "concurrent all ok" 9 concurrent.Serve.Loadgen.ok;
      checki "no errors" 0
        (serial.Serve.Loadgen.errors + concurrent.Serve.Loadgen.errors
        + serial.Serve.Loadgen.transport_errors
        + concurrent.Serve.Loadgen.transport_errors);
      checki "payload bytes agree" serial.Serve.Loadgen.payload_bytes
        concurrent.Serve.Loadgen.payload_bytes;
      checki "no mismatches" 0
        (Serve.Loadgen.mismatches ~reference:serial concurrent))

(* -- result cache ------------------------------------------------------ *)

let check_params = [
    ("object", J.String "register");
    ("depth", J.Int 3);
    ("horizon", J.Int 60);
  ]

(* Satellite: byte-identity regression for the result cache. For each
   cacheable method, cold miss vs warm hit must be byte-for-byte
   identical; a daemon restarted over the same cache dir serves the
   same bytes from disk; and damaged disk entries silently fall back
   to an identical recompute (modulo embedded wall times for sweep,
   whose document carries timing by design). *)
let test_daemon_cache_byte_identity () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cache = { Serve.Cache.capacity = 64; dir = Some dir } in
  let reqs =
    [
      ("run", req "run" [ ("experiments", J.List [ J.String "e1" ]) ]);
      ("check", req "check" check_params);
      ("sweep", req "sweep" [ ("experiments", J.List [ J.String "e1" ]) ]);
    ]
  in
  let with_cached_daemon f =
    let socket = temp_socket () in
    let d = Serve.Daemon.start ~workers:1 ~queue_capacity:4 ~cache ~socket () in
    Fun.protect ~finally:(fun () -> Serve.Daemon.stop d) (fun () -> f d socket)
  in
  let fetch socket = List.map (fun (n, r) -> (n, rpc_ok socket r)) reqs in
  let raw p = J.to_string p in
  let cold =
    with_cached_daemon (fun d socket ->
        let cold = fetch socket in
        let warm = fetch socket in
        List.iter2
          (fun (n, c) (_, w) ->
            checks (n ^ ": warm hit byte-identical to cold miss") (raw c)
              (raw w))
          cold warm;
        let s = Serve.Daemon.cache_stats d in
        checki "three cold misses" 3 s.Serve.Cache.misses;
        checki "three warm hits" 3 s.Serve.Cache.hits;
        checki "three entries" 3 s.Serve.Cache.entries;
        cold)
  in
  (* restart over the same directory: every payload comes off disk *)
  with_cached_daemon (fun d socket ->
      let disk = fetch socket in
      List.iter2
        (fun (n, c) (_, w) ->
          checks (n ^ ": disk hit after restart byte-identical") (raw c)
            (raw w))
        cold disk;
      checki "all served from disk" 3
        (Serve.Daemon.cache_stats d).Serve.Cache.disk_hits);
  (* damage every entry file: restart must fall back to recompute *)
  Array.iter
    (fun f ->
      let oc = open_out_bin (Filename.concat dir f) in
      output_string oc "garbage, not a cache entry";
      close_out oc)
    (Sys.readdir dir);
  with_cached_daemon (fun d socket ->
      let recomputed = fetch socket in
      List.iter2
        (fun (n, c) (_, w) ->
          if n = "sweep" then
            checks (n ^ ": recompute after corruption matches, sans timing")
              (J.to_string (strip_timing c))
              (J.to_string (strip_timing w))
          else
            checks (n ^ ": recompute after corruption byte-identical") (raw c)
              (raw w))
        cold recomputed;
      let s = Serve.Daemon.cache_stats d in
      checki "corrupt entries detected" 3 s.Serve.Cache.disk_errors;
      checki "all three recomputed" 3 s.Serve.Cache.misses)

(* Satellite: N identical concurrent misses produce ONE engine
   dispatch — the followers coalesce onto the leader's in-flight
   compute and everyone gets the same bytes. *)
let test_daemon_cache_coalescing () =
  with_daemon ~workers:1 ~queue_capacity:4 (fun d socket ->
      (* hold the single worker so the identical requests pile up
         behind one queued compute instead of resolving one by one *)
      let blocker =
        Thread.create
          (fun () -> rpc_ok socket (req "sleep" [ ("ms", J.Int 300) ]))
          ()
      in
      eventually "worker busy" (fun () -> Serve.Daemon.in_flight d = 1);
      let r = req "check" check_params in
      let payloads = Array.make 3 "" in
      let threads =
        Array.init 3 (fun i ->
            Thread.create
              (fun i -> payloads.(i) <- J.to_string (rpc_ok socket r))
              i)
      in
      Array.iter Thread.join threads;
      Thread.join blocker;
      checkb "payloads nonempty" true (payloads.(0) <> "");
      Array.iter
        (fun p -> checks "coalesced payloads identical" payloads.(0) p)
        payloads;
      (* the blocker plus exactly ONE compute for three identical
         misses; cache hits never reach the engine *)
      checki "engine dispatched blocker + one compute" 2
        (Serve.Daemon.dispatched d);
      let s = Serve.Daemon.cache_stats d in
      checki "one miss" 1 s.Serve.Cache.misses;
      checki "two followers hit or coalesced" 2
        (s.Serve.Cache.hits + s.Serve.Cache.coalesced))

(* Satellite: hits bypass the worker fleet — a saturated queue still
   serves cached payloads while uncached misses get [queue_full]. *)
let test_daemon_cache_hit_under_saturation () =
  with_daemon ~workers:1 ~queue_capacity:1 (fun d socket ->
      let cached = req "check" check_params in
      let warm = J.to_string (rpc_ok socket cached) in
      let blocker =
        Thread.create
          (fun () -> rpc_ok socket (req "sleep" [ ("ms", J.Int 300) ]))
          ()
      in
      (* the warm check was dispatch #1 and its in-flight reading can
         linger; only dispatch #2 proves the worker holds the blocker,
         so the next sleep really lands in the queue *)
      eventually "blocker holds the worker" (fun () ->
          Serve.Daemon.dispatched d = 2);
      let queued =
        Thread.create
          (fun () -> rpc_ok socket (req "sleep" [ ("ms", J.Int 0) ]))
          ()
      in
      eventually "queue full" (fun () -> Serve.Daemon.queue_depth d = 1);
      checks "cached payload served while saturated" warm
        (J.to_string (rpc_ok socket cached));
      checks "uncached miss still rejected" "queue_full"
        (rpc_err socket
           (req "check"
              [
                ("object", J.String "register");
                ("depth", J.Int 4);
                ("horizon", J.Int 60);
              ]));
      Thread.join blocker;
      Thread.join queued)

(* Satellite: during a graceful drain, buffered pipelined requests are
   still served from the cache (byte-identical to the warm payload)
   while uncached misses are refused with [shutting_down]. *)
let test_daemon_cache_hit_during_drain () =
  let socket = temp_socket () in
  let d = Serve.Daemon.start ~workers:1 ~queue_capacity:4 ~socket () in
  let check_req id = req ~id:(J.String id) "check" check_params in
  let warm = rpc_ok socket (check_req "w") in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let line r = J.to_string (Serve.Proto.request_to_json r) ^ "\n" in
  let miss_req =
    req ~id:(J.String "m") "check"
      [
        ("object", J.String "register");
        ("depth", J.Int 4);
        ("horizon", J.Int 60);
      ]
  in
  (* one in-flight sleep, one cached check, one uncached check — all
     buffered daemon-side before the drain begins *)
  let all =
    line (req ~id:(J.String "a") "sleep" [ ("ms", J.Int 300) ])
    ^ line (check_req "b") ^ line miss_req
  in
  let b = Bytes.of_string all in
  ignore (Unix.write fd b 0 (Bytes.length b));
  (* the warm-up check was engine dispatch #1 and can leave a stale
     in-flight reading, so gate on the SLEEP being dispatch #2 — only
     then has the conn thread consumed line (a) and buffered (b)/(m) *)
  eventually "sleep is the second dispatch" (fun () ->
      Serve.Daemon.dispatched d = 2);
  let stopper = Thread.create (fun () -> Serve.Daemon.stop d) () in
  eventually "drain began" (fun () -> Serve.Daemon.draining d);
  let pending = ref "" in
  (match Serve.Proto.parse_response (read_response_line fd pending) with
  | Ok { Serve.Proto.resp_id; result = Ok _; _ } ->
      checkb "in-flight sleep completed" true (resp_id = J.String "a")
  | _ -> Alcotest.fail "first drain response malformed");
  (match Serve.Proto.parse_response (read_response_line fd pending) with
  | Ok { Serve.Proto.resp_id; result = Ok p; _ } ->
      checkb "id b" true (resp_id = J.String "b");
      checks "cache hit served during drain, byte-identical"
        (J.to_string warm) (J.to_string p)
  | _ -> Alcotest.fail "cached request refused during drain");
  (match Serve.Proto.parse_response (read_response_line fd pending) with
  | Ok { Serve.Proto.resp_id; result = Error e; _ } ->
      checkb "id m" true (resp_id = J.String "m");
      checkb "uncached miss refused" true
        (e.Serve.Proto.code = Serve.Proto.Shutting_down)
  | _ -> Alcotest.fail "uncached drain response malformed");
  Unix.close fd;
  Thread.join stopper;
  Serve.Daemon.stop d

let test_daemon_cache_rpc () =
  with_daemon (fun _ socket ->
      let stats () = rpc_ok socket (req "cache" []) in
      checkb "enabled by default" true
        (J.member "enabled" (stats ()) = Some (J.Bool true));
      ignore (rpc_ok socket (req "check" check_params));
      ignore (rpc_ok socket (req "check" check_params));
      let s = stats () in
      checkb "one miss" true (J.member "misses" s = Some (J.Int 1));
      checkb "one hit" true (J.member "hits" s = Some (J.Int 1));
      checkb "one entry" true (J.member "entries" s = Some (J.Int 1));
      (* explicit op=stats is the same payload shape *)
      checkb "op=stats accepted" true
        (J.member "entries" (rpc_ok socket (req "cache" [ ("op", J.String "stats") ]))
        <> None);
      let cleared = rpc_ok socket (req "cache" [ ("op", J.String "clear") ]) in
      checkb "clear empties the cache" true
        (J.member "entries" cleared = Some (J.Int 0));
      checkb "clear counted" true (J.member "clears" cleared = Some (J.Int 1));
      checks "unknown op rejected" "bad_request"
        (rpc_err socket (req "cache" [ ("op", J.String "flush") ]));
      checks "unknown param rejected" "bad_request"
        (rpc_err socket (req "cache" [ ("ops", J.String "stats") ])))

(* Cache traffic shows up in the exported metrics, both formats. *)
let test_daemon_cache_metrics () =
  with_daemon (fun _ socket ->
      ignore (rpc_ok socket (req "check" check_params));
      ignore (rpc_ok socket (req "check" check_params));
      let prom = rpc_ok socket (req "metrics" [ ("format", J.String "prom") ]) in
      (match J.member "body" prom with
      | Some (J.String body) ->
          checkb "hit counter exported" true
            (contains body "wfde_serve_cache_hits");
          checkb "miss counter exported" true
            (contains body "wfde_serve_cache_misses");
          checkb "entries gauge exported" true
            (contains body "wfde_serve_cache_entries")
      | _ -> Alcotest.fail "prom payload has no body");
      let doc = rpc_ok socket (req "metrics" []) in
      match J.member "counters" doc with
      | Some counters -> (
          (* the registry is process-wide, so other tests' cache
             traffic accumulates — assert presence, not an exact count *)
          match J.member "serve.cache.hits" counters with
          | Some (J.Int n) -> checkb "json hit counter positive" true (n >= 1)
          | _ -> Alcotest.fail "serve.cache.hits missing from metrics json")
      | None -> Alcotest.fail "metrics json has no counters")

(* Cache outcomes are visible in the trace tree: a first traced check
   carries cache.miss plus the engine spine, a second carries
   cache.hit and never reaches the engine. *)
let test_daemon_cache_spans () =
  let sink = Span.sink () in
  with_daemon ~trace:sink (fun _ socket ->
      let r t = req ~trace:t "check" check_params in
      ignore (rpc_ok socket (r "c1"));
      let names1 = List.map (fun s -> s.Span.name) (Span.take sink) in
      checkb "miss span exported" true (List.mem "cache.miss" names1);
      checkb "miss still executes" true (List.mem "execute" names1);
      ignore (rpc_ok socket (r "c2"));
      let names2 = List.map (fun s -> s.Span.name) (Span.take sink) in
      checkb "hit span exported" true (List.mem "cache.hit" names2);
      checkb "hit bypasses the engine" true (not (List.mem "execute" names2)))

let suite =
  [
    Alcotest.test_case "proto: request roundtrip" `Quick test_proto_roundtrip;
    Alcotest.test_case "proto: malformed requests" `Quick test_proto_errors;
    Alcotest.test_case "proto: response roundtrip" `Quick
      test_proto_response_roundtrip;
    Alcotest.test_case "proto: rendered splice matches document render" `Quick
      test_proto_rendered_response;
    Alcotest.test_case "proto: error exit codes" `Quick test_proto_exit_codes;
    Alcotest.test_case "ivar: fill/read/peek" `Quick test_ivar;
    Alcotest.test_case "jobq: fifo, bounds, close drains" `Quick
      test_jobq_order_and_bounds;
    Alcotest.test_case "engine: jobs run and return" `Quick
      test_engine_runs_jobs;
    Alcotest.test_case "engine: queue-full backpressure" `Quick
      test_engine_backpressure;
    Alcotest.test_case "engine: drain completes queued work" `Quick
      test_engine_drain_completes_queued;
    Alcotest.test_case "service: validation errors" `Quick
      test_service_validation;
    Alcotest.test_case "service: payloads match direct calls" `Quick
      test_service_payloads_match_direct;
    Alcotest.test_case "service: cooperative deadlines" `Quick
      test_service_deadline;
    Alcotest.test_case "daemon: health and id echo" `Quick
      test_daemon_health_and_echo;
    Alcotest.test_case "daemon: serial/concurrent/direct determinism" `Quick
      test_daemon_determinism;
    Alcotest.test_case "daemon: queue-full under a filled queue" `Quick
      test_daemon_queue_full;
    Alcotest.test_case "daemon: deadline expiry reclaims the slot" `Quick
      test_daemon_deadline_reclaims_slot;
    Alcotest.test_case "daemon: deadline expires while queued" `Quick
      test_daemon_queued_past_deadline;
    Alcotest.test_case "daemon: graceful drain" `Quick
      test_daemon_graceful_drain;
    Alcotest.test_case "daemon: traced request exports spans" `Quick
      test_daemon_traced_request;
    Alcotest.test_case "daemon: drain truncates open spans" `Quick
      test_daemon_drain_truncates_spans;
    Alcotest.test_case "daemon: traced loadgen deterministic" `Quick
      test_daemon_traced_loadgen_deterministic;
    Alcotest.test_case "daemon: metrics formats (json/prom)" `Quick
      test_daemon_metrics_formats;
    Alcotest.test_case "daemon: slow-request log" `Quick test_daemon_slow_log;
    Alcotest.test_case "loadgen: serial vs concurrent identical" `Quick
      test_loadgen_deterministic;
    Alcotest.test_case "cache: cold/warm/disk byte-identity per method" `Quick
      test_daemon_cache_byte_identity;
    Alcotest.test_case "cache: identical misses coalesce to one compute"
      `Quick test_daemon_cache_coalescing;
    Alcotest.test_case "cache: hits served while the fleet is saturated"
      `Quick test_daemon_cache_hit_under_saturation;
    Alcotest.test_case "cache: hits served during graceful drain" `Quick
      test_daemon_cache_hit_during_drain;
    Alcotest.test_case "cache: RPC stats and clear" `Quick
      test_daemon_cache_rpc;
    Alcotest.test_case "cache: counters exported via metrics" `Quick
      test_daemon_cache_metrics;
    Alcotest.test_case "cache: hit/miss spans in the trace tree" `Quick
      test_daemon_cache_spans;
  ]
