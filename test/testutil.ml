(* Helpers shared by the serve, cache, and fabric test files, so each
   suite stops re-growing its own copies of substring search, temp
   paths, recursive delete, and condition polling. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Per-test paths backed by [Filename.temp_file]'s unique-name
   guarantee, so concurrent test runners (parallel [dune runtest],
   several checkouts sharing one TMPDIR) can never collide — a
   pid+counter scheme would reuse paths across runners that happen to
   share a pid namespace. For sockets the file itself is removed at
   once: binding a Unix socket needs the path free. *)
let temp_socket () =
  let path = Filename.temp_file "wfde-test" ".sock" in
  Sys.remove path;
  path

let temp_dir ?(prefix = "wfde-test-dir") () =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* Poll until [cond] holds; the daemon tests use this to sequence
   against worker state instead of sleeping blindly. *)
let eventually ?(timeout = 5.0) msg cond =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Thread.yield ();
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

(* The built CLI binary, for tests that need a real child process to
   SIGKILL (an in-process daemon cannot crash without taking the test
   runner with it). Tests run from _build/default/test, so the binary
   sits one directory over; WFDE_BIN overrides for odd layouts. *)
let wfde_binary () =
  match Sys.getenv_opt "WFDE_BIN" with
  | Some p -> p
  | None ->
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/wfde_cli.exe"
