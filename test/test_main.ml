let () =
  Alcotest.run "wfde"
    [
      ("kernel", Test_kernel.suite);
      ("memory", Test_memory.suite);
      ("detectors", Test_detectors.suite);
      ("converge", Test_converge.suite);
      ("agreement", Test_agreement.suite);
      ("reduction", Test_reduction.suite);
      ("obs", Test_obs.suite);
      ("span", Test_span.suite);
      ("exec", Test_exec.suite);
      ("wfde", Test_wfde.suite);
      ("faults", Test_faults.suite);
      ("explore", Test_explore.suite);
      ("check", Test_check.suite);
      ("dpor-golden", Test_dpor_golden.suite);
      ("dpor-diff", Test_dpor_diff.suite);
      ("lin-diff", Test_lin_diff.suite);
      ("oracles", Test_oracles.suite);
      ("network", Test_network.suite);
      ("link", Test_link.suite);
      ("hb", Test_hb.suite);
      ("abd", Test_abd.suite);
      ("msg-consensus", Test_msg_consensus.suite);
      ("serve", Test_serve.suite);
      ("cache", Test_cache.suite);
      ("fabric", Test_fabric.suite);
    ]
