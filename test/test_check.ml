(* The model-checking layer: Wing–Gong linearizability on forged and
   recorded histories, ddmin shrinking, the DPOR pruning bound, and the
   three planted mutants — each must be caught with a shrunk,
   replayable counterexample, and the unmutated objects must pass. *)

open Kernel
open Check

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let is_ok = function Ok () -> true | Error _ -> false

(* ------------------------------------------------------------- Lin --- *)

let reg_spec = Histories.register_spec ~init:0

let wr v ~at ~pid =
  Lin.completed ~op:(Histories.Reg_write v) ~result:Histories.Reg_unit
    ~invoked:at ~responded:at ~pid

let rd v ~invoked ~responded ~pid =
  Lin.completed ~op:Histories.Reg_read ~result:(Histories.Reg_val v) ~invoked
    ~responded ~pid

let test_lin_sequential () =
  checkb "write;read linearizable" true
    (is_ok (Lin.check reg_spec [ wr 1 ~at:1 ~pid:0; rd 1 ~invoked:2 ~responded:3 ~pid:0 ]));
  checkb "stale read rejected" false
    (is_ok (Lin.check reg_spec [ wr 1 ~at:1 ~pid:0; rd 0 ~invoked:2 ~responded:3 ~pid:0 ]));
  checkb "empty history" true (is_ok (Lin.check reg_spec []))

let test_lin_overlap () =
  (* overlapping write and read: both orders legal, either value ok *)
  let history v =
    [ wr 5 ~at:4 ~pid:0; rd v ~invoked:3 ~responded:6 ~pid:1 ]
  in
  checkb "overlapping read of new value" true (is_ok (Lin.check reg_spec (history 5)));
  checkb "overlapping read of old value" true (is_ok (Lin.check reg_spec (history 0)))

let test_lin_new_old_inversion () =
  (* reads in real-time order seeing new then old: the classic
     atomicity violation *)
  let history =
    [
      wr 7 ~at:2 ~pid:0;
      rd 7 ~invoked:3 ~responded:4 ~pid:1;
      rd 0 ~invoked:5 ~responded:6 ~pid:1;
    ]
  in
  checkb "new/old inversion rejected" false (is_ok (Lin.check reg_spec history))

let test_lin_pending_may_apply () =
  let p = Lin.pending ~op:(Histories.Reg_write 9) ~invoked:1 ~pid:0 in
  checkb "pending write may take effect" true
    (is_ok (Lin.check reg_spec [ p; rd 9 ~invoked:2 ~responded:3 ~pid:1 ]));
  checkb "pending write may never take effect" true
    (is_ok (Lin.check reg_spec [ p; rd 0 ~invoked:2 ~responded:3 ~pid:1 ]));
  (* but it takes effect at most once: 9 then 0 then 9 again is not
     explainable by one pending write *)
  checkb "pending write applies at most once" false
    (is_ok
       (Lin.check reg_spec
          [
            p;
            rd 9 ~invoked:2 ~responded:3 ~pid:1;
            rd 0 ~invoked:4 ~responded:5 ~pid:1;
            rd 9 ~invoked:6 ~responded:7 ~pid:1;
          ]))

let test_lin_pending_before_invocation () =
  (* a pending op cannot be linearized before its own invocation *)
  checkb "effect not before invocation" false
    (is_ok
       (Lin.check reg_spec
          [
            Lin.pending ~op:(Histories.Reg_write 9) ~invoked:5 ~pid:0;
            rd 9 ~invoked:1 ~responded:2 ~pid:1;
          ]))

let test_lin_event_limit () =
  let history =
    List.init 63 (fun i -> wr i ~at:i ~pid:0)
  in
  Alcotest.check_raises "63 events rejected"
    (Invalid_argument "Lin.check: more than 62 events") (fun () ->
      ignore (Lin.check reg_spec history))

(* ------------------------------------------------------- histories --- *)

let test_logged_register_history () =
  let log = Histories.log () in
  let reg = Memory.Register.create ~name:"r" 0 in
  let body pid () =
    if pid = 0 then Histories.logged_write log reg ~me:pid 42
    else ignore (Histories.logged_read log reg ~me:pid)
  in
  let result =
    Run.exec
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:2)
      ~policy:(Policy.round_robin ())
      ~procs:(fun pid -> [ body pid ])
      ()
  in
  ignore result;
  let events = Histories.events log in
  checki "two events" 2 (List.length events);
  checkb "history linearizable" true
    (is_ok (Lin.check (Histories.register_spec ~init:0) events));
  List.iter
    (fun e ->
      checkb "completed" true (e.Lin.result <> None);
      checkb "interval sane" true (e.Lin.invoked <= e.Lin.responded))
    events

let test_abd_history_pending () =
  (* a seeded attempt with no completed write surfaces as pending *)
  let abd = Memory.Abd.create ~name:"a" ~n_plus_1:3 ~init:0 in
  Memory.Abd.unsafe_attempt abd ~key:"x"
    ~tag:{ Memory.Abd.seq = 1; writer = 2 }
    5 ~invoked:0;
  let events = Histories.abd_history abd in
  checki "one pending event" 1 (List.length events);
  match events with
  | [ e ] ->
      checkb "pending" true (e.Lin.result = None);
      checkb "write of 5" true (e.Lin.op = Histories.Abd_write { key = "x"; value = 5 })
  | _ -> Alcotest.fail "expected exactly one event"

(* ----------------------------------------------------------- ddmin --- *)

let test_ddmin_minimal_pair () =
  (* failure needs 3 and 7 both present: ddmin must isolate exactly them *)
  let test xs = List.mem 3 xs && List.mem 7 xs in
  Alcotest.check
    (Alcotest.list Alcotest.int)
    "isolates the pair" [ 3; 7 ]
    (Shrink.ddmin ~test [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let test_ddmin_empty_and_singleton () =
  let always _ = true in
  Alcotest.check (Alcotest.list Alcotest.int) "empty input" [] (Shrink.ddmin ~test:always []);
  Alcotest.check (Alcotest.list Alcotest.int) "vacuous failure" []
    (Shrink.ddmin ~test:always [ 1; 2; 3 ]);
  let needs_all xs = List.length xs >= 3 in
  checki "irreducible input survives" 3
    (List.length (Shrink.ddmin ~test:needs_all [ 1; 2; 3 ]))

let test_minimize_synthetic () =
  (* replay "fails" iff the prefix holds two p2-entries and p1 is
     crashed; minimize must drop the noise entries and the other crash *)
  let replay ~pattern ~prefix =
    let crashed p = Failure_pattern.crash_time pattern p <> Failure_pattern.never in
    if crashed 0 && List.length (List.filter (fun p -> p = 1) prefix) >= 2 then
      Some "boom"
    else None
  in
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (0, 5); (2, 9) ] in
  match Shrink.minimize ~replay ~pattern ~prefix:[ 0; 1; 2; 1; 0; 1 ] with
  | None -> Alcotest.fail "minimize lost the failure"
  | Some (pat, prefix, report) ->
      Alcotest.check (Alcotest.string) "report" "boom" report;
      Alcotest.check (Alcotest.list Alcotest.int) "minimal prefix" [ 1; 1 ] prefix;
      checkb "p1 crash kept" true
        (Failure_pattern.crash_time pat 0 <> Failure_pattern.never);
      checkb "p3 crash dropped" true
        (Failure_pattern.crash_time pat 2 = Failure_pattern.never)

let test_minimize_rejects_nonreproducing () =
  let replay ~pattern:_ ~prefix:_ = None in
  checkb "non-reproducing input refused" true
    (Shrink.minimize ~replay
       ~pattern:(Failure_pattern.no_failures ~n_plus_1:2)
       ~prefix:[ 0; 1 ]
    = None)

(* ------------------------------------------------- clean scenarios --- *)

let test_clean_scenarios_pass () =
  List.iter
    (fun (obj, procs, depth) ->
      let o = Wfde.Harness.check_exhaustive ~procs ~depth obj in
      checkb
        (Printf.sprintf "%s clean" (Scenario.to_string obj))
        true
        (o.Wfde.Harness.violation = None))
    [
      (Scenario.Register, 2, 6);
      (Scenario.Snapshot, 2, 6);
      (Scenario.Commit_adopt, 2, 6);
      (Scenario.Abd, 3, 5);
    ]

(* --------------------------------------------------------- mutants --- *)

(* Catch the mutant, then replay its shrunk counterexample from scratch
   through Policy.script to prove the report is reproducible. *)
let assert_mutant_caught ~mutant ~obj ~procs ~depth =
  let o = Wfde.Harness.check_exhaustive ~procs ~depth ~mutant obj in
  match o.Wfde.Harness.violation with
  | None ->
      Alcotest.failf "%s not caught on %s" (Mutant.to_string mutant)
        (Scenario.to_string obj)
  | Some v ->
      checkb "shrunk and confirmed" true v.Wfde.Harness.shrunk;
      let replayed =
        Mutant.with_ (Some mutant) (fun () ->
            let fibers, check = Scenario.make obj ~procs () in
            let result =
              Run.exec ~pattern:v.Wfde.Harness.cex_pattern
                ~policy:
                  (Policy.script v.Wfde.Harness.cex_prefix
                     ~then_:(Policy.round_robin ()))
                ~horizon:o.Wfde.Harness.check_horizon ~procs:fibers ()
            in
            check result.Run.trace)
      in
      (match replayed with
      | Error report ->
          Alcotest.check Alcotest.string "replay reproduces the report"
            v.Wfde.Harness.cex_report report
      | Ok () -> Alcotest.fail "shrunk counterexample did not replay");
      (* the planted bug must not be blamed on crashes it does not need:
         drop-phase2 and single-collect fail crash-free *)
      if mutant <> Mutant.Abd_skip_write_back then
        checkb "no crashes needed" true
          (Failure_pattern.correct v.Wfde.Harness.cex_pattern
          |> Pid.Set.cardinal
          = Failure_pattern.n_plus_1 v.Wfde.Harness.cex_pattern)

let test_mutant_drop_phase2 () =
  assert_mutant_caught ~mutant:Mutant.Converge_drop_phase2
    ~obj:Scenario.Commit_adopt ~procs:2 ~depth:6

let test_mutant_single_collect () =
  assert_mutant_caught ~mutant:Mutant.Snapshot_single_collect
    ~obj:Scenario.Snapshot ~procs:3 ~depth:12

let test_mutant_skip_write_back () =
  assert_mutant_caught ~mutant:Mutant.Abd_skip_write_back ~obj:Scenario.Abd
    ~procs:3 ~depth:6

let test_mutant_names_roundtrip () =
  List.iter
    (fun m ->
      match Mutant.of_string (Mutant.to_string m) with
      | Ok m' -> checkb (Mutant.to_string m) true (m = m')
      | Error e -> Alcotest.fail e)
    Mutant.all;
  checkb "unknown rejected" true (Result.is_error (Mutant.of_string "nope"))

(* ---------------------------------------------------- 1-minimality --- *)

(* Satellite property of the shrinker: on every planted mutant's shrunk
   counterexample, removing any single schedule entry or any single
   crash makes the bug vanish under Policy.script replay. The shrink
   fixpoint (pattern pass and ddmin pass alternate until neither
   changes) is what guarantees this jointly, not per-side. *)

let replay_fails ~mutant ~obj ~procs ~horizon ~pattern ~prefix =
  Mutant.with_ (Some mutant) (fun () ->
      let fibers, check = Scenario.make obj ~procs () in
      let result =
        Run.exec ~pattern
          ~policy:(Policy.script prefix ~then_:(Policy.round_robin ()))
          ~horizon ~procs:fibers ()
      in
      Result.is_error (check result.Run.trace))

let drop_nth n xs = List.filteri (fun i _ -> i <> n) xs

let assert_one_minimal ~mutant ~obj ~procs ~depth =
  let o = Wfde.Harness.check_exhaustive ~procs ~depth ~mutant obj in
  match o.Wfde.Harness.violation with
  | None -> Alcotest.failf "%s not caught" (Mutant.to_string mutant)
  | Some v ->
      let pattern = v.Wfde.Harness.cex_pattern in
      let prefix = v.Wfde.Harness.cex_prefix in
      let horizon = o.Wfde.Harness.check_horizon in
      checkb "shrunk" true v.Wfde.Harness.shrunk;
      checkb "shrunk pair still fails" true
        (replay_fails ~mutant ~obj ~procs ~horizon ~pattern ~prefix);
      List.iteri
        (fun i _ ->
          checkb
            (Printf.sprintf "dropping schedule entry %d/%d cures it" i
               (List.length prefix))
            false
            (replay_fails ~mutant ~obj ~procs ~horizon ~pattern
               ~prefix:(drop_nth i prefix)))
        prefix;
      let n_plus_1 = Failure_pattern.n_plus_1 pattern in
      for p = 0 to n_plus_1 - 1 do
        let t = Failure_pattern.crash_time pattern p in
        if t <> Failure_pattern.never then begin
          let crashes =
            List.filter_map
              (fun q ->
                if q = p then None
                else
                  let tq = Failure_pattern.crash_time pattern q in
                  if tq = Failure_pattern.never then None else Some (q, tq))
              (List.init n_plus_1 Fun.id)
          in
          let pattern' = Failure_pattern.make ~n_plus_1 ~crashes in
          checkb
            (Printf.sprintf "dropping crash of p%d cures it" (p + 1))
            false
            (replay_fails ~mutant ~obj ~procs ~horizon ~pattern:pattern'
               ~prefix)
        end
      done

let test_one_minimal_drop_phase2 () =
  assert_one_minimal ~mutant:Mutant.Converge_drop_phase2
    ~obj:Scenario.Commit_adopt ~procs:2 ~depth:6

let test_one_minimal_single_collect () =
  assert_one_minimal ~mutant:Mutant.Snapshot_single_collect
    ~obj:Scenario.Snapshot ~procs:3 ~depth:12

let test_one_minimal_skip_write_back () =
  assert_one_minimal ~mutant:Mutant.Abd_skip_write_back ~obj:Scenario.Abd
    ~procs:3 ~depth:6

(* ---------------------------------------------------------- budget --- *)

let explore_reg ?budget () =
  Explore.exhaustive_prefix
    ~pattern:(Failure_pattern.no_failures ~n_plus_1:2)
    ~depth:6 ~horizon:400
    ?budget
    ~make:(Scenario.make Scenario.Register ~procs:2)
    ()

let test_budget_boundaries () =
  let free = explore_reg () in
  checkb "reference run explores something" true (free.Explore.executions > 1);
  (* max_int means unbounded: identical outcome *)
  let capped = explore_reg ~budget:Explore.unbounded () in
  checki "budget = unbounded is a no-op" free.Explore.executions
    capped.Explore.executions;
  (* budget = 1: exactly one execution, then truncation *)
  let one = explore_reg ~budget:1 () in
  checki "budget = 1 runs once" 1 one.Explore.executions;
  (* budget = the exact execution count: no truncation, same outcome *)
  let exact = explore_reg ~budget:free.Explore.executions () in
  checki "exact budget does not truncate" free.Explore.executions
    exact.Explore.executions;
  (* one less does truncate *)
  let less = explore_reg ~budget:(free.Explore.executions - 1) () in
  checki "budget - 1 truncates" (free.Explore.executions - 1)
    less.Explore.executions

let test_count_schedules_saturates () =
  (* 3^1000 overflows; count_schedules must return exactly unbounded,
     so that feeding it back as a budget imposes no limit *)
  let c = Explore.count_schedules ~n_plus_1:3 ~depth:1000 in
  checki "saturates to unbounded" Explore.unbounded c;
  let free = explore_reg () in
  let with_sat = explore_reg ~budget:c () in
  checki "saturated count as budget is unbounded" free.Explore.executions
    with_sat.Explore.executions;
  (* non-saturating cases still exact *)
  checki "3^4" 81 (Explore.count_schedules ~n_plus_1:3 ~depth:4);
  checki "depth 0" 1 (Explore.count_schedules ~n_plus_1:5 ~depth:0);
  (* sat_add saturates instead of wrapping *)
  checki "sat_add caps" Explore.unbounded
    (Explore.sat_add (Explore.unbounded - 1) 2);
  checki "sat_add exact below cap" 7 (Explore.sat_add 3 4)

(* --------------------------------------------------------- pruning --- *)

let test_dpor_prunes_10x_on_abd () =
  (* acceptance criterion: 3-process ABD at depth 10 in >= 10x fewer
     executions than unpruned enumeration, measured via Obs.Metrics *)
  let m = Obs.Metrics.counter "check.dpor.executions" in
  let before = Obs.Metrics.counter_value m in
  let outcome =
    Dpor.explore
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:3)
      ~depth:10 ~horizon:400
      ~make:(Scenario.make Scenario.Abd ~procs:3)
      ()
  in
  checkb "no violation" true (outcome.Dpor.counterexample = None);
  let explored = Obs.Metrics.counter_value m - before in
  checki "metrics agree with stats" outcome.Dpor.stats.Dpor.executions explored;
  let naive_bound = Explore.count_schedules ~n_plus_1:3 ~depth:10 in
  checkb
    (Printf.sprintf "10x pruning (%d * 10 <= %d)" explored naive_bound)
    true
    (explored * 10 <= naive_bound)

let suite =
  [
    Alcotest.test_case "lin: sequential register" `Quick test_lin_sequential;
    Alcotest.test_case "lin: overlapping ops" `Quick test_lin_overlap;
    Alcotest.test_case "lin: new/old inversion" `Quick test_lin_new_old_inversion;
    Alcotest.test_case "lin: pending semantics" `Quick test_lin_pending_may_apply;
    Alcotest.test_case "lin: pending after invocation" `Quick
      test_lin_pending_before_invocation;
    Alcotest.test_case "lin: event limit" `Quick test_lin_event_limit;
    Alcotest.test_case "histories: logged register ops" `Quick
      test_logged_register_history;
    Alcotest.test_case "histories: abd pending extraction" `Quick
      test_abd_history_pending;
    Alcotest.test_case "ddmin: minimal pair" `Quick test_ddmin_minimal_pair;
    Alcotest.test_case "ddmin: edge cases" `Quick test_ddmin_empty_and_singleton;
    Alcotest.test_case "minimize: synthetic replay" `Quick test_minimize_synthetic;
    Alcotest.test_case "minimize: rejects non-reproducing" `Quick
      test_minimize_rejects_nonreproducing;
    Alcotest.test_case "clean scenarios pass" `Quick test_clean_scenarios_pass;
    Alcotest.test_case "mutant: converge drop-phase2" `Quick
      test_mutant_drop_phase2;
    Alcotest.test_case "mutant: snapshot single-collect" `Slow
      test_mutant_single_collect;
    Alcotest.test_case "mutant: abd skip-write-back" `Quick
      test_mutant_skip_write_back;
    Alcotest.test_case "mutant names roundtrip" `Quick test_mutant_names_roundtrip;
    Alcotest.test_case "shrink 1-minimal: converge drop-phase2" `Quick
      test_one_minimal_drop_phase2;
    Alcotest.test_case "shrink 1-minimal: snapshot single-collect" `Slow
      test_one_minimal_single_collect;
    Alcotest.test_case "shrink 1-minimal: abd skip-write-back" `Quick
      test_one_minimal_skip_write_back;
    Alcotest.test_case "budget boundaries" `Quick test_budget_boundaries;
    Alcotest.test_case "count_schedules saturates" `Quick
      test_count_schedules_saturates;
    Alcotest.test_case "dpor prunes >=10x on abd depth 10" `Slow
      test_dpor_prunes_10x_on_abd;
  ]
