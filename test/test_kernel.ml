(* Unit and property tests for the simulation kernel: pids, rng, failure
   patterns, fibers, scheduler, policies, trace oracles. *)

open Kernel

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* -- Pid ---------------------------------------------------------------- *)

let test_pid_all () =
  checki "5 pids" 5 (List.length (Pid.all ~n_plus_1:5));
  check Alcotest.string "paper naming" "p1" (Pid.to_string (Pid.of_index 0));
  check Alcotest.string "paper naming" "p4" (Pid.to_string (Pid.of_index 3))

let test_pid_set_complement () =
  let s = Pid.Set.of_indices [ 0; 2 ] in
  let c = Pid.Set.complement ~n_plus_1:4 s in
  checkb "p2 in complement" true (Pid.Set.mem (Pid.of_index 1) c);
  checkb "p1 not in complement" false (Pid.Set.mem (Pid.of_index 0) c);
  checki "complement size" 2 (Pid.Set.cardinal c)

let test_pid_subsets () =
  (* 2^3 - 1 non-empty subsets of a 3-process system *)
  checki "subset count" 7 (List.length (Pid.Set.subsets ~n_plus_1:3));
  List.iter
    (fun s -> checkb "non-empty" false (Pid.Set.is_empty s))
    (Pid.Set.subsets ~n_plus_1:3)

(* -- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    checkb "in range" true (v >= 0 && v < 10);
    let w = Rng.int_in r 5 9 in
    checkb "in closed range" true (w >= 5 && w <= 9)
  done

let test_rng_subset_constraints () =
  let r = Rng.create 3 in
  for _ = 1 to 200 do
    let s = Rng.subset r ~proper:true ~nonempty:true [ 1; 2; 3; 4 ] in
    let k = List.length s in
    checkb "proper nonempty" true (k >= 1 && k <= 3)
  done

(* -- Failure patterns ---------------------------------------------------- *)

let test_pattern_basics () =
  let p = Failure_pattern.make ~n_plus_1:4 ~crashes:[ (1, 10); (3, 0) ] in
  checkb "p2 crashed at 10" true (Failure_pattern.crashed_at p 1 10);
  checkb "p2 alive at 9" false (Failure_pattern.crashed_at p 1 9);
  checkb "p4 crashed at 0" true (Failure_pattern.crashed_at p 3 0);
  checki "two faulty" 2 (Pid.Set.cardinal (Failure_pattern.faulty p));
  checki "two correct" 2 (Pid.Set.cardinal (Failure_pattern.correct p));
  checki "max crash" 10 (Failure_pattern.max_crash_time p);
  checkb "in E_2" true (Failure_pattern.env_ok ~f:2 p);
  checkb "not in E_1" false (Failure_pattern.env_ok ~f:1 p)

let test_pattern_rejects_all_faulty () =
  Alcotest.check_raises "all faulty rejected"
    (Invalid_argument
       "Failure_pattern.make: at least one process must be correct")
    (fun () ->
      ignore (Failure_pattern.make ~n_plus_1:2 ~crashes:[ (0, 1); (1, 5) ]))

let test_pattern_random_respects_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    let p = Failure_pattern.random rng ~n_plus_1:5 ~max_faulty:3 ~latest:50 in
    checkb "at most 3 faulty" true
      (Pid.Set.cardinal (Failure_pattern.faulty p) <= 3);
    checkb "some correct" true
      (not (Pid.Set.is_empty (Failure_pattern.correct p)));
    checkb "crash times bounded" true (Failure_pattern.max_crash_time p <= 50)
  done

(* -- Scheduler / fibers -------------------------------------------------- *)

(* A process that takes [k] nop steps. *)
let nops k () =
  for _ = 1 to k do
    Sim.yield ()
  done

let test_run_all_steps_counted () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:3 in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ nops 5 ])
      ()
  in
  checkb "quiescent" true (result.outcome = Scheduler.Quiescent);
  checki "15 steps" 15 result.steps;
  List.iter
    (fun p -> checki "5 steps each" 5 (Trace.steps_of result.trace p))
    (Pid.all ~n_plus_1:3)

let test_crash_stops_process () =
  let pattern = Failure_pattern.make ~n_plus_1:2 ~crashes:[ (0, 4) ] in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ nops 100 ])
      ()
  in
  checkb "p1 stopped early" true (Trace.steps_of result.trace 0 < 100);
  checki "p2 ran to completion" 100 (Trace.steps_of result.trace 1);
  let violations = Oracle.check_run_conditions pattern result.trace in
  checki "no violations" 0 (List.length violations)

let test_crash_at_zero_means_no_steps () =
  let pattern = Failure_pattern.make ~n_plus_1:2 ~crashes:[ (0, 0) ] in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ nops 10 ])
      ()
  in
  checki "p1 took no steps" 0 (Trace.steps_of result.trace 0);
  checki "p2 took all steps" 10 (Trace.steps_of result.trace 1)

let test_horizon_stops_run () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:2 in
  let forever () =
    while true do
      Sim.yield ()
    done
  in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~horizon:50
      ~procs:(fun _ -> [ forever ])
      ()
  in
  checkb "horizon" true (result.outcome = Scheduler.Horizon);
  checki "50 steps" 50 result.steps

let test_solo_policy_starves_others () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:3 in
  let result =
    Run.exec ~pattern ~policy:(Policy.solo 1)
      ~procs:(fun _ -> [ nops 20 ])
      ()
  in
  checki "p2 alone ran" 20 (Trace.steps_of result.trace 1);
  checki "p1 starved" 0 (Trace.steps_of result.trace 0);
  checki "p3 starved" 0 (Trace.steps_of result.trace 2);
  (* solo stops once its process is done *)
  checkb "policy stop" true (result.outcome = Scheduler.Policy_stop)

let test_script_policy_order () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:3 in
  let order = ref [] in
  let remember pid () =
    for _ = 1 to 2 do
      Sim.atomic Sim.Nop (fun ctx -> order := ctx.Sim.pid :: !order);
      ignore pid
    done
  in
  let result =
    Run.exec ~pattern
      ~policy:
        (Policy.script [ 2; 0; 1; 2; 0; 1 ] ~then_:(Policy.round_robin ()))
      ~procs:(fun pid -> [ remember pid ])
      ()
  in
  checkb "quiescent" true (result.outcome = Scheduler.Quiescent);
  check
    (Alcotest.list Alcotest.int)
    "script order respected" [ 2; 0; 1; 2; 0; 1 ] (List.rev !order)

let step_order procs_steps policy =
  let n_plus_1 = List.length procs_steps in
  let pattern = Failure_pattern.no_failures ~n_plus_1 in
  let result =
    Run.exec ~pattern ~policy ~procs:(fun pid -> [ nops (List.nth procs_steps pid) ]) ()
  in
  List.filter_map
    (function Trace.Step { pid; _ } -> Some pid | _ -> None)
    result.trace

let test_round_robin_cursor_fairness () =
  (* after p1 quiesces the cursor keeps cycling from where it was, so the
     survivors alternate strictly instead of restarting at the lowest pid *)
  check
    (Alcotest.list Alcotest.int)
    "cursor keeps cycling"
    [ 0; 1; 2; 0; 1; 2; 1; 2; 1; 2 ]
    (step_order [ 2; 4; 4 ] (Policy.round_robin ()))

let test_script_policy_exhaustion () =
  (* entries for a quiesced process are skipped, and an exhausted script
     hands the rest of the run to [then_] *)
  check
    (Alcotest.list Alcotest.int)
    "skip + fall back"
    [ 1; 1; 0; 0; 0 ]
    (step_order [ 3; 2 ]
       (Policy.script [ 1; 1; 1 ] ~then_:(Policy.round_robin ())))

let test_random_policy_is_fair () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:4 in
  let rng = Rng.create 99 in
  let result =
    Run.exec ~pattern ~policy:(Policy.random rng) ~horizon:4000
      ~procs:(fun _ ->
        [
          (fun () ->
            while true do
              Sim.yield ()
            done);
        ])
      ()
  in
  List.iter
    (fun p ->
      let steps = Trace.steps_of result.trace p in
      checkb "roughly fair share" true (steps > 700 && steps < 1300))
    (Pid.all ~n_plus_1:4)

let test_two_fibers_share_process () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:1 in
  let tags = ref [] in
  let tagger tag () =
    for _ = 1 to 3 do
      Sim.atomic Sim.Nop (fun _ -> tags := tag :: !tags)
    done
  in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ tagger "a"; tagger "b" ])
      ()
  in
  checkb "quiescent" true (result.outcome = Scheduler.Quiescent);
  check
    (Alcotest.list Alcotest.string)
    "fibers alternate" [ "a"; "b"; "a"; "b"; "a"; "b" ] (List.rev !tags)

let test_local_computation_is_free () =
  (* Heavy local work between atomics must not consume steps. *)
  let pattern = Failure_pattern.no_failures ~n_plus_1:1 in
  let body () =
    let acc = ref 0 in
    for i = 1 to 10_000 do
      acc := !acc + i
    done;
    Sim.yield ();
    for i = 1 to 10_000 do
      acc := !acc - i
    done;
    Sim.yield ()
  in
  let result =
    Run.exec ~pattern ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ body ]) ()
  in
  checki "exactly two steps" 2 result.steps

let test_trace_times_strictly_increase () =
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (2, 7) ] in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ nops 10 ])
      ()
  in
  checki "no violations" 0
    (List.length (Oracle.check_run_conditions pattern result.trace))

let test_outputs_recorded () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:2 in
  let body () = Sim.output ~label:"decide" ~value:"17" in
  let result =
    Run.exec ~pattern ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ body ]) ()
  in
  let decisions = Oracle.decisions result.trace in
  checki "two decisions" 2 (List.length decisions);
  List.iter (fun (_, v) -> checki "value 17" 17 v) decisions

(* Determinism: the same seed must give the same trace. *)
let test_run_determinism () =
  let run seed =
    let rng = Rng.create seed in
    let pattern =
      Failure_pattern.random rng ~n_plus_1:4 ~max_faulty:2 ~latest:30
    in
    let result =
      Run.exec ~pattern ~policy:(Policy.random rng) ~horizon:200
        ~procs:(fun _ -> [ nops 50 ])
        ()
    in
    Format.asprintf "%a" Trace.pp result.trace
  in
  check Alcotest.string "same seed, same trace" (run 5) (run 5);
  checkb "different seeds differ" true (run 5 <> run 6)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:100 ~name:"random patterns stay within E_f"
      (pair small_nat small_nat)
      (fun (seed, f_raw) ->
        let rng = Rng.create seed in
        let n_plus_1 = 3 + (seed mod 4) in
        let max_faulty = f_raw mod n_plus_1 in
        let p =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty ~latest:100
        in
        Failure_pattern.env_ok ~f:max_faulty p);
    Test.make ~count:50 ~name:"round-robin run satisfies run conditions"
      small_nat
      (fun seed ->
        let rng = Rng.create seed in
        let n_plus_1 = 2 + (seed mod 4) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
            ~latest:40
        in
        let result =
          Run.exec ~pattern
            ~policy:(Policy.round_robin ())
            ~horizon:300
            ~procs:(fun _ -> [ nops 60 ])
            ()
        in
        Oracle.check_run_conditions pattern result.trace = []);
  ]

let suite =
  [
    Alcotest.test_case "pid basics" `Quick test_pid_all;
    Alcotest.test_case "pid set complement" `Quick test_pid_set_complement;
    Alcotest.test_case "pid subsets" `Quick test_pid_subsets;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng subset constraints" `Quick
      test_rng_subset_constraints;
    Alcotest.test_case "pattern basics" `Quick test_pattern_basics;
    Alcotest.test_case "pattern rejects all-faulty" `Quick
      test_pattern_rejects_all_faulty;
    Alcotest.test_case "random pattern bounds" `Quick
      test_pattern_random_respects_bounds;
    Alcotest.test_case "steps counted" `Quick test_run_all_steps_counted;
    Alcotest.test_case "crash stops process" `Quick test_crash_stops_process;
    Alcotest.test_case "crash at zero" `Quick test_crash_at_zero_means_no_steps;
    Alcotest.test_case "horizon stops run" `Quick test_horizon_stops_run;
    Alcotest.test_case "solo starves others" `Quick
      test_solo_policy_starves_others;
    Alcotest.test_case "script order" `Quick test_script_policy_order;
    Alcotest.test_case "round-robin cursor fairness" `Quick
      test_round_robin_cursor_fairness;
    Alcotest.test_case "script exhaustion falls back" `Quick
      test_script_policy_exhaustion;
    Alcotest.test_case "random policy fair" `Quick test_random_policy_is_fair;
    Alcotest.test_case "two fibers per process" `Quick
      test_two_fibers_share_process;
    Alcotest.test_case "local computation free" `Quick
      test_local_computation_is_free;
    Alcotest.test_case "trace conditions with crash" `Quick
      test_trace_times_strictly_increase;
    Alcotest.test_case "outputs recorded" `Quick test_outputs_recorded;
    Alcotest.test_case "run determinism" `Quick test_run_determinism;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
