(* Tests for the span-tracing layer: scope recording semantics (ids,
   parents, with_, truncation, capacity drops), sink ring/accounting,
   the wfde-span/1 JSONL codec — including a QCheck round-trip over
   hostile strings (quotes, backslashes, control characters, UTF-8) —
   and the determinism contract: the span structure of a
   check_exhaustive run is byte-identical at -j1 and -j4 after
   timestamp normalization. *)

module Span = Obs.Span

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* -- scopes ------------------------------------------------------------ *)

let test_null_scope () =
  checkb "disabled" true (not (Span.enabled Span.null));
  checki "start returns 0" 0 (Span.start Span.null "x");
  Span.finish Span.null 0;
  Span.finish_open Span.null;
  checki "with_ still runs f" 3 (Span.with_ Span.null "x" (fun () -> 3));
  checkb "no spans" true (Span.spans Span.null = []);
  let sink = Span.sink () in
  Span.absorb sink Span.null;
  checki "null absorbs nothing" 0 (Span.absorbed sink)

let test_scope_structure () =
  let sc = Span.make ~trace:"t1" () in
  checkb "enabled" true (Span.enabled sc);
  checks "trace id" "t1" (Span.trace_id sc);
  let root = Span.start ~parent:0 ~at:100 sc "request" in
  checki "root id is 1" 1 root;
  Span.set_parent sc root;
  let child = Span.start ~at:110 sc "child" in
  checki "ids are creation order" 2 child;
  Span.finish ~at:150 sc child;
  (* inside with_, the new span is the current parent *)
  let inside = Span.with_ sc "leaf" (fun () -> Span.current_parent sc) in
  checki "with_ sets parent" 3 inside;
  checki "with_ restores parent" root (Span.current_parent sc);
  Span.finish ~at:200 sc root;
  match Span.spans sc with
  | [ r; c; l ] ->
      checks "root name" "request" r.Span.name;
      checki "root parent" 0 r.Span.parent;
      checki "child parent" root c.Span.parent;
      checki "leaf parent" root l.Span.parent;
      checkb "explicit timestamps kept" true
        (r.Span.start_us = 100 && r.Span.stop_us = 200);
      checkb "nothing truncated" true
        (not (r.Span.truncated || c.Span.truncated || l.Span.truncated))
  | other -> Alcotest.failf "expected 3 spans, got %d" (List.length other)

let test_finish_open_truncates () =
  let sc = Span.make ~trace:"t2" () in
  let a = Span.start sc "a" in
  let b = Span.start sc "b" in
  Span.finish sc b;
  (* double finish and bogus ids are no-ops *)
  Span.finish sc b;
  Span.finish sc 0;
  Span.finish sc 99;
  Span.finish_open sc;
  ignore a;
  match Span.spans sc with
  | [ sa; sb ] ->
      checkb "open span flushed truncated" true sa.Span.truncated;
      checkb "closed span untouched" true (not sb.Span.truncated)
  | _ -> Alcotest.fail "expected 2 spans"

let test_capacity_drops () =
  let sc = Span.make ~capacity:2 ~trace:"t3" () in
  ignore (Span.start sc "a");
  ignore (Span.start sc "b");
  checki "overflow start returns 0" 0 (Span.start sc "c");
  checki "dropped counted" 1 (Span.dropped sc);
  checki "recorded spans capped" 2 (List.length (Span.spans sc))

let test_emit () =
  let sc = Span.make ~trace:"t4" () in
  let root = Span.start ~at:10 sc "root" in
  let id = Span.emit ~parent:root sc ~name:"measured" ~start_us:20 ~stop_us:30 () in
  checki "emit allocates the next id" 2 id;
  Span.finish ~at:40 sc root;
  match Span.spans sc with
  | [ _; m ] ->
      checkb "emit records the given window" true
        (m.Span.start_us = 20 && m.Span.stop_us = 30 && m.Span.parent = root)
  | _ -> Alcotest.fail "expected 2 spans"

(* -- sinks ------------------------------------------------------------- *)

let test_sink_ring () =
  let sink = Span.sink ~capacity:3 () in
  let sc = Span.make ~trace:"r" () in
  for _ = 1 to 5 do
    ignore (Span.start sc "s")
  done;
  Span.finish_open sc;
  Span.absorb sink sc;
  checki "absorbed counts everything" 5 (Span.absorbed sink);
  let kept = Span.take sink in
  checki "ring keeps the newest capacity" 3 (List.length kept);
  (match kept with
  | oldest :: _ -> checki "oldest kept is span 3" 3 oldest.Span.span_id
  | [] -> Alcotest.fail "ring empty");
  checkb "take drains" true (Span.take sink = []);
  checki "absorbed survives take" 5 (Span.absorbed sink)

let test_sink_write_through () =
  let path = Filename.temp_file "wfde_sink" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Span.sink ~out:oc () in
      let sc = Span.make ~trace:"wt" () in
      let a = Span.start ~at:1 sc "a" in
      Span.finish ~at:2 sc a;
      Span.absorb sink sc;
      Span.flush sink;
      close_out oc;
      match Span.load_file path with
      | Ok [ s ] ->
          checks "span written through" "a" s.Span.name;
          checkb "ring empty for write-through" true (Span.take sink = [])
      | Ok l -> Alcotest.failf "expected 1 span, got %d" (List.length l)
      | Error e -> Alcotest.failf "reload failed: %s" e)

(* -- codec ------------------------------------------------------------- *)

let tricky_string =
  QCheck.Gen.(
    oneof
      [
        small_string ~gen:printable;
        oneofl
          [
            "";
            "a\"b";
            "back\\slash";
            "new\nline";
            "tab\there";
            "ctrl\x01\x02\x1f";
            "caf\xc3\xa9";
            "exp.e1";
            "dpor.p3.b1";
          ];
      ])

let span_gen =
  QCheck.Gen.(
    tricky_string >>= fun trace ->
    tricky_string >>= fun name ->
    int_range 1 10_000 >>= fun span_id ->
    int_range 0 9_999 >>= fun parent ->
    int_bound 1_000_000 >>= fun start_us ->
    int_bound 1_000_000 >>= fun dur ->
    bool >>= fun truncated ->
    return
      {
        Span.trace;
        span_id;
        parent;
        name;
        start_us;
        stop_us = start_us + dur;
        truncated;
      })

let span_arb = QCheck.make ~print:Span.to_line span_gen

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:300 ~name:"wfde-span/1 line round-trips" span_arb
      (fun s -> Span.of_line (Span.to_line s) = Ok s);
  ]

let test_codec_rejections () =
  checkb "wrong schema" true
    (Result.is_error
       (Span.of_line
          {|{"schema":"nope/1","trace":"t","span":1,"parent":0,"name":"n","start_us":0,"stop_us":1}|}));
  checkb "span id 0" true
    (Result.is_error
       (Span.of_line
          {|{"schema":"wfde-span/1","trace":"t","span":0,"parent":0,"name":"n","start_us":0,"stop_us":1}|}));
  checkb "not json" true (Result.is_error (Span.of_line "{nope"));
  checkb "absent truncated defaults false" true
    (match
       Span.of_line
         {|{"schema":"wfde-span/1","trace":"t","span":1,"parent":0,"name":"n","start_us":0,"stop_us":1}|}
     with
    | Ok s -> not s.Span.truncated
    | Error _ -> false)

let test_load_file_round_trip () =
  let sc = Span.make ~trace:"file" () in
  let a = Span.start ~at:10 sc "a" in
  Span.set_parent sc a;
  let b = Span.start ~at:20 sc "b\"quote" in
  Span.finish ~at:30 sc b;
  Span.finish ~at:40 sc a;
  let spans = Span.spans sc in
  let path = Filename.temp_file "wfde_span" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun s ->
          output_string oc (Span.to_line s);
          output_char oc '\n')
        spans;
      (* blank lines are tolerated *)
      output_char oc '\n';
      close_out oc;
      checkb "file round-trips" true (Span.load_file path = Ok spans);
      (* the first malformed line is a positioned error *)
      let oc = open_out path in
      output_string oc "{oops\n";
      close_out oc;
      match Span.load_file path with
      | Error msg ->
          checkb "error names the line" true
            (String.length msg >= 7 && String.sub msg 0 7 = "line 1:")
      | Ok _ -> Alcotest.fail "malformed line accepted")

(* -- render ------------------------------------------------------------ *)

let test_render_normalized () =
  let sc = Span.make ~trace:"r1" () in
  let root = Span.start ~parent:0 ~at:0 sc "request" in
  Span.set_parent sc root;
  let c = Span.start ~at:5 sc "child" in
  Span.finish ~at:7 sc c;
  let d = Span.start ~at:8 sc "cut" in
  Span.finish ~truncated:true ~at:9 sc d;
  Span.finish ~at:9 sc root;
  checks "normalized tree"
    "trace r1: 3 span(s)\n  request\n    child\n    cut [truncated]\n"
    (Span.render ~normalize:true (Span.spans sc));
  (* the timed render carries the same structure plus timings *)
  let timed = Span.render (Span.spans sc) in
  checkb "timed render mentions totals" true
    (String.length timed > 0
    && List.exists
         (fun line ->
           String.length line > 0
           &&
           let re = "total" in
           let rec find i =
             i + String.length re <= String.length line
             && (String.sub line i (String.length re) = re || find (i + 1))
           in
           find 0)
         (String.split_on_char '\n' timed))

(* -- determinism across worker counts ---------------------------------- *)

let structure sc = Span.render ~normalize:true (Span.spans sc)

let test_check_spans_deterministic () =
  let run jobs =
    let sc = Span.make ~capacity:4096 ~trace:"chk" () in
    ignore
      (Wfde.Harness.check_exhaustive ~jobs ~depth:3 ~horizon:60 ~spans:sc
         Wfde.Scenario.Register);
    sc
  in
  let s1 = run 1 and s4 = run 4 in
  let spans1 = Span.spans s1 in
  checkb "spans recorded" true (spans1 <> []);
  (* nesting invariants: ids are creation order, a parent always
     precedes its children and exists (or is the root marker 0) *)
  List.iter
    (fun s ->
      checkb "parent precedes span" true (s.Span.parent < s.Span.span_id);
      checkb "parent exists" true
        (s.Span.parent = 0
        || List.exists (fun p -> p.Span.span_id = s.Span.parent) spans1))
    spans1;
  checki "no drops" 0 (Span.dropped s1 + Span.dropped s4);
  checks "structure identical at -j1/-j4" (structure s1) (structure s4)

let suite =
  [
    Alcotest.test_case "null scope is inert" `Quick test_null_scope;
    Alcotest.test_case "scope ids, parents, with_" `Quick test_scope_structure;
    Alcotest.test_case "finish_open truncates" `Quick test_finish_open_truncates;
    Alcotest.test_case "capacity drops counted" `Quick test_capacity_drops;
    Alcotest.test_case "emit records measured windows" `Quick test_emit;
    Alcotest.test_case "sink ring keeps newest" `Quick test_sink_ring;
    Alcotest.test_case "sink write-through JSONL" `Quick
      test_sink_write_through;
    Alcotest.test_case "codec rejects malformed spans" `Quick
      test_codec_rejections;
    Alcotest.test_case "load_file round-trip and errors" `Quick
      test_load_file_round_trip;
    Alcotest.test_case "render: normalized tree shape" `Quick
      test_render_normalized;
    Alcotest.test_case "check spans deterministic at -j1/-j4" `Quick
      test_check_spans_deterministic;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
