(* Differential regression tests for the DPOR explorer: exploration
   stats pinned to goldens captured from the source-set + wakeup
   explorer on the wfde check configurations and the three planted
   mutants, verdict agreement with the naive enumerator on depth-<=8
   ABD scenarios, and QCheck equivalence of the indexed enabled-set
   against its association-list semantics. *)

open Kernel
open Check
module H = Wfde.Harness

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* -- golden stats ------------------------------------------------------ *)

(* (object, procs, depth, mutant, patterns_swept, executions,
   sleep_blocked, deduped, races, backtrack_points, violation found) as
   measured on the source-set + wakeup-sequence explorer with schedule
   fingerprinting; the checker must reproduce every field exactly —
   these counters are part of the wfde check --json payload and any
   drift means the reduction explored a different tree. For the
   sleep-set goldens these replaced (and the per-config drop), see the
   executions table in EXPERIMENTS.md: e.g. abd p3 d10 went 562 -> 418
   and the abd mutant 329 -> 281, with identical verdicts. *)
let golden =
  [
    (Scenario.Register, 2, 6, None, 1, 34, 0, 0, 116, 33, false);
    (Scenario.Register, 3, 8, None, 1, 2788, 0, 464, 17292, 3687, false);
    (Scenario.Snapshot, 2, 6, None, 1, 3, 0, 0, 4, 2, false);
    (Scenario.Snapshot, 3, 12, None, 1, 21, 0, 3, 84, 27, false);
    (Scenario.Abd, 3, 8, None, 25, 224, 0, 0, 4074, 204, false);
    (Scenario.Abd, 3, 10, None, 25, 418, 0, 0, 7621, 436, false);
    (Scenario.Commit_adopt, 2, 6, None, 1, 3, 0, 0, 13, 1, false);
    (Scenario.Commit_adopt, 3, 8, None, 1, 6, 0, 1, 82, 3, false);
    ( Scenario.Abd, 3, 10, Some Mutant.Abd_skip_write_back, 20, 281, 0, 0,
      2657, 304, true );
    ( Scenario.Snapshot, 3, 12, Some Mutant.Snapshot_single_collect, 1, 12, 0,
      4, 30, 12, true );
    ( Scenario.Commit_adopt, 2, 6, Some Mutant.Converge_drop_phase2, 1, 1, 0,
      0, 0, 0, true );
  ]

let test_golden_stats () =
  List.iter
    (fun ( obj,
           procs,
           depth,
           mutant,
           patterns,
           execs,
           sleep,
           deduped,
           races,
           bt,
           violated ) ->
      let label fmt =
        Printf.sprintf "%s p%d d%d%s %s" (Scenario.to_string obj) procs depth
          (match mutant with
          | Some m -> " mutant:" ^ Mutant.to_string m
          | None -> "")
          fmt
      in
      let c = H.check_exhaustive ~jobs:1 ~procs ~depth ?mutant obj in
      checki (label "patterns_swept") patterns c.H.patterns_swept;
      checki (label "executions") execs c.H.executions;
      checki (label "sleep_blocked") sleep c.H.sleep_blocked;
      checki (label "deduped") deduped c.H.deduped;
      checki (label "races") races c.H.races;
      checki (label "backtrack_points") bt c.H.backtrack_points;
      checkb (label "violation") violated (c.H.violation <> None))
    golden

(* -- DPOR vs the naive enumerator -------------------------------------- *)

let test_abd_matches_naive () =
  (* Same verdict on the ABD scenario at every depth the naive
     enumerator can still afford, failure-free and under the scenario's
     first crash pattern; the reduction must also do strictly less
     work. *)
  let patterns = Scenario.patterns Scenario.Abd ~procs:3 in
  let crashy = List.nth patterns 1 in
  List.iter
    (fun (pattern, pat_name, depths) ->
      List.iter
        (fun depth ->
          let make = Scenario.make Scenario.Abd ~procs:3 in
          let dpor =
            Explore.exhaustive_prefix ~pattern ~depth ~horizon:400 ~make ()
          in
          let naive = Explore.naive_prefix ~pattern ~depth ~horizon:400 ~make () in
          checkb
            (Printf.sprintf "abd %s d%d: same verdict" pat_name depth)
            (naive.Explore.counterexample = None)
            (dpor.Explore.counterexample = None);
          checkb
            (Printf.sprintf "abd %s d%d: dpor fewer executions (%d < %d)"
               pat_name depth dpor.Explore.executions naive.Explore.executions)
            true
            (dpor.Explore.executions < naive.Explore.executions))
        depths)
    [
      (List.hd patterns, "failure-free", [ 4; 6; 8 ]);
      (crashy, "crash-pattern", [ 4; 6 ]);
    ]

let test_mutant_matches_naive () =
  (* The one planted bug cheap enough for unreduced enumeration: both
     explorers must catch converge-drop-phase2, with the identical
     checker report. *)
  let pattern = Failure_pattern.no_failures ~n_plus_1:2 in
  let make = Scenario.make Scenario.Commit_adopt ~procs:2 in
  Mutant.with_ (Some Mutant.Converge_drop_phase2) (fun () ->
      let dpor =
        Explore.exhaustive_prefix ~pattern ~depth:6 ~horizon:400 ~make ()
      in
      let naive = Explore.naive_prefix ~pattern ~depth:6 ~horizon:400 ~make () in
      match (dpor.Explore.counterexample, naive.Explore.counterexample) with
      | Some (_, r1), Some (_, r2) ->
          Alcotest.check Alcotest.string "same checker report" r2 r1
      | None, _ -> Alcotest.fail "dpor missed the planted mutant"
      | _, None -> Alcotest.fail "naive enumerator missed the planted mutant")

(* -- frontier checkpoint/resume ---------------------------------------- *)

(* The invariant the fabric's budget slicing rests on: truncate an
   exploration at ANY prefix, serialize the frontier through its JSON
   document, resume — and the final outcome (cumulative stats and
   verdict) must equal the uninterrupted run's, field for field. *)

let stats_eq label (want : Dpor.stats) (got : Dpor.stats) =
  checki (label ^ ": executions") want.Dpor.executions got.Dpor.executions;
  (* sleep_blocked and deduped must be idempotent across the
     serialization boundary too: a resumed exploration re-derives the
     sleep sets and the fingerprint table from the frontier document,
     and any drift there means the wakeup-tree state did not travel. *)
  checki (label ^ ": sleep_blocked") want.Dpor.sleep_blocked
    got.Dpor.sleep_blocked;
  checki (label ^ ": deduped") want.Dpor.deduped got.Dpor.deduped;
  checki (label ^ ": races") want.Dpor.races got.Dpor.races;
  checki
    (label ^ ": backtrack_points")
    want.Dpor.backtrack_points got.Dpor.backtrack_points

let roundtrip label f =
  match Dpor.frontier_of_json (Dpor.frontier_to_json f) with
  | Ok f -> f
  | Error msg -> Alcotest.failf "%s: frontier round-trip failed: %s" label msg

let abd_world () =
  ( List.hd (Scenario.patterns Scenario.Abd ~procs:3),
    Scenario.make Scenario.Abd ~procs:3 )

let test_frontier_every_prefix () =
  let pattern, make = abd_world () in
  let explore ?budget ?frontier_out () =
    Dpor.explore ~pattern ~depth:8 ~horizon:400 ?budget ?frontier_out ~make ()
  in
  let full = explore () in
  checkb "uninterrupted: no violation" true (full.Dpor.counterexample = None);
  let total = full.Dpor.stats.Dpor.executions in
  checkb "abd pattern0 explores several runs" true (total > 1);
  for k = 1 to total - 1 do
    let fo = ref None in
    let sliced = explore ~budget:k ~frontier_out:fo () in
    checki
      (Printf.sprintf "prefix %d: slice stops on budget" k)
      k sliced.Dpor.stats.Dpor.executions;
    match !fo with
    | None -> Alcotest.failf "prefix %d: truncation left no frontier" k
    | Some f ->
        let f = roundtrip (Printf.sprintf "prefix %d" k) f in
        checki (Printf.sprintf "prefix %d: depth travels" k) 8
          (Dpor.frontier_depth f);
        checki
          (Printf.sprintf "prefix %d: stored stats" k)
          k (Dpor.frontier_stats f).Dpor.executions;
        let fo2 = ref None in
        let resumed =
          Dpor.resume ~pattern ~horizon:400 ~frontier:f ~frontier_out:fo2 ~make
            ()
        in
        stats_eq (Printf.sprintf "prefix %d: resumed" k) full.Dpor.stats
          resumed.Dpor.stats;
        checkb
          (Printf.sprintf "prefix %d: resumed verdict" k)
          true
          (resumed.Dpor.counterexample = None);
        checkb
          (Printf.sprintf "prefix %d: completion resets frontier_out" k)
          true (!fo2 = None)
  done

let test_frontier_budget1_chain () =
  (* the extreme slicing: one execution per slice, every intermediate
     state crossing a JSON serialization — exactly what a fabric worker
     chain with --unit-budget 1 would do *)
  let pattern, make = abd_world () in
  let explore ?budget ?frontier_out () =
    Dpor.explore ~pattern ~depth:8 ~horizon:400 ?budget ?frontier_out ~make ()
  in
  let full = explore () in
  let total = full.Dpor.stats.Dpor.executions in
  let fo = ref None in
  let outcome = ref (explore ~budget:1 ~frontier_out:fo ()) in
  let slices = ref 1 in
  while !fo <> None do
    let f =
      match !fo with Some f -> roundtrip "chain" f | None -> assert false
    in
    fo := None;
    incr slices;
    outcome :=
      Dpor.resume ~pattern ~horizon:400 ~budget:1 ~frontier:f ~frontier_out:fo
        ~make ()
  done;
  checki "one slice per execution" total !slices;
  stats_eq "chain end state" full.Dpor.stats !outcome.Dpor.stats;
  checkb "chain verdict" true (!outcome.Dpor.counterexample = None)

let test_frontier_resume_finds_violation () =
  (* pause one execution before the violating run: the resumed slice
     must surface the identical counterexample, with cumulative stats *)
  Mutant.with_ (Some Mutant.Snapshot_single_collect) (fun () ->
      let pattern = List.hd (Scenario.patterns Scenario.Snapshot ~procs:3) in
      let make = Scenario.make Scenario.Snapshot ~procs:3 in
      let explore ?budget ?frontier_out () =
        Dpor.explore ~pattern ~depth:12 ~horizon:400 ?budget ?frontier_out
          ~make ()
      in
      let full = explore () in
      let prefix, report =
        match full.Dpor.counterexample with
        | Some (p, r) -> (p, r)
        | None -> Alcotest.fail "planted mutant not caught uninterrupted"
      in
      let k = full.Dpor.stats.Dpor.executions - 1 in
      checkb "violation is not the first execution" true (k >= 1);
      let fo = ref None in
      ignore (explore ~budget:k ~frontier_out:fo ());
      match !fo with
      | None -> Alcotest.fail "expected truncation before the violation"
      | Some f ->
          let resumed =
            Dpor.resume ~pattern ~horizon:400 ~frontier:(roundtrip "mutant" f)
              ~make ()
          in
          (match resumed.Dpor.counterexample with
          | Some (p2, r2) ->
              checkb "same counterexample prefix" true (p2 = prefix);
              Alcotest.check Alcotest.string "same checker report" report r2
          | None -> Alcotest.fail "resume missed the violation");
          stats_eq "cumulative stats at violation" full.Dpor.stats
            resumed.Dpor.stats)

let test_frontier_branch () =
  (* explore_branch frontiers resume just like whole-tree ones — the
     fabric slices per (pattern, root branch) unit *)
  let pattern, make = abd_world () in
  let branches = Dpor.root_branches ~pattern ~make () in
  checkb "abd has shardable branches" true (List.length branches > 1);
  List.iteri
    (fun index _ ->
      let explore_b ?budget ?frontier_out () =
        Dpor.explore_branch ~pattern ~depth:8 ~horizon:400 ?budget ?frontier_out
          ~branches ~index ~make ()
      in
      let full = explore_b () in
      let total = full.Dpor.stats.Dpor.executions in
      if total > 1 then begin
        let k = max 1 (total / 2) in
        let fo = ref None in
        ignore (explore_b ~budget:k ~frontier_out:fo ());
        match !fo with
        | None -> Alcotest.failf "branch %d: no frontier at budget %d" index k
        | Some f ->
            let resumed =
              Dpor.resume ~pattern ~horizon:400
                ~frontier:(roundtrip (Printf.sprintf "branch %d" index) f)
                ~make ()
            in
            stats_eq (Printf.sprintf "branch %d resumed" index) full.Dpor.stats
              resumed.Dpor.stats
      end)
    branches

let test_frontier_json_validation () =
  let module J = Obs.Json in
  let reject label doc =
    match Dpor.frontier_of_json doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: damaged document accepted" label
  in
  reject "wrong schema" (J.Obj [ ("schema", J.String "nope/1") ]);
  reject "not an object" (J.Int 3);
  let pattern, make = abd_world () in
  let fo = ref None in
  ignore
    (Dpor.explore ~pattern ~depth:8 ~horizon:400 ~budget:1 ~frontier_out:fo
       ~make ());
  let doc =
    match !fo with
    | Some f -> Dpor.frontier_to_json f
    | None -> Alcotest.fail "no frontier captured"
  in
  (match Dpor.frontier_of_json doc with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "pristine document rejected: %s" msg);
  let patch key v =
    match doc with
    | J.Obj kvs ->
        J.Obj (List.map (fun (k, x) -> if k = key then (k, v) else (k, x)) kvs)
    | _ -> doc
  in
  reject "negative depth" (patch "depth" (J.Int (-1)));
  reject "stats not an object" (patch "stats" J.Null);
  reject "floor past the stack" (patch "floor" (J.Int 99));
  reject "nodes not a list" (patch "nodes" J.Null)

(* -- Eset vs association list (QCheck) --------------------------------- *)

let kind_pool =
  [|
    Sim.Read { obj = "x" };
    Sim.Read { obj = "y" };
    Sim.Write { obj = "x" };
    Sim.Query { detector = "upsilon" };
    Sim.Output { label = "decide"; value = "1" };
    Sim.Input { label = "in"; value = "0" };
    Sim.Nop;
  |]

(* An enabled set as its association-list model: a strictly increasing
   pid subset of 0..11, each with an arbitrary pending kind. *)
let entries_gen =
  QCheck.Gen.(
    list_size (int_bound 12)
      (pair (int_bound 11) (int_bound (Array.length kind_pool - 1)))
    >|= fun raw ->
    let module IS = Set.Make (Int) in
    let _, entries =
      List.fold_left
        (fun (seen, acc) (p, k) ->
          if IS.mem p seen then (seen, acc)
          else (IS.add p seen, (p, kind_pool.(k)) :: acc))
        (IS.empty, []) raw
    in
    List.sort (fun (a, _) (b, _) -> Int.compare a b) entries)

let qcheck_eset_equivalence =
  QCheck.Test.make ~count:500 ~name:"Eset matches association-list semantics"
    (QCheck.make entries_gen)
    (fun entries ->
      let es = Eset.of_list entries in
      (* every pid in range, present or not, looks up identically *)
      List.for_all
        (fun p ->
          Eset.find es p = List.assoc_opt p entries
          && Eset.mem es p = List.mem_assoc p entries)
        (List.init 13 Fun.id)
      && Eset.to_list es = entries
      && Eset.size es = List.length entries
      && Eset.to_list (Eset.copy es) = entries
      &&
      (* iteration visits the entries in pid order *)
      let seen = ref [] in
      Eset.iter es (fun p k -> seen := (p, k) :: !seen);
      List.rev !seen = entries)

let qcheck_eset_incremental =
  QCheck.Test.make ~count:200 ~name:"Eset push/clear reuse stays equivalent"
    (QCheck.make QCheck.Gen.(pair entries_gen entries_gen))
    (fun (first, second) ->
      (* one buffer refreshed across two generations, as the per-node
         refresh on the DPOR hot path does *)
      let es = Eset.create ~capacity:2 () in
      List.iter (fun (p, k) -> Eset.push es p k) first;
      Eset.clear es;
      List.iter (fun (p, k) -> Eset.push es p k) second;
      Eset.to_list es = second
      && List.for_all
           (fun p -> Eset.find es p = List.assoc_opt p second)
           (List.init 13 Fun.id))

let suite =
  [
    Alcotest.test_case "stats match committed goldens" `Slow
      test_golden_stats;
    Alcotest.test_case "abd verdicts match naive enumerator" `Slow
      test_abd_matches_naive;
    Alcotest.test_case "planted mutant caught by both explorers" `Quick
      test_mutant_matches_naive;
    Alcotest.test_case "frontier resume at every prefix is exact" `Slow
      test_frontier_every_prefix;
    Alcotest.test_case "budget-1 frontier chain replays the whole search"
      `Slow test_frontier_budget1_chain;
    Alcotest.test_case "resume crosses into the violating execution" `Quick
      test_frontier_resume_finds_violation;
    Alcotest.test_case "branch frontiers resume exactly" `Slow
      test_frontier_branch;
    Alcotest.test_case "frontier JSON validation rejects damage" `Quick
      test_frontier_json_validation;
    QCheck_alcotest.to_alcotest qcheck_eset_equivalence;
    QCheck_alcotest.to_alcotest qcheck_eset_incremental;
  ]
