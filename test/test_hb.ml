(* Heartbeat-implemented detectors: ◇P/◇S spec conformance across
   randomized GST/delay/loss families, agreement with oracle runs,
   determinism, and the planted heartbeat mutants being caught by DPOR
   exploration with shrunk, replayable counterexamples. *)

open Kernel

let checkb = Alcotest.check Alcotest.bool

let cfg ?(gst = 40) ?(delta = 2) ?(pre_delay = 8) ?(loss = 60) ?(seed = 7) () =
  { Link.gst; delta; pre_delay; loss_pct = loss; link_seed = seed }

let world ~seed ?(n_plus_1 = 3) ?(max_faulty = 1) ?(latest = 60) () =
  Wfde.Harness.random_world ~seed ~n_plus_1 ~max_faulty ~latest ()

(* -------------------------------------------------------- conformance *)

let test_hb_ev_perfect_conforms () =
  let v, stab =
    Wfde.Harness.run_hb_detector ~mode:`Ev_perfect ~net:(cfg ())
      (world ~seed:11 ())
  in
  (match v with Ok () -> () | Error e -> Alcotest.fail e);
  checkb "stabilized after a finite prefix" true (stab > 0)

let test_hb_ev_strong_conforms () =
  let v, _ =
    Wfde.Harness.run_hb_detector ~mode:`Ev_strong ~net:(cfg ())
      (world ~seed:12 ())
  in
  match v with Ok () -> () | Error e -> Alcotest.fail e

let test_hb_with_crashes () =
  (* every process but one may crash *)
  List.iter
    (fun seed ->
      let w = world ~seed ~n_plus_1:4 ~max_faulty:3 () in
      let v, _ = Wfde.Harness.run_hb_detector ~mode:`Ev_perfect ~net:(cfg ()) w in
      match v with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d: %s" seed e)
    [ 1; 2; 3; 4; 5 ]

let test_hb_deterministic () =
  let run () =
    Wfde.Harness.run_hb_detector ~mode:`Ev_perfect ~net:(cfg ()) (world ~seed:5 ())
  in
  let v1, s1 = run () and v2, s2 = run () in
  checkb "same verdict" true (v1 = v2);
  Alcotest.check Alcotest.int "same stabilization time" s1 s2

(* A detector built over a *fresh* link with the same surface as the
   oracle: the extraction harness accepts it unchanged, and its verdict
   agrees with the oracle ◇P's. *)
let test_extraction_agrees_with_oracle () =
  List.iter
    (fun seed ->
      let make_world () =
        Wfde.Harness.random_world ~seed:(900 + seed) ~n_plus_1:4 ~max_faulty:2
          ~latest:150 ()
      in
      let oracle, _ =
        Wfde.Harness.run_extraction_of ~f:2 ~source:`Ev_perfect (make_world ())
      in
      let implemented, _ =
        Wfde.Harness.run_extraction_of ~f:2
          ~source:(`Hb_ev_perfect (cfg ~gst:60 ~loss:40 ()))
          (make_world ())
      in
      checkb
        (Printf.sprintf "seed %d: oracle and implemented verdicts agree" seed)
        true
        (Result.is_ok oracle = Result.is_ok implemented
        && Result.is_ok oracle))
    [ 1; 2; 3 ]

(* Ω-from-heartbeats drives message-passing consensus to the same
   verdict as the oracle Ω, and the recorded leader queries replay
   exactly against the reconstructed history (0 query violations). *)
let test_consensus_with_implemented_omega () =
  List.iter
    (fun seed ->
      let w () =
        Wfde.Harness.random_world ~seed:(300 + seed) ~n_plus_1:3 ~max_faulty:1
          ~latest:100 ()
      in
      let oracle, mem_o = Wfde.Harness.run_msg_consensus ~horizon:400_000 (w ()) in
      let impl, mem_i =
        Wfde.Harness.run_msg_consensus ~horizon:400_000
          ~omega_impl:(cfg ~gst:50 ~loss:30 ())
          (w ())
      in
      checkb
        (Printf.sprintf "seed %d: both decide and linearize" seed)
        true
        (Wfde.Harness.ok oracle && Wfde.Harness.ok impl && mem_o = Ok () && mem_i = Ok ());
      Alcotest.check Alcotest.int
        (Printf.sprintf "seed %d: no leader query violations" seed)
        0 impl.Wfde.Harness.query_violations)
    [ 1; 2 ]

(* ------------------------------------------------- DPOR + mutants *)

let hb_obj = Check.Scenario.Hb_detector Check.Scenario.default_chaos

let test_dpor_hb_clean () =
  let o = Wfde.Harness.check_exhaustive ~procs:2 ~depth:5 ~horizon:500 hb_obj in
  (match o.Wfde.Harness.violation with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected violation: %s" v.Wfde.Harness.cex_report);
  checkb "swept all patterns" true (o.Wfde.Harness.patterns_swept = 3);
  checkb "explored more than one schedule" true (o.Wfde.Harness.executions > 1)

let test_dpor_link_chaos_clean () =
  let o =
    Wfde.Harness.check_exhaustive ~procs:2 ~depth:5 ~horizon:500
      (Check.Scenario.Link_chaos Check.Scenario.default_chaos)
  in
  match o.Wfde.Harness.violation with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected violation: %s" v.Wfde.Harness.cex_report

let assert_mutant_caught mutant =
  let o =
    Wfde.Harness.check_exhaustive ~procs:2 ~depth:5 ~horizon:500 ~mutant hb_obj
  in
  match o.Wfde.Harness.violation with
  | None ->
      Alcotest.failf "mutant %s not caught" (Check.Mutant.to_string mutant)
  | Some v ->
      checkb "counterexample shrunk and replayable" true v.Wfde.Harness.shrunk;
      checkb "short prefix" true (List.length v.Wfde.Harness.cex_prefix <= 5)

let test_mutant_timeout_never_increased () =
  assert_mutant_caught Check.Mutant.Hb_timeout_never_increased

let test_mutant_suspected_not_restored () =
  assert_mutant_caught Check.Mutant.Hb_suspected_not_restored

(* ----------------------------------------------------------- qcheck *)

let qcheck_cases =
  let open QCheck in
  let gen_case =
    Gen.(
      int_bound 10_000 >>= fun seed ->
      int_bound 60 >>= fun gst ->
      int_range 1 4 >>= fun delta ->
      int_bound 12 >>= fun pre_delay ->
      int_bound 90 >>= fun loss ->
      bool >|= fun strong ->
      (seed, { Link.gst; delta; pre_delay; loss_pct = loss; link_seed = seed + 1 }, strong))
  in
  let print (seed, c, strong) =
    Printf.sprintf "seed=%d %s %s" seed
      (Link.config_to_string c)
      (if strong then "evS" else "evP")
  in
  [
    Test.make ~count:50
      ~name:"hb: ◇P/◇S conformance across randomized GST/delay/loss configs"
      (make ~print gen_case)
      (fun (seed, net, strong) ->
        let w = world ~seed ~n_plus_1:3 ~max_faulty:1 ~latest:40 () in
        let mode = if strong then `Ev_strong else `Ev_perfect in
        match Wfde.Harness.run_hb_detector ~mode ~net w with
        | Ok (), stab -> stab >= 0
        | Error e, _ -> Test.fail_reportf "%s: %s" (print (seed, net, strong)) e);
  ]

let suite =
  [
    Alcotest.test_case "hb ◇P conformance" `Quick test_hb_ev_perfect_conforms;
    Alcotest.test_case "hb ◇S conformance" `Quick test_hb_ev_strong_conforms;
    Alcotest.test_case "hb with crashes" `Quick test_hb_with_crashes;
    Alcotest.test_case "hb deterministic" `Quick test_hb_deterministic;
    Alcotest.test_case "extraction agrees with oracle" `Slow
      test_extraction_agrees_with_oracle;
    Alcotest.test_case "consensus with implemented omega" `Slow
      test_consensus_with_implemented_omega;
    Alcotest.test_case "DPOR hb clean" `Quick test_dpor_hb_clean;
    Alcotest.test_case "DPOR link-chaos clean" `Quick test_dpor_link_chaos_clean;
    Alcotest.test_case "mutant: timeout never increased" `Quick
      test_mutant_timeout_never_increased;
    Alcotest.test_case "mutant: suspected not restored" `Quick
      test_mutant_suspected_not_restored;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
