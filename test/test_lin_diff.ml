(* Differential test of the Wing–Gong linearizability checker against a
   brute-force oracle.

   The oracle implements the definition directly: a history is
   linearizable iff some subset of the pending operations can be chosen
   to take effect such that some total order of (completed ∪ chosen)
   extends real-time precedence and replays through the sequential spec
   reproducing every completed operation's recorded result. At the
   generated sizes (≤ 4 operations) that is at most 2⁴ subsets × 4!
   permutations per history — small enough to enumerate, independent
   enough to catch a bug in the recursive search, its memoization, or
   its pending-operation handling. Disagreements shrink via QCheck and
   print both verdicts. *)

open Check

let reg_spec = Histories.register_spec ~init:0

(* -- brute-force oracle ------------------------------------------------ *)

let rec insertions x = function
  | [] -> [ [ x ] ]
  | y :: ys -> (x :: y :: ys) :: List.map (fun zs -> y :: zs) (insertions x ys)

let rec permutations = function
  | [] -> [ [] ]
  | x :: xs -> List.concat_map (insertions x) (permutations xs)

let rec subsets = function
  | [] -> [ [] ]
  | x :: xs ->
      let rest = subsets xs in
      rest @ List.map (fun s -> x :: s) rest

let responded_of (e : _ Lin.event) =
  match e.Lin.result with None -> max_int | Some _ -> e.Lin.responded

let respects_precedence order =
  let rec go = function
    | [] -> true
    | e :: later ->
        List.for_all
          (fun l -> not (responded_of l < e.Lin.invoked))
          later
        && go later
  in
  go order

let replays order =
  let rec go state = function
    | [] -> true
    | e :: rest -> (
        let state', res = reg_spec.Lin.apply state e.Lin.op in
        match e.Lin.result with
        | None -> go state' rest (* pending: result unconstrained *)
        | Some r -> reg_spec.Lin.equal_res r res && go state' rest)
  in
  go reg_spec.Lin.init order

let oracle events =
  let completed, pending =
    List.partition (fun e -> e.Lin.result <> None) events
  in
  List.exists
    (fun chosen ->
      List.exists
        (fun order -> respects_precedence order && replays order)
        (permutations (completed @ chosen)))
    (subsets pending)

(* -- history generator ------------------------------------------------- *)

(* Well-formed histories: ≤ 3 processes, ≤ 4 operations total, each
   process's operations sequential in real time, at most the last
   operation of a process pending. Results are generated (not derived),
   so both linearizable and non-linearizable histories are common. *)

type g_op = { g_pid : int; g_write : int option; g_res : int; g_gap : int; g_dur : int; g_pend : bool }

let op_gen =
  QCheck.Gen.(
    map2
      (fun (g_pid, g_write, g_res) (g_gap, g_dur, g_pend) ->
        { g_pid; g_write; g_res; g_gap; g_dur; g_pend })
      (triple (int_bound 2) (opt (int_range 1 3)) (int_bound 3))
      (triple (int_bound 2) (int_range 1 3) (frequency [ (4, return false); (1, return true) ])))

let history_of_ops ops =
  let clock = Array.make 3 0 in
  let seen_pending = Array.make 3 false in
  List.filter_map
    (fun o ->
      if seen_pending.(o.g_pid) then None
      else begin
        let invoked = clock.(o.g_pid) + o.g_gap in
        let responded = invoked + o.g_dur in
        clock.(o.g_pid) <- responded + 1;
        let op =
          match o.g_write with
          | Some v -> Histories.Reg_write v
          | None -> Histories.Reg_read
        in
        if o.g_pend then begin
          seen_pending.(o.g_pid) <- true;
          Some (Lin.pending ~op ~invoked ~pid:o.g_pid)
        end
        else
          let result =
            match o.g_write with
            | Some _ -> Histories.Reg_unit
            | None -> Histories.Reg_val o.g_res
          in
          Some (Lin.completed ~op ~result ~invoked ~responded ~pid:o.g_pid)
      end)
    ops

let show_event (e : _ Lin.event) =
  Printf.sprintf "p%d %s%s [%d,%s]" e.Lin.pid
    (reg_spec.Lin.show_op e.Lin.op)
    (match e.Lin.result with
    | None -> " pending"
    | Some r -> " -> " ^ reg_spec.Lin.show_res r)
    e.Lin.invoked
    (if e.Lin.result = None then "inf" else string_of_int e.Lin.responded)

let history_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; " (List.map show_event (history_of_ops ops)))
    ~shrink:QCheck.Shrink.list
    QCheck.Gen.(list_size (int_bound 4) op_gen)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:1000 ~name:"Wing–Gong agrees with brute-force oracle"
      history_arb
      (fun ops ->
        let events = history_of_ops ops in
        let checker = Lin.check reg_spec events = Ok () in
        let brute = oracle events in
        if checker <> brute then
          Test.fail_reportf
            "checker says %b, oracle says %b on:@.  %s" checker brute
            (String.concat "@.  " (List.map show_event events))
        else true);
  ]

(* Pin the oracle itself on known histories so a bug in the oracle
   cannot silently weaken the differential test. *)

let wr ?(pid = 0) v ~at =
  Lin.completed ~op:(Histories.Reg_write v) ~result:Histories.Reg_unit
    ~invoked:at ~responded:at ~pid

let rd ?(pid = 0) v ~invoked ~responded =
  Lin.completed ~op:Histories.Reg_read ~result:(Histories.Reg_val v) ~invoked
    ~responded ~pid

let test_oracle_pinned () =
  let checkb = Alcotest.check Alcotest.bool in
  checkb "sequential write;read" true
    (oracle [ wr 1 ~at:1; rd 1 ~invoked:2 ~responded:3 ]);
  checkb "stale read rejected" false
    (oracle [ wr 1 ~at:1; rd 0 ~invoked:2 ~responded:3 ]);
  checkb "overlapping read may see either value" true
    (oracle [ wr 5 ~at:2; rd 0 ~invoked:1 ~responded:3 ~pid:1 ]
    && oracle [ wr 5 ~at:2; rd 5 ~invoked:1 ~responded:3 ~pid:1 ]);
  checkb "new/old inversion rejected" false
    (oracle
       [
         wr 1 ~at:1;
         rd 1 ~invoked:2 ~responded:3 ~pid:1;
         rd 0 ~invoked:4 ~responded:5 ~pid:2;
       ]);
  checkb "pending write may explain a read" true
    (oracle
       [
         Lin.pending ~op:(Histories.Reg_write 9) ~invoked:1 ~pid:0;
         rd 9 ~invoked:2 ~responded:3 ~pid:1;
       ]);
  checkb "pending write may also never happen" true
    (oracle
       [
         Lin.pending ~op:(Histories.Reg_write 9) ~invoked:1 ~pid:0;
         rd 0 ~invoked:2 ~responded:3 ~pid:1;
       ])

let suite =
  Alcotest.test_case "oracle pinned on known histories" `Quick
    test_oracle_pinned
  :: List.map QCheck_alcotest.to_alcotest qcheck_cases
