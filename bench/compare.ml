(* Deterministic perf-regression checker.

   Usage: compare BASELINE.json CURRENT.json

   Both files are wfde-bench/1 documents (bench/main.exe --json; the
   quick CI path produces one with --macro-only). Only the "macro"
   section is compared — it is the part built from deterministic work
   counters:

   - every counter of an entry present in both files must not INCREASE
     (executions, races, backtrack points, scheduler steps are exact
     functions of the checked algorithms; an increase means the
     reduction got weaker or the kernel does more work per run);
   - minor-heap words must not grow by more than 10% (allocation counts
     are deterministic for a fixed compiler but drift slightly across
     compiler versions, hence the tolerance);
   - wall-clock times are printed with their ratio but never gate: CI
     machines are noisy, counters are not;
   - a baseline entry missing from the current run fails (a vanished
     benchmark hides regressions); a new current entry is reported and
     allowed.

   Exit status 0 = no regression, 1 = regression, 2 = usage/parse
   error. *)

let minor_words_tolerance = 1.10

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let load path =
  let ic = try open_in path with Sys_error e -> die "cannot open %s" e in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Wfde.Json.of_string s with
  | Ok j -> j
  | Error e -> die "%s: parse error: %s" path e

let get_macro path doc =
  (match Wfde.Json.member "schema" doc |> Option.map Wfde.Json.to_str with
  | Some (Some "wfde-bench/1") -> ()
  | _ -> die "%s: not a wfde-bench/1 document" path);
  match Wfde.Json.member "macro" doc with
  | Some (Wfde.Json.List entries) ->
      List.filter_map
        (fun e ->
          let str k = Option.bind (Wfde.Json.member k e) Wfde.Json.to_str in
          let num k = Option.bind (Wfde.Json.member k e) Wfde.Json.to_float in
          match (str "name", num "wall_seconds", num "minor_words") with
          | Some name, Some wall, Some minor ->
              let counters =
                match Wfde.Json.member "counters" e with
                | Some (Wfde.Json.Obj kvs) ->
                    List.filter_map
                      (fun (k, v) ->
                        Option.map (fun i -> (k, i)) (Wfde.Json.to_int v))
                      kvs
                | _ -> []
              in
              Some (name, (wall, minor, counters))
          | _ -> die "%s: malformed macro entry" path)
        entries
  | _ -> die "%s: no \"macro\" section (rerun bench with --macro-only)" path

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ -> die "usage: %s BASELINE.json CURRENT.json" Sys.argv.(0)
  in
  let baseline = get_macro baseline_path (load baseline_path) in
  let current = get_macro current_path (load current_path) in
  let regressions = ref [] in
  let regress fmt =
    Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt
  in
  List.iter
    (fun (name, (b_wall, b_minor, b_counters)) ->
      match List.assoc_opt name current with
      | None -> regress "%s: entry missing from current run" name
      | Some (c_wall, c_minor, c_counters) ->
          Printf.printf "%-38s wall %7.3fs -> %7.3fs (%5.2fx)\n" name b_wall
            c_wall
            (if c_wall > 0. then b_wall /. c_wall else nan);
          List.iter
            (fun (k, bv) ->
              match List.assoc_opt k c_counters with
              | None -> regress "%s: counter %s vanished (was %d)" name k bv
              | Some cv when cv > bv ->
                  regress "%s: counter %s regressed %d -> %d" name k bv cv
              | Some cv when cv < bv ->
                  Printf.printf "  improved counter %-20s %d -> %d\n" k bv cv
              | Some _ -> ())
            b_counters;
          if c_minor > b_minor *. minor_words_tolerance then
            regress "%s: minor_words regressed %.0f -> %.0f (> %.0f%% growth)"
              name b_minor c_minor
              ((minor_words_tolerance -. 1.) *. 100.)
          else if c_minor < b_minor then
            Printf.printf "  improved minor_words %24.0f -> %.0f (%.1fx less)\n"
              b_minor c_minor
              (if c_minor > 0. then b_minor /. c_minor else nan))
    baseline;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name baseline) then
        Printf.printf "%-38s new entry (no baseline)\n" name)
    current;
  match List.rev !regressions with
  | [] -> print_endline "compare: no deterministic-counter regressions"
  | rs ->
      List.iter (fun r -> Printf.eprintf "REGRESSION %s\n" r) rs;
      exit 1
