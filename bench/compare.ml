(* Deterministic perf-regression checker.

   Usage: compare BASELINE.json CURRENT.json

   Both files are wfde-bench/1 documents (bench/main.exe --json; the
   quick CI path produces one with --macro-only). The gated sections
   ([gated_sections] below) are the ones built from deterministic work
   counters — "macro" (DPOR/Lin), "serve"/"serve_tracing"/"serve_cache"
   (daemon load generator), "fabric" (scale-out coordinator), and
   "detector_impl" (heartbeat detectors over partially synchronous
   links) — compared entry by entry under the same rules:

   - every counter of an entry present in both files must not INCREASE
     (executions, races, backtrack points, scheduler steps, service
     errors, payload mismatches are exact functions of the algorithms
     and the workload; an increase means a behaviour change);
   - minor-heap words, when both sides record them, must not grow by
     more than 10% (allocation counts are deterministic for a fixed
     compiler but drift slightly across compiler versions);
   - wall-clock times are printed with their ratio but never gate: CI
     machines are noisy, counters are not;
   - a baseline entry missing from the current run fails (a vanished
     benchmark hides regressions); a new current entry is reported and
     allowed;
   - a whole section present in the current run but absent from the
     baseline is reported as "new section, not gated" — that is how a
     freshly added bench part rides over an older committed baseline —
     while a section the baseline has and the current run lost is a
     regression.

   Exit status 0 = no regression, 1 = regression, 2 = usage/parse
   error. *)

let minor_words_tolerance = 1.10
let gated_sections =
  [ "macro"; "serve"; "serve_tracing"; "serve_cache"; "fabric"; "detector_impl" ]

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let load path =
  let ic = try open_in path with Sys_error e -> die "cannot open %s" e in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Wfde.Json.of_string s with
  | Ok j -> j
  | Error e -> die "%s: parse error: %s" path e

type entry = {
  wall : float;
  minor_words : float option;
  counters : (string * int) list;
}

(* [None] = the document has no such section; [Some entries] otherwise.
   Entries need a name and a wall time; minor_words and counters are
   per-section extras. *)
let get_section ~section path doc =
  match Wfde.Json.member section doc with
  | None -> None
  | Some (Wfde.Json.List entries) ->
      Some
        (List.map
           (fun e ->
             let str k = Option.bind (Wfde.Json.member k e) Wfde.Json.to_str in
             let num k =
               Option.bind (Wfde.Json.member k e) Wfde.Json.to_float
             in
             match (str "name", num "wall_seconds") with
             | Some name, Some wall ->
                 let counters =
                   match Wfde.Json.member "counters" e with
                   | Some (Wfde.Json.Obj kvs) ->
                       List.filter_map
                         (fun (k, v) ->
                           Option.map (fun i -> (k, i)) (Wfde.Json.to_int v))
                         kvs
                   | _ -> []
                 in
                 (name, { wall; minor_words = num "minor_words"; counters })
             | _ -> die "%s: malformed %S entry" path section)
           entries)
  | Some _ -> die "%s: %S is not a list" path section

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ -> die "usage: %s BASELINE.json CURRENT.json" Sys.argv.(0)
  in
  let baseline_doc = load baseline_path and current_doc = load current_path in
  List.iter
    (fun (path, doc) ->
      match Wfde.Json.member "schema" doc |> Option.map Wfde.Json.to_str with
      | Some (Some "wfde-bench/1") -> ()
      | _ -> die "%s: not a wfde-bench/1 document" path)
    [ (baseline_path, baseline_doc); (current_path, current_doc) ];
  let regressions = ref [] in
  let regress fmt =
    Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt
  in
  let compare_section section =
    let baseline = get_section ~section baseline_path baseline_doc in
    let current = get_section ~section current_path current_doc in
    match (baseline, current) with
    | None, None -> ()
    | None, Some _ ->
        Printf.printf "section %-33s new section, not gated\n" section
    | Some _, None ->
        regress "section %s vanished from the current run" section
    | Some baseline, Some current ->
        List.iter
          (fun (name, b) ->
            match List.assoc_opt name current with
            | None -> regress "%s: entry missing from current run" name
            | Some c ->
                Printf.printf "%-38s wall %7.3fs -> %7.3fs (%5.2fx)\n" name
                  b.wall c.wall
                  (if c.wall > 0. then b.wall /. c.wall else nan);
                List.iter
                  (fun (k, bv) ->
                    match List.assoc_opt k c.counters with
                    | None -> regress "%s: counter %s vanished (was %d)" name k bv
                    | Some cv when cv > bv ->
                        regress "%s: counter %s regressed %d -> %d" name k bv cv
                    | Some cv when cv < bv ->
                        Printf.printf
                          "  improved counter %-20s %d -> %d (-%.1f%%)\n" k bv
                          cv
                          (100. *. float_of_int (bv - cv) /. float_of_int bv)
                    | Some _ -> ())
                  b.counters;
                (match (b.minor_words, c.minor_words) with
                | Some b_minor, Some c_minor ->
                    if c_minor > b_minor *. minor_words_tolerance then
                      regress
                        "%s: minor_words regressed %.0f -> %.0f (> %.0f%% growth)"
                        name b_minor c_minor
                        ((minor_words_tolerance -. 1.) *. 100.)
                    else if c_minor < b_minor then
                      Printf.printf
                        "  improved minor_words %24.0f -> %.0f (%.1fx less)\n"
                        b_minor c_minor
                        (if c_minor > 0. then b_minor /. c_minor else nan)
                | _ -> ());
          )
          baseline;
        List.iter
          (fun (name, _) ->
            if not (List.mem_assoc name baseline) then
              Printf.printf "%-38s new entry (no baseline)\n" name)
          current
  in
  List.iter compare_section gated_sections;
  match List.rev !regressions with
  | [] -> print_endline "compare: no deterministic-counter regressions"
  | rs ->
      List.iter (fun r -> Printf.eprintf "REGRESSION %s\n" r) rs;
      exit 1
