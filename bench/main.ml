(* The benchmark harness.

   Part 1 regenerates every experiment table (E1-E11, A1-A3) — the
   paper's "evaluation" is its theorems, so each table reports a claim
   and the measurements backing it (see DESIGN.md's experiment index and
   EXPERIMENTS.md for the paper-vs-measured record).

   Part 1.5 re-runs representative experiments on a 1-worker and a
   4-worker Exec.Pool, recording serial vs parallel wall time and the
   speedup, and asserting the rendered tables are byte-identical — the
   determinism contract of the parallel sweep runner.

   Part 2 times the representative kernels with bechamel: one Test.make
   per experiment, plus substrate micro-benchmarks.

   With --json PATH, the same run also emits a machine-readable document
   (schema "wfde-bench/1"): per-experiment verdicts and wall times, the
   ns/run estimates, and the full telemetry-registry snapshot. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------- part 1 *)

let print_experiment_tables () =
  Format.printf "==================================================@.";
  Format.printf "Part 1: experiment tables (one per paper claim)@.";
  Format.printf "==================================================@.@.";
  let outcomes =
    List.map
      (fun (id, _) ->
        let f = Option.get (Wfde.Experiments.by_id id) in
        let t0 = Unix.gettimeofday () in
        let o = f () in
        (o, Unix.gettimeofday () -. t0))
      Wfde.Experiments.catalog
  in
  List.iter
    (fun (o, _) -> Format.printf "%a@." Wfde.Experiments.pp o)
    outcomes;
  let failed =
    List.filter (fun (o, _) -> not o.Wfde.Experiments.ok) outcomes
  in
  if failed = [] then
    Format.printf "summary: all %d experiment claims hold@.@."
      (List.length outcomes)
  else
    Format.printf "summary: FAILED claims: %s@.@."
      (String.concat ", "
         (List.map (fun (o, _) -> o.Wfde.Experiments.id) failed));
  outcomes

(* ----------------------------------------------------------- part 1.5 *)

(* Serial vs parallel sweep over the heaviest seed-sharded experiments.
   Tables must be byte-identical at every jobs value (checked here);
   only the wall clock may differ. On a >= 4-core host the parallel leg
   shows the speedup; on fewer cores domain-spawn overhead can make it
   slower — the recorded ratio is honest either way. *)

let sweep_selection = [ ("e1", 3); ("e2", 2); ("e6", 2) ]

let time_sweep ~jobs =
  List.map
    (fun (id, scale) ->
      let f = Option.get (Wfde.Experiments.by_id id) in
      let t0 = Unix.gettimeofday () in
      let o = f ~scale ~jobs () in
      let wall = Unix.gettimeofday () -. t0 in
      (id, Format.asprintf "%a" Wfde.Experiments.pp o, wall))
    sweep_selection

let parallel_sweep_entries () =
  Format.printf "==================================================@.";
  Format.printf "Part 1.5: serial vs parallel sweep (Exec.Pool)@.";
  Format.printf "==================================================@.@.";
  let serial = time_sweep ~jobs:1 in
  let parallel = time_sweep ~jobs:4 in
  let entries =
    List.map2
      (fun (id, table1, wall1) (_, table4, wall4) ->
        let identical = table1 = table4 in
        Format.printf
          "%-4s -j1 %7.3fs   -j4 %7.3fs   speedup %5.2fx   tables %s@." id
          wall1 wall4 (wall1 /. wall4)
          (if identical then "identical" else "DIFFER (BUG)");
        (id, wall1, wall4, identical))
      serial parallel
  in
  Format.printf "@.";
  if List.for_all (fun (_, _, _, i) -> i) entries then
    Format.printf "determinism: all tables byte-identical at -j1 / -j4@.@."
  else
    Format.printf "determinism: FAILED — tables differ between -j1 and -j4@.@.";
  entries

(* ------------------------------------------------------------- part 3 *)

(* DPOR / Lin macro-benchmark: the model-checking hot paths, measured
   with both the wall clock and deterministic work counters. The
   counters (executions, races, backtrack points, scheduler steps) are
   functions of the algorithm, not the machine, so a change in any of
   them is a behaviour change; minor-heap words measure allocation
   pressure and are deterministic per compiler. bench/compare.ml diffs
   the "macro" section of two wfde-bench/1 documents and fails on
   counter or allocation regressions — wall clock is reported but never
   gates. *)

type macro_entry = {
  macro_name : string;
  macro_wall : float;
  macro_minor_words : int;
  macro_counters : (string * int) list;
  macro_snap : Wfde.Metrics.snapshot;
}

(* Deterministic Lin workload: random-but-seeded register histories,
   shaped like the ones the scenarios record (per-process sequential
   operations, occasional pending write). The checker's verdict count
   is the deterministic counter. *)
let lin_histories ~histories ~procs ~ops_per_proc =
  let rng = Wfde.Rng.create 42 in
  List.init histories (fun _ ->
      let events = ref [] in
      for pid = 0 to procs - 1 do
        let t = ref (Wfde.Rng.int rng 3) in
        for _ = 1 to ops_per_proc do
          let dur = Wfde.Rng.int rng 4 in
          let invoked = !t and responded = !t + dur in
          t := responded + 1 + Wfde.Rng.int rng 3;
          let write = Wfde.Rng.int rng 3 = 0 in
          let ev =
            if write then
              let v = Wfde.Rng.int rng 3 in
              if Wfde.Rng.int rng 8 = 0 then
                Wfde.Lin.pending
                  ~op:(Wfde.Check.Histories.Reg_write v)
                  ~invoked ~pid
              else
                Wfde.Lin.completed
                  ~op:(Wfde.Check.Histories.Reg_write v)
                  ~result:Wfde.Check.Histories.Reg_unit ~invoked ~responded
                  ~pid
            else
              Wfde.Lin.completed ~op:Wfde.Check.Histories.Reg_read
                ~result:(Wfde.Check.Histories.Reg_val (Wfde.Rng.int rng 3))
                ~invoked ~responded ~pid
          in
          events := ev :: !events
        done
      done;
      List.rev !events)

let macro_configs : (string * (unit -> (string * int) list)) list =
  let check ?procs ?mutant ~depth obj =
    let o = Wfde.Harness.check_exhaustive ?procs ?mutant ~depth obj in
    [ ("violations", if o.Wfde.Harness.violation = None then 0 else 1) ]
  in
  [
    ( "check/register p2 d6",
      fun () -> check Wfde.Scenario.Register ~procs:2 ~depth:6 );
    ( "check/register p3 d8",
      fun () -> check Wfde.Scenario.Register ~procs:3 ~depth:8 );
    ( "check/snapshot p3 d12",
      fun () -> check Wfde.Scenario.Snapshot ~procs:3 ~depth:12 );
    ( "check/abd p3 d10 (25 crash patterns)",
      fun () -> check Wfde.Scenario.Abd ~procs:3 ~depth:10 );
    ( "check/abd p3 d12 (25 crash patterns)",
      fun () -> check Wfde.Scenario.Abd ~procs:3 ~depth:12 );
    ( "check/commit-adopt p3 d8",
      fun () -> check Wfde.Scenario.Commit_adopt ~procs:3 ~depth:8 );
    ( "check/mutant converge-drop-phase2 d6",
      fun () ->
        check Wfde.Scenario.Commit_adopt
          ~mutant:Wfde.Mutant.Converge_drop_phase2 ~depth:6 );
    (* Old-vs-new reduction strength on one deep config: the retired
       sleep-set explorer swept over the same patterns as the
       source-set one. Both totals are deterministic; the explicit
       counters keep the comparison visible in every baseline (the
       metric-derived "executions" field of this entry counts only the
       optimal explorer — the retired one bumps no metrics). *)
    ( "dpor/sleep-vs-optimal abd p3 d10",
      fun () ->
        let module D = Wfde.Check.Dpor in
        let module S = Wfde.Check.Dpor_sleep in
        let obj = Wfde.Scenario.Abd and procs = 3 and depth = 10 in
        let patterns = Wfde.Check.Scenario.patterns obj ~procs in
        let make = Wfde.Check.Scenario.make obj ~procs in
        let opt, slp =
          List.fold_left
            (fun (a, b) pattern ->
              let o = D.explore ~pattern ~depth ~horizon:400 ~make () in
              let s = S.explore ~pattern ~depth ~horizon:400 ~make () in
              ( a + o.D.stats.D.executions,
                b + s.S.stats.S.executions ))
            (0, 0) patterns
        in
        [ ("executions_optimal", opt); ("executions_sleep", slp) ] );
    ( "lin/register histories 400x12",
      fun () ->
        let hs = lin_histories ~histories:400 ~procs:3 ~ops_per_proc:4 in
        let spec = Wfde.Check.Histories.register_spec ~init:0 in
        let ok =
          List.fold_left
            (fun acc h ->
              match Wfde.Lin.check spec h with Ok () -> acc + 1 | Error _ -> acc)
            0 hs
        in
        [ ("lin_ok", ok) ] );
  ]

let macro_counter_names =
  [
    ("executions", "check.dpor.executions");
    ("sleep_blocked", "check.dpor.sleep_blocked");
    ("deduped", "check.dpor.deduped");
    ("races", "check.dpor.races");
    ("backtrack_points", "check.dpor.backtrack_points");
    ("scheduler_steps", "kernel.scheduler.steps");
    ("shrink_replays", "check.shrink.replays");
  ]

let run_macro_entry ?(metric_names = macro_counter_names) (name, f) =
  Wfde.Metrics.reset ();
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let extra = f () in
  let wall = Unix.gettimeofday () -. t0 in
  let minor = int_of_float (Gc.minor_words () -. w0) in
  let snap = Wfde.Metrics.snapshot () in
  let counters =
    extra
    @ List.filter_map
        (fun (label, metric) ->
          match Wfde.Metrics.find_counter snap metric with
          | Some v when v > 0 -> Some (label, v)
          | Some _ | None -> None)
        metric_names
  in
  {
    macro_name = name;
    macro_wall = wall;
    macro_minor_words = minor;
    macro_counters = counters;
  macro_snap = snap;
  }

let macro_entries () =
  Format.printf "==================================================@.";
  Format.printf "Part 3: DPOR/Lin macro-bench (deterministic counters)@.";
  Format.printf "==================================================@.@.";
  (* Each entry runs on a freshly reset registry so its counters are its
     own; the pre-existing totals (parts 1-2) are saved and re-absorbed
     afterwards, together with every entry's snapshot, so the final
     telemetry section still covers the whole process. *)
  let saved = Wfde.Metrics.snapshot () in
  let entries = List.map run_macro_entry macro_configs in
  Wfde.Metrics.reset ();
  Wfde.Metrics.absorb saved;
  List.iter (fun e -> Wfde.Metrics.absorb e.macro_snap) entries;
  List.iter
    (fun e ->
      Format.printf "%-38s %8.3fs  %11d minor words  %s@." e.macro_name
        e.macro_wall e.macro_minor_words
        (String.concat " "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              e.macro_counters)))
    entries;
  Format.printf "@.";
  entries

(* ------------------------------------------------------------- part 4 *)

(* Service-daemon throughput/latency: an in-process daemon serving the
   deterministic Loadgen workload, one serial leg (1 client) and one
   concurrent leg (4 clients) over the SAME global request indices.
   Wall time, throughput, and latency percentiles are machine-dependent
   and never gate; the work counters are deterministic and do:
   errors / requests_missing / payload_mismatches must stay 0, and
   payload_bytes is an exact function of the workload (the serial and
   concurrent legs must agree on it — that is the daemon's determinism
   contract under concurrency). *)

type serve_entry = {
  serve_name : string;
  serve_wall : float;
  serve_rps : float;
  serve_p50 : float;
  serve_p95 : float;
  serve_p99 : float;
  serve_counters : (string * int) list;
}

let serve_requests = 60
let serve_clients = 4

let latency_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let serve_entry_of ~name ~(leg : Serve.Loadgen.leg) ~extra_counters =
  let sorted =
    let a =
      Array.of_list
        (List.filter (fun l -> l > 0.) (Array.to_list leg.latencies_ms))
    in
    Array.sort compare a;
    a
  in
  {
    serve_name = name;
    serve_wall = leg.wall_seconds;
    serve_rps =
      (if leg.wall_seconds > 0. then float_of_int leg.ok /. leg.wall_seconds
       else 0.);
    serve_p50 = latency_percentile sorted 0.50;
    serve_p95 = latency_percentile sorted 0.95;
    serve_p99 = latency_percentile sorted 0.99;
    serve_counters =
      [
        ("errors", leg.errors + leg.transport_errors);
        ("requests_missing", leg.total - leg.ok);
        ("payload_bytes", leg.payload_bytes);
      ]
      @ extra_counters;
  }

let bench_socket tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "wfde-bench-%s-%d.sock" tag (Unix.getpid ()))

let print_serve_entries entries =
  List.iter
    (fun e ->
      Format.printf
        "%-34s %7.3fs  %8.1f req/s  p50 %6.2fms p95 %6.2fms p99 %6.2fms  %s@."
        e.serve_name e.serve_wall e.serve_rps e.serve_p50 e.serve_p95
        e.serve_p99
        (String.concat " "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              e.serve_counters)))
    entries;
  Format.printf "@."

(* Returns the entries plus the untraced serial leg, which part 5 uses
   as the payload reference for the tracing-is-invisible gate. *)
let serve_entries () =
  Format.printf "==================================================@.";
  Format.printf "Part 4: service daemon (deterministic load generator)@.";
  Format.printf "==================================================@.@.";
  let socket = bench_socket "plain" in
  (* cache off: part 4 measures the engine fleet; part 6 measures the
     cache *)
  let daemon =
    Serve.Daemon.start ~workers:serve_clients ~queue_capacity:64
      ~cache:Serve.Cache.disabled ~socket ()
  in
  let entries, serial =
    Fun.protect
      ~finally:(fun () -> Serve.Daemon.stop daemon)
      (fun () ->
        let serial =
          Serve.Loadgen.run ~socket ~total:serve_requests ~clients:1 ()
        in
        let concurrent =
          Serve.Loadgen.run ~socket ~total:serve_requests
            ~clients:serve_clients ()
        in
        let mismatches = Serve.Loadgen.mismatches ~reference:serial concurrent in
        ( [
            serve_entry_of
              ~name:
                (Printf.sprintf "serve/serial %d reqs x1 client" serve_requests)
              ~leg:serial ~extra_counters:[];
            serve_entry_of
              ~name:
                (Printf.sprintf "serve/concurrent %d reqs x%d clients"
                   serve_requests serve_clients)
              ~leg:concurrent
              ~extra_counters:[ ("payload_mismatches", mismatches) ];
          ],
          serial ))
  in
  print_serve_entries entries;
  (entries, serial)

(* ------------------------------------------------------------- part 5 *)

(* Tracing overhead: the same workload against a daemon with a span
   sink, every request carrying a trace id. The deterministic gates:
   payloads must be byte-identical to the untraced part-4 reference
   (tracing must be invisible in response bytes), no request may fail,
   and the exported span count is an exact function of the workload —
   identical for the serial and the concurrent leg. Wall time and
   throughput (the actual overhead) are reported but never gate. *)

let tracing_entries ~reference ~spans_out =
  Format.printf "==================================================@.";
  Format.printf "Part 5: tracing overhead (spans on, payloads gated)@.";
  Format.printf "==================================================@.@.";
  let socket = bench_socket "traced" in
  let chan = Option.map open_out spans_out in
  let sink =
    match chan with
    | Some oc -> Wfde.Obs.Span.sink ~out:oc ()
    | None -> Wfde.Obs.Span.sink ()
  in
  (* cache off: with caching, first-occurrence misses and later hits
     would export different span trees per index and the gated span
     count would stop being a pure function of the workload *)
  let daemon =
    Serve.Daemon.start ~workers:serve_clients ~queue_capacity:64
      ~cache:Serve.Cache.disabled ~trace:sink ~socket ()
  in
  let entries =
    Fun.protect
      ~finally:(fun () ->
        Serve.Daemon.stop daemon;
        Option.iter close_out chan)
      (fun () ->
        let leg ~trace_prefix ~clients =
          let before = Wfde.Obs.Span.absorbed sink in
          let l =
            Serve.Loadgen.run ~trace_prefix ~socket ~total:serve_requests
              ~clients ()
          in
          (l, Wfde.Obs.Span.absorbed sink - before)
        in
        let serial, serial_spans = leg ~trace_prefix:"s" ~clients:1 in
        let concurrent, concurrent_spans =
          leg ~trace_prefix:"c" ~clients:serve_clients
        in
        let entry ~name ~l ~spans =
          serve_entry_of ~name ~leg:l
            ~extra_counters:
              [
                ("spans", spans);
                ( "payload_mismatches_vs_untraced",
                  Serve.Loadgen.mismatches ~reference l );
              ]
        in
        [
          entry
            ~name:
              (Printf.sprintf "serve+trace/serial %d reqs x1 client"
                 serve_requests)
            ~l:serial ~spans:serial_spans;
          entry
            ~name:
              (Printf.sprintf "serve+trace/concurrent %d reqs x%d clients"
                 serve_requests serve_clients)
            ~l:concurrent ~spans:concurrent_spans;
        ])
  in
  print_serve_entries entries;
  (match entries with
  | { serve_rps = traced_rps; _ } :: _ when reference.Serve.Loadgen.wall_seconds > 0. ->
      let untraced_rps =
        float_of_int reference.Serve.Loadgen.ok
        /. reference.Serve.Loadgen.wall_seconds
      in
      if untraced_rps > 0. then
        Format.printf
          "tracing overhead (serial, wall-clock, not gated): %.1f%% \
           throughput drop (%.1f req/s untraced -> %.1f traced)@.@."
          ((untraced_rps -. traced_rps) /. untraced_rps *. 100.)
          untraced_rps traced_rps
  | _ -> ());
  (match spans_out with
  | Some path -> Format.printf "wrote wfde-span/1 JSONL to %s@.@." path
  | None -> ());
  entries

(* ------------------------------------------------------------- part 6 *)

(* Result cache under the Zipf-skewed repeated-request scenario: one
   uncached reference leg, then — against a caching daemon, over the
   SAME global request indices — a cold-to-warm serial leg, a fully
   warm "hot" leg (every request a hit), and a concurrent leg.
   Deterministic gates: errors / requests_missing stay 0,
   payload_mismatches against the uncached reference stays 0 (cached
   bytes == computed bytes), class_mismatches stays 0 (-j1/-j2 twins
   byte-identical), cache_misses is exactly the number of distinct
   classes the seed samples, and the hot leg computes nothing
   (cache_misses_during_leg=0). Throughput — where the
   order-of-magnitude win shows up, measured on the hot leg — is
   reported but never gates. *)

let zipf_total = 150
let zipf_seed = 11

let cache_bench_entries () =
  Format.printf "==================================================@.";
  Format.printf "Part 6: result cache (Zipf-skewed repeated requests)@.";
  Format.printf "==================================================@.@.";
  let skew = Serve.Loadgen.default_skew in
  let universe = Serve.Loadgen.default_universe in
  let classes =
    Serve.Loadgen.zipf_distinct_classes ~seed:zipf_seed ~skew ~universe
      ~total:zipf_total
  in
  let run_leg ~socket ~clients =
    Serve.Loadgen.run_zipf ~seed:zipf_seed ~socket ~total:zipf_total ~clients ()
  in
  let uncached =
    let socket = bench_socket "uncached" in
    let daemon =
      Serve.Daemon.start ~workers:serve_clients ~queue_capacity:64
        ~cache:Serve.Cache.disabled ~socket ()
    in
    Fun.protect
      ~finally:(fun () -> Serve.Daemon.stop daemon)
      (fun () -> run_leg ~socket ~clients:1)
  in
  let socket = bench_socket "cached" in
  let daemon =
    Serve.Daemon.start ~workers:serve_clients ~queue_capacity:64 ~socket ()
  in
  let serial, serial_stats, hot, hot_stats, concurrent =
    Fun.protect
      ~finally:(fun () -> Serve.Daemon.stop daemon)
      (fun () ->
        let serial = run_leg ~socket ~clients:1 in
        let stats = Serve.Daemon.cache_stats daemon in
        (* the same leg again, now fully warm: every request is a hit,
           which is where the throughput multiple is measured *)
        let hot = run_leg ~socket ~clients:1 in
        let hot_stats = Serve.Daemon.cache_stats daemon in
        let concurrent = run_leg ~socket ~clients:serve_clients in
        (serial, stats, hot, hot_stats, concurrent))
  in
  let class_mismatches l =
    Serve.Loadgen.zipf_class_mismatches ~seed:zipf_seed l
  in
  let entries =
    [
      serve_entry_of
        ~name:(Printf.sprintf "cache/zipf uncached %d reqs x1 client" zipf_total)
        ~leg:uncached
        ~extra_counters:[ ("class_mismatches", class_mismatches uncached) ];
      serve_entry_of
        ~name:(Printf.sprintf "cache/zipf cached %d reqs x1 client" zipf_total)
        ~leg:serial
        ~extra_counters:
          [
            ( "payload_mismatches",
              Serve.Loadgen.mismatches ~reference:uncached serial );
            ("class_mismatches", class_mismatches serial);
            ("cache_misses", serial_stats.Serve.Cache.misses);
            ("cache_hits", serial_stats.Serve.Cache.hits);
            ("expected_misses", classes);
          ];
      serve_entry_of
        ~name:
          (Printf.sprintf "cache/zipf cached hot %d reqs x1 client" zipf_total)
        ~leg:hot
        ~extra_counters:
          [
            ( "payload_mismatches",
              Serve.Loadgen.mismatches ~reference:uncached hot );
            ("class_mismatches", class_mismatches hot);
            ( "cache_misses_during_leg",
              hot_stats.Serve.Cache.misses - serial_stats.Serve.Cache.misses );
            ( "cache_hits_during_leg",
              hot_stats.Serve.Cache.hits - serial_stats.Serve.Cache.hits );
          ];
      serve_entry_of
        ~name:
          (Printf.sprintf "cache/zipf cached %d reqs x%d clients" zipf_total
             serve_clients)
        ~leg:concurrent
        ~extra_counters:
          [
            ( "payload_mismatches",
              Serve.Loadgen.mismatches ~reference:uncached concurrent );
            ("class_mismatches", class_mismatches concurrent);
          ];
    ]
  in
  print_serve_entries entries;
  let rps (l : Serve.Loadgen.leg) =
    if l.wall_seconds > 0. then float_of_int l.ok /. l.wall_seconds else 0.
  in
  if rps uncached > 0. then
    Format.printf
      "cache speedup (hot hit-only leg, wall-clock, not gated): %.1fx \
       (%.1f req/s uncached -> %.1f hot; warm leg %.1f req/s with %d hits / \
       %d misses over %d classes)@.@."
      (rps hot /. rps uncached)
      (rps uncached) (rps hot) (rps serial) serial_stats.Serve.Cache.hits
      serial_stats.Serve.Cache.misses classes;
  entries

(* ------------------------------------------------------------- part 7 *)

(* Scale-out fabric: the same exhaustive check (abd, depth 8) run
   serially in-process, through the fabric over 1 and 3 real [wfde
   serve] worker processes, and through a chaos leg — one worker
   SIGKILLed mid-sweep, another drained, the coordinator itself killed
   at a checkpoint and resumed. Wall time and the scale-out multiple
   are machine-dependent and never gate; the gated counters are the
   deterministic invariants: [errors] (a failed run), [text_mismatch]
   (merged stdout vs the serial renderer, byte compared),
   [payload_mismatches] (a unit computed twice answering different
   bytes), [recompute_imbalance] (|units_lost_to_crash -
   units_recomputed|, zero for every completed run), and
   [units_unaccounted] after the resume (journal + recomputed must
   cover the whole plan). Timing-dependent observables (how many units
   the crash actually lost, retry counts) are printed but kept out of
   the counters. *)

type fabric_entry = {
  fabric_name : string;
  fabric_wall : float;
  fabric_counters : (string * int) list;
}

let fabric_binary () =
  match Sys.getenv_opt "WFDE_BIN" with
  | Some p -> p
  | None ->
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/wfde_cli.exe"

let fabric_bench_entries () =
  Format.printf "==================================================@.";
  Format.printf "Part 7: scale-out fabric (chaos + checkpoint/resume)@.";
  Format.printf "==================================================@.@.";
  let obj = Wfde.Scenario.Abd and procs = 3 and depth = 8 in
  let t0 = Unix.gettimeofday () in
  let serial_outcome =
    Wfde.Harness.check_exhaustive ~jobs:1 ~procs ~depth obj
  in
  let serial_wall = Unix.gettimeofday () -. t0 in
  let want_text = Serve.Service.check_text serial_outcome in
  let plan = Fabric.Plan.check ~procs ~depth obj in
  let with_workers n f =
    let binary = fabric_binary () in
    let procs_ =
      List.init n (fun _ ->
          Serve.Loadgen.Proc.start ~binary
            ~socket:(bench_socket (Printf.sprintf "fabric%d" (Random.bits ())))
            ())
    in
    Fun.protect
      ~finally:(fun () -> List.iter Serve.Loadgen.Proc.destroy procs_)
      (fun () ->
        List.iter
          (fun p -> ignore (Serve.Loadgen.Proc.wait_ready p))
          procs_;
        f (Array.of_list procs_))
  in
  let entry_of ~name ~wall ~extra (r : (Fabric.Coordinator.outcome, string) result)
      =
    let counters =
      match r with
      | Error _ -> [ ("errors", 1) ]
      | Ok o ->
          [
            ("errors", 0);
            ("text_mismatch", if o.text = want_text then 0 else 1);
            ("payload_mismatches", o.progress.payload_mismatches);
            ( "recompute_imbalance",
              abs (o.progress.units_lost_to_crash - o.progress.units_recomputed)
            );
          ]
          @ extra o
    in
    { fabric_name = name; fabric_wall = wall; fabric_counters = counters }
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let plain n =
    with_workers n (fun procs_ ->
        let cfg =
          Fabric.Coordinator.default
            ~workers:
              (Array.to_list
                 (Array.map (fun p -> p.Serve.Loadgen.Proc.socket) procs_))
        in
        timed (fun () -> Fabric.Coordinator.run cfg plan))
  in
  let r1, wall1 = plain 1 in
  let r3, wall3 = plain 3 in
  let chaos () =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wfde-bench-fabric-ckpt-%d" (Unix.getpid ()))
    in
    with_workers 3 (fun procs_ ->
        let workers =
          Array.to_list
            (Array.map (fun p -> p.Serve.Loadgen.Proc.socket) procs_)
        in
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists dir then begin
              Array.iter
                (fun f -> Sys.remove (Filename.concat dir f))
                (Sys.readdir dir);
              Unix.rmdir dir
            end)
          (fun () ->
            timed (fun () ->
                (* leg 1: the coordinator dies at its crash point *)
                let cfg =
                  {
                    (Fabric.Coordinator.default ~workers) with
                    checkpoint = Some dir;
                    crash_after = Some 10;
                  }
                in
                let crashed_at =
                  match Fabric.Coordinator.run cfg plan with
                  | exception Fabric.Coordinator.Crashed k -> k
                  | Ok _ | Error _ -> -1
                in
                (* leg 2: resume; a worker is SIGKILLed and another
                   drained while the rest of the plan completes *)
                let killed = Atomic.make false and drained = Atomic.make false in
                let cfg =
                  {
                    (Fabric.Coordinator.default ~workers) with
                    checkpoint = Some dir;
                    resume = true;
                    on_unit_done =
                      Some
                        (fun k ->
                          if k >= 3 && not (Atomic.exchange killed true) then
                            Serve.Loadgen.Proc.sigkill procs_.(1);
                          if k >= 20 && not (Atomic.exchange drained true) then
                            Serve.Loadgen.Proc.sigterm procs_.(2));
                  }
                in
                (crashed_at, Fabric.Coordinator.run cfg plan))))
  in
  let (crashed_at, rc), wall_chaos = chaos () in
  let entries =
    [
      entry_of ~name:"fabric/check abd d8 x1 worker" ~wall:wall1
        ~extra:(fun _ -> [])
        r1;
      entry_of ~name:"fabric/check abd d8 x3 workers" ~wall:wall3
        ~extra:(fun _ -> [])
        r3;
      entry_of ~name:"fabric/check abd d8 chaos+resume" ~wall:wall_chaos
        ~extra:(fun o ->
          [
            ( "units_unaccounted",
              o.progress.units_total - o.progress.units_from_journal
              - o.progress.units_completed );
            ("coordinator_crashed", if crashed_at >= 0 then 1 else 0);
          ])
        rc;
    ]
  in
  List.iter
    (fun e ->
      Format.printf "%-34s %7.3fs  %s@." e.fabric_name e.fabric_wall
        (String.concat " "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              e.fabric_counters)))
    entries;
  (match rc with
  | Ok o ->
      Format.printf
        "fabric chaos (not gated): coordinator crashed after %d units, \
         resumed %d from journal, recomputed %d of %d lost, %d rpc retries, \
         %d dead workers@."
        crashed_at o.progress.units_from_journal o.progress.units_recomputed
        o.progress.units_lost_to_crash o.progress.rpc_retries
        o.progress.workers_dead
  | Error msg -> Format.printf "fabric chaos FAILED: %s@." msg);
  Format.printf
    "fabric scale-out (wall-clock, not gated): serial %.3fs, x1 %.3fs, x3 \
     %.3fs (%.2fx vs x1)@.@."
    serial_wall wall1 wall3
    (if wall3 > 0. then wall1 /. wall3 else nan);
  entries

let fabric_section_json entries =
  let module J = Wfde.Json in
  J.List
    (List.map
       (fun e ->
         J.Obj
           [
             ("name", J.String e.fabric_name);
             ("wall_seconds", J.Float e.fabric_wall);
             ( "counters",
               J.Obj (List.map (fun (k, v) -> (k, J.Int v)) e.fabric_counters)
             );
           ])
       entries)

(* ------------------------------------------------------------- part 8 *)

(* Oracle vs implemented detectors: the heartbeat monitors and the link
   layer under them, measured with deterministic work counters only —
   link traffic (sent/delivered/dropped/delayed), detector churn
   (heartbeats, suspicions, restores, timeout raises), scheduler steps,
   spec verdicts, stabilization/decision-time totals, and DPOR
   executions over the partial-synchrony scenarios. All are exact
   functions of the simulated world, so bench/compare.ml gates this
   section entry by entry like "macro". *)

let hb_bench_net =
  { Wfde.Link.gst = 60; delta = 2; pre_delay = 8; loss_pct = 40; link_seed = 6 }

let detector_impl_counter_names =
  macro_counter_names
  @ [
      ("link_sent", "net.link.sent{link=hb_ev_perfect}");
      ("link_delivered", "net.link.delivered{link=hb_ev_perfect}");
      ("link_dropped", "net.link.dropped{link=hb_ev_perfect}");
      ("link_delayed", "net.link.delayed{link=hb_ev_perfect}");
      ("hb_heartbeats", "hb.heartbeats{family=hb_ev_perfect}");
      ("hb_suspicions", "hb.suspicions{family=hb_ev_perfect}");
      ("hb_restores", "hb.restores{family=hb_ev_perfect}");
      ("hb_timeout_raises", "hb.timeout_raises{family=hb_ev_perfect}");
    ]

let detector_impl_configs : (string * (unit -> (string * int) list)) list =
  let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l in
  let world seed =
    Wfde.Harness.random_world ~seed ~n_plus_1:3 ~max_faulty:1 ~latest:60 ()
  in
  let monitors mode =
    let runs =
      List.map
        (fun seed ->
          Wfde.Harness.run_hb_detector ~mode ~net:hb_bench_net (world seed))
        [ 1; 2; 3 ]
    in
    [
      ("spec_ok", sum (fun (v, _) -> if Result.is_ok v then 1 else 0) runs);
      ("stab_total", sum snd runs);
    ]
  in
  let check ?mutant obj =
    let o =
      Wfde.Harness.check_exhaustive ?mutant ~procs:2 ~depth:5 ~horizon:500 obj
    in
    [ ("violations", if o.Wfde.Harness.violation = None then 0 else 1) ]
  in
  let chaos = Wfde.Scenario.default_chaos in
  [
    ("hb/evP monitors gst=60 loss=40 (3 worlds)", fun () -> monitors `Ev_perfect);
    ("hb/evS monitors gst=60 loss=40 (3 worlds)", fun () -> monitors `Ev_strong);
    ( "extraction/oracle-vs-hb f=2 (2 worlds)",
      fun () ->
        let rs =
          List.map
            (fun seed ->
              let w () =
                Wfde.Harness.random_world ~seed:(4000 + seed) ~n_plus_1:4
                  ~max_faulty:2 ~latest:150 ()
              in
              let oracle, _ =
                Wfde.Harness.run_extraction_of ~f:2 ~source:`Ev_perfect (w ())
              in
              let implemented, stab =
                Wfde.Harness.run_extraction_of ~f:2
                  ~source:(`Hb_ev_perfect hb_bench_net) (w ())
              in
              ( (if Result.is_ok oracle && Result.is_ok implemented then 1
                 else 0),
                stab ))
            [ 1; 2 ]
        in
        [
          ("both_ok", sum fst rs);
          ("hb_stab_total", sum snd rs);
        ] );
    ( "consensus/oracle-vs-hb n=3 (2 worlds)",
      fun () ->
        let rs =
          List.map
            (fun seed ->
              let w () =
                Wfde.Harness.random_world ~seed:(300 + seed) ~n_plus_1:3
                  ~max_faulty:1 ~latest:100 ()
              in
              let oracle, mem_o =
                Wfde.Harness.run_msg_consensus ~horizon:60_000 (w ())
              in
              let impl, mem_i =
                Wfde.Harness.run_msg_consensus ~horizon:60_000
                  ~omega_impl:hb_bench_net (w ())
              in
              let ok =
                Wfde.Harness.ok oracle && Wfde.Harness.ok impl
                && mem_o = Ok () && mem_i = Ok ()
              in
              ( (if ok then 1 else 0),
                impl.Wfde.Harness.last_decision_time,
                impl.Wfde.Harness.query_violations ))
            [ 1; 2 ]
        in
        [
          ("both_ok", sum (fun (x, _, _) -> x) rs);
          ("hb_decide_total", sum (fun (_, t, _) -> t) rs);
          ("query_violations", sum (fun (_, _, q) -> q) rs);
        ] );
    ( "check/hb-detector p2 d5",
      fun () -> check (Wfde.Scenario.Hb_detector chaos) );
    ( "check/link-chaos p2 d5",
      fun () -> check (Wfde.Scenario.Link_chaos chaos) );
    ( "check/hb-mutant timeout-never-increased d5",
      fun () ->
        check ~mutant:Wfde.Mutant.Hb_timeout_never_increased
          (Wfde.Scenario.Hb_detector chaos) );
  ]

let detector_impl_entries () =
  Format.printf "==================================================@.";
  Format.printf "Part 8: oracle vs implemented detectors (counters)@.";
  Format.printf "==================================================@.@.";
  let saved = Wfde.Metrics.snapshot () in
  let entries =
    List.map
      (run_macro_entry ~metric_names:detector_impl_counter_names)
      detector_impl_configs
  in
  Wfde.Metrics.reset ();
  Wfde.Metrics.absorb saved;
  List.iter (fun e -> Wfde.Metrics.absorb e.macro_snap) entries;
  List.iter
    (fun e ->
      Format.printf "%-42s %8.3fs  %11d minor words  %s@." e.macro_name
        e.macro_wall e.macro_minor_words
        (String.concat " "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              e.macro_counters)))
    entries;
  Format.printf "@.";
  entries

(* ------------------------------------------------------------- part 2 *)

let fig1_world seed =
  Wfde.Harness.random_world ~seed ~n_plus_1:4 ~max_faulty:3 ()

let bench_fig1 () =
  let seed = ref 0 in
  Test.make ~name:"e1/fig1-upsilon-sa (n+1=4)"
    (Staged.stage (fun () ->
         incr seed;
         ignore (Wfde.Harness.run_fig1 (fig1_world !seed))))

let bench_fig2 () =
  let seed = ref 0 in
  Test.make ~name:"e2/fig2-upsilon-f-sa (n+1=4, f=2)"
    (Staged.stage (fun () ->
         incr seed;
         let world =
           Wfde.Harness.random_world ~seed:!seed ~n_plus_1:4 ~max_faulty:2 ()
         in
         ignore (Wfde.Harness.run_fig2 ~f:2 world)))

let bench_adversary () =
  Test.make ~name:"e3-e4/adversary (5 phases)"
    (Staged.stage (fun () ->
         ignore
           (Wfde.Adversary.run Wfde.Adversary.Candidates.top_movers ~n_plus_1:3
              ~f:2 ~max_phases:5 ~phase_budget:4000)))

let bench_extraction () =
  let seed = ref 0 in
  Test.make ~name:"e5/fig3-extraction (from omega)"
    (Staged.stage (fun () ->
         incr seed;
         let world =
           Wfde.Harness.random_world ~seed:!seed ~n_plus_1:3 ~max_faulty:2
             ~latest:100 ()
         in
         ignore
           (Wfde.Harness.run_extraction_of ~horizon:40_000 ~tail:8_000 ~f:2
              ~source:`Omega world)))

let bench_pairwise () =
  let seed = ref 0 in
  Test.make ~name:"e6/upsilon1->omega (timestamps)"
    (Staged.stage (fun () ->
         incr seed;
         let rng = Wfde.Rng.create !seed in
         let pattern =
           Wfde.Failure_pattern.random rng ~n_plus_1:3 ~max_faulty:1 ~latest:60
         in
         let d = Wfde.Upsilon_f.make ~rng ~pattern ~f:1 ~stab_time:40 () in
         let red =
           Wfde.Pairwise.Omega_from_upsilon1.create ~name:"o1" ~n_plus_1:3
             ~upsilon1:(Wfde.Detector.source d)
         in
         ignore
           (Wfde.Run.exec ~pattern
              ~policy:(Wfde.Policy.random (Wfde.Rng.split rng))
              ~horizon:30_000
              ~procs:(fun pid ->
                Wfde.Pairwise.Omega_from_upsilon1.fibers red ~me:pid)
              ())))

let bench_omega_n_baseline () =
  let seed = ref 0 in
  Test.make ~name:"e7/omega-n baseline (n+1=4)"
    (Staged.stage (fun () ->
         incr seed;
         ignore
           (Wfde.Harness.run_omega_k_baseline ~k:3 (fig1_world (!seed + 5000)))))

let bench_booster () =
  let seed = ref 0 in
  Test.make ~name:"e9/booster consensus (n+1=4)"
    (Staged.stage (fun () ->
         incr seed;
         let rng = Wfde.Rng.create !seed in
         let pattern =
           Wfde.Failure_pattern.random rng ~n_plus_1:4 ~max_faulty:3
             ~latest:200
         in
         let omega_n = Wfde.Omega_k.make ~rng ~pattern ~k:3 () in
         let proto =
           Wfde.Agreement.Booster_consensus.create ~name:"b" ~n_plus_1:4
             ~omega_n:(Wfde.Detector.source omega_n)
         in
         ignore
           (Wfde.Run.exec ~pattern ~policy:(Wfde.Policy.random rng)
              ~horizon:500_000
              ~procs:(fun pid ->
                [
                  Wfde.Agreement.Booster_consensus.proposer proto ~me:pid
                    ~input:pid;
                ])
              ())))

let bench_fig2_snapshot impl =
  let seed = ref 0 in
  Test.make
    ~name:
      (Printf.sprintf "a3/fig2 on %s snapshots"
         (Wfde.Memory.Snap.impl_name impl))
    (Staged.stage (fun () ->
         incr seed;
         let world =
           Wfde.Harness.random_world ~seed:!seed ~n_plus_1:4 ~max_faulty:2 ()
         in
         ignore (Wfde.Harness.run_fig2 ~snapshot_impl:impl ~f:2 world)))

let bench_msg_consensus () =
  let seed = ref 0 in
  Test.make ~name:"e11/msg consensus over ABD (n+1=3)"
    (Staged.stage (fun () ->
         incr seed;
         let rng = Wfde.Rng.create !seed in
         let pattern =
           Wfde.Failure_pattern.random rng ~n_plus_1:3 ~max_faulty:1
             ~latest:200
         in
         let omega = Wfde.Omega.make ~rng ~pattern () in
         let proto =
           Wfde.Agreement.Msg_consensus.create ~name:"mc" ~n_plus_1:3
             ~omega:(Wfde.Detector.source omega)
         in
         ignore
           (Wfde.Run.exec ~pattern ~policy:(Wfde.Policy.random rng)
              ~horizon:2_000_000
              ~procs:(fun pid ->
                Wfde.Agreement.Msg_consensus.fibers proto ~me:pid ~input:pid)
              ())))

let bench_async_lockstep () =
  Test.make ~name:"e8/async lockstep to horizon 20k"
    (Staged.stage (fun () ->
         let world =
           {
             Wfde.Harness.pattern = Wfde.Failure_pattern.no_failures ~n_plus_1:3;
             policy = Wfde.Policy.round_robin ();
             world_rng = Wfde.Rng.create 1;
           }
         in
         ignore (Wfde.Harness.run_async_attempt ~horizon:20_000 world)))

let bench_snapshot impl =
  let name, runner =
    match impl with
    | `Registers ->
        ( "a1/snapshot-afek (n+1=4, 10 ops)",
          fun () ->
            let snap =
              Wfde.Snapshot.create ~name:"b" ~size:4 ~init:(fun _ -> 0)
            in
            let body pid () =
              for i = 1 to 10 do
                Wfde.Snapshot.update snap ~me:pid i;
                ignore (Wfde.Snapshot.scan snap)
              done
            in
            ignore
              (Wfde.Run.exec
                 ~pattern:(Wfde.Failure_pattern.no_failures ~n_plus_1:4)
                 ~policy:(Wfde.Policy.random (Wfde.Rng.create 3))
                 ~horizon:1_000_000
                 ~procs:(fun pid -> [ body pid ])
                 ()) )
    | `Native ->
        ( "a1/snapshot-native (n+1=4, 10 ops)",
          fun () ->
            let snap =
              Wfde.Memory.Native_snapshot.create ~name:"b" ~size:4
                ~init:(fun _ -> 0)
            in
            let body pid () =
              for i = 1 to 10 do
                Wfde.Memory.Native_snapshot.update snap ~me:pid i;
                ignore (Wfde.Memory.Native_snapshot.scan snap)
              done
            in
            ignore
              (Wfde.Run.exec
                 ~pattern:(Wfde.Failure_pattern.no_failures ~n_plus_1:4)
                 ~policy:(Wfde.Policy.random (Wfde.Rng.create 3))
                 ~horizon:1_000_000
                 ~procs:(fun pid -> [ body pid ])
                 ()) )
  in
  Test.make ~name (Staged.stage runner)

let bench_converge () =
  let seed = ref 0 in
  Test.make ~name:"substrate/k-converge (n+1=4, k=2)"
    (Staged.stage (fun () ->
         incr seed;
         let inst =
           Wfde.Converge.create ~name:"b" ~k:2 ~size:4
             ~compare:Int.compare
         in
         let body pid () =
           ignore (Wfde.Converge.run inst ~me:pid (pid mod 3))
         in
         ignore
           (Wfde.Run.exec
              ~pattern:(Wfde.Failure_pattern.no_failures ~n_plus_1:4)
              ~policy:(Wfde.Policy.random (Wfde.Rng.create !seed))
              ~horizon:1_000_000
              ~procs:(fun pid -> [ body pid ])
              ())))

let bench_scheduler () =
  Test.make ~name:"substrate/scheduler 10k nop steps"
    (Staged.stage (fun () ->
         let body () =
           for _ = 1 to 2_500 do
             Wfde.Sim.yield ()
           done
         in
         ignore
           (Wfde.Run.exec
              ~pattern:(Wfde.Failure_pattern.no_failures ~n_plus_1:4)
              ~policy:(Wfde.Policy.round_robin ())
              ~horizon:20_000
              ~procs:(fun _ -> [ body ])
              ())))

let bench_dpor () =
  Test.make ~name:"check/dpor register n=2 d=6 (full sweep)"
    (Staged.stage (fun () ->
         ignore (Wfde.Harness.check_exhaustive ~depth:6 Wfde.Scenario.Register)))

let bench_dpor_vs_naive () =
  Test.make ~name:"check/naive register n=2 d=6 (full sweep)"
    (Staged.stage (fun () ->
         ignore
           (Wfde.Check.Explore.naive_prefix
              ~pattern:(Wfde.Failure_pattern.no_failures ~n_plus_1:2)
              ~depth:6 ~horizon:400
              ~make:(Wfde.Scenario.make Wfde.Scenario.Register ~procs:2)
              ())))

let all_tests () =
  [
    bench_scheduler ();
    bench_dpor ();
    bench_dpor_vs_naive ();
    bench_snapshot `Registers;
    bench_snapshot `Native;
    bench_converge ();
    bench_fig1 ();
    bench_fig2 ();
    bench_adversary ();
    bench_extraction ();
    bench_pairwise ();
    bench_omega_n_baseline ();
    bench_async_lockstep ();
    bench_booster ();
    bench_msg_consensus ();
    bench_fig2_snapshot Wfde.Memory.Snap.Registers;
    bench_fig2_snapshot Wfde.Memory.Snap.Native;
  ]

let run_benchmarks () =
  Format.printf "==================================================@.";
  Format.printf "Part 2: bechamel timings (monotonic clock, ns/run)@.";
  Format.printf "==================================================@.@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let nanos =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          estimates := (name, nanos) :: !estimates;
          Format.printf "%-42s %12.0f ns/run  (%6.2f ms)@." name nanos
            (nanos /. 1e6))
        analysis)
    (all_tests ());
  Format.printf "@.";
  List.rev !estimates

(* --------------------------------------------------------- json output *)

let serve_section_json entries =
  let module J = Wfde.Json in
  J.List
    (List.map
       (fun e ->
         J.Obj
           [
             ("name", J.String e.serve_name);
             ("wall_seconds", J.Float e.serve_wall);
             ("throughput_rps", J.Float e.serve_rps);
             ( "latency_ms",
               J.Obj
                 [
                   ("p50", J.Float e.serve_p50);
                   ("p95", J.Float e.serve_p95);
                   ("p99", J.Float e.serve_p99);
                 ] );
             ( "counters",
               J.Obj (List.map (fun (k, v) -> (k, J.Int v)) e.serve_counters)
             );
           ])
       entries)

let macro_section_json entries =
  let module J = Wfde.Json in
  J.List
    (List.map
       (fun e ->
         J.Obj
           [
             ("name", J.String e.macro_name);
             ("wall_seconds", J.Float e.macro_wall);
             ("minor_words", J.Int e.macro_minor_words);
             ( "counters",
               J.Obj (List.map (fun (k, v) -> (k, J.Int v)) e.macro_counters)
             );
           ])
       entries)

let json_document ~outcomes ~sweep ~benchmarks ~macro ~serve ~serve_tracing
    ~serve_cache ~fabric ~detector_impl =
  let module J = Wfde.Json in
  J.Obj
    [
      ("schema", J.String "wfde-bench/1");
      ( "experiments",
        J.List
          (List.map
             (fun (o, wall) ->
               J.Obj
                 [
                   ("id", J.String o.Wfde.Experiments.id);
                   ("ok", J.Bool o.Wfde.Experiments.ok);
                   ("wall_seconds", J.Float wall);
                 ])
             outcomes) );
      ( "parallel_sweep",
        J.List
          (List.map
             (fun (id, wall1, wall4, identical) ->
               J.Obj
                 [
                   ("id", J.String id);
                   ("wall_seconds_j1", J.Float wall1);
                   ("wall_seconds_j4", J.Float wall4);
                   ("speedup", J.Float (wall1 /. wall4));
                   ("tables_identical", J.Bool identical);
                 ])
             sweep) );
      ( "benchmarks",
        J.List
          (List.map
             (fun (name, nanos) ->
               J.Obj
                 [ ("name", J.String name); ("ns_per_run", J.Float nanos) ])
             benchmarks) );
      ("macro", macro_section_json macro);
      ("serve", serve_section_json serve);
      ("serve_tracing", serve_section_json serve_tracing);
      ("serve_cache", serve_section_json serve_cache);
      ("fabric", fabric_section_json fabric);
      ("detector_impl", macro_section_json detector_impl);
      ("metrics", Wfde.Metrics.to_json (Wfde.Metrics.snapshot ()));
    ]

let parse_args () =
  let json = ref None
  and spans_out = ref None
  and macro_only = ref false
  and serve_only = ref false in
  let rec walk = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json := Some path;
        walk rest
    | "--json" :: [] -> failwith "--json requires a PATH argument"
    | "--spans-out" :: path :: rest ->
        spans_out := Some path;
        walk rest
    | "--spans-out" :: [] -> failwith "--spans-out requires a PATH argument"
    | "--macro-only" :: rest ->
        macro_only := true;
        walk rest
    | "--serve-only" :: rest ->
        serve_only := true;
        walk rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  walk (List.tl (Array.to_list Sys.argv));
  (!json, !spans_out, !macro_only, !serve_only)

let () =
  let json_path, spans_out, macro_only, serve_only = parse_args () in
  let quick = macro_only || serve_only in
  let outcomes = if quick then [] else print_experiment_tables () in
  let sweep = if quick then [] else parallel_sweep_entries () in
  let benchmarks = if quick then [] else run_benchmarks () in
  let macro = if serve_only then [] else macro_entries () in
  let detector_impl = if serve_only then [] else detector_impl_entries () in
  (* parts 4-6 run in every mode: they are cheap, and keeping them
     in the --macro-only document is what lets CI gate their counters *)
  let serve, untraced_serial = serve_entries () in
  let serve_tracing = tracing_entries ~reference:untraced_serial ~spans_out in
  let serve_cache = cache_bench_entries () in
  let fabric = fabric_bench_entries () in
  match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Wfde.Json.to_string
               (json_document ~outcomes ~sweep ~benchmarks ~macro ~serve
                  ~serve_tracing ~serve_cache ~fabric ~detector_impl));
          output_char oc '\n');
      Format.printf "wrote machine-readable results to %s@." path
