examples/adversary_dance.mli:
