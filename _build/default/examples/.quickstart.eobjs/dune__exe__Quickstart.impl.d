examples/quickstart.ml: Format List Wfde
