examples/gladiators.ml: Format List String Wfde
