examples/gladiators.mli:
