examples/quickstart.mli:
