examples/adversary_dance.ml: Format List Wfde
