examples/config_quorum.mli:
