examples/config_quorum.ml: Format Int List Printf String Wfde
