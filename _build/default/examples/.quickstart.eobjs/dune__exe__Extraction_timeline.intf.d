examples/extraction_timeline.mli:
