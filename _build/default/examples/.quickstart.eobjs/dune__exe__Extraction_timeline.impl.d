examples/extraction_timeline.ml: Format List Wfde
