(* The Theorem-1 adversary, move by move.

     dune exec examples/adversary_dance.exe

   Theorem 1 says no algorithm can turn Υ into Ωₙ. The proof is a dance:
   pin Υ to the constant set {p1,…,pn} (legal in any failure-free run),
   wait until the candidate extraction algorithm shows some committee L,
   let everyone take one step, then freeze L's members — for the running
   processes this is indistinguishable from L having crashed, where the
   pinned Υ output is still legal, so a correct extractor must move off
   L... at which point the adversary freezes the new committee instead.

   We watch the dance against the "top-movers" heuristic (output the f
   most recently active processes) and against the naive complement
   candidate, which refuses to dance and gets killed off-stage. *)

let show_verdict cand ~n_plus_1 ~f =
  Format.printf "--- candidate: %s ---@." cand.Wfde.Adversary.cand_name;
  let verdict =
    Wfde.Adversary.run cand ~n_plus_1 ~f ~max_phases:10 ~phase_budget:6_000
  in
  (match verdict with
  | Wfde.Adversary.Never_stabilizes { flips; history } ->
      List.iter
        (fun { Wfde.Adversary.index; output; at_time } ->
          Format.printf "  phase %2d: output %-16s (t=%d) -> freeze it@." index
            (Wfde.Pid.Set.to_string output)
            at_time)
        history;
      Format.printf "  ... and so on forever: %d flips forced, never stable@."
        flips
  | Wfde.Adversary.Stuck { on; phase; history } ->
      List.iter
        (fun { Wfde.Adversary.index; output; at_time } ->
          Format.printf "  phase %2d: output %-16s (t=%d)@." index
            (Wfde.Pid.Set.to_string output)
            at_time)
        history;
      Format.printf
        "  stuck on %s at phase %d while only its complement ran:@."
        (Wfde.Pid.Set.to_string on)
        phase;
      Format.printf
        "  crashing %s extends this run legally, and then the stable output@."
        (Wfde.Pid.Set.to_string on);
      Format.printf "  contains no correct process - not an Omega_n output@.");
  Format.printf "@."

let () =
  let n_plus_1 = 3 in
  let f = n_plus_1 - 1 in
  Format.printf
    "Theorem 1 adversary, n+1 = %d: upsilon pinned to {p1, p2}; every@."
    n_plus_1;
  Format.printf "candidate extractor of Omega_%d loses one of two ways.@.@." f;
  show_verdict Wfde.Adversary.Candidates.top_movers ~n_plus_1 ~f;
  show_verdict Wfde.Adversary.Candidates.complement_pad ~n_plus_1 ~f;
  show_verdict Wfde.Adversary.Candidates.rotation ~n_plus_1 ~f
