(* Gladiators and citizens: the paper's §4 example, narrated.

     dune exec examples/gladiators.exe

   Three processes, p1 fails while p2 and p3 are correct. Υ may
   eventually output any subset except {p2, p3}. For each of the six
   legal stable sets we run Fig 1 and report who played gladiator
   (inside Υ's set) and who played citizen (outside), and how the round
   that kills a value actually unfolded. *)

let () =
  let n_plus_1 = 3 in
  let pattern = Wfde.Failure_pattern.make ~n_plus_1 ~crashes:[ (0, 60) ] in
  Format.printf
    "the paper's running example: 3 processes, p1 crashes, p2/p3 correct@.";
  Format.printf "legal eventual outputs of upsilon (any subset but {p2, p3}):@.";
  let legal = Wfde.Upsilon.legal_stable_sets ~pattern in
  List.iter (fun s -> Format.printf "  %a@." Wfde.Pid.Set.pp s) legal;
  Format.printf "@.";
  List.iter
    (fun stable_set ->
      let rng = Wfde.Rng.create 7 in
      let upsilon =
        Wfde.Upsilon.make ~rng ~pattern ~stable_set ~stab_time:100 ()
      in
      let proto =
        Wfde.Upsilon_sa.create ~name:"arena" ~n_plus_1
          ~upsilon:(Wfde.Detector.source upsilon) ()
      in
      let result =
        Wfde.Run.exec ~pattern
          ~policy:(Wfde.Policy.random (Wfde.Rng.split rng))
          ~horizon:1_000_000
          ~procs:(fun pid ->
            [ Wfde.Upsilon_sa.proposer proto ~me:pid ~input:(100 + pid) ])
          ()
      in
      let correct = Wfde.Failure_pattern.correct pattern in
      let gladiators = Wfde.Pid.Set.inter stable_set correct in
      let citizens = Wfde.Pid.Set.diff correct stable_set in
      let progress_reason =
        if not (Wfde.Pid.Set.is_empty citizens) then
          "a correct citizen publishes its value"
        else
          "a gladiator is faulty, so (|U|-1)-converge commits among the rest"
      in
      let decided =
        Wfde.Upsilon_sa.decisions proto
        |> List.map (fun (p, v) -> Format.asprintf "%a=%d" Wfde.Pid.pp p v)
        |> String.concat ", "
      in
      Format.printf
        "U = %-16s gladiators(correct) = %-10s citizens(correct) = %-10s@."
        (Wfde.Pid.Set.to_string stable_set)
        (Wfde.Pid.Set.to_string gladiators)
        (Wfde.Pid.Set.to_string citizens);
      Format.printf "  progress because %s@." progress_reason;
      Format.printf "  decisions: %s (in %d steps, %d rounds)@.@." decided
        result.steps
        (Wfde.Upsilon_sa.rounds_entered proto))
    legal
