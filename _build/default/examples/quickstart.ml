(* Quickstart: solve wait-free n-set-agreement with Υ in a dozen lines.

     dune exec examples/quickstart.exe

   Four processes, up to three may crash, each proposes a distinct value;
   the oracle Υ eventually agrees on some set that is not the set of
   correct processes, and Fig 1 turns that sliver of information into
   decisions on at most three values. *)

let () =
  let n_plus_1 = 4 in
  (* 1. A world: p2 crashes at time 40, the others are correct. *)
  let pattern =
    Wfde.Failure_pattern.make ~n_plus_1 ~crashes:[ (1, 40) ]
  in
  Format.printf "world: %a@." Wfde.Failure_pattern.pp pattern;

  (* 2. A Υ history over that pattern: garbage until t=120, then some
     legal stable set (chosen at random among all sets that are not the
     correct set). *)
  let rng = Wfde.Rng.create 2024 in
  let upsilon = Wfde.Upsilon.make ~rng ~pattern ~stab_time:120 () in
  Format.printf "upsilon stabilizes by t=120 on %a@."
    Wfde.Detector.(fun ppf d -> (sample d 0 120 |> Wfde.Pid.Set.pp ppf))
    upsilon;

  (* 3. The Fig-1 protocol object and one fiber per process. *)
  let proto =
    Wfde.Upsilon_sa.create ~name:"quickstart" ~n_plus_1
      ~upsilon:(Wfde.Detector.source upsilon) ()
  in
  let result =
    Wfde.Run.exec ~pattern
      ~policy:(Wfde.Policy.random (Wfde.Rng.split rng))
      ~horizon:1_000_000
      ~procs:(fun pid ->
        [ Wfde.Upsilon_sa.proposer proto ~me:pid ~input:(10 * (pid + 1)) ])
      ()
  in

  (* 4. Harvest decisions and check the k-set-agreement spec. *)
  Format.printf "run took %d steps@." result.steps;
  List.iter
    (fun (pid, v) -> Format.printf "  %a decided %d@." Wfde.Pid.pp pid v)
    (Wfde.Upsilon_sa.decisions proto);
  let verdict =
    Wfde.Sa_spec.check ~k:(n_plus_1 - 1) ~pattern
      ~proposals:(List.map (fun p -> (p, 10 * (p + 1))) (Wfde.Pid.all ~n_plus_1))
      ~decisions:(Wfde.Upsilon_sa.decisions proto)
      ()
  in
  Format.printf "spec: %a@." Wfde.Sa_spec.pp verdict;
  if not (Wfde.Sa_spec.all_ok verdict) then exit 1
