(* A systems-flavoured scenario: narrowing candidate configurations in a
   replicated service.

     dune exec examples/config_quorum.exe

   Six replicas of a coordination service each boot with their own
   preferred configuration epoch (think: which shard map to serve).
   Running one consensus per reconfiguration is impossible without
   strong failure information; but the service only needs to narrow the
   proposals to at most f candidates — f-set agreement — and then any
   cheap deterministic rule (e.g. min epoch) applied to a bounded
   candidate set keeps the service available. With up to f = 2 crashes,
   Fig 2 plus the almost-information-free oracle Υᶠ does exactly this.

   We run 5 reconfiguration epochs; in each, a random pair of replicas
   may crash mid-protocol. *)

let () =
  let n_plus_1 = 6 in
  let f = 2 in
  let master_rng = Wfde.Rng.create 31337 in
  Format.printf
    "replicated-config narrowing: %d replicas, tolerating %d crashes per epoch@.@."
    n_plus_1 f;
  let total_steps = ref 0 in
  for epoch = 1 to 5 do
    let rng = Wfde.Rng.split master_rng in
    let pattern =
      Wfde.Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:400
    in
    let upsilon_f = Wfde.Upsilon_f.make ~rng ~pattern ~f () in
    let proto =
      Wfde.Upsilon_f_sa.create
        ~name:(Printf.sprintf "epoch%d" epoch)
        ~n_plus_1 ~f
        ~upsilon_f:(Wfde.Detector.source upsilon_f)
        ()
    in
    (* each replica proposes its preferred config epoch id *)
    let proposal pid = (epoch * 1000) + ((pid * 7) mod 10) in
    let result =
      Wfde.Run.exec ~pattern
        ~policy:(Wfde.Policy.random (Wfde.Rng.split rng))
        ~horizon:2_000_000
        ~procs:(fun pid ->
          [ Wfde.Upsilon_f_sa.proposer proto ~me:pid ~input:(proposal pid) ])
        ()
    in
    total_steps := !total_steps + result.steps;
    let decisions = Wfde.Upsilon_f_sa.decisions proto in
    let candidates =
      List.sort_uniq Int.compare (List.map snd decisions)
    in
    let verdict =
      Wfde.Sa_spec.check ~k:f ~pattern
        ~proposals:(List.map (fun p -> (p, proposal p)) (Wfde.Pid.all ~n_plus_1))
        ~decisions ()
    in
    let chosen = match candidates with [] -> -1 | c :: _ -> c in
    Format.printf "epoch %d: %a@." epoch Wfde.Failure_pattern.pp pattern;
    Format.printf
      "  narrowed %d proposals -> %d candidate configs %s; service picks min = %d@."
      n_plus_1 (List.length candidates)
      (String.concat "," (List.map string_of_int candidates))
      chosen;
    Format.printf "  spec: %a@.@." Wfde.Sa_spec.pp verdict;
    if not (Wfde.Sa_spec.all_ok verdict) then exit 1
  done;
  Format.printf "5 epochs reconfigured in %d simulated steps total@."
    !total_steps
