(* Watching Fig 3 at work: extracting Υᶠ from an eventually-perfect
   failure detector, with a timeline of the extracted outputs.

     dune exec examples/extraction_timeline.exe

   ◇P suspects arbitrarily for a while, then exactly the crashed
   processes — a stable detector in the paper's sense. Feeding it to the
   Fig-3 reduction with the hand-derived map ϕ_◇P yields a variable that
   behaves exactly like Υᶠ: it may wobble between Π and candidate sets
   while ◇P's output is still in flux, and settles on a set that is
   provably not the set of correct processes. *)

let () =
  let n_plus_1 = 4 in
  let f = 2 in
  let pattern =
    Wfde.Failure_pattern.make ~n_plus_1 ~crashes:[ (2, 150) ]
  in
  let rng = Wfde.Rng.create 99 in
  let dp = Wfde.Detectors.Ev_perfect.make ~rng ~pattern ~stab_time:250 () in
  Format.printf "world: %a;  source: eventually-perfect detector@."
    Wfde.Failure_pattern.pp pattern;
  Format.printf "correct set: %a (the one set the extraction must avoid)@.@."
    Wfde.Pid.Set.pp
    (Wfde.Failure_pattern.correct pattern);
  let ex =
    Wfde.Extract_upsilon.create ~name:"ex" ~n_plus_1 ~f
      ~detector:(Wfde.Detector.source dp) ~equal:Wfde.Pid.Set.equal
      ~phi:(Wfde.Phi.suspicion ~n_plus_1 ~f)
  in
  let result =
    Wfde.Run.exec ~pattern
      ~policy:(Wfde.Policy.random (Wfde.Rng.split rng))
      ~horizon:120_000
      ~procs:(fun pid -> Wfde.Extract_upsilon.fibers ex ~me:pid)
      ()
  in
  Format.printf "timeline of extracted upsilon_f outputs (first 30 changes):@.";
  let changes = Wfde.Extract_upsilon.change_log ex in
  List.iteri
    (fun i (pid, time, s) ->
      if i < 30 then
        Format.printf "  t=%-7d %a -> %a@." time Wfde.Pid.pp pid
          Wfde.Pid.Set.pp s)
    changes;
  if List.length changes > 30 then
    Format.printf "  ... (%d more changes)@." (List.length changes - 30);
  Format.printf "@.final outputs:@.";
  List.iter
    (fun pid ->
      match Wfde.Extract_upsilon.current_output ex pid with
      | Some s ->
          Format.printf "  %a: %a%s@." Wfde.Pid.pp pid Wfde.Pid.Set.pp s
            (if Wfde.Failure_pattern.is_correct pattern pid then ""
             else "  (crashed)")
      | None -> Format.printf "  %a: (none)@." Wfde.Pid.pp pid)
    (Wfde.Pid.all ~n_plus_1);
  match
    Wfde.Extract_upsilon.check ex ~pattern
      ~last_time:(Wfde.Trace.last_time result.trace)
      ~tail:20_000
  with
  | Ok () ->
      Format.printf
        "@.extracted variable satisfies the upsilon_f specification@."
  | Error msg ->
      Format.printf "@.extraction FAILED the spec: %s@." msg;
      exit 1
