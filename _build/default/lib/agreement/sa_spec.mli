(** The k-set-agreement problem spec (paper §5.1), as a trace oracle.

    Every run of a k-set-agreement algorithm must satisfy:
    - {b Termination}: every correct process eventually decides;
    - {b Agreement}: at most [k] values are decided on;
    - {b Validity}: any value decided is a value proposed.

    On bounded runs, Termination is checked as "decided within the
    horizon" — the caller is responsible for a generous horizon. *)

open Kernel

type verdict = {
  termination : bool;
  agreement : bool;
  validity : bool;
  distinct_decided : int;
  undecided_correct : Pid.Set.t;
}

val check :
  k:int ->
  pattern:Failure_pattern.t ->
  proposals:(Pid.t * int) list ->
  decisions:(Pid.t * int) list ->
  ?participants:Pid.Set.t ->
  unit ->
  verdict
(** [participants] defaults to all of Π; Termination then binds only
    correct participants (the paper's Remark after Theorem 2 covers runs
    where not every correct process proposes). *)

val all_ok : verdict -> bool
val pp : Format.formatter -> verdict -> unit
