(** Baseline: Ωₖ-based k-set agreement (Neiger [18], paper §2).

    The comparison point for Corollary 3: Ωₖ also solves k-set agreement
    with registers, but carries strictly more failure information than Υ
    (Theorem 1). Round structure mirrors Fig 1: k-converge at the top;
    on failure, the current Ωₖ output [L] acts as a leader committee —
    members publish their value in [D\[r\]], everyone else adopts;
    instability of the local Ωₖ output raises [Stable\[r\]]. Once Ωₖ
    stabilizes, at most [k] (committee) values survive a round, and the
    next k-converge commits.

    [k = 1] with Ω is the classic leader-based consensus; see
    {!Omega_consensus}. *)

open Kernel

type t

val create :
  name:string -> n_plus_1:int -> k:int -> omega_k:Pid.Set.t Sim.source -> t

val proposer : t -> me:Pid.t -> input:int -> unit -> unit
val decisions : t -> (Pid.t * int) list
val decision_rounds : t -> (Pid.t * int) list
val rounds_entered : t -> int
