open Kernel

type t = Omega_k_sa.t

let create ~name ~n_plus_1 ~omega =
  let committee_of_leader =
    {
      Sim.name = omega.Sim.name ^ ".as_committee";
      sample = (fun pid time -> Pid.Set.singleton (omega.Sim.sample pid time));
      render = Pid.Set.to_string;
    }
  in
  Omega_k_sa.create ~name ~n_plus_1 ~k:1 ~omega_k:committee_of_leader

let proposer = Omega_k_sa.proposer
let decisions = Omega_k_sa.decisions
let decision_rounds = Omega_k_sa.decision_rounds
