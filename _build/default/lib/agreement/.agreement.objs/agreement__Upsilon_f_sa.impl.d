lib/agreement/upsilon_f_sa.ml: Array Converge Hashtbl Int Kernel List Memory Pid Printf Register Sim Snap
