lib/agreement/async_attempt.ml: Converge Int Kernel List Memory Pid Printf Register Sim
