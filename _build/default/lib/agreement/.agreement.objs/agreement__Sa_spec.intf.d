lib/agreement/sa_spec.mli: Failure_pattern Format Kernel Pid
