lib/agreement/upsilon_sa.mli: Kernel Pid Sim
