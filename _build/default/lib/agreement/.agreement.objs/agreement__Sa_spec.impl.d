lib/agreement/sa_spec.ml: Failure_pattern Format Int Kernel List Pid
