lib/agreement/omega_k_sa.ml: Converge Hashtbl Int Kernel List Memory Pid Printf Register Sim
