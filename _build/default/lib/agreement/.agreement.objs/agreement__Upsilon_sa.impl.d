lib/agreement/upsilon_sa.ml: Converge Hashtbl Int Kernel List Memory Pid Printf Register Sim
