lib/agreement/msg_consensus.ml: Abd Fun Kernel List Memory Pid Printf Sim
