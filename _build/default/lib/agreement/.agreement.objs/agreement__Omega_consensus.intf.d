lib/agreement/omega_consensus.mli: Kernel Pid Sim
