lib/agreement/omega_consensus.ml: Kernel Omega_k_sa Pid Sim
