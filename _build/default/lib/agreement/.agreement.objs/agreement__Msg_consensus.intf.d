lib/agreement/msg_consensus.mli: Kernel Pid Sim
