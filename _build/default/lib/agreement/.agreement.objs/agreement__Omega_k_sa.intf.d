lib/agreement/omega_k_sa.mli: Kernel Pid Sim
