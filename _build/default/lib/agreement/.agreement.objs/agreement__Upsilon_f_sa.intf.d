lib/agreement/upsilon_f_sa.mli: Kernel Memory Pid Sim
