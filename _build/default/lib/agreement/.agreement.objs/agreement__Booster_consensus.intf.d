lib/agreement/booster_consensus.mli: Kernel Pid Sim
