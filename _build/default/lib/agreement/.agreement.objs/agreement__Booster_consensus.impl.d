lib/agreement/booster_consensus.ml: Consensus_obj Converge Hashtbl Int Kernel List Memory Pid Printf Register Sim
