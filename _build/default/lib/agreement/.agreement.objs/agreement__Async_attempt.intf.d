lib/agreement/async_attempt.mli: Kernel Pid
