(** Fig. 1: the Υ-based n-set-agreement protocol (paper §5.2, Theorem 2).

    Solves n-set agreement among n+1 processes tolerating n crashes,
    using only registers and the oracle Υ. The protocol proceeds in
    rounds:

    + Try to agree with n-converge; a committed value is written to the
      decision register [D] and decided.
    + On failure, query Υ to split processes into {e gladiators} (inside
      the output set [U]) and {e citizens} (outside). Citizens publish
      their value in [D\[r\]] and advance; gladiators run successive
      (|U|−1)-converge sub-rounds trying to eliminate one value.
    + A round is abandoned (advancing to the next) when: a process
      observes Υ's output change and raises [Stable\[r\]]; or a gladiator
      commits and publishes in [D\[r\]]; or [D\[r\]]/[D] is already
      non-⊥.

    Once Υ stabilizes on a set [U ≠ correct(F)], either a correct citizen
    exists (publishing its value) or some gladiator is faulty (letting
    (|U|−1)-converge commit) — at least one input value dies, and the
    next round's n-converge commits. *)

open Kernel

type t

type escapes = {
  watch_stable : bool;  (** react to [Stable\[r\]] (line 17a) *)
  watch_round_d : bool;  (** adopt from [D\[r\]] (line 17c) *)
  watch_final : bool;  (** decide from [D] (line 17c) *)
}
(** Which of the line-17 escape conditions the gladiator loop honours.
    All on by default; the A2 ablation switches them off one at a time to
    show each is load-bearing for Termination (safety never needs them). *)

val all_escapes : escapes

val create :
  ?escapes:escapes ->
  name:string ->
  n_plus_1:int ->
  upsilon:Pid.Set.t Sim.source ->
  unit ->
  t
(** Fresh shared state (registers, converge arena) for one run. *)

val proposer : t -> me:Pid.t -> input:int -> unit -> unit
(** The fiber body for process [me] proposing [input]: records the
    proposal, runs Fig 1, records and returns on decision. *)

val decisions : t -> (Pid.t * int) list
(** [(pid, decided value)] for every process that decided so far. *)

val decision_rounds : t -> (Pid.t * int) list
(** [(pid, round at which it decided)] — harness statistics. *)

val rounds_entered : t -> int
(** Highest round number any process entered (contention metric). *)
