(** Fig. 2: the Υᶠ-based f-resilient f-set-agreement protocol
    (paper §5.3, Theorem 6).

    Follows Fig 1's round structure with [f]-converge at the top, plus
    the atomic-snapshot mechanism: in sub-round (r, k) each gladiator
    publishes its value in snapshot object [A\[r\]\[k\]], spins until a
    scan shows at least [n+1−f] non-⊥ entries (or an escape condition
    fires), adopts the minimum of its latest scan, and then runs
    (|U|+f−n−1)-converge. Because concurrent scans are
    containment-related and each carries between [n+1−f] and [|U|−1]
    non-⊥ values once a gladiator is missing, at most [|U|+f−n−1]
    distinct minima can be adopted, so the converge commits — together
    with at most [n+1−|U|] citizen values, at most [f] values survive a
    round. *)

open Kernel

type t

val create :
  ?snapshot_impl:Memory.Snap.impl ->
  name:string ->
  n_plus_1:int ->
  f:int ->
  upsilon_f:Pid.Set.t Sim.source ->
  unit ->
  t
(** [snapshot_impl] defaults to [Registers], the paper-faithful Afek et
    al. construction; [Native] exists for the A3 ablation only. *)

val proposer : t -> me:Pid.t -> input:int -> unit -> unit
val decisions : t -> (Pid.t * int) list
val decision_rounds : t -> (Pid.t * int) list
val rounds_entered : t -> int
