open Kernel
open Memory

type t = {
  n_plus_1 : int;
  final : int option Register.t;
  arena : int Converge.Arena.t;
  mutable decided : (Pid.t * int) list;
  mutable max_round : int;
}

let create ~name ~n_plus_1 =
  if n_plus_1 < 2 then invalid_arg "Async_attempt.create: need >= 2 processes";
  {
    n_plus_1;
    final = Register.create ~name:(name ^ ".D") None;
    arena =
      Converge.Arena.create ~name:(name ^ ".cv") ~size:n_plus_1
        ~compare:Int.compare;
    decided = [];
    max_round = 0;
  }

let decide t ~me v =
  t.decided <- (me, v) :: t.decided;
  Sim.output ~label:"decide" ~value:(string_of_int v)

let proposer t ~me ~input () =
  Sim.input ~label:"propose" ~value:(string_of_int input);
  let n = t.n_plus_1 - 1 in
  let rec round r v =
    if r > t.max_round then t.max_round <- r;
    match Register.read t.final with
    | Some w -> decide t ~me w
    | None ->
        let conv =
          Converge.Arena.instance t.arena ~k:n
            ~tag:(Printf.sprintf "main.r%d" r)
        in
        let v, committed = Converge.run conv ~me v in
        if committed then begin
          Register.write t.final (Some v);
          decide t ~me v
        end
        else round (r + 1) v
  in
  round 1 input

let decisions t = List.rev t.decided
let rounds_entered t = t.max_round
