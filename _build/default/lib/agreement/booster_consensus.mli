(** Consensus among n+1 processes from n-process consensus objects and
    Ωₙ — the left-hand side of Corollary 4 (after [13, 21]).

    Ωₙ was shown necessary and sufficient to "boost" n-process consensus
    objects to n+1-process consensus; Corollary 4 contrasts this with
    n-set agreement from registers, which the strictly weaker Υ already
    solves. This module implements the booster so the contrast is
    runnable (experiment E9).

    Round structure: commit–adopt from registers guards safety; the
    current Ωₙ committee [L] funnels proposals through a {e port-limited}
    n-process consensus object chosen by the pair (round, L) — a process
    touches the object only if it believes itself in [L], and |L| = n, so
    no object ever sees more than its n ports even while Ωₙ is still
    spewing garbage. Once Ωₙ stabilizes on a committee with a correct
    member, that object funnels everyone to a single value, and the next
    round's commit–adopt commits it. *)

open Kernel

type t

val create :
  name:string -> n_plus_1:int -> omega_n:Pid.Set.t Sim.source -> t

val proposer : t -> me:Pid.t -> input:int -> unit -> unit
val decisions : t -> (Pid.t * int) list
val decision_rounds : t -> (Pid.t * int) list

val max_ports_used : t -> int
(** The largest number of distinct processes that touched any single
    consensus object — must never exceed n (the objects would refuse). *)

val objects_allocated : t -> int
(** How many (round, committee) consensus objects were created; garbage
    committees pre-stabilization show up here. *)
