(** Baseline: Ω-based consensus — [Omega_k_sa] at [k = 1], under the name
    the literature gives it. In a 2-process system this is the setting
    where Ω and Υ coincide (paper §4), which E6 exercises. *)

open Kernel

type t

val create : name:string -> n_plus_1:int -> omega:Pid.t Sim.source -> t
(** Wraps the leader oracle as a singleton-committee Ω₁. *)

val proposer : t -> me:Pid.t -> input:int -> unit -> unit
val decisions : t -> (Pid.t * int) list
val decision_rounds : t -> (Pid.t * int) list
