(** Consensus in a message-passing system: Ω + commit–adopt over
    ABD-emulated registers.

    The end-to-end demonstration that the paper's register-based
    toolchain lowers onto asynchronous message passing: commit–adopt is
    run over {!Memory.Abd} registers (each read/write a quorum
    round-trip), guarded by the leader oracle Ω exactly as in the
    register-native {!Omega_consensus}. Tolerates a minority of crashes
    (the ABD bound), decides a single proposed value.

    Round structure: commit–adopt on registers [a1/r/i], [a2/r/i]; a
    commit is written to [dec] and decided; otherwise the current
    leader publishes its value in [lead/r] and everyone adopts it, with
    the usual instability escape. Once Ω stabilizes, one round funnels
    every value to the leader's and the next commit–adopt commits. *)

open Kernel

type t

val create : name:string -> n_plus_1:int -> omega:Pid.t Sim.source -> t

val fibers : t -> me:Pid.t -> input:int -> (unit -> unit) list
(** The ABD server fiber plus the proposer fiber for process [me]. *)

val decisions : t -> (Pid.t * int) list
val decision_rounds : t -> (Pid.t * int) list

val check_memory : t -> (unit, string) result
(** Linearizability of the underlying ABD op log. *)
