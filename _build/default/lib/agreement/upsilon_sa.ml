open Kernel
open Memory

type escapes = {
  watch_stable : bool;
  watch_round_d : bool;
  watch_final : bool;
}

let all_escapes = { watch_stable = true; watch_round_d = true; watch_final = true }

type t = {
  n_plus_1 : int;
  escapes : escapes;
  upsilon : Pid.Set.t Sim.source;
  final : int option Register.t; (* the paper's D *)
  round_d : (int, int option Register.t) Hashtbl.t; (* D[r] *)
  round_stable : (int, bool Register.t) Hashtbl.t; (* Stable[r] *)
  arena : int Converge.Arena.t;
  mutable decided : (Pid.t * int) list;
  mutable decided_rounds : (Pid.t * int) list;
  mutable max_round : int;
  obj_prefix : string;
}

let create ?(escapes = all_escapes) ~name ~n_plus_1 ~upsilon () =
  if n_plus_1 < 2 then invalid_arg "Upsilon_sa.create: need >= 2 processes";
  {
    n_plus_1;
    escapes;
    upsilon;
    final = Register.create ~name:(name ^ ".D") None;
    round_d = Hashtbl.create 32;
    round_stable = Hashtbl.create 32;
    arena = Converge.Arena.create ~name:(name ^ ".cv") ~size:n_plus_1 ~compare:Int.compare;
    decided = [];
    decided_rounds = [];
    max_round = 0;
    obj_prefix = name;
  }

(* Round-indexed registers are allocated lazily and shared: allocation is
   harness-level bookkeeping, not a model step. *)
let d_of t r =
  match Hashtbl.find_opt t.round_d r with
  | Some reg -> reg
  | None ->
      let reg =
        Register.create ~name:(Printf.sprintf "%s.D[%d]" t.obj_prefix r) None
      in
      Hashtbl.add t.round_d r reg;
      reg

let stable_of t r =
  match Hashtbl.find_opt t.round_stable r with
  | Some reg -> reg
  | None ->
      let reg =
        Register.create
          ~name:(Printf.sprintf "%s.Stable[%d]" t.obj_prefix r)
          false
      in
      Hashtbl.add t.round_stable r reg;
      reg

let decide t ~me ~round v =
  t.decided <- (me, v) :: t.decided;
  t.decided_rounds <- (me, round) :: t.decided_rounds;
  Sim.output ~label:"decide" ~value:(string_of_int v)

let proposer t ~me ~input () =
  Sim.input ~label:"propose" ~value:(string_of_int input);
  let n = t.n_plus_1 - 1 in
  (* Line 4: try to commit through n-convergence; committed values are
     published in D and decided. *)
  let rec round r v =
    if r > t.max_round then t.max_round <- r;
    let conv =
      Converge.Arena.instance t.arena ~k:n ~tag:(Printf.sprintf "main.r%d" r)
    in
    let v, committed = Converge.run conv ~me v in
    if committed then begin
      Register.write t.final (Some v);
      decide t ~me ~round:r v
    end
    else
      let u = Sim.query t.upsilon in
      gladiator r v u 1
  (* Lines 12-17: the cyclic procedure, one iteration per sub-round k. *)
  and gladiator r v u k =
    let final_hit =
      if t.escapes.watch_final then Register.read t.final else None
    in
    match final_hit with
    | Some w -> decide t ~me ~round:r w (* line 17/21: D non-bot *)
    | None -> (
        if t.escapes.watch_stable && Register.read (stable_of t r) then
          round (r + 1) v
        else
          let round_d_hit =
            if t.escapes.watch_round_d then Register.read (d_of t r) else None
          in
          match round_d_hit with
          | Some w -> round (r + 1) w (* adopt D[r] *)
          | None ->
              let u' = Sim.query t.upsilon in
              if not (Pid.Set.equal u' u) then begin
                (* line 16: report instability and move on *)
                Register.write (stable_of t r) true;
                round (r + 1) v
              end
              else if not (Pid.Set.mem me u) then begin
                (* citizen: publish value, advance *)
                Register.write (d_of t r) (Some v);
                round (r + 1) v
              end
              else
                (* gladiator: try to eliminate one value among U *)
                let kconv =
                  Converge.Arena.instance t.arena
                    ~k:(Pid.Set.cardinal u - 1)
                    ~tag:(Printf.sprintf "glad.r%d.k%d" r k)
                in
                let v, committed = Converge.run kconv ~me v in
                if committed then begin
                  Register.write (d_of t r) (Some v);
                  round (r + 1) v
                end
                else gladiator r v u (k + 1))
  in
  round 1 input

let decisions t = List.rev t.decided
let decision_rounds t = List.rev t.decided_rounds
let rounds_entered t = t.max_round
