open Kernel
open Memory

(* Register contents: phase-1 values, phase-2 proposals (Some v = "all I
   saw was v", None = conflict), leader announcements, the decision. *)
type slot =
  | Empty
  | Value of int
  | Proposal of int option

type t = {
  n_plus_1 : int;
  omega : Pid.t Sim.source;
  store : slot Abd.t;
  mutable decided : (Pid.t * int) list;
  mutable decided_rounds : (Pid.t * int) list;
}

let create ~name ~n_plus_1 ~omega =
  if n_plus_1 < 2 then invalid_arg "Msg_consensus.create: need >= 2 processes";
  {
    n_plus_1;
    omega;
    store = Abd.create ~name ~n_plus_1 ~init:Empty;
    decided = [];
    decided_rounds = [];
  }

let key fmt = Printf.sprintf fmt

let decide t ~me ~round v =
  t.decided <- (me, v) :: t.decided;
  t.decided_rounds <- (me, round) :: t.decided_rounds;
  Sim.output ~label:"decide" ~value:(string_of_int v)

(* Commit-adopt over ABD registers (Gafni's two-phase collect version):
   returns (picked, committed). *)
let commit_adopt t ~me ~round v =
  Abd.write t.store ~me ~key:(key "a1/%d/%d" round me) (Value v);
  let seen =
    List.filter_map
      (fun j ->
        match Abd.read t.store ~me ~key:(key "a1/%d/%d" round j) with
        | Value w -> Some w
        | Empty | Proposal _ -> None)
      (Pid.all ~n_plus_1:t.n_plus_1)
  in
  let all_equal = List.for_all (fun w -> w = v) seen in
  let proposal = if all_equal then Some v else None in
  Abd.write t.store ~me ~key:(key "a2/%d/%d" round me) (Proposal proposal);
  let proposals =
    List.filter_map
      (fun j ->
        match Abd.read t.store ~me ~key:(key "a2/%d/%d" round j) with
        | Proposal p -> Some p
        | Empty | Value _ -> None)
      (Pid.all ~n_plus_1:t.n_plus_1)
  in
  let commits = List.filter_map Fun.id proposals in
  let saw_conflict = List.exists (fun p -> p = None) proposals in
  match commits with
  | w :: _ when not saw_conflict -> (w, true)
  | w :: _ -> (w, false)
  | [] -> (v, false)

let proposer t ~me ~input () =
  Sim.input ~label:"propose" ~value:(string_of_int input);
  let rec round r v =
    match Abd.read t.store ~me ~key:"dec" with
    | Value w -> decide t ~me ~round:r w
    | Empty | Proposal _ ->
        let v, committed = commit_adopt t ~me ~round:r v in
        if committed then begin
          Abd.write t.store ~me ~key:"dec" (Value v);
          decide t ~me ~round:r v
        end
        else begin
          let leader = Sim.query t.omega in
          if Pid.equal leader me then
            Abd.write t.store ~me ~key:(key "lead/%d" r) (Value v);
          follow r v leader
        end
  and follow r v leader =
    match Abd.read t.store ~me ~key:"dec" with
    | Value w -> decide t ~me ~round:r w
    | Empty | Proposal _ -> (
        match Abd.read t.store ~me ~key:(key "lead/%d" r) with
        | Value w -> round (r + 1) w
        | Empty | Proposal _ ->
            let leader' = Sim.query t.omega in
            if Pid.equal leader' leader then follow r v leader'
            else round (r + 1) v)
  in
  round 1 input

let fibers t ~me ~input =
  [ Abd.server t.store ~me; proposer t ~me ~input ]

let decisions t = List.rev t.decided
let decision_rounds t = List.rev t.decided_rounds
let check_memory t = Abd.check_atomicity t.store
