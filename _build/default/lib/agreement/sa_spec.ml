open Kernel

type verdict = {
  termination : bool;
  agreement : bool;
  validity : bool;
  distinct_decided : int;
  undecided_correct : Pid.Set.t;
}

let check ~k ~pattern ~proposals ~decisions ?participants () =
  let participants =
    match participants with
    | Some s -> s
    | None -> Pid.Set.full ~n_plus_1:(Failure_pattern.n_plus_1 pattern)
  in
  let proposed_values = List.map snd proposals in
  let decided_values = List.sort_uniq Int.compare (List.map snd decisions) in
  let deciders = Pid.Set.of_list (List.map fst decisions) in
  let correct_participants =
    Pid.Set.inter (Failure_pattern.correct pattern) participants
  in
  let undecided_correct = Pid.Set.diff correct_participants deciders in
  {
    termination = Pid.Set.is_empty undecided_correct;
    agreement = List.length decided_values <= k;
    validity = List.for_all (fun v -> List.mem v proposed_values) decided_values;
    distinct_decided = List.length decided_values;
    undecided_correct;
  }

let all_ok v = v.termination && v.agreement && v.validity

let pp ppf v =
  Format.fprintf ppf
    "termination=%b agreement=%b validity=%b distinct=%d undecided=%a"
    v.termination v.agreement v.validity v.distinct_decided Pid.Set.pp
    v.undecided_correct
