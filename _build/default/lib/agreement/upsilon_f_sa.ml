open Kernel
open Memory

type t = {
  n_plus_1 : int;
  f : int;
  snapshot_impl : Snap.impl;
  upsilon_f : Pid.Set.t Sim.source;
  final : int option Register.t;
  round_d : (int, int option Register.t) Hashtbl.t;
  round_stable : (int, bool Register.t) Hashtbl.t;
  snaps : (int * int, int option Snap.t) Hashtbl.t; (* A[r][k] *)
  arena : int Converge.Arena.t;
  mutable decided : (Pid.t * int) list;
  mutable decided_rounds : (Pid.t * int) list;
  mutable max_round : int;
  obj_prefix : string;
}

let create ?(snapshot_impl = Snap.Registers) ~name ~n_plus_1 ~f ~upsilon_f () =
  if n_plus_1 < 2 then invalid_arg "Upsilon_f_sa.create: need >= 2 processes";
  if f < 1 || f > n_plus_1 - 1 then invalid_arg "Upsilon_f_sa.create: bad f";
  {
    n_plus_1;
    f;
    snapshot_impl;
    upsilon_f;
    final = Register.create ~name:(name ^ ".D") None;
    round_d = Hashtbl.create 32;
    round_stable = Hashtbl.create 32;
    snaps = Hashtbl.create 32;
    arena =
      Converge.Arena.create ~name:(name ^ ".cv") ~size:n_plus_1
        ~compare:Int.compare;
    decided = [];
    decided_rounds = [];
    max_round = 0;
    obj_prefix = name;
  }

let d_of t r =
  match Hashtbl.find_opt t.round_d r with
  | Some reg -> reg
  | None ->
      let reg =
        Register.create ~name:(Printf.sprintf "%s.D[%d]" t.obj_prefix r) None
      in
      Hashtbl.add t.round_d r reg;
      reg

let stable_of t r =
  match Hashtbl.find_opt t.round_stable r with
  | Some reg -> reg
  | None ->
      let reg =
        Register.create
          ~name:(Printf.sprintf "%s.Stable[%d]" t.obj_prefix r)
          false
      in
      Hashtbl.add t.round_stable r reg;
      reg

let snap_of t r k =
  match Hashtbl.find_opt t.snaps (r, k) with
  | Some s -> s
  | None ->
      let s =
        Snap.make ~impl:t.snapshot_impl
          ~name:(Printf.sprintf "%s.A[%d][%d]" t.obj_prefix r k)
          ~size:t.n_plus_1
          ~init:(fun _ -> None)
      in
      Hashtbl.add t.snaps (r, k) s;
      s

let decide t ~me ~round v =
  t.decided <- (me, v) :: t.decided;
  t.decided_rounds <- (me, round) :: t.decided_rounds;
  Sim.output ~label:"decide" ~value:(string_of_int v)

let min_non_bot view =
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some v -> ( match acc with None -> Some v | Some w -> Some (min v w)))
    None view

let count_non_bot view =
  Array.fold_left (fun acc -> function None -> acc | Some _ -> acc + 1) 0 view

let proposer t ~me ~input () =
  Sim.input ~label:"propose" ~value:(string_of_int input);
  let n_plus_1 = t.n_plus_1 in
  let rec round r v =
    if r > t.max_round then t.max_round <- r;
    (* top of the round: f-convergence; commits decide through D *)
    let conv =
      Converge.Arena.instance t.arena ~k:t.f ~tag:(Printf.sprintf "main.r%d" r)
    in
    let v, committed = Converge.run conv ~me v in
    if committed then begin
      Register.write t.final (Some v);
      decide t ~me ~round:r v
    end
    else
      let u = Sim.query t.upsilon_f in
      gladiator r v u 1
  and gladiator r v u k =
    match Register.read t.final with
    | Some w -> decide t ~me ~round:r w
    | None -> (
        if Register.read (stable_of t r) then round (r + 1) v
        else
          match Register.read (d_of t r) with
          | Some w -> round (r + 1) w (* line 23/33: adopt D[r] *)
          | None ->
              let u' = Sim.query t.upsilon_f in
              if not (Pid.Set.equal u' u) then begin
                Register.write (stable_of t r) true;
                round (r + 1) v
              end
              else if not (Pid.Set.mem me u) then begin
                (* line 11: citizens publish and advance *)
                Register.write (d_of t r) (Some v);
                round (r + 1) v
              end
              else begin
                (* line 16: publish in A[r][k], then the waiting loop of
                   lines 17-19 with the escape conditions of the proof *)
                let a = snap_of t r k in
                Snap.update a ~me (Some v);
                let rec await () =
                  match Register.read t.final with
                  | Some w -> `Decide w
                  | None -> (
                      match Register.read (d_of t r) with
                      | Some w -> `Adopt w
                      | None ->
                          if Register.read (stable_of t r) then `Advance
                          else
                            let u'' = Sim.query t.upsilon_f in
                            if not (Pid.Set.equal u'' u) then begin
                              Register.write (stable_of t r) true;
                              `Advance
                            end
                            else
                              let view = Snap.scan a in
                              if count_non_bot view >= n_plus_1 - t.f then
                                `Full view
                              else await ())
                in
                match await () with
                | `Decide w -> decide t ~me ~round:r w
                | `Adopt w -> round (r + 1) w
                | `Advance -> round (r + 1) v
                | `Full view -> (
                    (* line 25: adopt the minimal value of the scan *)
                    match min_non_bot view with
                    | None -> assert false (* >= n+1-f >= 1 entries *)
                    | Some v ->
                        (* line 26: (|U|+f-n-1)-convergence *)
                        let kk = Pid.Set.cardinal u + t.f - n_plus_1 in
                        let kconv =
                          Converge.Arena.instance t.arena ~k:kk
                            ~tag:(Printf.sprintf "glad.r%d.k%d" r k)
                        in
                        let v, committed = Converge.run kconv ~me v in
                        if committed then begin
                          Register.write (d_of t r) (Some v);
                          round (r + 1) v
                        end
                        else gladiator r v u (k + 1))
              end)
  in
  round 1 input

let decisions t = List.rev t.decided
let decision_rounds t = List.rev t.decided_rounds
let rounds_entered t = t.max_round
