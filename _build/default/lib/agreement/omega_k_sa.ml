open Kernel
open Memory

type t = {
  n_plus_1 : int;
  k : int;
  omega_k : Pid.Set.t Sim.source;
  final : int option Register.t;
  round_d : (int, int option Register.t) Hashtbl.t;
  round_stable : (int, bool Register.t) Hashtbl.t;
  arena : int Converge.Arena.t;
  mutable decided : (Pid.t * int) list;
  mutable decided_rounds : (Pid.t * int) list;
  mutable max_round : int;
  obj_prefix : string;
}

let create ~name ~n_plus_1 ~k ~omega_k =
  if n_plus_1 < 2 then invalid_arg "Omega_k_sa.create: need >= 2 processes";
  if k < 1 || k > n_plus_1 then invalid_arg "Omega_k_sa.create: bad k";
  {
    n_plus_1;
    k;
    omega_k;
    final = Register.create ~name:(name ^ ".D") None;
    round_d = Hashtbl.create 32;
    round_stable = Hashtbl.create 32;
    arena =
      Converge.Arena.create ~name:(name ^ ".cv") ~size:n_plus_1
        ~compare:Int.compare;
    decided = [];
    decided_rounds = [];
    max_round = 0;
    obj_prefix = name;
  }

let d_of t r =
  match Hashtbl.find_opt t.round_d r with
  | Some reg -> reg
  | None ->
      let reg =
        Register.create ~name:(Printf.sprintf "%s.D[%d]" t.obj_prefix r) None
      in
      Hashtbl.add t.round_d r reg;
      reg

let stable_of t r =
  match Hashtbl.find_opt t.round_stable r with
  | Some reg -> reg
  | None ->
      let reg =
        Register.create
          ~name:(Printf.sprintf "%s.Stable[%d]" t.obj_prefix r)
          false
      in
      Hashtbl.add t.round_stable r reg;
      reg

let decide t ~me ~round v =
  t.decided <- (me, v) :: t.decided;
  t.decided_rounds <- (me, round) :: t.decided_rounds;
  Sim.output ~label:"decide" ~value:(string_of_int v)

let proposer t ~me ~input () =
  Sim.input ~label:"propose" ~value:(string_of_int input);
  let rec round r v =
    if r > t.max_round then t.max_round <- r;
    let conv =
      Converge.Arena.instance t.arena ~k:t.k ~tag:(Printf.sprintf "main.r%d" r)
    in
    let v, committed = Converge.run conv ~me v in
    if committed then begin
      Register.write t.final (Some v);
      decide t ~me ~round:r v
    end
    else
      let committee = Sim.query t.omega_k in
      follow r v committee
  and follow r v committee =
    match Register.read t.final with
    | Some w -> decide t ~me ~round:r w
    | None -> (
        if Register.read (stable_of t r) then round (r + 1) v
        else
          match Register.read (d_of t r) with
          | Some w -> round (r + 1) w (* adopt a committee value *)
          | None ->
              let committee' = Sim.query t.omega_k in
              if not (Pid.Set.equal committee' committee) then begin
                Register.write (stable_of t r) true;
                round (r + 1) v
              end
              else if Pid.Set.mem me committee then begin
                (* committee member: publish and advance with own value *)
                Register.write (d_of t r) (Some v);
                round (r + 1) v
              end
              else follow r v committee)
  in
  round 1 input

let decisions t = List.rev t.decided
let decision_rounds t = List.rev t.decided_rounds
let rounds_entered t = t.max_round
