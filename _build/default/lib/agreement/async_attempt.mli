(** The detector-free skeleton: rounds of n-converge with no oracle to
    break symmetry — what remains of Fig 1 when Υ is removed.

    Safety (Agreement, Validity) still holds on every run, but the
    wait-free set-agreement impossibility [2,14,20] guarantees
    non-terminating runs exist; the lock-step round-robin schedule
    realizes one whenever all n+1 inputs are distinct (every phase-1 scan
    sees all values, nobody ever commits). E8 exhibits this while the
    same schedule with Υ terminates — the simulator's rendering of the
    impossibility the paper circumvents. *)

open Kernel

type t

val create : name:string -> n_plus_1:int -> t
val proposer : t -> me:Pid.t -> input:int -> unit -> unit
val decisions : t -> (Pid.t * int) list
val rounds_entered : t -> int
