open Kernel
open Memory

type t = {
  n_plus_1 : int;
  omega_n : Pid.Set.t Sim.source;
  final : int option Register.t;
  round_d : (int, int option Register.t) Hashtbl.t;
  round_stable : (int, bool Register.t) Hashtbl.t;
  objects : (int * string, int Consensus_obj.t) Hashtbl.t; (* (r, committee key) *)
  arena : int Converge.Arena.t;
  mutable decided : (Pid.t * int) list;
  mutable decided_rounds : (Pid.t * int) list;
  obj_prefix : string;
}

let create ~name ~n_plus_1 ~omega_n =
  if n_plus_1 < 2 then
    invalid_arg "Booster_consensus.create: need >= 2 processes";
  {
    n_plus_1;
    omega_n;
    final = Register.create ~name:(name ^ ".D") None;
    round_d = Hashtbl.create 32;
    round_stable = Hashtbl.create 32;
    objects = Hashtbl.create 32;
    arena =
      Converge.Arena.create ~name:(name ^ ".ca") ~size:n_plus_1
        ~compare:Int.compare;
    decided = [];
    decided_rounds = [];
    obj_prefix = name;
  }

let d_of t r =
  match Hashtbl.find_opt t.round_d r with
  | Some reg -> reg
  | None ->
      let reg =
        Register.create ~name:(Printf.sprintf "%s.D[%d]" t.obj_prefix r) None
      in
      Hashtbl.add t.round_d r reg;
      reg

let stable_of t r =
  match Hashtbl.find_opt t.round_stable r with
  | Some reg -> reg
  | None ->
      let reg =
        Register.create
          ~name:(Printf.sprintf "%s.Stable[%d]" t.obj_prefix r)
          false
      in
      Hashtbl.add t.round_stable r reg;
      reg

(* The n-process consensus object for (round, committee): only processes
   that believe themselves members touch it, and committees have exactly
   n members, so its n ports always suffice. *)
let object_of t r committee =
  let key = (r, Pid.Set.to_string committee) in
  match Hashtbl.find_opt t.objects key with
  | Some obj -> obj
  | None ->
      let obj =
        Consensus_obj.create
          ~name:
            (Printf.sprintf "%s.O[%d]%s" t.obj_prefix r
               (Pid.Set.to_string committee))
          ~ports:(Some (t.n_plus_1 - 1))
      in
      Hashtbl.add t.objects key obj;
      obj

let decide t ~me ~round v =
  t.decided <- (me, v) :: t.decided;
  t.decided_rounds <- (me, round) :: t.decided_rounds;
  Sim.output ~label:"decide" ~value:(string_of_int v)

let proposer t ~me ~input () =
  Sim.input ~label:"propose" ~value:(string_of_int input);
  let rec round r v =
    (* safety guard: commit-adopt; a commit is a decision *)
    let ca =
      Converge.Arena.instance t.arena ~k:1 ~tag:(Printf.sprintf "ca.r%d" r)
    in
    let v, committed = Converge.run ca ~me v in
    if committed then begin
      Register.write t.final (Some v);
      decide t ~me ~round:r v
    end
    else
      let committee = Sim.query t.omega_n in
      let v =
        if Pid.Set.mem me committee && Pid.Set.cardinal committee = t.n_plus_1 - 1
        then begin
          (* funnel through the committee's n-consensus object *)
          let w = Consensus_obj.propose (object_of t r committee) v in
          Register.write (d_of t r) (Some w);
          w
        end
        else v
      in
      follow r v committee
  and follow r v committee =
    match Register.read t.final with
    | Some w -> decide t ~me ~round:r w
    | None -> (
        if Register.read (stable_of t r) then round (r + 1) v
        else
          match Register.read (d_of t r) with
          | Some w -> round (r + 1) w
          | None ->
              let committee' = Sim.query t.omega_n in
              if not (Pid.Set.equal committee' committee) then begin
                Register.write (stable_of t r) true;
                round (r + 1) v
              end
              else follow r v committee)
  in
  round 1 input

let decisions t = List.rev t.decided
let decision_rounds t = List.rev t.decided_rounds

let max_ports_used t =
  Hashtbl.fold
    (fun _ obj acc -> max acc (Pid.Set.cardinal (Consensus_obj.accessors obj)))
    t.objects 0

let objects_allocated t = Hashtbl.length t.objects
