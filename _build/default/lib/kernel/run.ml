type result = { outcome : Scheduler.outcome; trace : Trace.t; steps : int }

let exec ~pattern ~policy ?(horizon = 100_000) ~procs () =
  let fibers =
    Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 pattern)
    |> List.concat_map (fun pid ->
           List.mapi
             (fun j body ->
               let name = Format.asprintf "%a/t%d" Pid.pp pid j in
               Fiber.create ~pid ~name body)
             (procs pid))
  in
  let sched = Scheduler.create ~pattern ~policy ~fibers in
  let outcome = Scheduler.run sched ~max_steps:horizon in
  { outcome; trace = Scheduler.trace sched; steps = Scheduler.now sched }
