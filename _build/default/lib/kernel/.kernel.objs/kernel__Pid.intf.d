lib/kernel/pid.mli: Format Map Set
