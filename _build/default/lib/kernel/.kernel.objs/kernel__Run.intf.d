lib/kernel/run.mli: Failure_pattern Pid Policy Scheduler Trace
