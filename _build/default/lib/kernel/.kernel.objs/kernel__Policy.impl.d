lib/kernel/policy.ml: List Pid Rng
