lib/kernel/failure_pattern.ml: Array Format List Pid Rng String
