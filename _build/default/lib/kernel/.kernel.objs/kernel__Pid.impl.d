lib/kernel/pid.ml: Array Format Fun Int List Map Set
