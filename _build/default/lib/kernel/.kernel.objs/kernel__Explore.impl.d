lib/kernel/explore.ml: Array List Pid Policy Run
