lib/kernel/oracle.mli: Failure_pattern Format Pid Sim Trace
