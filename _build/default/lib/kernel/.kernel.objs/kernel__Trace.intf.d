lib/kernel/trace.mli: Format Pid Sim
