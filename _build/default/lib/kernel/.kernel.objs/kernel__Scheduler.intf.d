lib/kernel/scheduler.mli: Failure_pattern Fiber Pid Policy Trace
