lib/kernel/network.mli: Pid
