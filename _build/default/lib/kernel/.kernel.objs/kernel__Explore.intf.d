lib/kernel/explore.mli: Failure_pattern Pid Trace
