lib/kernel/trace.ml: Format List Pid Sim String
