lib/kernel/oracle.ml: Failure_pattern Format Hashtbl List Pid Sim String Trace
