lib/kernel/rng.mli:
