lib/kernel/policy.mli: Pid Rng
