lib/kernel/scheduler.ml: Array Failure_pattern Fiber List Pid Policy Sim Trace
