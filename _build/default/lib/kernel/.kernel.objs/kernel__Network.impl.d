lib/kernel/network.ml: Array List Pid Printf Queue Sim
