lib/kernel/sim.ml: Effect Format Pid
