lib/kernel/fiber.mli: Pid Sim
