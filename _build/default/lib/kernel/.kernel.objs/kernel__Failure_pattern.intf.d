lib/kernel/failure_pattern.mli: Format Pid Rng
