lib/kernel/run.ml: Failure_pattern Fiber Format List Pid Scheduler Trace
