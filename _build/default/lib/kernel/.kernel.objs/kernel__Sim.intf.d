lib/kernel/sim.mli: Effect Format Pid
