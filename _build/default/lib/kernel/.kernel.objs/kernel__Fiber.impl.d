lib/kernel/fiber.ml: Effect Pid Sim
