(** Cooperative fibers: one suspended protocol thread per (process, task).

    A fiber is started once (running its body up to the first {!Sim.atomic}
    suspension) and then repeatedly stepped by the scheduler. Most
    processes run a single fiber; the Fig-3 reduction runs two tasks per
    process, modelled as two fibers sharing the process's crash fate. *)

type t

type status =
  | Runnable  (** suspended at an [atomic], waiting for a step *)
  | Done      (** body returned *)
  | Killed    (** process crashed while the fiber was suspended *)

val create : pid:Pid.t -> name:string -> (unit -> unit) -> t
(** A fiber ready to start. The body may only interact with the world via
    {!Sim.atomic} and derived operations. *)

val pid : t -> Pid.t
val name : t -> string
val status : t -> status

val start : t -> unit
(** Run the body until its first suspension (or completion). Local
    computation before the first atomic step is free, matching the model.
    Must be called exactly once, before any {!step}. *)

val pending_kind : t -> Sim.kind
(** The label of the step the fiber is waiting to take. Raises unless
    [status t = Runnable]. *)

val step : t -> Sim.ctx -> unit
(** Execute the pending atomic closure at context [ctx] and resume the
    fiber until its next suspension (or completion). Raises unless
    [status t = Runnable]. *)

val kill : t -> unit
(** Crash the fiber: it will never be stepped again. *)
