type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split t = { state = mix (next64 t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else
    let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
    v /. 9007199254740992.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_arr t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick_arr: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t l =
  let arr = Array.of_list l in
  shuffle t arr;
  Array.to_list arr

let subset t ?(proper = false) ?(nonempty = false) l =
  let n = List.length l in
  let rec attempt () =
    let chosen = List.filter (fun _ -> bool t) l in
    let k = List.length chosen in
    if (nonempty && k = 0) || (proper && k = n) then
      if n = 0 || (proper && nonempty && n <= 1) then
        invalid_arg "Rng.subset: constraints unsatisfiable"
      else attempt ()
    else chosen
  in
  attempt ()
