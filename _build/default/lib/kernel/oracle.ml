type violation = { condition : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s" v.condition v.detail

let check_run_conditions pattern trace =
  let violations = ref [] in
  let add condition detail = violations := { condition; detail } :: !violations in
  let last_time = ref 0 in
  let seen_times = Hashtbl.create 97 in
  List.iter
    (fun event ->
      (match event with
      | Trace.Step { time; _ } | Trace.Crash { time; _ } ->
          if time < !last_time then
            add "monotone-time"
              (Format.asprintf "event at time %d after time %d" time !last_time);
          last_time := max !last_time time);
      match event with
      | Trace.Step { pid; time; _ } ->
          if Failure_pattern.crashed_at pattern pid time then
            add "run-condition-1"
              (Format.asprintf "%a stepped at %d but crashed at %d" Pid.pp pid
                 time
                 (Failure_pattern.crash_time pattern pid));
          if Hashtbl.mem seen_times time then
            add "run-condition-3"
              (Format.asprintf "two steps at time %d" time)
          else Hashtbl.add seen_times time ()
      | Trace.Crash { pid; time } ->
          let c = Failure_pattern.crash_time pattern pid in
          if c <> time then
            add "crash-event"
              (Format.asprintf "%a crash recorded at %d but pattern says %d"
                 Pid.pp pid time c))
    trace;
  List.rev !violations

let check_query_values src trace =
  Trace.query_values trace ~detector:src.Sim.name
  |> List.filter_map (fun (pid, time, recorded) ->
         let expected = src.Sim.render (src.Sim.sample pid time) in
         if String.equal recorded expected then None
         else
           Some
             {
               condition = "run-condition-2";
               detail =
                 Format.asprintf "%a queried %s at %d: saw %s, history says %s"
                   Pid.pp pid src.Sim.name time recorded expected;
             })

let starvation pattern trace ~window =
  let horizon = Trace.last_time trace in
  let cutoff = max 0 (horizon - window) in
  let active =
    List.filter_map
      (function
        | Trace.Step { pid; time; _ } when time > cutoff -> Some pid
        | Trace.Step _ | Trace.Crash _ -> None)
      trace
    |> Pid.Set.of_list
  in
  Pid.Set.diff (Failure_pattern.correct pattern) active

let parse_int_events events =
  List.filter_map
    (fun (pid, _time, _label, value) ->
      match int_of_string_opt value with
      | Some v -> Some (pid, v)
      | None -> None)
    events

let proposals trace = parse_int_events (Trace.inputs ~label:"propose" trace)
let decisions trace = parse_int_events (Trace.outputs ~label:"decide" trace)

let decision_times trace =
  List.map
    (fun (pid, time, _label, _value) -> (pid, time))
    (Trace.outputs ~label:"decide" trace)
