type 'm t = { net_name : string; mailboxes : (Pid.t * 'm) Queue.t array }

let create ~name ~n_plus_1 =
  { net_name = name; mailboxes = Array.init n_plus_1 (fun _ -> Queue.create ()) }

let send t ~to_ m =
  Sim.atomic
    (Sim.Write { obj = Printf.sprintf "%s->%s" t.net_name (Pid.to_string to_) })
    (fun ctx -> Queue.push (ctx.Sim.pid, m) t.mailboxes.(to_))

let broadcast t m =
  Array.iteri (fun to_ _ -> send t ~to_ m) t.mailboxes

let poll t =
  Sim.atomic
    (Sim.Read { obj = t.net_name ^ "<-" })
    (fun ctx ->
      let q = t.mailboxes.(ctx.Sim.pid) in
      let rec drain acc =
        match Queue.take_opt q with
        | Some m -> drain (m :: acc)
        | None -> List.rev acc
      in
      drain [])

let pending t pid = Queue.length t.mailboxes.(pid)
