(** One-shot run harness: assemble fibers, schedule to an outcome. *)

type result = {
  outcome : Scheduler.outcome;
  trace : Trace.t;
  steps : int;  (** total steps executed *)
}

val exec :
  pattern:Failure_pattern.t ->
  policy:Policy.t ->
  ?horizon:int ->
  procs:(Pid.t -> (unit -> unit) list) ->
  unit ->
  result
(** Builds one fiber per thunk returned by [procs pid] (named
    ["p<i>/t<j>"]) and runs up to [horizon] steps (default 100_000).
    Protocol state (registers, decision tables) lives in the closures. *)
