(** Process identifiers.

    The system has [n + 1] processes [p1 ... p(n+1)] (paper §3.1). A pid is
    a 0-based index; [p1] is pid [0]. We keep the representation transparent
    so pids can index arrays of per-process state directly. *)

type t = int

val of_index : int -> t
(** [of_index i] is the pid of the [i+1]-th process; fails on negatives. *)

val to_int : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation, e.g. [p3]. *)

val to_string : t -> string

val all : n_plus_1:int -> t list
(** [all ~n_plus_1] is [[p1; ...; p(n+1)]] as pids [0 .. n]. *)

module Set : sig
  include Set.S with type elt = t

  val of_indices : int list -> t
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  val full : n_plus_1:int -> t
  (** The whole system Π. *)

  val complement : n_plus_1:int -> t -> t
  (** [complement ~n_plus_1 s] is Π − s. *)

  val subsets : n_plus_1:int -> t list
  (** All non-empty subsets of Π (for small systems; exponential). *)
end

module Map : Map.S with type key = t
