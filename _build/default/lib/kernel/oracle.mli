(** Trace oracles: machine checks of the model's run conditions (§3.3)
    and convenience accessors for problem specs. *)

type violation = { condition : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val check_run_conditions :
  Failure_pattern.t -> Trace.t -> violation list
(** Checks, on the (finite) trace:
    - condition (1): no step by a process at or after its crash time;
    - condition (3): at most one step per time value;
    - monotonicity: event times are non-decreasing;
    - crash events match the pattern.
    An empty list means the trace is a legal partial run. *)

val check_query_values : 'v Sim.source -> Trace.t -> violation list
(** Run condition (2): every recorded query value of the given detector
    matches its history at that (process, time) — compared through the
    source's renderer. *)

val starvation :
  Failure_pattern.t -> Trace.t -> window:int -> Pid.Set.t
(** Correct processes that take no step during the last [window] time
    units of the trace — a fairness smell for bounded runs (condition (5)
    only binds infinite runs). *)

val proposals : Trace.t -> (Pid.t * int) list
(** Inputs recorded under label ["propose"], parsed as ints. *)

val decisions : Trace.t -> (Pid.t * int) list
(** Outputs recorded under label ["decide"], parsed as ints. *)

val decision_times : Trace.t -> (Pid.t * int) list
(** [(pid, time)] of each ["decide"] output. *)
