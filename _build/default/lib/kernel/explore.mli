(** Bounded exhaustive schedule exploration.

    Randomized schedules sample the interleaving space; for small systems
    this module {e enumerates} it: every possible choice of "who steps
    next" for the first [depth] steps (the phase where races live), each
    prefix then completed deterministically with round-robin up to a
    horizon. The checked property runs against every explored execution,
    so a bug that needs a specific early interleaving cannot hide behind
    seeds.

    Branching is the number of enabled processes per step, so the cost is
    about [n_plus_1^depth] runs; with 2–3 processes and depth ≤ 12 this
    is tens of thousands of fast runs — the test suite uses it to verify
    the commit–adopt and k-converge agreement properties over {e all}
    early interleavings, not just sampled ones. *)

type 'a outcome = {
  executions : int;  (** how many schedules were explored *)
  counterexample : (Pid.t list * 'a) option;
      (** the prefix schedule and the check's report for the first
          violating execution, if any *)
}

val exhaustive_prefix :
  pattern:Failure_pattern.t ->
  depth:int ->
  horizon:int ->
  make:(unit -> (Pid.t -> (unit -> unit) list) * (Trace.t -> (unit, 'a) result)) ->
  unit ->
  'a outcome
(** [make ()] must build a {e fresh} world: the fiber factory plus a
    checker run on the completed trace ([Ok] = property held, [Error]
    = violation report). It is called once per explored schedule.
    Exploration stops at the first counterexample. *)

val count_schedules : n_plus_1:int -> depth:int -> int
(** Upper bound on explored executions (before quiescence pruning). *)
