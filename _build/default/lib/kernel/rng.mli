(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component of the simulator draws from an explicit
    [Rng.t] so that a run is a pure function of its seed: identical seeds
    give identical traces, which the regression tests pin. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Distinct seeds give independent
    streams for all practical purposes. *)

val copy : t -> t

val split : t -> t
(** [split t] derives a child generator and advances [t]; children drawn
    at different points are independent streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_arr : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> 'a list -> 'a list

val subset : t -> ?proper:bool -> ?nonempty:bool -> 'a list -> 'a list
(** Uniform subset of the given list, optionally constrained to be proper
    and/or non-empty. *)
